(** Click-style packet-processing elements.

    An element is a named push port with packet/byte counters; elements
    compose into the per-virtual-node data planes of Figure 1.  Processing
    inside a data plane is synchronous — the hosting user-space process has
    already been charged the per-packet CPU cost by [Vini_phys] — so
    elements stay pure plumbing with observable statistics. *)

type t

val make : string -> (Vini_net.Packet.t -> unit) -> t

val push : t -> Vini_net.Packet.t -> unit
(** Counts the packet and, when the [Packet_tx] trace category is live,
    emits a trace event under this element's name. *)

val drop : t -> reason:string -> Vini_net.Packet.t -> unit
(** Count a drop under [reason] (and emit a [Packet_drop] trace event when
    that category is live).  The packet is {e not} forwarded. *)

val name : t -> string
val packets : t -> int
val bytes : t -> int

val drops : t -> int
(** Total drops recorded via {!drop}, any reason. *)

val drop_reasons : t -> (string * int) list
(** Per-reason drop counts, sorted by reason. *)

val discard : string -> t
(** Count-and-drop sink. *)

val tee : string -> t list -> t
(** Duplicate each packet to every downstream element. *)

val classifier :
  string -> rules:((Vini_net.Packet.t -> bool) * t) list -> default:t -> t
(** First matching rule wins. *)

val queue : string -> ?capacity_packets:int -> ?capacity_bytes:int -> out:t -> unit -> t
(** Drop-tail queue that forwards immediately (occupancy is transient in
    the synchronous data plane, but drops still enforce the bound and the
    counters feed tests). *)

val queue_drops : t -> int
(** Drops recorded by a {!queue}, {!shaper_drops} for shapers; 0 for other
    elements. *)
