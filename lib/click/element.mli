(** Click-style packet-processing elements.

    An element is a named push port with packet/byte counters; elements
    compose into the per-virtual-node data planes of Figure 1.  Processing
    inside a data plane is synchronous — the hosting user-space process has
    already been charged the per-packet CPU cost by [Vini_phys] — so
    elements stay pure plumbing with observable statistics.

    {2 The batch contract}

    Elements accept work one packet at a time ({!push}) or as a burst
    ({!push_batch}).  The two entry points are observationally
    equivalent: statistics, trace events, and flight-recorder spans are
    per packet on both, and a chain delivers the same packets in the
    same order whether driven packet-by-packet or in bursts (property-
    tested).  Batching changes only the {e cost}: one scheduler event, a
    handful of virtual calls, and at most one FIB-memo refresh serve up
    to N packets instead of one.

    Ownership during a burst: the packets in the batch belong to the
    chain while [push_batch] runs.  An element either consumes a packet
    (delivers it, drops it via {!drop}, recycles it to a
    {!Vini_net.Pool}), replaces it in the batch ({!Batch.set} — how a
    corrupting fault swaps in a damaged copy), or passes the batch on.
    An element must never hold a reference to a batched packet past the
    burst: the driver reuses the batch (and the pool reuses recycled
    packets) on the next breath. *)

type t

val make : string -> (Vini_net.Packet.t -> unit) -> t
(** A per-packet element.  Under {!push_batch} its function is applied to
    each packet of the burst in order — correct for any element, it just
    forgoes the amortisation a batch-aware body gets. *)

val make_batch :
  string ->
  single:(Vini_net.Packet.t -> unit) ->
  batch:(Batch.t -> unit) ->
  t
(** A batch-aware element: [single] serves {!push}, [batch] serves
    {!push_batch}.  The two bodies must be observationally equivalent
    (same forwarding decisions, same order, same RNG draw sequence when
    randomised) — the batched/unbatched equivalence property quantifies
    over whole chains and holds only if every element keeps this
    contract. *)

val push : t -> Vini_net.Packet.t -> unit
(** Counts the packet and, when the [Packet_tx] trace category is live,
    emits a trace event under this element's name. *)

val push_batch : t -> Batch.t -> unit
(** Push a whole burst.  Counts every packet (and emits its per-packet
    trace/span events) exactly as {!push} would, then runs the
    batch-aware body, or falls back to the per-packet function in batch
    order.  Steady-state allocation-free when tracing and spans are off
    and the element bodies are. *)

val pump : Ring.t -> into:Batch.t -> out:t -> max:int -> int
(** One breath: clear [into], move up to [max] packets from the ring into
    it ({!Ring.pop_into}), and push the burst through [out].  Returns the
    number of packets moved (0 when the ring was empty — the chain is not
    entered).  This is the function a scheduler event calls to drive a
    burst through a whole chain. *)

val drop : t -> reason:string -> Vini_net.Packet.t -> unit
(** Count a drop under [reason] (and emit a [Packet_drop] trace event when
    that category is live).  The packet is {e not} forwarded. *)

val name : t -> string
val packets : t -> int
val bytes : t -> int

val drops : t -> int
(** Total drops recorded via {!drop}, any reason. *)

val drop_reasons : t -> (string * int) list
(** Per-reason drop counts, sorted by reason. *)

val discard : string -> t
(** Count-and-drop sink. *)

val tee : string -> t list -> t
(** Duplicate each packet to every downstream element. *)

val classifier :
  string -> rules:((Vini_net.Packet.t -> bool) * t) list -> default:t -> t
(** First matching rule wins. *)

val queue : string -> ?capacity_packets:int -> ?capacity_bytes:int -> out:t -> unit -> t
(** Drop-tail queue that forwards immediately (occupancy is transient in
    the synchronous data plane, but drops still enforce the bound and the
    counters feed tests). *)

val queue_drops : t -> int
(** Drops recorded by a {!queue}, {!shaper_drops} for shapers; 0 for other
    elements. *)
