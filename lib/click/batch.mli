(** A reusable burst of packets — the unit of work on the batched data
    plane.

    A batch is a fixed-capacity packet array plus a length, owned by
    whoever is driving the burst (a scheduler event, a bench loop, a
    test).  The driver fills it (from a {!Ring}, a pool-backed source, or
    {!add}), pushes it through an element chain with
    {!Element.push_batch}, then {!clear}s and refills it — the array is
    reused for every burst, so batching itself allocates nothing after
    construction.

    {b Ownership.}  The packets in a batch belong to the chain while
    [push_batch] runs: an element may consume them (deliver, drop,
    recycle to a {!Vini_net.Pool}), replace them in place (a filtering or
    corrupting element), or hand the whole batch downstream.  After
    [push_batch] returns the driver owns the (possibly filtered) batch
    again and must [clear] before refilling; slots beyond [length] are
    stale and must never be read. *)

type t

val create : capacity:int -> t
(** A batch able to hold up to [capacity] packets.  The backing array is
    allocated here, once; every later operation is allocation-free.
    @raise Invalid_argument when [capacity < 1]. *)

val add : t -> Vini_net.Packet.t -> bool
(** Append a packet; [false] (packet not added) when the batch is full. *)

val get : t -> int -> Vini_net.Packet.t
(** [get t i] is the [i]-th packet, [0 <= i < length t].  Reading beyond
    [length t] is a programming error; this raises [Invalid_argument]. *)

val set : t -> int -> Vini_net.Packet.t -> unit
(** Replace packet [i] in place — how a corrupting element swaps a frame
    for its damaged copy without disturbing the rest of the burst.
    @raise Invalid_argument when [i] is outside [0, length t). *)

val truncate : t -> int -> unit
(** [truncate t n] keeps the first [n] packets — the compaction step of
    an in-place filter.  @raise Invalid_argument when [n > length t]. *)

val unsafe_get : t -> int -> Vini_net.Packet.t
val unsafe_set : t -> int -> Vini_net.Packet.t -> unit
(** Unchecked slot access for loops that already iterate [0, length t) —
    the batched fast paths in this library.  Out-of-range access is
    undefined behaviour; prefer {!get}/{!set} everywhere else. *)

val length : t -> int
val capacity : t -> int
val is_empty : t -> bool
val is_full : t -> bool

val clear : t -> unit
(** Empty the batch (length 0).  Slot references are retained until
    overwritten — see the retention note on {!Vini_std.Fifo}. *)

val iter : t -> (Vini_net.Packet.t -> unit) -> unit

val filler : Vini_net.Packet.t Lazy.t
(** The throwaway datagram used to seed batch and ring arrays
    ([Array.make] needs a fill value).  Lazy so programs that never
    batch do not consume a packet id.  Internal plumbing — shared so
    only one filler id is ever minted. *)
