(** Fixed-capacity single-producer/single-consumer packet ring — the link
    between a packet source and the scheduler event that drains it in
    bursts.

    Same shape as {!Vini_std.Mailbox} (bounded circular buffer, explicit
    backpressure: a full ring refuses the push and the producer counts
    the drop), specialised to packets and extended with a batch drain:
    {!pop_into} moves up to [max] packets into a {!Batch} in FIFO order
    with no per-packet allocation, which is how a breath begins.

    Producer and consumer are synchronised externally — on the
    deterministic engine both run in the same domain, interleaved by the
    event loop — so the ring is plain mutable state with no atomics,
    exactly like the mailbox it mirrors. *)

type t

val create : capacity:int -> t
(** @raise Invalid_argument when [capacity < 1]. *)

val push : t -> Vini_net.Packet.t -> bool
(** Append in FIFO position; [false] when full (the packet was not
    enqueued — the producer owns it still, and typically drops it or
    recycles it to its pool). *)

val pop : t -> Vini_net.Packet.t option

val pop_into : t -> Batch.t -> max:int -> int
(** [pop_into t batch ~max] appends up to [max] packets (bounded also by
    the batch's free capacity) into [batch] in FIFO order and returns how
    many moved.  Allocation-free. *)

val length : t -> int
val capacity : t -> int
val is_empty : t -> bool

val depth_hwm : t -> int
(** Deepest the ring has ever been — the backlog watermark a capacity
    choice is judged against.  Monotone non-decreasing; deterministic
    per seed. *)

val pushes : t -> int
(** Accepted pushes. *)

val pops : t -> int
(** Packets removed, via {!pop} or {!pop_into}. *)

val rejected : t -> int
(** Pushes refused because the ring was full (the producer kept the
    packet; typically a counted drop). *)

val clear : t -> unit
(** Drop all queued packets (references retained until overwritten). *)
