module Packet = Vini_net.Packet

type t = {
  slots : Packet.t array;
  mutable head : int; (* next pop position *)
  mutable len : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Ring.create: capacity must be positive";
  (* Reuses the batch filler so only one dummy packet id is ever minted. *)
  { slots = Array.make capacity (Lazy.force Batch.filler); head = 0; len = 0 }

(* Indices stay in [0, cap) and advance by at most cap, so a compare and
   subtract replace the [mod] (an integer division) on every hot-path
   access. *)
let[@inline] wrap cap i = if i >= cap then i - cap else i

let push t pkt =
  let cap = Array.length t.slots in
  if t.len = cap then false
  else begin
    Array.unsafe_set t.slots (wrap cap (t.head + t.len)) pkt;
    t.len <- t.len + 1;
    true
  end

let pop t =
  if t.len = 0 then None
  else begin
    let pkt = Array.unsafe_get t.slots t.head in
    t.head <- wrap (Array.length t.slots) (t.head + 1);
    t.len <- t.len - 1;
    Some pkt
  end

let pop_into t batch ~max =
  let cap = Array.length t.slots in
  let n = min t.len (min max (Batch.capacity batch - Batch.length batch)) in
  let idx = ref t.head in
  for _ = 1 to n do
    ignore (Batch.add batch (Array.unsafe_get t.slots !idx));
    idx := wrap cap (!idx + 1)
  done;
  t.head <- !idx;
  t.len <- t.len - n;
  n

let length t = t.len
let capacity t = Array.length t.slots
let is_empty t = t.len = 0

let clear t =
  t.head <- 0;
  t.len <- 0
