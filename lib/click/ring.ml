module Packet = Vini_net.Packet

type t = {
  slots : Packet.t array;
  mutable head : int; (* next pop position *)
  mutable len : int;
  mutable depth_hwm : int; (* deepest the ring has ever been *)
  mutable pushes : int;
  mutable pops : int;
  mutable rejected : int; (* pushes refused because the ring was full *)
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Ring.create: capacity must be positive";
  (* Reuses the batch filler so only one dummy packet id is ever minted. *)
  {
    slots = Array.make capacity (Lazy.force Batch.filler);
    head = 0;
    len = 0;
    depth_hwm = 0;
    pushes = 0;
    pops = 0;
    rejected = 0;
  }

(* Indices stay in [0, cap) and advance by at most cap, so a compare and
   subtract replace the [mod] (an integer division) on every hot-path
   access. *)
let[@inline] wrap cap i = if i >= cap then i - cap else i

let push t pkt =
  let cap = Array.length t.slots in
  if t.len = cap then begin
    t.rejected <- t.rejected + 1;
    false
  end
  else begin
    Array.unsafe_set t.slots (wrap cap (t.head + t.len)) pkt;
    t.len <- t.len + 1;
    if t.len > t.depth_hwm then t.depth_hwm <- t.len;
    t.pushes <- t.pushes + 1;
    true
  end

let pop t =
  if t.len = 0 then None
  else begin
    let pkt = Array.unsafe_get t.slots t.head in
    t.head <- wrap (Array.length t.slots) (t.head + 1);
    t.len <- t.len - 1;
    t.pops <- t.pops + 1;
    Some pkt
  end

let pop_into t batch ~max =
  let cap = Array.length t.slots in
  let n = min t.len (min max (Batch.capacity batch - Batch.length batch)) in
  let idx = ref t.head in
  for _ = 1 to n do
    ignore (Batch.add batch (Array.unsafe_get t.slots !idx));
    idx := wrap cap (!idx + 1)
  done;
  t.head <- !idx;
  t.len <- t.len - n;
  t.pops <- t.pops + n;
  n

let length t = t.len
let capacity t = Array.length t.slots
let is_empty t = t.len = 0
let depth_hwm t = t.depth_hwm
let pushes t = t.pushes
let pops t = t.pops
let rejected t = t.rejected

let clear t =
  t.head <- 0;
  t.len <- 0
