module Packet = Vini_net.Packet
module Trace = Vini_sim.Trace
module Span = Vini_sim.Span
module Profile = Vini_sim.Profile

type t = {
  name : string;
  pid : int; (* Profile class id, interned once at creation *)
  f : Packet.t -> unit;
  fb : (Batch.t -> unit) option;
  mutable packets : int;
  mutable bytes : int;
  mutable drops : int;
  mutable drop_reasons : (string * int ref) list;
}

let make name f =
  {
    name;
    pid = Profile.class_id name;
    f;
    fb = None;
    packets = 0;
    bytes = 0;
    drops = 0;
    drop_reasons = [];
  }

let make_batch name ~single ~batch =
  {
    name;
    pid = Profile.class_id name;
    f = single;
    fb = Some batch;
    packets = 0;
    bytes = 0;
    drops = 0;
    drop_reasons = [];
  }

(* Per-packet observability, shared by both entry points so a packet's
   trace and span stream is identical whether it travelled alone or in a
   burst. *)
let observe t pkt =
  if Trace.on Trace.Category.Packet_tx then
    Trace.emit ~component:t.name (Trace.Packet_tx { bytes = Packet.size pkt });
  if Span.on () then
    Span.instant ~pkt:pkt.Packet.id ~orig:pkt.Packet.orig ~component:t.name
      Span.Proto_processing

let push t pkt =
  t.packets <- t.packets + 1;
  t.bytes <- t.bytes + Packet.size pkt;
  observe t pkt;
  (* Profiler attribution: one gate load + test when off.  When on, the
     element's frame brackets its body so nested pushes build the
     collapsed element path. *)
  if !Profile.gate then begin
    Profile.enter t.pid ~packets:1;
    t.f pkt;
    Profile.leave t.pid
  end
  else t.f pkt

let push_batch t b =
  let n = Batch.length b in
  if n > 0 then begin
    t.packets <- t.packets + n;
    (* Count and observe first, then process: counters reflect packets
       as offered, matching the per-packet path where stats precede the
       handler.  Accumulating into the record avoids a [ref] — the
       steady-state batched path allocates nothing. *)
    if Trace.on Trace.Category.Packet_tx || Span.on () then
      for i = 0 to n - 1 do
        let pkt = Batch.unsafe_get b i in
        t.bytes <- t.bytes + Packet.size pkt;
        observe t pkt
      done
    else
      for i = 0 to n - 1 do
        t.bytes <- t.bytes + Packet.size (Batch.unsafe_get b i)
      done;
    if !Profile.gate then begin
      Profile.enter t.pid ~packets:n;
      (match t.fb with
      | Some g -> g b
      | None ->
          for i = 0 to n - 1 do
            t.f (Batch.unsafe_get b i)
          done);
      Profile.leave t.pid
    end
    else
      match t.fb with
      | Some g -> g b
      | None ->
          (* Per-packet element in a batched chain: the burst degenerates
             to a loop, preserving per-packet semantics exactly. *)
          for i = 0 to n - 1 do
            t.f (Batch.unsafe_get b i)
          done
  end

let drop t ~reason pkt =
  t.drops <- t.drops + 1;
  (match List.assoc_opt reason t.drop_reasons with
  | Some r -> incr r
  | None -> t.drop_reasons <- (reason, ref 1) :: t.drop_reasons);
  if Trace.on Trace.Category.Packet_drop then
    Trace.emit ~severity:Trace.Warn ~component:t.name
      (Trace.Packet_drop { reason; bytes = Packet.size pkt });
  if Span.on () then
    Span.drop ~pkt:pkt.Packet.id ~orig:pkt.Packet.orig ~component:t.name
      ~reason ~bytes:(Packet.size pkt) ()

let name t = t.name
let packets t = t.packets
let bytes t = t.bytes
let drops t = t.drops

let drop_reasons t =
  List.sort compare (List.map (fun (r, n) -> (r, !n)) t.drop_reasons)

let pump ring ~into ~out ~max =
  Batch.clear into;
  let n = Ring.pop_into ring into ~max in
  if n > 0 then push_batch out into;
  n

let discard name = make name (fun _ -> ())

let tee name outs =
  make name (fun pkt -> List.iter (fun o -> push o pkt) outs)

let classifier name ~rules ~default =
  make name (fun pkt ->
      let rec fire = function
        | [] -> push default pkt
        | (test, out) :: rest -> if test pkt then push out pkt else fire rest
      in
      fire rules)

let queue name ?(capacity_packets = max_int) ?(capacity_bytes = max_int) ~out
    () =
  let occupancy_packets = ref 0 and occupancy_bytes = ref 0 in
  let rec t =
    lazy
      (make name (fun pkt ->
           let size = Packet.size pkt in
           if
             !occupancy_packets >= capacity_packets
             || !occupancy_bytes + size > capacity_bytes
           then drop (Lazy.force t) ~reason:"queue-overflow" pkt
           else begin
             (* Synchronous drain: occupancy spikes and falls within the
                same processing step. *)
             incr occupancy_packets;
             occupancy_bytes := !occupancy_bytes + size;
             push out pkt;
             decr occupancy_packets;
             occupancy_bytes := !occupancy_bytes - size
           end))
  in
  Lazy.force t

let queue_drops t = t.drops
