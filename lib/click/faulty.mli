(** The failure-injection element.

    §5.2 fails the Denver–Kansas City virtual link "by dropping packets
    within Click on the virtual link (UDP tunnel) connecting two Abilene
    nodes".  This element sits in front of a tunnel output and switches
    between passing, dropping everything (failed), and dropping a random
    fraction (lossy link emulation). *)

type mode =
  | Pass
  | Fail
  | Lossy of float
  | Corrupting of float
      (** Flip bits in this fraction of packets ({!Vini_net.Packet.corrupted})
          and pass them on; the receiver's checksum check drops them. *)

type t

val create :
  rng:Vini_std.Rng.t -> out:Element.t -> string -> t

val element : t -> Element.t
val set_mode : t -> mode -> unit
val mode : t -> mode
val dropped : t -> int
val corrupted : t -> int
(** Packets damaged in [Corrupting] mode (they are not dropped here). *)
