(** Longest-prefix-match forwarding table: a path-compressed binary trie
    fronted by a direct-mapped flow cache.

    The FIB each Click instance holds (Figure 1): XORP populates it with
    prefix → next-hop entries; the data plane looks packets up per
    destination address.  Values are arbitrary, so the same structure
    serves the IIAS overlay FIB (next hop = neighbour virtual address),
    the encapsulation table, and test fixtures.

    {b Data structure.}  Nodes exist only at branching points and at
    inserted prefixes (path compression), so {!lookup} walks
    O(log entries) nodes on random tables — bounded by 32 — instead of
    one node per bit, and allocates nothing on the hot path.  In front of
    the trie sits a 256-slot direct-mapped per-destination cache: a hit
    answers in O(1); any {!add}/{!remove}/{!clear} invalidates the whole
    cache in O(1) by bumping a generation counter, so a stale entry can
    never be served after a route change.  {!cache_hits}/{!cache_misses}
    expose the cache's effectiveness (exported via
    [Vini_measure.Monitor.watch_fib]).

    {b Determinism.}  Lookup answers are a pure function of the table
    contents (the cache is a transparent memo), and match the reference
    one-bit-per-node trie {!Fib_reference} bit for bit — property-tested
    on randomized tables. *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> Vini_net.Prefix.t -> 'a -> unit
(** Insert or replace the entry for a prefix.  O(32) worst case;
    invalidates the flow cache. *)

val remove : 'a t -> Vini_net.Prefix.t -> unit
(** No-op when absent (and then does not invalidate the cache). *)

val lookup : 'a t -> Vini_net.Addr.t -> 'a option
(** Longest matching prefix's value.  O(1) on a cache hit, O(branching
    nodes) ≤ O(32) on a miss; allocation-free. *)

val lookup_prefix : 'a t -> Vini_net.Addr.t -> (Vini_net.Prefix.t * 'a) option
(** Also reports which prefix matched.  Always walks the trie (no cache). *)

val find_exact : 'a t -> Vini_net.Prefix.t -> 'a option
val entries : 'a t -> (Vini_net.Prefix.t * 'a) list
(** Sorted by (network, length). *)

val length : 'a t -> int
val clear : 'a t -> unit

val cache_hits : 'a t -> int
(** Lookups answered by the flow cache since creation. *)

val cache_misses : 'a t -> int
(** Lookups that had to walk the trie (including every first lookup after
    a table update, since updates invalidate the cache). *)

val generation : 'a t -> int
(** The flow-cache generation counter: bumped by every {!add}, {!remove}
    of a present prefix, and {!clear}.  A batched forwarding loop that
    memoises one lookup result across consecutive same-destination
    packets must compare generations before reusing it — a control
    packet routed mid-batch can update the table, and the memo must
    never outlive the cache it shadows. *)

val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
