module Trace = Vini_sim.Trace

type mode = Pass | Fail | Lossy of float | Corrupting of float

type t = {
  rng : Vini_std.Rng.t;
  out : Element.t;
  mutable mode : mode;
  mutable dropped : int;
  mutable corrupted : int;
  mutable element : Element.t option;
}

let mode_name = function
  | Pass -> "pass"
  | Fail -> "fail"
  | Lossy p -> Printf.sprintf "lossy %.3f" p
  | Corrupting p -> Printf.sprintf "corrupting %.3f" p

let create ~rng ~out name =
  let t = { rng; out; mode = Pass; dropped = 0; corrupted = 0; element = None } in
  let fault_drop el pkt ~reason =
    t.dropped <- t.dropped + 1;
    Element.drop el pkt ~reason
  in
  let rec el =
    lazy
      (Element.make name (fun pkt ->
           match t.mode with
           | Pass -> Element.push t.out pkt
           | Fail -> fault_drop (Lazy.force el) pkt ~reason:"fault-fail"
           | Lossy p ->
               if Vini_std.Rng.float t.rng 1.0 < p then
                 fault_drop (Lazy.force el) pkt ~reason:"fault-lossy"
               else Element.push t.out pkt
           | Corrupting p ->
               (* Damaged frames still travel: the receiver's checksum
                  verification is what discards them. *)
               if Vini_std.Rng.float t.rng 1.0 < p then begin
                 t.corrupted <- t.corrupted + 1;
                 Element.push t.out (Vini_net.Packet.corrupted pkt)
               end
               else Element.push t.out pkt))
  in
  t.element <- Some (Lazy.force el);
  t

let element t = Option.get t.element

let set_mode t mode =
  (match mode with
  | Lossy p when p < 0.0 || p > 1.0 -> invalid_arg "Faulty.set_mode: loss rate"
  | Corrupting p when p < 0.0 || p > 1.0 ->
      invalid_arg "Faulty.set_mode: corruption rate"
  | Lossy _ | Corrupting _ | Pass | Fail -> ());
  if Trace.on Trace.Category.Fault_injected && mode <> t.mode then
    Trace.emit ~component:(Element.name (element t))
      (Trace.Fault_injected { action = "mode " ^ mode_name mode });
  t.mode <- mode

let mode t = t.mode
let dropped t = t.dropped
let corrupted t = t.corrupted
