module Trace = Vini_sim.Trace

type mode = Pass | Fail | Lossy of float | Corrupting of float

type t = {
  rng : Vini_std.Rng.t;
  out : Element.t;
  mutable mode : mode;
  mutable dropped : int;
  mutable corrupted : int;
  mutable element : Element.t option;
}

let mode_name = function
  | Pass -> "pass"
  | Fail -> "fail"
  | Lossy p -> Printf.sprintf "lossy %.3f" p
  | Corrupting p -> Printf.sprintf "corrupting %.3f" p

let create ~rng ~out name =
  let t = { rng; out; mode = Pass; dropped = 0; corrupted = 0; element = None } in
  let fault_drop el pkt ~reason =
    t.dropped <- t.dropped + 1;
    Element.drop el pkt ~reason
  in
  let single el pkt =
    match t.mode with
    | Pass -> Element.push t.out pkt
    | Fail -> fault_drop (Lazy.force el) pkt ~reason:"fault-fail"
    | Lossy p ->
        if Vini_std.Rng.float t.rng 1.0 < p then
          fault_drop (Lazy.force el) pkt ~reason:"fault-lossy"
        else Element.push t.out pkt
    | Corrupting p ->
        (* Damaged frames still travel: the receiver's checksum
           verification is what discards them. *)
        if Vini_std.Rng.float t.rng 1.0 < p then begin
          t.corrupted <- t.corrupted + 1;
          Element.push t.out (Vini_net.Packet.corrupted pkt)
        end
        else Element.push t.out pkt
  in
  (* The batch body makes the same decisions in the same packet order as
     [single] — in particular one RNG draw per packet, in batch order —
     so a batched run and a packet-at-a-time run of the same traffic are
     observationally identical.  Survivors are compacted in place
     (FIFO-preserving) rather than copied to a fresh batch. *)
  let batch el b =
    match t.mode with
    | Pass -> Element.push_batch t.out b
    | Fail ->
        Batch.iter b (fun pkt ->
            fault_drop (Lazy.force el) pkt ~reason:"fault-fail");
        Batch.clear b
    | Lossy p ->
        let kept = ref 0 in
        for i = 0 to Batch.length b - 1 do
          let pkt = Batch.unsafe_get b i in
          if Vini_std.Rng.float t.rng 1.0 < p then
            fault_drop (Lazy.force el) pkt ~reason:"fault-lossy"
          else begin
            Batch.unsafe_set b !kept pkt;
            incr kept
          end
        done;
        Batch.truncate b !kept;
        if not (Batch.is_empty b) then Element.push_batch t.out b
    | Corrupting p ->
        (* The damaged frame is a fresh record replacing the original in
           the batch; a pooled original becomes garbage and the copy is
           what eventually gets recycled — see DESIGN.md §15. *)
        for i = 0 to Batch.length b - 1 do
          if Vini_std.Rng.float t.rng 1.0 < p then begin
            t.corrupted <- t.corrupted + 1;
            Batch.unsafe_set b i
              (Vini_net.Packet.corrupted (Batch.unsafe_get b i))
          end
        done;
        Element.push_batch t.out b
  in
  let rec el =
    lazy
      (Element.make_batch name
         ~single:(fun pkt -> single el pkt)
         ~batch:(fun b -> batch el b))
  in
  t.element <- Some (Lazy.force el);
  t

let element t = Option.get t.element

let set_mode t mode =
  (match mode with
  | Lossy p when p < 0.0 || p > 1.0 -> invalid_arg "Faulty.set_mode: loss rate"
  | Corrupting p when p < 0.0 || p > 1.0 ->
      invalid_arg "Faulty.set_mode: corruption rate"
  | Lossy _ | Corrupting _ | Pass | Fail -> ());
  if Trace.on Trace.Category.Fault_injected && mode <> t.mode then
    Trace.emit ~component:(Element.name (element t))
      (Trace.Fault_injected { action = "mode " ^ mode_name mode });
  t.mode <- mode

let mode t = t.mode
let dropped t = t.dropped
let corrupted t = t.corrupted
