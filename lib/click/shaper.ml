module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Span = Vini_sim.Span
module Packet = Vini_net.Packet

type t = {
  engine : Engine.t;
  mutable rate_bps : float;
  burst_bytes : int;
  queue : Packet.t Vini_std.Fifo.t;
  out : Element.t;
  mutable tokens : float;          (* bytes *)
  mutable last_fill : Time.t;
  mutable release : Engine.handle option;
  mutable element : Element.t option;
}

(* The bucket must hold at least one head-of-line packet, or a packet
   larger than the burst could never be released. *)
let capacity t =
  let head = match Vini_std.Fifo.peek t.queue with
    | Some pkt -> Packet.size pkt
    | None -> 0
  in
  float_of_int (max t.burst_bytes head)

let refill t =
  let now = Engine.now t.engine in
  let dt = Time.to_sec_f (Time.sub now t.last_fill) in
  t.tokens <- Float.min (capacity t) (t.tokens +. (dt *. t.rate_bps /. 8.0));
  t.last_fill <- now

let shaper_component t =
  match t.element with Some e -> Element.name e | None -> "shaper"

let rec drain t =
  t.release <- None;
  refill t;
  match Vini_std.Fifo.peek t.queue with
  | None -> ()
  | Some pkt ->
      let size = float_of_int (Packet.size pkt) in
      (* Epsilon absorbs float refill error; without it the wait below can
         round to zero nanoseconds and the release event would re-fire at
         the same instant forever. *)
      if t.tokens >= size -. 1e-6 then begin
        ignore (Vini_std.Fifo.pop t.queue);
        t.tokens <- t.tokens -. size;
        if Span.on () then
          Span.dequeue_hop ~pkt:pkt.Packet.id ~orig:pkt.Packet.orig
            ~component:(shaper_component t) ();
        Element.push t.out pkt;
        drain t
      end
      else begin
        let wait = (size -. t.tokens) *. 8.0 /. t.rate_bps in
        let wait = Time.max (Time.ns 100) (Time.of_sec_f wait) in
        t.release <- Some (Engine.after t.engine wait (fun () -> drain t))
      end

let create ~engine ~rate_bps ?(burst_bytes = 16_000) ?(queue_bytes = 131_072)
    ~out name =
  if rate_bps <= 0.0 then invalid_arg "Shaper.create: rate must be positive";
  let t =
    {
      engine;
      rate_bps;
      burst_bytes;
      queue =
        Vini_std.Fifo.create ~max_bytes:queue_bytes ~size_of:Packet.size ();
      out;
      tokens = float_of_int burst_bytes;
      last_fill = Engine.now engine;
      release = None;
      element = None;
    }
  in
  let rec el =
    lazy
      (Element.make name (fun pkt ->
           if Vini_std.Fifo.push t.queue pkt then begin
             if Span.on () then Span.note_enqueue ~pkt:pkt.Packet.id;
             if t.release = None then drain t
           end
           else Element.drop (Lazy.force el) ~reason:"shaper-overflow" pkt))
  in
  t.element <- Some (Lazy.force el);
  t

let element t = Option.get t.element

let set_rate t rate =
  refill t;
  t.rate_bps <- rate;
  (* Re-plan any scheduled release under the new rate. *)
  match t.release with
  | Some h ->
      Engine.cancel h;
      t.release <- None;
      drain t
  | None -> ()

let drops t = Vini_std.Fifo.drops t.queue
let queued t = Vini_std.Fifo.length t.queue
