module Packet = Vini_net.Packet
module Addr = Vini_net.Addr

type t = {
  slots : Packet.t array;
  mutable len : int;
}

(* Array.make needs a fill value and Packet.t has no natural zero; a
   throwaway datagram serves.  Lazy so programs that never batch do not
   consume a packet id (ids are a global sequence and feed the span
   exports — an unconditional dummy would shift every id). *)
let filler =
  lazy
    (Packet.udp ~src:Addr.any ~dst:Addr.any ~sport:0 ~dport:0
       (Packet.Bytes_ 0))

let create ~capacity =
  if capacity < 1 then invalid_arg "Batch.create: capacity must be positive";
  { slots = Array.make capacity (Lazy.force filler); len = 0 }

let add t pkt =
  if t.len = Array.length t.slots then false
  else begin
    Array.unsafe_set t.slots t.len pkt;
    t.len <- t.len + 1;
    true
  end

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Batch.get: index out of range";
  Array.unsafe_get t.slots i

(* The bounds-checked accessors guard the API surface; in-repo hot loops
   that already iterate [0, len) use this one. *)
let unsafe_get t i = Array.unsafe_get t.slots i

let set t i pkt =
  if i < 0 || i >= t.len then invalid_arg "Batch.set: index out of range";
  Array.unsafe_set t.slots i pkt

let unsafe_set t i pkt = Array.unsafe_set t.slots i pkt

let truncate t n =
  if n < 0 || n > t.len then invalid_arg "Batch.truncate: bad length";
  t.len <- n

let length t = t.len
let capacity t = Array.length t.slots
let is_empty t = t.len = 0
let is_full t = t.len = Array.length t.slots
let clear t = t.len <- 0

let iter t f =
  for i = 0 to t.len - 1 do
    f (Array.unsafe_get t.slots i)
  done
