module Prefix = Vini_net.Prefix
module Addr = Vini_net.Addr

type 'a node = {
  mutable value : 'a option;
  mutable zero : 'a node option;
  mutable one : 'a node option;
}

type 'a t = { mutable root : 'a node; mutable count : int }

let fresh_node () = { value = None; zero = None; one = None }
let create () = { root = fresh_node (); count = 0 }

let bit_of addr i = (Addr.to_int addr lsr (31 - i)) land 1

let add t prefix v =
  let len = Prefix.length prefix in
  let net = Prefix.network prefix in
  let rec descend node depth =
    if depth = len then begin
      if node.value = None then t.count <- t.count + 1;
      node.value <- Some v
    end
    else begin
      let child =
        if bit_of net depth = 0 then (
          (match node.zero with
          | None -> node.zero <- Some (fresh_node ())
          | Some _ -> ());
          Option.get node.zero)
        else (
          (match node.one with
          | None -> node.one <- Some (fresh_node ())
          | Some _ -> ());
          Option.get node.one)
      in
      descend child (depth + 1)
    end
  in
  descend t.root 0

let remove t prefix =
  let len = Prefix.length prefix in
  let net = Prefix.network prefix in
  let rec descend node depth =
    if depth = len then begin
      if node.value <> None then t.count <- t.count - 1;
      node.value <- None
    end
    else
      let child = if bit_of net depth = 0 then node.zero else node.one in
      match child with None -> () | Some c -> descend c (depth + 1)
  in
  descend t.root 0

let lookup_prefix t addr =
  let rec descend node depth best =
    let best =
      match node.value with
      | Some v -> Some (Prefix.make addr depth, v)
      | None -> best
    in
    if depth = 32 then best
    else
      let child = if bit_of addr depth = 0 then node.zero else node.one in
      match child with
      | None -> best
      | Some c -> descend c (depth + 1) best
  in
  descend t.root 0 None

let lookup t addr = Option.map snd (lookup_prefix t addr)

let find_exact t prefix =
  let len = Prefix.length prefix in
  let net = Prefix.network prefix in
  let rec descend node depth =
    if depth = len then node.value
    else
      let child = if bit_of net depth = 0 then node.zero else node.one in
      match child with None -> None | Some c -> descend c (depth + 1)
  in
  descend t.root 0

let entries t =
  let acc = ref [] in
  let rec walk node bits depth =
    (match node.value with
    | Some v ->
        let net = Addr.of_int (bits lsl (32 - depth)) in
        acc := (Prefix.make net depth, v) :: !acc
    | None -> ());
    (match node.zero with
    | Some c -> walk c (bits lsl 1) (depth + 1)
    | None -> ());
    match node.one with
    | Some c -> walk c ((bits lsl 1) lor 1) (depth + 1)
    | None -> ()
  in
  walk t.root 0 0;
  List.sort (fun (p1, _) (p2, _) -> Prefix.compare p1 p2) !acc

let length t = t.count

let clear t =
  t.root <- fresh_node ();
  t.count <- 0

let pp pp_v ppf t =
  List.iter
    (fun (p, v) -> Format.fprintf ppf "%a -> %a@." Prefix.pp p pp_v v)
    (entries t)
