(** The original one-bit-per-node LPM trie, kept as a correctness oracle.

    {!Fib} (the production path-compressed trie + flow cache) must answer
    every lookup exactly as this structure does; property tests diff the
    two on randomized tables, and the perf suite reports the speedup of
    the replacement over this baseline.  O(prefix length) per operation,
    one heap node per bit of every inserted prefix. *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> Vini_net.Prefix.t -> 'a -> unit
(** Insert or replace the entry for a prefix. *)

val remove : 'a t -> Vini_net.Prefix.t -> unit
(** No-op when absent. *)

val lookup : 'a t -> Vini_net.Addr.t -> 'a option
(** Longest matching prefix's value. *)

val lookup_prefix : 'a t -> Vini_net.Addr.t -> (Vini_net.Prefix.t * 'a) option
(** Also reports which prefix matched. *)

val find_exact : 'a t -> Vini_net.Prefix.t -> 'a option
val entries : 'a t -> (Vini_net.Prefix.t * 'a) list
(** Sorted by (network, length). *)

val length : 'a t -> int
val clear : 'a t -> unit
val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
