module Prefix = Vini_net.Prefix
module Addr = Vini_net.Addr

(* Path-compressed binary trie: every node carries its full (network,
   length) prefix, children extend the parent's prefix by at least one
   bit, and single-child chains with no value are never materialized —
   a lookup touches one node per *branching point* on the path, not one
   per bit.  Addresses and networks are plain ints with the network bits
   left-aligned in the low 32 bits (as in {!Vini_net.Addr}). *)

type 'a node = {
  mutable net : int;  (* masked network bits of this node's prefix *)
  mutable plen : int; (* prefix length, 0..32 *)
  mutable value : 'a option;
  mutable zero : 'a node option;
  mutable one : 'a node option;
}

(* Direct-mapped flow cache in front of the trie: per-destination lookup
   results, invalidated wholesale by bumping [gen] on any table update
   (slots carry the generation they were filled in, so invalidation is
   O(1) and stale slots just miss). *)
type 'a slot = {
  mutable s_addr : int;
  mutable s_gen : int;
  mutable s_res : 'a option;
}

type 'a t = {
  mutable root : 'a node;
  mutable count : int;
  cache : 'a slot array;
  mutable gen : int;
  mutable hits : int;
  mutable misses : int;
}

let cache_bits = 8
let cache_size = 1 lsl cache_bits

let fresh_node ~net ~plen =
  { net; plen; value = None; zero = None; one = None }

let create () =
  {
    root = fresh_node ~net:0 ~plen:0;
    count = 0;
    cache =
      Array.init cache_size (fun _ -> { s_addr = 0; s_gen = 0; s_res = None });
    gen = 1;
    hits = 0;
    misses = 0;
  }

let masks =
  Array.init 33 (fun len ->
      if len = 0 then 0 else 0xFFFFFFFF lsl (32 - len) land 0xFFFFFFFF)

let bit_at x i = (x lsr (31 - i)) land 1

(* Leading equal bits of two 32-bit values, capped at [limit]. *)
let common_len a b limit =
  let x = a lxor b in
  if x = 0 then limit
  else begin
    let n = ref 0 and x = ref x in
    if !x land 0xFFFF0000 = 0 then begin n := !n + 16; x := !x lsl 16 end;
    if !x land 0xFF000000 = 0 then begin n := !n + 8; x := !x lsl 8 end;
    if !x land 0xF0000000 = 0 then begin n := !n + 4; x := !x lsl 4 end;
    if !x land 0xC0000000 = 0 then begin n := !n + 2; x := !x lsl 2 end;
    if !x land 0x80000000 = 0 then incr n;
    min !n limit
  end

let invalidate t = t.gen <- t.gen + 1

let child n b = if b = 0 then n.zero else n.one
let set_child n b c = if b = 0 then n.zero <- c else n.one <- c

let add t prefix v =
  let len = Prefix.length prefix in
  let net = Addr.to_int (Prefix.network prefix) in
  (* Descend to the insertion point, splitting the edge where the new
     prefix diverges from (or ends inside) an existing node's path. *)
  let rec graft opt =
    match opt with
    | None ->
        t.count <- t.count + 1;
        let n = fresh_node ~net ~plen:len in
        n.value <- Some v;
        Some n
    | Some n ->
        let c = common_len net n.net (min len n.plen) in
        if c = n.plen then
          if c = len then begin
            (* Exact node for this prefix. *)
            if n.value = None then t.count <- t.count + 1;
            n.value <- Some v;
            opt
          end
          else begin
            (* n's prefix is a proper prefix of ours: descend. *)
            let b = bit_at net n.plen in
            set_child n b (graft (child n b));
            opt
          end
        else begin
          (* Diverges inside n's path: split at c. *)
          let mid = fresh_node ~net:(net land masks.(c)) ~plen:c in
          set_child mid (bit_at n.net c) (Some n);
          if c = len then begin
            t.count <- t.count + 1;
            mid.value <- Some v
          end
          else begin
            t.count <- t.count + 1;
            let leaf = fresh_node ~net ~plen:len in
            leaf.value <- Some v;
            set_child mid (bit_at net c) (Some leaf)
          end;
          Some mid
        end
  in
  (* The root is the /0 node; len=0 updates it in place. *)
  if len = 0 then begin
    if t.root.value = None then t.count <- t.count + 1;
    t.root.value <- Some v
  end
  else begin
    let b = bit_at net 0 in
    set_child t.root b (graft (child t.root b))
  end;
  invalidate t

let remove t prefix =
  let len = Prefix.length prefix in
  let net = Addr.to_int (Prefix.network prefix) in
  let rec descend n =
    if n.plen = len && n.net = net then begin
      if n.value <> None then begin
        t.count <- t.count - 1;
        n.value <- None;
        invalidate t
      end
    end
    else if n.plen < len && net land masks.(n.plen) = n.net then
      match child n (bit_at net n.plen) with
      | Some c -> descend c
      | None -> ()
  in
  descend t.root

(* The hot path: zero allocation — the returned option is the one stored
   in the matching node, and misses walk at most one node per branching
   point.  [addr] is the raw int form. *)
let lookup_trie t addr =
  let rec go n best =
    let best = match n.value with Some _ -> n.value | None -> best in
    if n.plen >= 32 then best
    else
      match child n (bit_at addr n.plen) with
      | Some c when addr land masks.(c.plen) = c.net -> go c best
      | Some _ | None -> best
  in
  go t.root None

let lookup t addr_t =
  let addr = Addr.to_int addr_t in
  let s = t.cache.(addr lxor (addr lsr 16) land (cache_size - 1)) in
  if s.s_gen = t.gen && s.s_addr = addr then begin
    t.hits <- t.hits + 1;
    s.s_res
  end
  else begin
    t.misses <- t.misses + 1;
    let res = lookup_trie t addr in
    s.s_addr <- addr;
    s.s_gen <- t.gen;
    s.s_res <- res;
    res
  end

let lookup_prefix t addr_t =
  let addr = Addr.to_int addr_t in
  let rec go n best =
    let best = match n.value with Some _ -> Some n | None -> best in
    if n.plen >= 32 then best
    else
      match child n (bit_at addr n.plen) with
      | Some c when addr land masks.(c.plen) = c.net -> go c best
      | Some _ | None -> best
  in
  match go t.root None with
  | Some n -> (
      match n.value with
      | Some v -> Some (Prefix.make (Addr.of_int n.net) n.plen, v)
      | None -> None)
  | None -> None

let find_exact t prefix =
  let len = Prefix.length prefix in
  let net = Addr.to_int (Prefix.network prefix) in
  let rec go n =
    if n.plen = len then if n.net = net then n.value else None
    else if n.plen < len && net land masks.(n.plen) = n.net then
      match child n (bit_at net n.plen) with Some c -> go c | None -> None
    else None
  in
  go t.root

let entries t =
  let acc = ref [] in
  let rec walk n =
    (match n.value with
    | Some v -> acc := (Prefix.make (Addr.of_int n.net) n.plen, v) :: !acc
    | None -> ());
    (match n.zero with Some c -> walk c | None -> ());
    match n.one with Some c -> walk c | None -> ()
  in
  walk t.root;
  List.sort (fun (p1, _) (p2, _) -> Prefix.compare p1 p2) !acc

let length t = t.count

let clear t =
  t.root <- fresh_node ~net:0 ~plen:0;
  t.count <- 0;
  invalidate t

let cache_hits t = t.hits
let cache_misses t = t.misses
let generation t = t.gen

let pp pp_v ppf t =
  List.iter
    (fun (p, v) -> Format.fprintf ppf "%a -> %a@." Prefix.pp p pp_v v)
    (entries t)
