(** Seeded substrate generation (Internet-scale scenarios, DESIGN.md §17).

    Three generator families produce {!Vini_topo.Graph.t} substrates far
    larger than the built-in datasets, deterministically: the same
    [(kind, seed)] pair yields a byte-identical graph (and byte-identical
    [vini.topo/1] JSON) on every host, OCaml version, and domain count.

    - {b Waxman}: the classic random geometric model — nodes uniform on a
      continental square, edge probability decaying exponentially with
      distance.  A seeded random spanning tree is laid first, so the
      graph is connected by construction.
    - {b Fat-tree}: the k-ary datacenter fabric (core, aggregation, edge
      tiers); fully structural, the seed only stamps the label.
    - {b Backbone}: a synthetic continental backbone of metro PoP
      clusters — k-nearest-neighbour links inside the geography plus a
      post-generation augmentation pass that stitches any disconnected
      components, so 200+ PoP substrates are always connected.

    Link delays derive from great-circle-style plane distance at fiber
    speed, and IGP weights from delay, matching the dataset conventions,
    so OSPF on a generated substrate behaves like OSPF on Abilene. *)

type kind =
  | Waxman of { n : int; alpha : float; beta : float; bandwidth_bps : float }
  | Fat_tree of { k : int; bandwidth_bps : float }
  | Backbone of { pops : int; degree : int; bandwidth_bps : float }

type spec = { kind : kind; seed : int }

val waxman :
  ?alpha:float -> ?beta:float -> ?bandwidth_bps:float -> int -> kind
(** [waxman n] with the usual Waxman parameters (defaults
    [alpha = 0.4], [beta = 0.6], 1 Gb/s links). *)

val fat_tree : ?bandwidth_bps:float -> int -> kind
(** [fat_tree k] for even [k >= 2]: [(k/2)^2] core switches, [k] pods of
    [k/2] aggregation and [k/2] edge switches (defaults 10 Gb/s links). *)

val backbone : ?degree:int -> ?bandwidth_bps:float -> int -> kind
(** [backbone pops] synthetic continental backbone (defaults
    [degree = 3] nearest-neighbour links per PoP, 10 Gb/s). *)

val label : spec -> string
(** Deterministic name stamped on the generated graph, e.g.
    ["backbone-200-s42"]; {!Vini_topo.Graph.Unknown_node} errors on a
    generated substrate name it. *)

val generate : spec -> Vini_topo.Graph.t
(** Byte-identical per [spec]; always connected.
    @raise Invalid_argument on nonsensical parameters (n < 1, odd
    fat-tree arity, out-of-range probabilities). *)

(** {2 Pure model pieces, exposed for property tests} *)

val delay_of_km : float -> Vini_sim.Time.t
(** Fiber propagation for a plane distance in km (5 us/km, 100 us
    floor) — strictly monotone above the floor. *)

val weight_of_delay : Vini_sim.Time.t -> int
(** IGP weight from one-way delay (100 per ms, minimum 1) — monotone. *)

(** {2 The [vini.topo/1] interchange format} *)

val schema_version : string
(** ["vini.topo/1"]. *)

val to_json : spec -> Vini_topo.Graph.t -> Vini_std.Json.t
(** The substrate as a [vini.topo/1] document: schema tag, generator
    provenance (kind, parameters, seed), node names, and per-link
    bandwidth / delay (ns) / loss / weight.  Deterministic: field and
    array order are fixed, so equal specs give byte-identical text. *)

val document : spec -> string
(** [to_json] of [generate], printed. *)

val of_json : Vini_std.Json.t -> (Vini_topo.Graph.t, string) result
(** Load a substrate from a [vini.topo/1] document; the graph's label
    comes from the document.  Rejects wrong or missing schema tags. *)

val load_file : string -> (Vini_topo.Graph.t, string) result
(** Read and [of_json] a file; I/O errors become [Error]. *)

val parse_kind :
  string ->
  n:int ->
  ?alpha:float ->
  ?beta:float ->
  ?degree:int ->
  ?bandwidth_bps:float ->
  unit ->
  (kind, string) result
(** CLI/spec-language surface: ["waxman" | "fat-tree" | "backbone"] plus
    the size argument and optional knobs. *)
