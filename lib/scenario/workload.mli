(** Deterministic heavy-tailed workload generation (DESIGN.md §17).

    Models [users] simulated opt-in OpenVPN users as a single merged
    Poisson arrival process of flows with Pareto-distributed sizes — the
    classic heavy-tailed traffic mix.  The stream is {e lazy}: state is a
    clock, one RNG, and O(1) bookkeeping, so a million-user timeline costs
    nothing until pulled and is never materialised.

    Everything derives from [(params, seed)]: pulling N flows gives the
    same N flows on every host and domain count.  Users attach to
    substrate nodes by a seeded popularity skew (a few PoPs serve many
    opt-in users, most serve few), and each flow's wire cost includes
    OpenVPN encapsulation via {!Vini_overlay.Openvpn.wire_bytes}. *)

type params = {
  users : int;  (** simulated opt-in user population *)
  seed : int;
  flow_rate_per_user : float;  (** mean flows per second per user *)
  mean_flow_bytes : float;  (** mean Pareto flow size (payload bytes) *)
  pareto_shape : float;  (** tail index; must be > 1 for a finite mean *)
  popularity_skew : float;
      (** >= 0; 0 spreads users uniformly over nodes, larger values
          concentrate them onto the first nodes of a seeded permutation *)
}

val default : users:int -> seed:int -> params
(** 0.002 flows/s/user, 50 kB mean flows, shape 1.5, skew 1.0 — a light
    per-user rate so million-user populations stay tractable, with the
    canonical heavy tail. *)

val validate : params -> (unit, string) result

type flow = {
  at : Vini_sim.Time.t;  (** arrival instant *)
  user : int;
  src_node : int;  (** attachment PoP on the substrate *)
  dst_node : int;  (** egress PoP; never equal to [src_node] *)
  bytes : int;  (** payload size *)
  wire_bytes : int;  (** with OpenVPN encapsulation, MTU packetisation *)
}

type t

val create : params -> nodes:int -> t
(** A fresh stream over a substrate of [nodes] attachment points.
    @raise Invalid_argument if {!validate} fails or [nodes < 2]. *)

val next : t -> flow
(** Pull the next flow; the stream is infinite and strictly increasing in
    [at] (ties impossible: inter-arrivals are positive floats). *)

val peek_time : t -> Vini_sim.Time.t
(** Arrival instant of the flow {!next} would return, without consuming
    it — what the fluid tick uses to pull exactly the flows due. *)

val aggregate_rate : params -> float
(** Total flow arrivals per second, [users * flow_rate_per_user]. *)

val mean_offered_bps : params -> float
(** Expected offered payload load in bits per second. *)

val home_node : params -> nodes:int -> int -> int
(** [home_node p ~nodes u] is user [u]'s attachment node — a pure
    function of [(params.seed, u)], exposed for property tests of the
    popularity skew. *)
