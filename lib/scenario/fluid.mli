(** Hybrid packet/flow fidelity: the fluid background-load model
    (DESIGN.md §17).

    Packet-level simulation of every opt-in user's traffic caps scenario
    size; a million users sending real packets is neither affordable nor
    necessary when the question under study concerns a handful of slices.
    Following the fluid-model tradition, background demand from the
    {!Workload} stream is folded into per-link utilisation, queue
    occupancy, and loss {e pressure} on a coarse tick, while the slices
    under study keep full packet fidelity — decoupling fidelity from
    scale.

    Per tick, on every directed substrate link: due flows are pulled from
    the lazy stream and routed along current underlay shortest paths;
    their wire bytes join the link's fluid backlog; the link drains at
    capacity; backlog beyond the queue limit is dropped.  Offered load is
    conserved exactly: [offered = drained + dropped + backlog] at all
    times (see the QCheck property).

    The tick runs as an {!Vini_sim.Engine.every_barrier} event: shard 0,
    first in its conservative window, so all shards observe each fold
    coherently and the schedule stays a function of the seed — never the
    domain count.  Under {!Hybrid} fidelity the per-link queue delay and
    loss pressure are pushed into the packet path via
    {!Vini_phys.Plink.set_background}; under {!Flow} the model only
    accounts (useful for pure capacity studies); {!Packet} disables it. *)

type fidelity = Packet | Flow | Hybrid

val fidelity_of_string : string -> (fidelity, string) result
val fidelity_to_string : fidelity -> string

type config = {
  fidelity : fidelity;
  tick : Vini_sim.Time.t;  (** fold period; default {!default_tick} *)
  workload : Workload.params;
}

val default_tick : Vini_sim.Time.t
(** 100 ms — coarse enough to amortise the fold, fine enough that
    background pressure tracks demand shifts. *)

type link_load = {
  util : float;  (** drained / capacity over the last tick, in [0,1] *)
  queue_delay : Vini_sim.Time.t;  (** backlog / capacity *)
  loss : float;  (** drop pressure over the last tick, in [0,1] *)
  offered_bps : float;  (** demand arriving during the last tick *)
}

type totals = {
  flows : int;  (** flows pulled from the stream so far *)
  offered_bytes : float;
      (** link-level offered load: each flow's wire bytes counted once
          per link traversed (blackholed flows count once) — the unit in
          which conservation holds *)
  drained_bytes : float;
  dropped_bytes : float;
  backlog_bytes : float;  (** current fluid queue occupancy, all links *)
}

type t

val install :
  under:Vini_phys.Underlay.t -> config -> t
(** Create the model and schedule its recurring barrier tick on the
    underlay's engine, starting one tick from now.  Routing follows the
    underlay's current next-hop tables; path caches are invalidated on
    underlay topology upcalls, so chaos events redirect background load
    like they redirect packets.
    @raise Invalid_argument if the tick is not positive or the workload
    parameters fail {!Workload.validate}.  With [fidelity = Packet] no
    tick is scheduled and the model stays inert. *)

val config : t -> config
val totals : t -> totals

val link_load :
  t -> a:Vini_topo.Graph.node_id -> b:Vini_topo.Graph.node_id -> link_load
(** Load on the directed link [a -> b] as of the last tick.
    @raise Not_found if the nodes are not adjacent. *)

val ticks : t -> int

val to_json : t -> Vini_std.Json.t
(** The fluid section of the [vini.scenario/1] document: totals plus the
    per-directed-link load table in (a, b) order — deterministic. *)
