module Time = Vini_sim.Time
module Rng = Vini_std.Rng

type params = {
  users : int;
  seed : int;
  flow_rate_per_user : float;
  mean_flow_bytes : float;
  pareto_shape : float;
  popularity_skew : float;
}

let default ~users ~seed =
  {
    users;
    seed;
    flow_rate_per_user = 0.002;
    mean_flow_bytes = 50_000.0;
    pareto_shape = 1.5;
    popularity_skew = 1.0;
  }

let validate p =
  if p.users < 1 then Error "workload: users must be >= 1"
  else if p.flow_rate_per_user <= 0.0 then Error "workload: flow rate must be positive"
  else if p.mean_flow_bytes <= 0.0 then Error "workload: mean flow bytes must be positive"
  else if p.pareto_shape <= 1.0 then
    Error "workload: pareto shape must exceed 1 (finite mean)"
  else if p.popularity_skew < 0.0 then Error "workload: skew must be >= 0"
  else Ok ()

type flow = {
  at : Time.t;
  user : int;
  src_node : int;
  dst_node : int;
  bytes : int;
  wire_bytes : int;
}

type t = {
  p : params;
  nodes : int;
  rng : Rng.t;
  perm : int array;  (* seeded node permutation: popularity order *)
  mutable clock : float;  (* seconds; float to keep exponential precision *)
  mutable pending : flow option;  (* the peeked-but-unconsumed head *)
}

(* A power-law index pick over [0, n): u = 0 is most popular.  With
   skew 0 this is uniform; skew s maps the uniform draw x to
   x^(1 + s), concentrating mass near zero — a one-draw stand-in for
   Zipf that keeps the stream O(1) per flow. *)
let skewed_index rng ~skew n =
  let x = Rng.float rng 1.0 in
  let y = x ** (1.0 +. skew) in
  Stdlib.min (n - 1) (int_of_float (y *. float_of_int n))

(* User -> attachment node, pure in (seed, user): a private RNG keyed by
   both, then a skewed pick into the seeded popularity permutation. *)
let home_pick ~seed ~skew ~nodes ~perm u =
  let mix = (u * 0x9E3779B1) lxor (seed * 0x85EBCA77) lxor 0x165667B1 in
  let rng = Rng.create mix in
  perm.(skewed_index rng ~skew nodes)

let popularity_perm ~seed ~nodes =
  let perm = Array.init nodes Fun.id in
  (* A dedicated RNG stream so adding parameters never shifts it. *)
  Rng.shuffle (Rng.create (seed lxor 0x5DEECE6D)) perm;
  perm

let home_node p ~nodes u =
  if nodes < 1 then invalid_arg "Workload.home_node: nodes";
  let perm = popularity_perm ~seed:p.seed ~nodes in
  home_pick ~seed:p.seed ~skew:p.popularity_skew ~nodes ~perm u

let aggregate_rate p = float_of_int p.users *. p.flow_rate_per_user
let mean_offered_bps p = aggregate_rate p *. p.mean_flow_bytes *. 8.0

let create p ~nodes =
  (match validate p with Ok () -> () | Error e -> invalid_arg e);
  if nodes < 2 then invalid_arg "Workload.create: need at least 2 nodes";
  {
    p;
    nodes;
    rng = Rng.create p.seed;
    perm = popularity_perm ~seed:p.seed ~nodes;
    clock = 0.0;
    pending = None;
  }

let draw t =
  let p = t.p in
  (* Merged Poisson process: the superposition of [users] independent
     Poisson sources is Poisson at the aggregate rate, so one
     exponential draw advances the whole population's clock. *)
  t.clock <- t.clock +. Rng.exponential t.rng (1.0 /. aggregate_rate p);
  let user = skewed_index t.rng ~skew:0.0 p.users in
  let src_node =
    home_pick ~seed:p.seed ~skew:p.popularity_skew ~nodes:t.nodes ~perm:t.perm
      user
  in
  (* Egress popularity follows the same skew; a collision with the
     source steps to the next permutation slot, which is necessarily a
     different node. *)
  let dst_node =
    let i = skewed_index t.rng ~skew:p.popularity_skew t.nodes in
    let d = t.perm.(i) in
    if d <> src_node then d else t.perm.((i + 1) mod t.nodes)
  in
  (* Pareto sizes with the scale set so the mean is [mean_flow_bytes]:
     E[X] = scale * a / (a - 1). *)
  let a = p.pareto_shape in
  let scale = p.mean_flow_bytes *. (a -. 1.0) /. a in
  let bytes = Stdlib.max 1 (int_of_float (Rng.pareto t.rng ~scale ~shape:a)) in
  {
    at = Time.of_sec_f t.clock;
    user;
    src_node;
    dst_node;
    bytes;
    wire_bytes = Vini_overlay.Openvpn.wire_bytes ~payload:bytes;
  }

let next t =
  match t.pending with
  | Some f ->
      t.pending <- None;
      f
  | None -> draw t

let peek_time t =
  match t.pending with
  | Some f -> f.at
  | None ->
      let f = draw t in
      t.pending <- Some f;
      f.at
