module Graph = Vini_topo.Graph
module Time = Vini_sim.Time
module Rng = Vini_std.Rng
module Json = Vini_std.Json

type kind =
  | Waxman of { n : int; alpha : float; beta : float; bandwidth_bps : float }
  | Fat_tree of { k : int; bandwidth_bps : float }
  | Backbone of { pops : int; degree : int; bandwidth_bps : float }

type spec = { kind : kind; seed : int }

let waxman ?(alpha = 0.4) ?(beta = 0.6) ?(bandwidth_bps = 1e9) n =
  Waxman { n; alpha; beta; bandwidth_bps }

let fat_tree ?(bandwidth_bps = 10e9) k = Fat_tree { k; bandwidth_bps }

let backbone ?(degree = 3) ?(bandwidth_bps = 10e9) pops =
  Backbone { pops; degree; bandwidth_bps }

let kind_name = function
  | Waxman _ -> "waxman"
  | Fat_tree _ -> "fat-tree"
  | Backbone _ -> "backbone"

let label spec =
  match spec.kind with
  | Waxman { n; _ } -> Printf.sprintf "waxman-%d-s%d" n spec.seed
  | Fat_tree { k; _ } -> Printf.sprintf "fat-tree-%d-s%d" k spec.seed
  | Backbone { pops; _ } -> Printf.sprintf "backbone-%d-s%d" pops spec.seed

(* ---- the shared geometric conventions ----------------------------------- *)

(* 5 us of fiber per km with a 100 us floor, like the Waxman dataset. *)
let delay_of_km km = Time.of_sec_f (Float.max 100e-6 (km *. 5e-6))

let weight_of_delay d = Stdlib.max 1 (int_of_float (Time.to_ms_f d *. 100.0))

let mk_link ~bw ~km i j =
  let delay = delay_of_km km in
  {
    Graph.a = min i j;
    b = max i j;
    bandwidth_bps = bw;
    delay;
    loss = 0.0;
    weight = weight_of_delay delay;
  }

(* ---- Waxman ------------------------------------------------------------- *)

let gen_waxman ~seed ~n ~alpha ~beta ~bw =
  if n < 1 then invalid_arg "Generate: waxman n must be positive";
  if alpha <= 0.0 || alpha > 1.0 then invalid_arg "Generate: waxman alpha";
  if beta <= 0.0 then invalid_arg "Generate: waxman beta";
  let rng = Rng.create seed in
  let km_square = 4000.0 in
  let xs = Array.init n (fun _ -> Rng.float rng 1.0) in
  let ys = Array.init n (fun _ -> Rng.float rng 1.0) in
  let dist i j = Float.hypot (xs.(i) -. xs.(j)) (ys.(i) -. ys.(j)) in
  let have = Hashtbl.create (4 * n) in
  let links = ref [] in
  let add i j =
    let key = (min i j, max i j) in
    if i <> j && not (Hashtbl.mem have key) then begin
      Hashtbl.add have key ();
      links := mk_link ~bw ~km:(dist i j *. km_square) i j :: !links
    end
  in
  (* Seeded random spanning tree first: connected by construction. *)
  for i = 1 to n - 1 do
    add i (Rng.int rng i)
  done;
  let l = Float.sqrt 2.0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let p = alpha *. exp (-.dist i j /. (beta *. l)) in
      if Rng.float rng 1.0 < p then add i j
    done
  done;
  Graph.create ~names:(Array.init n (Printf.sprintf "n%d")) ~links:!links

(* ---- k-ary fat-tree ----------------------------------------------------- *)

let gen_fat_tree ~k ~bw =
  if k < 2 || k mod 2 <> 0 then
    invalid_arg "Generate: fat-tree arity must be even and >= 2";
  let h = k / 2 in
  let cores = h * h in
  (* Node ids: cores first, then per pod [h] aggregation then [h] edge. *)
  let core c = c in
  let agg p j = cores + (p * 2 * h) + j in
  let edge p j = cores + (p * 2 * h) + h + j in
  let names =
    Array.init
      (cores + (k * 2 * h))
      (fun i ->
        if i < cores then Printf.sprintf "core%d" i
        else
          let r = i - cores in
          let p = r / (2 * h) and s = r mod (2 * h) in
          if s < h then Printf.sprintf "agg%d-%d" p s
          else Printf.sprintf "edge%d-%d" p (s - h))
  in
  (* Datacenter spans: 5 us per hop regardless of tier. *)
  let km = 1.0 in
  let links = ref [] in
  for p = 0 to k - 1 do
    for j = 0 to h - 1 do
      (* Aggregation j uplinks to its core group. *)
      for c = 0 to h - 1 do
        links := mk_link ~bw ~km (agg p j) (core ((j * h) + c)) :: !links
      done;
      (* Every edge switch in the pod connects to every aggregation. *)
      for e = 0 to h - 1 do
        links := mk_link ~bw ~km (agg p j) (edge p e) :: !links
      done
    done
  done;
  Graph.create ~names ~links:!links

(* ---- synthetic continental backbone ------------------------------------- *)

let gen_backbone ~seed ~pops ~degree ~bw =
  if pops < 2 then invalid_arg "Generate: backbone needs at least 2 PoPs";
  if degree < 1 then invalid_arg "Generate: backbone degree must be >= 1";
  let rng = Rng.create seed in
  (* Metro clusters on a 4500 x 3000 km continent; each PoP belongs to a
     cluster and sits a normal-jittered ~80 km from its center. *)
  let n_clusters = Stdlib.max 4 (pops / 16) in
  let cx = Array.init n_clusters (fun _ -> Rng.float rng 4500.0) in
  let cy = Array.init n_clusters (fun _ -> Rng.float rng 3000.0) in
  let xs = Array.make pops 0.0 and ys = Array.make pops 0.0 in
  for i = 0 to pops - 1 do
    let c = Rng.int rng n_clusters in
    xs.(i) <- cx.(c) +. Rng.normal rng ~mean:0.0 ~stddev:80.0;
    ys.(i) <- cy.(c) +. Rng.normal rng ~mean:0.0 ~stddev:80.0
  done;
  let dist i j = Float.hypot (xs.(i) -. xs.(j)) (ys.(i) -. ys.(j)) in
  let have = Hashtbl.create (4 * pops) in
  let links = ref [] in
  let add i j =
    let key = (min i j, max i j) in
    if i <> j && not (Hashtbl.mem have key) then begin
      Hashtbl.add have key ();
      links := mk_link ~bw ~km:(dist i j) i j :: !links
    end
  in
  (* k-nearest-neighbour pass: each PoP links to its [degree] nearest
     peers, ties broken by id — deterministic. *)
  for i = 0 to pops - 1 do
    let order = Array.init pops Fun.id in
    Array.sort
      (fun a b ->
        let c = Float.compare (dist i a) (dist i b) in
        if c <> 0 then c else compare a b)
      order;
    let taken = ref 0 and j = ref 0 in
    while !taken < degree && !j < pops do
      if order.(!j) <> i then begin
        add i order.(!j);
        incr taken
      end;
      incr j
    done
  done;
  (* Augmentation: nearest-neighbour graphs can fragment into islands.
     Find components and stitch each non-root component to the closest
     PoP outside it — repeat until one component remains.  Component
     discovery is in id order, so the stitches are deterministic. *)
  let parent = Array.init pops Fun.id in
  let rec find x = if parent.(x) = x then x else find parent.(x) in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then parent.(Stdlib.max ra rb) <- Stdlib.min ra rb
  in
  List.iter (fun l -> union l.Graph.a l.Graph.b) !links;
  let rec stitch () =
    let root0 = find 0 in
    let island =
      let r = ref (-1) in
      for i = pops - 1 downto 0 do
        if find i <> root0 then r := find i
      done;
      !r
    in
    if island >= 0 then begin
      (* Closest cross-component pair touching this island. *)
      let best = ref (infinity, -1, -1) in
      for i = 0 to pops - 1 do
        if find i = island then
          for j = 0 to pops - 1 do
            if find j <> island then begin
              let d = dist i j in
              let bd, _, _ = !best in
              if d < bd then best := (d, i, j)
            end
          done
      done;
      let _, i, j = !best in
      add i j;
      union i j;
      stitch ()
    end
  in
  stitch ();
  Graph.create
    ~names:(Array.init pops (Printf.sprintf "pop%03d"))
    ~links:!links

let generate spec =
  let g =
    match spec.kind with
    | Waxman { n; alpha; beta; bandwidth_bps } ->
        gen_waxman ~seed:spec.seed ~n ~alpha ~beta ~bw:bandwidth_bps
    | Fat_tree { k; bandwidth_bps } -> gen_fat_tree ~k ~bw:bandwidth_bps
    | Backbone { pops; degree; bandwidth_bps } ->
        gen_backbone ~seed:spec.seed ~pops ~degree ~bw:bandwidth_bps
  in
  Graph.relabel (label spec) g

(* ---- vini.topo/1 -------------------------------------------------------- *)

let schema_version = "vini.topo/1"

let params_json = function
  | Waxman { n; alpha; beta; bandwidth_bps } ->
      Json.Obj
        [
          ("n", Json.Num (float_of_int n));
          ("alpha", Json.Num alpha);
          ("beta", Json.Num beta);
          ("bandwidth_bps", Json.Num bandwidth_bps);
        ]
  | Fat_tree { k; bandwidth_bps } ->
      Json.Obj
        [
          ("k", Json.Num (float_of_int k));
          ("bandwidth_bps", Json.Num bandwidth_bps);
        ]
  | Backbone { pops; degree; bandwidth_bps } ->
      Json.Obj
        [
          ("pops", Json.Num (float_of_int pops));
          ("degree", Json.Num (float_of_int degree));
          ("bandwidth_bps", Json.Num bandwidth_bps);
        ]

let to_json spec g =
  let links =
    List.map
      (fun (l : Graph.link) ->
        Json.Obj
          [
            ("a", Json.Num (float_of_int l.Graph.a));
            ("b", Json.Num (float_of_int l.Graph.b));
            ("bandwidth_bps", Json.Num l.Graph.bandwidth_bps);
            ("delay_ns", Json.Num (float_of_int l.Graph.delay));
            ("loss", Json.Num l.Graph.loss);
            ("weight", Json.Num (float_of_int l.Graph.weight));
          ])
      (Graph.links g)
  in
  Json.Obj
    [
      ("schema", Json.Str schema_version);
      ( "generator",
        Json.Obj
          [
            ("kind", Json.Str (kind_name spec.kind));
            ("seed", Json.Num (float_of_int spec.seed));
            ("params", params_json spec.kind);
          ] );
      ("label", Json.Str (Graph.label g));
      ( "nodes",
        Json.Arr
          (List.map (fun i -> Json.Str (Graph.name g i)) (Graph.nodes g)) );
      ("links", Json.Arr links);
    ]

let document spec = Json.to_string (to_json spec (generate spec))

let of_json j =
  let ( let* ) = Result.bind in
  let field name v =
    match Json.member name v with
    | Some x -> Ok x
    | None -> Error (Printf.sprintf "vini.topo: missing %S" name)
  in
  let num name v =
    let* x = field name v in
    match Json.to_float x with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "vini.topo: %S is not a number" name)
  in
  let* schema = field "schema" j in
  let* () =
    match Json.to_str schema with
    | Some s when s = schema_version -> Ok ()
    | Some s ->
        Error
          (Printf.sprintf "vini.topo: unsupported schema %S (expected %S)" s
             schema_version)
    | None -> Error "vini.topo: schema tag is not a string"
  in
  let* label =
    match Json.member "label" j with
    | Some (Json.Str s) -> Ok s
    | Some _ -> Error "vini.topo: label is not a string"
    | None -> Ok "loaded-topology"
  in
  let* nodes = field "nodes" j in
  let* names =
    match Json.to_list nodes with
    | None -> Error "vini.topo: nodes is not an array"
    | Some items ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            match Json.to_str item with
            | Some s -> Ok (s :: acc)
            | None -> Error "vini.topo: node name is not a string")
          (Ok []) items
        |> Result.map (fun l -> Array.of_list (List.rev l))
  in
  let* links_json = field "links" j in
  let* links =
    match Json.to_list links_json with
    | None -> Error "vini.topo: links is not an array"
    | Some items ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let* a = num "a" item in
            let* b = num "b" item in
            let* bw = num "bandwidth_bps" item in
            let* delay_ns = num "delay_ns" item in
            let* loss = num "loss" item in
            let* weight = num "weight" item in
            Ok
              ({
                 Graph.a = int_of_float a;
                 b = int_of_float b;
                 bandwidth_bps = bw;
                 delay = int_of_float delay_ns;
                 loss;
                 weight = int_of_float weight;
               }
              :: acc))
          (Ok []) items
        |> Result.map List.rev
  in
  match Graph.create ~names ~links with
  | g -> Ok (Graph.relabel label g)
  | exception Invalid_argument msg -> Error ("vini.topo: " ^ msg)

let load_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text -> (
      match Json.of_string text with
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
      | Ok j -> of_json j)

let parse_kind name ~n ?alpha ?beta ?degree ?bandwidth_bps () =
  match name with
  | "waxman" -> Ok (waxman ?alpha ?beta ?bandwidth_bps n)
  | "fat-tree" | "fattree" -> Ok (fat_tree ?bandwidth_bps n)
  | "backbone" -> Ok (backbone ?degree ?bandwidth_bps n)
  | _ ->
      Error
        (Printf.sprintf
           "unknown generator %S (expected waxman | fat-tree | backbone)" name)
