module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Graph = Vini_topo.Graph
module Underlay = Vini_phys.Underlay
module Plink = Vini_phys.Plink
module Json = Vini_std.Json

type fidelity = Packet | Flow | Hybrid

let fidelity_of_string = function
  | "packet" -> Ok Packet
  | "flow" -> Ok Flow
  | "hybrid" -> Ok Hybrid
  | s ->
      Error
        (Printf.sprintf "unknown fidelity %S (expected packet | flow | hybrid)" s)

let fidelity_to_string = function
  | Packet -> "packet"
  | Flow -> "flow"
  | Hybrid -> "hybrid"

let default_tick = Time.ms 100

type config = {
  fidelity : fidelity;
  tick : Time.t;
  workload : Workload.params;
}

type link_load = {
  util : float;
  queue_delay : Time.t;
  loss : float;
  offered_bps : float;
}

type totals = {
  flows : int;
  offered_bytes : float;
  drained_bytes : float;
  dropped_bytes : float;
  backlog_bytes : float;
}

(* One fluid queue per directed substrate link.  [inflow] accumulates
   demand routed onto the link since the last fold; the fold drains it
   against capacity and leaves [backlog]. *)
type dir_q = {
  mutable backlog : float;  (* bytes queued *)
  mutable inflow : float;  (* bytes arrived this tick *)
  mutable last : link_load;  (* as of the last fold, for readers *)
}

let zero_load =
  { util = 0.0; queue_delay = Time.zero; loss = 0.0; offered_bps = 0.0 }

type t = {
  cfg : config;
  under : Underlay.t;
  graph : Graph.t;
  stream : Workload.t;
  links : Graph.link array;  (* indexed link table, list order *)
  qs : dir_q array;  (* 2 per link: [2i] is a->b, [2i+1] is b->a *)
  edge_index : (int * int, int) Hashtbl.t;  (* (min, max) -> link index *)
  paths : (int * int, int list) Hashtbl.t;  (* (src, dst) -> dir_q ids *)
  mutable flows : int;
  mutable offered : float;
  mutable drained : float;
  mutable dropped : float;
  mutable ticks : int;
  mutable stopped : bool;
}

let dir_of u v = if u < v then 0 else 1

(* Walk the underlay's next-hop tables from src to dst, returning the
   directed-queue ids along the way.  Memoised; the cache is flushed on
   every underlay topology upcall so chaos redirects background load the
   same way it redirects packets. *)
let route t src dst =
  match Hashtbl.find_opt t.paths (src, dst) with
  | Some p -> Some p
  | None ->
      let n = Graph.node_count t.graph in
      let rec walk acc hops u =
        if u = dst then Some (List.rev acc)
        else if hops > n then None (* routing loop: treat as blackhole *)
        else
          match Underlay.next_hop t.under ~from:u ~dst with
          | None -> None
          | Some v -> (
              match Hashtbl.find_opt t.edge_index (min u v, max u v) with
              | None -> None
              | Some li -> walk ((2 * li) + dir_of u v :: acc) (hops + 1) v)
      in
      let p = walk [] 0 src in
      (match p with Some p -> Hashtbl.replace t.paths (src, dst) p | None -> ());
      p

let capacity_bps t li = t.links.(li).Graph.bandwidth_bps

(* Fluid queues cap at the same drop-tail byte limit the packet path
   uses, so flow-level and packet-level congestion agree on where loss
   starts. *)
let queue_limit = float_of_int Vini_phys.Calibration.link_queue_bytes

let fold t =
  let now_bin = Engine.now (Underlay.engine t.under) in
  (* 1. Pull every flow due by now and add its wire bytes along its
     path.  Offered load is link-level (bytes x hops traversed), so it
     balances against the per-link drain/drop/backlog sums below.  A
     blackholed flow (no route) is dropped whole at the edge. *)
  while Time.compare (Workload.peek_time t.stream) now_bin <= 0 do
    let f = Workload.next t.stream in
    t.flows <- t.flows + 1;
    let bytes = float_of_int f.Workload.wire_bytes in
    match route t f.Workload.src_node f.Workload.dst_node with
    | None ->
        t.offered <- t.offered +. bytes;
        t.dropped <- t.dropped +. bytes
    | Some path ->
        List.iter
          (fun qi ->
            t.offered <- t.offered +. bytes;
            t.qs.(qi).inflow <- t.qs.(qi).inflow +. bytes)
          path
  done;
  (* 2. Drain each directed link at capacity for one tick; excess over
     the queue limit is dropped.  Offered = drained + dropped + backlog
     holds exactly (all float additions, same order every run). *)
  let tick_s = Time.to_sec_f t.cfg.tick in
  Array.iteri
    (fun qi q ->
      let li = qi / 2 in
      let l = t.links.(li) in
      let cap_bytes_s = capacity_bps t li /. 8.0 in
      let up = Underlay.link_is_up t.under l.Graph.a l.Graph.b in
      let arrived = q.inflow in
      let total = q.backlog +. arrived in
      let drained, dropped, backlog =
        if not up then (0.0, total, 0.0)
        else begin
          let drained = Float.min total (cap_bytes_s *. tick_s) in
          let rest = total -. drained in
          let dropped = Float.max 0.0 (rest -. queue_limit) in
          (drained, dropped, rest -. dropped)
        end
      in
      q.inflow <- 0.0;
      q.backlog <- backlog;
      t.drained <- t.drained +. drained;
      t.dropped <- t.dropped +. dropped;
      let load =
        {
          util =
            (if cap_bytes_s *. tick_s > 0.0 then
               Float.min 1.0 (drained /. (cap_bytes_s *. tick_s))
             else 0.0);
          queue_delay = Time.of_sec_f (backlog /. cap_bytes_s);
          loss = (if total > 0.0 then Float.min 1.0 (dropped /. total) else 0.0);
          offered_bps = arrived *. 8.0 /. tick_s;
        }
      in
      q.last <- load;
      (* 3. Hybrid coupling: the packet path on this link sees the fluid
         queue as added delay and loss pressure. *)
      if t.cfg.fidelity = Hybrid && up then
        Plink.set_background
          (Underlay.plink t.under l.Graph.a l.Graph.b)
          ~dir:(qi mod 2) ~delay:load.queue_delay ~loss:load.loss)
    t.qs

let install ~under cfg =
  if Time.compare cfg.tick Time.zero <= 0 then
    invalid_arg "Fluid.install: tick must be positive";
  (match Workload.validate cfg.workload with
  | Ok () -> ()
  | Error e -> invalid_arg ("Fluid.install: " ^ e));
  let graph = Underlay.graph under in
  let links = Array.of_list (Graph.links graph) in
  let edge_index = Hashtbl.create (Array.length links) in
  Array.iteri
    (fun i l ->
      Hashtbl.replace edge_index
        (min l.Graph.a l.Graph.b, max l.Graph.a l.Graph.b)
        i)
    links;
  let t =
    {
      cfg;
      under;
      graph;
      stream = Workload.create cfg.workload ~nodes:(Graph.node_count graph);
      links;
      qs =
        Array.init
          (2 * Array.length links)
          (fun _ -> { backlog = 0.0; inflow = 0.0; last = zero_load });
      edge_index;
      paths = Hashtbl.create 64;
      flows = 0;
      offered = 0.0;
      drained = 0.0;
      dropped = 0.0;
      ticks = 0;
      stopped = false;
    }
  in
  if cfg.fidelity <> Packet then begin
    Underlay.subscribe under (fun _ -> Hashtbl.reset t.paths);
    Engine.every_barrier (Underlay.engine under) cfg.tick (fun () ->
        if not t.stopped then begin
          fold t;
          t.ticks <- t.ticks + 1
        end;
        not t.stopped)
  end;
  t

let config t = t.cfg

let totals t =
  let backlog = Array.fold_left (fun acc q -> acc +. q.backlog) 0.0 t.qs in
  {
    flows = t.flows;
    offered_bytes = t.offered;
    drained_bytes = t.drained;
    dropped_bytes = t.dropped;
    backlog_bytes = backlog;
  }

let link_load t ~a ~b =
  match Hashtbl.find_opt t.edge_index (min a b, max a b) with
  | None -> raise Not_found
  | Some li -> t.qs.((2 * li) + dir_of a b).last

let ticks t = t.ticks

let to_json t =
  let tot = totals t in
  let per_link =
    List.concat
      (List.mapi
         (fun li (l : Graph.link) ->
           List.map
             (fun d ->
               let q = t.qs.((2 * li) + d) in
               let u, v =
                 if d = 0 then (l.Graph.a, l.Graph.b) else (l.Graph.b, l.Graph.a)
               in
               Json.Obj
                 [
                   ("from", Json.Str (Graph.name t.graph u));
                   ("to", Json.Str (Graph.name t.graph v));
                   ("util", Json.Num q.last.util);
                   ( "queue_delay_ms",
                     Json.Num (Time.to_ms_f q.last.queue_delay) );
                   ("loss", Json.Num q.last.loss);
                   ("offered_bps", Json.Num q.last.offered_bps);
                   ("backlog_bytes", Json.Num q.backlog);
                 ])
             [ 0; 1 ])
         (Array.to_list t.links))
  in
  Json.Obj
    [
      ("fidelity", Json.Str (fidelity_to_string t.cfg.fidelity));
      ("tick_ms", Json.Num (Time.to_ms_f t.cfg.tick));
      ("ticks", Json.Num (float_of_int t.ticks));
      ("flows", Json.Num (float_of_int tot.flows));
      ("offered_bytes", Json.Num tot.offered_bytes);
      ("drained_bytes", Json.Num tot.drained_bytes);
      ("dropped_bytes", Json.Num tot.dropped_bytes);
      ("backlog_bytes", Json.Num tot.backlog_bytes);
      ("links", Json.Arr per_link);
    ]
