(** Structured, bounded event tracing — the "collect traces of the
    experiment" facility of §6.2, grown up.

    Events are typed and categorized ({!kind}), carry a severity and a
    dotted component path ("click.fwdr.queue"), and land in a fixed-size
    ring buffer, so a trace never grows without bound: once full, the
    oldest events are overwritten (and counted in {!overwritten}).

    Hot paths emit through the {e global sink} ({!install} / {!emit})
    guarded by {!on}, a single mask test that costs ~nothing when no sink
    is installed or the category is disabled — instrumentation can stay in
    packet-rate code.  Timestamps come from the global simulation clock,
    which {!Engine.create} registers automatically ({!set_clock}). *)

type severity = Debug | Info | Warn | Error

val severity_name : severity -> string

(** Event categories, for per-category enable/disable. *)
module Category : sig
  type t =
    | Packet_tx
    | Packet_rx
    | Packet_drop
    | Route_update
    | Sched_latency
    | Fault_injected
    | Process_lifecycle
    | Watchdog
    | Span  (** per-packet flight-recorder records ({!Vini_sim.Span}) *)
    | Custom

  val all : t list
  val name : t -> string
  val of_name : string -> t option
end

(** What happened.  Each constructor maps to one {!Category.t}. *)
type kind =
  | Packet_tx of { bytes : int }
  | Packet_rx of { bytes : int }
  | Packet_drop of { reason : string; bytes : int }
  | Route_update of { prefix : string; action : string }
  | Sched_latency of { seconds : float }
  | Fault_injected of { action : string }
  | Process_lifecycle of { phase : string; detail : string }
      (** [phase] is one of "crash", "restart", "give-up", "reboot";
          the component path names the process or node. *)
  | Watchdog_check of { check : string; detail : string }
  | Custom of string

val category_of_kind : kind -> Category.t

type event = {
  time : Time.t;
  severity : severity;
  component : string;
  kind : kind;
}

type t

val create : ?capacity:int -> ?categories:Category.t list -> unit -> t
(** A ring buffer of [capacity] events (default 65536) with the given
    categories enabled (default: all).
    @raise Invalid_argument if [capacity <= 0]. *)

val record : ?severity:severity -> t -> component:string -> kind -> unit
(** Append one event (default severity [Info]), stamped with the global
    simulation clock.  No-op if the event's category is disabled. *)

(** {2 The global sink}

    Instrumented subsystems emit here so packet-rate code needs no trace
    handle.  With no sink installed, {!on} is [false] and {!emit} is a
    no-op. *)

val install : t -> unit
val uninstall : unit -> unit
val sink : unit -> t option

val on : Category.t -> bool
(** One load + mask test: [true] iff a sink is installed {e and} the
    category is enabled on it.  Guard any emission that allocates:
    [if Trace.on Trace.Category.Packet_drop then Trace.emit ...]. *)

val emit : ?severity:severity -> component:string -> kind -> unit
val message : component:string -> string -> unit
(** [message ~component detail] emits [Custom detail]. *)

(** {2 Category filtering} *)

val enabled : t -> Category.t -> bool
val enable : t -> Category.t -> unit
val disable : t -> Category.t -> unit
val set_categories : t -> Category.t list -> unit

(** {2 Inspection} *)

val length : t -> int
val capacity : t -> int

val overwritten : t -> int
(** Events lost to ring wraparound since the last {!clear}. *)

val events : t -> event list
(** Chronological (oldest retained first). *)

val find : t -> component:string -> event list
val find_cat : t -> Category.t -> event list
val clear : t -> unit

val set_clock : (unit -> Time.t) -> unit
(** Source of event timestamps; registered by {!Engine.create}. *)

val now : unit -> Time.t
(** The registered simulation clock's current time ([Time.zero] before any
    engine exists).  Span instrumentation stamps records with it. *)

(** {2 Span-recorder gate (used by [Vini_sim.Span])}

    The flight recorder's ring lives in [Vini_sim.Span], but its hot-path
    gate is kept here so it can combine with the sink's category mask:
    spans are live iff a recorder is installed {e and} the installed sink
    enables {!Category.Span}. *)

val span_gate : bool ref
(** [true] iff span records should be recorded.  Read via [Span.on];
    never write it directly — it is recomputed by {!install},
    {!uninstall}, {!set_categories}, {!enable}, {!disable} and
    {!set_span_recorder}. *)

val set_span_recorder : bool -> unit
(** Called by [Span.install] / [Span.uninstall] to declare whether a span
    ring is present. *)

val kind_detail : kind -> string
(** Short human rendering of the payload. *)

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
