(** Conservative parallel discrete-event coordinator over {!Shard}s.

    The coordinator advances a fixed set of logical shards in lockstep
    {e windows}.  Each window:

    + {b Barrier drain} — every outbox is emptied into its destination
      shard in ascending (source shard id, push order); then every
      cross-shard cancellation issued since the last barrier is applied.
      After the drain nothing is in flight, so each shard's earliest
      queued event is its true earliest possible action.
    + {b Horizon fixpoint} — with [h(s)] the earliest queued time of
      shard [s] and [L(p,s)] the lookahead (minimum latency) of the
      [p -> s] channel, the earliest instant shard [s] can possibly act is
      the least fixpoint [ĥ(s) = min(h(s), min_p (ĥ(p) + L(p,s)))] —
      an idle shard can still be awakened transitively.  Computed by
      relaxation over the lookahead graph ([O(S²)] per window; shard
      counts are small).
    + {b Safe bound} — shard [s] may fire every event strictly before
      [bound(s) = min_p (ĥ(p) + L(p,s))]: any future inbound message
      arrives at or after that instant.  Since [L > 0], the shard holding
      the global minimum always has [bound > h], so every window makes
      progress.
    + {b Execute} — shards run their windows with no shared state (the
      {!Shard} confinement contract), distributed round-robin over up to
      [domains] OCaml domains.  Whether the window executes on one domain
      or eight, each shard performs the same event sequence, so a seeded
      run is byte-identical at any domain count.

    Determinism therefore depends only on: fixed shard count, per-shard
    seeded RNG streams, calendar (time, seq) order, and barrier drains in
    (shard id, seq) order — all independent of physical parallelism. *)

type t

val create :
  ?seed:int ->
  ?mailbox_capacity:int ->
  shards:int ->
  domains:int ->
  lookahead:(int -> int -> Time.t option) ->
  unit ->
  t
(** [create ~shards ~domains ~lookahead ()] builds [shards] logical
    shards executed on [min domains shards] domains.  [lookahead src dst]
    is the minimum latency of the [src -> dst] channel ([None]: no
    channel, posting is forbidden); it is sampled once into a matrix at
    creation and must be positive wherever defined.  Each shard derives
    its own RNG stream from [seed] (default 42), so results do not depend
    on [domains].  [mailbox_capacity] (default 8192) bounds each
    per-pair outbox.

    @raise Invalid_argument on [shards < 1], [domains < 1], or a
    non-positive lookahead. *)

val shard : t -> int -> Shard.t
val nshards : t -> int
val domains : t -> int

val run : ?until:Time.t -> t -> unit
(** Execute windows until every queue is empty, or until the earliest
    remaining event lies beyond [until] (shard clocks then advance to
    [until], mirroring {!Engine.run}).  Re-entrant across calls: pending
    events, in-flight posts and cancellations survive between runs.  An
    exception raised by a callback aborts the run after the current
    window's surviving shards finish, and is re-raised on the calling
    domain. *)

val now : t -> Time.t
(** Globally safe time: the minimum shard clock. *)

val pending : t -> int
(** Live (scheduled, unfired, uncancelled) events across all shards. *)

val events_fired : t -> int
val events_cancelled : t -> int
val posts_sent : t -> int

val windows : t -> int
(** Barrier-synchronised windows executed so far. *)

val messages_delivered : t -> int
(** Cross-shard posts handed over at barriers (cancelled-in-flight posts
    included). *)
