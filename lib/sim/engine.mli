(** The discrete-event simulation engine.

    A single-threaded event loop over a hole-based binary min-heap
    ({!Vini_std.Eventq}) of timestamped callbacks.  Everything in the
    repository — links, CPU schedulers, routing timers, TCP
    retransmissions — is expressed as events on one engine, so an entire
    VINI deployment (physical substrate plus every slice) advances on one
    logical clock.

    {b Complexity.}  {!at}/{!after} and {!step} are O(log pending);
    the queue's O(1) [min_key] feeds the {!at_inline} fast path, which
    runs already-due tail calls without touching the queue at all.
    {!pending} is O(1) via a live-event counter maintained on
    schedule/cancel/fire.  Cancelled events are deleted lazily and swept
    out in bulk once they outnumber live ones, so cancel-heavy workloads
    stay cheap too.

    {b Determinism.}  Events fire in (timestamp, scheduling order):
    same-timestamp events drain strictly FIFO, exactly as with the
    binary-heap and calendar queues before this one, so seeded runs are
    bit-identical across all three scheduler implementations and across
    hosts. *)

type t

type handle
(** A scheduled event; may be cancelled before it fires. *)

val create : ?seed:int -> ?shards:int -> unit -> t
(** [seed] (default 42) initialises the root RNG from which subsystems
    {!Vini_std.Rng.split} their own streams.

    [shards] switches the engine into {e sharded mode}: the event space is
    partitioned over that many logical shards, each with its own calendar
    queue and clock, and {!run} drains them in conservative windows one
    {!lookahead} wide.  The window schedule is a pure function of the seed
    and the shard count — physical domain count is never consulted — so a
    seeded sharded run produces byte-identical output however many domains
    the host offers.  Experiment callbacks share state across shards
    (routing tables, the trace sink, supervisors), so sharded windows here
    execute serially in ascending shard id; {!Coordinator} is the truly
    parallel runtime for shard-confined workloads.  Omitting [shards]
    keeps the classic single-queue engine, bit-identical to previous
    releases. *)

val default_logical_shards : int
(** The fixed logical shard count used by [--domains] runs (8): constant
    so that output does not depend on the machine's core count. *)

val shards : t -> int
(** Logical shard count; 1 for a non-sharded engine. *)

val is_sharded : t -> bool

val shard_of : t -> int -> int
(** [shard_of t key] maps a stable integer key (e.g. a pnode index) to its
    shard, [key mod shards]; always 0 on a non-sharded engine. *)

val current_shard : t -> int
(** The shard whose callback is currently executing (scheduling affinity
    of {!at}); 0 outside callbacks and on non-sharded engines. *)

val at_shard : t -> shard:int -> Time.t -> (unit -> unit) -> handle
(** Schedule on an explicit shard — the cross-shard handoff used by plinks
    to deliver a packet at its destination pnode's shard.  The time is
    clamped to the destination shard's clock (a deterministic, bounded
    skew possible only for latencies below the lookahead; see DESIGN.md
    §13).  On a non-sharded engine only [~shard:0] is valid. *)

val at_barrier : t -> Time.t -> (unit -> unit) -> handle
(** Barrier-safe scheduling for mutations every shard reads (e.g. a live
    migration's placement flip).  The callback runs on shard 0, which
    executes first inside every conservative window: all events in the
    window containing the flip and every later window observe it, and the
    only events that can precede it while carrying the old state are other
    shards' events from {e earlier} windows — a lead bounded by one
    lookahead, itself at most the minimum cross-shard latency.  A packet
    already in flight across shards therefore cannot distinguish the flip
    from a true global barrier at the window boundary.  On a non-sharded
    engine this is exactly {!at}. *)

val set_lookahead : t -> Time.t -> unit
(** Set the conservative window width; the underlay sets it to the minimum
    plink propagation delay (floored).  Must be positive.  No-op on a
    non-sharded engine. *)

val lookahead : t -> Time.t
(** Current window width; {!Time.zero} on a non-sharded engine. *)

val now : t -> Time.t
val rng : t -> Vini_std.Rng.t

val at : t -> Time.t -> (unit -> unit) -> handle
(** Schedule at an absolute time (>= now, else it fires immediately at the
    current time).  O(1) amortized. *)

val after : t -> Time.t -> (unit -> unit) -> handle
(** Schedule at [now + delta]; negative deltas clamp to now. *)

val at_inline : t -> Time.t -> (unit -> unit) -> unit
(** Breath coalescing: like {!at}, but when the requested time is provably
    {e next} in the global event order — at or before the run limit (and,
    in sharded mode, strictly inside the current conservative window) and
    strictly earlier than every queued event — the callback executes
    immediately with the clock advanced, skipping the calendar entirely.
    Otherwise it degrades to {!at}.

    The inline execution is indistinguishable from the scheduled one:
    same callback order, same clocks, same RNG draw order, same
    {!events_fired} count — a seeded run is byte-identical whether
    coalescing triggers or not (asserted by tests and the CI determinism
    gate).  What changes is cost: a burst of back-to-back packets flows
    through CPU-service and kernel hops as one calendar event, the way a
    Snabb breath pushes a whole batch through an app graph.

    {b Tail position only.}  The caller must invoke this as the last
    action of the currently-executing event callback (or of setup code
    outside any run, where it always degrades to {!at}): statements after
    the call would otherwise be reordered {e after} the event.  There is
    no handle — an inline-eligible event cannot be cancelled.

    Inlining is disabled under {!set_profiling} (so per-event histograms
    keep their meaning) and by {!set_inline}[ t false] (the benchmark
    baseline). *)

val after_inline : t -> Time.t -> (unit -> unit) -> unit
(** [at_inline] at [now + delta]; negative deltas clamp to now. *)

val set_inline : t -> bool -> unit
(** Enable/disable breath coalescing (default on).  Purely a performance
    knob: runs are byte-identical either way. *)

val inline_enabled : t -> bool

val events_inlined : t -> int
(** How many fired events were coalesced inline (subset of
    {!events_fired}) — the breath model's effectiveness metric. *)

val cancel : handle -> unit
(** Idempotent; cancelling a fired event is a no-op.  O(1): the event is
    lazily deleted — it stays queued (and counted by {!max_pending}) until
    popped or swept by the periodic compaction. *)

val is_cancelled : handle -> bool

val every : t -> ?start:Time.t -> ?jitter:Time.t -> Time.t ->
  (unit -> bool) -> unit
(** [every t ~start ~jitter period f] runs [f] at [start] (default: one
    period from now) and re-schedules while [f] returns [true].  Each firing
    is offset by a uniform random amount in [\[0, jitter\]] (default none) to
    avoid phase-locked protocol timers. *)

val every_barrier : t -> ?start:Time.t -> Time.t -> (unit -> bool) -> unit
(** [every_barrier t ~start period f] is {!every} with {!at_barrier}
    placement: each firing runs on shard 0 first in its conservative
    window, so periodic mutations that every shard reads (the scenario
    fluid model's background-load fold) are race-free by construction.
    Never jittered — barrier ticks stay phase-stable so per-tick exports
    are byte-identical across domain counts. *)

val run : ?until:Time.t -> t -> unit
(** Drain events in timestamp order.  With [until], stops once the next
    event would be later than [until] and advances the clock to [until]. *)

val step : t -> bool
(** Fire exactly one event; [false] when the queue was empty. *)

val pending : t -> int
(** Number of scheduled (uncancelled, unfired) events.  O(1): maintained
    as a counter, not recomputed from the queue. *)

val events_fired : t -> int
(** Total callbacks executed so far (engine throughput metric). *)

val events_cancelled : t -> int
(** Cancelled events removed from the queue so far, whether popped
    individually or swept in bulk by the lazy-delete compaction. *)

val max_pending : t -> int
(** High-water mark of the event queue, cancelled entries included. *)

(** {2 Profiling}

    Off by default; when on, every [at] records the scheduling horizon and
    every callback its host CPU cost.  The only cost when off is one
    boolean test per event. *)

val set_profiling : t -> bool -> unit
val profiling : t -> bool

val horizon_hist : t -> Vini_std.Histogram.t
(** How far ahead of the clock events are scheduled (simulated seconds) —
    a deterministic picture of timer granularity across the deployment. *)

val callback_hist : t -> Vini_std.Histogram.t
(** Host CPU seconds per callback ([Sys.time] resolution; export-only,
    not deterministic across hosts). *)
