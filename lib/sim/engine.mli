(** The discrete-event simulation engine.

    A single-threaded event loop over a stable min-heap of timestamped
    callbacks.  Everything in the repository — links, CPU schedulers,
    routing timers, TCP retransmissions — is expressed as events on one
    engine, so an entire VINI deployment (physical substrate plus every
    slice) advances on one logical clock. *)

type t

type handle
(** A scheduled event; may be cancelled before it fires. *)

val create : ?seed:int -> unit -> t
(** [seed] (default 42) initialises the root RNG from which subsystems
    {!Vini_std.Rng.split} their own streams. *)

val now : t -> Time.t
val rng : t -> Vini_std.Rng.t

val at : t -> Time.t -> (unit -> unit) -> handle
(** Schedule at an absolute time (>= now, else it fires immediately at the
    current time). *)

val after : t -> Time.t -> (unit -> unit) -> handle
(** Schedule at [now + delta]; negative deltas clamp to now. *)

val cancel : handle -> unit
(** Idempotent; cancelling a fired event is a no-op. *)

val is_cancelled : handle -> bool

val every : t -> ?start:Time.t -> ?jitter:Time.t -> Time.t ->
  (unit -> bool) -> unit
(** [every t ~start ~jitter period f] runs [f] at [start] (default: one
    period from now) and re-schedules while [f] returns [true].  Each firing
    is offset by a uniform random amount in [\[0, jitter\]] (default none) to
    avoid phase-locked protocol timers. *)

val run : ?until:Time.t -> t -> unit
(** Drain events in timestamp order.  With [until], stops once the next
    event would be later than [until] and advances the clock to [until]. *)

val step : t -> bool
(** Fire exactly one event; [false] when the queue was empty. *)

val pending : t -> int
(** Number of scheduled (uncancelled) events. *)

val events_fired : t -> int
(** Total callbacks executed so far (engine throughput metric). *)

val events_cancelled : t -> int
(** Cancelled events popped (lazily deleted) so far. *)

val max_pending : t -> int
(** High-water mark of the event heap, cancelled entries included. *)

(** {2 Profiling}

    Off by default; when on, every [at] records the scheduling horizon and
    every callback its host CPU cost.  The only cost when off is one
    boolean test per event. *)

val set_profiling : t -> bool -> unit
val profiling : t -> bool

val horizon_hist : t -> Vini_std.Histogram.t
(** How far ahead of the clock events are scheduled (simulated seconds) —
    a deterministic picture of timer granularity across the deployment. *)

val callback_hist : t -> Vini_std.Histogram.t
(** Host CPU seconds per callback ([Sys.time] resolution; export-only,
    not deterministic across hosts). *)
