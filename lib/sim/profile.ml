(* The runtime self-profiler: counters and histograms about the engine
   itself (windows, barrier waits, mailbox depths) and about the data
   plane (per-element-class CPU attribution with collapsed call paths).

   Gate discipline is the one [Trace.span_gate] established: a single
   global [bool ref], true exactly while a profile is installed, so every
   instrumented hot path pays one load + test when profiling is off.
   Unlike [Engine.set_profiling], installing a profile never changes the
   event schedule — it only records — so a seeded run is byte-identical
   with the profiler on or off, and across domain counts (the CI
   determinism gate checks the latter).

   Threading: notes are designed for the serial sharded engine and the
   coordinator's lane 0.  Worker-domain calls (Shard.post under a
   multi-domain Coordinator) touch only per-source-shard slots, except
   the per-destination mailbox watermark, which is monotone and tolerant
   of a lost update; histograms are only ever fed from lane 0. *)

module Histogram = Vini_std.Histogram

(* ---- element-class registry (global, survives install/uninstall) ------ *)

let class_tbl : (string, int) Hashtbl.t = Hashtbl.create 64
let class_names = ref (Array.make 16 "")
let nclasses = ref 0

let class_id name =
  match Hashtbl.find_opt class_tbl name with
  | Some id -> id
  | None ->
      let id = !nclasses in
      if id >= Array.length !class_names then begin
        let bigger = Array.make (2 * Array.length !class_names) "" in
        Array.blit !class_names 0 bigger 0 (Array.length !class_names);
        class_names := bigger
      end;
      !class_names.(id) <- name;
      Hashtbl.add class_tbl name id;
      incr nclasses;
      id

let class_name id =
  if id < 0 || id >= !nclasses then invalid_arg "Profile.class_name";
  !class_names.(id)

(* ---- the profile record ------------------------------------------------ *)

(* Element call stacks never get deep (a click chain is a handful of
   elements); past the cap we keep per-class packet counts but stop
   growing paths. *)
let max_stack = 64

type t = {
  (* engine/shard telemetry (all deterministic, sim-time) *)
  mutable windows : int;
  window_hist : Histogram.t; (* granted window width, simulated seconds *)
  events_per_window : Histogram.t;
  mutable lookahead_floor_s : float; (* the static plink floor *)
  mutable shard_events : int array; (* events fired, by shard *)
  mutable cross_posts : int array; (* cross-shard posts, by source shard *)
  mutable queue_hwm : int array; (* per-shard event-queue high-watermark *)
  mutable mailbox_hwm : int array; (* per-dst outbox high-watermark *)
  (* host-clock telemetry (export-only, never byte-compared) *)
  barrier_wait_hist : Histogram.t; (* lane-0 seconds blocked per barrier *)
  (* element attribution *)
  mutable cls_packets : int array; (* packets offered, by class id *)
  stack : int array; (* class ids of the live element frames *)
  path_at : int array; (* interned path id per live frame *)
  had_child : bool array;
  mutable depth : int;
  mutable overflow : int; (* frames dropped past [max_stack] *)
  path_tbl : (int, int) Hashtbl.t; (* (parent<<16 | class) -> path id *)
  mutable path_parent : int array;
  mutable path_class : int array;
  mutable path_cost : float array; (* attributed sim seconds, leaf paths *)
  mutable path_count : int array;
  mutable npaths : int;
}

let create () =
  {
    windows = 0;
    window_hist = Histogram.create ();
    events_per_window = Histogram.create ();
    lookahead_floor_s = 0.0;
    shard_events = Array.make 8 0;
    cross_posts = Array.make 8 0;
    queue_hwm = Array.make 8 0;
    mailbox_hwm = Array.make 8 0;
    barrier_wait_hist = Histogram.create ();
    cls_packets = Array.make 16 0;
    stack = Array.make max_stack 0;
    path_at = Array.make max_stack (-1);
    had_child = Array.make max_stack false;
    depth = 0;
    overflow = 0;
    path_tbl = Hashtbl.create 64;
    path_parent = Array.make 16 (-1);
    path_class = Array.make 16 0;
    path_cost = Array.make 16 0.0;
    path_count = Array.make 16 0;
    npaths = 0;
  }

(* ---- the installed profile and its gate -------------------------------- *)

let installed : t option ref = ref None

(* The one-load-and-test gate every instrumented hot path checks. *)
let gate = ref false

let install p =
  installed := Some p;
  gate := true

let uninstall () =
  installed := None;
  gate := false

let current () = !installed
let on () = !gate

(* ---- array growth helpers --------------------------------------------- *)

let grow_int a n =
  let bigger = Array.make (max n (2 * Array.length a)) 0 in
  Array.blit a 0 bigger 0 (Array.length a);
  bigger

let grow_float a n =
  let bigger = Array.make (max n (2 * Array.length a)) 0.0 in
  Array.blit a 0 bigger 0 (Array.length a);
  bigger

let ensure_shard p shard =
  if shard >= Array.length p.shard_events then begin
    p.shard_events <- grow_int p.shard_events (shard + 1);
    p.cross_posts <- grow_int p.cross_posts (shard + 1);
    p.queue_hwm <- grow_int p.queue_hwm (shard + 1);
    p.mailbox_hwm <- grow_int p.mailbox_hwm (shard + 1)
  end

let ensure_class p id =
  if id >= Array.length p.cls_packets then
    p.cls_packets <- grow_int p.cls_packets (id + 1)

(* ---- engine/shard notes (callers check [gate] first) ------------------- *)

let note_window ~width_s ~events =
  match !installed with
  | None -> ()
  | Some p ->
      p.windows <- p.windows + 1;
      Histogram.add p.window_hist width_s;
      Histogram.add p.events_per_window (float_of_int events)

let note_floor ~width_s =
  match !installed with
  | None -> ()
  | Some p -> p.lookahead_floor_s <- width_s

let note_shard_events ~shard n =
  match !installed with
  | None -> ()
  | Some p ->
      ensure_shard p shard;
      p.shard_events.(shard) <- p.shard_events.(shard) + n

let note_cross_post ~src =
  match !installed with
  | None -> ()
  | Some p ->
      ensure_shard p src;
      p.cross_posts.(src) <- p.cross_posts.(src) + 1

let note_queue_depth ~shard depth =
  match !installed with
  | None -> ()
  | Some p ->
      ensure_shard p shard;
      if depth > p.queue_hwm.(shard) then p.queue_hwm.(shard) <- depth

let note_mailbox_depth ~shard depth =
  match !installed with
  | None -> ()
  | Some p ->
      ensure_shard p shard;
      if depth > p.mailbox_hwm.(shard) then p.mailbox_hwm.(shard) <- depth

let note_barrier_wait s =
  match !installed with
  | None -> ()
  | Some p -> Histogram.add p.barrier_wait_hist s

(* ---- element attribution ----------------------------------------------- *)

(* The sim-time CPU cost of the packet currently in service, set by the
   CPU scheduler ([Process]) around each handler invocation and
   attributed to the element path the packet traverses.  Zero outside a
   service slice (e.g. a kernel-path push), which still counts packets
   per class. *)
let service_cost = ref 0.0

let set_service_cost c = service_cost := c
let clear_service_cost () = service_cost := 0.0

let intern_path p ~parent cls =
  let key = (parent lsl 16) lor (cls land 0xFFFF) in
  (* [find], not [find_opt]: the steady state (path already interned)
     must not allocate an option per packet. *)
  match Hashtbl.find p.path_tbl key with
  | id -> id
  | exception Not_found ->
      let id = p.npaths in
      if id >= Array.length p.path_parent then begin
        p.path_parent <- grow_int p.path_parent (id + 1);
        p.path_class <- grow_int p.path_class (id + 1);
        p.path_cost <- grow_float p.path_cost (id + 1);
        p.path_count <- grow_int p.path_count (id + 1)
      end;
      p.path_parent.(id) <- parent;
      p.path_class.(id) <- cls;
      p.path_cost.(id) <- 0.0;
      p.path_count.(id) <- 0;
      p.npaths <- p.npaths + 1;
      Hashtbl.add p.path_tbl key id;
      id

let enter cls ~packets =
  match !installed with
  | None -> ()
  | Some p ->
      ensure_class p cls;
      p.cls_packets.(cls) <- p.cls_packets.(cls) + packets;
      if p.depth >= max_stack then p.overflow <- p.overflow + 1
      else begin
        let d = p.depth in
        if d > 0 then p.had_child.(d - 1) <- true;
        let parent = if d = 0 then -1 else p.path_at.(d - 1) in
        p.stack.(d) <- cls;
        p.path_at.(d) <- intern_path p ~parent cls;
        p.had_child.(d) <- false;
        p.depth <- d + 1
      end

let leave cls =
  match !installed with
  | None -> ()
  | Some p ->
      if p.depth > max_stack || p.depth = 0 then begin
        if p.overflow > 0 then p.overflow <- p.overflow - 1
      end
      else begin
        let d = p.depth - 1 in
        (* Tolerate a mismatched leave (an element handler that raised
           and was caught upstream): unwind to the matching frame. *)
        if p.stack.(d) = cls then begin
          p.depth <- d;
          if not p.had_child.(d) then begin
            (* A leaf frame: the packet's traversal ended here, so the
               whole service cost lands on this collapsed path. *)
            let pid = p.path_at.(d) in
            p.path_cost.(pid) <- p.path_cost.(pid) +. !service_cost;
            p.path_count.(pid) <- p.path_count.(pid) + 1
          end
        end
        else p.depth <- d
      end

(* ---- read-side --------------------------------------------------------- *)

let windows p = p.windows
let window_hist p = p.window_hist
let events_per_window p = p.events_per_window
let lookahead_floor_s p = p.lookahead_floor_s
let barrier_wait_hist p = p.barrier_wait_hist

let shard_count p = Array.length p.shard_events
let shard_events p = Array.copy p.shard_events
let cross_posts p = Array.copy p.cross_posts
let queue_hwm p = Array.copy p.queue_hwm
let mailbox_hwm p = Array.copy p.mailbox_hwm

let cross_posts_total p = Array.fold_left ( + ) 0 p.cross_posts
let queue_hwm_max p = Array.fold_left max 0 p.queue_hwm
let mailbox_hwm_max p = Array.fold_left max 0 p.mailbox_hwm

let element_packets_total p = Array.fold_left ( + ) 0 p.cls_packets

let element_classes p =
  let acc = ref [] in
  for id = !nclasses - 1 downto 0 do
    if id < Array.length p.cls_packets && p.cls_packets.(id) > 0 then
      acc := !class_names.(id) :: !acc
  done;
  !acc

let path_string p id =
  let rec go id acc =
    if id < 0 then acc
    else
      let name = !class_names.(p.path_class.(id)) in
      go p.path_parent.(id) (if acc = "" then name else name ^ ";" ^ acc)
  in
  go id ""

(* Collapsed stacks, flamegraph semantics: each line is a full root-to-
   leaf element path with the sim seconds (and packet count) attributed
   exactly there; a class's total time is the sum over lines containing
   it, its self time the sum over lines where it is the leaf. *)
let collapsed p =
  let acc = ref [] in
  for id = p.npaths - 1 downto 0 do
    if p.path_count.(id) > 0 then
      acc := (path_string p id, p.path_cost.(id), p.path_count.(id)) :: !acc
  done;
  !acc

type element_row = {
  er_class : string;
  er_packets : int;
  er_self_s : float;
  er_total_s : float;
}

let element_rows p =
  let n = !nclasses in
  let self = Array.make n 0.0 and total = Array.make n 0.0 in
  for id = 0 to p.npaths - 1 do
    if p.path_count.(id) > 0 then begin
      let c = p.path_cost.(id) in
      self.(p.path_class.(id)) <- self.(p.path_class.(id)) +. c;
      (* Walk ancestors once per class occurrence: a class repeated along
         the path must not be double-counted in its total. *)
      let seen = ref [] in
      let rec up j =
        if j >= 0 then begin
          let cls = p.path_class.(j) in
          if not (List.mem cls !seen) then begin
            seen := cls :: !seen;
            total.(cls) <- total.(cls) +. c
          end;
          up p.path_parent.(j)
        end
      in
      up id
    end
  done;
  let rows = ref [] in
  for id = n - 1 downto 0 do
    if
      (id < Array.length p.cls_packets && p.cls_packets.(id) > 0)
      || total.(id) > 0.0
    then
      rows :=
        {
          er_class = !class_names.(id);
          er_packets =
            (if id < Array.length p.cls_packets then p.cls_packets.(id) else 0);
          er_self_s = self.(id);
          er_total_s = total.(id);
        }
        :: !rows
  done;
  List.sort (fun a b -> compare b.er_total_s a.er_total_s) !rows

let attributed_cost_s p =
  let s = ref 0.0 in
  for id = 0 to p.npaths - 1 do
    s := !s +. p.path_cost.(id)
  done;
  !s

let reset p =
  p.windows <- 0;
  Histogram.clear p.window_hist;
  Histogram.clear p.events_per_window;
  p.lookahead_floor_s <- 0.0;
  Array.fill p.shard_events 0 (Array.length p.shard_events) 0;
  Array.fill p.cross_posts 0 (Array.length p.cross_posts) 0;
  Array.fill p.queue_hwm 0 (Array.length p.queue_hwm) 0;
  Array.fill p.mailbox_hwm 0 (Array.length p.mailbox_hwm) 0;
  Histogram.clear p.barrier_wait_hist;
  Array.fill p.cls_packets 0 (Array.length p.cls_packets) 0;
  p.depth <- 0;
  p.overflow <- 0;
  Hashtbl.reset p.path_tbl;
  p.npaths <- 0
