(** The runtime self-profiler: the engine watching itself.

    A {!t} collects two families of telemetry while installed:

    {ul
    {- {b Engine/shard}: conservative-window count and width, events per
       window, per-shard events fired, cross-shard posts, event-queue and
       mailbox high-watermarks — fed by {!Engine}, {!Shard} and
       {!Coordinator} — plus lane-0 barrier wait time (host clock,
       export-only).}
    {- {b Element attribution}: packets and sim-time CPU cost per Click
       element class, aggregated into collapsed root-to-leaf paths that
       load directly into a flamegraph.}}

    {b Gate discipline.}  Exactly like [Trace.span_gate]: {!gate} is a
    single global [bool ref], true iff a profile is {!install}ed.  Every
    instrumented hot path performs one load and test when profiling is
    off — nothing else.  Installing a profile never schedules events,
    draws random numbers, or changes costs the engine accounts for, so
    the event schedule (and every byte-compared export) is identical
    with the profiler on or off, and across domain counts.

    {b Determinism.}  Every quantity except {!barrier_wait_hist} is
    derived from simulated time and event counts and is therefore
    byte-identical across hosts and [--domains] values.  Barrier wait is
    wall-clock by nature; it is exposed for [vini.metrics/1]-style
    documents and must never enter a byte-compared artifact.

    {b Threading.}  Notes are single-threaded except under a
    multi-domain {!Coordinator}, where {!note_cross_post} writes only
    the caller shard's slot and {!note_mailbox_depth} maintains a
    monotone per-destination watermark that tolerates a lost update;
    histograms are only fed from lane 0. *)

type t

val create : unit -> t

val install : t -> unit
(** Make [t] the live profile and raise {!gate}.  At most one profile is
    live; installing replaces the previous one. *)

val uninstall : unit -> unit
(** Clear the live profile and drop {!gate}. *)

val current : unit -> t option

val gate : bool ref
(** The one-load-and-test gate.  Instrumented hot paths check
    [!Profile.gate] before doing any other profiling work. *)

val on : unit -> bool
(** [!gate], as a function — for call sites outside hot paths. *)

(** {2 Element-class registry}

    Class ids are process-global (minted at element creation, before any
    profile exists) so that element records can store an [int] and the
    instrumented push path never hashes a string. *)

val class_id : string -> int
(** Intern an element-class name. *)

val class_name : int -> string
(** Inverse of {!class_id}; raises [Invalid_argument] on an unknown id. *)

(** {2 Engine/shard notes}

    All [note_*] functions are cheap no-ops when no profile is
    installed, but callers on hot paths must still check {!gate} first
    so the disabled path stays one load + test. *)

val note_window : width_s:float -> events:int -> unit
(** One conservative window completed: its granted width in simulated
    seconds and the events fired inside it. *)

val note_floor : width_s:float -> unit
(** Record the static lookahead floor (minimum plink propagation delay)
    the granted windows are measured against. *)

val note_shard_events : shard:int -> int -> unit
val note_cross_post : src:int -> unit
val note_queue_depth : shard:int -> int -> unit
(** Feed a shard's event-queue depth; the profile keeps the maximum. *)

val note_mailbox_depth : shard:int -> int -> unit
(** Feed a destination outbox depth; the profile keeps the maximum. *)

val note_barrier_wait : float -> unit
(** Host seconds lane 0 spent blocked at a window barrier. *)

(** {2 Element attribution notes} *)

val set_service_cost : float -> unit
(** Sim-time CPU seconds of the packet about to be handled, as budgeted
    by the CPU scheduler; attributed to the element path the packet
    traverses until {!clear_service_cost}. *)

val clear_service_cost : unit -> unit

val enter : int -> packets:int -> unit
(** Push an element-class frame ([packets] = packets in this
    invocation, >1 for a batch). *)

val leave : int -> unit
(** Pop the frame; if no child frame ran underneath, the current service
    cost is attributed to the collapsed path ending here. *)

(** {2 Read side} *)

val windows : t -> int
val window_hist : t -> Vini_std.Histogram.t
(** Granted conservative-window widths, simulated seconds. *)

val events_per_window : t -> Vini_std.Histogram.t
val lookahead_floor_s : t -> float

val barrier_wait_hist : t -> Vini_std.Histogram.t
(** Host seconds; export-only, never byte-compared (see module doc). *)

val shard_count : t -> int
val shard_events : t -> int array
val cross_posts : t -> int array
val queue_hwm : t -> int array
val mailbox_hwm : t -> int array

val cross_posts_total : t -> int
val queue_hwm_max : t -> int
val mailbox_hwm_max : t -> int

val element_packets_total : t -> int
val element_classes : t -> string list

val collapsed : t -> (string * float * int) list
(** Flamegraph-loadable collapsed stacks: [(";"-joined path, attributed
    sim seconds, packet count)] per root-to-leaf element path. *)

type element_row = {
  er_class : string;
  er_packets : int;
  er_self_s : float;  (** cost attributed with this class as the leaf *)
  er_total_s : float;  (** cost of every path this class appears on *)
}

val element_rows : t -> element_row list
(** Per-class summary, sorted by total cost descending. *)

val attributed_cost_s : t -> float

val reset : t -> unit
(** Zero all counters, histograms and paths (the class registry is
    global and survives). *)
