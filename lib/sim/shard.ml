type state = Pending | Fired | Cancelled

type handle = {
  time : Time.t;
  callback : unit -> unit;
  mutable state : state;
  live : int ref; (* the owning shard's live-event counter *)
}

type remote = {
  r_src : int;
  r_dst : int;
  r_time : Time.t;
  r_callback : unit -> unit;
  mutable r_cancelled : bool;
  mutable r_handle : handle option; (* set on delivery at the barrier *)
}

type t = {
  sid : int;
  nshards : int;
  queue : handle Vini_std.Eventq.t;
  mutable clock : Time.t;
  live : int ref;
  srng : Vini_std.Rng.t;
  lookahead : int -> int -> Time.t option;
  outboxes : remote Vini_std.Mailbox.t array; (* indexed by destination *)
  mutable cancel_reqs : remote list;          (* newest first *)
  mutable fired : int;
  mutable cancelled_count : int;
  mutable posts : int;
}

(* Fills vacated queue slots (see {!Vini_std.Eventq.create}); never fires. *)
let dummy_handle =
  { time = Time.zero; callback = ignore; state = Cancelled; live = ref 0 }

let make ~id ~nshards ~mailbox_capacity ~lookahead ~rng =
  if id < 0 || id >= nshards then invalid_arg "Shard.make: id out of range";
  {
    sid = id;
    nshards;
    queue = Vini_std.Eventq.create ~dummy:dummy_handle ();
    clock = Time.zero;
    live = ref 0;
    srng = rng;
    lookahead;
    outboxes =
      Array.init nshards (fun _ -> Vini_std.Mailbox.create ~capacity:mailbox_capacity);
    cancel_reqs = [];
    fired = 0;
    cancelled_count = 0;
    posts = 0;
  }

let id t = t.sid
let now t = t.clock
let rng t = t.srng

(* Same lazy-delete discipline as [Engine]: cancelled handles stay queued
   until popped or, when they outnumber the live events, swept out. *)
let compact_threshold = 64

let maybe_compact t =
  let len = Vini_std.Eventq.length t.queue in
  if len > compact_threshold && len - !(t.live) > !(t.live) then
    t.cancelled_count <-
      t.cancelled_count
      + Vini_std.Eventq.compact t.queue ~dead:(fun h -> h.state = Cancelled)

let at t time callback =
  let time = Time.max time t.clock in
  let h = { time; callback; state = Pending; live = t.live } in
  Vini_std.Eventq.push t.queue ~key:time h;
  incr t.live;
  maybe_compact t;
  h

let after t delta callback =
  at t (Time.add t.clock (Time.max delta Time.zero)) callback

let cancel h =
  match h.state with
  | Pending ->
      h.state <- Cancelled;
      decr h.live
  | Fired | Cancelled -> ()

let is_cancelled h = h.state = Cancelled

let post t ~dst time callback =
  if dst < 0 || dst >= t.nshards then invalid_arg "Shard.post: dst out of range";
  if dst = t.sid then invalid_arg "Shard.post: dst is the posting shard (use at)";
  (match t.lookahead t.sid dst with
  | None ->
      invalid_arg
        (Printf.sprintf "Shard.post: no channel from shard %d to shard %d" t.sid
           dst)
  | Some l ->
      if Time.compare time (Time.add t.clock l) < 0 then
        invalid_arg
          (Printf.sprintf
             "Shard.post: arrival %dns < now %dns + lookahead %dns (shard \
              %d -> %d): conservative synchronization violated"
             time t.clock l t.sid dst));
  let r =
    {
      r_src = t.sid;
      r_dst = dst;
      r_time = time;
      r_callback = callback;
      r_cancelled = false;
      r_handle = None;
    }
  in
  if not (Vini_std.Mailbox.push t.outboxes.(dst) r) then
    failwith
      (Printf.sprintf
         "Shard.post: outbox %d -> %d full (%d messages); raise \
          ~mailbox_capacity"
         t.sid dst
         (Vini_std.Mailbox.capacity t.outboxes.(dst)));
  t.posts <- t.posts + 1;
  (* Profiler (one gate load + test when off): the cross-shard handoff
     and the destination outbox's depth watermark.  Under a multi-domain
     coordinator this runs on the posting shard's domain; see the
     threading note in profile.mli. *)
  if !Profile.gate then begin
    Profile.note_cross_post ~src:t.sid;
    Profile.note_mailbox_depth ~shard:dst
      (Vini_std.Mailbox.length t.outboxes.(dst))
  end;
  r

let post_after t ~dst delta callback =
  post t ~dst (Time.add t.clock (Time.max delta Time.zero)) callback

let cancel_post t r =
  if r.r_src <> t.sid then
    invalid_arg "Shard.cancel_post: remote was posted by another shard";
  if not r.r_cancelled then begin
    r.r_cancelled <- true;
    t.cancel_reqs <- r :: t.cancel_reqs
  end

let post_is_cancelled r = r.r_cancelled

let pending t = !(t.live)
let events_fired t = t.fired
let events_cancelled t = t.cancelled_count
let posts_sent t = t.posts

(* --- coordinator interface ------------------------------------------- *)

let next_time t =
  match Vini_std.Eventq.peek t.queue with
  | None -> None
  | Some h -> Some h.time

let exec_window t ~bound ~limit =
  let continue () =
    (* [min_key] = the head's time for every in-range key, no option
       allocation; an empty queue reports [max_int], failing [k < bound]. *)
    let k = Vini_std.Eventq.min_key t.queue in
    k < bound
    && (match limit with None -> true | Some u -> k <= u)
  in
  while continue () do
    match Vini_std.Eventq.pop t.queue with
    | None -> assert false
    | Some h -> (
        match h.state with
        | Cancelled -> t.cancelled_count <- t.cancelled_count + 1
        | Fired -> assert false
        | Pending ->
            h.state <- Fired;
            decr t.live;
            t.clock <- Time.max t.clock h.time;
            t.fired <- t.fired + 1;
            h.callback ())
  done

let advance_clock t time = t.clock <- Time.max t.clock time

let outbox t dst = t.outboxes.(dst)

let deliver t r =
  if r.r_cancelled then
    (* Cancelled while still in flight: never enters the queue, but the
       run's cancellation count must not depend on barrier timing. *)
    t.cancelled_count <- t.cancelled_count + 1
  else r.r_handle <- Some (at t r.r_time r.r_callback)

let take_cancel_requests t =
  let reqs = List.rev t.cancel_reqs in
  t.cancel_reqs <- [];
  reqs

let apply_remote_cancel r =
  match r.r_handle with
  | Some h -> cancel h
  | None -> () (* cancelled before delivery; accounted for in [deliver] *)
