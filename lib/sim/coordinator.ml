(* Conservative windowed coordinator.  See the .mli for the synchronization
   argument; the invariant everything rests on is that outboxes are drained
   only here, between windows, so during horizon computation nothing is in
   flight and [Shard.next_time] is each shard's true earliest action. *)

type t = {
  shards : Shard.t array;
  ndomains : int;
  la : Time.t option array array; (* la.(src).(dst); sampled at create *)
  mutable windows : int;
  mutable delivered : int;
}

let max_time = Time.max_value

(* Saturating add for horizon + lookahead: both operands are >= 0, and a
   horizon of [max_time] must stay there rather than wrap negative. *)
let add_sat a b =
  let s = Time.add a b in
  if Time.compare s a < 0 then max_time else s

let create ?(seed = 42) ?(mailbox_capacity = 8192) ~shards ~domains ~lookahead
    () =
  if shards < 1 then invalid_arg "Coordinator.create: shards < 1";
  if domains < 1 then invalid_arg "Coordinator.create: domains < 1";
  if mailbox_capacity < 1 then
    invalid_arg "Coordinator.create: mailbox_capacity < 1";
  let la =
    Array.init shards (fun src ->
        Array.init shards (fun dst ->
            if src = dst then None
            else
              match lookahead src dst with
              | None -> None
              | Some l ->
                  if Time.compare l Time.zero <= 0 then
                    invalid_arg
                      (Printf.sprintf
                         "Coordinator.create: lookahead %d -> %d is not \
                          positive"
                         src dst)
                  else Some l))
  in
  let la_fn src dst = la.(src).(dst) in
  let root = Vini_std.Rng.create seed in
  let shards_arr =
    Array.init shards (fun id ->
        Shard.make ~id ~nshards:shards ~mailbox_capacity ~lookahead:la_fn
          ~rng:(Vini_std.Rng.split root))
  in
  { shards = shards_arr; ndomains = min domains shards; la; windows = 0; delivered = 0 }

let shard t i = t.shards.(i)
let nshards t = Array.length t.shards
let domains t = t.ndomains

(* Barrier: posts first (ascending destination, then ascending source,
   FIFO within each pair), cancellations second so a post cancelled in the
   same window is skipped by [Shard.deliver] before its cancel request is
   seen. *)
let drain_barrier t =
  let n = Array.length t.shards in
  for dst = 0 to n - 1 do
    for src = 0 to n - 1 do
      if src <> dst then
        t.delivered <-
          t.delivered
          + Vini_std.Mailbox.drain
              (Shard.outbox t.shards.(src) dst)
              (Shard.deliver t.shards.(dst))
    done
  done;
  Array.iter
    (fun s -> List.iter Shard.apply_remote_cancel (Shard.take_cancel_requests s))
    t.shards

(* Least fixpoint of ĥ(s) = min(h(s), min_p (ĥ(p) + L(p,s))) by
   relaxation.  Positive lookaheads make it converge within [n] passes. *)
let horizons t =
  let n = Array.length t.shards in
  let h = Array.map Shard.next_time t.shards in
  let changed = ref true in
  let pass = ref 0 in
  while !changed && !pass <= n do
    changed := false;
    incr pass;
    for s = 0 to n - 1 do
      for p = 0 to n - 1 do
        if p <> s then
          match (t.la.(p).(s), h.(p)) with
          | Some l, Some hp ->
              let cand = add_sat hp l in
              (match h.(s) with
              | Some hs when Time.compare cand hs >= 0 -> ()
              | _ ->
                  h.(s) <- Some cand;
                  changed := true)
          | _ -> ()
      done
    done
  done;
  h

let bounds t h =
  let n = Array.length t.shards in
  Array.init n (fun s ->
      let b = ref max_time in
      for p = 0 to n - 1 do
        if p <> s then
          match (t.la.(p).(s), h.(p)) with
          | Some l, Some hp ->
              let cand = add_sat hp l in
              if Time.compare cand !b < 0 then b := cand
          | _ -> ()
      done;
      !b)

(* Domain pool: lane 0 is the calling domain, lanes 1..n-1 are workers
   woken per window by a round counter.  Mutex/Condition rather than
   atomic spin-wait: on machines with fewer cores than domains a spinning
   lane steals the cycles the working lanes need. *)
type pool = {
  mu : Mutex.t;
  go : Condition.t;
  all_done : Condition.t;
  mutable round : int;
  mutable done_count : int;
  mutable stop : bool;
  mutable bounds : Time.t array;
  mutable limit : Time.t option;
  mutable error : exn option;
  nlanes : int;
}

let events_fired t =
  Array.fold_left (fun acc s -> acc + Shard.events_fired s) 0 t.shards

let exec_lane t pool lane =
  let n = Array.length t.shards in
  let s = ref lane in
  while !s < n do
    Shard.exec_window t.shards.(!s) ~bound:pool.bounds.(!s) ~limit:pool.limit;
    s := !s + pool.nlanes
  done

let worker t pool lane =
  let rec loop last =
    Mutex.lock pool.mu;
    while pool.round = last && not pool.stop do
      Condition.wait pool.go pool.mu
    done;
    let stop = pool.stop in
    let round = pool.round in
    Mutex.unlock pool.mu;
    if not stop then begin
      (try exec_lane t pool lane
       with e ->
         Mutex.lock pool.mu;
         if pool.error = None then pool.error <- Some e;
         Mutex.unlock pool.mu);
      Mutex.lock pool.mu;
      pool.done_count <- pool.done_count + 1;
      if pool.done_count = pool.nlanes - 1 then Condition.signal pool.all_done;
      Mutex.unlock pool.mu;
      loop round
    end
  in
  loop 0

let run ?until t =
  let n = Array.length t.shards in
  let nlanes = t.ndomains in
  let pool =
    {
      mu = Mutex.create ();
      go = Condition.create ();
      all_done = Condition.create ();
      round = 0;
      done_count = 0;
      stop = false;
      bounds = [||];
      limit = until;
      error = None;
      nlanes;
    }
  in
  let workers =
    if nlanes <= 1 then [||]
    else Array.init (nlanes - 1) (fun i -> Domain.spawn (fun () -> worker t pool (i + 1)))
  in
  let shutdown () =
    if nlanes > 1 then begin
      Mutex.lock pool.mu;
      pool.stop <- true;
      Condition.broadcast pool.go;
      Mutex.unlock pool.mu
    end;
    Array.iter Domain.join workers
  in
  let finish_at_until () =
    match until with
    | Some u -> Array.iter (fun s -> Shard.advance_clock s u) t.shards
    | None -> ()
  in
  (* Profiler scaffolding, allocated only when a profile is installed:
     the static plink floor and a scratch array for per-window
     events-fired deltas. *)
  if !Profile.gate then begin
    let fl = ref max_time in
    Array.iter
      (Array.iter (function
        | Some l -> if Time.compare l !fl < 0 then fl := l
        | None -> ()))
      t.la;
    if Time.compare !fl max_time < 0 then
      Profile.note_floor ~width_s:(Time.to_sec_f !fl)
  end;
  let scratch =
    if !Profile.gate then
      Array.init n (fun i -> Shard.events_fired t.shards.(i))
    else [||]
  in
  let rec window_loop () =
    drain_barrier t;
    let h = Array.map Shard.next_time t.shards in
    let tmin =
      Array.fold_left
        (fun acc ht ->
          match (acc, ht) with
          | None, x | x, None -> x
          | Some a, Some b -> Some (Time.min a b))
        None h
    in
    match tmin with
    | None -> finish_at_until ()
    | Some tmin
      when match until with
           | Some u -> Time.compare tmin u > 0
           | None -> false ->
        finish_at_until ()
    | Some tm ->
        let hhat = horizons t in
        pool.bounds <- bounds t hhat;
        let wfired = if !Profile.gate then events_fired t else 0 in
        if !Profile.gate then
          for s = 0 to n - 1 do
            Profile.note_queue_depth ~shard:s (Shard.pending t.shards.(s))
          done;
        if nlanes <= 1 then
          for s = 0 to n - 1 do
            Shard.exec_window t.shards.(s) ~bound:pool.bounds.(s)
              ~limit:pool.limit
          done
        else begin
          Mutex.lock pool.mu;
          pool.done_count <- 0;
          pool.round <- pool.round + 1;
          Condition.broadcast pool.go;
          Mutex.unlock pool.mu;
          (try exec_lane t pool 0
           with e ->
             Mutex.lock pool.mu;
             if pool.error = None then pool.error <- Some e;
             Mutex.unlock pool.mu);
          Mutex.lock pool.mu;
          (* Barrier wait: host seconds lane 0 blocks for the slowest
             worker lane.  Wall-clock by nature, so export-only telemetry
             (never byte-compared); see profile.mli. *)
          let w0 = if !Profile.gate then Unix.gettimeofday () else 0.0 in
          while pool.done_count < nlanes - 1 do
            Condition.wait pool.all_done pool.mu
          done;
          if !Profile.gate then
            Profile.note_barrier_wait (Unix.gettimeofday () -. w0);
          Mutex.unlock pool.mu
        end;
        t.windows <- t.windows + 1;
        if !Profile.gate then begin
          (* Granted window = tightest finite bound minus the window base
             (the horizon relaxation's actual grant, to compare against
             the plink floor); plus per-shard events-fired deltas. *)
          let minb = Array.fold_left Time.min max_time pool.bounds in
          let width_s =
            if Time.compare minb max_time < 0 then
              Time.to_sec_f (Time.sub minb tm)
            else 0.0
          in
          Profile.note_window ~width_s ~events:(events_fired t - wfired);
          for s = 0 to n - 1 do
            let f = Shard.events_fired t.shards.(s) in
            Profile.note_shard_events ~shard:s (f - scratch.(s));
            scratch.(s) <- f
          done
        end;
        (match pool.error with Some _ -> () | None -> window_loop ())
  in
  (try window_loop ()
   with e ->
     shutdown ();
     raise e);
  shutdown ();
  match pool.error with Some e -> raise e | None -> ()

let now t =
  Array.fold_left (fun acc s -> Time.min acc (Shard.now s)) max_time t.shards

let pending t = Array.fold_left (fun acc s -> acc + Shard.pending s) 0 t.shards

let events_cancelled t =
  Array.fold_left (fun acc s -> acc + Shard.events_cancelled s) 0 t.shards

let posts_sent t =
  Array.fold_left (fun acc s -> acc + Shard.posts_sent s) 0 t.shards

let windows t = t.windows
let messages_delivered t = t.delivered
