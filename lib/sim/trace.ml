type severity = Debug | Info | Warn | Error

let severity_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

module Category = struct
  type t =
    | Packet_tx
    | Packet_rx
    | Packet_drop
    | Route_update
    | Sched_latency
    | Fault_injected
    | Process_lifecycle
    | Watchdog
    | Span
    | Custom

  let all =
    [ Packet_tx; Packet_rx; Packet_drop; Route_update; Sched_latency;
      Fault_injected; Process_lifecycle; Watchdog; Span; Custom ]

  let bit = function
    | Packet_tx -> 1
    | Packet_rx -> 2
    | Packet_drop -> 4
    | Route_update -> 8
    | Sched_latency -> 16
    | Fault_injected -> 32
    | Custom -> 64
    | Process_lifecycle -> 128
    | Watchdog -> 256
    | Span -> 512

  let name = function
    | Packet_tx -> "packet_tx"
    | Packet_rx -> "packet_rx"
    | Packet_drop -> "packet_drop"
    | Route_update -> "route_update"
    | Sched_latency -> "sched_latency"
    | Fault_injected -> "fault_injected"
    | Process_lifecycle -> "process_lifecycle"
    | Watchdog -> "watchdog"
    | Span -> "span"
    | Custom -> "custom"

  let of_name = function
    | "packet_tx" -> Some Packet_tx
    | "packet_rx" -> Some Packet_rx
    | "packet_drop" -> Some Packet_drop
    | "route_update" -> Some Route_update
    | "sched_latency" -> Some Sched_latency
    | "fault_injected" -> Some Fault_injected
    | "process_lifecycle" -> Some Process_lifecycle
    | "watchdog" -> Some Watchdog
    | "span" -> Some Span
    | "custom" -> Some Custom
    | _ -> None

  let mask_of cats = List.fold_left (fun m c -> m lor bit c) 0 cats
end

type kind =
  | Packet_tx of { bytes : int }
  | Packet_rx of { bytes : int }
  | Packet_drop of { reason : string; bytes : int }
  | Route_update of { prefix : string; action : string }
  | Sched_latency of { seconds : float }
  | Fault_injected of { action : string }
  | Process_lifecycle of { phase : string; detail : string }
  | Watchdog_check of { check : string; detail : string }
  | Custom of string

let category_of_kind : kind -> Category.t = function
  | Packet_tx _ -> Category.Packet_tx
  | Packet_rx _ -> Category.Packet_rx
  | Packet_drop _ -> Category.Packet_drop
  | Route_update _ -> Category.Route_update
  | Sched_latency _ -> Category.Sched_latency
  | Fault_injected _ -> Category.Fault_injected
  | Process_lifecycle _ -> Category.Process_lifecycle
  | Watchdog_check _ -> Category.Watchdog
  | Custom _ -> Category.Custom

type event = {
  time : Time.t;
  severity : severity;
  component : string;
  kind : kind;
}

type t = {
  buf : event array;
  capacity : int;
  mutable head : int; (* next write slot *)
  mutable len : int;
  mutable overwritten : int;
  mutable mask : int;
}

(* -- the global simulation clock used to stamp events --------------------

   The engine registers its clock here on creation (last engine created
   wins), so module-level [emit] works from any layer without threading a
   handle through every hot path. *)

let clock : (unit -> Time.t) ref = ref (fun () -> Time.zero)
let set_clock f = clock := f
let now () = !clock ()

let default_capacity = 65_536

let dummy_event =
  { time = Time.zero; severity = Info; component = ""; kind = Custom "" }

let create ?(capacity = default_capacity) ?(categories = Category.all) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  {
    buf = Array.make capacity dummy_event;
    capacity;
    head = 0;
    len = 0;
    overwritten = 0;
    mask = Category.mask_of categories;
  }

(* -- the installed global sink ------------------------------------------ *)

let sink_ref : t option ref = ref None

(* Mirrors the sink's category mask; 0 when no sink is installed, so the
   hot-path check [on cat] is one load + land + compare. *)
let global_mask = ref 0

(* The flight-recorder gate.  [Vini_sim.Span] owns its own ring (it layers
   on top of this module), but the hot-path test lives here so it can fold
   in the sink's category mask: span records flow iff a span recorder is
   installed AND the installed trace sink enables [Category.Span].  Both
   sides funnel through [refresh_span_gate], so [Span.on] stays a single
   load of an immediate bool — the disabled cost the packet path pays. *)
let span_recorder_installed = ref false
let span_gate = ref false

let refresh_span_gate () =
  span_gate :=
    !span_recorder_installed
    && !global_mask land Category.bit Category.Span <> 0

let refresh_global_mask () =
  global_mask := (match !sink_ref with None -> 0 | Some t -> t.mask);
  refresh_span_gate ()

let set_span_recorder installed =
  span_recorder_installed := installed;
  refresh_span_gate ()

let install t =
  sink_ref := Some t;
  refresh_global_mask ()

let uninstall () =
  sink_ref := None;
  refresh_global_mask ()

let sink () = !sink_ref
let on cat = !global_mask land Category.bit cat <> 0

let enabled t cat = t.mask land Category.bit cat <> 0

let set_categories t cats =
  t.mask <- Category.mask_of cats;
  (match !sink_ref with Some s when s == t -> refresh_global_mask () | _ -> ())

let enable t cat =
  t.mask <- t.mask lor Category.bit cat;
  (match !sink_ref with Some s when s == t -> refresh_global_mask () | _ -> ())

let disable t cat =
  t.mask <- t.mask land lnot (Category.bit cat);
  (match !sink_ref with Some s when s == t -> refresh_global_mask () | _ -> ())

(* -- recording ----------------------------------------------------------- *)

let record ?(severity = Info) t ~component kind =
  if t.mask land Category.bit (category_of_kind kind) <> 0 then begin
    let ev = { time = !clock (); severity; component; kind } in
    if t.len = t.capacity then begin
      (* Ring full: overwrite the oldest event. *)
      t.buf.(t.head) <- ev;
      t.head <- (t.head + 1) mod t.capacity;
      t.overwritten <- t.overwritten + 1
    end
    else begin
      t.buf.((t.head + t.len) mod t.capacity) <- ev;
      t.len <- t.len + 1
    end
  end

let emit ?severity ~component kind =
  match !sink_ref with
  | None -> ()
  | Some t -> record ?severity t ~component kind

let message ~component detail = emit ~component (Custom detail)

(* -- inspection ---------------------------------------------------------- *)

let length t = t.len
let capacity t = t.capacity
let overwritten t = t.overwritten

let events t =
  List.init t.len (fun i -> t.buf.((t.head + i) mod t.capacity))

let find t ~component =
  List.filter (fun ev -> String.equal ev.component component) (events t)

let find_cat t cat =
  List.filter
    (fun ev -> category_of_kind ev.kind = (cat : Category.t))
    (events t)

let clear t =
  t.head <- 0;
  t.len <- 0;
  t.overwritten <- 0

let kind_detail = function
  | Packet_tx { bytes } -> Printf.sprintf "tx %dB" bytes
  | Packet_rx { bytes } -> Printf.sprintf "rx %dB" bytes
  | Packet_drop { reason; bytes } -> Printf.sprintf "drop %dB (%s)" bytes reason
  | Route_update { prefix; action } -> Printf.sprintf "%s %s" action prefix
  | Sched_latency { seconds } -> Printf.sprintf "sched %.6fs" seconds
  | Fault_injected { action } -> action
  | Process_lifecycle { phase; detail } ->
      if detail = "" then phase else Printf.sprintf "%s (%s)" phase detail
  | Watchdog_check { check; detail } -> Printf.sprintf "%s: %s" check detail
  | Custom detail -> detail

let pp_event ppf ev =
  Format.fprintf ppf "%a %-5s %-14s %-24s %s" Time.pp ev.time
    (severity_name ev.severity)
    (Category.name (category_of_kind ev.kind))
    ev.component (kind_detail ev.kind)

let pp ppf t =
  List.iter (fun ev -> Format.fprintf ppf "%a@." pp_event ev) (events t)
