type handle = {
  time : Time.t;
  callback : unit -> unit;
  mutable cancelled : bool;
}

type t = {
  mutable clock : Time.t;
  queue : handle Vini_std.Heap.t;
  root_rng : Vini_std.Rng.t;
  mutable cancelled_count : int;
  mutable fired : int;
  mutable max_pending : int;
  (* Profiling (off by default, so the hot path pays one bool test):
     [horizon_hist] sees how far ahead of the clock each event is scheduled
     (simulated seconds, deterministic); [callback_hist] sees host CPU time
     per callback via [Sys.time] (resolution-limited, export-only). *)
  mutable profiling : bool;
  horizon_hist : Vini_std.Histogram.t;
  callback_hist : Vini_std.Histogram.t;
}

let create ?(seed = 42) () =
  let t =
    {
      clock = Time.zero;
      queue = Vini_std.Heap.create ~cmp:(fun a b -> Time.compare a.time b.time);
      root_rng = Vini_std.Rng.create seed;
      cancelled_count = 0;
      fired = 0;
      max_pending = 0;
      profiling = false;
      horizon_hist = Vini_std.Histogram.create ();
      callback_hist = Vini_std.Histogram.create ();
    }
  in
  Trace.set_clock (fun () -> t.clock);
  t

let now t = t.clock
let rng t = t.root_rng

let at t time callback =
  let time = Time.max time t.clock in
  let h = { time; callback; cancelled = false } in
  Vini_std.Heap.push t.queue h;
  let depth = Vini_std.Heap.length t.queue in
  if depth > t.max_pending then t.max_pending <- depth;
  if t.profiling then
    Vini_std.Histogram.add t.horizon_hist
      (Time.to_sec_f (Time.sub time t.clock));
  h

let after t delta callback = at t (Time.add t.clock (Time.max delta Time.zero)) callback

let cancel h = h.cancelled <- true
let is_cancelled h = h.cancelled

let rec every t ?start ?jitter period f =
  let base = match start with Some s -> s | None -> Time.add t.clock period in
  let fire_at =
    match jitter with
    | None -> base
    | Some j when Time.compare j Time.zero > 0 ->
        Time.add base (Time.of_sec_f (Vini_std.Rng.float t.root_rng (Time.to_sec_f j)))
    | Some _ -> base
  in
  ignore
    (at t fire_at (fun () ->
         if f () then
           every t ~start:(Time.add fire_at period) ?jitter period f))

let step t =
  match Vini_std.Heap.pop t.queue with
  | None -> false
  | Some h ->
      if h.cancelled then begin
        t.cancelled_count <- t.cancelled_count + 1;
        true
      end
      else begin
        t.clock <- Time.max t.clock h.time;
        t.fired <- t.fired + 1;
        if t.profiling then begin
          let t0 = Sys.time () in
          h.callback ();
          Vini_std.Histogram.add t.callback_hist (Sys.time () -. t0)
        end
        else h.callback ();
        true
      end

let run ?until t =
  let continue () =
    match (Vini_std.Heap.peek t.queue, until) with
    | None, _ -> false
    | Some _, None -> true
    | Some h, Some limit -> Time.compare h.time limit <= 0
  in
  while continue () do
    ignore (step t)
  done;
  match until with
  | Some limit when Time.compare limit t.clock > 0 -> t.clock <- limit
  | Some _ | None -> ()

let pending t =
  (* Lazily-deleted events stay in the heap until popped; count live ones. *)
  List.length (List.filter (fun h -> not h.cancelled) (Vini_std.Heap.to_list t.queue))

let events_fired t = t.fired
let events_cancelled t = t.cancelled_count
let max_pending t = t.max_pending

let set_profiling t on = t.profiling <- on
let profiling t = t.profiling
let horizon_hist t = t.horizon_hist
let callback_hist t = t.callback_hist
