type state = Pending | Fired | Cancelled

type handle = {
  time : Time.t;
  callback : unit -> unit;
  mutable state : state;
  live : int ref; (* the owning engine's live-event counter *)
}

(* Fills vacated queue slots (see {!Vini_std.Eventq.create}); never fires. *)
let dummy_handle =
  { time = Time.zero; callback = ignore; state = Cancelled; live = ref 0 }

(* Sharded mode: the event space is partitioned over a fixed number of
   logical shards, each with its own calendar queue and clock, executed in
   conservative windows of one lookahead.  The window schedule is a pure
   function of the seed and the shard count — never of how many domains
   the host happens to run — which is what makes a seeded run
   byte-identical at --domains 1/2/N.  Experiment callbacks freely share
   state (tables, traces, supervisors), so windows here execute shards
   serially in ascending shard id; the truly parallel path for
   shard-confined workloads is {!Coordinator}. *)
type shard_q = {
  squeue : handle Vini_std.Eventq.t;
  mutable sclock : Time.t;
}

type sharding = {
  nshards : int;
  sh : shard_q array;
  mutable current : int; (* affinity: where [at] schedules *)
  mutable lookahead : Time.t; (* window width; see [set_lookahead] *)
  mutable queued : int; (* total queue length, cancelled entries included *)
}

type t = {
  mutable clock : Time.t;
  queue : handle Vini_std.Eventq.t;
  live : int ref; (* scheduled, not yet fired or cancelled *)
  root_rng : Vini_std.Rng.t;
  sharding : sharding option;
  mutable cancelled_count : int;
  mutable fired : int;
  mutable inlined : int;
  (* Breath coalescing ({!at_inline}): inclusive bound up to which a
     tail-scheduled event may execute immediately instead of through the
     calendar.  Maintained by the run loops (the run's [until] limit, and
     in sharded mode the current conservative window's bound); -1 outside
     a run loop, which disables inlining since times are >= 0. *)
  mutable inline_until : Time.t;
  mutable inline_enabled : bool;
  (* Inline chains nest on the OCaml stack (each coalesced event is a
     nested call); cap the depth so a long back-to-back burst falls back
     to the calendar once per [max_inline_depth] events instead of
     overflowing the stack. *)
  mutable inline_depth : int;
  mutable max_pending : int;
  (* Profiling (off by default, so the hot path pays one bool test):
     [horizon_hist] sees how far ahead of the clock each event is scheduled
     (simulated seconds, deterministic); [callback_hist] sees host CPU time
     per callback via [Sys.time] (resolution-limited, export-only). *)
  mutable profiling : bool;
  horizon_hist : Vini_std.Histogram.t;
  callback_hist : Vini_std.Histogram.t;
}

let default_logical_shards = 8
let default_lookahead = Time.us 500

let create ?(seed = 42) ?shards () =
  let sharding =
    match shards with
    | None -> None
    | Some n ->
        if n < 1 then invalid_arg "Engine.create: shards < 1";
        Some
          {
            nshards = n;
            sh =
              Array.init n (fun _ ->
                  { squeue = Vini_std.Eventq.create ~dummy:dummy_handle (); sclock = Time.zero });
            current = 0;
            lookahead = default_lookahead;
            queued = 0;
          }
  in
  let t =
    {
      clock = Time.zero;
      queue = Vini_std.Eventq.create ~dummy:dummy_handle ();
      live = ref 0;
      root_rng = Vini_std.Rng.create seed;
      sharding;
      cancelled_count = 0;
      fired = 0;
      inlined = 0;
      inline_until = -1;
      inline_enabled = true;
      inline_depth = 0;
      max_pending = 0;
      profiling = false;
      horizon_hist = Vini_std.Histogram.create ();
      callback_hist = Vini_std.Histogram.create ();
    }
  in
  Trace.set_clock (fun () ->
      match t.sharding with
      | None -> t.clock
      | Some s -> s.sh.(s.current).sclock);
  t

let now t =
  match t.sharding with
  | None -> t.clock
  | Some s -> s.sh.(s.current).sclock

let rng t = t.root_rng

let shards t = match t.sharding with None -> 1 | Some s -> s.nshards
let is_sharded t = t.sharding <> None

let shard_of t key =
  match t.sharding with
  | None -> 0
  | Some s ->
      let k = if key < 0 then -key else key in
      k mod s.nshards

let current_shard t = match t.sharding with None -> 0 | Some s -> s.current

let set_lookahead t l =
  match t.sharding with
  | None -> ()
  | Some s ->
      if Time.compare l Time.zero <= 0 then
        invalid_arg "Engine.set_lookahead: lookahead must be positive";
      s.lookahead <- l

let lookahead t =
  match t.sharding with None -> Time.zero | Some s -> s.lookahead

(* Cancelled handles stay queued (lazy delete) until popped; when they
   outnumber the live events, sweep them out so a cancel-heavy workload
   (retransmission timers, failure detectors) cannot bloat the queue.
   Sharded mode keeps one global [queued]/live balance and sweeps every
   shard queue at once, so cross-shard cancellations (an event scheduled
   on shard A, cancelled from shard B's callback) are reclaimed too. *)
let compact_threshold = 64

let maybe_compact t =
  match t.sharding with
  | None ->
      let len = Vini_std.Eventq.length t.queue in
      if len > compact_threshold && len - !(t.live) > !(t.live) then
        t.cancelled_count <-
          t.cancelled_count
          + Vini_std.Eventq.compact t.queue ~dead:(fun h ->
                h.state = Cancelled)
  | Some s ->
      if s.queued > compact_threshold && s.queued - !(t.live) > !(t.live) then
        Array.iter
          (fun q ->
            let removed =
              Vini_std.Eventq.compact q.squeue ~dead:(fun h ->
                  h.state = Cancelled)
            in
            t.cancelled_count <- t.cancelled_count + removed;
            s.queued <- s.queued - removed)
          s.sh

let profile_horizon t time clock =
  if t.profiling then
    Vini_std.Histogram.add t.horizon_hist (Time.to_sec_f (Time.sub time clock))

let at_shard t ~shard time callback =
  match t.sharding with
  | None ->
      if shard <> 0 then invalid_arg "Engine.at_shard: engine is not sharded";
      let time = Time.max time t.clock in
      let h = { time; callback; state = Pending; live = t.live } in
      Vini_std.Eventq.push t.queue ~key:time h;
      incr t.live;
      let depth = Vini_std.Eventq.length t.queue in
      if depth > t.max_pending then t.max_pending <- depth;
      profile_horizon t time t.clock;
      maybe_compact t;
      h
  | Some s ->
      if shard < 0 || shard >= s.nshards then
        invalid_arg "Engine.at_shard: shard out of range";
      let q = s.sh.(shard) in
      (* Profiler: a cross-shard post is a scheduling handoff between
         shards (what a plink delivery does).  One gate load + test when
         profiling is off. *)
      if !Profile.gate && shard <> s.current then
        Profile.note_cross_post ~src:s.current;
      (* Clamp to the destination clock: inside a window the destination
         may have advanced past the requested arrival.  With the
         lookahead at or below every cross-shard latency this never
         triggers (arrival >= sender clock + lookahead >= window bound);
         when a latency sits under the lookahead floor the clamp is a
         deterministic, bounded skew.  See DESIGN.md §13. *)
      let time = Time.max time q.sclock in
      let h = { time; callback; state = Pending; live = t.live } in
      Vini_std.Eventq.push q.squeue ~key:time h;
      incr t.live;
      s.queued <- s.queued + 1;
      if s.queued > t.max_pending then t.max_pending <- s.queued;
      profile_horizon t time q.sclock;
      maybe_compact t;
      h

let at t time callback =
  match t.sharding with
  | None -> at_shard t ~shard:0 time callback
  | Some s -> at_shard t ~shard:s.current time callback

(* Shard 0 executes first inside every conservative window, so an event
   scheduled here is observed by all shards' events at or after its own
   window.  Visibility can lead other shards' earlier in-window events by
   at most one lookahead — which is at most the minimum cross-shard
   latency, i.e. inside the interval a signal between shards would need
   anyway.  That makes this the safe point for mutations (like a
   migration placement flip) that every shard reads. *)
let at_barrier t time callback = at_shard t ~shard:0 time callback

let after t delta callback = at t (Time.add (now t) (Time.max delta Time.zero)) callback

(* Breath coalescing.  An event scheduled at [time] from the tail of the
   currently-executing callback fires *next* — immediately after this
   callback returns, before anything else — exactly when (a) the run loop
   will keep going, [time <= inline_until], and (b) [time] is strictly
   below every queued key (an equal key has an older seq and drains
   first).  When both hold, running the callback here, with the clock
   advanced to [time], is indistinguishable from the calendar route: same
   order, same clocks, same RNG draws, same [events_fired].  This is what
   lets a burst of back-to-back packets traverse CPU service and kernel
   hops as one calendar event (a Snabb-style "breath") while staying
   byte-identical to the one-event-per-packet schedule.

   Only legal in tail position: any work the caller does after [at_inline]
   would be reordered before the event.  Inlining is skipped under
   profiling so the per-event histograms keep their meaning. *)
let max_inline_depth = 192

let rec at_inline t time callback =
  match t.sharding with
  | None ->
      let time = Time.max time t.clock in
      if
        t.inline_enabled && (not t.profiling)
        && t.inline_depth < max_inline_depth
        && Time.( <= ) time t.inline_until
        && time < Vini_std.Eventq.min_key t.queue
      then begin
        t.clock <- time;
        t.fired <- t.fired + 1;
        t.inlined <- t.inlined + 1;
        t.inline_depth <- t.inline_depth + 1;
        callback ();
        t.inline_depth <- t.inline_depth - 1
      end
      else ignore (at t time callback)
  | Some s ->
      let q = s.sh.(s.current) in
      let time = Time.max time q.sclock in
      if
        t.inline_enabled && (not t.profiling)
        && t.inline_depth < max_inline_depth
        && Time.( <= ) time t.inline_until
        && time < Vini_std.Eventq.min_key q.squeue
      then begin
        q.sclock <- time;
        t.fired <- t.fired + 1;
        t.inlined <- t.inlined + 1;
        t.inline_depth <- t.inline_depth + 1;
        callback ();
        t.inline_depth <- t.inline_depth - 1
      end
      else ignore (at t time callback)

and after_inline t delta callback =
  at_inline t (Time.add (now t) (Time.max delta Time.zero)) callback

let set_inline t on = t.inline_enabled <- on
let inline_enabled t = t.inline_enabled
let events_inlined t = t.inlined

let cancel h =
  match h.state with
  | Pending ->
      h.state <- Cancelled;
      decr h.live
  | Fired | Cancelled -> ()

let is_cancelled h = h.state = Cancelled

let rec every t ?start ?jitter period f =
  let base = match start with Some s -> s | None -> Time.add (now t) period in
  let fire_at =
    match jitter with
    | None -> base
    | Some j when Time.compare j Time.zero > 0 ->
        Time.add base (Time.of_sec_f (Vini_std.Rng.float t.root_rng (Time.to_sec_f j)))
    | Some _ -> base
  in
  ignore
    (at t fire_at (fun () ->
         if f () then
           every t ~start:(Time.add fire_at period) ?jitter period f))

(* A recurring barrier tick: like [every] but each firing lands on
   shard 0 at the head of its conservative window, so a coarse periodic
   mutation that all shards read (the fluid background-load fold) has the
   same cross-shard visibility guarantee as a one-shot [at_barrier].  No
   jitter on purpose — barrier ticks exist to be phase-stable so exported
   per-tick series align across runs and domain counts. *)
let rec every_barrier t ?start period f =
  let fire_at =
    match start with Some s -> s | None -> Time.add (now t) period
  in
  ignore
    (at_barrier t fire_at (fun () ->
         if f () then
           every_barrier t ~start:(Time.add fire_at period) period f))

(* Two fire paths rather than one taking a clock-setting closure: the
   closure would be allocated per event, and this runs a million times a
   second. *)
let run_callback t h =
  t.fired <- t.fired + 1;
  if t.profiling then begin
    let t0 = Sys.time () in
    h.callback ();
    Vini_std.Histogram.add t.callback_hist (Sys.time () -. t0)
  end
  else h.callback ()

let fire_legacy t h =
  h.state <- Fired;
  decr t.live;
  t.clock <- Time.max t.clock h.time;
  run_callback t h

let fire_shard t (q : shard_q) h =
  h.state <- Fired;
  decr t.live;
  q.sclock <- Time.max q.sclock h.time;
  run_callback t h

let step t =
  match t.sharding with
  | None -> (
      match Vini_std.Eventq.pop t.queue with
      | None -> false
      | Some h -> (
          match h.state with
          | Cancelled ->
              t.cancelled_count <- t.cancelled_count + 1;
              true
          | Fired -> assert false
          | Pending ->
              fire_legacy t h;
              true))
  | Some s -> (
      (* Global earliest event with (time, shard id) tie-break, so a
         sharded single-step drains in a deterministic total order. *)
      let best = ref None in
      Array.iteri
        (fun i q ->
          match Vini_std.Eventq.peek q.squeue with
          | None -> ()
          | Some h -> (
              match !best with
              | None -> best := Some (i, h)
              | Some (_, bh) ->
                  if Time.compare h.time bh.time < 0 then best := Some (i, h)))
        s.sh;
      match !best with
      | None -> false
      | Some (i, _) -> (
          s.current <- i;
          let q = s.sh.(i) in
          match Vini_std.Eventq.pop q.squeue with
          | None -> assert false
          | Some h -> (
              s.queued <- s.queued - 1;
              match h.state with
              | Cancelled ->
                  t.cancelled_count <- t.cancelled_count + 1;
                  true
              | Fired -> assert false
              | Pending ->
                  fire_shard t q h;
                  true)))

let run_legacy ?until t =
  t.inline_depth <- 0;
  t.inline_until <-
    (match until with Some l -> l | None -> Time.max_value);
  (* [min_key] rather than [peek]: same cursor search, no option
     allocation per event.  An empty queue reports [max_int], which no
     real key reaches (keys clamp at [max_int/2]). *)
  let continue () =
    let k = Vini_std.Eventq.min_key t.queue in
    k <> max_int
    && match until with None -> true | Some limit -> k <= limit
  in
  while continue () do
    ignore (step t)
  done;
  t.inline_until <- -1;
  match until with
  | Some limit when Time.compare limit t.clock > 0 -> t.clock <- limit
  | Some _ | None -> ()

(* Windowed drain: each pass executes, shard by shard in ascending id,
   every event in [tmin, tmin + lookahead).  Because the plink lookahead
   is the minimum cross-shard latency, an event fired in the window can
   only schedule into another shard at or beyond the window bound, so the
   pass order between shards is invisible to the result — and the window
   structure itself depends only on event times, never on domain count. *)
let run_sharded ?until t s =
  t.inline_depth <- 0;
  let tmin () =
    let best = ref max_int in
    Array.iter
      (fun q ->
        let k = Vini_std.Eventq.min_key q.squeue in
        if k < !best then best := k)
      s.sh;
    if !best = max_int then None else Some !best
  in
  let width = Time.max s.lookahead (Time.ns 1) in
  if !Profile.gate then Profile.note_floor ~width_s:(Time.to_sec_f width);
  let rec windows () =
    match tmin () with
    | None -> ()
    | Some tm
      when match until with
           | Some u -> Time.compare tm u > 0
           | None -> false ->
        ()
    | Some tm ->
        let bound =
          let b = Time.add tm width in
          if Time.compare b tm < 0 then Time.max_value else b
        in
        (* Inline bound for this window: strictly inside the window (an
           event at the bound belongs to a later window) and within the
           run limit. *)
        t.inline_until <-
          (let b = Time.sub bound (Time.ns 1) in
           match until with Some u -> Time.min b u | None -> b);
        let wfired = t.fired in
        for i = 0 to s.nshards - 1 do
          s.current <- i;
          let q = s.sh.(i) in
          (* Profiler: per-window, per-shard notes (queue depth before the
             drain, events fired by the drain).  Gate-checked once per
             shard per window — nothing on the per-event path. *)
          if !Profile.gate then
            Profile.note_queue_depth ~shard:i
              (Vini_std.Eventq.length q.squeue);
          let sfired = t.fired in
          let continue () =
            (* [min_key] = the head's time for every in-range key; an
               empty queue reports [max_int], which fails [k < bound]. *)
            let k = Vini_std.Eventq.min_key q.squeue in
            k < bound
            && (match until with None -> true | Some u -> k <= u)
          in
          while continue () do
            match Vini_std.Eventq.pop q.squeue with
            | None -> assert false
            | Some h -> (
                s.queued <- s.queued - 1;
                match h.state with
                | Cancelled -> t.cancelled_count <- t.cancelled_count + 1
                | Fired -> assert false
                | Pending -> fire_shard t q h)
          done;
          if !Profile.gate then
            Profile.note_shard_events ~shard:i (t.fired - sfired)
        done;
        if !Profile.gate then
          Profile.note_window ~width_s:(Time.to_sec_f width)
            ~events:(t.fired - wfired);
        windows ()
  in
  windows ();
  t.inline_until <- -1;
  (match until with
  | Some u ->
      Array.iter (fun q -> if Time.compare u q.sclock > 0 then q.sclock <- u) s.sh
  | None -> ());
  s.current <- 0

let run ?until t =
  match t.sharding with
  | None -> run_legacy ?until t
  | Some s -> run_sharded ?until t s

let pending t = !(t.live)
let events_fired t = t.fired
let events_cancelled t = t.cancelled_count
let max_pending t = t.max_pending

let set_profiling t on = t.profiling <- on
let profiling t = t.profiling
let horizon_hist t = t.horizon_hist
let callback_hist t = t.callback_hist
