type state = Pending | Fired | Cancelled

type handle = {
  time : Time.t;
  callback : unit -> unit;
  mutable state : state;
  live : int ref; (* the owning engine's live-event counter *)
}

type t = {
  mutable clock : Time.t;
  queue : handle Vini_std.Calendar.t;
  live : int ref; (* scheduled, not yet fired or cancelled *)
  root_rng : Vini_std.Rng.t;
  mutable cancelled_count : int;
  mutable fired : int;
  mutable max_pending : int;
  (* Profiling (off by default, so the hot path pays one bool test):
     [horizon_hist] sees how far ahead of the clock each event is scheduled
     (simulated seconds, deterministic); [callback_hist] sees host CPU time
     per callback via [Sys.time] (resolution-limited, export-only). *)
  mutable profiling : bool;
  horizon_hist : Vini_std.Histogram.t;
  callback_hist : Vini_std.Histogram.t;
}

let create ?(seed = 42) () =
  let t =
    {
      clock = Time.zero;
      queue = Vini_std.Calendar.create ();
      live = ref 0;
      root_rng = Vini_std.Rng.create seed;
      cancelled_count = 0;
      fired = 0;
      max_pending = 0;
      profiling = false;
      horizon_hist = Vini_std.Histogram.create ();
      callback_hist = Vini_std.Histogram.create ();
    }
  in
  Trace.set_clock (fun () -> t.clock);
  t

let now t = t.clock
let rng t = t.root_rng

(* Cancelled handles stay queued (lazy delete) until popped; when they
   outnumber the live events, sweep them out so a cancel-heavy workload
   (retransmission timers, failure detectors) cannot bloat the queue. *)
let compact_threshold = 64

let maybe_compact t =
  let len = Vini_std.Calendar.length t.queue in
  if len > compact_threshold && len - !(t.live) > !(t.live) then
    t.cancelled_count <-
      t.cancelled_count
      + Vini_std.Calendar.compact t.queue ~dead:(fun h -> h.state = Cancelled)

let at t time callback =
  let time = Time.max time t.clock in
  let h = { time; callback; state = Pending; live = t.live } in
  Vini_std.Calendar.push t.queue ~key:time h;
  incr t.live;
  let depth = Vini_std.Calendar.length t.queue in
  if depth > t.max_pending then t.max_pending <- depth;
  if t.profiling then
    Vini_std.Histogram.add t.horizon_hist
      (Time.to_sec_f (Time.sub time t.clock));
  maybe_compact t;
  h

let after t delta callback = at t (Time.add t.clock (Time.max delta Time.zero)) callback

let cancel h =
  match h.state with
  | Pending ->
      h.state <- Cancelled;
      decr h.live
  | Fired | Cancelled -> ()

let is_cancelled h = h.state = Cancelled

let rec every t ?start ?jitter period f =
  let base = match start with Some s -> s | None -> Time.add t.clock period in
  let fire_at =
    match jitter with
    | None -> base
    | Some j when Time.compare j Time.zero > 0 ->
        Time.add base (Time.of_sec_f (Vini_std.Rng.float t.root_rng (Time.to_sec_f j)))
    | Some _ -> base
  in
  ignore
    (at t fire_at (fun () ->
         if f () then
           every t ~start:(Time.add fire_at period) ?jitter period f))

let step t =
  match Vini_std.Calendar.pop t.queue with
  | None -> false
  | Some h -> (
      match h.state with
      | Cancelled ->
          t.cancelled_count <- t.cancelled_count + 1;
          true
      | Fired -> assert false
      | Pending ->
          h.state <- Fired;
          decr t.live;
          t.clock <- Time.max t.clock h.time;
          t.fired <- t.fired + 1;
          if t.profiling then begin
            let t0 = Sys.time () in
            h.callback ();
            Vini_std.Histogram.add t.callback_hist (Sys.time () -. t0)
          end
          else h.callback ();
          true)

let run ?until t =
  let continue () =
    match (Vini_std.Calendar.peek t.queue, until) with
    | None, _ -> false
    | Some _, None -> true
    | Some h, Some limit -> Time.compare h.time limit <= 0
  in
  while continue () do
    ignore (step t)
  done;
  match until with
  | Some limit when Time.compare limit t.clock > 0 -> t.clock <- limit
  | Some _ | None -> ()

let pending t = !(t.live)
let events_fired t = t.fired
let events_cancelled t = t.cancelled_count
let max_pending t = t.max_pending

let set_profiling t on = t.profiling <- on
let profiling t = t.profiling
let horizon_hist t = t.horizon_hist
let callback_hist t = t.callback_hist
