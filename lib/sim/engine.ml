type state = Pending | Fired | Cancelled

type handle = {
  time : Time.t;
  callback : unit -> unit;
  mutable state : state;
  live : int ref; (* the owning engine's live-event counter *)
}

(* Sharded mode: the event space is partitioned over a fixed number of
   logical shards, each with its own calendar queue and clock, executed in
   conservative windows of one lookahead.  The window schedule is a pure
   function of the seed and the shard count — never of how many domains
   the host happens to run — which is what makes a seeded run
   byte-identical at --domains 1/2/N.  Experiment callbacks freely share
   state (tables, traces, supervisors), so windows here execute shards
   serially in ascending shard id; the truly parallel path for
   shard-confined workloads is {!Coordinator}. *)
type shard_q = {
  squeue : handle Vini_std.Calendar.t;
  mutable sclock : Time.t;
}

type sharding = {
  nshards : int;
  sh : shard_q array;
  mutable current : int; (* affinity: where [at] schedules *)
  mutable lookahead : Time.t; (* window width; see [set_lookahead] *)
  mutable queued : int; (* total queue length, cancelled entries included *)
}

type t = {
  mutable clock : Time.t;
  queue : handle Vini_std.Calendar.t;
  live : int ref; (* scheduled, not yet fired or cancelled *)
  root_rng : Vini_std.Rng.t;
  sharding : sharding option;
  mutable cancelled_count : int;
  mutable fired : int;
  mutable max_pending : int;
  (* Profiling (off by default, so the hot path pays one bool test):
     [horizon_hist] sees how far ahead of the clock each event is scheduled
     (simulated seconds, deterministic); [callback_hist] sees host CPU time
     per callback via [Sys.time] (resolution-limited, export-only). *)
  mutable profiling : bool;
  horizon_hist : Vini_std.Histogram.t;
  callback_hist : Vini_std.Histogram.t;
}

let default_logical_shards = 8
let default_lookahead = Time.us 500

let create ?(seed = 42) ?shards () =
  let sharding =
    match shards with
    | None -> None
    | Some n ->
        if n < 1 then invalid_arg "Engine.create: shards < 1";
        Some
          {
            nshards = n;
            sh =
              Array.init n (fun _ ->
                  { squeue = Vini_std.Calendar.create (); sclock = Time.zero });
            current = 0;
            lookahead = default_lookahead;
            queued = 0;
          }
  in
  let t =
    {
      clock = Time.zero;
      queue = Vini_std.Calendar.create ();
      live = ref 0;
      root_rng = Vini_std.Rng.create seed;
      sharding;
      cancelled_count = 0;
      fired = 0;
      max_pending = 0;
      profiling = false;
      horizon_hist = Vini_std.Histogram.create ();
      callback_hist = Vini_std.Histogram.create ();
    }
  in
  Trace.set_clock (fun () ->
      match t.sharding with
      | None -> t.clock
      | Some s -> s.sh.(s.current).sclock);
  t

let now t =
  match t.sharding with
  | None -> t.clock
  | Some s -> s.sh.(s.current).sclock

let rng t = t.root_rng

let shards t = match t.sharding with None -> 1 | Some s -> s.nshards
let is_sharded t = t.sharding <> None

let shard_of t key =
  match t.sharding with
  | None -> 0
  | Some s ->
      let k = if key < 0 then -key else key in
      k mod s.nshards

let current_shard t = match t.sharding with None -> 0 | Some s -> s.current

let set_lookahead t l =
  match t.sharding with
  | None -> ()
  | Some s ->
      if Time.compare l Time.zero <= 0 then
        invalid_arg "Engine.set_lookahead: lookahead must be positive";
      s.lookahead <- l

let lookahead t =
  match t.sharding with None -> Time.zero | Some s -> s.lookahead

(* Cancelled handles stay queued (lazy delete) until popped; when they
   outnumber the live events, sweep them out so a cancel-heavy workload
   (retransmission timers, failure detectors) cannot bloat the queue.
   Sharded mode keeps one global [queued]/live balance and sweeps every
   shard queue at once, so cross-shard cancellations (an event scheduled
   on shard A, cancelled from shard B's callback) are reclaimed too. *)
let compact_threshold = 64

let maybe_compact t =
  match t.sharding with
  | None ->
      let len = Vini_std.Calendar.length t.queue in
      if len > compact_threshold && len - !(t.live) > !(t.live) then
        t.cancelled_count <-
          t.cancelled_count
          + Vini_std.Calendar.compact t.queue ~dead:(fun h ->
                h.state = Cancelled)
  | Some s ->
      if s.queued > compact_threshold && s.queued - !(t.live) > !(t.live) then
        Array.iter
          (fun q ->
            let removed =
              Vini_std.Calendar.compact q.squeue ~dead:(fun h ->
                  h.state = Cancelled)
            in
            t.cancelled_count <- t.cancelled_count + removed;
            s.queued <- s.queued - removed)
          s.sh

let profile_horizon t time clock =
  if t.profiling then
    Vini_std.Histogram.add t.horizon_hist (Time.to_sec_f (Time.sub time clock))

let at_shard t ~shard time callback =
  match t.sharding with
  | None ->
      if shard <> 0 then invalid_arg "Engine.at_shard: engine is not sharded";
      let time = Time.max time t.clock in
      let h = { time; callback; state = Pending; live = t.live } in
      Vini_std.Calendar.push t.queue ~key:time h;
      incr t.live;
      let depth = Vini_std.Calendar.length t.queue in
      if depth > t.max_pending then t.max_pending <- depth;
      profile_horizon t time t.clock;
      maybe_compact t;
      h
  | Some s ->
      if shard < 0 || shard >= s.nshards then
        invalid_arg "Engine.at_shard: shard out of range";
      let q = s.sh.(shard) in
      (* Clamp to the destination clock: inside a window the destination
         may have advanced past the requested arrival.  With the
         lookahead at or below every cross-shard latency this never
         triggers (arrival >= sender clock + lookahead >= window bound);
         when a latency sits under the lookahead floor the clamp is a
         deterministic, bounded skew.  See DESIGN.md §13. *)
      let time = Time.max time q.sclock in
      let h = { time; callback; state = Pending; live = t.live } in
      Vini_std.Calendar.push q.squeue ~key:time h;
      incr t.live;
      s.queued <- s.queued + 1;
      if s.queued > t.max_pending then t.max_pending <- s.queued;
      profile_horizon t time q.sclock;
      maybe_compact t;
      h

let at t time callback =
  match t.sharding with
  | None -> at_shard t ~shard:0 time callback
  | Some s -> at_shard t ~shard:s.current time callback

(* Shard 0 executes first inside every conservative window, so an event
   scheduled here is observed by all shards' events at or after its own
   window.  Visibility can lead other shards' earlier in-window events by
   at most one lookahead — which is at most the minimum cross-shard
   latency, i.e. inside the interval a signal between shards would need
   anyway.  That makes this the safe point for mutations (like a
   migration placement flip) that every shard reads. *)
let at_barrier t time callback = at_shard t ~shard:0 time callback

let after t delta callback = at t (Time.add (now t) (Time.max delta Time.zero)) callback

let cancel h =
  match h.state with
  | Pending ->
      h.state <- Cancelled;
      decr h.live
  | Fired | Cancelled -> ()

let is_cancelled h = h.state = Cancelled

let rec every t ?start ?jitter period f =
  let base = match start with Some s -> s | None -> Time.add (now t) period in
  let fire_at =
    match jitter with
    | None -> base
    | Some j when Time.compare j Time.zero > 0 ->
        Time.add base (Time.of_sec_f (Vini_std.Rng.float t.root_rng (Time.to_sec_f j)))
    | Some _ -> base
  in
  ignore
    (at t fire_at (fun () ->
         if f () then
           every t ~start:(Time.add fire_at period) ?jitter period f))

let fire t h clock_set =
  h.state <- Fired;
  decr t.live;
  clock_set h.time;
  t.fired <- t.fired + 1;
  if t.profiling then begin
    let t0 = Sys.time () in
    h.callback ();
    Vini_std.Histogram.add t.callback_hist (Sys.time () -. t0)
  end
  else h.callback ()

let step t =
  match t.sharding with
  | None -> (
      match Vini_std.Calendar.pop t.queue with
      | None -> false
      | Some h -> (
          match h.state with
          | Cancelled ->
              t.cancelled_count <- t.cancelled_count + 1;
              true
          | Fired -> assert false
          | Pending ->
              fire t h (fun time -> t.clock <- Time.max t.clock time);
              true))
  | Some s -> (
      (* Global earliest event with (time, shard id) tie-break, so a
         sharded single-step drains in a deterministic total order. *)
      let best = ref None in
      Array.iteri
        (fun i q ->
          match Vini_std.Calendar.peek q.squeue with
          | None -> ()
          | Some h -> (
              match !best with
              | None -> best := Some (i, h)
              | Some (_, bh) ->
                  if Time.compare h.time bh.time < 0 then best := Some (i, h)))
        s.sh;
      match !best with
      | None -> false
      | Some (i, _) -> (
          s.current <- i;
          let q = s.sh.(i) in
          match Vini_std.Calendar.pop q.squeue with
          | None -> assert false
          | Some h -> (
              s.queued <- s.queued - 1;
              match h.state with
              | Cancelled ->
                  t.cancelled_count <- t.cancelled_count + 1;
                  true
              | Fired -> assert false
              | Pending ->
                  fire t h (fun time -> q.sclock <- Time.max q.sclock time);
                  true)))

let run_legacy ?until t =
  let continue () =
    match (Vini_std.Calendar.peek t.queue, until) with
    | None, _ -> false
    | Some _, None -> true
    | Some h, Some limit -> Time.compare h.time limit <= 0
  in
  while continue () do
    ignore (step t)
  done;
  match until with
  | Some limit when Time.compare limit t.clock > 0 -> t.clock <- limit
  | Some _ | None -> ()

(* Windowed drain: each pass executes, shard by shard in ascending id,
   every event in [tmin, tmin + lookahead).  Because the plink lookahead
   is the minimum cross-shard latency, an event fired in the window can
   only schedule into another shard at or beyond the window bound, so the
   pass order between shards is invisible to the result — and the window
   structure itself depends only on event times, never on domain count. *)
let run_sharded ?until t s =
  let tmin () =
    let best = ref None in
    Array.iter
      (fun q ->
        match Vini_std.Calendar.peek q.squeue with
        | None -> ()
        | Some h -> (
            match !best with
            | None -> best := Some h.time
            | Some b -> if Time.compare h.time b < 0 then best := Some h.time))
      s.sh;
    !best
  in
  let width = Time.max s.lookahead (Time.ns 1) in
  let rec windows () =
    match tmin () with
    | None -> ()
    | Some tm
      when match until with
           | Some u -> Time.compare tm u > 0
           | None -> false ->
        ()
    | Some tm ->
        let bound =
          let b = Time.add tm width in
          if Time.compare b tm < 0 then Int64.max_int else b
        in
        for i = 0 to s.nshards - 1 do
          s.current <- i;
          let q = s.sh.(i) in
          let continue () =
            match Vini_std.Calendar.peek q.squeue with
            | None -> false
            | Some h ->
                Time.compare h.time bound < 0
                && (match until with
                   | None -> true
                   | Some u -> Time.compare h.time u <= 0)
          in
          while continue () do
            match Vini_std.Calendar.pop q.squeue with
            | None -> assert false
            | Some h -> (
                s.queued <- s.queued - 1;
                match h.state with
                | Cancelled -> t.cancelled_count <- t.cancelled_count + 1
                | Fired -> assert false
                | Pending ->
                    fire t h (fun time -> q.sclock <- Time.max q.sclock time))
          done
        done;
        windows ()
  in
  windows ();
  (match until with
  | Some u ->
      Array.iter (fun q -> if Time.compare u q.sclock > 0 then q.sclock <- u) s.sh
  | None -> ());
  s.current <- 0

let run ?until t =
  match t.sharding with
  | None -> run_legacy ?until t
  | Some s -> run_sharded ?until t s

let pending t = !(t.live)
let events_fired t = t.fired
let events_cancelled t = t.cancelled_count
let max_pending t = t.max_pending

let set_profiling t on = t.profiling <- on
let profiling t = t.profiling
let horizon_hist t = t.horizon_hist
let callback_hist t = t.callback_hist
