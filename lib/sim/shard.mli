(** One shard of the sharded discrete-event runtime.

    A shard owns a {!Vini_std.Calendar} event queue, a clock, a seeded RNG
    stream and one bounded outbox ({!Vini_std.Mailbox}) per peer shard.
    Shards never touch each other's state directly: the only cross-shard
    channel is {!post}, whose messages are delivered by the
    {!Coordinator} at window barriers, in (source shard id, push order)
    sequence.

    {b The shard-confinement contract.}  Event callbacks scheduled on a
    shard may read and write state owned by that shard only, plus the
    shard handle itself ({!at}, {!after}, {!cancel}, {!post}, {!rng}).
    They must not touch another shard's state, nor process-global
    singletons (the {!Trace} sink, the {!Span} recorder).  Under this
    contract the {!Coordinator} may execute different shards on different
    OCaml domains with no locks and no observable difference from the
    single-domain schedule — that is what makes seeded runs byte-identical
    at any domain count.

    {b Determinism.}  Within a shard, events fire in (time, scheduling
    order), exactly like {!Engine}.  Cross-shard messages are sequenced at
    barriers, so their arrival order is a pure function of the event
    timeline, never of domain scheduling. *)

type t

type handle
(** A locally scheduled event; may be cancelled before it fires. *)

type remote
(** A cross-shard post, cancellable by the shard that posted it
    ({!cancel_post}) until it fires. *)

val make :
  id:int ->
  nshards:int ->
  mailbox_capacity:int ->
  lookahead:(int -> int -> Time.t option) ->
  rng:Vini_std.Rng.t ->
  t
(** Used by {!Coordinator.create}; not normally called directly.
    [lookahead src dst] is the minimum cross-shard latency (the
    conservative-synchronisation window), [None] when [src] has no
    channel to [dst]. *)

val id : t -> int
val now : t -> Time.t
val rng : t -> Vini_std.Rng.t

val at : t -> Time.t -> (unit -> unit) -> handle
(** Schedule on this shard at an absolute time (>= now, else clamped to
    now).  O(1) amortized. *)

val after : t -> Time.t -> (unit -> unit) -> handle
(** Schedule at [now + delta]; negative deltas clamp to now. *)

val cancel : handle -> unit
(** Idempotent lazy delete, exactly as {!Engine.cancel}: the entry stays
    queued until popped or swept by compaction, and the live-event
    counter is decremented immediately. *)

val is_cancelled : handle -> bool

val post : t -> dst:int -> Time.t -> (unit -> unit) -> remote
(** [post t ~dst time f] schedules [f] on shard [dst] at absolute time
    [time].  Conservative synchronisation requires
    [time >= now t + lookahead (id t) dst]; violations raise
    [Invalid_argument] (they would allow an event to arrive in a peer's
    past).  Raises [Failure] when the bounded outbox to [dst] is full.
    The message is handed over at the next window barrier. *)

val post_after : t -> dst:int -> Time.t -> (unit -> unit) -> remote
(** [post_after t ~dst delta f] is [post t ~dst (now t + delta) f]. *)

val cancel_post : t -> remote -> unit
(** Cancel a cross-shard post.  Only the shard that posted it may cancel
    it (the cancellation travels to the owning shard at the next
    barrier, so the destination's live-event accounting stays exact
    whether the post was already delivered or not).  Idempotent; a no-op
    once the remote event has fired. *)

val post_is_cancelled : remote -> bool

val pending : t -> int
(** Scheduled-but-unfired events owned by this shard, cross-shard
    deliveries included once they arrive.  O(1) counter. *)

val events_fired : t -> int
val events_cancelled : t -> int
val posts_sent : t -> int

(** {2 Coordinator interface}

    The calls below are made only between windows (by the coordinator, on
    one domain); they are not part of the callback-facing API. *)

val next_time : t -> Time.t option
(** Earliest queued entry (cancelled entries included — using a stale
    time for the horizon only shrinks the window, never breaks safety). *)

val exec_window : t -> bound:Time.t -> limit:Time.t option -> unit
(** Fire every local event with [time < bound] (and [time <= limit] when
    given) in (time, seq) order, advancing the clock.  Events scheduled
    by callbacks inside the window are included when they fall inside it. *)

val advance_clock : t -> Time.t -> unit
(** Raise the clock to the given instant if it is ahead (end-of-run
    [~until] semantics). *)

val outbox : t -> int -> remote Vini_std.Mailbox.t
val deliver : t -> remote -> unit
(** Barrier delivery of one inbound post: schedules it locally (skipped,
    and accounted as cancelled, when the poster already cancelled it). *)

val take_cancel_requests : t -> remote list
(** Cancellations issued by this shard since the last barrier, in issue
    order; the coordinator applies each to the owning shard. *)

val apply_remote_cancel : remote -> unit
(** Apply a cancellation to a delivered post (owner side). *)
