type t = int

let zero = 0
let ns n = n
let us n = n * 1_000
let ms n = n * 1_000_000
let sec n = n * 1_000_000_000
let of_sec_f s = int_of_float (Float.round (s *. 1e9))
let to_sec_f t = float_of_int t /. 1e9
let to_ms_f t = float_of_int t /. 1e6
let of_ms_f m = int_of_float (Float.round (m *. 1e6))
let add = ( + )
let sub = ( - )
let mul t n = t * n
let max_value = max_int
let compare : t -> t -> int = Int.compare
let ( <= ) : t -> t -> bool = Stdlib.( <= )
let ( < ) : t -> t -> bool = Stdlib.( < )
let ( >= ) : t -> t -> bool = Stdlib.( >= )
let ( > ) : t -> t -> bool = Stdlib.( > )
let min : t -> t -> t = Stdlib.min
let max : t -> t -> t = Stdlib.max
let pp ppf t = Format.fprintf ppf "%.6fs" (to_sec_f t)
