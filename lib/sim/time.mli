(** Simulation time as native-int nanoseconds.

    Integer time keeps event ordering exact: two events scheduled from the
    same float expression can never be reordered by rounding, which matters
    for reproducibility of convergence experiments.

    The representation is a native [int], not an [int64]: a 63-bit int
    holds 146 years of nanoseconds, and an immediate int keeps every
    timestamp unboxed — [add]/[sub]/[compare] on the hot path allocate
    nothing, where int64 arithmetic boxes its result.  Rounding semantics
    of {!of_sec_f}/{!of_ms_f} are unchanged from the int64 version
    (round-to-nearest on the float, then truncate to integer), so seeded
    schedules are numerically identical. *)

type t = int

val zero : t
val ns : int -> t
val us : int -> t
val ms : int -> t
val sec : int -> t

val of_sec_f : float -> t
(** Round a float duration in seconds to whole nanoseconds. *)

val to_sec_f : t -> float
val to_ms_f : t -> float
val of_ms_f : float -> t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> int -> t

val max_value : t
(** The largest representable instant ([max_int] ns, ~146 years).  Used as
    an "unreachable" sentinel by window computations. *)

val compare : t -> t -> int
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val pp : Format.formatter -> t -> unit
(** Prints seconds with microsecond precision, e.g. ["12.345678s"]. *)
