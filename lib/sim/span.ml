(* The per-packet flight recorder: the hot half.

   Instrumented layers (click elements, links, CPU slices, tunnels) append
   flat records — origin / hop / drop — into a bounded ring; everything
   tree-shaped (causal reassembly, latency attribution, drop forensics)
   happens offline in [Vini_measure.Span].  Keeping this half flat and
   append-only is what makes the enabled path one ring write and the
   disabled path one load of [Trace.span_gate]. *)

type attribution =
  | Queueing
  | Cpu_service
  | Propagation
  | Serialization
  | Proto_processing

let attribution_name = function
  | Queueing -> "queueing"
  | Cpu_service -> "cpu_service"
  | Propagation -> "propagation"
  | Serialization -> "serialization"
  | Proto_processing -> "proto_processing"

let attribution_of_name = function
  | "queueing" -> Some Queueing
  | "cpu_service" -> Some Cpu_service
  | "propagation" -> Some Propagation
  | "serialization" -> Some Serialization
  | "proto_processing" -> Some Proto_processing
  | _ -> None

let attributions =
  [ Queueing; Cpu_service; Propagation; Serialization; Proto_processing ]

type record =
  | Origin of {
      pkt : int;
      orig : int;
      bytes : int;
      component : string;
      t : Time.t;
    }
  | Hop of {
      pkt : int;
      orig : int;
      component : string;
      attribution : attribution;
      t0 : Time.t;
      t1 : Time.t;
    }
  | Drop of {
      pkt : int;
      orig : int;
      component : string;
      reason : string;
      bytes : int;
      t : Time.t;
    }

type t = {
  buf : record array;
  capacity : int;
  mutable head : int; (* oldest retained record *)
  mutable len : int;
  mutable overwritten : int;
  pending : (int, Time.t) Hashtbl.t; (* packet id -> enqueue time *)
}

let default_capacity = 262_144

let dummy = Origin { pkt = 0; orig = 0; bytes = 0; component = ""; t = Time.zero }

let create ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Span.create: capacity must be positive";
  {
    buf = Array.make capacity dummy;
    capacity;
    head = 0;
    len = 0;
    overwritten = 0;
    pending = Hashtbl.create 256;
  }

(* -- the installed global recorder --------------------------------------- *)

let recorder_ref : t option ref = ref None

let install t =
  recorder_ref := Some t;
  Trace.set_span_recorder true

let uninstall () =
  recorder_ref := None;
  Trace.set_span_recorder false

let recorder () = !recorder_ref
let on () = !Trace.span_gate

let push t r =
  if t.len = t.capacity then begin
    t.buf.(t.head) <- r;
    t.head <- (t.head + 1) mod t.capacity;
    t.overwritten <- t.overwritten + 1
  end
  else begin
    t.buf.((t.head + t.len) mod t.capacity) <- r;
    t.len <- t.len + 1
  end

let emit r =
  match !recorder_ref with None -> () | Some t -> push t r

(* -- emitters (callers guard with [on ()] first) ------------------------- *)

let origin ~pkt ~orig ~bytes ~component () =
  emit (Origin { pkt; orig; bytes; component; t = Trace.now () })

let hop ~pkt ~orig ~component attribution ~t0 ~t1 =
  emit (Hop { pkt; orig; component; attribution; t0; t1 })

let instant ~pkt ~orig ~component attribution =
  let t = Trace.now () in
  emit (Hop { pkt; orig; component; attribution; t0 = t; t1 = t })

let drop ~pkt ~orig ~component ~reason ~bytes () =
  (match !recorder_ref with
  | None -> ()
  | Some t -> Hashtbl.remove t.pending pkt);
  emit (Drop { pkt; orig; component; reason; bytes; t = Trace.now () })

(* -- queue-wait helpers ---------------------------------------------------

   Queues (Click fifo/shaper, HTB classes, socket buffers, process run
   queues) record their wait as enqueue-time bookkeeping here rather than
   threading timestamps through every queue element.  Keyed by packet id:
   the simulation holds a given packet in at most one queue at a time on
   the data path (a tee duplicating into two queues shares the id, in
   which case one wait wins — an accepted imprecision). *)

let note_enqueue ~pkt =
  match !recorder_ref with
  | None -> ()
  | Some t -> Hashtbl.replace t.pending pkt (Trace.now ())

let dequeue_hop ~pkt ~orig ~component ?until () =
  match !recorder_ref with
  | None -> ()
  | Some t -> (
      match Hashtbl.find_opt t.pending pkt with
      | None -> ()
      | Some t0 ->
          Hashtbl.remove t.pending pkt;
          let t1 = match until with Some u -> u | None -> Trace.now () in
          if Time.compare t1 t0 > 0 then
            push t
              (Hop { pkt; orig; component; attribution = Queueing; t0; t1 }))

(* -- inspection ----------------------------------------------------------- *)

let length t = t.len
let capacity t = t.capacity
let overwritten t = t.overwritten

let records t =
  List.init t.len (fun i -> t.buf.((t.head + i) mod t.capacity))

let clear t =
  t.head <- 0;
  t.len <- 0;
  t.overwritten <- 0;
  Hashtbl.reset t.pending

let record_pkt = function
  | Origin { pkt; _ } | Hop { pkt; _ } | Drop { pkt; _ } -> pkt

let record_orig = function
  | Origin { orig; _ } | Hop { orig; _ } | Drop { orig; _ } -> orig

let record_component = function
  | Origin { component; _ } | Hop { component; _ } | Drop { component; _ } ->
      component

let pp_record ppf = function
  | Origin { pkt; orig; bytes; component; t } ->
      Format.fprintf ppf "%a origin pkt=%d orig=%d %dB %s" Time.pp t pkt orig
        bytes component
  | Hop { pkt; orig; component; attribution; t0; t1 } ->
      Format.fprintf ppf "%a hop pkt=%d orig=%d %s %s %.9fs" Time.pp t1 pkt
        orig component
        (attribution_name attribution)
        (Time.to_sec_f (Time.sub t1 t0))
  | Drop { pkt; orig; component; reason; bytes; t } ->
      Format.fprintf ppf "%a DROP pkt=%d orig=%d %dB %s (%s)" Time.pp t pkt
        orig bytes component reason
