(** Per-packet flight recorder — the hot half of causal span tracing.

    Every packet carries a unique id and a provenance id ([orig], the id
    of the root packet it encapsulates or answers for); each layer it
    crosses appends one flat {!record} here: an {!Origin} where it enters
    the system, a {!Hop} for every place it spends time, and — if it dies
    — a {!Drop} naming the site and reason.  Reassembling those flat
    records into causal trees, attributing per-hop latency, and producing
    drop forensics is the cold half's job ([Vini_measure.Span]); this
    module only appends into a bounded ring.

    {2 Attribution}

    Each hop charges its duration to exactly one category, the §5.1.2
    decomposition the paper needed to explain PlanetLab loss:

    - {!Queueing} — waiting in a fifo/shaper/HTB class/socket buffer/run
      queue before service began;
    - {!Cpu_service} — a user-space or kernel CPU slice spent on the
      packet (Click element graph execution, kernel forwarding);
    - {!Serialization} — occupying a link at its line rate;
    - {!Propagation} — in flight on the wire;
    - {!Proto_processing} — protocol work recorded as an instant
      (element handoffs, FIB lookup, encap/decap, local delivery).

    {2 Overhead discipline}

    Recording is double-gated: a recorder must be {!install}ed {e and}
    the installed {!Trace} sink must enable [Trace.Category.Span].  The
    combined test {!on} is a single load of a mirrored bool
    ([Trace.span_gate]), so instrumentation can sit directly on the
    packet hot path; the PR-3 perf suite gates the disabled-path cost at
    ≤ 2% on the §5.1.1 end-to-end replay.  The ring never grows: once
    full, the oldest records are overwritten (counted in
    {!overwritten}).  A packet's lifetime is tiny compared to the ring's
    span, so a drop's path-so-far survives wraparound in practice. *)

(** Where one hop's duration is charged. *)
type attribution =
  | Queueing
  | Cpu_service
  | Propagation
  | Serialization
  | Proto_processing

val attribution_name : attribution -> string
val attribution_of_name : string -> attribution option

val attributions : attribution list
(** All categories, in a stable display order. *)

(** One flat flight-recorder record.  [pkt] is the concrete packet's id
    (outer frame after encapsulation); [orig] is the provenance id that
    keys the causal tree — equal to [pkt] for root packets, inherited
    across tunnel/VPN encapsulation and ICMP error generation. *)
type record =
  | Origin of {
      pkt : int;
      orig : int;
      bytes : int;
      component : string;
      t : Time.t;
    }  (** The packet entered the system here (TCP/UDP source, OpenVPN
           ingress, routing-protocol emitter). *)
  | Hop of {
      pkt : int;
      orig : int;
      component : string;
      attribution : attribution;
      t0 : Time.t;
      t1 : Time.t;
    }  (** The packet spent [t1 - t0] at [component], charged to
           [attribution].  Instants have [t0 = t1]. *)
  | Drop of {
      pkt : int;
      orig : int;
      component : string;
      reason : string;
      bytes : int;
      t : Time.t;
    }  (** The packet died at [component]; [reason] matches the
           [Trace.Packet_drop] reason emitted at the same site. *)

type t

val default_capacity : int
(** 262144 records. *)

val create : ?capacity:int -> unit -> t
(** A ring of [capacity] records (default {!default_capacity}).
    @raise Invalid_argument if [capacity <= 0]. *)

(** {2 The global recorder}

    Mirrors the {!Trace} global-sink pattern: hot paths emit through the
    installed recorder so packet-rate code needs no handle. *)

val install : t -> unit
(** Install [t] as the global recorder and flip the gate (subject to the
    trace sink enabling [Trace.Category.Span]). *)

val uninstall : unit -> unit
val recorder : unit -> t option

val on : unit -> bool
(** One load: [true] iff a recorder is installed and the installed trace
    sink enables the span category.  Guard every emission with it. *)

(** {2 Emitters}

    All are no-ops without an installed recorder; callers still guard
    with {!on} so argument computation is skipped on the disabled path.
    Timestamps come from the global simulation clock ({!Trace.now}). *)

val origin :
  pkt:int -> orig:int -> bytes:int -> component:string -> unit -> unit

val hop :
  pkt:int ->
  orig:int ->
  component:string ->
  attribution ->
  t0:Time.t ->
  t1:Time.t ->
  unit

val instant : pkt:int -> orig:int -> component:string -> attribution -> unit
(** A zero-duration hop at the current time — marks protocol-processing
    waypoints so drop forensics can show the path even where no time
    passes in simulation. *)

val drop :
  pkt:int ->
  orig:int ->
  component:string ->
  reason:string ->
  bytes:int ->
  unit ->
  unit

(** {2 Queue-wait helpers}

    Queues record waits without threading timestamps through their
    elements: {!note_enqueue} stamps the packet id on entry and
    {!dequeue_hop} closes a {!Queueing} hop on exit (at [until] if given,
    else now).  Nothing is recorded for zero waits or unknown ids. *)

val note_enqueue : pkt:int -> unit
val dequeue_hop :
  pkt:int -> orig:int -> component:string -> ?until:Time.t -> unit -> unit

(** {2 Inspection} *)

val length : t -> int
val capacity : t -> int

val overwritten : t -> int
(** Records lost to ring wraparound since the last {!clear}. *)

val records : t -> record list
(** Chronological (oldest retained first). *)

val clear : t -> unit
val record_pkt : record -> int
val record_orig : record -> int
val record_component : record -> string
val pp_record : Format.formatter -> record -> unit
