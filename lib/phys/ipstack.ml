module Packet = Vini_net.Packet
module Span = Vini_sim.Span

type t = {
  engine : Vini_sim.Engine.t;
  local_addr : Vini_net.Addr.t;
  span_comp : string; (* flight-recorder component, precomputed *)
  mutable tx : Packet.t -> unit;
  udp : (int, Packet.t -> unit) Hashtbl.t;
  tcp : (int, Packet.t -> unit) Hashtbl.t;
  (* One-entry demux memo per protocol: a stack usually serves one hot
     flow, so the common delivery is a port compare instead of a
     hashtable probe (and the [Some] that [find_opt] allocates).
     Invalidated (port -1) on any bind/unbind. *)
  mutable udp_memo_port : int;
  mutable udp_memo : Packet.t -> unit;
  mutable tcp_memo_port : int;
  mutable tcp_memo : Packet.t -> unit;
  mutable icmp : (Packet.t -> unit) option;
  mutable next_ephemeral : int;
  mutable unmatched : int;
}

let create ~engine ~local_addr ~tx () =
  {
    engine;
    local_addr;
    span_comp = "ip." ^ Vini_net.Addr.to_string local_addr;
    tx;
    udp = Hashtbl.create 8;
    tcp = Hashtbl.create 8;
    udp_memo_port = -1;
    udp_memo = ignore;
    tcp_memo_port = -1;
    tcp_memo = ignore;
    icmp = None;
    next_ephemeral = 49152;
    unmatched = 0;
  }

let engine t = t.engine
let local_addr t = t.local_addr
let set_tx t tx = t.tx <- tx

(* Every datagram the stack sources passes through here: the natural place
   to open its flight-recorder tree.  A packet re-originating an inherited
   provenance (ICMP errors, encapsulated frames injected back into a
   stack) gets a second Origin on the same tree, which the aggregator
   treats as a continuation, not a new root. *)
let send t pkt =
  if Span.on () then
    Span.origin ~pkt:pkt.Packet.id ~orig:pkt.Packet.orig
      ~bytes:(Packet.size pkt) ~component:t.span_comp ();
  t.tx pkt

let bind tbl which ~port handler =
  if Hashtbl.mem tbl port then
    invalid_arg (Printf.sprintf "Ipstack.bind_%s: port %d in use" which port);
  Hashtbl.replace tbl port handler

let invalidate_udp_memo t =
  t.udp_memo_port <- -1;
  t.udp_memo <- ignore

let invalidate_tcp_memo t =
  t.tcp_memo_port <- -1;
  t.tcp_memo <- ignore

let bind_udp t ~port handler =
  bind t.udp "udp" ~port handler;
  invalidate_udp_memo t

let bind_tcp t ~port handler =
  bind t.tcp "tcp" ~port handler;
  invalidate_tcp_memo t

let unbind_udp t ~port =
  Hashtbl.remove t.udp port;
  invalidate_udp_memo t

let unbind_tcp t ~port =
  Hashtbl.remove t.tcp port;
  invalidate_tcp_memo t

let alloc_ephemeral t =
  let p = t.next_ephemeral in
  t.next_ephemeral <- t.next_ephemeral + 1;
  p

let set_icmp_handler t h = t.icmp <- Some h

let echo_reply t (pkt : Packet.t) e =
  (* The reply continues the request's causal tree. *)
  let reply =
    Packet.icmp ~orig:pkt.Packet.orig ~src:t.local_addr ~dst:pkt.Packet.src
      (Packet.Echo_reply e)
  in
  send t reply

let deliver t (pkt : Packet.t) =
  if Span.on () then
    Span.instant ~pkt:pkt.Packet.id ~orig:pkt.Packet.orig
      ~component:t.span_comp Span.Proto_processing;
  match pkt.Packet.proto with
  | Packet.Udp u ->
      let port = u.Packet.udport in
      if port = t.udp_memo_port then t.udp_memo pkt
      else (
        match Hashtbl.find_opt t.udp port with
        | Some h ->
            t.udp_memo_port <- port;
            t.udp_memo <- h;
            h pkt
        | None -> t.unmatched <- t.unmatched + 1)
  | Packet.Tcp seg ->
      let port = seg.Packet.dport in
      if port = t.tcp_memo_port then t.tcp_memo pkt
      else (
        match Hashtbl.find_opt t.tcp port with
        | Some h ->
            t.tcp_memo_port <- port;
            t.tcp_memo <- h;
            h pkt
        | None -> t.unmatched <- t.unmatched + 1)
  | Packet.Icmp icmp -> (
      match t.icmp with
      | Some h -> h pkt
      | None -> (
          match icmp with
          | Packet.Echo_request e -> echo_reply t pkt e
          | Packet.Echo_reply _ | Packet.Time_exceeded _
          | Packet.Dest_unreachable _ ->
              t.unmatched <- t.unmatched + 1))

let unmatched t = t.unmatched
