(** Supervised restart of crashed processes — the recovery half of the
    chaos layer.

    Each supervised child gets exponential backoff between restart
    attempts, with deterministic jitter drawn from the seeded RNG, and an
    Erlang-style maximum restart intensity: more than [max_restarts]
    crashes inside [intensity_window] seconds and the supervisor gives up
    on the child for good (traced as a ["give-up"] lifecycle event).

    If the child's {e node} is down when a restart comes due, the attempt
    re-polls at the same backoff without consuming restart budget — the
    machine rebooting is not the process misbehaving.

    The [on_restart] hook runs after {!Process.restart}; the overlay uses
    it to rebuild a router (reinstall the RIB into the fresh FIB, start a
    new OSPF instance that re-forms adjacencies and resyncs the LSDB). *)

type policy = {
  base_backoff : float;      (** first retry delay, seconds *)
  max_backoff : float;       (** backoff ceiling, seconds *)
  jitter_frac : float;       (** uniform jitter, +- this fraction *)
  max_restarts : int;        (** crashes tolerated inside the window *)
  intensity_window : float;  (** seconds *)
}

val default_policy : policy
(** 0.5 s base, 30 s cap, 25% jitter, give up after 5 crashes in 60 s. *)

type t

val create :
  engine:Vini_sim.Engine.t ->
  rng:Vini_std.Rng.t Lazy.t ->
  ?policy:policy ->
  unit ->
  t
(** The RNG is lazy deliberately: it is only forced on the first crash, so
    a supervisor that never restarts anything perturbs no random stream —
    runs with chaos disabled stay bit-identical to unsupervised runs. *)

val supervise :
  t ->
  ?policy:policy ->
  name:string ->
  ?on_restart:(unit -> unit) ->
  Process.t ->
  unit
(** Watch a process (hooks {!Process.on_crash}).  [policy] overrides the
    supervisor default for this child. *)

val adopt : t -> name:string -> Process.t -> unit
(** Re-point the child registered under [name] at a replacement process
    (after a migration rebuilt it on another machine).  The child keeps
    its crash history and restart budget but takes the new process's
    name; a restart attempt pending against the old process stands down
    by itself.
    @raise Invalid_argument for an unknown child. *)

val state : t -> name:string -> [ `Running | `Waiting | `Given_up ] option
(** [`Waiting] = dead with a restart pending (or its node still down). *)

val restarts : t -> name:string -> int
(** Successful restarts performed for this child. *)

val given_up : t -> string list
val children : t -> string list
