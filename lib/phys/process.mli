(** A user-space networking process in a slice (a Click or routing daemon).

    Owns a set of buffered UDP sockets on its node, drains them round-robin
    under the node's CPU scheduler, and hands each packet to a handler
    together with a per-packet CPU cost function.  The default cost is the
    calibrated Click user-space cost (syscalls + copies, §5.1.1), scaled to
    the node's clock. *)

type t

val create :
  node:Pnode.t ->
  slice:Slice.t ->
  name:string ->
  ?cost_of:(Vini_net.Packet.t -> Vini_sim.Time.t) ->
  ?burst:int ->
  handler:(Vini_net.Packet.t -> unit) ->
  unit ->
  t
(** [cost_of] quotes CPU cost at the {e reference} clock; it is scaled to
    the node automatically.  Default: {!Calibration.click_cost_us} of the
    packet size.

    [burst] (default 1) is the batched-data-plane knob: each CPU service
    slice drains up to [burst] packets from the chosen input source in
    one scheduler event, charged the {e sum} of their per-packet costs up
    front.  [burst = 1] reproduces the classic one-event-per-packet
    schedule exactly; higher values deliver the same packets in the same
    per-source order with the same total CPU time but collapse the
    per-packet event and wakeup overhead — schedules (and thus span
    timestamps) differ from the [burst = 1] run, deterministically per
    seed.  Within a burst, each packet's Cpu_service span covers its own
    cost-proportional slice of the service window (the window tiles
    exactly, in service order), so per-hop attribution stays exact under
    bursting.
    @raise Invalid_argument when [burst < 1]. *)

val open_socket : t -> port:int -> ?rcvbuf_bytes:int -> unit -> Pnode.Socket.s
(** A socket whose arrivals wake this process. *)

val open_queue :
  t -> ?capacity_bytes:int -> unit -> (Vini_net.Packet.t -> bool)
(** A local bounded input queue served by the process alongside its
    sockets; the returned injector enqueues a packet and wakes the process
    ([false] = queue full, packet dropped).  Models the tap device and the
    UML switch feeding Click from the same node. *)

val set_handler : t -> (Vini_net.Packet.t -> unit) -> unit

(** {2 Lifecycle}

    A process can crash — explicitly, via a chaos fault, or because its
    node crashed — and be restarted later.  While dead it is invisible to
    the CPU scheduler, its sockets are unbound and its queues reject
    injections; nothing buffered survives the crash. *)

val alive : t -> bool

val crash : t -> unit
(** Close and drain every source, go dark, and run the {!on_crash} hooks.
    Idempotent while dead.  Emits a [Process_lifecycle] trace event. *)

val restart : t -> unit
(** Come back up with empty buffers and freshly bound sockets.
    @raise Invalid_argument if already running or the node is down. *)

val retire : t -> unit
(** Planned shutdown: close sockets and drop queued input like {!crash},
    but do {e not} run the {!on_crash} hooks — the exit is expected, so
    the supervisor must not burn restart budget on it and the overlay must
    not tear down state the replacement process still uses.  Emits a
    [Process_lifecycle] "retire" trace event.  Idempotent while dead. *)

val pending_packets : t -> int
(** Packets currently buffered across this process's sockets and queues —
    what a {!retire} at this instant would silently discard.  A live
    migration counts this at drain-complete as residual cutover loss. *)

val on_crash : t -> (unit -> unit) -> unit
(** Register a hook to run (in registration order) on each crash — how the
    overlay tears down routing state and the supervisor schedules a
    restart. *)

val crashes : t -> int
val restarts : t -> int

val node : t -> Pnode.t
val slice : t -> Slice.t
val name : t -> string
val cpu_time : t -> Vini_sim.Time.t
val wakeups : t -> int
val packets_processed : t -> int

val breaths : t -> int
(** Service slices that drained at least one packet.  Breath utilization
    is [packets_processed / (breaths * burst)] — how full the bursts the
    scheduler granted actually ran. *)

val burst : t -> int
(** The burst size this process was created with. *)

val socket_drops : t -> int
(** Total receive-buffer drops across this process's sockets. *)

val kick : t -> unit
(** Wake the process explicitly (after out-of-band work injection). *)
