module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Packet = Vini_net.Packet

type t = {
  engine : Engine.t;
  rng : Vini_std.Rng.t;
  id : int;
  name : string;
  addr : Vini_net.Addr.t;
  cpu : Cpu.t;
  stack : Ipstack.t;
  mutable tx : Packet.t -> unit;
  mutable kernel_busy : Time.t;
  mutable kernel_cpu : Time.t;
  mutable egress_htb : Htb.t option;
}

module Socket = struct
  type s = {
    node : t;
    sock_port : int;
    buf : Packet.t Vini_std.Fifo.t;
  }

  let port s = s.sock_port
  let recv s = Vini_std.Fifo.pop s.buf
  let peek s = Vini_std.Fifo.peek s.buf
  let pending s = Vini_std.Fifo.length s.buf
  let drops s = Vini_std.Fifo.drops s.buf
  let close s = Ipstack.unbind_udp s.node.stack ~port:s.sock_port
end

let create ~engine ~rng ~id ~name ~addr ~cpu () =
  let rec node =
    lazy
      {
        engine;
        rng;
        id;
        name;
        addr;
        cpu;
        stack =
          Ipstack.create ~engine ~local_addr:addr
            ~tx:(fun pkt -> (Lazy.force node).tx pkt)
            ();
        tx = (fun _ -> ());
        kernel_busy = Time.zero;
        kernel_cpu = Time.zero;
        egress_htb = None;
      }
  in
  Lazy.force node

let id t = t.id
let name t = t.name
let addr t = t.addr
let cpu t = t.cpu
let engine t = t.engine
let stack t = t.stack
let set_tx t tx = t.tx <- tx

let send_as t ~cls pkt =
  match t.egress_htb with
  | None -> t.tx pkt
  | Some htb ->
      let c =
        match Htb.find_class htb cls with
        | Some c -> c
        | None -> Htb.default_class htb
      in
      ignore (Htb.enqueue htb c pkt)

let send t pkt =
  match t.egress_htb with
  | None -> t.tx pkt
  | Some htb -> ignore (Htb.enqueue htb (Htb.default_class htb) pkt)

let enable_egress_htb t ~rate_bps =
  let htb = Htb.create ~engine:t.engine ~rate_bps ~out:(fun pkt -> t.tx pkt) () in
  t.egress_htb <- Some htb

let set_egress_class t ~name ?assured_bps ?ceil_bps () =
  match t.egress_htb with
  | None -> invalid_arg "Pnode.set_egress_class: no egress HTB enabled"
  | Some htb -> ignore (Htb.add_class htb ~name ?assured_bps ?ceil_bps ())

let egress_class_stats t ~name =
  match t.egress_htb with
  | None -> None
  | Some htb -> (
      match Htb.find_class htb name with
      | Some c -> Some (Htb.class_sent_bytes c, Htb.class_drops c)
      | None -> None)

(* The kernel is a FIFO server: arrival waits for prior kernel work. *)
let kernel_work t cost k =
  let now = Engine.now t.engine in
  let start = Time.max now t.kernel_busy in
  let finish = Time.add start cost in
  t.kernel_busy <- finish;
  t.kernel_cpu <- Time.add t.kernel_cpu cost;
  ignore (Engine.at t.engine finish k)

let nic_latency t =
  let base = Calibration.nic_latency_us in
  let jitter = Vini_std.Rng.float t.rng Calibration.nic_jitter_us in
  Time.of_sec_f ((base +. jitter) *. 1e-6)

let rx_overhead t _pkt ~k =
  let cost =
    Cpu.scale_cost t.cpu (Time.of_sec_f (Calibration.kernel_forward_us *. 1e-6))
  in
  ignore
    (Engine.after t.engine (nic_latency t) (fun () -> kernel_work t cost k))

let deliver_local t pkt =
  let cost =
    Cpu.scale_cost t.cpu (Time.of_sec_f (Calibration.kernel_local_us *. 1e-6))
  in
  ignore
    (Engine.after t.engine (nic_latency t) (fun () ->
         kernel_work t cost (fun () -> Ipstack.deliver t.stack pkt)))

let kernel_cpu_time t = t.kernel_cpu

let open_udp_socket t ~port ?(rcvbuf_bytes = Calibration.udp_rcvbuf_bytes)
    ~on_packet () =
  let buf =
    Vini_std.Fifo.create ~max_bytes:rcvbuf_bytes ~size_of:Packet.size ()
  in
  let sock = { Socket.node = t; sock_port = port; buf } in
  let module Trace = Vini_sim.Trace in
  Ipstack.bind_udp t.stack ~port (fun pkt ->
      if Vini_std.Fifo.push buf pkt then on_packet ()
      else if Trace.on Trace.Category.Packet_drop then
        Trace.emit ~severity:Trace.Warn
          ~component:(Printf.sprintf "%s.sock:%d" t.name port)
          (Trace.Packet_drop
             { reason = "sock-overflow"; bytes = Packet.size pkt }));
  sock
