module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Span = Vini_sim.Span
module Packet = Vini_net.Packet

type t = {
  engine : Engine.t;
  rng : Vini_std.Rng.t;
  id : int;
  name : string;
  addr : Vini_net.Addr.t;
  cpu : Cpu.t;
  (* Kernel per-packet costs, scaled to this node's speed once at creation
     (the calibration constants and CPU speed never change). *)
  cost_forward : Time.t;
  cost_local : Time.t;
  stack : Ipstack.t;
  mutable tx : Packet.t -> unit;
  mutable kernel_busy : Time.t;
  mutable kernel_cpu : Time.t;
  mutable egress_htb : Htb.t option;
  mutable up : bool;
  mutable kills : (unit -> unit) list;
  mutable down_drops : int;
}

module Socket = struct
  type s = {
    node : t;
    sock_port : int;
    buf : Packet.t Vini_std.Fifo.t;
    handler : Packet.t -> unit;
  }

  let port s = s.sock_port
  let recv s = Vini_std.Fifo.pop s.buf
  let peek s = Vini_std.Fifo.peek s.buf
  let peek_at s i = Vini_std.Fifo.peek_at s.buf i
  let pending s = Vini_std.Fifo.length s.buf
  let drops s = Vini_std.Fifo.drops s.buf
  let close s = Ipstack.unbind_udp s.node.stack ~port:s.sock_port
  let clear s = Vini_std.Fifo.clear s.buf

  let reopen s =
    Ipstack.bind_udp s.node.stack ~port:s.sock_port s.handler
end

let create ~engine ~rng ~id ~name ~addr ~cpu () =
  let rec node =
    lazy
      {
        engine;
        rng;
        id;
        name;
        addr;
        cpu;
        cost_forward =
          Cpu.scale_cost cpu
            (Time.of_sec_f (Calibration.kernel_forward_us *. 1e-6));
        cost_local =
          Cpu.scale_cost cpu
            (Time.of_sec_f (Calibration.kernel_local_us *. 1e-6));
        stack =
          Ipstack.create ~engine ~local_addr:addr
            ~tx:(fun pkt -> (Lazy.force node).tx pkt)
            ();
        tx = (fun _ -> ());
        kernel_busy = Time.zero;
        kernel_cpu = Time.zero;
        egress_htb = None;
        up = true;
        kills = [];
        down_drops = 0;
      }
  in
  Lazy.force node

let id t = t.id
let name t = t.name
let addr t = t.addr
let cpu t = t.cpu
let engine t = t.engine
let stack t = t.stack
let set_tx t tx = t.tx <- tx
let is_up t = t.up
let down_drops t = t.down_drops

let attach_process t ~kill = t.kills <- kill :: t.kills

let lifecycle_event t phase =
  let module Trace = Vini_sim.Trace in
  if Trace.on Trace.Category.Process_lifecycle then
    Trace.emit ~severity:Trace.Warn ~component:t.name
      (Trace.Process_lifecycle { phase; detail = "pnode" })

let crash t =
  if t.up then begin
    t.up <- false;
    (* Whatever the kernel had queued dies with the machine. *)
    t.kernel_busy <- Engine.now t.engine;
    lifecycle_event t "crash";
    List.iter (fun kill -> kill ()) t.kills
  end

let reboot t =
  if not t.up then begin
    t.up <- true;
    t.kernel_busy <- Engine.now t.engine;
    lifecycle_event t "reboot"
  end

let drop_down t pkt =
  t.down_drops <- t.down_drops + 1;
  let module Trace = Vini_sim.Trace in
  if Trace.on Trace.Category.Packet_drop then
    Trace.emit ~severity:Trace.Debug ~component:t.name
      (Trace.Packet_drop { reason = "node-down"; bytes = Packet.size pkt });
  if Span.on () then
    Span.drop ~pkt:pkt.Packet.id ~orig:pkt.Packet.orig ~component:t.name
      ~reason:"node-down" ~bytes:(Packet.size pkt) ()

let send_as t ~cls pkt =
  if not t.up then drop_down t pkt
  else
  match t.egress_htb with
  | None -> t.tx pkt
  | Some htb ->
      let c =
        match Htb.find_class htb cls with
        | Some c -> c
        | None -> Htb.default_class htb
      in
      ignore (Htb.enqueue htb c pkt)

let send t pkt =
  if not t.up then drop_down t pkt
  else
    match t.egress_htb with
    | None -> t.tx pkt
    | Some htb -> ignore (Htb.enqueue htb (Htb.default_class htb) pkt)

let enable_egress_htb t ~rate_bps =
  let htb = Htb.create ~engine:t.engine ~rate_bps ~out:(fun pkt -> t.tx pkt) () in
  t.egress_htb <- Some htb

let set_egress_class t ~name ?assured_bps ?ceil_bps () =
  match t.egress_htb with
  | None -> invalid_arg "Pnode.set_egress_class: no egress HTB enabled"
  | Some htb -> ignore (Htb.add_class htb ~name ?assured_bps ?ceil_bps ())

let egress_class_stats t ~name =
  match t.egress_htb with
  | None -> None
  | Some htb -> (
      match Htb.find_class htb name with
      | Some c -> Some (Htb.class_sent_bytes c, Htb.class_drops c)
      | None -> None)

(* The kernel is a FIFO server: arrival waits for prior kernel work. *)
let kernel_work ?pkt t cost k =
  let now = Engine.now t.engine in
  let start = Time.max now t.kernel_busy in
  let finish = Time.add start cost in
  t.kernel_busy <- finish;
  t.kernel_cpu <- Time.add t.kernel_cpu cost;
  (if Span.on () then
     match pkt with
     | None -> ()
     | Some p ->
         let comp = t.name ^ ".kernel" in
         if Time.compare start now > 0 then
           Span.hop ~pkt:p.Packet.id ~orig:p.Packet.orig ~component:comp
             Span.Queueing ~t0:now ~t1:start;
         Span.hop ~pkt:p.Packet.id ~orig:p.Packet.orig ~component:comp
           Span.Cpu_service ~t0:start ~t1:finish);
  (* Tail position: both callers invoke [kernel_work] as the last action
     of a NIC event, so the continuation may join the current breath. *)
  Engine.at_inline t.engine finish k

let nic_latency t =
  let base = Calibration.nic_latency_us in
  let jitter = Vini_std.Rng.float t.rng Calibration.nic_jitter_us in
  Time.of_sec_f ((base +. jitter) *. 1e-6)

let rx_overhead t pkt ~k =
  if not t.up then drop_down t pkt
  else
    let cost = t.cost_forward in
    (* Only called from the tail of a plink arrival event, so the NIC hop
       may join the current breath. *)
    Engine.after_inline t.engine (nic_latency t) (fun () ->
        if t.up then kernel_work ~pkt t cost k else drop_down t pkt)

let deliver_local ?(inline = false) t pkt =
  if not t.up then drop_down t pkt
  else
    let cost = t.cost_local in
    let cb () =
      if t.up then
        kernel_work ~pkt t cost (fun () -> Ipstack.deliver t.stack pkt)
      else drop_down t pkt
    in
    let lat = nic_latency t in
    (* [inline] asserts the caller is in tail position (a plink arrival or
       a kernel-work continuation); the local-send path reaches here
       mid-callback and must take a real calendar event. *)
    if inline then Engine.after_inline t.engine lat cb
    else ignore (Engine.after t.engine lat cb)

let kernel_cpu_time t = t.kernel_cpu

let open_udp_socket t ~port ?(rcvbuf_bytes = Calibration.udp_rcvbuf_bytes)
    ~on_packet () =
  let buf =
    Vini_std.Fifo.create ~max_bytes:rcvbuf_bytes ~size_of:Packet.size ()
  in
  let module Trace = Vini_sim.Trace in
  let handler pkt =
    if Vini_std.Fifo.push buf pkt then begin
      if Span.on () then Span.note_enqueue ~pkt:pkt.Packet.id;
      on_packet ()
    end
    else begin
      if Trace.on Trace.Category.Packet_drop then
        Trace.emit ~severity:Trace.Warn
          ~component:(Printf.sprintf "%s.sock:%d" t.name port)
          (Trace.Packet_drop
             { reason = "sock-overflow"; bytes = Packet.size pkt });
      if Span.on () then
        Span.drop ~pkt:pkt.Packet.id ~orig:pkt.Packet.orig
          ~component:(Printf.sprintf "%s.sock:%d" t.name port)
          ~reason:"sock-overflow" ~bytes:(Packet.size pkt) ()
    end
  in
  let sock = { Socket.node = t; sock_port = port; buf; handler } in
  Ipstack.bind_udp t.stack ~port handler;
  sock
