(** A physical machine: kernel network path, host IP stack, CPU scheduler,
    and per-process buffered UDP sockets.

    The kernel path is a single FIFO server: each received or forwarded
    packet occupies it for its (clock-scaled) processing cost, plus a NIC
    interrupt latency per link traversal; that is the whole of the
    "Network" baseline rows in Tables 2–5.  User-space experiments run as
    {!Cpu.proc} processes that read packets from {!Socket} receive buffers
    — the buffers whose overflow produces Figure 6's losses. *)

type t

module Socket : sig
  type s

  val port : s -> int
  val recv : s -> Vini_net.Packet.t option
  val peek : s -> Vini_net.Packet.t option

  val peek_at : s -> int -> Vini_net.Packet.t option
  (** [i]-th buffered packet from the head without removing it; [None]
      out of range.  O(1) — lets a bursting process cost its next [k]
      packets up front. *)

  val pending : s -> int
  val drops : s -> int
  (** Packets rejected because the receive buffer was full. *)

  val close : s -> unit
  val clear : s -> unit
  (** Discard every buffered packet (a crashing process loses its queue). *)

  val reopen : s -> unit
  (** Re-bind the socket's port with its original handler after {!close}.
      @raise Invalid_argument when the port is taken. *)
end

val create :
  engine:Vini_sim.Engine.t ->
  rng:Vini_std.Rng.t ->
  id:int ->
  name:string ->
  addr:Vini_net.Addr.t ->
  cpu:Cpu.t ->
  unit ->
  t

val id : t -> int
val name : t -> string
val addr : t -> Vini_net.Addr.t
val cpu : t -> Cpu.t
val engine : t -> Vini_sim.Engine.t
val stack : t -> Ipstack.t
(** The kernel host stack (public address); apps bind ports here. *)

val set_tx : t -> (Vini_net.Packet.t -> unit) -> unit
(** Wire the node's transmit side to the underlay (done by {!Underlay}). *)

(** {2 Whole-node crash and reboot}

    A crashed machine drops every packet on every path — transmit, receive,
    forwarding, local delivery — and kills each attached process.  Reboot
    brings the kernel path back; supervised processes are restarted
    separately (by {!Supervisor}). *)

val is_up : t -> bool

val crash : t -> unit
(** Power off: discard queued kernel work, run every registered process
    kill hook, go dark.  Idempotent while down. *)

val reboot : t -> unit
(** Power on again (processes stay dead until restarted). *)

val attach_process : t -> kill:(unit -> unit) -> unit
(** Register a process kill hook to run when this node crashes. *)

val down_drops : t -> int
(** Packets dropped because the node was down. *)

val send : t -> Vini_net.Packet.t -> unit
(** Transmit a packet originated on this node (host app or process). *)

val send_as : t -> cls:string -> Vini_net.Packet.t -> unit
(** Like {!send}, but classified for the egress HTB when one is enabled
    (slices label their traffic with their name). *)

val enable_egress_htb : t -> rate_bps:float -> unit
(** Install an HTB on this node's outgoing traffic (§4.1.1): all locally
    originated packets pass through it before entering the network. *)

val set_egress_class :
  t -> name:string -> ?assured_bps:float -> ?ceil_bps:float -> unit -> unit
(** Declare a class (a slice) with a minimum-rate guarantee.
    @raise Invalid_argument without {!enable_egress_htb} or on duplicates. *)

val egress_class_stats : t -> name:string -> (int * int) option
(** (bytes sent, drops) for a class, when the HTB is enabled. *)

val rx_overhead : t -> Vini_net.Packet.t -> k:(unit -> unit) -> unit
(** Charge NIC latency + kernel processing for a packet arriving on a
    link, then continue.  Used for both local delivery and forwarding.
    Must be called in tail position of the current event callback: the
    NIC and kernel hops are breath-coalesced ({!Vini_sim.Engine.at_inline})
    when nothing else is due first. *)

val deliver_local : ?inline:bool -> t -> Vini_net.Packet.t -> unit
(** Arrival overheads, then demux into the host stack (which may hand the
    packet to a bound socket or answer ICMP).  Pass [~inline:true] only
    from the tail of an event callback (a plink arrival, a kernel-work
    continuation): it lets the NIC hop join the current breath.  The
    default schedules a real calendar event and is safe anywhere. *)

val kernel_cpu_time : t -> Vini_sim.Time.t
(** Total kernel CPU consumed (forwarding + local delivery). *)

val open_udp_socket :
  t -> port:int -> ?rcvbuf_bytes:int -> on_packet:(unit -> unit) -> unit -> Socket.s
(** A buffered UDP socket for a user-space process; [on_packet] fires on
    each successful enqueue (typically {!Cpu.kick}).
    @raise Invalid_argument when the port is taken. *)
