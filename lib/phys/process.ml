module Time = Vini_sim.Time
module Span = Vini_sim.Span
module Profile = Vini_sim.Profile
module Packet = Vini_net.Packet

type source =
  | Sock of Pnode.Socket.s
  | Queue of Packet.t Vini_std.Fifo.t

type t = {
  pnode : Pnode.t;
  proc_slice : Slice.t;
  proc_name : string;
  mutable sources : source array;
  mutable handler : Packet.t -> unit;
  cost_of : Packet.t -> Time.t;
  mutable proc : Cpu.proc option;
  mutable rr : int;
  burst : int;
  (* Packets budgeted by the last [next_cost] probe; [exec] serves at
     most this many so the CPU time charged always covers the work done
     (arrivals between budgeting and service wait for the next slice). *)
  mutable planned : int;
  mutable processed : int;
  (* Service slices that drained at least one packet; with [burst] this
     gives breath utilization, packets / (breaths * burst). *)
  mutable breaths : int;
  mutable proc_alive : bool;
  mutable crashes : int;
  mutable restarts : int;
  mutable crash_hooks : (unit -> unit) list;
}

let default_cost pkt =
  Time.of_sec_f (Calibration.click_cost_us ~size:(Packet.size pkt) *. 1e-6)

let source_pending = function
  | Sock s -> Pnode.Socket.pending s
  | Queue q -> Vini_std.Fifo.length q

let source_peek = function
  | Sock s -> Pnode.Socket.peek s
  | Queue q -> Vini_std.Fifo.peek q

let source_pop = function
  | Sock s -> Pnode.Socket.recv s
  | Queue q -> Vini_std.Fifo.pop q

let source_peek_at s i =
  match s with
  | Sock k -> Pnode.Socket.peek_at k i
  | Queue q -> Vini_std.Fifo.peek_at q i

let source_drops = function
  | Sock s -> Pnode.Socket.drops s
  | Queue q -> Vini_std.Fifo.drops q

(* Round-robin across sources, starting after the last-served one. *)
let next_source t =
  let n = Array.length t.sources in
  if (not t.proc_alive) || n = 0 then None
  else begin
    let rec probe i remaining =
      if remaining = 0 then None
      else
        let s = t.sources.(i mod n) in
        if source_pending s > 0 then Some (i mod n, s)
        else probe (i + 1) (remaining - 1)
    in
    probe t.rr n
  end

let component t = Printf.sprintf "%s@%s" t.proc_name (Pnode.name t.pnode)

let lifecycle_event t phase detail =
  let module Trace = Vini_sim.Trace in
  if Trace.on Trace.Category.Process_lifecycle then
    Trace.emit ~severity:Trace.Warn ~component:(component t)
      (Trace.Process_lifecycle { phase; detail })

let alive t = t.proc_alive
let crashes t = t.crashes
let restarts t = t.restarts
let on_crash t hook = t.crash_hooks <- t.crash_hooks @ [ hook ]

(* A crashing process loses everything it had in flight: its sockets are
   closed (the ports unbind, so the kernel drops arrivals as unmatched),
   its input queues are emptied, and the CPU scheduler finds it idle. *)
let crash t =
  if t.proc_alive then begin
    t.proc_alive <- false;
    t.crashes <- t.crashes + 1;
    Array.iter
      (function
        | Sock s ->
            Pnode.Socket.close s;
            Pnode.Socket.clear s
        | Queue q -> Vini_std.Fifo.clear q)
      t.sources;
    lifecycle_event t "crash" "";
    List.iter (fun hook -> hook ()) t.crash_hooks
  end

(* Planned shutdown: same resource teardown as a crash, but the exit is
   expected, so crash hooks (supervisor restarts, router teardown) do not
   run.  Used to withdraw the old process after a live migration's drain
   completes. *)
let retire t =
  if t.proc_alive then begin
    t.proc_alive <- false;
    Array.iter
      (function
        | Sock s ->
            Pnode.Socket.close s;
            Pnode.Socket.clear s
        | Queue q -> Vini_std.Fifo.clear q)
      t.sources;
    lifecycle_event t "retire" ""
  end

let pending_packets t =
  Array.fold_left (fun acc s -> acc + source_pending s) 0 t.sources

let restart t =
  if t.proc_alive then invalid_arg "Process.restart: already running";
  if not (Pnode.is_up t.pnode) then
    invalid_arg "Process.restart: node is down";
  t.proc_alive <- true;
  t.restarts <- t.restarts + 1;
  Array.iter
    (function
      | Sock s ->
          Pnode.Socket.clear s;
          Pnode.Socket.reopen s
      | Queue q -> Vini_std.Fifo.clear q)
    t.sources;
  lifecycle_event t "restart" ""

let create ~node ~slice ~name ?(cost_of = default_cost) ?(burst = 1) ~handler
    () =
  if burst < 1 then invalid_arg "Process.create: burst must be positive";
  let t =
    {
      pnode = node;
      proc_slice = slice;
      proc_name = name;
      sources = [||];
      handler;
      cost_of;
      proc = None;
      rr = 0;
      burst;
      planned = 1;
      processed = 0;
      breaths = 0;
      proc_alive = true;
      crashes = 0;
      restarts = 0;
      crash_hooks = [];
    }
  in
  Pnode.attach_process node ~kill:(fun () -> crash t);
  let has_work () = Option.is_some (next_source t) in
  let next_cost () =
    match next_source t with
    | None ->
        t.planned <- 0;
        Time.zero
    | Some (_, s) ->
        if t.burst = 1 then begin
          (* The classic path, untouched: one packet, one slice. *)
          t.planned <- 1;
          match source_peek s with
          | Some pkt -> Cpu.scale_cost (Pnode.cpu node) (t.cost_of pkt)
          | None -> Time.zero
        end
        else begin
          (* Budget a burst: up to [burst] packets from this source,
             charged the sum of their individual costs — batching buys
             fewer scheduler events, never cheaper CPU. *)
          let n = min t.burst (source_pending s) in
          t.planned <- n;
          let total = ref Time.zero in
          for i = 0 to n - 1 do
            match source_peek_at s i with
            | Some pkt ->
                total :=
                  Time.add !total (Cpu.scale_cost (Pnode.cpu node) (t.cost_of pkt))
            | None -> ()
          done;
          !total
        end
  in
  (* The handler call, wrapped in the profiler's service-cost context so
     element attribution knows the sim-time CPU cost of the packet in
     service (one gate load + test when profiling is off). *)
  let deliver pkt =
    if !Profile.gate then begin
      Profile.set_service_cost
        (Time.to_sec_f (Cpu.scale_cost (Pnode.cpu node) (t.cost_of pkt)));
      t.handler pkt;
      Profile.clear_service_cost ()
    end
    else t.handler pkt
  in
  let serve_one ?interval s =
    match source_pop s with
    | Some pkt ->
        t.processed <- t.processed + 1;
        (if Span.on () then
           (* Split the packet's in-process wait at the instant the
              scheduler began this (dilated) service slice: before it
              is queueing, after it is CPU service.  [interval]
              overrides the boundaries with this packet's slice of a
              burst (see [serve_burst_spanned]). *)
           match t.proc with
           | Some p ->
               let comp = component t in
               let start, finish =
                 match interval with
                 | Some (a, b) -> (a, b)
                 | None ->
                     ( Cpu.last_service p,
                       Vini_sim.Engine.now (Pnode.engine node) )
               in
               Span.dequeue_hop ~pkt:pkt.Packet.id ~orig:pkt.Packet.orig
                 ~component:comp ~until:start ();
               Span.hop ~pkt:pkt.Packet.id ~orig:pkt.Packet.orig
                 ~component:comp Span.Cpu_service ~t0:start ~t1:finish
           | None -> ());
        deliver pkt;
        true
    | None -> false
  in
  (* Per-hop span attribution under bursting: the burst's service window
     [start, finish] is apportioned across its packets in proportion to
     each packet's budgeted cost (the same [scale_cost] quote the budget
     summed), so every packet's Cpu_service span covers exactly its own
     share of the breath instead of the whole breath.  The slices tile
     the window in service order; costs are recomputed with the same
     float operations in the same order as the budget, so the boundaries
     are deterministic per seed and across domain counts. *)
  let serve_burst_spanned s n =
    match t.proc with
    | None ->
        let k = ref 0 in
        while !k < n && serve_one s do
          incr k
        done
    | Some p ->
        let start = Cpu.last_service p in
        let finish = Vini_sim.Engine.now (Pnode.engine node) in
        let span_s = Time.to_sec_f (Time.sub finish start) in
        let total = ref 0.0 in
        for i = 0 to n - 1 do
          match source_peek_at s i with
          | Some pkt ->
              total :=
                !total
                +. Time.to_sec_f (Cpu.scale_cost (Pnode.cpu node) (t.cost_of pkt))
          | None -> ()
        done;
        let prefix = ref 0.0 in
        let at_fraction f =
          if !total <= 0.0 then finish
          else
            Time.min finish
              (Time.add start (Time.of_sec_f (span_s *. (f /. !total))))
        in
        let k = ref 0 in
        let continue = ref true in
        while !k < n && !continue do
          (match source_peek s with
          | Some pkt ->
              let c =
                Time.to_sec_f (Cpu.scale_cost (Pnode.cpu node) (t.cost_of pkt))
              in
              let t0 = if !total <= 0.0 then start else at_fraction !prefix in
              prefix := !prefix +. c;
              let t1 = at_fraction !prefix in
              continue := serve_one ~interval:(t0, t1) s
          | None -> continue := false);
          incr k
        done
  in
  let exec () =
    match next_source t with
    | Some (i, s) ->
        t.rr <- i + 1;
        t.breaths <- t.breaths + 1;
        if t.burst = 1 then ignore (serve_one s)
        else begin
          (* Serve exactly what was budgeted (or less if the handler
             crashed the process mid-burst and the sources drained). *)
          let n = max 1 t.planned in
          if Span.on () then serve_burst_spanned s n
          else begin
            let k = ref 0 in
            while !k < n && serve_one s do
              incr k
            done
          end
        end
    | None -> ()
  in
  let proc =
    Cpu.spawn (Pnode.cpu node) ~slice ~name ~has_work ~next_cost ~exec
  in
  t.proc <- Some proc;
  t

let kick t = if t.proc_alive then Option.iter Cpu.kick t.proc

let add_source t s = t.sources <- Array.append t.sources [| s |]

let open_socket t ~port ?rcvbuf_bytes () =
  let sock =
    Pnode.open_udp_socket t.pnode ~port ?rcvbuf_bytes
      ~on_packet:(fun () -> kick t)
      ()
  in
  add_source t (Sock sock);
  sock

let open_queue t ?(capacity_bytes = Calibration.udp_rcvbuf_bytes) () =
  let q =
    Vini_std.Fifo.create ~max_bytes:capacity_bytes ~size_of:Packet.size ()
  in
  add_source t (Queue q);
  let module Trace = Vini_sim.Trace in
  fun pkt ->
    if not t.proc_alive then begin
      if Trace.on Trace.Category.Packet_drop then
        Trace.emit ~severity:Trace.Debug
          ~component:(t.proc_name ^ ".inq")
          (Trace.Packet_drop
             { reason = "process-dead"; bytes = Packet.size pkt });
      if Span.on () then
        Span.drop ~pkt:pkt.Packet.id ~orig:pkt.Packet.orig
          ~component:(t.proc_name ^ ".inq") ~reason:"process-dead"
          ~bytes:(Packet.size pkt) ();
      false
    end
    else begin
      let accepted = Vini_std.Fifo.push q pkt in
      if accepted then begin
        if Span.on () then Span.note_enqueue ~pkt:pkt.Packet.id;
        kick t
      end
      else begin
        if Trace.on Trace.Category.Packet_drop then
          Trace.emit ~severity:Trace.Warn
            ~component:(t.proc_name ^ ".inq")
            (Trace.Packet_drop
               { reason = "queue-overflow"; bytes = Packet.size pkt });
        if Span.on () then
          Span.drop ~pkt:pkt.Packet.id ~orig:pkt.Packet.orig
            ~component:(t.proc_name ^ ".inq") ~reason:"queue-overflow"
            ~bytes:(Packet.size pkt) ()
      end;
      accepted
    end

let set_handler t h = t.handler <- h
let node t = t.pnode
let slice t = t.proc_slice
let name t = t.proc_name

let cpu_time t =
  match t.proc with Some p -> Cpu.cpu_time p | None -> Time.zero

let wakeups t = match t.proc with Some p -> Cpu.wakeups p | None -> 0
let packets_processed t = t.processed
let breaths t = t.breaths
let burst t = t.burst

let socket_drops t =
  Array.fold_left (fun acc s -> acc + source_drops s) 0 t.sources
