(** The node CPU scheduler model.

    This is where PlanetLab's shared-machine behaviour — the phenomenon the
    PL-VINI extensions exist to tame — is simulated.  A process alternates
    between [Idle], waiting to be scheduled, and executing work items.
    Two quantities are sampled per scheduling episode from the contention
    model:

    - the {e wake-up latency} between becoming runnable and first running
      (heavy-tailed under default fair share; tiny with real-time
      priority, §4.1.2), and
    - the {e CPU fraction} the process receives while it stays runnable
      (1/(1+n) against n runnable competitors, floored by the slice's
      reservation).

    Work items (packets) are billed their CPU cost dilated by the inverse
    fraction, so capacity, latency, and the socket-buffer overflows of
    Figure 6 all emerge from one mechanism. *)

type t
type proc

type contention =
  | Dedicated
  (** A lab machine running only the experiment (DETER). *)
  | Shared of { active_sampler : Vini_std.Rng.t -> int }
  (** A PlanetLab node with competing slices; the sampler draws the number
      of runnable competitors for an episode. *)

val create :
  engine:Vini_sim.Engine.t ->
  rng:Vini_std.Rng.t ->
  speed_ghz:float ->
  contention:contention ->
  t
(** One scheduler per physical node. *)

val shared_default : engine:Vini_sim.Engine.t -> rng:Vini_std.Rng.t -> speed_ghz:float -> t
(** Shared node with the calibrated PlanetLab contention model. *)

val speed_ghz : t -> float

val scale_cost : t -> Vini_sim.Time.t -> Vini_sim.Time.t
(** Scale a CPU cost quoted at the reference clock to this node's clock. *)

val spawn :
  t ->
  slice:Slice.t ->
  name:string ->
  has_work:(unit -> bool) ->
  next_cost:(unit -> Vini_sim.Time.t) ->
  exec:(unit -> unit) ->
  proc
(** [next_cost] quotes the CPU cost of the next pending work item (already
    scaled to this node; use {!scale_cost}); [exec] performs and dequeues
    it.  The scheduler calls them only when [has_work ()] is true. *)

val kick : proc -> unit
(** Tell the scheduler the process has (new) pending work.  Idempotent
    while the process is already awake or waking. *)

val wake_latency_hist : t -> Vini_std.Histogram.t
(** Distribution of sampled wake-up latencies (simulated seconds) across
    every process on this scheduler — the §4.1.2 scheduling-latency story
    as a p50/p95/p99.  Each {!kick} from idle also emits a [Sched_latency]
    trace event when that category is live. *)

val cpu_time : proc -> Vini_sim.Time.t
(** Total CPU time consumed so far (the [ps TIME] column of §5.1). *)

val last_service : proc -> Vini_sim.Time.t
(** Wall-clock time the most recent [exec] began its (dilated) service
    slice — i.e. when the work item it just completed left the run queue.
    [Process] uses it to split a packet's wait into queueing
    vs cpu_service for the flight recorder ({!Vini_sim.Span}). *)

val wakeups : proc -> int
val proc_name : proc -> string
