module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Span = Vini_sim.Span
module Packet = Vini_net.Packet

type stats = {
  sent : int;
  delivered : int;
  queue_drops : int;
  loss_drops : int;
  down_drops : int;
  bg_drops : int;
  bytes_sent : int;
}

type dir_state = {
  mutable busy_until : Time.t;
  mutable sent : int;
  mutable delivered : int;
  mutable queue_drops : int;
  mutable loss_drops : int;
  mutable down_drops : int;
  mutable bg_drops : int;
  mutable bytes_sent : int;
  (* Background pressure from the scenario fluid model: extra queueing
     delay and loss probability folded in by the coarse tick.  Zero by
     default, in which case transmit takes no extra RNG draw — a run
     without a fluid model is bit-for-bit the run before this field
     existed. *)
  mutable bg_delay : Time.t;
  mutable bg_loss : float;
}

type t = {
  engine : Engine.t;
  rng : Vini_std.Rng.t;
  name : string;
  bandwidth_bps : float;
  delay : Time.t;
  loss : float;
  queue_bytes : int;
  dirs : dir_state array;
  (* Logical shard of each endpoint (a, b); delivery events are scheduled
     on the receiving endpoint's shard so a sharded engine keeps every
     pnode's events on its own queue.  (0, 0) on non-sharded engines. *)
  shard_a : int;
  shard_b : int;
  mutable up : bool;
}

let fresh_dir () =
  {
    busy_until = Time.zero;
    sent = 0;
    delivered = 0;
    queue_drops = 0;
    loss_drops = 0;
    down_drops = 0;
    bg_drops = 0;
    bytes_sent = 0;
    bg_delay = Time.zero;
    bg_loss = 0.0;
  }

let create ~engine ~rng ?(name = "plink") ?(endpoint_shards = (0, 0))
    ~bandwidth_bps ~delay ?(loss = 0.0)
    ?(queue_bytes = Calibration.link_queue_bytes) () =
  if bandwidth_bps <= 0.0 then invalid_arg "Plink.create: bandwidth";
  if loss < 0.0 || loss > 1.0 then invalid_arg "Plink.create: loss";
  {
    engine;
    rng;
    name;
    bandwidth_bps;
    delay;
    loss;
    queue_bytes;
    dirs = [| fresh_dir (); fresh_dir () |];
    shard_a = fst endpoint_shards;
    shard_b = snd endpoint_shards;
    up = true;
  }

let serialization t size =
  Time.of_sec_f (float_of_int (size * 8) /. t.bandwidth_bps)

(* Backlog is tracked virtually: [busy_until - now] is serialisation time
   already committed, which maps 1:1 onto queued bytes. *)
let backlog_bytes t d =
  let now = Engine.now t.engine in
  if Time.compare d.busy_until now <= 0 then 0
  else
    int_of_float
      (Time.to_sec_f (Time.sub d.busy_until now) *. t.bandwidth_bps /. 8.0)

let span_drop t pkt ~reason =
  if Span.on () then
    Span.drop ~pkt:pkt.Packet.id ~orig:pkt.Packet.orig ~component:t.name
      ~reason ~bytes:(Packet.size pkt) ()

let transmit t ~dir pkt ~deliver =
  let d = t.dirs.(dir) in
  let size = Packet.size pkt in
  if not t.up then begin
    d.down_drops <- d.down_drops + 1;
    span_drop t pkt ~reason:"link-down"
  end
  else if backlog_bytes t d + size > t.queue_bytes then begin
    d.queue_drops <- d.queue_drops + 1;
    span_drop t pkt ~reason:"link-queue-overflow"
  end
  else if d.bg_loss > 0.0 && Vini_std.Rng.float t.rng 1.0 < d.bg_loss then begin
    (* Loss pressure from fluid background traffic: the packet would have
       met a full queue of cross-traffic.  Occupies the wire like random
       loss does. *)
    let now = Engine.now t.engine in
    d.busy_until <- Time.add (Time.max d.busy_until now) (serialization t size);
    d.bg_drops <- d.bg_drops + 1;
    d.sent <- d.sent + 1;
    d.bytes_sent <- d.bytes_sent + size;
    span_drop t pkt ~reason:"background-loss"
  end
  else if t.loss > 0.0 && Vini_std.Rng.float t.rng 1.0 < t.loss then begin
    (* Random loss still occupies the wire. *)
    let now = Engine.now t.engine in
    d.busy_until <- Time.add (Time.max d.busy_until now) (serialization t size);
    d.loss_drops <- d.loss_drops + 1;
    d.sent <- d.sent + 1;
    d.bytes_sent <- d.bytes_sent + size;
    span_drop t pkt ~reason:"link-loss"
  end
  else begin
    let now = Engine.now t.engine in
    let start = Time.max d.busy_until now in
    let tx_done = Time.add start (serialization t size) in
    d.busy_until <- tx_done;
    d.sent <- d.sent + 1;
    d.bytes_sent <- d.bytes_sent + size;
    if Span.on () then begin
      (* The wire's own queueing: time spent waiting for the transmitter
         (the virtual backlog), then the serialisation slice. *)
      if Time.compare start now > 0 then
        Span.hop ~pkt:pkt.Packet.id ~orig:pkt.Packet.orig ~component:t.name
          Span.Queueing ~t0:now ~t1:start;
      Span.hop ~pkt:pkt.Packet.id ~orig:pkt.Packet.orig ~component:t.name
        Span.Serialization ~t0:start ~t1:tx_done
    end;
    let arrival = Time.add (Time.add tx_done d.bg_delay) t.delay in
    (* dir 0 transmits a -> b, so the arrival fires on b's shard. *)
    let dst_shard = if dir = 0 then t.shard_b else t.shard_a in
    ignore
      (Engine.at_shard t.engine ~shard:dst_shard arrival (fun () ->
           (* A failure during flight loses in-flight packets too. *)
           if t.up then begin
             d.delivered <- d.delivered + 1;
             if Span.on () then
               Span.hop ~pkt:pkt.Packet.id ~orig:pkt.Packet.orig
                 ~component:t.name Span.Propagation ~t0:tx_done ~t1:arrival;
             deliver pkt
           end
           else begin
             d.down_drops <- d.down_drops + 1;
             span_drop t pkt ~reason:"link-down"
           end))
  end

let set_up t up = t.up <- up
let is_up t = t.up

let set_background t ~dir ~delay ~loss =
  if loss < 0.0 || loss > 1.0 then invalid_arg "Plink.set_background: loss";
  if Time.compare delay Time.zero < 0 then
    invalid_arg "Plink.set_background: delay";
  let d = t.dirs.(dir) in
  d.bg_delay <- delay;
  d.bg_loss <- loss

let background t ~dir =
  let d = t.dirs.(dir) in
  (d.bg_delay, d.bg_loss)

let utilization t ~dir =
  let d = t.dirs.(dir) in
  let now = Engine.now t.engine in
  if Time.compare d.busy_until now <= 0 then 0.0
  else Time.to_sec_f (Time.sub d.busy_until now)

let stats t ~dir =
  let d = t.dirs.(dir) in
  {
    sent = d.sent;
    delivered = d.delivered;
    queue_drops = d.queue_drops;
    loss_drops = d.loss_drops;
    down_drops = d.down_drops;
    bg_drops = d.bg_drops;
    bytes_sent = d.bytes_sent;
  }

let bandwidth_bps t = t.bandwidth_bps
let delay t = t.delay
