(** A physical point-to-point link.

    Each direction is an independent transmitter with a drop-tail byte
    queue, a serialisation rate, a propagation delay, and an optional
    random loss rate.  Links can be administratively failed and restored
    — physical failure, as opposed to the virtual-link failures IIAS
    injects inside Click. *)

type t

type stats = {
  sent : int;
  delivered : int;
  queue_drops : int;
  loss_drops : int;
  down_drops : int;
  bg_drops : int;  (** drops charged to fluid background pressure *)
  bytes_sent : int;
}

val create :
  engine:Vini_sim.Engine.t ->
  rng:Vini_std.Rng.t ->
  ?name:string ->
  ?endpoint_shards:int * int ->
  bandwidth_bps:float ->
  delay:Vini_sim.Time.t ->
  ?loss:float ->
  ?queue_bytes:int ->
  unit ->
  t
(** [?name] (default ["plink"]) labels this link's flight-recorder spans
    — queueing/serialisation/propagation hops and link-drop forensics
    ({!Vini_sim.Span}).

    [?endpoint_shards] (default [(0, 0)]) gives the logical shards of the
    two endpoints on a sharded engine: direction 0 ([a -> b]) schedules
    its arrival on [b]'s shard and direction 1 on [a]'s, making the plink
    the cross-shard handoff edge of the conservative-window schedule. *)

val transmit : t -> dir:int -> Vini_net.Packet.t -> deliver:(Vini_net.Packet.t -> unit) -> unit
(** Queue a packet on direction [dir] (0 or 1).  [deliver] fires at the
    receiving end after serialisation + propagation, unless the packet is
    dropped (full queue, random loss, or link down). *)

val set_up : t -> bool -> unit
val is_up : t -> bool

val set_background : t -> dir:int -> delay:Vini_sim.Time.t -> loss:float -> unit
(** Fold fluid background pressure into direction [dir]: every subsequent
    packet sees [delay] of extra queueing (cross-traffic ahead of it) and
    an extra [loss] drop probability (the chance it lands on a queue the
    background already filled).  Set by the scenario {!Vini_scenario}
    fluid model on its coarse tick — from a barrier event, so all shards
    observe each update coherently.  Both default to zero, in which case
    the transmit path takes no extra RNG draw and is byte-identical to a
    run without a fluid model.
    @raise Invalid_argument unless [loss] is in [\[0,1\]] and [delay >= 0]. *)

val background : t -> dir:int -> Vini_sim.Time.t * float
(** Current [(delay, loss)] background pressure on [dir]. *)

val utilization : t -> dir:int -> float
(** Instantaneous backlog in seconds of serialisation time. *)

val stats : t -> dir:int -> stats
val bandwidth_bps : t -> float
val delay : t -> Vini_sim.Time.t
