module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Span = Vini_sim.Span
module Packet = Vini_net.Packet

type cls = {
  name : string;
  assured_bps : float;
  ceil_bps : float;
  queue : Packet.t Vini_std.Fifo.t;
  mutable assured_tokens : float;   (* bytes *)
  mutable ceil_tokens : float;
  mutable last_fill : Time.t;
  mutable sent_bytes : int;
  mutable last_served : int;        (* round counter for fairness *)
}

type t = {
  engine : Engine.t;
  rate_bps : float;
  out : Packet.t -> unit;
  mutable classes : cls list;
  default : cls;
  mutable busy_until : Time.t;      (* root serialisation *)
  mutable wake : Engine.handle option;
  mutable round : int;
}

let burst_bytes = 8_000.0

let fresh_class ~name ~assured_bps ~ceil_bps ~queue_bytes now =
  {
    name;
    assured_bps;
    ceil_bps;
    queue =
      Vini_std.Fifo.create ~max_bytes:queue_bytes ~size_of:Packet.size ();
    assured_tokens = burst_bytes;
    ceil_tokens = burst_bytes;
    last_fill = now;
    sent_bytes = 0;
    last_served = 0;
  }

let create ~engine ~rate_bps ~out () =
  if rate_bps <= 0.0 then invalid_arg "Htb.create: rate must be positive";
  let default =
    fresh_class ~name:"default" ~assured_bps:0.0 ~ceil_bps:rate_bps
      ~queue_bytes:131_072 (Engine.now engine)
  in
  {
    engine;
    rate_bps;
    out;
    classes = [ default ];
    default;
    busy_until = Time.zero;
    wake = None;
    round = 0;
  }

let add_class t ~name ?(assured_bps = 0.0) ?ceil_bps ?(queue_bytes = 131_072)
    () =
  let ceil_bps = Option.value ceil_bps ~default:t.rate_bps in
  if List.exists (fun c -> c.name = name) t.classes then
    invalid_arg "Htb.add_class: duplicate class";
  if assured_bps > ceil_bps then
    invalid_arg "Htb.add_class: assured above ceiling";
  let c =
    fresh_class ~name ~assured_bps ~ceil_bps ~queue_bytes (Engine.now t.engine)
  in
  t.classes <- t.classes @ [ c ];
  c

let find_class t name = List.find_opt (fun c -> c.name = name) t.classes
let default_class t = t.default

let refill t c =
  let now = Engine.now t.engine in
  let dt = Time.to_sec_f (Time.sub now c.last_fill) in
  let head =
    match Vini_std.Fifo.peek c.queue with
    | Some pkt -> float_of_int (Packet.size pkt)
    | None -> 0.0
  in
  let cap = Float.max burst_bytes head in
  c.assured_tokens <-
    Float.min cap (c.assured_tokens +. (dt *. c.assured_bps /. 8.0));
  c.ceil_tokens <- Float.min cap (c.ceil_tokens +. (dt *. c.ceil_bps /. 8.0));
  c.last_fill <- now

(* Pick the next class to serve: green (under assured) before yellow
   (borrowing under ceil); round-robin by last service round. *)
let pick t =
  List.iter (refill t) t.classes;
  let head_size c =
    match Vini_std.Fifo.peek c.queue with
    | Some pkt -> Some (float_of_int (Packet.size pkt))
    | None -> None
  in
  let eligible pred =
    List.filter_map
      (fun c ->
        match head_size c with
        | Some size when pred c size -> Some c
        | Some _ | None -> None)
      t.classes
  in
  let oldest = function
    | [] -> None
    | cs ->
        Some
          (List.fold_left
             (fun best c -> if c.last_served < best.last_served then c else best)
             (List.hd cs) cs)
  in
  match
    oldest (eligible (fun c size -> c.assured_tokens >= size -. 1e-6))
  with
  | Some c -> Some (c, `Green)
  | None -> (
      match
        oldest (eligible (fun c size -> c.ceil_tokens >= size -. 1e-6))
      with
      | Some c -> Some (c, `Yellow)
      | None -> None)

(* Earliest time any backlogged class will have ceiling tokens. *)
let next_token_time t =
  List.fold_left
    (fun acc c ->
      match Vini_std.Fifo.peek c.queue with
      | None -> acc
      | Some pkt ->
          let deficit =
            float_of_int (Packet.size pkt) -. c.ceil_tokens
          in
          if c.ceil_bps <= 0.0 then acc
          else
            let wait = Float.max 0.0 (deficit *. 8.0 /. c.ceil_bps) in
            Time.min acc (Time.of_sec_f wait))
    (Time.sec 3600) t.classes

let rec schedule t =
  if t.wake = None then begin
    let now = Engine.now t.engine in
    if Time.compare t.busy_until now > 0 then
      t.wake <-
        Some
          (Engine.at t.engine t.busy_until (fun () ->
               t.wake <- None;
               drain t))
    else drain t
  end

and drain t =
  match pick t with
  | None ->
      (* Backlogged but token-starved: wake when tokens accrue. *)
      if List.exists (fun c -> not (Vini_std.Fifo.is_empty c.queue)) t.classes
      then
        t.wake <-
          Some
            (Engine.after t.engine
               (Time.max (Time.ns 200) (next_token_time t))
               (fun () ->
                 t.wake <- None;
                 drain t))
  | Some (c, colour) -> (
      match Vini_std.Fifo.pop c.queue with
      | None -> ()
      | Some pkt ->
          let size = float_of_int (Packet.size pkt) in
          (match colour with
          | `Green -> c.assured_tokens <- c.assured_tokens -. size
          | `Yellow -> ());
          c.ceil_tokens <- c.ceil_tokens -. size;
          c.sent_bytes <- c.sent_bytes + Packet.size pkt;
          t.round <- t.round + 1;
          c.last_served <- t.round;
          (* Root serialisation at the NIC rate. *)
          let now = Engine.now t.engine in
          let tx = Time.of_sec_f (size *. 8.0 /. t.rate_bps) in
          let start = Time.max t.busy_until now in
          t.busy_until <- Time.add start tx;
          if Span.on () then begin
            Span.dequeue_hop ~pkt:pkt.Packet.id ~orig:pkt.Packet.orig
              ~component:("htb." ^ c.name) ();
            Span.hop ~pkt:pkt.Packet.id ~orig:pkt.Packet.orig
              ~component:("htb." ^ c.name) Span.Serialization ~t0:start
              ~t1:t.busy_until
          end;
          ignore
            (Engine.at t.engine t.busy_until (fun () -> t.out pkt));
          schedule t)

let enqueue t c pkt =
  let accepted = Vini_std.Fifo.push c.queue pkt in
  if Span.on () then
    if accepted then Span.note_enqueue ~pkt:pkt.Packet.id
    else
      Span.drop ~pkt:pkt.Packet.id ~orig:pkt.Packet.orig
        ~component:("htb." ^ c.name) ~reason:"htb-overflow"
        ~bytes:(Packet.size pkt) ();
  if accepted then schedule t;
  accepted

let class_drops c = Vini_std.Fifo.drops c.queue
let class_sent_bytes c = c.sent_bytes
let backlog c = Vini_std.Fifo.length c.queue
