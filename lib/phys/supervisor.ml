module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Rng = Vini_std.Rng
module Trace = Vini_sim.Trace

type policy = {
  base_backoff : float;
  max_backoff : float;
  jitter_frac : float;
  max_restarts : int;
  intensity_window : float;
}

let default_policy =
  {
    base_backoff = 0.5;
    max_backoff = 30.0;
    jitter_frac = 0.25;
    max_restarts = 5;
    intensity_window = 60.0;
  }

type child = {
  mutable child_name : string;
  mutable proc : Process.t;
  child_policy : policy;
  on_restart : unit -> unit;
  mutable crash_times : float list;  (* newest first, within the window *)
  mutable consecutive : int;         (* crashes since last stable period *)
  mutable given_up : bool;
  mutable pending : bool;            (* a restart attempt is scheduled *)
  mutable total_restarts : int;
}

type t = {
  engine : Engine.t;
  rng : Rng.t Lazy.t;
  policy : policy;
  mutable children : child list;
}

(* The RNG is lazy so that a supervisor which never has to restart anything
   draws nothing: enabling supervision with chaos disabled leaves every
   other random stream — and therefore the whole run — bit-identical. *)
let create ~engine ~rng ?(policy = default_policy) () =
  { engine; rng; policy; children = [] }

let lifecycle c phase detail =
  if Trace.on Trace.Category.Process_lifecycle then
    Trace.emit ~severity:Trace.Warn ~component:c.child_name
      (Trace.Process_lifecycle { phase; detail })

let backoff_s t c =
  let p = c.child_policy in
  let raw = p.base_backoff *. (2.0 ** float_of_int (max 0 (c.consecutive - 1))) in
  let capped = Float.min p.max_backoff raw in
  let u = Rng.float (Lazy.force t.rng) 1.0 in
  capped *. (1.0 +. (p.jitter_frac *. ((2.0 *. u) -. 1.0)))

let rec attempt t c ~delay_s =
  ignore
    (Engine.after t.engine (Time.of_sec_f delay_s) (fun () ->
         if c.given_up || Process.alive c.proc then c.pending <- false
         else if not (Pnode.is_up (Process.node c.proc)) then begin
           (* The machine itself is still down: keep polling at the same
              backoff without burning restart-intensity budget. *)
           lifecycle c "restart-wait" "node down";
           attempt t c ~delay_s
         end
         else begin
           c.pending <- false;
           c.total_restarts <- c.total_restarts + 1;
           Process.restart c.proc;
           c.on_restart ()
         end))

let on_child_crash t c =
  if not c.given_up then begin
    let now = Time.to_sec_f (Engine.now t.engine) in
    let horizon = now -. c.child_policy.intensity_window in
    c.crash_times <- now :: List.filter (fun ts -> ts >= horizon) c.crash_times;
    (* A quiet spell resets the backoff ladder. *)
    (match c.crash_times with
    | _ :: prev :: _ when now -. prev > c.child_policy.intensity_window ->
        c.consecutive <- 1
    | [ _ ] -> c.consecutive <- 1
    | _ -> c.consecutive <- c.consecutive + 1);
    if List.length c.crash_times > c.child_policy.max_restarts then begin
      c.given_up <- true;
      lifecycle c "give-up"
        (Printf.sprintf "%d crashes in %.0fs"
           (List.length c.crash_times)
           c.child_policy.intensity_window)
    end
    else if not c.pending then begin
      c.pending <- true;
      attempt t c ~delay_s:(backoff_s t c)
    end
  end

let supervise t ?policy ~name ?(on_restart = fun () -> ()) proc =
  let c =
    {
      child_name = name;
      proc;
      child_policy = Option.value policy ~default:t.policy;
      on_restart;
      crash_times = [];
      consecutive = 0;
      given_up = false;
      pending = false;
      total_restarts = 0;
    }
  in
  t.children <- t.children @ [ c ];
  Process.on_crash proc (fun () -> on_child_crash t c)

let find t ~name =
  List.find_opt (fun c -> String.equal c.child_name name) t.children

(* Point an existing child at a replacement process (migration: the old
   process's machine died and the router was rebuilt elsewhere).  The
   child keeps its crash history and restart budget; any restart attempt
   still pending against the dead process stands down on its own, since
   [attempt] sees the adopted process alive. *)
let adopt t ~name proc =
  match find t ~name with
  | None -> invalid_arg (Printf.sprintf "Supervisor.adopt: unknown child %S" name)
  | Some c ->
      c.proc <- proc;
      c.child_name <- Process.name proc;
      lifecycle c "adopt" (Printf.sprintf "was %S" name);
      Process.on_crash proc (fun () -> on_child_crash t c)

let state t ~name =
  match find t ~name with
  | None -> None
  | Some c ->
      Some
        (if c.given_up then `Given_up
         else if Process.alive c.proc then `Running
         else `Waiting)

let restarts t ~name =
  match find t ~name with None -> 0 | Some c -> c.total_restarts

let given_up t =
  List.filter_map
    (fun c -> if c.given_up then Some c.child_name else None)
    t.children

let children t = List.map (fun c -> c.child_name) t.children
