module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Rng = Vini_std.Rng

type contention =
  | Dedicated
  | Shared of { active_sampler : Rng.t -> int }

type t = {
  engine : Engine.t;
  rng : Rng.t;
  speed_ghz : float;
  contention : contention;
  wake_hist : Vini_std.Histogram.t;
}

type state = Idle | Waking | Busy

type proc = {
  cpu : t;
  slice : Slice.t;
  name : string;
  has_work : unit -> bool;
  next_cost : unit -> Time.t;
  exec : unit -> unit;
  mutable state : state;
  mutable fraction : float;
  mutable budget : Time.t;
  mutable cpu_time : Time.t;
  mutable wakeups : int;
  mutable last_start : Time.t; (* wall-clock start of the latest exec *)
}

let create ~engine ~rng ~speed_ghz ~contention =
  if speed_ghz <= 0.0 then invalid_arg "Cpu.create: speed must be positive";
  { engine; rng; speed_ghz; contention;
    wake_hist = Vini_std.Histogram.create () }

let shared_default ~engine ~rng ~speed_ghz =
  create ~engine ~rng ~speed_ghz
    ~contention:(Shared { active_sampler = Calibration.shared_active_slices () })

let speed_ghz t = t.speed_ghz

let scale_cost t c =
  (* A reference-speed node scales by exactly 1; skip the float round-trip
     (it runs once per packet on the kernel and click paths). *)
  if t.speed_ghz = Calibration.reference_ghz then c
  else Time.of_sec_f (Time.to_sec_f c *. Calibration.reference_ghz /. t.speed_ghz)

let spawn t ~slice ~name ~has_work ~next_cost ~exec =
  {
    cpu = t;
    slice;
    name;
    has_work;
    next_cost;
    exec;
    state = Idle;
    fraction = 1.0;
    budget = Time.zero;
    cpu_time = Time.zero;
    wakeups = 0;
    last_start = Time.zero;
  }

let wake_latency p =
  let rng = p.cpu.rng in
  match p.cpu.contention with
  | Dedicated ->
      let lo, hi = Calibration.wake_dedicated_us in
      Time.of_sec_f (Rng.uniform rng lo hi *. 1e-6)
  | Shared _ when p.slice.Slice.realtime ->
      let lo, hi = Calibration.wake_realtime_us in
      Time.of_sec_f (Rng.uniform rng lo hi *. 1e-6)
  | Shared _ ->
      (* Three-part mixture, milliseconds; see Calibration. *)
      let u = Rng.float rng 1.0 in
      let tail_w = Calibration.wake_shared_tail_weight in
      let mid_w = Calibration.wake_shared_mid_weight in
      let ms =
        if u < tail_w then
          let lo, hi = Calibration.wake_shared_tail in
          Rng.uniform rng lo hi
        else if u < tail_w +. mid_w then
          Rng.exponential rng Calibration.wake_shared_mid_mean_ms
        else
          let lo, hi = Calibration.wake_shared_core in
          Rng.uniform rng lo hi
      in
      Time.of_sec_f (ms *. 1e-3)

let sample_fraction p =
  match p.cpu.contention with
  | Dedicated -> 1.0
  | Shared { active_sampler } ->
      let n = active_sampler p.cpu.rng in
      let fair = 1.0 /. float_of_int (1 + n) in
      Float.min 1.0 (Float.max p.slice.Slice.reservation fair)

let dilate cost fraction =
  (* Dedicated CPUs (and uncontended shared ones) run at fraction 1.0;
     the identity skips a float round-trip per service event. *)
  if fraction = 1.0 then cost
  else Time.of_sec_f (Time.to_sec_f cost /. fraction)

let rec episode p =
  p.fraction <- sample_fraction p;
  p.budget <- Calibration.burst_cpu_budget;
  step p

and step p =
  if not (p.has_work ()) then p.state <- Idle
  else begin
    let cost = p.next_cost () in
    let wall = dilate cost p.fraction in
    let start = Engine.now p.cpu.engine in
    (* Tail position: [step] is the last action of the wake event and of
       each service event, so the next service may run as part of the same
       breath when nothing else is due first. *)
    Engine.after_inline p.cpu.engine wall (fun () ->
        p.last_start <- start;
        p.exec ();
        p.cpu_time <- Time.add p.cpu_time cost;
        p.budget <- Time.sub p.budget cost;
        if Time.compare p.budget Time.zero <= 0 then episode p else step p)
  end

module Trace = Vini_sim.Trace

let kick p =
  match p.state with
  | Waking | Busy -> ()
  | Idle ->
      p.state <- Waking;
      let latency = wake_latency p in
      let latency_s = Time.to_sec_f latency in
      Vini_std.Histogram.add p.cpu.wake_hist latency_s;
      if Trace.on Trace.Category.Sched_latency then
        Trace.emit ~component:("cpu." ^ p.name)
          (Trace.Sched_latency { seconds = latency_s });
      ignore
        (Engine.after p.cpu.engine latency (fun () ->
             p.state <- Busy;
             p.wakeups <- p.wakeups + 1;
             episode p))

let wake_latency_hist t = t.wake_hist
let last_service p = p.last_start
let cpu_time p = p.cpu_time
let wakeups p = p.wakeups
let proc_name p = p.name
