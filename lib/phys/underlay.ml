module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Packet = Vini_net.Packet
module Graph = Vini_topo.Graph
module Addr = Vini_net.Addr

type event =
  | Link_down of Graph.node_id * Graph.node_id
  | Link_up of Graph.node_id * Graph.node_id
  | Node_down of Graph.node_id
  | Node_up of Graph.node_id

type node_profile = { speed_ghz : float; contention : Cpu.contention }

let dedicated_profile ~speed_ghz = { speed_ghz; contention = Cpu.Dedicated }

let planetlab_profile ~speed_ghz =
  {
    speed_ghz;
    contention =
      Cpu.Shared { active_sampler = Calibration.shared_active_slices () };
  }

type t = {
  engine : Engine.t;
  graph : Graph.t;
  pnodes : Pnode.t array;
  by_addr : (Addr.t, Pnode.t) Hashtbl.t;
  links : (int * int, Plink.t) Hashtbl.t;
  link_up : (int * int, bool) Hashtbl.t;
  mask_failures : bool;
  (* prev.(src).(v) = predecessor of v on the shortest path from src *)
  mutable prev : Graph.node_id option array array;
  (* Per-(from, dst) forwarding cache: the next hop and its plink when a
     usable (existing, administratively up) link leads that way, [None]
     when the packet would blackhole.  Rebuilt by [rebuild_fwd] on every
     route recomputation and link-state flip, so the per-packet fast path
     is two array loads instead of a prev-chain walk plus three hashtable
     probes.  Entries are preallocated; lookups allocate nothing. *)
  mutable fwd : (int * Plink.t) option array array;
  (* Dense addr → node-id table for the per-packet destination resolve.
     [addr_idx.(Addr.to_int a - addr_base)] is the node id, or -1 for a
     non-node address.  Built only when node addresses span a small range
     (the default 198.32.154/155 scheme always qualifies); [ [||] ] means
     "fall back to [by_addr]". *)
  addr_base : int;
  addr_idx : int array;
  mutable subscribers : (event -> unit) list;
  mutable blackholed : int;
}

let key a b = (min a b, max a b)

let default_addr i =
  if i < 246 then Addr.of_octets 198 32 154 (10 + i)
  else Addr.add (Addr.of_octets 198 32 155 0) (i - 246)

let weight_when_up t l =
  let up = try Hashtbl.find t.link_up (key l.Graph.a l.Graph.b) with Not_found -> true in
  (* A link into a crashed machine is as unusable as a cut fiber. *)
  let ends_up = Pnode.is_up t.pnodes.(l.Graph.a) && Pnode.is_up t.pnodes.(l.Graph.b) in
  if up && ends_up then l.Graph.weight else 100_000_000

(* prev is rooted at [from], so the next hop towards [dst] is found by
   walking back from [dst]. *)
let next_hop_of_prev prev ~from ~dst =
  if from = dst then None
  else
    let rec back v =
      match prev.(v) with
      | None -> None
      | Some p when p = from -> Some v
      | Some p -> back p
    in
    back dst

let rebuild_fwd t =
  let n = Array.length t.pnodes in
  t.fwd <-
    Array.init n (fun from ->
        Array.init n (fun dst ->
            match next_hop_of_prev t.prev.(from) ~from ~dst with
            | None -> None
            | Some nh -> (
                let k = key from nh in
                let up =
                  try Hashtbl.find t.link_up k with Not_found -> false
                in
                if not up then None
                else
                  match Hashtbl.find_opt t.links k with
                  | None -> None
                  | Some plink -> Some (nh, plink))))

(* Per-packet destination resolve: a bounds check plus one array load on
   the dense path; the hashtable only serves scattered custom [addr_of]
   schemes.  Returns -1 for addresses that name no node. *)
let node_id_of_dst t a =
  let len = Array.length t.addr_idx in
  if len > 0 then begin
    let i = Addr.to_int a - t.addr_base in
    if i >= 0 && i < len then Array.unsafe_get t.addr_idx i else -1
  end
  else
    match Hashtbl.find_opt t.by_addr a with
    | Some p -> Pnode.id p
    | None -> -1

let recompute_routes t =
  let n = Graph.node_count t.graph in
  t.prev <-
    Array.init n (fun src ->
        let _, prev = Graph.dijkstra ~weight_of:(weight_when_up t) t.graph src in
        prev);
  rebuild_fwd t

let rec create ~engine ~rng ~graph
    ?(profile = fun _ -> dedicated_profile ~speed_ghz:Calibration.reference_ghz)
    ?(addr_of = default_addr) ?(mask_failures = true) () =
  let n = Graph.node_count graph in
  let pnodes =
    Array.init n (fun i ->
        let p = profile i in
        let cpu =
          Cpu.create ~engine ~rng:(Vini_std.Rng.split rng)
            ~speed_ghz:p.speed_ghz ~contention:p.contention
        in
        Pnode.create ~engine ~rng:(Vini_std.Rng.split rng) ~id:i
          ~name:(Graph.name graph i) ~addr:(addr_of i) ~cpu ())
  in
  let by_addr = Hashtbl.create n in
  Array.iter (fun p -> Hashtbl.replace by_addr (Pnode.addr p) p) pnodes;
  let addr_base, addr_idx =
    if n = 0 then (0, [||])
    else begin
      let lo = ref max_int and hi = ref 0 in
      Array.iter
        (fun p ->
          let a = Addr.to_int (Pnode.addr p) in
          if a < !lo then lo := a;
          if a > !hi then hi := a)
        pnodes;
      let span = !hi - !lo + 1 in
      (* Custom [addr_of] schemes can scatter addresses arbitrarily; only
         densify when the table stays proportional to the node count. *)
      if span > (4 * n) + 64 then (0, [||])
      else begin
        let idx = Array.make span (-1) in
        Array.iter
          (fun p -> idx.(Addr.to_int (Pnode.addr p) - !lo) <- Pnode.id p)
          pnodes;
        (!lo, idx)
      end
    end
  in
  let links = Hashtbl.create 16 in
  let link_up = Hashtbl.create 16 in
  List.iter
    (fun (l : Graph.link) ->
      let plink =
        Plink.create ~engine ~rng:(Vini_std.Rng.split rng)
          ~name:
            (Printf.sprintf "plink.%s-%s" (Graph.name graph l.a)
               (Graph.name graph l.b))
          ~endpoint_shards:(Engine.shard_of engine l.a, Engine.shard_of engine l.b)
          ~bandwidth_bps:l.bandwidth_bps ~delay:l.delay ~loss:l.loss ()
      in
      Hashtbl.replace links (key l.a l.b) plink;
      Hashtbl.replace link_up (key l.a l.b) true)
    (Graph.links graph);
  (* On a sharded engine the conservative window is the smallest plink
     propagation delay: any cross-shard arrival then lands at or beyond
     the window bound.  Near-zero delays (dense random topologies) are
     floored — the clamp in [Engine.at_shard] keeps the schedule
     deterministic, at the cost of a bounded skew on sub-floor links. *)
  if Engine.is_sharded engine then begin
    let floor = Time.us 50 in
    let min_delay =
      List.fold_left
        (fun acc (l : Graph.link) ->
          match acc with
          | None -> Some l.Graph.delay
          | Some d -> Some (Time.min d l.Graph.delay))
        None (Graph.links graph)
    in
    match min_delay with
    | Some d -> Engine.set_lookahead engine (Time.max d floor)
    | None -> ()
  end;
  let t =
    {
      engine;
      graph;
      pnodes;
      by_addr;
      addr_base;
      addr_idx;
      links;
      link_up;
      mask_failures;
      prev = [||];
      fwd = [||];
      subscribers = [];
      blackholed = 0;
    }
  in
  recompute_routes t;
  Array.iter (fun p -> Pnode.set_tx p (fun pkt -> originate t p pkt)) pnodes;
  t

(* Routing: walk the prev-chain of the shortest-path tree rooted at the
   destination?  No — prev is rooted at each source, so the next hop from
   [from] towards [dst] is found by walking back from [dst]. *)
and next_hop_id t ~from ~dst = next_hop_of_prev t.prev.(from) ~from ~dst

(* [inline] is threaded from call sites that are in tail position of an
   event callback (plink arrivals, kernel-work continuations): it lets the
   receive-side NIC hop join the current breath.  The [originate] path
   reaches [forward] mid-callback and keeps the default. *)
and forward ?(inline = false) t nid pkt =
  let node = t.pnodes.(nid) in
  if Addr.equal pkt.Packet.dst (Pnode.addr node) then
    Pnode.deliver_local ~inline node pkt
  else begin
    let dst_id = node_id_of_dst t pkt.Packet.dst in
    if dst_id < 0 then t.blackholed <- t.blackholed + 1
    else
        match t.fwd.(nid).(dst_id) with
        | None -> t.blackholed <- t.blackholed + 1
        | Some (nh, plink) -> (
            match Packet.decr_ttl pkt with
              | None ->
                  (* TTL expired here; notify the source.  The notice
                     inherits the dying packet's provenance so forensics
                     show the expiry on the original packet's tree. *)
                  if Vini_sim.Span.on () then
                    Vini_sim.Span.drop ~pkt:pkt.Packet.id
                      ~orig:pkt.Packet.orig ~component:(Pnode.name node)
                      ~reason:"ttl-expired" ~bytes:(Packet.size pkt) ();
                  let notice =
                    Packet.icmp ~orig:pkt.Packet.orig ~src:(Pnode.addr node)
                      ~dst:pkt.Packet.src
                      (Packet.Time_exceeded
                         { orig_src = pkt.Packet.src; orig_dst = pkt.Packet.dst })
                  in
                  originate t node notice
              | Some pkt ->
                  let dir = if nid < nh then 0 else 1 in
                  Plink.transmit plink ~dir pkt ~deliver:(fun pkt ->
                      arrive t nh pkt))
  end

and arrive t nid pkt =
  let node = t.pnodes.(nid) in
  if Addr.equal pkt.Packet.dst (Pnode.addr node) then
    Pnode.deliver_local ~inline:true node pkt
  else Pnode.rx_overhead node pkt ~k:(fun () -> forward ~inline:true t nid pkt)

and originate t node pkt =
  if Addr.equal pkt.Packet.dst (Pnode.addr node) then begin
    (* Loopback: deliver promptly, no NIC traversal.  Pinned to the
       node's own shard so loopback traffic never migrates off it. *)
    let engine = Pnode.engine node in
    let shard = Engine.shard_of engine (Pnode.id node) in
    ignore
      (Engine.at_shard engine ~shard
         (Time.add (Engine.now engine) (Time.us 5))
         (fun () -> Ipstack.deliver (Pnode.stack node) pkt))
  end
  else forward t (Pnode.id node) pkt

let engine t = t.engine
let graph t = t.graph
let node t i = t.pnodes.(i)
let node_by_name t n = t.pnodes.(Graph.id_of_name t.graph n)
let node_of_addr t a = Hashtbl.find_opt t.by_addr a
let addr t i = Pnode.addr t.pnodes.(i)
let nodes t = Array.to_list t.pnodes

let plink t a b =
  match Hashtbl.find_opt t.links (key a b) with
  | Some l -> l
  | None -> raise Not_found

let set_link_state t a b up =
  let k = key a b in
  if not (Hashtbl.mem t.links k) then raise Not_found;
  let was = try Hashtbl.find t.link_up k with Not_found -> true in
  if was <> up then begin
    Hashtbl.replace t.link_up k up;
    Plink.set_up (Hashtbl.find t.links k) up;
    (* Masking reroutes (which rebuilds the forwarding cache); without
       masking the routes stand but the cache must still see the flip. *)
    if t.mask_failures then recompute_routes t else rebuild_fwd t;
    let ev = if up then Link_up (a, b) else Link_down (a, b) in
    List.iter (fun f -> f ev) t.subscribers
  end

let link_is_up t a b =
  match Hashtbl.find_opt t.link_up (key a b) with
  | Some up -> up
  | None -> false

let set_node_state t i up =
  let node = t.pnodes.(i) in
  if Pnode.is_up node <> up then begin
    if up then Pnode.reboot node else Pnode.crash node;
    (* Incident links become unusable/usable, so the underlay reroutes
       around (or back through) the machine when masking failures. *)
    if t.mask_failures then recompute_routes t;
    let ev = if up then Node_up i else Node_down i in
    List.iter (fun f -> f ev) t.subscribers
  end

let node_is_up t i = Pnode.is_up t.pnodes.(i)

let subscribe t f = t.subscribers <- t.subscribers @ [ f ]
let next_hop t ~from ~dst = next_hop_id t ~from ~dst
let blackholed t = t.blackholed
