(** The physical internet underneath VINI.

    Instantiates a {!Vini_topo.Graph.t} as physical nodes and links, routes
    packets between public addresses with static shortest paths (the
    underlying IP network), and models the two behaviours §3.1 contrasts:

    - {b masking}: when a physical link fails the underlay recomputes
      routes, hiding the failure from overlays (the default, and what the
      real Internet does under PL-VINI);
    - {b exposure}: with [mask_failures:false] routes are left alone and
      traffic into the dead link blackholes.

    Either way, topology changes are announced to subscribers — the
    "upcalls of layer-3 alarms to virtual nodes" of Table 1. *)

type t

type event =
  | Link_down of Vini_topo.Graph.node_id * Vini_topo.Graph.node_id
  | Link_up of Vini_topo.Graph.node_id * Vini_topo.Graph.node_id
  | Node_down of Vini_topo.Graph.node_id
  | Node_up of Vini_topo.Graph.node_id

type node_profile = { speed_ghz : float; contention : Cpu.contention }

val dedicated_profile : speed_ghz:float -> node_profile
val planetlab_profile : speed_ghz:float -> node_profile
(** Shared node with the calibrated contention model. *)

val create :
  engine:Vini_sim.Engine.t ->
  rng:Vini_std.Rng.t ->
  graph:Vini_topo.Graph.t ->
  ?profile:(Vini_topo.Graph.node_id -> node_profile) ->
  ?addr_of:(Vini_topo.Graph.node_id -> Vini_net.Addr.t) ->
  ?mask_failures:bool ->
  unit ->
  t
(** Default profile: dedicated 2.8 GHz nodes.  Default addressing: node
    [i] gets 198.32.154.(10+i) (the paper's example block), falling back
    to sequential allocation past .255. *)

val engine : t -> Vini_sim.Engine.t
val graph : t -> Vini_topo.Graph.t
val node : t -> Vini_topo.Graph.node_id -> Pnode.t
val node_by_name : t -> string -> Pnode.t
val node_of_addr : t -> Vini_net.Addr.t -> Pnode.t option
val addr : t -> Vini_topo.Graph.node_id -> Vini_net.Addr.t
val nodes : t -> Pnode.t list

val plink : t -> Vini_topo.Graph.node_id -> Vini_topo.Graph.node_id -> Plink.t
(** @raise Not_found if the nodes are not adjacent. *)

val set_link_state :
  t -> Vini_topo.Graph.node_id -> Vini_topo.Graph.node_id -> bool -> unit
(** Fail or restore a physical link; triggers rerouting (when masking) and
    upcalls. *)

val link_is_up : t -> Vini_topo.Graph.node_id -> Vini_topo.Graph.node_id -> bool

val set_node_state : t -> Vini_topo.Graph.node_id -> bool -> unit
(** Crash ([false]) or reboot ([true]) a physical machine: {!Pnode.crash} /
    {!Pnode.reboot}, rerouting around it (when masking) and an upcall.
    Crashing kills every process attached to the node; rebooting does not
    restart them — that is the {!Supervisor}'s job. *)

val node_is_up : t -> Vini_topo.Graph.node_id -> bool

val subscribe : t -> (event -> unit) -> unit
(** Register for topology-change upcalls. *)

val next_hop :
  t -> from:Vini_topo.Graph.node_id -> dst:Vini_topo.Graph.node_id ->
  Vini_topo.Graph.node_id option
(** Current underlay routing decision (for tests and inspection). *)

val blackholed : t -> int
(** Packets dropped for lack of a usable route. *)
