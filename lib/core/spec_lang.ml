module Time = Vini_sim.Time
module Graph = Vini_topo.Graph
module Prefix = Vini_net.Prefix
module Slice = Vini_phys.Slice
module Iias = Vini_overlay.Iias
module Generate = Vini_scenario.Generate
module Workload = Vini_scenario.Workload
module Fluid = Vini_scenario.Fluid

type substrate_decl =
  | Sub_generate of Generate.spec
  | Sub_load of string  (* path to a vini.topo/1 file, resolved lazily *)

type link_decl = {
  l_a : string;
  l_b : string;
  bw : float;
  delay : Time.t;
  weight : int;
  l_loss : float;
}

type event_decl = { ev_at : float; verb : string; args : string list }

type parsed = {
  p_name : string;
  p_slice : Slice.t;
  nodes : string list;           (* declaration order *)
  links : link_decl list;
  p_routing : Iias.routing_choice;
  embeds : (string * string) list;
  p_ingresses : (string * Prefix.t) list;
  p_egresses : string list;
  p_events : event_decl list;
  p_domains : int;
  p_substrate : substrate_decl option;
  p_workload : Workload.params option;
  p_fidelity : (Fluid.fidelity * Time.t) option;
}

(* --- unit parsing -------------------------------------------------------- *)

let parse_bw s =
  let s = String.lowercase_ascii s in
  let n = String.length s in
  let scaled suffix mult =
    if n > 1 && String.sub s (n - String.length suffix) (String.length suffix) = suffix
    then
      Option.map
        (fun v -> v *. mult)
        (float_of_string_opt (String.sub s 0 (n - String.length suffix)))
    else None
  in
  match (scaled "g" 1e9, scaled "m" 1e6, scaled "k" 1e3) with
  | Some v, _, _ | _, Some v, _ | _, _, Some v -> Some v
  | None, None, None -> float_of_string_opt s

let parse_delay s =
  let s = String.lowercase_ascii s in
  let n = String.length s in
  let with_suffix suffix to_time =
    let sl = String.length suffix in
    if n > sl && String.sub s (n - sl) sl = suffix then
      Option.map to_time (float_of_string_opt (String.sub s 0 (n - sl)))
    else None
  in
  match with_suffix "us" (fun v -> Time.of_sec_f (v *. 1e-6)) with
  | Some t -> Some t
  | None -> (
      match with_suffix "ms" Time.of_ms_f with
      | Some t -> Some t
      | None -> with_suffix "s" Time.of_sec_f)

(* --- line parsing ---------------------------------------------------------- *)

let tokens line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  String.split_on_char ' ' (String.trim line) |> List.filter (( <> ) "")

type builder = {
  mutable b_name : string option;
  mutable b_slice : Slice.t option;
  mutable b_nodes : string list;
  mutable b_links : link_decl list;
  mutable b_routing : Iias.routing_choice option;
  mutable b_embeds : (string * string) list;
  mutable b_ingresses : (string * Prefix.t) list;
  mutable b_egresses : string list;
  mutable b_events : event_decl list;
  mutable b_domains : int option;
  mutable b_substrate : substrate_decl option;
  mutable b_workload : Workload.params option;
  mutable b_fidelity : (Fluid.fidelity * Time.t) option;
}

let known_node b n = List.mem n b.b_nodes

let parse_link_opts b a bnode rest =
  let rec go l = function
    | [] -> Ok l
    | "bw" :: v :: rest -> (
        match parse_bw v with
        | Some bw when bw > 0.0 -> go { l with bw } rest
        | Some _ | None -> Error (Printf.sprintf "bad bandwidth %S" v))
    | "delay" :: v :: rest -> (
        match parse_delay v with
        | Some delay -> go { l with delay } rest
        | None -> Error (Printf.sprintf "bad delay %S" v))
    | "weight" :: v :: rest -> (
        match int_of_string_opt v with
        | Some weight when weight > 0 -> go { l with weight } rest
        | Some _ | None -> Error (Printf.sprintf "bad weight %S" v))
    | "loss" :: v :: rest -> (
        match float_of_string_opt v with
        | Some l_loss when l_loss >= 0.0 && l_loss <= 1.0 ->
            go { l with l_loss } rest
        | Some _ | None -> Error (Printf.sprintf "bad loss %S" v))
    | tok :: _ -> Error (Printf.sprintf "unknown link option %S" tok)
  in
  let base =
    { l_a = a; l_b = bnode; bw = 1e9; delay = Time.ms 1; weight = 1; l_loss = 0.0 }
  in
  match go base rest with
  | Error _ as e -> e
  | Ok l ->
      if not (known_node b a) then Error (Printf.sprintf "unknown node %S" a)
      else if not (known_node b bnode) then
        Error (Printf.sprintf "unknown node %S" bnode)
      else if a = bnode then Error "self-loop link"
      else if
        List.exists
          (fun x ->
            (x.l_a = a && x.l_b = bnode) || (x.l_a = bnode && x.l_b = a))
          b.b_links
      then Error (Printf.sprintf "duplicate link %s -- %s" a bnode)
      else begin
        b.b_links <- l :: b.b_links;
        Ok ()
      end

let event_verbs =
  [ ("fail-link", 2); ("restore-link", 2); ("set-loss", 3);
    ("set-bandwidth", 3); ("clear-bandwidth", 2); ("set-cost", 3);
    ("fail-physical", 2); ("restore-physical", 2);
    ("crash-node", 1); ("restore-node", 1); ("kill-process", 1);
    ("flap-link", 3); ("corrupt-link", 3); ("migrate", 2) ]

let feed b line =
  match tokens line with
  | [] -> Ok ()
  | [ "experiment"; n ] ->
      if b.b_name = None then begin
        b.b_name <- Some n;
        Ok ()
      end
      else Error "duplicate experiment line"
  | "slice" :: rest -> (
      if b.b_slice <> None then Error "duplicate slice line"
      else
        match rest with
        | [ "fair" ] ->
            b.b_slice <- Some (Slice.default_share "spec");
            Ok ()
        | [ "plvini" ] ->
            b.b_slice <- Some (Slice.pl_vini "spec");
            Ok ()
        | [ "reserved"; frac ] | [ "reserved"; frac; "rt" ] -> (
            match float_of_string_opt frac with
            | Some r when r >= 0.0 && r <= 1.0 ->
                let realtime = List.length rest = 3 in
                b.b_slice <- Some (Slice.create ~reservation:r ~realtime "spec");
                Ok ()
            | Some _ | None -> Error "bad reservation fraction")
        | _ -> Error "slice expects: fair | plvini | reserved FRAC [rt]")
  | [ "node"; n ] ->
      if known_node b n then Error (Printf.sprintf "duplicate node %S" n)
      else begin
        b.b_nodes <- b.b_nodes @ [ n ];
        Ok ()
      end
  | "link" :: a :: bnode :: rest -> parse_link_opts b a bnode rest
  | "routing" :: rest -> (
      if b.b_routing <> None then Error "duplicate routing line"
      else
        match rest with
        | [ "static" ] ->
            b.b_routing <- Some Iias.Static_routes;
            Ok ()
        | [ "ospf" ] ->
            b.b_routing <- Some Iias.default_ospf;
            Ok ()
        | [ "ospf"; "hello"; h; "dead"; d ] -> (
            match (int_of_string_opt h, int_of_string_opt d) with
            | Some h, Some d when h > 0 && d > h ->
                b.b_routing <-
                  Some
                    (Iias.Ospf_routing
                       {
                         hello = Time.sec h;
                         dead = Time.sec d;
                         spf_delay = Time.ms 200;
                       });
                Ok ()
            | _ -> Error "ospf timers must satisfy 0 < hello < dead")
        | [ "rip" ] ->
            b.b_routing <- Some (Iias.Rip_routing { scale = 1.0 });
            Ok ()
        | [ "rip"; "scale"; s ] -> (
            match float_of_string_opt s with
            | Some scale when scale > 0.0 ->
                b.b_routing <- Some (Iias.Rip_routing { scale });
                Ok ()
            | Some _ | None -> Error "bad rip scale")
        | _ -> Error "routing expects: ospf [hello H dead D] | rip [scale S] | static")
  | [ "embed"; v; "on"; p ] ->
      if not (known_node b v) then Error (Printf.sprintf "unknown node %S" v)
      else if List.mem_assoc v b.b_embeds then
        Error (Printf.sprintf "duplicate embed for %S" v)
      else if List.exists (fun (_, p') -> p' = p) b.b_embeds then
        Error (Printf.sprintf "duplicate embed target %S" p)
      else begin
        b.b_embeds <- b.b_embeds @ [ (v, p) ];
        Ok ()
      end
  | [ "ingress"; v; "pool"; pool ] -> (
      if not (known_node b v) then Error (Printf.sprintf "unknown node %S" v)
      else
        match Prefix.of_string_opt pool with
        | Some p ->
            b.b_ingresses <- b.b_ingresses @ [ (v, p) ];
            Ok ()
        | None -> Error (Printf.sprintf "bad pool prefix %S" pool))
  | [ "egress"; v ] ->
      if not (known_node b v) then Error (Printf.sprintf "unknown node %S" v)
      else begin
        b.b_egresses <- b.b_egresses @ [ v ];
        Ok ()
      end
  | "topology" :: rest -> (
      if b.b_substrate <> None then Error "duplicate topology line"
      else
        match rest with
        | [ "load"; path ] ->
            b.b_substrate <- Some (Sub_load path);
            Ok ()
        | "generate" :: kind :: n :: opts -> (
            match int_of_string_opt n with
            | None -> Error (Printf.sprintf "bad size %S" n)
            | Some size -> (
                let rec go ~seed ~alpha ~beta ~degree ~bw = function
                  | [] -> Ok (seed, alpha, beta, degree, bw)
                  | "seed" :: v :: rest -> (
                      match int_of_string_opt v with
                      | Some seed -> go ~seed ~alpha ~beta ~degree ~bw rest
                      | None -> Error (Printf.sprintf "bad seed %S" v))
                  | "alpha" :: v :: rest -> (
                      match float_of_string_opt v with
                      | Some a -> go ~seed ~alpha:(Some a) ~beta ~degree ~bw rest
                      | None -> Error (Printf.sprintf "bad alpha %S" v))
                  | "beta" :: v :: rest -> (
                      match float_of_string_opt v with
                      | Some x -> go ~seed ~alpha ~beta:(Some x) ~degree ~bw rest
                      | None -> Error (Printf.sprintf "bad beta %S" v))
                  | "degree" :: v :: rest -> (
                      match int_of_string_opt v with
                      | Some d -> go ~seed ~alpha ~beta ~degree:(Some d) ~bw rest
                      | None -> Error (Printf.sprintf "bad degree %S" v))
                  | "bw" :: v :: rest -> (
                      match parse_bw v with
                      | Some x when x > 0.0 ->
                          go ~seed ~alpha ~beta ~degree ~bw:(Some x) rest
                      | Some _ | None ->
                          Error (Printf.sprintf "bad bandwidth %S" v))
                  | tok :: _ ->
                      Error (Printf.sprintf "unknown topology option %S" tok)
                in
                match
                  go ~seed:1 ~alpha:None ~beta:None ~degree:None ~bw:None opts
                with
                | Error _ as e -> e
                | Ok (seed, alpha, beta, degree, bandwidth_bps) -> (
                    match
                      Generate.parse_kind kind ~n:size ?alpha ?beta ?degree
                        ?bandwidth_bps ()
                    with
                    | Error e -> Error e
                    | Ok k -> (
                        match Generate.generate { Generate.kind = k; seed } with
                        | _ ->
                            b.b_substrate <-
                              Some (Sub_generate { Generate.kind = k; seed });
                            Ok ()
                        | exception Invalid_argument msg -> Error msg))))
        | _ ->
            Error
              "topology expects: generate KIND N [seed S] [alpha A] [beta B] \
               [degree D] [bw BW] | load PATH")
  | "workload" :: "users" :: n :: opts -> (
      if b.b_workload <> None then Error "duplicate workload line"
      else
        match int_of_string_opt n with
        | None | Some 0 -> Error (Printf.sprintf "bad user count %S" n)
        | Some users when users < 0 ->
            Error (Printf.sprintf "bad user count %S" n)
        | Some users -> (
            let rec go (p : Workload.params) = function
              | [] -> Ok p
              | "seed" :: v :: rest -> (
                  match int_of_string_opt v with
                  | Some seed -> go { p with Workload.seed } rest
                  | None -> Error (Printf.sprintf "bad seed %S" v))
              | "rate" :: v :: rest -> (
                  match float_of_string_opt v with
                  | Some r when r > 0.0 ->
                      go { p with Workload.flow_rate_per_user = r } rest
                  | Some _ | None -> Error (Printf.sprintf "bad rate %S" v))
              | "bytes" :: v :: rest -> (
                  match float_of_string_opt v with
                  | Some x when x > 0.0 ->
                      go { p with Workload.mean_flow_bytes = x } rest
                  | Some _ | None ->
                      Error (Printf.sprintf "bad mean bytes %S" v))
              | "shape" :: v :: rest -> (
                  match float_of_string_opt v with
                  | Some a when a > 1.0 ->
                      go { p with Workload.pareto_shape = a } rest
                  | Some _ | None ->
                      Error (Printf.sprintf "bad pareto shape %S (need > 1)" v))
              | "skew" :: v :: rest -> (
                  match float_of_string_opt v with
                  | Some k when k >= 0.0 ->
                      go { p with Workload.popularity_skew = k } rest
                  | Some _ | None -> Error (Printf.sprintf "bad skew %S" v))
              | tok :: _ ->
                  Error (Printf.sprintf "unknown workload option %S" tok)
            in
            match go (Workload.default ~users ~seed:1) opts with
            | Error _ as e -> e
            | Ok p ->
                b.b_workload <- Some p;
                Ok ()))
  | "fidelity" :: level :: opts -> (
      if b.b_fidelity <> None then Error "duplicate fidelity line"
      else
        match Fluid.fidelity_of_string level with
        | Error e -> Error e
        | Ok f -> (
            let rec go tick = function
              | [] -> Ok tick
              | "tick" :: v :: rest -> (
                  match parse_delay v with
                  | Some t when Time.compare t Time.zero > 0 -> go t rest
                  | Some _ | None -> Error (Printf.sprintf "bad tick %S" v))
              | tok :: _ ->
                  Error (Printf.sprintf "unknown fidelity option %S" tok)
            in
            match go Fluid.default_tick opts with
            | Error _ as e -> e
            | Ok tick ->
                b.b_fidelity <- Some (f, tick);
                Ok ()))
  | [ "domains"; n ] -> (
      if b.b_domains <> None then Error "duplicate domains line"
      else
        match int_of_string_opt n with
        | Some d when d >= 1 ->
            b.b_domains <- Some d;
            Ok ()
        | Some _ | None -> Error (Printf.sprintf "bad domains count %S" n))
  | "at" :: when_ :: verb :: args -> (
      match float_of_string_opt when_ with
      | None -> Error (Printf.sprintf "bad event time %S" when_)
      | Some t when t < 0.0 -> Error "event before t=0"
      | Some t -> (
          match List.assoc_opt verb event_verbs with
          | None -> Error (Printf.sprintf "unknown event %S" verb)
          | Some arity ->
              if List.length args <> arity then
                Error (Printf.sprintf "%s expects %d arguments" verb arity)
              else begin
                b.b_events <- b.b_events @ [ { ev_at = t; verb; args } ];
                Ok ()
              end))
  | tok :: _ -> Error (Printf.sprintf "unknown directive %S" tok)

let parse text =
  let b =
    {
      b_name = None;
      b_slice = None;
      b_nodes = [];
      b_links = [];
      b_routing = None;
      b_embeds = [];
      b_ingresses = [];
      b_egresses = [];
      b_events = [];
      b_domains = None;
      b_substrate = None;
      b_workload = None;
      b_fidelity = None;
    }
  in
  let lines = String.split_on_char '\n' text in
  let rec go n = function
    | [] -> Ok ()
    | line :: rest -> (
        match feed b line with
        | Ok () -> go (n + 1) rest
        | Error e -> Error (Printf.sprintf "line %d: %s" n e))
  in
  match go 1 lines with
  | Error _ as e -> e
  | Ok () -> (
      match b.b_name with
      | None -> Error "missing experiment line"
      | Some p_name ->
          if b.b_nodes = [] then Error "no nodes declared"
          else
            Ok
              {
                p_name;
                p_slice =
                  Option.value b.b_slice ~default:(Slice.pl_vini p_name);
                nodes = b.b_nodes;
                links = List.rev b.b_links;
                p_routing = Option.value b.b_routing ~default:Iias.default_ospf;
                embeds = b.b_embeds;
                p_ingresses = b.b_ingresses;
                p_egresses = b.b_egresses;
                p_events = b.b_events;
                p_domains = Option.value b.b_domains ~default:1;
                p_substrate = b.b_substrate;
                p_workload = b.b_workload;
                p_fidelity = b.b_fidelity;
              })

(* --- elaboration ----------------------------------------------------------- *)

let name p = p.p_name
let slice p = p.p_slice
let substrate p = p.p_substrate
let workload p = p.p_workload
let fidelity p = p.p_fidelity

(* Resolve a declared substrate to a graph: a generator spec is
   regenerated (byte-identical per seed), a load declaration reads its
   vini.topo/1 file here, at resolution time. *)
let substrate_graph p =
  match p.p_substrate with
  | None -> Ok None
  | Some (Sub_generate gs) -> Ok (Some (Generate.generate gs))
  | Some (Sub_load path) -> (
      match Generate.load_file path with
      | Ok g -> Ok (Some g)
      | Error e -> Error e)

let node_index p n =
  let rec go i = function
    | [] -> None
    | x :: _ when x = n -> Some i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 p.nodes

let vtopo p =
  let names = Array.of_list p.nodes in
  let links =
    List.map
      (fun l ->
        {
          Graph.a = Option.get (node_index p l.l_a);
          b = Option.get (node_index p l.l_b);
          bandwidth_bps = l.bw;
          delay = l.delay;
          loss = l.l_loss;
          weight = l.weight;
        })
      p.links
  in
  Graph.relabel p.p_name @@ Graph.create ~names ~links

let elaborate_event p ev =
  let node n =
    match node_index p n with
    | Some i -> Ok i
    | None -> Error (Printf.sprintf "event references unknown node %S" n)
  in
  let ( let* ) = Result.bind in
  let two k = function
    | [ a; b ] ->
        let* a = node a in
        let* b = node b in
        Ok (k a b)
    | _ -> Error "bad arity"
  in
  let one k = function
    | [ a ] ->
        let* a = node a in
        Ok (k a)
    | _ -> Error "bad arity"
  in
  let* action =
    match (ev.verb, ev.args) with
    | "fail-link", args -> two (fun a b -> Experiment.Fail_vlink (a, b)) args
    | "restore-link", args ->
        two (fun a b -> Experiment.Restore_vlink (a, b)) args
    | "clear-bandwidth", args ->
        two (fun a b -> Experiment.Set_vlink_bandwidth (a, b, None)) args
    | "fail-physical", args -> two (fun a b -> Experiment.Fail_plink (a, b)) args
    | "restore-physical", args ->
        two (fun a b -> Experiment.Restore_plink (a, b)) args
    | "set-loss", [ a; b; v ] -> (
        match float_of_string_opt v with
        | Some loss when loss >= 0.0 && loss <= 1.0 ->
            two (fun a b -> Experiment.Set_vlink_loss (a, b, loss)) [ a; b ]
        | Some _ | None -> Error (Printf.sprintf "bad loss %S" v))
    | "set-bandwidth", [ a; b; v ] -> (
        match parse_bw v with
        | Some bw when bw > 0.0 ->
            two
              (fun a b -> Experiment.Set_vlink_bandwidth (a, b, Some bw))
              [ a; b ]
        | Some _ | None -> Error (Printf.sprintf "bad bandwidth %S" v))
    | "set-cost", [ a; b; v ] -> (
        match int_of_string_opt v with
        | Some cost when cost > 0 ->
            two (fun a b -> Experiment.Set_vlink_cost (a, b, cost)) [ a; b ]
        | Some _ | None -> Error (Printf.sprintf "bad cost %S" v))
    | "crash-node", args -> one (fun v -> Experiment.Crash_pnode v) args
    | "restore-node", args -> one (fun v -> Experiment.Restore_pnode v) args
    | "kill-process", args -> one (fun v -> Experiment.Kill_process v) args
    | "flap-link", [ a; b; v ] -> (
        match float_of_string_opt v with
        | Some down when down > 0.0 ->
            two (fun a b -> Experiment.Flap_vlink (a, b, down)) [ a; b ]
        | Some _ | None -> Error (Printf.sprintf "bad flap downtime %S" v))
    | "corrupt-link", [ a; b; v ] -> (
        match float_of_string_opt v with
        | Some p when p >= 0.0 && p <= 1.0 ->
            two (fun a b -> Experiment.Corrupt_vlink (a, b, p)) [ a; b ]
        | Some _ | None -> Error (Printf.sprintf "bad corruption probability %S" v))
    | verb, _ -> Error (Printf.sprintf "unknown event %S" verb)
  in
  Ok { Experiment.at = Time.of_sec_f ev.ev_at; action }

let to_spec p ~phys =
  let ( let* ) = Result.bind in
  (* Placement: explicit embeds and same-name physical nodes become pins;
     everything else is placed by the capacity-aware solver at deploy
     time. *)
  let phys_index name = Graph.id_of_name_opt phys name in
  let unknown_phys name =
    Printf.sprintf "unknown physical node %S (substrate %S has no such node)"
      name (Graph.label phys)
  in
  let* () =
    if List.length p.nodes > Graph.node_count phys then
      Error "physical substrate too small for the virtual topology"
    else Ok ()
  in
  let* explicit =
    List.fold_left
      (fun acc (v, pname) ->
        let* acc = acc in
        match phys_index pname with
        | Some pi -> Ok ((v, pi) :: acc)
        | None -> Error (unknown_phys pname))
      (Ok []) p.embeds
  in
  let used = Hashtbl.create 8 in
  List.iter (fun (_, pi) -> Hashtbl.replace used pi ()) explicit;
  let pinned = Hashtbl.create 8 in
  List.iter (fun (v, pi) -> Hashtbl.replace pinned v pi) explicit;
  (* Same-name pass: a virtual node named like a physical node sticks to
     it unless an explicit embed already claimed that machine. *)
  List.iter
    (fun v ->
      if not (Hashtbl.mem pinned v) then
        match phys_index v with
        | Some pi when not (Hashtbl.mem used pi) ->
            Hashtbl.replace pinned v pi;
            Hashtbl.replace used pi ()
        | Some _ | None -> ())
    p.nodes;
  let* events =
    List.fold_left
      (fun acc ev ->
        let* acc = acc in
        (* [migrate VNODE PHYS] is the one verb naming a physical node, so
           it elaborates here, where the substrate is in scope. *)
        let* e =
          match (ev.verb, ev.args) with
          | "migrate", [ v; pname ] -> (
              match node_index p v with
              | None ->
                  Error (Printf.sprintf "event references unknown node %S" v)
              | Some vi -> (
                  match phys_index pname with
                  | Some pi ->
                      Ok
                        {
                          Experiment.at = Time.of_sec_f ev.ev_at;
                          action = Experiment.Migrate_vnode (vi, pi);
                        }
                  | None -> Error (unknown_phys pname)))
          | _ -> elaborate_event p ev
        in
        Ok (e :: acc))
      (Ok []) p.p_events
  in
  let index_of name = Option.get (node_index p name) in
  let vtopo = vtopo p in
  let pins =
    List.filter_map
      (fun v ->
        Option.map (fun pi -> (index_of v, pi)) (Hashtbl.find_opt pinned v))
      p.nodes
  in
  (* The slice's CPU reservation is exactly what admission control must
     guarantee per virtual node; a fair-share slice demands nothing.  The
     seed only breaks exact-cost ties, derived stably from the name. *)
  let req =
    Vini_embed.Request.make ~name:p.p_name
      ~cpu:(fun _ -> p.p_slice.Slice.reservation)
      ~pins
      ~seed:(Hashtbl.hash p.p_name land 0xffff)
      ()
  in
  (* The scenario half: a workload line turns into a background fluid
     model; the default fidelity is hybrid (the headline mode), and a
     fidelity line without a workload has nothing to apply to. *)
  let* scenario =
    match (p.p_workload, p.p_fidelity) with
    | None, Some _ ->
        Error "fidelity declared without a workload line"
    | None, None -> Ok None
    | Some workload, fid ->
        let fidelity, tick =
          Option.value fid ~default:(Fluid.Hybrid, Fluid.default_tick)
        in
        Ok (Some { Experiment.workload; fidelity; tick })
  in
  let spec =
    Experiment.make ~name:p.p_name ~slice:p.p_slice ~vtopo
      ~placement:(Experiment.Auto req) ~routing:p.p_routing
      ~ingresses:(List.map (fun (v, pool) -> (index_of v, pool)) p.p_ingresses)
      ~egresses:(List.map index_of p.p_egresses)
      ~events:(List.rev events) ~domains:p.p_domains ?scenario ()
  in
  let* () = Experiment.validate ~phys spec in
  Ok spec

let load text ~phys =
  let ( let* ) = Result.bind in
  let* p = parse text in
  to_spec p ~phys

let example =
  {|# A four-site ring with a controlled failure and a maintenance event.
experiment ring-demo
slice reserved 0.25 rt

node alpha
node beta
node gamma
node delta
link alpha beta  bw 1g delay 5ms  weight 50
link beta  gamma bw 1g delay 8ms  weight 80
link gamma delta bw 1g delay 4ms  weight 40
link delta alpha bw 1g delay 12ms weight 120

routing ospf hello 5 dead 10

at 10 fail-link alpha beta
at 20 set-cost gamma delta 4000
at 34 restore-link alpha beta
at 40 set-bandwidth beta gamma 5m
at 45 clear-bandwidth beta gamma
|}
