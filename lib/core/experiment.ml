module Time = Vini_sim.Time
module Graph = Vini_topo.Graph
module Iias = Vini_overlay.Iias

type action =
  | Fail_vlink of int * int
  | Restore_vlink of int * int
  | Fail_plink of int * int
  | Restore_plink of int * int
  | Set_vlink_loss of int * int * float
  | Set_vlink_bandwidth of int * int * float option
  | Set_vlink_cost of int * int * int
  | Crash_pnode of int
  | Restore_pnode of int
  | Kill_process of int
  | Flap_vlink of int * int * float
  | Corrupt_vlink of int * int * float
  | Migrate_vnode of int * int
  | Custom of string * (Iias.t -> unit)

let is_chaos_action = function
  | Crash_pnode _ | Restore_pnode _ | Kill_process _ | Flap_vlink _
  | Corrupt_vlink _ ->
      true
  | Fail_vlink _ | Restore_vlink _ | Fail_plink _ | Restore_plink _
  | Set_vlink_loss _ | Set_vlink_bandwidth _ | Set_vlink_cost _
  | Migrate_vnode _ | Custom _ ->
      false

let action_to_string = function
  | Fail_vlink (a, b) -> Printf.sprintf "fail-link %d %d" a b
  | Restore_vlink (a, b) -> Printf.sprintf "restore-link %d %d" a b
  | Fail_plink (a, b) -> Printf.sprintf "fail-plink %d %d" a b
  | Restore_plink (a, b) -> Printf.sprintf "restore-plink %d %d" a b
  | Set_vlink_loss (a, b, l) -> Printf.sprintf "set-loss %d %d %g" a b l
  | Set_vlink_bandwidth (a, b, Some r) ->
      Printf.sprintf "set-bandwidth %d %d %g" a b r
  | Set_vlink_bandwidth (a, b, None) ->
      Printf.sprintf "unset-bandwidth %d %d" a b
  | Set_vlink_cost (a, b, c) -> Printf.sprintf "set-cost %d %d %d" a b c
  | Crash_pnode v -> Printf.sprintf "crash-node %d" v
  | Restore_pnode v -> Printf.sprintf "restore-node %d" v
  | Kill_process v -> Printf.sprintf "kill-process %d" v
  | Flap_vlink (a, b, d) -> Printf.sprintf "flap-link %d %d %g" a b d
  | Corrupt_vlink (a, b, p) -> Printf.sprintf "corrupt-link %d %d %g" a b p
  | Migrate_vnode (v, p) -> Printf.sprintf "migrate %d %d" v p
  | Custom (name, _) -> Printf.sprintf "custom %s" name

type event = { at : Time.t; action : action }

type placement =
  | Pinned of (int -> int)
  | Auto of Vini_embed.Request.t

type scenario = {
  workload : Vini_scenario.Workload.params;
  fidelity : Vini_scenario.Fluid.fidelity;
  tick : Time.t;
}

type spec = {
  exp_name : string;
  slice : Vini_phys.Slice.t;
  vtopo : Graph.t;
  placement : placement;
  routing : Iias.routing_choice;
  ingresses : (int * Vini_net.Prefix.t) list;
  egresses : int list;
  events : event list;
  domains : int;
  scenario : scenario option;
}

let make ~name ~slice ~vtopo ?embedding ?placement
    ?(routing = Iias.default_ospf) ?(ingresses = []) ?(egresses = [])
    ?(events = []) ?(domains = 1) ?scenario () =
  let placement =
    match (embedding, placement) with
    | Some _, Some _ ->
        invalid_arg "Experiment.make: embedding and placement are exclusive"
    | Some f, None -> Pinned f
    | None, Some p -> p
    | None, None -> Pinned Fun.id
  in
  {
    exp_name = name;
    slice;
    vtopo;
    placement;
    routing;
    ingresses;
    egresses;
    events;
    domains;
    scenario;
  }

let mirror ~name ~slice ~graph ?(events = []) () =
  make ~name ~slice ~vtopo:graph ~events ()

let at seconds action = { at = Time.of_sec_f seconds; action }

let validate ?phys spec =
  let n = Graph.node_count spec.vtopo in
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errors := s :: !errors) fmt in
  let pn = Option.map Graph.node_count phys in
  let check_pnode what p =
    if p < 0 then err "%s targets negative physical node %d" what p
    else
      match pn with
      | Some count when p >= count ->
          err "%s targets nonexistent physical node %d (substrate has %d)" what
            p count
      | Some _ | None -> ()
  in
  (match spec.placement with
  | Pinned f ->
      let seen = Hashtbl.create n in
      for v = 0 to n - 1 do
        let p = f v in
        check_pnode (Printf.sprintf "embedding of virtual node %d" v) p;
        if Hashtbl.mem seen p then
          err "virtual nodes %d and %d share physical node %d"
            (Hashtbl.find seen p) v p
        else Hashtbl.replace seen p v
      done
  | Auto req ->
      let seenv = Hashtbl.create 8 and seenp = Hashtbl.create 8 in
      List.iter
        (fun (v, p) ->
          if v < 0 || v >= n then
            err "pin references virtual node %d out of range" v
          else if Hashtbl.mem seenv v then err "virtual node %d pinned twice" v
          else Hashtbl.replace seenv v ();
          check_pnode (Printf.sprintf "pin of virtual node %d" v) p;
          if p >= 0 then
            if Hashtbl.mem seenp p then err "physical node %d pinned twice" p
            else Hashtbl.replace seenp p ())
        req.Vini_embed.Request.pins);
  let check_vlink what a b =
    if a < 0 || a >= n || b < 0 || b >= n then
      err "%s references node out of range (%d, %d)" what a b
    else if Graph.find_link spec.vtopo a b = None then
      err "%s references non-adjacent nodes (%d, %d)" what a b
  in
  let check_vnode what v =
    if v < 0 || v >= n then err "%s references node out of range (%d)" what v
  in
  List.iter
    (fun ev ->
      if Time.compare ev.at Time.zero < 0 then err "event before t=0";
      match ev.action with
      | Fail_vlink (a, b) -> check_vlink "Fail_vlink" a b
      | Restore_vlink (a, b) -> check_vlink "Restore_vlink" a b
      | Set_vlink_loss (a, b, loss) ->
          check_vlink "Set_vlink_loss" a b;
          if loss < 0.0 || loss > 1.0 then err "loss outside [0,1]"
      | Set_vlink_bandwidth (a, b, rate) ->
          check_vlink "Set_vlink_bandwidth" a b;
          (match rate with
          | Some r when r <= 0.0 -> err "bandwidth must be positive"
          | Some _ | None -> ())
      | Set_vlink_cost (a, b, cost) ->
          check_vlink "Set_vlink_cost" a b;
          if cost <= 0 then err "cost must be positive"
      | Crash_pnode v -> check_vnode "Crash_pnode" v
      | Restore_pnode v -> check_vnode "Restore_pnode" v
      | Kill_process v -> check_vnode "Kill_process" v
      | Flap_vlink (a, b, down_s) ->
          check_vlink "Flap_vlink" a b;
          if down_s <= 0.0 then err "flap downtime must be positive"
      | Corrupt_vlink (a, b, p) ->
          check_vlink "Corrupt_vlink" a b;
          if p < 0.0 || p > 1.0 then err "corruption probability outside [0,1]"
      | Migrate_vnode (v, p) ->
          check_vnode "Migrate_vnode" v;
          check_pnode "Migrate_vnode" p
      | Fail_plink _ | Restore_plink _ | Custom _ -> ())
    spec.events;
  List.iter
    (fun (v, _) ->
      if v < 0 || v >= n then err "ingress node %d out of range" v)
    spec.ingresses;
  List.iter
    (fun v -> if v < 0 || v >= n then err "egress node %d out of range" v)
    spec.egresses;
  if spec.domains < 1 then err "domains must be at least 1 (got %d)" spec.domains;
  (match spec.scenario with
  | None -> ()
  | Some sc ->
      (match Vini_scenario.Workload.validate sc.workload with
      | Ok () -> ()
      | Error e -> err "%s" e);
      if Time.compare sc.tick Time.zero <= 0 then
        err "scenario tick must be positive");
  match !errors with
  | [] -> Ok ()
  | es -> Error (String.concat "; " (List.rev es))
