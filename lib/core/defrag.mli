(** Background defragmentation of the substrate.

    Slice churn — deploys, undeploys, crash-driven re-embeds — skews the
    substrate's load: a few machines end up near saturation while others
    idle.  A defragmenter attached to a {!Vini.t} periodically inspects
    per-node stress ({!Vini_embed.Substrate.max_node_stress}) and, when
    the hottest machine exceeds its threshold, starts one
    make-before-break live migration ({!Vini.migrate}) to lift a virtual
    node off it — the online solver's congestion pricing chooses the
    destination, so a move is only started when the planner prices an
    alternative host strictly cheaper.  Each settled move's stretch and
    balance deltas land in {!Vini.migrations} like any other planned
    move.

    Sweeps that find no profitable move back off exponentially
    ([period * backoff^streak]) and after [budget] consecutive fruitless
    sweeps the defragmenter gives up for good — it never thrashes a
    substrate it cannot improve.  All scheduling is deterministic: sweeps
    draw nothing from the RNG, candidates are examined in a fixed order
    (hottest machine first, instances in deployment order, virtual nodes
    ascending), and one sweep starts at most one move. *)

type t

val attach :
  ?period:Vini_sim.Time.t ->
  ?threshold:float ->
  ?backoff:int ->
  ?budget:int ->
  Vini.t ->
  t
(** Attach a defragmenter and schedule its first sweep one [period]
    (default 5 s) from now.  [threshold] (default 0.75) is the
    utilisation fraction above which a machine is considered stressed;
    [backoff] (default 2) multiplies the sweep period per consecutive
    fruitless sweep; [budget] (default 3) is the fruitless-sweep count
    after which the defragmenter gives up.
    @raise Invalid_argument for [threshold] outside (0,1), [backoff] < 1
    or [budget] < 1. *)

val stop : t -> unit
(** Stop sweeping (idempotent; in-flight migrations settle normally). *)

val sweeps : t -> int
val moves_started : t -> int
val fruitless_sweeps : t -> int

val gave_up : t -> bool
(** The give-up budget was exhausted; no further sweeps will run. *)

val active : t -> bool
(** Still sweeping: neither stopped nor given up. *)
