(** The VINI infrastructure: a fixed physical substrate hosting multiple
    simultaneous virtual-network experiments (§3.4).

    One [Vini.t] owns the underlay (physical nodes, links, underlying IP
    routing).  Each deployed experiment gets its own slice, its own IIAS
    overlay with a distinct tunnel port, and a subscription to underlay
    topology-change upcalls (§6.1) so it can react to — or at least know
    about — physical failures the underlay would otherwise mask. *)

type t
type instance

type migration = {
  m_vnode : int;
  m_from : int;
  m_to : int;
  m_down_at : Vini_sim.Time.t;      (** when the hosting machine died *)
  m_restored_at : Vini_sim.Time.t;  (** when the replacement was revived *)
}

val create :
  engine:Vini_sim.Engine.t ->
  graph:Vini_topo.Graph.t ->
  ?profile:(Vini_topo.Graph.node_id -> Vini_phys.Underlay.node_profile) ->
  ?mask_failures:bool ->
  ?reembed_delay:Vini_sim.Time.t ->
  unit ->
  t
(** [reembed_delay] (default 500 ms) is the grace period after a machine
    death before an auto-placed experiment re-embeds the displaced
    virtual node elsewhere — a machine that reboots within it is simply
    restarted in place by the supervisor.  A death whose own timeline
    schedules a later {!Experiment.Restore_pnode} for the same virtual
    node is planned downtime and never triggers a re-embed. *)

val engine : t -> Vini_sim.Engine.t
val underlay : t -> Vini_phys.Underlay.t

val run : ?until:Vini_sim.Time.t -> ?domains:int -> t -> unit
(** Advance the whole deployment ({!Vini_sim.Engine.run} on the owned
    engine).  [domains] (default 1, must be >= 1) requests execution
    parallelism; it never changes the schedule — a seeded run produces
    byte-identical reports and span exports at [~domains:1] and
    [~domains:N], which the [determinism-gate] CI job enforces.  Sharding
    itself is fixed when the engine is created
    ({!Vini_sim.Engine.create}[ ~shards]). *)

val substrate : t -> Vini_embed.Substrate.t
(** The shared residual-capacity account all auto-placed experiments
    reserve from. *)

val deploy : t -> Experiment.spec -> instance
(** Validate and instantiate an experiment (not yet started).  An
    [Experiment.Auto] placement is solved here against the substrate's
    residual capacities and its reservation committed.
    @raise Invalid_argument when the spec fails validation, a physical
    node would host two virtual nodes of the same experiment, or an
    auto placement is rejected (use {!try_deploy} to handle rejections
    structurally). *)

val try_deploy :
  t -> Experiment.spec -> (instance, Vini_embed.Embed.rejection) result
(** Like {!deploy} but admission-control rejections of [Auto] placements
    come back as structured values instead of an exception.  Spec
    validation errors still raise [Invalid_argument]. *)

val undeploy : t -> instance -> unit
(** Tear the experiment down from the embedding layer's point of view:
    release its substrate reservation (if auto-placed) and stop routing
    upcalls to it. *)

val start : instance -> unit
(** Start the overlay's routing and schedule the spec's events relative
    to this instant.  When the spec contains chaos actions
    ({!Experiment.is_chaos_action}), supervised crash recovery is enabled
    automatically with the default policy; call
    [Iias.enable_supervision ~policy] on {!iias} before [start] to choose
    a different one (enabling twice is a no-op). *)

val iias : instance -> Vini_overlay.Iias.t
val spec : instance -> Experiment.spec
val instances : t -> instance list

val on_upcall : instance -> (Vini_phys.Underlay.event -> unit) -> unit
(** Subscribe the experiment to physical-topology alarms. *)

val upcalls_delivered : instance -> int

val epoch : instance -> Vini_sim.Time.t
(** The start instant (events are relative to it). *)

(** {2 Embedding introspection}

    Auto-placed instances know their mapping and its history.  When the
    machine hosting a virtual node dies and stays down past the
    re-embed delay, the embedder is consulted for a feasible surviving
    host (all other virtual nodes pinned in place); on success the
    virtual node migrates there ({!Vini_overlay.Iias.migrate_vnode}) and
    the move is recorded with its downtime; on rejection the old
    reservation is restored and the failure recorded. *)

val mapping : instance -> Vini_embed.Embed.mapping option
(** Current solved mapping ([None] for pinned placements); updated by
    migrations. *)

val placement_request : instance -> Vini_embed.Request.t option
val migrations : instance -> migration list
val reembed_failures : instance -> (int * Vini_embed.Embed.rejection) list
