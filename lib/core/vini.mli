(** The VINI infrastructure: a fixed physical substrate hosting multiple
    simultaneous virtual-network experiments (§3.4).

    One [Vini.t] owns the underlay (physical nodes, links, underlying IP
    routing).  Each deployed experiment gets its own slice, its own IIAS
    overlay with a distinct tunnel port, and a subscription to underlay
    topology-change upcalls (§6.1) so it can react to — or at least know
    about — physical failures the underlay would otherwise mask. *)

type t
type instance

type migration_kind =
  | Planned
      (** make-before-break live move ({!migrate}): zero downtime, the
          cutover loss is measured *)
  | Crash_driven
      (** reactive re-embed after a machine death: downtime is the
          death-to-revival interval, cutover loss is not meaningful *)

type migration = {
  m_vnode : int;
  m_from : int;
  m_to : int;
  m_kind : migration_kind;
  m_down_at : Vini_sim.Time.t;
      (** when the hosting machine died; equals [m_restored_at] (the flip
          instant) for planned moves, whose downtime is zero *)
  m_restored_at : Vini_sim.Time.t;  (** when the replacement took over *)
  m_cutover_loss : int option;
      (** planned moves only: packets lost across the cutover window
          (drop forensics plus packets retired with the old process);
          zero in steady state *)
  m_stretch_before : float;  (** {!Vini_embed.Embed.stretch} pre-move *)
  m_stretch_after : float;
  m_balance_before : float;
      (** {!Vini_embed.Substrate.max_node_stress} pre-move *)
  m_balance_after : float;
}

val create :
  engine:Vini_sim.Engine.t ->
  graph:Vini_topo.Graph.t ->
  ?profile:(Vini_topo.Graph.node_id -> Vini_phys.Underlay.node_profile) ->
  ?mask_failures:bool ->
  ?reembed_delay:Vini_sim.Time.t ->
  unit ->
  t
(** [reembed_delay] (default 500 ms) is the grace period after a machine
    death before an auto-placed experiment re-embeds the displaced
    virtual node elsewhere — a machine that reboots within it is simply
    restarted in place by the supervisor.  A death whose own timeline
    schedules a later {!Experiment.Restore_pnode} for the same virtual
    node is planned downtime and never triggers a re-embed. *)

val engine : t -> Vini_sim.Engine.t
val underlay : t -> Vini_phys.Underlay.t

val run : ?until:Vini_sim.Time.t -> ?domains:int -> t -> unit
(** Advance the whole deployment ({!Vini_sim.Engine.run} on the owned
    engine).  [domains] (default 1, must be >= 1) requests execution
    parallelism; it never changes the schedule — a seeded run produces
    byte-identical reports and span exports at [~domains:1] and
    [~domains:N], which the [determinism-gate] CI job enforces.  Sharding
    itself is fixed when the engine is created
    ({!Vini_sim.Engine.create}[ ~shards]). *)

val substrate : t -> Vini_embed.Substrate.t
(** The shared residual-capacity account all auto-placed experiments
    reserve from. *)

val deploy : t -> Experiment.spec -> instance
(** Validate and instantiate an experiment (not yet started).  An
    [Experiment.Auto] placement is solved here against the substrate's
    residual capacities and its reservation committed.
    @raise Invalid_argument when the spec fails validation, a physical
    node would host two virtual nodes of the same experiment, or an
    auto placement is rejected (use {!try_deploy} to handle rejections
    structurally). *)

val try_deploy :
  t -> Experiment.spec -> (instance, Vini_embed.Embed.rejection) result
(** Like {!deploy} but admission-control rejections of [Auto] placements
    come back as structured values instead of an exception.  Spec
    validation errors still raise [Invalid_argument]. *)

val undeploy : t -> instance -> unit
(** Tear the experiment down from the embedding layer's point of view:
    release its substrate reservation (if auto-placed) and stop routing
    upcalls to it. *)

val start : instance -> unit
(** Start the overlay's routing and schedule the spec's events relative
    to this instant.  When the spec contains chaos actions
    ({!Experiment.is_chaos_action}), supervised crash recovery is enabled
    automatically with the default policy; call
    [Iias.enable_supervision ~policy] on {!iias} before [start] to choose
    a different one (enabling twice is a no-op).  When the spec declares
    a scenario with flow or hybrid fidelity, the fluid background-load
    model is installed on the underlay and its barrier tick starts
    here — see {!fluid}. *)

val iias : instance -> Vini_overlay.Iias.t

val fluid : instance -> Vini_scenario.Fluid.t option
(** The background fluid model, when the spec declared a scenario with
    non-packet fidelity and the instance has started. *)

val spec : instance -> Experiment.spec
val instances : t -> instance list

val on_upcall : instance -> (Vini_phys.Underlay.event -> unit) -> unit
(** Subscribe the experiment to physical-topology alarms. *)

val upcalls_delivered : instance -> int

val epoch : instance -> Vini_sim.Time.t
(** The start instant (events are relative to it). *)

(** {2 Embedding introspection}

    Auto-placed instances know their mapping and its history.  When the
    machine hosting a virtual node dies and stays down past the
    re-embed delay, the embedder is consulted for a feasible surviving
    host (all other virtual nodes pinned in place); on success the
    virtual node migrates there ({!Vini_overlay.Iias.migrate_vnode}) and
    the move is recorded with its downtime; on rejection the old
    reservation is restored and the failure recorded. *)

val mapping : instance -> Vini_embed.Embed.mapping option
(** Current solved mapping ([None] for pinned placements); updated by
    migrations. *)

val placement_request : instance -> Vini_embed.Request.t option
val migrations : instance -> migration list
val reembed_failures : instance -> (int * Vini_embed.Embed.rejection) list

val parked : instance -> int list
(** Virtual nodes whose re-embed after a machine death was rejected:
    their share of the reservation is released exactly (the survivors'
    share stays committed) and they wait, unhosted, until their machine
    returns ({!Experiment.Restore_pnode}) and they are re-committed. *)

(** {2 Planned live migration (make-before-break)}

    The proactive counterpart to crash-driven re-embedding: move a
    virtual node {e before} breaking anything.  {!migrate} plans the move
    with the online solver's congestion pricing (or takes an explicit
    [?target]), double-provisions CPU and incident-path bandwidth for the
    new placement alongside the old, pre-clones the Click process on the
    target ({!Vini_overlay.Iias.begin_migration}), flips ingress/egress
    atomically at a barrier-safe instant, drains in-flight packets
    through the old process, then retires it and releases the old share.
    In steady state the cutover loses zero packets; the measured loss,
    path-stretch delta and substrate-balance delta are recorded in
    {!migrations}.  A move that cannot flip (target died meanwhile) rolls
    back cleanly: the old process never stopped serving and the new share
    is withdrawn, leaving substrate accounts exactly as before. *)

val migrate :
  ?target:int ->
  ?drain:Vini_sim.Time.t ->
  instance ->
  vnode:int ->
  (bool, Vini_embed.Embed.rejection) result
(** Start a make-before-break move of [vnode].  Without [?target] the
    online solver picks the cheapest feasible host under congestion
    pricing (pinned placements require an explicit target); [?drain]
    (default 1 s) is how long in-flight packets may keep arriving at the
    old process after the flip.  [Ok true]: the move is in flight and
    will commit (or roll back) asynchronously.  [Ok false]: the current
    host is already the best choice — nothing to do.  [Error r]: the
    solver rejected every alternative (capacity, partition, invalid
    explicit target).
    @raise Invalid_argument if the instance is not started, the vnode is
    parked, or a migration of it is already in flight. *)

val pending_migrations : instance -> int
(** Number of in-flight planned moves (begun, not yet settled). *)

val migration_failures : instance -> (int * string) list
(** Planned moves that were rejected at planning time (timeline
    [migrate] events) or rolled back before the flip, with the reason. *)
