(** The VINI infrastructure: a fixed physical substrate hosting multiple
    simultaneous virtual-network experiments (§3.4).

    One [Vini.t] owns the underlay (physical nodes, links, underlying IP
    routing).  Each deployed experiment gets its own slice, its own IIAS
    overlay with a distinct tunnel port, and a subscription to underlay
    topology-change upcalls (§6.1) so it can react to — or at least know
    about — physical failures the underlay would otherwise mask. *)

type t
type instance

val create :
  engine:Vini_sim.Engine.t ->
  graph:Vini_topo.Graph.t ->
  ?profile:(Vini_topo.Graph.node_id -> Vini_phys.Underlay.node_profile) ->
  ?mask_failures:bool ->
  unit ->
  t

val engine : t -> Vini_sim.Engine.t
val underlay : t -> Vini_phys.Underlay.t

val deploy : t -> Experiment.spec -> instance
(** Validate and instantiate an experiment (not yet started).
    @raise Invalid_argument when the spec fails validation or a physical
    node would host two virtual nodes of the same experiment. *)

val start : instance -> unit
(** Start the overlay's routing and schedule the spec's events relative
    to this instant.  When the spec contains chaos actions
    ({!Experiment.is_chaos_action}), supervised crash recovery is enabled
    automatically with the default policy; call
    [Iias.enable_supervision ~policy] on {!iias} before [start] to choose
    a different one (enabling twice is a no-op). *)

val iias : instance -> Vini_overlay.Iias.t
val spec : instance -> Experiment.spec
val instances : t -> instance list

val on_upcall : instance -> (Vini_phys.Underlay.event -> unit) -> unit
(** Subscribe the experiment to physical-topology alarms. *)

val upcalls_delivered : instance -> int

val epoch : instance -> Vini_sim.Time.t
(** The start instant (events are relative to it). *)
