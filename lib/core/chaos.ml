module Rng = Vini_std.Rng
module Graph = Vini_topo.Graph

type profile = {
  duration : float;
  mean_interfault : float;
  node_crash_weight : float;
  process_kill_weight : float;
  link_flap_weight : float;
  corrupt_weight : float;
  mean_downtime : float;
  min_downtime : float;
  flap_down : float;
  corrupt_rate : float;
  corrupt_span : float;
}

let default_profile =
  {
    duration = 120.0;
    mean_interfault = 15.0;
    node_crash_weight = 1.0;
    process_kill_weight = 1.0;
    link_flap_weight = 1.0;
    corrupt_weight = 0.5;
    mean_downtime = 10.0;
    min_downtime = 2.0;
    flap_down = 5.0;
    corrupt_rate = 0.02;
    corrupt_span = 10.0;
  }

let validate_profile p =
  let err = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> err := s :: !err) fmt in
  if p.duration <= 0.0 then bad "duration must be positive";
  if p.mean_interfault <= 0.0 then bad "mean_interfault must be positive";
  let w =
    p.node_crash_weight +. p.process_kill_weight +. p.link_flap_weight
    +. p.corrupt_weight
  in
  if
    p.node_crash_weight < 0.0 || p.process_kill_weight < 0.0
    || p.link_flap_weight < 0.0 || p.corrupt_weight < 0.0
  then bad "fault weights must be non-negative";
  if w <= 0.0 then bad "at least one fault weight must be positive";
  if p.mean_downtime <= 0.0 then bad "mean_downtime must be positive";
  if p.min_downtime < 0.0 then bad "min_downtime must be non-negative";
  if p.flap_down <= 0.0 then bad "flap_down must be positive";
  if p.corrupt_rate < 0.0 || p.corrupt_rate > 1.0 then
    bad "corrupt_rate outside [0,1]";
  if p.corrupt_span <= 0.0 then bad "corrupt_span must be positive";
  match !err with
  | [] -> Ok ()
  | es -> Error (String.concat "; " (List.rev es))

type fault = Node_crash | Process_kill | Link_flap | Corrupt

let pick_fault rng p =
  let w =
    [
      (Node_crash, p.node_crash_weight);
      (Process_kill, p.process_kill_weight);
      (Link_flap, p.link_flap_weight);
      (Corrupt, p.corrupt_weight);
    ]
  in
  let total = List.fold_left (fun acc (_, x) -> acc +. x) 0.0 w in
  let u = Rng.float rng total in
  let rec go acc = function
    | [ (f, _) ] -> f
    | (f, x) :: rest -> if u < acc +. x then f else go (acc +. x) rest
    | [] -> assert false
  in
  go 0.0 w

let plan ~seed ~vtopo profile =
  (match validate_profile profile with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Chaos.plan: " ^ msg));
  let rng = Rng.create seed in
  let n = Graph.node_count vtopo in
  let links = Array.of_list (Graph.links vtopo) in
  (* until when each node stays crashed (0.0 = up); a node already down is
     never re-crashed, and its restore is already scheduled. *)
  let down_until = Array.make n 0.0 in
  let events = ref [] in
  let emit at action = events := { Experiment.at = Vini_sim.Time.of_sec_f at; action } :: !events in
  let up_nodes now =
    List.filter (fun v -> down_until.(v) <= now) (Graph.nodes vtopo)
  in
  let t = ref (Rng.exponential rng profile.mean_interfault) in
  while !t < profile.duration do
    let now = !t in
    (match pick_fault rng profile with
    | Node_crash -> (
        match up_nodes now with
        | [] -> ()
        | up ->
            let v = List.nth up (Rng.int rng (List.length up)) in
            let down =
              profile.min_downtime
              +. Rng.exponential rng
                   (Float.max 0.001 (profile.mean_downtime -. profile.min_downtime))
            in
            down_until.(v) <- now +. down;
            emit now (Experiment.Crash_pnode v);
            emit (now +. down) (Experiment.Restore_pnode v))
    | Process_kill -> (
        match up_nodes now with
        | [] -> ()
        | up ->
            let v = List.nth up (Rng.int rng (List.length up)) in
            emit now (Experiment.Kill_process v))
    | Link_flap ->
        if Array.length links > 0 then begin
          let l = links.(Rng.int rng (Array.length links)) in
          emit now (Experiment.Flap_vlink (l.Graph.a, l.Graph.b, profile.flap_down))
        end
    | Corrupt ->
        if Array.length links > 0 then begin
          let l = links.(Rng.int rng (Array.length links)) in
          emit now
            (Experiment.Corrupt_vlink (l.Graph.a, l.Graph.b, profile.corrupt_rate));
          emit
            (now +. profile.corrupt_span)
            (Experiment.Corrupt_vlink (l.Graph.a, l.Graph.b, 0.0))
        end);
    t := now +. Rng.exponential rng profile.mean_interfault
  done;
  List.stable_sort
    (fun (a : Experiment.event) b -> Vini_sim.Time.compare a.at b.at)
    (List.rev !events)

let describe events =
  List.map
    (fun (ev : Experiment.event) ->
      Printf.sprintf "at %.3f %s"
        (Vini_sim.Time.to_sec_f ev.at)
        (Experiment.action_to_string ev.action))
    events
