(** Experiment specifications (§6.2).

    The paper argues VINI experiments should be specified the way ns or
    Emulab scripts are: a topology, routing configuration, and a timeline
    of events (link failures, traffic changes).  A [spec] is exactly that,
    and [Vini.deploy] turns one into a running virtual network.  Events
    are relative to the experiment's start instant. *)

type action =
  | Fail_vlink of int * int
      (** drop packets inside Click on this virtual link (§5.2) *)
  | Restore_vlink of int * int
  | Fail_plink of int * int
      (** fail the underlying physical link (exercises masking/upcalls) *)
  | Restore_plink of int * int
  | Set_vlink_loss of int * int * float
      (** emulate a lossy virtual link *)
  | Set_vlink_bandwidth of int * int * float option
      (** cap (or uncap) a virtual link's rate via a Click shaper (§6.2) *)
  | Set_vlink_cost of int * int * int
      (** reconfigure an IGP cost and re-advertise (§7 maintenance) *)
  | Crash_pnode of int
      (** crash the physical machine hosting this virtual node: every
          process on it dies, all its links go dark *)
  | Restore_pnode of int
      (** reboot that machine; supervised processes then restart *)
  | Kill_process of int
      (** crash just the virtual node's Click process *)
  | Flap_vlink of int * int * float
      (** fail a virtual link, restore it after the given seconds *)
  | Corrupt_vlink of int * int * float
      (** corrupt the given fraction of the link's packets; receivers
          drop them on checksum verification *)
  | Migrate_vnode of int * int
      (** live-migrate the virtual node to the given physical node,
          make-before-break ([Vini.migrate ~target]): pre-clone, barrier
          flip, drain, retire — zero packet loss in steady state *)
  | Custom of string * (Vini_overlay.Iias.t -> unit)
      (** named scripted action (start traffic, change rates, ...) *)

val is_chaos_action : action -> bool
(** True for the fault-injection actions ([Crash_pnode], [Restore_pnode],
    [Kill_process], [Flap_vlink], [Corrupt_vlink]).  [Vini.start] enables
    supervised recovery automatically when a spec contains any. *)

val action_to_string : action -> string
(** Stable textual form (the spec-language verb plus operands) — used in
    traces, reports and plan-equality tests. *)

type event = { at : Vini_sim.Time.t; action : action }

type placement =
  | Pinned of (int -> int)
      (** hand-written embedding: virtual node id -> physical node id,
          injective *)
  | Auto of Vini_embed.Request.t
      (** capacity-aware placement solved at deploy time against the
          substrate's residual capacities; the request's pins fix chosen
          virtual nodes, everything else is placed by the solver *)

type scenario = {
  workload : Vini_scenario.Workload.params;
      (** the background user population and its traffic mix *)
  fidelity : Vini_scenario.Fluid.fidelity;
      (** [Packet] = no fluid model (the default when [scenario] is
          [None]); [Flow] = account background load only; [Hybrid] =
          also fold it into the packet path as queueing delay and loss
          pressure *)
  tick : Vini_sim.Time.t;  (** fluid fold period *)
}
(** The scenario half of a spec: a generated million-user background
    workload and the fidelity at which to simulate it (DESIGN.md §17).
    [Vini.start] installs the fluid model on the instance's underlay
    when present with a non-[Packet] fidelity. *)

type spec = {
  exp_name : string;
  slice : Vini_phys.Slice.t;
  vtopo : Vini_topo.Graph.t;
  placement : placement;
  routing : Vini_overlay.Iias.routing_choice;
  ingresses : (int * Vini_net.Prefix.t) list;
  egresses : int list;
  events : event list;
  domains : int;
      (** requested execution parallelism (>= 1; default 1).  Any value
          above 1 asks the runner for the sharded engine; the output is
          byte-identical whatever the value, so [domains] is purely a
          resource knob ([spec-lang verb [domains N]], CLI [--domains]). *)
  scenario : scenario option;
      (** background workload + fidelity; [None] = pure packet fidelity *)
}

val make :
  name:string ->
  slice:Vini_phys.Slice.t ->
  vtopo:Vini_topo.Graph.t ->
  ?embedding:(int -> int) ->
  ?placement:placement ->
  ?routing:Vini_overlay.Iias.routing_choice ->
  ?ingresses:(int * Vini_net.Prefix.t) list ->
  ?egresses:int list ->
  ?events:event list ->
  ?domains:int ->
  ?scenario:scenario ->
  unit ->
  spec
(** Defaults: identity embedding (virtual node i on physical node i),
    OSPF with the paper's timers, no ingress/egress, no events, one
    domain, no background scenario.  [?embedding:f] is sugar for
    [?placement:(Pinned f)].
    @raise Invalid_argument when both [embedding] and [placement] are
    given. *)

val mirror :
  name:string ->
  slice:Vini_phys.Slice.t ->
  graph:Vini_topo.Graph.t ->
  ?events:event list ->
  unit ->
  spec
(** A virtual network that mirrors a physical topology one-to-one with
    the same link weights — the §5.2 "Abilene mirror" construction. *)

val at : float -> action -> event
(** [at seconds action] — sugar for building timelines. *)

val validate : ?phys:Vini_topo.Graph.t -> spec -> (unit, string) result
(** Check the placement (injectivity and, with [phys], that every pinned
    or hand-written target actually exists on the substrate) and event
    references before deploying. *)
