module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Underlay = Vini_phys.Underlay
module Iias = Vini_overlay.Iias
module Substrate = Vini_embed.Substrate
module Embed = Vini_embed.Embed
module Request = Vini_embed.Request

type migration = {
  m_vnode : int;
  m_from : int;
  m_to : int;
  m_down_at : Time.t;      (* when the hosting machine died *)
  m_restored_at : Time.t;  (* when the replacement router was revived *)
}

type instance = {
  ispec : Experiment.spec;
  overlay : Iias.t;
  owner : t;
  areq : Request.t option;  (* Some for Auto placements *)
  mutable started : bool;
  mutable instance_epoch : Time.t;
  mutable upcall_hooks : (Underlay.event -> unit) list;
  mutable upcalls : int;
  mutable mapping : Embed.mapping option;
  mutable migrations : migration list;
  mutable reembed_failures : (int * Embed.rejection) list;
  (* Crash_pnode v downs the machine *currently* hosting v; Restore_pnode
     v must reboot that same machine even if v migrated away meanwhile. *)
  crash_sites : (int, int) Hashtbl.t;
  down_since : (int, Time.t) Hashtbl.t;  (* vnode -> machine-death instant *)
}

and t = {
  engine : Engine.t;
  under : Underlay.t;
  substrate : Substrate.t;
  reembed_delay : Time.t;
  mutable deployed : instance list;
  mutable next_tunnel_port : int;
}

let create ~engine ~graph ?profile ?mask_failures
    ?(reembed_delay = Time.ms 500) () =
  let rng = Vini_std.Rng.split (Engine.rng engine) in
  let under =
    Underlay.create ~engine ~rng ~graph ?profile ?mask_failures ()
  in
  let t =
    {
      engine;
      under;
      substrate = Substrate.of_underlay under;
      reembed_delay;
      deployed = [];
      next_tunnel_port = 33000;
    }
  in
  (* Fan underlay alarms out to every experiment: the upcalls of §6.1. *)
  Underlay.subscribe under (fun ev ->
      List.iter
        (fun inst ->
          inst.upcalls <- inst.upcalls + 1;
          List.iter (fun f -> f ev) inst.upcall_hooks)
        t.deployed);
  t

let engine t = t.engine
let underlay t = t.under
let substrate t = t.substrate

let run ?until ?(domains = 1) t =
  if domains < 1 then invalid_arg "Vini.run: domains < 1";
  (* [domains] is a resource knob, not a semantics knob: the sharded
     engine's window schedule never consults it, so the run is
     byte-identical at any value (the determinism-gate CI job holds us to
     that).  Values above 1 on a non-sharded engine are accepted and
     ignored — create the engine with ~shards to get the windowed
     schedule. *)
  Engine.run ?until t.engine

(* --- crash-driven re-embedding ----------------------------------------- *)

(* A dead machine's virtual node waits [reembed_delay] — the grace period
   in which a reboot lets the supervisor restart in place — then, if the
   machine is still down, is re-embedded onto a feasible surviving node
   and rebuilt there.  Survivors never move: the solver runs with every
   other virtual node pinned to its current host. *)
let attempt_reembed inst v =
  let t = inst.owner in
  let p = Iias.current_pnode inst.overlay v in
  if not (Underlay.node_is_up t.under p) then
    match (inst.mapping, inst.areq) with
    | Some m, Some req ->
        let vtopo = inst.ispec.Experiment.vtopo in
        Embed.withdraw t.substrate ~vtopo req m;
        (match Embed.reembed t.substrate ~vtopo req m ~vnode:v with
        | Ok m' ->
            Embed.commit t.substrate ~vtopo req m';
            Iias.migrate_vnode inst.overlay v ~pnode:m'.Embed.nodes.(v);
            inst.mapping <- Some m';
            let down_at =
              Option.value
                (Hashtbl.find_opt inst.down_since v)
                ~default:(Engine.now t.engine)
            in
            Hashtbl.remove inst.down_since v;
            inst.migrations <-
              inst.migrations
              @ [
                  {
                    m_vnode = v;
                    m_from = p;
                    m_to = m'.Embed.nodes.(v);
                    m_down_at = down_at;
                    m_restored_at = Engine.now t.engine;
                  };
                ]
        | Error rej ->
            (* Nowhere to go: put the old reservation back and leave the
               vnode to the supervisor's restart-in-place loop. *)
            Embed.commit t.substrate ~vtopo req m;
            inst.reembed_failures <- inst.reembed_failures @ [ (v, rej) ])
    | _ -> ()

(* A crash whose own timeline schedules a later Restore_pnode for the same
   virtual node is planned downtime — maintenance, not failure.  The
   machine will reboot and the supervisor restart in place, so migrating
   the vnode away (and paying the routing re-convergence twice) would be
   wrong.  Only unplanned deaths re-embed. *)
let planned_restore inst v =
  let now = Engine.now inst.owner.engine in
  List.exists
    (fun ev ->
      match ev.Experiment.action with
      | Experiment.Restore_pnode rv ->
          rv = v
          && Time.compare (Time.add inst.instance_epoch ev.Experiment.at) now
             > 0
      | _ -> false)
    inst.ispec.Experiment.events

let schedule_reembed inst p =
  let t = inst.owner in
  Array.iteri
    (fun v host ->
      if host = p && not (planned_restore inst v) then begin
        if not (Hashtbl.mem inst.down_since v) then
          Hashtbl.replace inst.down_since v (Engine.now t.engine);
        ignore
          (Engine.after t.engine t.reembed_delay (fun () ->
               attempt_reembed inst v))
      end)
    (Iias.current_embedding inst.overlay)

(* --- deployment --------------------------------------------------------- *)

let try_deploy t spec =
  (match Experiment.validate ~phys:(Underlay.graph t.under) spec with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Vini.deploy: " ^ msg));
  let vtopo = spec.Experiment.vtopo in
  let placement_result =
    match spec.Experiment.placement with
    | Experiment.Pinned f -> Ok (f, None, None)
    | Experiment.Auto req -> (
        match Embed.admit t.substrate ~vtopo req with
        | Ok m -> Ok ((fun v -> m.Embed.nodes.(v)), Some m, Some req)
        | Error r -> Error r)
  in
  match placement_result with
  | Error r -> Error r
  | Ok (embedding, mapping, areq) ->
      let tunnel_port = t.next_tunnel_port in
      t.next_tunnel_port <- t.next_tunnel_port + 10;
      let overlay =
        Iias.create ~underlay:t.under ~slice:spec.Experiment.slice ~vtopo
          ~embedding ~routing:spec.Experiment.routing ~tunnel_port ()
      in
      List.iter
        (fun (v, pool) -> Iias.enable_ingress overlay v ~pool)
        spec.Experiment.ingresses;
      List.iter
        (fun v -> Iias.enable_egress overlay v)
        spec.Experiment.egresses;
      let inst =
        {
          ispec = spec;
          overlay;
          owner = t;
          areq;
          started = false;
          instance_epoch = Time.zero;
          upcall_hooks = [];
          upcalls = 0;
          mapping;
          migrations = [];
          reembed_failures = [];
          crash_sites = Hashtbl.create 4;
          down_since = Hashtbl.create 4;
        }
      in
      if areq <> None then
        inst.upcall_hooks <-
          inst.upcall_hooks
          @ [
              (function
              | Underlay.Node_down p when inst.started ->
                  schedule_reembed inst p
              | Underlay.Node_down _ | Underlay.Node_up _
              | Underlay.Link_down _ | Underlay.Link_up _ ->
                  ());
            ];
      t.deployed <- t.deployed @ [ inst ];
      Ok inst

let deploy t spec =
  match try_deploy t spec with
  | Ok inst -> inst
  | Error r ->
      invalid_arg
        ("Vini.deploy: embedding rejected: " ^ Embed.rejection_to_string r)

let undeploy t inst =
  (match (inst.mapping, inst.areq) with
  | Some m, Some req ->
      Embed.withdraw t.substrate ~vtopo:inst.ispec.Experiment.vtopo req m
  | _ -> ());
  t.deployed <- List.filter (fun i -> i != inst) t.deployed

let run_action inst = function
  | Experiment.Fail_vlink (a, b) -> Iias.set_vlink_state inst.overlay a b false
  | Experiment.Restore_vlink (a, b) ->
      Iias.set_vlink_state inst.overlay a b true
  | Experiment.Fail_plink (a, b) ->
      Underlay.set_link_state inst.owner.under a b false
  | Experiment.Restore_plink (a, b) ->
      Underlay.set_link_state inst.owner.under a b true
  | Experiment.Set_vlink_loss (a, b, loss) ->
      Iias.set_vlink_loss inst.overlay a b loss
  | Experiment.Set_vlink_bandwidth (a, b, rate) ->
      Iias.set_vlink_bandwidth inst.overlay a b rate
  | Experiment.Set_vlink_cost (a, b, cost) ->
      Iias.set_vlink_cost inst.overlay a b cost
  | Experiment.Crash_pnode v ->
      let p = Iias.current_pnode inst.overlay v in
      Hashtbl.replace inst.crash_sites v p;
      Underlay.set_node_state inst.owner.under p false
  | Experiment.Restore_pnode v ->
      let p =
        match Hashtbl.find_opt inst.crash_sites v with
        | Some p -> p
        | None -> Iias.current_pnode inst.overlay v
      in
      Hashtbl.remove inst.crash_sites v;
      Underlay.set_node_state inst.owner.under p true
  | Experiment.Kill_process v -> Iias.kill_vnode inst.overlay v
  | Experiment.Flap_vlink (a, b, down_s) ->
      Iias.set_vlink_state inst.overlay a b false;
      ignore
        (Engine.after inst.owner.engine (Time.of_sec_f down_s) (fun () ->
             Iias.set_vlink_state inst.overlay a b true))
  | Experiment.Corrupt_vlink (a, b, p) ->
      Iias.set_vlink_corrupt inst.overlay a b p
  | Experiment.Custom (_, f) -> f inst.overlay

let start inst =
  if not inst.started then begin
    inst.started <- true;
    inst.instance_epoch <- Engine.now inst.owner.engine;
    Iias.start inst.overlay;
    (* Chaos specs imply supervised recovery; a custom policy can be set
       by calling [Iias.enable_supervision ~policy] before start
       (enabling is idempotent and draws no randomness until a crash). *)
    if
      List.exists
        (fun (ev : Experiment.event) ->
          Experiment.is_chaos_action ev.Experiment.action)
        inst.ispec.Experiment.events
    then Iias.enable_supervision inst.overlay;
    List.iter
      (fun (ev : Experiment.event) ->
        ignore
          (Engine.at inst.owner.engine
             (Time.add inst.instance_epoch ev.Experiment.at)
             (fun () -> run_action inst ev.Experiment.action)))
      inst.ispec.Experiment.events
  end

let iias inst = inst.overlay
let spec inst = inst.ispec
let instances t = t.deployed
let on_upcall inst f = inst.upcall_hooks <- inst.upcall_hooks @ [ f ]
let upcalls_delivered inst = inst.upcalls
let epoch inst = inst.instance_epoch
let mapping inst = inst.mapping
let placement_request inst = inst.areq
let migrations inst = inst.migrations
let reembed_failures inst = inst.reembed_failures
