module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Underlay = Vini_phys.Underlay
module Iias = Vini_overlay.Iias

type instance = {
  ispec : Experiment.spec;
  overlay : Iias.t;
  owner : t;
  mutable started : bool;
  mutable instance_epoch : Time.t;
  mutable upcall_hooks : (Underlay.event -> unit) list;
  mutable upcalls : int;
}

and t = {
  engine : Engine.t;
  under : Underlay.t;
  mutable deployed : instance list;
  mutable next_tunnel_port : int;
}

let create ~engine ~graph ?profile ?mask_failures () =
  let rng = Vini_std.Rng.split (Engine.rng engine) in
  let under =
    Underlay.create ~engine ~rng ~graph ?profile ?mask_failures ()
  in
  let t = { engine; under; deployed = []; next_tunnel_port = 33000 } in
  (* Fan underlay alarms out to every experiment: the upcalls of §6.1. *)
  Underlay.subscribe under (fun ev ->
      List.iter
        (fun inst ->
          inst.upcalls <- inst.upcalls + 1;
          List.iter (fun f -> f ev) inst.upcall_hooks)
        t.deployed);
  t

let engine t = t.engine
let underlay t = t.under

let deploy t spec =
  (match Experiment.validate spec with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Vini.deploy: " ^ msg));
  let tunnel_port = t.next_tunnel_port in
  t.next_tunnel_port <- t.next_tunnel_port + 10;
  let overlay =
    Iias.create ~underlay:t.under ~slice:spec.Experiment.slice
      ~vtopo:spec.Experiment.vtopo ~embedding:spec.Experiment.embedding
      ~routing:spec.Experiment.routing ~tunnel_port ()
  in
  List.iter
    (fun (v, pool) -> Iias.enable_ingress overlay v ~pool)
    spec.Experiment.ingresses;
  List.iter (fun v -> Iias.enable_egress overlay v) spec.Experiment.egresses;
  let inst =
    {
      ispec = spec;
      overlay;
      owner = t;
      started = false;
      instance_epoch = Time.zero;
      upcall_hooks = [];
      upcalls = 0;
    }
  in
  t.deployed <- t.deployed @ [ inst ];
  inst

let run_action inst = function
  | Experiment.Fail_vlink (a, b) -> Iias.set_vlink_state inst.overlay a b false
  | Experiment.Restore_vlink (a, b) ->
      Iias.set_vlink_state inst.overlay a b true
  | Experiment.Fail_plink (a, b) ->
      Underlay.set_link_state inst.owner.under a b false
  | Experiment.Restore_plink (a, b) ->
      Underlay.set_link_state inst.owner.under a b true
  | Experiment.Set_vlink_loss (a, b, loss) ->
      Iias.set_vlink_loss inst.overlay a b loss
  | Experiment.Set_vlink_bandwidth (a, b, rate) ->
      Iias.set_vlink_bandwidth inst.overlay a b rate
  | Experiment.Set_vlink_cost (a, b, cost) ->
      Iias.set_vlink_cost inst.overlay a b cost
  | Experiment.Crash_pnode v ->
      Underlay.set_node_state inst.owner.under
        (inst.ispec.Experiment.embedding v)
        false
  | Experiment.Restore_pnode v ->
      Underlay.set_node_state inst.owner.under
        (inst.ispec.Experiment.embedding v)
        true
  | Experiment.Kill_process v -> Iias.kill_vnode inst.overlay v
  | Experiment.Flap_vlink (a, b, down_s) ->
      Iias.set_vlink_state inst.overlay a b false;
      ignore
        (Engine.after inst.owner.engine (Time.of_sec_f down_s) (fun () ->
             Iias.set_vlink_state inst.overlay a b true))
  | Experiment.Corrupt_vlink (a, b, p) ->
      Iias.set_vlink_corrupt inst.overlay a b p
  | Experiment.Custom (_, f) -> f inst.overlay

let start inst =
  if not inst.started then begin
    inst.started <- true;
    inst.instance_epoch <- Engine.now inst.owner.engine;
    Iias.start inst.overlay;
    (* Chaos specs imply supervised recovery; a custom policy can be set
       by calling [Iias.enable_supervision ~policy] before start
       (enabling is idempotent and draws no randomness until a crash). *)
    if
      List.exists
        (fun (ev : Experiment.event) ->
          Experiment.is_chaos_action ev.Experiment.action)
        inst.ispec.Experiment.events
    then Iias.enable_supervision inst.overlay;
    List.iter
      (fun (ev : Experiment.event) ->
        ignore
          (Engine.at inst.owner.engine
             (Time.add inst.instance_epoch ev.Experiment.at)
             (fun () -> run_action inst ev.Experiment.action)))
      inst.ispec.Experiment.events
  end

let iias inst = inst.overlay
let spec inst = inst.ispec
let instances t = t.deployed
let on_upcall inst f = inst.upcall_hooks <- inst.upcall_hooks @ [ f ]
let upcalls_delivered inst = inst.upcalls
let epoch inst = inst.instance_epoch
