module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Underlay = Vini_phys.Underlay
module Iias = Vini_overlay.Iias
module Substrate = Vini_embed.Substrate
module Embed = Vini_embed.Embed
module Request = Vini_embed.Request

type migration_kind = Planned | Crash_driven

type migration = {
  m_vnode : int;
  m_from : int;
  m_to : int;
  m_kind : migration_kind;
  m_down_at : Time.t;      (* when service stopped (= restored for planned) *)
  m_restored_at : Time.t;  (* when the replacement router was serving *)
  m_cutover_loss : int option;    (* packets; measured for planned moves *)
  m_stretch_before : float;       (* mean path stretch around the move *)
  m_stretch_after : float;
  m_balance_before : float;       (* substrate max node stress around it *)
  m_balance_after : float;
}

(* An in-flight planned (make-before-break) move and the accounting needed
   to settle or roll it back. *)
type pending_move = {
  pv_vnode : int;
  pv_from : int;
  pv_to : int;
  pv_acct : move_acct option;  (* None for pinned placements *)
  mutable pv_flipped : bool;
  mutable pv_flip_at : Time.t;
}

and move_acct = {
  mv_cur : Embed.mapping;   (* mapping when the move was provisioned *)
  mv_next : Embed.mapping;  (* planned mapping, committed as a delta *)
  mv_except : int list;     (* parked vnodes at provision time *)
  mv_stretch_before : float;
  mv_balance_before : float;
}

type instance = {
  ispec : Experiment.spec;
  overlay : Iias.t;
  owner : t;
  areq : Request.t option;  (* Some for Auto placements *)
  mutable started : bool;
  mutable instance_epoch : Time.t;
  mutable upcall_hooks : (Underlay.event -> unit) list;
  mutable upcalls : int;
  mutable mapping : Embed.mapping option;
  mutable migrations : migration list;
  mutable reembed_failures : (int * Embed.rejection) list;
  (* Vnodes whose share is off the substrate books: their machine died and
     the re-embed was rejected, so the residuals look exactly as after a
     withdraw of just that vnode.  Re-committed when the machine reboots. *)
  mutable parked : int list;
  mutable pending_moves : pending_move list;
  mutable migration_failures : (int * string) list;
  (* Crash_pnode v downs the machine *currently* hosting v; Restore_pnode
     v must reboot that same machine even if v migrated away meanwhile. *)
  crash_sites : (int, int) Hashtbl.t;
  down_since : (int, Time.t) Hashtbl.t;  (* vnode -> machine-death instant *)
  (* The background fluid model, installed at [start] when the spec
     carries a scenario with non-packet fidelity. *)
  mutable fluid : Vini_scenario.Fluid.t option;
}

and t = {
  engine : Engine.t;
  under : Underlay.t;
  substrate : Substrate.t;
  reembed_delay : Time.t;
  mutable deployed : instance list;
  mutable next_tunnel_port : int;
}

let create ~engine ~graph ?profile ?mask_failures
    ?(reembed_delay = Time.ms 500) () =
  let rng = Vini_std.Rng.split (Engine.rng engine) in
  let under =
    Underlay.create ~engine ~rng ~graph ?profile ?mask_failures ()
  in
  let t =
    {
      engine;
      under;
      substrate = Substrate.of_underlay under;
      reembed_delay;
      deployed = [];
      next_tunnel_port = 33000;
    }
  in
  (* Fan underlay alarms out to every experiment: the upcalls of §6.1. *)
  Underlay.subscribe under (fun ev ->
      List.iter
        (fun inst ->
          inst.upcalls <- inst.upcalls + 1;
          List.iter (fun f -> f ev) inst.upcall_hooks)
        t.deployed);
  t

let engine t = t.engine
let underlay t = t.under
let substrate t = t.substrate

let run ?until ?(domains = 1) t =
  if domains < 1 then invalid_arg "Vini.run: domains < 1";
  (* [domains] is a resource knob, not a semantics knob: the sharded
     engine's window schedule never consults it, so the run is
     byte-identical at any value (the determinism-gate CI job holds us to
     that).  Values above 1 on a non-sharded engine are accepted and
     ignored — create the engine with ~shards to get the windowed
     schedule. *)
  Engine.run ?until t.engine

(* --- crash-driven re-embedding ----------------------------------------- *)

let is_deployed inst = List.exists (fun i -> i == inst) inst.owner.deployed

(* A dead machine's virtual node waits [reembed_delay] — the grace period
   in which a reboot lets the supervisor restart in place — then, if the
   machine is still down, is re-embedded onto a feasible surviving node
   and rebuilt there.  Survivors never move: the solver runs with every
   other virtual node pinned to its current host.  A rejected re-embed
   parks the vnode: the survivors' reservations go back on the books but
   the dead vnode's share stays released, exactly as a withdraw of just
   that vnode would leave the substrate. *)
let rec attempt_reembed inst v =
  let t = inst.owner in
  if is_deployed inst then
    if inst.pending_moves <> [] then
      (* A live migration's double-provisioned accounting is in flight;
         settle it first, then retry. *)
      ignore
        (Engine.after t.engine t.reembed_delay (fun () ->
             attempt_reembed inst v))
    else
      let p = Iias.current_pnode inst.overlay v in
      if not (Underlay.node_is_up t.under p) then
        match (inst.mapping, inst.areq) with
        | Some m, Some req -> (
            let vtopo = inst.ispec.Experiment.vtopo in
            Embed.withdraw ~except:inst.parked t.substrate ~vtopo req m;
            match Embed.reembed t.substrate ~vtopo req m ~vnode:v with
            | Ok m' ->
                let survivors_parked =
                  List.filter (fun w -> w <> v) inst.parked
                in
                Embed.commit ~except:survivors_parked t.substrate ~vtopo req m';
                inst.parked <- survivors_parked;
                let balance = Substrate.max_node_stress t.substrate in
                let stretch_before = Embed.stretch t.substrate m in
                Iias.migrate_vnode inst.overlay v ~pnode:m'.Embed.nodes.(v);
                inst.mapping <- Some m';
                let down_at =
                  Option.value
                    (Hashtbl.find_opt inst.down_since v)
                    ~default:(Engine.now t.engine)
                in
                Hashtbl.remove inst.down_since v;
                inst.migrations <-
                  inst.migrations
                  @ [
                      {
                        m_vnode = v;
                        m_from = p;
                        m_to = m'.Embed.nodes.(v);
                        m_kind = Crash_driven;
                        m_down_at = down_at;
                        m_restored_at = Engine.now t.engine;
                        m_cutover_loss = None;
                        m_stretch_before = stretch_before;
                        m_stretch_after = Embed.stretch t.substrate m';
                        m_balance_before = balance;
                        m_balance_after = balance;
                      };
                    ]
            | Error rej ->
                (* Nowhere to go: survivors' reservations go back, the
                   dead vnode's share stays off the books (parked), and
                   the vnode waits for the supervisor's restart-in-place
                   loop. *)
                Embed.commit ~except:(v :: inst.parked) t.substrate ~vtopo req
                  m;
                if not (List.mem v inst.parked) then
                  inst.parked <- inst.parked @ [ v ];
                inst.reembed_failures <- inst.reembed_failures @ [ (v, rej) ])
        | _ -> ()

(* A machine reboot brings a parked vnode's share back onto the books: the
   supervisor restarts the process in place, and the substrate account
   must follow.  Deferred while a live migration is settling, like
   [attempt_reembed]. *)
let rec restore_parked inst p =
  let t = inst.owner in
  if is_deployed inst && inst.parked <> [] then
    if inst.pending_moves <> [] then
      ignore
        (Engine.after t.engine t.reembed_delay (fun () ->
             restore_parked inst p))
    else
      match (inst.mapping, inst.areq) with
      | Some m, Some req ->
          let vtopo = inst.ispec.Experiment.vtopo in
          List.iter
            (fun v ->
              if Iias.current_pnode inst.overlay v = p then begin
                let others = List.filter (fun w -> w <> v) inst.parked in
                Embed.commit_delta ~except:others t.substrate ~vtopo req m
                  ~vnode:v;
                inst.parked <- others;
                Hashtbl.remove inst.down_since v
              end)
            inst.parked
      | _ -> ()

(* A crash whose own timeline schedules a later Restore_pnode for the same
   virtual node is planned downtime — maintenance, not failure.  The
   machine will reboot and the supervisor restart in place, so migrating
   the vnode away (and paying the routing re-convergence twice) would be
   wrong.  Only unplanned deaths re-embed. *)
let planned_restore inst v =
  let now = Engine.now inst.owner.engine in
  List.exists
    (fun ev ->
      match ev.Experiment.action with
      | Experiment.Restore_pnode rv ->
          rv = v
          && Time.compare (Time.add inst.instance_epoch ev.Experiment.at) now
             > 0
      | _ -> false)
    inst.ispec.Experiment.events

let schedule_reembed inst p =
  let t = inst.owner in
  Array.iteri
    (fun v host ->
      if host = p && not (planned_restore inst v) then begin
        if not (Hashtbl.mem inst.down_since v) then
          Hashtbl.replace inst.down_since v (Engine.now t.engine);
        ignore
          (Engine.after t.engine t.reembed_delay (fun () ->
               attempt_reembed inst v))
      end)
    (Iias.current_embedding inst.overlay)

(* --- deployment --------------------------------------------------------- *)

let try_deploy t spec =
  (match Experiment.validate ~phys:(Underlay.graph t.under) spec with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Vini.deploy: " ^ msg));
  let vtopo = spec.Experiment.vtopo in
  let placement_result =
    match spec.Experiment.placement with
    | Experiment.Pinned f -> Ok (f, None, None)
    | Experiment.Auto req -> (
        match Embed.admit t.substrate ~vtopo req with
        | Ok m -> Ok ((fun v -> m.Embed.nodes.(v)), Some m, Some req)
        | Error r -> Error r)
  in
  match placement_result with
  | Error r -> Error r
  | Ok (embedding, mapping, areq) ->
      let tunnel_port = t.next_tunnel_port in
      t.next_tunnel_port <- t.next_tunnel_port + 10;
      let overlay =
        Iias.create ~underlay:t.under ~slice:spec.Experiment.slice ~vtopo
          ~embedding ~routing:spec.Experiment.routing ~tunnel_port ()
      in
      List.iter
        (fun (v, pool) -> Iias.enable_ingress overlay v ~pool)
        spec.Experiment.ingresses;
      List.iter
        (fun v -> Iias.enable_egress overlay v)
        spec.Experiment.egresses;
      let inst =
        {
          ispec = spec;
          overlay;
          owner = t;
          areq;
          started = false;
          instance_epoch = Time.zero;
          upcall_hooks = [];
          upcalls = 0;
          mapping;
          migrations = [];
          reembed_failures = [];
          parked = [];
          pending_moves = [];
          migration_failures = [];
          crash_sites = Hashtbl.create 4;
          down_since = Hashtbl.create 4;
          fluid = None;
        }
      in
      if areq <> None then
        inst.upcall_hooks <-
          inst.upcall_hooks
          @ [
              (function
              | Underlay.Node_down p when inst.started ->
                  schedule_reembed inst p
              | Underlay.Node_up p when inst.started ->
                  restore_parked inst p
              | Underlay.Node_down _ | Underlay.Node_up _
              | Underlay.Link_down _ | Underlay.Link_up _ ->
                  ());
            ];
      t.deployed <- t.deployed @ [ inst ];
      Ok inst

let deploy t spec =
  match try_deploy t spec with
  | Ok inst -> inst
  | Error r ->
      invalid_arg
        ("Vini.deploy: embedding rejected: " ^ Embed.rejection_to_string r)

let undeploy t inst =
  (match (inst.mapping, inst.areq) with
  | Some m, Some req ->
      let vtopo = inst.ispec.Experiment.vtopo in
      (* Parked shares are already off the books; an in-flight move also
         holds the other side of its double-provisioned delta (the old
         share if flipped, the new one if not). *)
      Embed.withdraw ~except:inst.parked t.substrate ~vtopo req m;
      List.iter
        (fun pv ->
          match pv.pv_acct with
          | Some a ->
              let other = if pv.pv_flipped then a.mv_cur else a.mv_next in
              Embed.withdraw_delta ~except:a.mv_except t.substrate ~vtopo req
                other ~vnode:pv.pv_vnode
          | None -> ())
        inst.pending_moves
  | _ -> ());
  inst.pending_moves <- [];
  t.deployed <- List.filter (fun i -> i != inst) t.deployed

(* --- planned live migration -------------------------------------------- *)

(* Settle a flipped move once its drain window closes: retire the old
   process (counting what it still buffered as cutover loss), release the
   old share of the double-provisioned delta, and record the move's
   quality figures. *)
let finish_move inst pv =
  let t = inst.owner in
  if is_deployed inst && List.memq pv inst.pending_moves then begin
    let loss = Iias.finish_migration inst.overlay pv.pv_vnode in
    inst.pending_moves <- List.filter (fun x -> x != pv) inst.pending_moves;
    let stretch_before, stretch_after, balance_before =
      match (pv.pv_acct, inst.areq) with
      | Some a, Some req ->
          let vtopo = inst.ispec.Experiment.vtopo in
          Embed.withdraw_delta ~except:a.mv_except t.substrate ~vtopo req
            a.mv_cur ~vnode:pv.pv_vnode;
          ( a.mv_stretch_before,
            Embed.stretch t.substrate a.mv_next,
            a.mv_balance_before )
      | _ ->
          let b = Substrate.max_node_stress t.substrate in
          (1.0, 1.0, b)
    in
    inst.migrations <-
      inst.migrations
      @ [
          {
            m_vnode = pv.pv_vnode;
            m_from = pv.pv_from;
            m_to = pv.pv_to;
            m_kind = Planned;
            (* Make-before-break: service never stopped, downtime zero. *)
            m_down_at = pv.pv_flip_at;
            m_restored_at = pv.pv_flip_at;
            m_cutover_loss = Some loss;
            m_stretch_before = stretch_before;
            m_stretch_after = stretch_after;
            m_balance_before = balance_before;
            m_balance_after = Substrate.max_node_stress t.substrate;
          };
        ]
  end

(* Roll a not-yet-flipped move back: retire the clone, release the new
   share of the delta, record the failure.  The old process never stopped
   serving, so the slice observes nothing. *)
let rollback_move inst pv reason =
  let t = inst.owner in
  Iias.abort_migration inst.overlay pv.pv_vnode;
  (match (pv.pv_acct, inst.areq) with
  | Some a, Some req ->
      Embed.withdraw_delta ~except:a.mv_except t.substrate
        ~vtopo:inst.ispec.Experiment.vtopo req a.mv_next ~vnode:pv.pv_vnode
  | _ -> ());
  inst.pending_moves <- List.filter (fun x -> x != pv) inst.pending_moves;
  inst.migration_failures <- inst.migration_failures @ [ (pv.pv_vnode, reason) ]

(* Schedule the atomic flip at the next barrier-safe instant and the drain
   completion after it.  The flip callback re-checks liveness: if the
   clone, its machine, or the old process died since provisioning, the
   move rolls back instead of flipping. *)
let flip_delay = Time.ms 10

let schedule_flip inst pv ~drain =
  let t = inst.owner in
  ignore
    (Engine.at_barrier t.engine
       (Time.add (Engine.now t.engine) flip_delay)
       (fun () ->
         if is_deployed inst && List.memq pv inst.pending_moves then
           if Iias.commit_migration inst.overlay pv.pv_vnode then begin
             pv.pv_flipped <- true;
             pv.pv_flip_at <- Engine.now t.engine;
             (match pv.pv_acct with
             | Some a -> inst.mapping <- Some a.mv_next
             | None -> ());
             ignore
               (Engine.after t.engine drain (fun () -> finish_move inst pv))
           end
           else
             rollback_move inst pv
               "flip aborted: a process or machine died before the cutover"))

let migrate ?target ?(drain = Time.sec 1) inst ~vnode =
  let t = inst.owner in
  if not inst.started then invalid_arg "Vini.migrate: instance not started";
  if List.exists (fun pv -> pv.pv_vnode = vnode) inst.pending_moves then
    invalid_arg "Vini.migrate: migration of this vnode already in flight";
  if List.mem vnode inst.parked then
    invalid_arg "Vini.migrate: virtual node's machine is down";
  let vtopo = inst.ispec.Experiment.vtopo in
  let cur_host = Iias.current_pnode inst.overlay vnode in
  match (inst.mapping, inst.areq) with
  | Some m, Some req -> (
      match Embed.plan_move t.substrate ~vtopo req m ~vnode ?target () with
      | Error r -> Error r
      | Ok next when next.Embed.nodes.(vnode) = cur_host ->
          (* The current host is already the cheapest feasible one. *)
          Ok false
      | Ok next ->
          let tp = next.Embed.nodes.(vnode) in
          let acct =
            {
              mv_cur = m;
              mv_next = next;
              mv_except = inst.parked;
              mv_stretch_before = Embed.stretch t.substrate m;
              mv_balance_before = Substrate.max_node_stress t.substrate;
            }
          in
          (* Make before break: the new share joins the books while the
             old one is still held; [begin_migration] double-provisions
             the process and sockets the same way. *)
          Embed.commit_delta ~except:acct.mv_except t.substrate ~vtopo req next
            ~vnode;
          (try Iias.begin_migration inst.overlay vnode ~pnode:tp
           with e ->
             Embed.withdraw_delta ~except:acct.mv_except t.substrate ~vtopo req
               next ~vnode;
             raise e);
          let pv =
            {
              pv_vnode = vnode;
              pv_from = cur_host;
              pv_to = tp;
              pv_acct = Some acct;
              pv_flipped = false;
              pv_flip_at = Time.zero;
            }
          in
          inst.pending_moves <- inst.pending_moves @ [ pv ];
          schedule_flip inst pv ~drain;
          Ok true)
  | _ -> (
      (* Pinned placement: no substrate accounting to move, but the
         make-before-break data-plane pipeline runs the same. *)
      match target with
      | None ->
          invalid_arg "Vini.migrate: pinned placement needs an explicit target"
      | Some tp ->
          if tp = cur_host then Ok false
          else begin
            Iias.begin_migration inst.overlay vnode ~pnode:tp;
            let pv =
              {
                pv_vnode = vnode;
                pv_from = cur_host;
                pv_to = tp;
                pv_acct = None;
                pv_flipped = false;
                pv_flip_at = Time.zero;
              }
            in
            inst.pending_moves <- inst.pending_moves @ [ pv ];
            schedule_flip inst pv ~drain;
            Ok true
          end)

let run_action inst = function
  | Experiment.Fail_vlink (a, b) -> Iias.set_vlink_state inst.overlay a b false
  | Experiment.Restore_vlink (a, b) ->
      Iias.set_vlink_state inst.overlay a b true
  | Experiment.Fail_plink (a, b) ->
      Underlay.set_link_state inst.owner.under a b false
  | Experiment.Restore_plink (a, b) ->
      Underlay.set_link_state inst.owner.under a b true
  | Experiment.Set_vlink_loss (a, b, loss) ->
      Iias.set_vlink_loss inst.overlay a b loss
  | Experiment.Set_vlink_bandwidth (a, b, rate) ->
      Iias.set_vlink_bandwidth inst.overlay a b rate
  | Experiment.Set_vlink_cost (a, b, cost) ->
      Iias.set_vlink_cost inst.overlay a b cost
  | Experiment.Crash_pnode v ->
      let p = Iias.current_pnode inst.overlay v in
      Hashtbl.replace inst.crash_sites v p;
      Underlay.set_node_state inst.owner.under p false
  | Experiment.Restore_pnode v ->
      let p =
        match Hashtbl.find_opt inst.crash_sites v with
        | Some p -> p
        | None -> Iias.current_pnode inst.overlay v
      in
      Hashtbl.remove inst.crash_sites v;
      Underlay.set_node_state inst.owner.under p true
  | Experiment.Kill_process v -> Iias.kill_vnode inst.overlay v
  | Experiment.Flap_vlink (a, b, down_s) ->
      Iias.set_vlink_state inst.overlay a b false;
      ignore
        (Engine.after inst.owner.engine (Time.of_sec_f down_s) (fun () ->
             Iias.set_vlink_state inst.overlay a b true))
  | Experiment.Corrupt_vlink (a, b, p) ->
      Iias.set_vlink_corrupt inst.overlay a b p
  | Experiment.Migrate_vnode (v, p) ->
      (* Planned moves from a timeline are best-effort: a rejected plan
         is recorded in [migration_failures], not raised mid-run. *)
      (match migrate ~target:p inst ~vnode:v with
      | Ok _ -> ()
      | Error r ->
          inst.migration_failures <-
            inst.migration_failures @ [ (v, Embed.rejection_to_string r) ])
  | Experiment.Custom (_, f) -> f inst.overlay

let start inst =
  if not inst.started then begin
    inst.started <- true;
    inst.instance_epoch <- Engine.now inst.owner.engine;
    Iias.start inst.overlay;
    (* Chaos specs imply supervised recovery; a custom policy can be set
       by calling [Iias.enable_supervision ~policy] before start
       (enabling is idempotent and draws no randomness until a crash). *)
    if
      List.exists
        (fun (ev : Experiment.event) ->
          Experiment.is_chaos_action ev.Experiment.action)
        inst.ispec.Experiment.events
    then Iias.enable_supervision inst.overlay;
    (* A declared scenario with flow or hybrid fidelity brings up the
       fluid background-load model on the shared underlay.  Its barrier
       tick starts now, so the background ramps with the experiment. *)
    (match inst.ispec.Experiment.scenario with
    | Some { Experiment.workload; fidelity; tick }
      when fidelity <> Vini_scenario.Fluid.Packet ->
        inst.fluid <-
          Some
            (Vini_scenario.Fluid.install ~under:inst.owner.under
               { Vini_scenario.Fluid.fidelity; tick; workload })
    | Some _ | None -> ());
    List.iter
      (fun (ev : Experiment.event) ->
        ignore
          (Engine.at inst.owner.engine
             (Time.add inst.instance_epoch ev.Experiment.at)
             (fun () -> run_action inst ev.Experiment.action)))
      inst.ispec.Experiment.events
  end

let iias inst = inst.overlay
let fluid inst = inst.fluid
let spec inst = inst.ispec
let instances t = t.deployed
let on_upcall inst f = inst.upcall_hooks <- inst.upcall_hooks @ [ f ]
let upcalls_delivered inst = inst.upcalls
let epoch inst = inst.instance_epoch
let mapping inst = inst.mapping
let placement_request inst = inst.areq
let migrations inst = inst.migrations
let reembed_failures inst = inst.reembed_failures
let migration_failures inst = inst.migration_failures
let parked inst = inst.parked
let pending_migrations inst = List.length inst.pending_moves
