(** Seeded fault campaigns.

    A chaos campaign turns a seed and a fault-mix profile into a concrete
    timeline of {!Experiment} events: whole-machine crashes paired with
    later reboots, process kills (recovered by the supervisor), link flaps,
    and transient packet-corruption episodes.  Planning is a pure function
    of [(seed, vtopo, profile)] — the same inputs always yield the same
    timeline, so a chaotic run is reproducible bit-for-bit, and two runs
    differing only in seed explore independent fault sequences. *)

type profile = {
  duration : float;           (** campaign span in seconds *)
  mean_interfault : float;    (** mean of the exponential inter-fault gap *)
  node_crash_weight : float;
  process_kill_weight : float;
  link_flap_weight : float;
  corrupt_weight : float;     (** relative fault-mix weights (>= 0) *)
  mean_downtime : float;      (** mean machine downtime after a crash *)
  min_downtime : float;       (** floor on machine downtime *)
  flap_down : float;          (** seconds a flapped link stays down *)
  corrupt_rate : float;       (** corruption probability while an episode lasts *)
  corrupt_span : float;       (** seconds a corruption episode lasts *)
}

val default_profile : profile
(** 120 s campaign, one fault every ~15 s, even mix (corruption at half
    weight), crashes down 2 s + Exp(8 s), 5 s flaps, 2% corruption for
    10 s episodes. *)

val validate_profile : profile -> (unit, string) result

val plan :
  seed:int -> vtopo:Vini_topo.Graph.t -> profile -> Experiment.event list
(** Draw a campaign.  Events come back sorted by time; every
    [Crash_pnode] has a matching later [Restore_pnode] and every
    corruption onset a matching clearing event ([Corrupt_vlink _ 0.0]).
    Nodes already down are never picked as crash victims again until
    their scheduled reboot.
    @raise Invalid_argument when the profile fails {!validate_profile}. *)

val describe : Experiment.event list -> string list
(** One ["at T verb args"] line per event — for logs and golden tests. *)
