(* Background defragmentation: under slice churn (deploys, undeploys,
   crash-driven re-embeds) the substrate drifts towards a skewed load —
   a few machines near saturation while others idle.  The defragmenter
   periodically inspects per-node stress and, when the hottest machine
   exceeds a threshold, schedules one make-before-break live migration
   ([Vini.migrate]) to lift a virtual node off it, letting the online
   solver's congestion pricing choose the destination.  Fruitless sweeps
   back off exponentially and a give-up budget stops a defragmenter that
   cannot make progress (every candidate rejected or already optimal). *)

module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Substrate = Vini_embed.Substrate
module Graph = Vini_topo.Graph
module Iias = Vini_overlay.Iias

type t = {
  net : Vini.t;
  period : Time.t;
  threshold : float;
  backoff : int;
  budget : int;
  mutable streak : int;  (* consecutive fruitless sweeps *)
  mutable sweeps : int;
  mutable moves : int;
  mutable fruitless : int;
  mutable gave_up : bool;
  mutable stopped : bool;
}

(* Physical nodes above the stress threshold, hottest first (ties by
   ascending id, so sweeps are deterministic). *)
let stressed_pnodes t =
  let sub = Vini.substrate t.net in
  let n = Graph.node_count (Substrate.graph sub) in
  let xs = ref [] in
  for p = n - 1 downto 0 do
    let cap = Substrate.node_capacity sub p in
    if cap > 0.0 && Substrate.node_up sub p then begin
      let s = Substrate.node_used sub p /. cap in
      if s > t.threshold then xs := (s, p) :: !xs
    end
  done;
  List.sort
    (fun (sa, pa) (sb, pb) ->
      match compare sb sa with 0 -> compare pa pb | c -> c)
    !xs

(* Try to lift one virtual node off physical node [p]; the first move the
   planner prices as profitable wins the sweep.  Only auto-placed
   instances participate — a pinned placement has no solver to consult. *)
let try_move t p =
  let rec inst_loop = function
    | [] -> false
    | inst :: rest ->
        if Option.is_none (Vini.mapping inst) then inst_loop rest
        else begin
          let ov = Vini.iias inst in
          let nv = Iias.vnode_count ov in
          let rec vloop v =
            if v >= nv then inst_loop rest
            else if
              Iias.current_pnode ov v = p
              && (not (Iias.migration_pending ov v))
              && not (List.mem v (Vini.parked inst))
            then
              match Vini.migrate inst ~vnode:v with
              | Ok true ->
                  t.moves <- t.moves + 1;
                  true
              | Ok false | Error _ -> vloop (v + 1)
              | exception Invalid_argument _ -> vloop (v + 1)
            else vloop (v + 1)
          in
          vloop 0
        end
  in
  inst_loop (Vini.instances t.net)

let rec schedule t delay =
  if not (t.stopped || t.gave_up) then
    ignore (Engine.after (Vini.engine t.net) delay (fun () -> sweep t))

and sweep t =
  if not (t.stopped || t.gave_up) then begin
    t.sweeps <- t.sweeps + 1;
    let sub = Vini.substrate t.net in
    if Substrate.max_node_stress sub <= t.threshold then begin
      t.streak <- 0;
      schedule t t.period
    end
    else if List.exists (fun (_, p) -> try_move t p) (stressed_pnodes t)
    then begin
      t.streak <- 0;
      schedule t t.period
    end
    else begin
      t.streak <- t.streak + 1;
      t.fruitless <- t.fruitless + 1;
      if t.streak >= t.budget then t.gave_up <- true
      else begin
        let d = ref t.period in
        for _ = 1 to t.streak do
          d := Time.mul !d t.backoff
        done;
        schedule t !d
      end
    end
  end

let attach ?(period = Time.sec 5) ?(threshold = 0.75) ?(backoff = 2)
    ?(budget = 3) net =
  if threshold <= 0.0 || threshold >= 1.0 then
    invalid_arg "Defrag.attach: threshold outside (0,1)";
  if backoff < 1 then invalid_arg "Defrag.attach: backoff must be >= 1";
  if budget < 1 then invalid_arg "Defrag.attach: budget must be >= 1";
  let t =
    {
      net;
      period;
      threshold;
      backoff;
      budget;
      streak = 0;
      sweeps = 0;
      moves = 0;
      fruitless = 0;
      gave_up = false;
      stopped = false;
    }
  in
  schedule t period;
  t

let stop t = t.stopped <- true
let sweeps t = t.sweeps
let moves_started t = t.moves
let fruitless_sweeps t = t.fruitless
let gave_up t = t.gave_up
let active t = not (t.stopped || t.gave_up)
