(** A textual experiment-specification language (§6.2).

    The paper argues researchers should specify VINI experiments the way
    they write ns or Emulab scripts — topology, routing configuration,
    and a timeline of events — so experiments can migrate between
    simulation, emulation, and VINI.  This module parses that kind of
    description:

    {v
    experiment abilene-demo
    slice reserved 0.25 rt           # or: slice fair

    node Seattle
    node Denver
    node Washington
    link Seattle Denver bw 10g delay 14.5ms weight 1450
    link Denver Washington bw 10g delay 10ms weight 1000

    routing ospf hello 5 dead 10    # or: routing rip scale 0.1 | routing static

    embed Seattle on pop0            # physical node by name (optional)
    ingress Seattle pool 10.8.0.0/24
    egress Washington

    at 10 fail-link Seattle Denver
    at 12 set-loss Denver Washington 0.05
    at 15 set-bandwidth Denver Washington 2m
    at 20 clear-bandwidth Denver Washington
    at 25 set-cost Seattle Denver 5000
    at 34 restore-link Seattle Denver
    at 40 crash-node Denver          # chaos verbs: crash-node, restore-node,
    at 55 restore-node Denver        #   kill-process, flap-link A B SECS,
    at 60 corrupt-link Denver Washington 0.01    #   corrupt-link A B PROB
    at 70 migrate Denver pop5        # make-before-break live migration to
                                     #   a physical node, named like embed
    v}

    Internet-scale scenarios (DESIGN.md §17) add three verbs:

    {v
    topology generate backbone 200 seed 42   # or: waxman N | fat-tree K;
                                             #   options: alpha A, beta B,
                                             #   degree D, bw BW
    topology load substrate.topo.json        # a vini.topo/1 file
    workload users 1000000 seed 7 rate 0.002 bytes 50000 shape 1.5 skew 1
    fidelity hybrid tick 100ms               # or: packet | flow
    v}

    A [topology] line declares the {e physical substrate} the spec wants
    (resolve it with {!substrate_graph} and pass it as [to_spec ~phys]);
    [workload] + [fidelity] attach a background scenario to the spec,
    which [Vini.start] brings up as the fluid model.

    Bandwidths accept [k]/[m]/[g] suffixes (bits per second); delays accept
    [us]/[ms]/[s]. *)

type parsed

val parse : string -> (parsed, string) result
(** Syntax and local-consistency checking (named nodes exist, links are
    declared once, values are in range). *)

val name : parsed -> string
val vtopo : parsed -> Vini_topo.Graph.t
val slice : parsed -> Vini_phys.Slice.t

type substrate_decl =
  | Sub_generate of Vini_scenario.Generate.spec
      (** [topology generate ...]: regenerate from the seeded spec *)
  | Sub_load of string  (** [topology load PATH]: a vini.topo/1 file *)

val substrate : parsed -> substrate_decl option
(** The spec's substrate declaration, verbatim. *)

val substrate_graph :
  parsed -> (Vini_topo.Graph.t option, string) result
(** Resolve the declared substrate: generators are re-run (byte-identical
    per seed), [load] paths are read here.  [Ok None] when the spec
    declares none — the caller picks the substrate as before.  Callers
    must pass the resolved graph as [to_spec ~phys] so the underlay and
    the elaboration agree. *)

val workload : parsed -> Vini_scenario.Workload.params option
val fidelity : parsed -> (Vini_scenario.Fluid.fidelity * Vini_sim.Time.t) option

val to_spec :
  parsed -> phys:Vini_topo.Graph.t -> (Experiment.spec, string) result
(** Resolve against a physical substrate into an {!Experiment.Auto}
    placement: [embed] lines pin virtual nodes to physical nodes by name
    (each target at most once), unembedded nodes named like a physical
    node pin to it, and everything else is placed by the capacity-aware
    solver at deploy time.  The request demands the slice's CPU
    reservation per virtual node. *)

val load :
  string -> phys:Vini_topo.Graph.t -> (Experiment.spec, string) result
(** [parse] + [to_spec]. *)

val example : string
(** A complete, runnable specification (used by tests and [vini run]). *)
