module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Trace = Vini_sim.Trace
module Packet = Vini_net.Packet
module Ipstack = Vini_phys.Ipstack

let default_mss = 1430
let default_rwnd = 16 * 1024
let min_rto = Time.ms 200
let max_rto = Time.sec 60
let delayed_ack = Time.ms 40

(* Sequence space: plain 0-based byte offsets of the data stream.  SYNs are
   pure control (flags + connection state); the FIN occupies one virtual
   byte at offset [snd_max], so "everything including FIN acked" is
   observable as ack = snd_max + 1. *)

type state = Syn_sent | Syn_rcvd | Established | Fin_sent | Closed

let state_name = function
  | Syn_sent -> "syn-sent"
  | Syn_rcvd -> "syn-rcvd"
  | Established -> "established"
  | Fin_sent -> "fin-sent"
  | Closed -> "closed"

type stats = {
  bytes_acked : int;
  bytes_delivered : int;
  retransmits : int;
  timeouts : int;
  srtt : float;
  cwnd : int;
  state : string;
}

type t = {
  stack : Ipstack.t;
  engine : Engine.t;
  local_port : int;
  remote : Vini_net.Addr.t;
  remote_port : int;
  mss : int;
  rwnd_limit : int;
  mutable state : state;
  (* sender *)
  mutable snd_una : int;
  mutable snd_nxt : int;
  mutable snd_max : int;
  mutable app_remaining : int option;  (* None = infinite source *)
  mutable fin_queued : bool;
  mutable fin_sent : bool;
  mutable cwnd : int;
  mutable ssthresh : int;
  mutable peer_rwnd : int;
  mutable dup_acks : int;
  mutable in_recovery : bool;
  mutable recover : int;
  (* RTT estimation *)
  mutable srtt : float;
  mutable rttvar : float;
  mutable rto : Time.t;
  mutable rtt_seq : int option;
  mutable rtt_sent_at : Time.t;
  mutable retransmitted_since_sample : bool;
  mutable rto_timer : Engine.handle option;
  mutable last_send : Time.t;
  initial_rto : Time.t;
  (* receiver *)
  mutable rcv_nxt : int;
  mutable ooo : (int * int) list;   (* (start, len), sorted & disjoint *)
  mutable fin_rcvd_at : int option;
  mutable fin_consumed : bool;
  mutable acks_owed : int;
  mutable ack_timer : Engine.handle option;
  (* stats & hooks *)
  mutable bytes_delivered : int;
  mutable retransmits : int;
  mutable timeouts : int;
  cwnd_hist : Vini_std.Histogram.t; (* cwnd in bytes, sampled per good ack *)
  mutable deliver_hook : int -> unit;
  mutable segment_hook : Packet.t -> unit;
  mutable established_hook : unit -> unit;
  mutable closed_hook : unit -> unit;
}

let make ~stack ~local_port ~remote ~remote_port ~rwnd ~mss ~initial_rto state =
  {
    stack;
    engine = Ipstack.engine stack;
    local_port;
    remote;
    remote_port;
    mss;
    rwnd_limit = rwnd;
    state;
    snd_una = 0;
    snd_nxt = 0;
    snd_max = 0;
    app_remaining = Some 0;
    fin_queued = false;
    fin_sent = false;
    cwnd = 2 * mss;
    ssthresh = 64 * 1024;
    peer_rwnd = rwnd;
    dup_acks = 0;
    in_recovery = false;
    recover = 0;
    srtt = 0.0;
    rttvar = 0.0;
    rto = initial_rto;
    rtt_seq = None;
    rtt_sent_at = Time.zero;
    retransmitted_since_sample = false;
    rto_timer = None;
    last_send = Time.zero;
    initial_rto;
    rcv_nxt = 0;
    ooo = [];
    fin_rcvd_at = None;
    fin_consumed = false;
    acks_owed = 0;
    ack_timer = None;
    bytes_delivered = 0;
    retransmits = 0;
    timeouts = 0;
    cwnd_hist = Vini_std.Histogram.create ();
    deliver_hook = (fun _ -> ());
    segment_hook = (fun _ -> ());
    established_hook = (fun () -> ());
    closed_hook = (fun () -> ());
  }

let flight t = t.snd_nxt - t.snd_una

let adv_window t =
  let ooo_bytes = List.fold_left (fun acc (_, l) -> acc + l) 0 t.ooo in
  max 0 (t.rwnd_limit - ooo_bytes)

let emit t ?(syn = false) ?(ack = true) ?(fin = false) ~seq ~payload_len () =
  let seg =
    {
      Packet.sport = t.local_port;
      dport = t.remote_port;
      seq;
      ack = t.rcv_nxt;
      flags = { Packet.syn; ack; fin; rst = false };
      window = adv_window t;
      payload_len;
      sent_ns = Engine.now t.engine;
    }
  in
  if ack then begin
    t.acks_owed <- 0;
    (match t.ack_timer with Some h -> Engine.cancel h | None -> ());
    t.ack_timer <- None
  end;
  Ipstack.send t.stack
    (Packet.tcp ~src:(Ipstack.local_addr t.stack) ~dst:t.remote seg)

let component t = Printf.sprintf "tcp:%d" t.local_port

let trace_retransmit t what =
  if Trace.on Trace.Category.Custom then
    Trace.emit ~severity:Trace.Warn ~component:(component t)
      (Trace.Custom what)

let cancel_rto t =
  (match t.rto_timer with Some h -> Engine.cancel h | None -> ());
  t.rto_timer <- None

let rec arm_rto t =
  cancel_rto t;
  t.rto_timer <- Some (Engine.after t.engine t.rto (fun () -> on_rto t))

and on_rto t =
  t.rto_timer <- None;
  match t.state with
  | Closed -> ()
  | Syn_sent ->
      t.timeouts <- t.timeouts + 1;
      t.rto <- Time.min max_rto (Time.mul t.rto 2);
      emit t ~syn:true ~ack:false ~seq:0 ~payload_len:0 ();
      arm_rto t
  | Syn_rcvd ->
      t.timeouts <- t.timeouts + 1;
      t.rto <- Time.min max_rto (Time.mul t.rto 2);
      emit t ~syn:true ~seq:0 ~payload_len:0 ();
      arm_rto t
  | Established | Fin_sent ->
      if flight t = 0 && not t.fin_sent then () (* nothing outstanding *)
      else begin
        t.timeouts <- t.timeouts + 1;
        t.ssthresh <- max (flight t / 2) (2 * t.mss);
        t.cwnd <- t.mss;
        t.in_recovery <- false;
        t.dup_acks <- 0;
        t.rto <- Time.min max_rto (Time.mul t.rto 2);
        t.retransmitted_since_sample <- true;
        t.rtt_seq <- None;
        t.snd_nxt <- t.snd_una;
        t.retransmits <- t.retransmits + 1;
        trace_retransmit t "rto-retransmit";
        retransmit_one t;
        arm_rto t
      end

and retransmit_one t =
  if t.fin_sent && t.snd_una >= t.snd_max then
    emit t ~fin:true ~seq:t.snd_max ~payload_len:0 ()
  else begin
    let len = min t.mss (max 0 (t.snd_max - t.snd_una)) in
    if len > 0 then begin
      emit t ~seq:t.snd_una ~payload_len:len ();
      t.snd_nxt <- max t.snd_nxt (t.snd_una + len)
    end
  end

(* Bytes available to send starting at snd_nxt (committed + fresh app data). *)
and available t =
  let committed = max 0 (t.snd_max - t.snd_nxt) in
  let fresh = match t.app_remaining with None -> t.mss | Some r -> max 0 r in
  committed + fresh

and pump t =
  match t.state with
  | Established | Fin_sent ->
      (* Slow-start restart after an idle period (RFC 2861 flavour). *)
      let now = Engine.now t.engine in
      if
        flight t = 0
        && Time.compare t.last_send Time.zero > 0
        && Time.compare (Time.sub now t.last_send) t.rto > 0
      then t.cwnd <- min t.cwnd (2 * t.mss);
      let progress = ref true in
      while !progress do
        (* A floor of one MSS avoids modelling the persist timer. *)
        let window = min t.cwnd (max t.peer_rwnd t.mss) in
        let usable = window - flight t in
        let len = min t.mss (min usable (available t)) in
        if len > 0 then begin
          emit t ~seq:t.snd_nxt ~payload_len:len ();
          if t.rtt_seq = None && not t.retransmitted_since_sample then begin
            t.rtt_seq <- Some (t.snd_nxt + len);
            t.rtt_sent_at <- now
          end;
          let fresh = max 0 (t.snd_nxt + len - t.snd_max) in
          (match t.app_remaining with
          | Some r -> t.app_remaining <- Some (r - fresh)
          | None -> ());
          t.snd_nxt <- t.snd_nxt + len;
          t.snd_max <- max t.snd_max t.snd_nxt;
          t.last_send <- Engine.now t.engine;
          if t.rto_timer = None then arm_rto t
        end
        else progress := false
      done;
      if
        t.fin_queued && not t.fin_sent
        && t.app_remaining = Some 0
        && t.snd_nxt = t.snd_max
      then begin
        t.fin_sent <- true;
        t.state <- Fin_sent;
        emit t ~fin:true ~seq:t.snd_max ~payload_len:0 ();
        t.last_send <- Engine.now t.engine;
        if t.rto_timer = None then arm_rto t
      end
  | Syn_sent | Syn_rcvd | Closed -> ()

let sample_rtt t ack =
  match t.rtt_seq with
  | Some seq when ack >= seq ->
      t.rtt_seq <- None;
      if not t.retransmitted_since_sample then begin
        let rtt = Time.to_sec_f (Time.sub (Engine.now t.engine) t.rtt_sent_at) in
        if t.srtt = 0.0 then begin
          t.srtt <- rtt;
          t.rttvar <- rtt /. 2.0
        end
        else begin
          let err = rtt -. t.srtt in
          t.srtt <- t.srtt +. (0.125 *. err);
          t.rttvar <- t.rttvar +. (0.25 *. (Float.abs err -. t.rttvar))
        end;
        t.rto <- Time.max min_rto (Time.of_sec_f (t.srtt +. (4.0 *. t.rttvar)))
      end;
      t.retransmitted_since_sample <- false
  | Some _ | None -> ()

let grow_cwnd t acked =
  if t.cwnd < t.ssthresh then t.cwnd <- t.cwnd + min acked t.mss
  else t.cwnd <- t.cwnd + max 1 (t.mss * t.mss / t.cwnd);
  Vini_std.Histogram.add t.cwnd_hist (float_of_int t.cwnd)

let send_ack_now t = emit t ~seq:t.snd_nxt ~payload_len:0 ()

let schedule_ack t ~immediate =
  t.acks_owed <- t.acks_owed + 1;
  if immediate || t.acks_owed >= 2 then send_ack_now t
  else if t.ack_timer = None then
    t.ack_timer <-
      Some
        (Engine.after t.engine delayed_ack (fun () ->
             t.ack_timer <- None;
             if t.acks_owed > 0 then send_ack_now t))

(* Merge an in-flight data range into receive state; returns in-order bytes
   newly available to the application. *)
let receive_data t seq len =
  if len = 0 then 0
  else begin
    let seg_end = seq + len in
    if seg_end <= t.rcv_nxt then 0
    else if seq > t.rcv_nxt then begin
      let start = max seq t.rcv_nxt in
      let merged = List.sort compare ((start, seg_end - start) :: t.ooo) in
      let rec coalesce = function
        | (s1, l1) :: (s2, l2) :: rest when s2 <= s1 + l1 ->
            coalesce ((s1, max l1 (s2 + l2 - s1)) :: rest)
        | x :: rest -> x :: coalesce rest
        | [] -> []
      in
      t.ooo <- coalesce merged;
      0
    end
    else begin
      let advance = seg_end - t.rcv_nxt in
      t.rcv_nxt <- seg_end;
      let rec absorb acc = function
        | (s, l) :: rest when s <= t.rcv_nxt ->
            let e = s + l in
            if e > t.rcv_nxt then begin
              let extra = e - t.rcv_nxt in
              t.rcv_nxt <- e;
              absorb (acc + extra) rest
            end
            else absorb acc rest
        | rest ->
            t.ooo <- rest;
            acc
      in
      let extra = absorb 0 t.ooo in
      advance + extra
    end
  end

let become_established t =
  if t.state <> Established then begin
    t.state <- Established;
    cancel_rto t;
    t.rto <- t.initial_rto;
    t.established_hook ()
  end

let enter_closed t =
  if t.state <> Closed then begin
    t.state <- Closed;
    cancel_rto t;
    (match t.ack_timer with Some h -> Engine.cancel h | None -> ());
    t.ack_timer <- None;
    t.closed_hook ()
  end

let process_ack t (seg : Packet.tcp) =
  t.peer_rwnd <- seg.Packet.window;
  let ack = seg.Packet.ack in
  (* FIN acked: ack covers the virtual FIN byte. *)
  if t.fin_sent && ack > t.snd_max then begin
    t.snd_una <- t.snd_max;
    enter_closed t
  end
  else if ack > t.snd_una then begin
    let newly = ack - t.snd_una in
    t.snd_una <- ack;
    if t.snd_nxt < t.snd_una then t.snd_nxt <- t.snd_una;
    sample_rtt t ack;
    if t.in_recovery then begin
      if ack >= t.recover then begin
        t.in_recovery <- false;
        t.dup_acks <- 0;
        t.cwnd <- t.ssthresh
      end
      else begin
        (* NewReno partial ack: the next hole is lost too. *)
        t.retransmits <- t.retransmits + 1;
        t.retransmitted_since_sample <- true;
        retransmit_one t
      end
    end
    else begin
      t.dup_acks <- 0;
      grow_cwnd t newly
    end;
    if flight t > 0 || (t.fin_sent && t.state <> Closed) then arm_rto t
    else cancel_rto t;
    pump t
  end
  else if ack = t.snd_una && seg.Packet.payload_len = 0 && flight t > 0 then begin
    t.dup_acks <- t.dup_acks + 1;
    if t.dup_acks = 3 && not t.in_recovery then begin
      t.in_recovery <- true;
      t.recover <- t.snd_max;
      t.ssthresh <- max (flight t / 2) (2 * t.mss);
      t.cwnd <- t.ssthresh + (3 * t.mss);
      t.retransmits <- t.retransmits + 1;
      t.retransmitted_since_sample <- true;
      trace_retransmit t "fast-retransmit";
      retransmit_one t
    end
    else if t.dup_acks > 3 then begin
      t.cwnd <- t.cwnd + t.mss;
      pump t
    end
  end

let process_data t (seg : Packet.tcp) =
  let fresh = receive_data t seg.Packet.seq seg.Packet.payload_len in
  if fresh > 0 then begin
    t.bytes_delivered <- t.bytes_delivered + fresh;
    t.deliver_hook fresh
  end;
  (match (seg.Packet.flags.Packet.fin, t.fin_rcvd_at) with
  | true, None -> t.fin_rcvd_at <- Some (seg.Packet.seq + seg.Packet.payload_len)
  | _ -> ());
  let fin_now =
    match t.fin_rcvd_at with
    | Some fseq when (not t.fin_consumed) && fseq = t.rcv_nxt ->
        t.fin_consumed <- true;
        t.rcv_nxt <- t.rcv_nxt + 1; (* consume the virtual FIN byte *)
        true
    | Some _ | None -> false
  in
  if fin_now then begin
    send_ack_now t;
    enter_closed t
  end
  else if seg.Packet.payload_len > 0 then
    (* Duplicate or out-of-order data wants an immediate (dup) ack. *)
    schedule_ack t ~immediate:(fresh = 0 || t.ooo <> [])

let handle_segment t (pkt : Packet.t) (seg : Packet.tcp) =
  t.segment_hook pkt;
  match t.state with
  | Closed ->
      (* Ack retransmitted FINs so the peer can finish, too. *)
      if seg.Packet.flags.Packet.fin then send_ack_now t
  | Syn_sent ->
      if seg.Packet.flags.Packet.syn && seg.Packet.flags.Packet.ack then begin
        become_established t;
        send_ack_now t;
        pump t
      end
      else if seg.Packet.flags.Packet.syn then begin
        (* Simultaneous open. *)
        t.state <- Syn_rcvd;
        emit t ~syn:true ~seq:0 ~payload_len:0 ()
      end
  | Syn_rcvd ->
      if seg.Packet.flags.Packet.syn && not seg.Packet.flags.Packet.ack then
        (* Retransmitted SYN: answer again. *)
        emit t ~syn:true ~seq:0 ~payload_len:0 ()
      else if seg.Packet.flags.Packet.ack then begin
        become_established t;
        process_ack t seg;
        process_data t seg;
        pump t
      end
  | Established | Fin_sent ->
      if seg.Packet.flags.Packet.syn then
        (* Lost our SYN-ACK's ack; peer repeats SYN. *)
        emit t ~syn:true ~seq:0 ~payload_len:0 ()
      else begin
        if seg.Packet.flags.Packet.ack then process_ack t seg;
        if t.state <> Closed then begin
          process_data t seg;
          pump t
        end
      end

let attach t =
  Ipstack.bind_tcp t.stack ~port:t.local_port (fun pkt ->
      match pkt.Packet.proto with
      | Packet.Tcp seg -> handle_segment t pkt seg
      | Packet.Udp _ | Packet.Icmp _ -> ())

let connect ~stack ~dst ~dst_port ?(rwnd = default_rwnd) ?(mss = default_mss)
    ?(initial_rto = Time.sec 1) () =
  let local_port = Ipstack.alloc_ephemeral stack in
  let t =
    make ~stack ~local_port ~remote:dst ~remote_port:dst_port ~rwnd ~mss
      ~initial_rto Syn_sent
  in
  attach t;
  emit t ~syn:true ~ack:false ~seq:0 ~payload_len:0 ();
  arm_rto t;
  t

let listen ~stack ~port ?(rwnd = default_rwnd) ?(mss = default_mss) ~on_accept
    () =
  let conns : (Vini_net.Addr.t * int, t) Hashtbl.t = Hashtbl.create 16 in
  Ipstack.bind_tcp stack ~port (fun pkt ->
      match pkt.Packet.proto with
      | Packet.Tcp seg -> (
          let key = (pkt.Packet.src, seg.Packet.sport) in
          match Hashtbl.find_opt conns key with
          | Some t -> handle_segment t pkt seg
          | None ->
              if seg.Packet.flags.Packet.syn && not seg.Packet.flags.Packet.ack
              then begin
                let t =
                  make ~stack ~local_port:port ~remote:pkt.Packet.src
                    ~remote_port:seg.Packet.sport ~rwnd ~mss
                    ~initial_rto:(Time.sec 1) Syn_rcvd
                in
                Hashtbl.replace conns key t;
                on_accept t;
                emit t ~syn:true ~seq:0 ~payload_len:0 ();
                arm_rto t
              end)
      | Packet.Udp _ | Packet.Icmp _ -> ())

let send t n =
  if n < 0 then invalid_arg "Tcp.send: negative length";
  (match t.app_remaining with
  | Some r -> t.app_remaining <- Some (r + n)
  | None -> ());
  pump t

let send_forever t =
  t.app_remaining <- None;
  pump t

let close t =
  t.fin_queued <- true;
  pump t

let on_deliver t f = t.deliver_hook <- f
let on_segment_arrival t f = t.segment_hook <- f
let on_established t f = t.established_hook <- f
let on_closed t f = t.closed_hook <- f

let stats t =
  {
    bytes_acked = min t.snd_una t.snd_max;
    bytes_delivered = t.bytes_delivered;
    retransmits = t.retransmits;
    timeouts = t.timeouts;
    srtt = t.srtt;
    cwnd = t.cwnd;
    state = state_name t.state;
  }

let is_established t = t.state = Established
let local_port t = t.local_port
let cwnd_hist t = t.cwnd_hist
