(** TCP Reno over any {!Vini_phys.Ipstack.t}.

    Segment-level TCP with the behaviours the paper's experiments exercise:
    slow start and congestion avoidance, triple-duplicate-ACK fast
    retransmit with NewReno-style partial-ack recovery, Jacobson/Karels
    RTO estimation with Karn's rule and exponential backoff, a fixed
    advertised receive window (iperf's default 16 KB limits §5.2's
    transfer to ~3 Mb/s), delayed ACKs, and slow-start restart after idle
    (visible in Figure 9(b) when the route heals).

    Payload bytes are counted, not materialised; sequence-number
    bookkeeping is exact, so delivery is provably in-order and complete —
    a property the test suite checks under loss. *)

type t

type stats = {
  bytes_acked : int;          (** sender view *)
  bytes_delivered : int;      (** receiver view, in-order *)
  retransmits : int;
  timeouts : int;
  srtt : float;               (** seconds; 0 until first sample *)
  cwnd : int;
  state : string;
}

val default_mss : int
val default_rwnd : int
(** 16 KB — iperf 1.7.0's default window (§5.2). *)

val connect :
  stack:Vini_phys.Ipstack.t ->
  dst:Vini_net.Addr.t ->
  dst_port:int ->
  ?rwnd:int ->
  ?mss:int ->
  ?initial_rto:Vini_sim.Time.t ->
  unit ->
  t
(** Active open; the SYN goes out immediately. *)

val listen :
  stack:Vini_phys.Ipstack.t ->
  port:int ->
  ?rwnd:int ->
  ?mss:int ->
  on_accept:(t -> unit) ->
  unit ->
  unit
(** Passive open; each new remote endpoint yields an accepted connection. *)

val send : t -> int -> unit
(** Append [n] bytes to the application send stream. *)

val send_forever : t -> unit
(** Unbounded source (the iperf client). *)

val close : t -> unit
(** Send FIN once everything queued has been delivered. *)

val on_deliver : t -> (int -> unit) -> unit
(** Called with each chunk of in-order bytes as the receiver app reads. *)

val on_segment_arrival : t -> (Vini_net.Packet.t -> unit) -> unit
(** tcpdump hook: every segment this endpoint receives. *)

val on_established : t -> (unit -> unit) -> unit
val on_closed : t -> (unit -> unit) -> unit

val stats : t -> stats
val is_established : t -> bool
val local_port : t -> int

val cwnd_hist : t -> Vini_std.Histogram.t
(** Congestion-window samples (bytes), one per ack that advanced
    [snd_una] — the cwnd-over-time story as a distribution.  Retransmits
    additionally emit [Custom] trace events ("rto-retransmit" /
    "fast-retransmit") when tracing is live. *)
