(* Ring-buffer FIFO.  The stdlib [Queue] allocates a cell per push;
   packet queues sit on the forwarding hot path (socket receive buffers,
   shaper queues, click input rings), so this implementation keeps
   steady-state push/pop allocation-free: a circular array that doubles
   when full and never shrinks.

   There is no caller-supplied dummy element (the interface predates the
   ring), so the backing array is allocated lazily from the first pushed
   element and popped slots are NOT cleared — a vacated slot retains its
   last value until a later push overwrites it.  For the bounded queues
   this type models the pinned values are the most recently dequeued
   entries, re-overwritten within one queue-depth of pushes, so the
   retention window is tiny and constant. *)

type 'a t = {
  mutable ring : 'a array; (* [||] until the first push *)
  mutable head : int;      (* next pop position *)
  mutable len : int;
  size_of : 'a -> int;
  max_packets : int option;
  max_bytes : int option;
  mutable bytes : int;
  mutable drops : int;
}

let create ?max_packets ?max_bytes ~size_of () =
  {
    ring = [||];
    head = 0;
    len = 0;
    size_of;
    max_packets;
    max_bytes;
    bytes = 0;
    drops = 0;
  }

(* Doubling copy; [fill] seeds the fresh array so it has the right tag
   even when ['a] is [float]. *)
let grow t fill =
  let cap = Array.length t.ring in
  let cap' = if cap = 0 then 16 else 2 * cap in
  let ring' = Array.make cap' fill in
  for i = 0 to t.len - 1 do
    ring'.(i) <- t.ring.((t.head + i) mod cap)
  done;
  t.ring <- ring';
  t.head <- 0

let would_overflow t x =
  let over_packets =
    match t.max_packets with None -> false | Some m -> t.len >= m
  in
  let over_bytes =
    match t.max_bytes with
    | None -> false
    | Some m -> t.bytes + t.size_of x > m
  in
  over_packets || over_bytes

let push t x =
  if would_overflow t x then begin
    t.drops <- t.drops + 1;
    false
  end
  else begin
    if t.len = Array.length t.ring then grow t x;
    let tail = (t.head + t.len) mod Array.length t.ring in
    t.ring.(tail) <- x;
    t.len <- t.len + 1;
    t.bytes <- t.bytes + t.size_of x;
    true
  end

let pop t =
  if t.len = 0 then None
  else begin
    let x = t.ring.(t.head) in
    t.head <- (t.head + 1) mod Array.length t.ring;
    t.len <- t.len - 1;
    t.bytes <- t.bytes - t.size_of x;
    Some x
  end

let peek t = if t.len = 0 then None else Some t.ring.(t.head)

(* O(1) on the ring: position i is a modular index from head.  Lets a
   burst-scheduling consumer cost the next k entries without popping. *)
let peek_at t i =
  if i < 0 || i >= t.len then None
  else Some t.ring.((t.head + i) mod Array.length t.ring)
let length t = t.len
let bytes t = t.bytes
let is_empty t = t.len = 0

(* Dropping the array releases every retained reference; the next push
   reallocates at the initial capacity. *)
let clear t =
  t.ring <- [||];
  t.head <- 0;
  t.len <- 0;
  t.bytes <- 0

let drops t = t.drops
