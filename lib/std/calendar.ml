(* A calendar queue (Brown 1988): an array of buckets, each covering a
   [width]-nanosecond window of the key space, revisited once per "year"
   (nbuckets * width).  Each bucket holds its entries sorted by (key, seq),
   so the head of the cursor's bucket is the next event whenever it falls
   inside the cursor's current window.  Under the steady-state churn a
   discrete-event simulation produces (pop the earliest event, push a few
   more a bounded horizon ahead) both push and pop touch O(1) entries
   amortized; resizes keep the bucket count proportional to occupancy.

   Keys are native ints throughout: a 63-bit int holds 146 years of
   nanoseconds, and native arithmetic keeps the per-operation bucket math
   unboxed and allocation-free.  Out-of-range keys clamp to the
   representable maximum; the (key, seq) order is unchanged by clamping,
   so pop order matches an unbounded-key implementation for in-range
   workloads. *)

type 'a entry = { key : int; seq : int; value : 'a }

type 'a t = {
  mutable buckets : 'a entry list array; (* each sorted ascending (key, seq) *)
  mutable width : int;                   (* bucket window, ns; >= 1 *)
  mutable size : int;
  mutable cur_start : int;               (* start of the cursor's window;
                                            no entry has key < cur_start *)
  mutable next_seq : int;
  min_buckets : int;
  max_buckets : int;
}

let default_min_buckets = 16
let default_max_buckets = 1 lsl 16

(* Leave headroom above every representable key so [start + width] in the
   scan below cannot overflow. *)
let max_key = max_int / 2

let clamp_key key = if key < 0 then 0 else if key > max_key then max_key else key

let create ?(nbuckets = default_min_buckets) ?(width = 1_000_000) () =
  if nbuckets < 1 then invalid_arg "Calendar.create: nbuckets < 1";
  if width < 1 then invalid_arg "Calendar.create: width < 1";
  {
    buckets = Array.make nbuckets [];
    width = (if width > max_key then max_key else width);
    size = 0;
    cur_start = 0;
    next_seq = 0;
    min_buckets = nbuckets;
    max_buckets = max nbuckets default_max_buckets;
  }

let length t = t.size
let is_empty t = t.size = 0

(* key >= 0 always (clamped in push). *)
let bucket_of t key = key / t.width mod Array.length t.buckets
let align t key = key / t.width * t.width

(* Sorted insert by (key, seq).  The seq tie-break matters on resize, where
   entries are reinserted in arbitrary order and must land back in FIFO
   position.  Not tail-recursive; bucket occupancy is O(1) amortized by
   the resize policy. *)
let rec insert_sorted e l =
  match l with
  | x :: rest when x.key < e.key || (x.key = e.key && x.seq < e.seq) ->
      x :: insert_sorted e rest
  | _ -> e :: l

let reinsert t e =
  let b = bucket_of t e.key in
  t.buckets.(b) <- insert_sorted e t.buckets.(b)

(* Rebuild with a bucket count tracking occupancy and a width equal to the
   mean inter-event gap (span / size), so one bucket-year pass visits ~one
   event per bucket.  Deterministic: parameters depend only on contents. *)
let resize t nbuckets' =
  let entries = ref [] in
  Array.iteri
    (fun i l ->
      entries := List.rev_append l !entries;
      t.buckets.(i) <- [])
    t.buckets;
  let lo = ref max_int and hi = ref min_int in
  List.iter
    (fun e ->
      if e.key < !lo then lo := e.key;
      if e.key > !hi then hi := e.key)
    !entries;
  let nbuckets' = min t.max_buckets (max t.min_buckets nbuckets') in
  if Array.length t.buckets <> nbuckets' then
    t.buckets <- Array.make nbuckets' [];
  (if t.size > 0 then begin
     (* Width from the median inter-event gap rather than the mean
        ((hi - lo) / size): a handful of far-future entries (protocol
        timers scheduled seconds ahead of a microsecond-spaced packet
        cluster) stretch the mean so far that the whole cluster collapses
        into one bucket and push degrades to a linear sorted insert.  The
        median ignores the outliers and tracks the cluster's own spacing.
        Deterministic: depends only on the queue's contents. *)
     let keys = Array.make t.size 0 in
     List.iteri (fun i e -> keys.(i) <- e.key) !entries;
     Array.sort Int.compare keys;
     let gaps = Array.make (max 1 (t.size - 1)) 0 in
     let ngaps = ref 0 in
     for i = 1 to t.size - 1 do
       let g = keys.(i) - keys.(i - 1) in
       if g > 0 then begin
         gaps.(!ngaps) <- g;
         incr ngaps
       end
     done;
     (if !ngaps = 0 then t.width <- 1
      else begin
        let sub = Array.sub gaps 0 !ngaps in
        Array.sort Int.compare sub;
        t.width <- max 1 sub.(!ngaps / 2)
      end);
     t.cur_start <- align t !lo
   end);
  List.iter (reinsert t) !entries

let maybe_grow t =
  if t.size > 2 * Array.length t.buckets && Array.length t.buckets < t.max_buckets
  then resize t (2 * Array.length t.buckets)

let maybe_shrink t =
  if
    4 * t.size < Array.length t.buckets
    && Array.length t.buckets > t.min_buckets
  then resize t (Array.length t.buckets / 2)

let push t ~key value =
  let key = clamp_key key in
  let e = { key; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  (* A key below the cursor (possible after ~until fast-forwards, or on a
     freshly-resized queue) rewinds the cursor so the scan can't miss it. *)
  if key < t.cur_start then t.cur_start <- align t key;
  reinsert t e;
  t.size <- t.size + 1;
  maybe_grow t

(* Sparse fallback: direct search for the min (key, seq) over bucket heads.
   Heads suffice: buckets are sorted.  Returns the bucket index (-1 when
   empty) rather than the entry, so the common caller path allocates
   nothing. *)
let find_min_direct t =
  let best_b = ref (-1) and best_key = ref 0 and best_seq = ref 0 in
  Array.iteri
    (fun b l ->
      match l with
      | [] -> ()
      | e :: _ ->
          if
            !best_b < 0 || e.key < !best_key
            || (e.key = !best_key && e.seq < !best_seq)
          then begin
            best_b := b;
            best_key := e.key;
            best_seq := e.seq
          end)
    t.buckets;
  if !best_b >= 0 then t.cur_start <- align t !best_key;
  !best_b

(* Locate the earliest entry's bucket and commit the cursor to its window.
   One bucket-year of windows is scanned from the cursor (consecutive
   windows map to consecutive buckets, so the walk is one add and one wrap
   test per window); on a miss (all remaining events lie a year or more
   ahead — a sparse queue) fall back to the direct min scan.  Returns -1
   when empty. *)
let find_min t =
  if t.size = 0 then -1
  else begin
    let nb = Array.length t.buckets in
    let w = t.width in
    let rec scan i start b =
      if i >= nb then find_min_direct t
      else
        match t.buckets.(b) with
        | e :: _ when e.key < start + w ->
            t.cur_start <- start;
            b
        | _ ->
            let b = b + 1 in
            scan (i + 1) (start + w) (if b = nb then 0 else b)
    in
    scan 0 t.cur_start (bucket_of t t.cur_start)
  end

let min_key t =
  match find_min t with
  | -1 -> max_int
  | b -> ( match t.buckets.(b) with e :: _ -> e.key | [] -> assert false)

let peek t =
  match find_min t with
  | -1 -> None
  | b -> ( match t.buckets.(b) with e :: _ -> Some e.value | [] -> assert false)

let pop t =
  match find_min t with
  | -1 -> None
  | b -> (
      match t.buckets.(b) with
      | e :: rest ->
          t.buckets.(b) <- rest;
          t.size <- t.size - 1;
          maybe_shrink t;
          Some e.value
      | [] -> assert false)

let compact t ~dead =
  let removed = ref 0 in
  Array.iteri
    (fun i l ->
      let l' = List.filter (fun e -> not (dead e.value)) l in
      removed := !removed + (List.length l - List.length l');
      t.buckets.(i) <- l')
    t.buckets;
  t.size <- t.size - !removed;
  maybe_shrink t;
  !removed

let clear t =
  Array.fill t.buckets 0 (Array.length t.buckets) [];
  t.size <- 0;
  t.cur_start <- 0

let nbuckets t = Array.length t.buckets
let width t = t.width

let iter t f =
  Array.iter (fun l -> List.iter (fun e -> f e.value) l) t.buckets
