(** Bounded FIFO with byte accounting.

    Models drop-tail queues: a NIC transmit queue, a UDP socket receive
    buffer, a Click [Queue] element.  The bound may be expressed in packets,
    in bytes, or both; pushes that would exceed either bound are rejected
    (the caller counts the drop).

    Backed by a circular array that doubles when full and never shrinks,
    so steady-state pushes allocate nothing (the stdlib [Queue] allocates
    a cell per push — measurable on the forwarding hot path).  Popped
    slots retain their last value until overwritten by a later push; the
    retention window is bounded by one queue depth. *)

type 'a t

val create : ?max_packets:int -> ?max_bytes:int -> size_of:('a -> int) -> unit -> 'a t
(** [size_of] reports an element's size in bytes.  Omitted bounds are
    unlimited. *)

val push : 'a t -> 'a -> bool
(** [push t x] enqueues and returns [true], or returns [false] (drop-tail)
    when a bound would be exceeded. *)

val pop : 'a t -> 'a option

val peek : 'a t -> 'a option

val peek_at : 'a t -> int -> 'a option
(** [peek_at t i] is the [i]-th queued element counting from the head
    ([peek_at t 0 = peek t]) without removing it; [None] when [i] is out
    of range.  O(1).  Lets a burst scheduler cost the next [k] packets
    before committing to a service slice. *)

val length : 'a t -> int
val bytes : 'a t -> int
val is_empty : 'a t -> bool
val clear : 'a t -> unit
val drops : 'a t -> int
(** Number of rejected pushes since creation. *)
