(* An array-based binary min-heap ordered by (key, seq), specialised for
   the simulation engine's event queues.  The calendar queue
   ({!Calendar}) amortises well on width-matched workloads but pays a
   window scan per pop and a sorted list insert per push; at the queue
   depths a VINI deployment sustains (tens to a few hundred pending
   events) the heap's ~log2 n integer compares win, every operation works
   in preallocated parallel arrays (push and pop allocate nothing beyond
   [pop]'s option), and [min_key] — the breath-coalescing test the engine
   runs on every inline-eligible schedule — is a single array load.

   Determinism: entries carry an insertion sequence number and the heap
   orders by (key, seq), so pop order is exactly FIFO within a timestamp
   — bit-identical to {!Calendar} and to the binary-heap scheduler before
   it.  Keys clamp to the same range as {!Calendar} ([0, max_int/2]);
   clamping preserves (key, seq) order. *)

type 'a t = {
  mutable keys : int array;
  mutable seqs : int array;
  mutable vals : 'a array;
  mutable size : int;
  mutable next_seq : int;
  dummy : 'a; (* fills vacated slots so the heap never pins dead values *)
}

let max_key = max_int / 2
let clamp_key key = if key < 0 then 0 else if key > max_key then max_key else key

let create ?(capacity = 16) ~dummy () =
  let capacity = max capacity 1 in
  {
    keys = Array.make capacity 0;
    seqs = Array.make capacity 0;
    vals = Array.make capacity dummy;
    size = 0;
    next_seq = 0;
    dummy;
  }

let length t = t.size
let is_empty t = t.size = 0

let grow t =
  let cap = Array.length t.keys in
  let cap' = 2 * cap in
  let keys = Array.make cap' 0 in
  Array.blit t.keys 0 keys 0 cap;
  t.keys <- keys;
  let seqs = Array.make cap' 0 in
  Array.blit t.seqs 0 seqs 0 cap;
  t.seqs <- seqs;
  let vals = Array.make cap' t.dummy in
  Array.blit t.vals 0 vals 0 cap;
  t.vals <- vals

(* Hole-based sift: carry the moving entry in registers and shift blocking
   entries into the hole, one move per level instead of a three-array
   swap.  [sift_up]/[sift_down] place entry (k, s, v) starting from the
   hole at [i]. *)
let sift_up t i k s v =
  let keys = t.keys and seqs = t.seqs and vals = t.vals in
  let i = ref i in
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    let pk = Array.unsafe_get keys p in
    if pk > k || (pk = k && Array.unsafe_get seqs p > s) then begin
      Array.unsafe_set keys !i pk;
      Array.unsafe_set seqs !i (Array.unsafe_get seqs p);
      Array.unsafe_set vals !i (Array.unsafe_get vals p);
      i := p
    end
    else continue := false
  done;
  Array.unsafe_set keys !i k;
  Array.unsafe_set seqs !i s;
  Array.unsafe_set vals !i v

let sift_down t i k s v =
  let keys = t.keys and seqs = t.seqs and vals = t.vals in
  let n = t.size in
  let i = ref i in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 in
    if l >= n then continue := false
    else begin
      let r = l + 1 in
      let m =
        if r < n then begin
          let lk = Array.unsafe_get keys l and rk = Array.unsafe_get keys r in
          if rk < lk || (rk = lk && Array.unsafe_get seqs r < Array.unsafe_get seqs l)
          then r
          else l
        end
        else l
      in
      let mk = Array.unsafe_get keys m in
      if mk < k || (mk = k && Array.unsafe_get seqs m < s) then begin
        Array.unsafe_set keys !i mk;
        Array.unsafe_set seqs !i (Array.unsafe_get seqs m);
        Array.unsafe_set vals !i (Array.unsafe_get vals m);
        i := m
      end
      else continue := false
    end
  done;
  Array.unsafe_set keys !i k;
  Array.unsafe_set seqs !i s;
  Array.unsafe_set vals !i v

let push t ~key value =
  if t.size = Array.length t.keys then grow t;
  let i = t.size in
  let s = t.next_seq in
  t.next_seq <- s + 1;
  t.size <- i + 1;
  sift_up t i (clamp_key key) s value

(* [max_int] when empty: no clamped key can reach it, so the engine's run
   loops use it as an unambiguous "nothing pending" sentinel. *)
let min_key t = if t.size = 0 then max_int else t.keys.(0)

let peek t = if t.size = 0 then None else Some t.vals.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let v = t.vals.(0) in
    let n = t.size - 1 in
    t.size <- n;
    if n > 0 then begin
      let lk = t.keys.(n) and ls = t.seqs.(n) and lv = t.vals.(n) in
      t.vals.(n) <- t.dummy;
      sift_down t 0 lk ls lv
    end
    else t.vals.(0) <- t.dummy;
    Some v
  end

(* Drop entries whose value satisfies [dead], then restore the heap
   property bottom-up.  Pop order over the survivors is unchanged: it is
   determined by the (key, seq) comparator, not the array layout. *)
let compact t ~dead =
  let kept = ref 0 in
  for i = 0 to t.size - 1 do
    if not (dead t.vals.(i)) then begin
      t.keys.(!kept) <- t.keys.(i);
      t.seqs.(!kept) <- t.seqs.(i);
      t.vals.(!kept) <- t.vals.(i);
      incr kept
    end
  done;
  let removed = t.size - !kept in
  for i = !kept to t.size - 1 do
    t.vals.(i) <- t.dummy
  done;
  t.size <- !kept;
  for i = (t.size / 2) - 1 downto 0 do
    sift_down t i t.keys.(i) t.seqs.(i) t.vals.(i)
  done;
  removed

let clear t =
  for i = 0 to t.size - 1 do
    t.vals.(i) <- t.dummy
  done;
  t.size <- 0

let iter t f =
  for i = 0 to t.size - 1 do
    f t.vals.(i)
  done
