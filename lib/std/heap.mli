(** Array-backed binary min-heap.

    Used by Dijkstra ({!Vini_topo.Graph}) and OSPF's SPF runs; the event
    queue moved to {!Calendar}, which matches this heap's pop order
    exactly.  Elements are ordered by a comparison function supplied at
    creation; ties are broken by insertion order so the heap is stable,
    which keeps simulation runs deterministic when many elements compare
    equal.

    Complexity: {!push} and {!pop} are O(log n); {!peek}, {!length} and
    {!is_empty} are O(1).  The backing array doubles on demand and is
    never shrunk. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** O(log n) amortized (worst case O(n) when the backing array grows). *)

val peek : 'a t -> 'a option
(** Smallest element without removing it, O(1). *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element, O(log n).  Among elements
    that compare equal, the one pushed first pops first (stability). *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Snapshot of the contents in arbitrary order. *)
