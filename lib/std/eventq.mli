(** The engine's event queue: an array-based binary min-heap ordered by
    (key, insertion seq).

    Same contract as {!Calendar} — keys are nanosecond timestamps clamped
    to [\[0, max_int/2\]], and entries with equal keys pop strictly FIFO,
    so a seeded simulation is bit-identical whichever queue implementation
    the engine uses.  The heap wins at the queue depths a deployment
    sustains (tens to a few hundred pending events): push and pop are a
    handful of integer compares in preallocated parallel arrays, and
    {!min_key} — probed on every breath-coalescing decision and run-loop
    iteration — is a single array load instead of a window scan.

    Not thread-safe; one queue per engine shard. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [dummy] fills vacated slots so popped values are not pinned against
    the GC; it is never returned.  [capacity] (default 16) is the initial
    array size; the arrays double as needed and never shrink. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> key:int -> 'a -> unit
(** O(log n), allocation-free (outside array growth).  Negative keys
    clamp to 0, keys above [max_int/2] clamp to [max_int/2]; clamping
    preserves (key, seq) order. *)

val min_key : 'a t -> int
(** Key of the earliest entry; [max_int] when empty (no clamped key can
    reach it).  O(1), allocation-free. *)

val peek : 'a t -> 'a option
(** Earliest entry by (key, seq), without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the earliest entry by (key, seq).  O(log n); the
    option is the only allocation. *)

val compact : 'a t -> dead:('a -> bool) -> int
(** Drop entries whose value satisfies [dead]; returns how many were
    removed.  O(n).  Pop order over survivors is unchanged. *)

val clear : 'a t -> unit

val iter : 'a t -> ('a -> unit) -> unit
(** Iterate in unspecified order. *)
