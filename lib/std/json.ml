type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let num_to_string v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else if Float.is_nan v then "null" (* JSON has no NaN *)
  else if v = infinity then "1e999"
  else if v = neg_infinity then "-1e999"
  else Printf.sprintf "%.17g" v

let escape_string s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_string j =
  let b = Buffer.create 4096 in
  let rec go = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (string_of_bool v)
    | Num v -> Buffer.add_string b (num_to_string v)
    | Str s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape_string s);
        Buffer.add_char b '"'
    | Arr items ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            go x)
          items;
        Buffer.add_char b ']'
    | Obj fields ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            Buffer.add_char b '"';
            Buffer.add_string b (escape_string k);
            Buffer.add_string b "\":";
            go v)
          fields;
        Buffer.add_char b '}'
  in
  go j;
  Buffer.contents b

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("bad literal " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "bad escape";
           match s.[!pos] with
           | '"' -> Buffer.add_char b '"'; advance ()
           | '\\' -> Buffer.add_char b '\\'; advance ()
           | '/' -> Buffer.add_char b '/'; advance ()
           | 'n' -> Buffer.add_char b '\n'; advance ()
           | 'r' -> Buffer.add_char b '\r'; advance ()
           | 't' -> Buffer.add_char b '\t'; advance ()
           | 'b' -> Buffer.add_char b '\b'; advance ()
           | 'f' -> Buffer.add_char b '\012'; advance ()
           | 'u' ->
               if !pos + 4 >= n then fail "bad \\u escape";
               let hex = String.sub s (!pos + 1) 4 in
               let code =
                 try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
               in
               (* Keep it simple: BMP code points as a single byte when
                  ASCII, else UTF-8 encode. *)
               if code < 0x80 then Buffer.add_char b (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                 Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
               end
               else begin
                 Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                 Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                 Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
               end;
               pos := !pos + 5
           | _ -> fail "bad escape");
          go ()
      | c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when numchar c -> true | _ -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> v
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); Arr [] end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List.rev (v :: acc)
            | _ -> fail "expected , or ]"
          in
          Arr (items [])
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields ((k, v) :: acc)
            | Some '}' -> advance (); List.rev ((k, v) :: acc)
            | _ -> fail "expected , or }"
          in
          Obj (fields [])
        end
    | Some _ -> Num (parse_number ())
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing garbage at %d" !pos)
    else Ok v
  with Parse_error msg -> Error msg

(* ---- accessors (for tests and consumers) ------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function Arr items -> Some items | _ -> None
let to_float = function Num v -> Some v | _ -> None
let to_str = function Str s -> Some s | _ -> None
