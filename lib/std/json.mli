(** A minimal JSON tree, printer and parser.

    The repository deliberately has no JSON dependency; every exporter's
    needs (finite floats, plain ASCII-ish strings, round-trippable output
    for tests and CI artifacts) fit in a page of code.  This module is the
    single shared implementation: {!Vini_measure.Export} re-exports it for
    the measurement documents, and the scenario generator uses it directly
    for [vini.topo/1] substrate files, so the two layers stay decoupled.

    Printing is deterministic: field order is the construction order and
    float formatting is locale-independent, so a document built from
    deterministic inputs is byte-identical across runs, hosts, and domain
    counts (the CI determinism gates [cmp] exported files). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact JSON.  Non-finite floats degrade: NaN to [null], infinities to
    [±1e999] (which parse back as infinities). *)

val of_string : string -> (t, string) result
(** Strict parser for documents produced by {!to_string} (and ordinary
    JSON): no trailing garbage, strings with the usual escapes. *)

val num_to_string : float -> string
(** The deterministic float formatting {!to_string} uses for [Num] —
    integral floats print without a fraction, NaN degrades to [null],
    infinities to [±1e999].  Exposed for CSV exporters that must match
    the JSON documents byte-for-byte. *)

(** {2 Accessors} (for tests and consumers) *)

val member : string -> t -> t option
val to_list : t -> t list option
val to_float : t -> float option
val to_str : t -> string option
