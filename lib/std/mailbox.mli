(** Bounded single-producer/single-consumer message ring.

    The cross-shard handoff channel of the sharded engine: each shard owns
    one outbox per peer, fills it while executing a window, and the
    coordinator drains every outbox at the barrier in deterministic
    (source shard id, push order) sequence.  The ring itself is plain
    mutable state — the producer and consumer are synchronised externally
    by the coordinator's barrier (mutex hand-off), so no atomics are
    needed and a drain is a straight array walk.

    Capacity is fixed at creation: a full mailbox refuses the push, which
    the shard runtime turns into a hard error rather than silently
    reordering or dropping a cross-shard event (backpressure must be
    explicit to keep runs reproducible). *)

type 'a t

val create : capacity:int -> 'a t
(** Fixed-capacity ring.  @raise Invalid_argument when [capacity < 1]. *)

val push : 'a t -> 'a -> bool
(** Append in FIFO position; [false] when the mailbox is full (the value
    was not enqueued). *)

val pop : 'a t -> 'a option
(** Remove the oldest message; [None] when empty. *)

val drain : 'a t -> ('a -> unit) -> int
(** Pop every message in FIFO order into the callback; returns how many
    were delivered.  Messages pushed by the callback itself are drained
    too (the coordinator never does this, but the semantics are exact). *)

val length : 'a t -> int
val capacity : 'a t -> int
val is_empty : 'a t -> bool

val clear : 'a t -> unit
(** Drop all queued messages. *)
