(** Calendar queue: a priority queue over non-negative [int] keys
    (nanosecond timestamps) with O(1) amortized push and pop under
    discrete-event-simulation workloads (Brown 1988).

    The key space is cut into fixed-width windows mapped round-robin onto
    an array of buckets, each bucket a list sorted by [(key, seq)] where
    [seq] is the global insertion counter — so equal keys drain strictly in
    insertion order, the same stable tie-break as {!Heap}, and replacing
    one with the other cannot reorder a seeded simulation.  A pop inspects
    the cursor's bucket head (O(1) when the next event is near the cursor,
    the common case), walks at most one bucket-year of windows, and only
    then falls back to a direct O(buckets) min scan for sparse queues.

    Keys are native ints end to end (they match {!Vini_sim.Time.t}): a
    63-bit int holds 146 years of nanoseconds and all bucket math stays
    unboxed, so push/peek hot paths allocate nothing beyond the entry
    record itself.

    Resizes (doubling above 2 entries/bucket, halving below 1/4) rebuild
    with the bucket width set to the mean inter-event gap; parameters are a
    pure function of queue contents, so runs stay deterministic.

    Complexity: push/pop O(1) amortized, worst case O(n) on a resize or a
    degenerate key distribution; {!peek} shares the pop search (and commits
    the cursor advance it discovers); {!compact} and {!clear} are O(n). *)

type 'a t

val create : ?nbuckets:int -> ?width:int -> unit -> 'a t
(** [nbuckets] (default 16) is the initial and minimum bucket count;
    [width] (default 1ms in ns) the initial window — both adapt on resize.
    @raise Invalid_argument when [nbuckets < 1] or [width < 1]. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> key:int -> 'a -> unit
(** Insert with the given key; negative keys clamp to 0 and keys above
    [max_int/2] (146 years of nanoseconds) clamp to that maximum.  Keys
    below every previous pop are legal (the cursor rewinds). *)

val min_key : 'a t -> int
(** Key of the earliest element, or [max_int] when the queue is empty.
    Commits the same cursor advance as {!peek} but allocates nothing —
    the scheduler's "is the next event inside this window?" test. *)

val peek : 'a t -> 'a option
(** Earliest (key, then insertion order) element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the earliest element. *)

val compact : 'a t -> dead:('a -> bool) -> int
(** Drop every element [dead] says is garbage (lazily-deleted events),
    returning how many were removed.  O(n). *)

val clear : 'a t -> unit

val nbuckets : 'a t -> int
(** Current bucket count (introspection for tests and benchmarks). *)

val width : 'a t -> int
(** Current bucket window in key units (ns). *)

val iter : 'a t -> ('a -> unit) -> unit
(** Visit every element in unspecified order. *)
