(* Log-scale bucketed latency histogram.

   Bucket boundaries are powers of gamma = 10^(1/buckets_per_decade), so a
   sample lands in bucket floor(log10 x * buckets_per_decade).  With 20
   buckets per decade the relative width of a bucket is ~12%, and reporting
   the geometric midpoint keeps the quantile error under ~6% — plenty for
   p50/p95/p99 of scheduling and forwarding latencies, at O(1) memory
   regardless of sample count (contrast Stats, which keeps every sample). *)

let buckets_per_decade = 20

(* Index range covers 1e-10 .. 1e10 seconds-ish; everything outside clamps
   into the first/last bucket. *)
let min_idx = -10 * buckets_per_decade
let max_idx = 10 * buckets_per_decade
let n_buckets = max_idx - min_idx + 1

type t = {
  counts : int array;
  mutable nonpositive : int; (* samples <= 0, kept out of the log buckets *)
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () =
  {
    counts = Array.make n_buckets 0;
    nonpositive = 0;
    count = 0;
    sum = 0.0;
    min_v = infinity;
    max_v = neg_infinity;
  }

let idx_of x =
  let i =
    int_of_float (Float.floor (Float.log10 x *. float_of_int buckets_per_decade))
  in
  Stdlib.max min_idx (Stdlib.min max_idx i)

let lower_bound idx = 10.0 ** (float_of_int idx /. float_of_int buckets_per_decade)
let upper_bound idx = 10.0 ** (float_of_int (idx + 1) /. float_of_int buckets_per_decade)

(* Geometric midpoint: the representative value reported for a bucket. *)
let midpoint idx =
  10.0 ** ((float_of_int idx +. 0.5) /. float_of_int buckets_per_decade)

let add t x =
  t.count <- t.count + 1;
  t.sum <- t.sum +. x;
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x;
  if x > 0.0 then begin
    let i = idx_of x - min_idx in
    t.counts.(i) <- t.counts.(i) + 1
  end
  else t.nonpositive <- t.nonpositive + 1

let count t = t.count
let is_empty t = t.count = 0
let sum t = t.sum
let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count
let min t = if t.count = 0 then 0.0 else t.min_v
let max t = if t.count = 0 then 0.0 else t.max_v

let percentile t p =
  if t.count = 0 then 0.0
  else begin
    let rank =
      let r =
        int_of_float (Float.ceil (p /. 100.0 *. float_of_int t.count))
      in
      Stdlib.max 1 (Stdlib.min t.count r)
    in
    if rank <= t.nonpositive then Stdlib.min 0.0 t.min_v
    else begin
      let remaining = ref (rank - t.nonpositive) in
      let result = ref t.max_v in
      (try
         for i = 0 to n_buckets - 1 do
           if t.counts.(i) > 0 then begin
             remaining := !remaining - t.counts.(i);
             if !remaining <= 0 then begin
               result := midpoint (i + min_idx);
               raise Exit
             end
           end
         done
       with Exit -> ());
      (* Clamp to observed extremes so tiny histograms stay sane. *)
      Float.min t.max_v (Float.max t.min_v !result)
    end
  end

let buckets t =
  let acc = ref [] in
  for i = n_buckets - 1 downto 0 do
    if t.counts.(i) > 0 then
      acc := (lower_bound (i + min_idx), upper_bound (i + min_idx), t.counts.(i)) :: !acc
  done;
  if t.nonpositive > 0 then (neg_infinity, 0.0, t.nonpositive) :: !acc else !acc

let merge a b =
  let t = create () in
  Array.blit a.counts 0 t.counts 0 n_buckets;
  Array.iteri (fun i c -> t.counts.(i) <- t.counts.(i) + c) b.counts;
  t.nonpositive <- a.nonpositive + b.nonpositive;
  t.count <- a.count + b.count;
  t.sum <- a.sum +. b.sum;
  t.min_v <- Float.min a.min_v b.min_v;
  t.max_v <- Float.max a.max_v b.max_v;
  t

let clear t =
  Array.fill t.counts 0 n_buckets 0;
  t.nonpositive <- 0;
  t.count <- 0;
  t.sum <- 0.0;
  t.min_v <- infinity;
  t.max_v <- neg_infinity

let pp_summary ppf t =
  Format.fprintf ppf "n=%d p50/p95/p99 = %.3g/%.3g/%.3g" t.count
    (percentile t 50.0) (percentile t 95.0) (percentile t 99.0)
