type 'a t = {
  mutable buf : 'a option array;
  mutable head : int; (* index of the oldest message *)
  mutable len : int;
  cap : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Mailbox.create: capacity < 1";
  (* Start small and grow toward [capacity]: most shard pairs exchange a
     handful of messages per window, a few (backbone links) burst. *)
  { buf = Array.make (min capacity 8) None; head = 0; len = 0; cap = capacity }

let length t = t.len
let capacity t = t.cap
let is_empty t = t.len = 0

let grow t =
  let n = Array.length t.buf in
  let n' = min t.cap (n * 2) in
  let buf' = Array.make n' None in
  for i = 0 to t.len - 1 do
    buf'.(i) <- t.buf.((t.head + i) mod n)
  done;
  t.buf <- buf';
  t.head <- 0

let push t v =
  if t.len = t.cap then false
  else begin
    if t.len = Array.length t.buf then grow t;
    t.buf.((t.head + t.len) mod Array.length t.buf) <- Some v;
    t.len <- t.len + 1;
    true
  end

let pop t =
  if t.len = 0 then None
  else begin
    let v = t.buf.(t.head) in
    t.buf.(t.head) <- None;
    t.head <- (t.head + 1) mod Array.length t.buf;
    t.len <- t.len - 1;
    v
  end

let drain t f =
  let n = ref 0 in
  let rec go () =
    match pop t with
    | None -> ()
    | Some v ->
        incr n;
        f v;
        go ()
  in
  go ();
  !n

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.head <- 0;
  t.len <- 0
