(** Log-scale bucketed histogram for latency-shaped distributions.

    O(1) memory per histogram (fixed bucket array, 20 buckets per decade),
    O(1) insertion, and approximate quantiles with < ~6% relative error —
    the always-on companion to {!Stats}, which is exact but keeps every
    sample.  Non-positive samples are counted in a dedicated bucket so a
    histogram of time deltas survives clock oddities. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val is_empty : t -> bool
val sum : t -> float
val mean : t -> float

val min : t -> float
(** Exact observed minimum; 0 on an empty histogram. *)

val max : t -> float
(** Exact observed maximum; 0 on an empty histogram. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [\[0,100\]]: nearest-rank over the buckets,
    reporting the bucket's geometric midpoint clamped to the observed
    min/max. *)

val buckets : t -> (float * float * int) list
(** Non-empty buckets as [(lower, upper, count)], ascending.  A leading
    [(neg_infinity, 0., n)] entry holds non-positive samples, if any. *)

val merge : t -> t -> t
val clear : t -> unit

val pp_summary : Format.formatter -> t -> unit
(** "n=… p50/p95/p99 = …" one-liner. *)
