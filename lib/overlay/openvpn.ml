module Packet = Vini_net.Packet
module Addr = Vini_net.Addr
module Pnode = Vini_phys.Pnode
module Ipstack = Vini_phys.Ipstack

type t = {
  host : Pnode.t;
  server : Addr.t;
  server_port : int;
  client_port : int;
  tun : Ipstack.t;
  client_vaddr : Addr.t;
  mutable sent : int;
  mutable received : int;
}

let connect ~host ~server ?(server_port = 1194) ~vaddr () =
  let host_stack = Pnode.stack host in
  let client_port = Ipstack.alloc_ephemeral host_stack in
  let rec t =
    lazy
      {
        host;
        server;
        server_port;
        client_port;
        tun =
          Ipstack.create
            ~engine:(Pnode.engine host)
            ~local_addr:vaddr
            ~tx:(fun inner ->
              let t = Lazy.force t in
              t.sent <- t.sent + 1;
              (* OpenVPN ingress: outer frame continues the inner
                 packet's causal tree. *)
              let outer =
                Packet.udp ~orig:inner.Packet.orig ~src:(Pnode.addr t.host)
                  ~dst:t.server ~sport:t.client_port ~dport:t.server_port
                  (Packet.Vpn inner)
              in
              Pnode.send t.host outer)
            ();
        client_vaddr = vaddr;
        sent = 0;
        received = 0;
      }
  in
  let t = Lazy.force t in
  (* Return traffic: decapsulate and hand to the tun stack. *)
  Ipstack.bind_udp host_stack ~port:client_port (fun outer ->
      match outer.Packet.proto with
      | Packet.Udp { body = Packet.Vpn inner; _ } ->
          t.received <- t.received + 1;
          Ipstack.deliver t.tun inner
      | Packet.Udp _ | Packet.Tcp _ | Packet.Icmp _ -> ());
  (* Greet the ingress so it learns where this client lives: a packet to
     our own overlay address bounces off the ingress and back. *)
  Ipstack.send t.tun
    (Packet.udp ~src:vaddr ~dst:vaddr ~sport:client_port ~dport:server_port
       (Packet.Probe { Packet.flow = 0; seq = 0; sent_ns = 0; pad = 16 }));
  t

let stack t = t.tun
let vaddr t = t.client_vaddr
let packets_sent t = t.sent
let packets_received t = t.received
