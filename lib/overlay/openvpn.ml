module Packet = Vini_net.Packet
module Addr = Vini_net.Addr
module Pnode = Vini_phys.Pnode
module Ipstack = Vini_phys.Ipstack

type t = {
  host : Pnode.t;
  server : Addr.t;
  server_port : int;
  client_port : int;
  tun : Ipstack.t;
  client_vaddr : Addr.t;
  mutable sent : int;
  mutable received : int;
}

let connect ~host ~server ?(server_port = 1194) ~vaddr () =
  let host_stack = Pnode.stack host in
  let client_port = Ipstack.alloc_ephemeral host_stack in
  let rec t =
    lazy
      {
        host;
        server;
        server_port;
        client_port;
        tun =
          Ipstack.create
            ~engine:(Pnode.engine host)
            ~local_addr:vaddr
            ~tx:(fun inner ->
              let t = Lazy.force t in
              t.sent <- t.sent + 1;
              (* OpenVPN ingress: outer frame continues the inner
                 packet's causal tree. *)
              let outer =
                Packet.udp ~orig:inner.Packet.orig ~src:(Pnode.addr t.host)
                  ~dst:t.server ~sport:t.client_port ~dport:t.server_port
                  (Packet.Vpn inner)
              in
              Pnode.send t.host outer)
            ();
        client_vaddr = vaddr;
        sent = 0;
        received = 0;
      }
  in
  let t = Lazy.force t in
  (* Return traffic: decapsulate and hand to the tun stack. *)
  Ipstack.bind_udp host_stack ~port:client_port (fun outer ->
      match outer.Packet.proto with
      | Packet.Udp { body = Packet.Vpn inner; _ } ->
          t.received <- t.received + 1;
          Ipstack.deliver t.tun inner
      | Packet.Udp _ | Packet.Tcp _ | Packet.Icmp _ -> ());
  (* Greet the ingress so it learns where this client lives: a packet to
     our own overlay address bounces off the ingress and back. *)
  Ipstack.send t.tun
    (Packet.udp ~src:vaddr ~dst:vaddr ~sport:client_port ~dport:server_port
       (Packet.Probe { Packet.flow = 0; seq = 0; sent_ns = 0; pad = 16 }));
  t

let stack t = t.tun
let vaddr t = t.client_vaddr
let packets_sent t = t.sent
let packets_received t = t.received

(* The opt-in tunnel's wire cost for bulk traffic: the payload is
   packetised at the Ethernet MTU (inner IPv4 header included) and every
   packet pays the outer encapsulation.  Pure arithmetic on the same Wire
   constants the packet model charges, so flow-level accounting in the
   scenario workload agrees with what packet-level simulation would bill. *)
let wire_bytes ~payload =
  if payload <= 0 then 0
  else
    let module Wire = Vini_net.Wire in
    let mss = Wire.ethernet_mtu - Wire.openvpn_overhead - Wire.ipv4_header in
    let packets = (payload + mss - 1) / mss in
    payload + (packets * (Wire.ipv4_header + Wire.openvpn_overhead))
