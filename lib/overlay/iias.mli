(** "Internet In A Slice" — the reference network architecture that runs
    on PL-VINI (§4.2).

    An IIAS instance embeds a virtual topology onto physical nodes.  Each
    virtual node is a user-space process (Click, the data plane) in the
    experiment's slice, plus a routing instance (standing in for XORP, the
    control plane) talking over virtual point-to-point interfaces numbered
    from common /30 subnets of 10.0.0.0/8 (§4.1.3).  Virtual links are UDP
    tunnels between the physical nodes; a per-tunnel failure-injection
    element implements §5.2's controlled link failures.  A [tap0] host
    stack on every virtual node lets applications (ping, iperf, TCP
    servers) send and receive over the overlay; OpenVPN ingress and NAPT
    egress connect real end hosts and the external Internet (§4.2.3).

    Restrictions mirroring the prototype: at most one virtual node of a
    given IIAS instance per physical node (the tunnel UDP port is fixed
    per slice), and ingress/egress roles are declared before {!start}. *)

type t
type vnode

type routing_choice =
  | Static_routes
  | Ospf_routing of {
      hello : Vini_sim.Time.t;
      dead : Vini_sim.Time.t;
      spf_delay : Vini_sim.Time.t;
    }
  | Rip_routing of { scale : float }

val default_ospf : routing_choice
(** Hello 5 s, dead 10 s, SPF hold-down 200 ms — §5.2's configuration. *)

val create :
  underlay:Vini_phys.Underlay.t ->
  slice:Vini_phys.Slice.t ->
  vtopo:Vini_topo.Graph.t ->
  embedding:(int -> int) ->
  ?routing:routing_choice ->
  ?tunnel_port:int ->
  ?tunnel_rcvbuf_bytes:int ->
  ?click_burst:int ->
  unit ->
  t
(** [embedding] maps virtual node ids to physical node ids (injective).
    Default routing: {!default_ospf}; default tunnel port 33000;
    [tunnel_rcvbuf_bytes] sizes the Click process's tunnel-socket receive
    buffer (default {!Vini_phys.Calibration.udp_rcvbuf_bytes}) — the
    buffer whose overflow drives Figure 6, exposed for ablation.

    [click_burst] (default 1) batches every Click process's input
    service: each CPU service slice drains up to that many packets in one
    scheduler event (see {!Vini_phys.Process.create}).  1 keeps the
    classic one-event-per-packet schedule — required for runs whose
    exports must be byte-identical to historical baselines; higher values
    trade per-packet scheduler events for throughput, deterministically
    per seed. *)

val enable_egress : t -> int -> unit
(** Make a virtual node an egress: it advertises a default route into the
    overlay and NAPTs overlay traffic onto the real Internet.  Call before
    {!start}. *)

val enable_ingress : t -> int -> pool:Vini_net.Prefix.t -> unit
(** Make a virtual node an OpenVPN ingress serving client addresses from
    [pool].  Call before {!start}. *)

val advertise_prefix : ?quiet:bool -> t -> int -> Vini_net.Prefix.t -> unit
(** Make a virtual node own (and advertise, under OSPF/RIP) an additional
    prefix; traffic for it is delivered locally.  The hook behind
    alternative addressing schemes (§4.2.1's "one could implement a new
    addressing scheme in IIAS" — see [Keyspace]).  With [~quiet:true] the
    prefix is owned but {e not} advertised into the IGP — for prefixes
    whose reachability another protocol (BGP) is responsible for.  Call
    before {!start}. *)

val start : t -> unit

(** {2 Crash recovery}

    Virtual routers can die: a chaos fault (or {!kill_vnode}) crashes a
    vnode's Click process, and a whole-machine crash
    ({!Vini_phys.Underlay.set_node_state}) kills every process on the
    node.  A crash stops the vnode's routing instance for good and clears
    its FIB; neighbours notice via missed hellos and reroute.  With
    supervision enabled, the process is restarted under the policy's
    backoff, the RIB is replayed into the fresh FIB (routes survive the
    data-plane restart) and a new routing instance re-forms adjacencies
    and resyncs the LSDB. *)

val enable_supervision : ?policy:Vini_phys.Supervisor.policy -> t -> unit
(** Put every vnode process under a {!Vini_phys.Supervisor}.  Idempotent.
    Draws nothing from the RNG until a first crash actually happens, so
    enabling supervision on a fault-free run changes no result. *)

val supervisor : t -> Vini_phys.Supervisor.t option
val kill_vnode : t -> int -> unit
(** Crash one vnode's Click process ([Kill_process] fault). *)

(** {2 Migration}

    When a physical node dies for good, restart-in-place is hopeless; the
    embedding layer ({!Vini_core.Vini}) instead re-embeds the displaced
    virtual node onto a feasible surviving machine and calls
    {!migrate_vnode}. *)

val migrate_vnode : t -> int -> pnode:int -> unit
(** Rebuild virtual node [v] on physical node [pnode]: a fresh Click
    process and per-host state (NAPT public address, sockets, port
    bindings) on the target machine, keeping the virtual identity — tap
    address, /30 interface addresses, RIB.  Tunnels from every neighbour
    re-aim automatically (encapsulation resolves the current placement
    per packet).  If the instance is started, the router is revived
    immediately (RIB replayed into the fresh FIB, routing instance
    restarted to re-form adjacencies); a supervisor, if enabled, adopts
    the replacement process.
    @raise Invalid_argument if either id is out of range, the target is
    down, or the target already hosts a virtual node of this slice. *)

(** {2 Live migration (make-before-break)}

    A {e planned} move, in contrast to the crash-driven
    {!migrate_vnode}: the replacement process is pre-cloned and
    double-provisioned on the target while the old one keeps serving
    ({!begin_migration}); ingress and egress flip atomically at a
    barrier-safe instant ({!commit_migration} under
    {!Vini_sim.Engine.at_barrier}); in-flight packets drain through the
    old process from a frozen FIB; then the old process is retired and
    the deferred routing changes replay ({!finish_migration}).  In
    steady state the cutover loses zero packets.  Driven end-to-end by
    [Vini_core.Vini.migrate]. *)

val begin_migration : t -> int -> pnode:int -> unit
(** Pre-clone vnode [v]'s Click process on physical node [pnode]: fresh
    process, tunnel/VPN sockets and input queues open, wired to the
    shared data plane, but receiving no traffic until the flip.
    @raise Invalid_argument if the instance is not started, either id is
    out of range, the target is down, already hosts this slice, or
    already hosts [v], a migration of [v] is already in flight, or [v]'s
    process is down. *)

val commit_migration : t -> int -> bool
(** The atomic flip: placement, tap/control injection, NAPT identity and
    supervision all switch to the pre-cloned process; the FIB is rebuilt
    fresh from the RIB and frozen for the drain.  The converged routing
    instance keeps running — its control traffic already originates
    from the new machine — so the control plane migrates with its state
    and never reconverges.  [false] (and no side effects) if
    the clone, its machine, or the old process died since
    {!begin_migration} — roll back with {!abort_migration}.  Schedule at
    a barrier-safe instant ({!Vini_sim.Engine.at_barrier}). *)

val finish_migration : t -> int -> int
(** Drain complete: retire the old process (planned exit — no crash
    hooks, no supervisor budget) and thaw the FIB, replaying routing
    changes deferred during the drain.  Returns the cutover loss: drops
    attributable to the vnode across the window plus packets the
    retirement found still buffered. *)

val abort_migration : t -> int -> unit
(** Roll back a not-yet-flipped migration; the old process never stopped
    serving.  @raise Invalid_argument after the flip (roll forward). *)

val migration_pending : t -> int -> bool
(** A migration of this vnode is in flight (begun, not yet finished or
    aborted). *)

val migration_grace : t -> int -> bool
(** The vnode is inside its [flip, drain-complete] window — the interval
    in which the watchdog suppresses loop/blackhole/FIB-consistency
    alarms for it ({!Vini_measure.Watchdog}). *)

val migration_target : t -> int -> int option
(** Target physical node of the in-flight migration, if any. *)

val current_pnode : t -> int -> int
(** Physical node currently hosting a virtual node (differs from the
    deploy-time embedding after migrations). *)

val current_embedding : t -> int array
(** Snapshot of the current vnode -> pnode placement. *)

val vnode_alive : vnode -> bool

val vnode_count : t -> int
val vnode : t -> int -> vnode
val vnode_by_name : t -> string -> vnode

(** {2 Per-virtual-node access} *)

val vname : vnode -> string
val tap : vnode -> Vini_phys.Ipstack.t
(** The host stack applications use (ICMP echo auto-answered). *)

val tap_addr : vnode -> Vini_net.Addr.t

val route_batch : vnode -> Vini_click.Batch.t -> unit
(** Push a whole burst through this virtual node's forwarding decision —
    the batched data plane's entry into the overlay FIB.  Equivalent to
    routing each packet of the batch in order (same decisions, same
    drops, same per-packet spans), but consecutive packets to one
    destination resolve the FIB once: the lookup memo is refreshed only
    when the destination or the table's {!Vini_click.Fib.generation}
    changes.  The caller owns the batch; routed packets leave through the
    usual tunnel elements. *)

val process : vnode -> Vini_phys.Process.t
val rib : vnode -> Vini_routing.Rib.t
val ospf : vnode -> Vini_routing.Ospf.t option
val rip : vnode -> Vini_routing.Rip.t option
val fib_entries : vnode -> (Vini_net.Prefix.t * string) list
val pnode : vnode -> Vini_phys.Pnode.t

val iface_addr : t -> int -> neighbor:int -> Vini_net.Addr.t
(** Virtual address of node [v]'s interface towards [neighbor].
    @raise Not_found when not adjacent. *)

(** {2 Experiment control} *)

val set_vlink_state : t -> int -> int -> bool -> unit
(** Fail/restore a virtual link by dropping inside Click on both ends
    (§5.2) — the underlay never sees it. *)

val vlink_is_up : t -> int -> int -> bool

val set_vlink_loss : t -> int -> int -> float -> unit
(** Emulate a lossy virtual link: drop the given fraction inside Click on
    both directions (0.0 restores a clean link).
    @raise Invalid_argument outside [0,1]. *)

val set_vlink_corrupt : t -> int -> int -> float -> unit
(** Corrupt the given fraction of packets crossing the virtual link (both
    directions; 0.0 restores a clean link).  Corrupted frames still travel
    and are discarded by the receiver's checksum verification, counted in
    {!vstats.corrupt_drops}.
    @raise Invalid_argument outside [0,1]. *)

val set_vlink_bandwidth : t -> int -> int -> float option -> unit
(** Cap a virtual link's rate with a token-bucket shaper in Click on both
    directions ([None] removes the cap) — the §6.2 proposal for letting
    experimenters set link capacities. *)

val set_vlink_cost : t -> int -> int -> int -> unit
(** Reconfigure the IGP cost of a virtual link (both directions) and make
    the routing protocols re-advertise — §7's planned-maintenance usage:
    drain a link by raising its cost, without failing it. *)

val vlink_cost : t -> int -> int -> int

val add_static : t -> int -> Vini_net.Prefix.t -> via:int -> unit
(** Static route on vnode towards a neighbouring vnode. *)

val on_control :
  vnode ->
  (src:Vini_net.Addr.t -> ifindex:int -> Vini_net.Packet.control -> unit) ->
  unit
(** Additional control-message listener (e.g. BGP sessions riding the
    overlay); [src] is the sending virtual address, so multiple sessions
    on one node can demultiplex. *)

val control_iface : vnode -> neighbor:int -> Vini_routing.Io.iface
(** The interface record towards a neighbour, for wiring extra protocols.
    @raise Not_found when not adjacent. *)

val alloc_vpn_addr : t -> int -> Vini_net.Addr.t
(** Next free client address from an ingress node's pool. *)

(** {2 Statistics} *)

type vstats = {
  forwarded : int;        (** packets pushed into tunnels *)
  delivered : int;        (** packets handed to the local tap *)
  no_route : int;
  ttl_drops : int;
  napt_out : int;
  napt_in : int;
  vpn_in : int;
  vpn_out : int;
  tunnel_drops : int;     (** failure-injection drops *)
  corrupt_drops : int;    (** frames discarded by receiver checksum *)
}

val stats : vnode -> vstats
val cpu_time : vnode -> Vini_sim.Time.t
val socket_drops : vnode -> int

val fib_cache_stats : vnode -> int * int
(** (hits, misses) of the vnode FIB's per-destination flow cache
    ({!Vini_click.Fib.cache_hits}); exported by
    [Vini_measure.Monitor.watch_vnode]. *)

val fib_memo_stats : vnode -> int * int
(** (hits, lookups) of the batched path's same-destination FIB memo in
    [route_batch] — the coalescing in front of the flow cache.  Hit rate
    is [hits / lookups]; deterministic per seed. *)

val fib_next :
  t -> int -> Vini_net.Addr.t -> [ `Local | `Hop of int | `No_route ]
(** Where vnode [v]'s FIB currently sends a packet for an address: deliver
    locally, hand to a neighbouring vnode, or drop.  The primitive under
    the watchdog's loop/blackhole probes. *)
