(** The OpenVPN opt-in client (§4.2.3).

    Runs on an external end host; gives its applications a tun-style
    {!Vini_phys.Ipstack.t} whose address comes from an IIAS ingress node's
    client pool.  Outgoing packets are encapsulated (with OpenVPN's framing
    overhead) and tunnelled over UDP to the ingress; return traffic is
    decapsulated and delivered back — the client-side half of the
    life-of-a-packet walkthrough in Figure 2. *)

type t

val connect :
  host:Vini_phys.Pnode.t ->
  server:Vini_net.Addr.t ->
  ?server_port:int ->
  vaddr:Vini_net.Addr.t ->
  unit ->
  t
(** [host] is the client machine; [server] the ingress node's public
    address; [vaddr] the client's overlay address (allocated with
    [Iias.alloc_vpn_addr]).  A greeting packet registers the client with
    the ingress immediately. *)

val stack : t -> Vini_phys.Ipstack.t
(** The tun device: applications bind and send here with the overlay
    address. *)

val vaddr : t -> Vini_net.Addr.t
val packets_sent : t -> int
val packets_received : t -> int

val wire_bytes : payload:int -> int
(** Physical-wire bytes for [payload] bytes of overlay traffic through an
    opt-in client: packetised at the Ethernet MTU, each packet paying the
    inner IPv4 header plus OpenVPN's outer encapsulation
    ({!Vini_net.Wire.openvpn_overhead}).  The scenario workload generator
    uses this to convert flow sizes into offered wire load, so flow-level
    and packet-level accounting of the same traffic agree. *)
