module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Span = Vini_sim.Span
module Packet = Vini_net.Packet
module Addr = Vini_net.Addr
module Prefix = Vini_net.Prefix
module Graph = Vini_topo.Graph
module Pnode = Vini_phys.Pnode
module Process = Vini_phys.Process
module Ipstack = Vini_phys.Ipstack
module Underlay = Vini_phys.Underlay
module Supervisor = Vini_phys.Supervisor
module Fib = Vini_click.Fib
module Element = Vini_click.Element
module Batch = Vini_click.Batch
module Faulty = Vini_click.Faulty
module Shaper = Vini_click.Shaper
module Napt = Vini_click.Napt
module Rib = Vini_routing.Rib
module Io = Vini_routing.Io
module Ospf = Vini_routing.Ospf
module Rip = Vini_routing.Rip

type routing_choice =
  | Static_routes
  | Ospf_routing of { hello : Time.t; dead : Time.t; spf_delay : Time.t }
  | Rip_routing of { scale : float }

let default_ospf =
  Ospf_routing { hello = Time.sec 5; dead = Time.sec 10; spf_delay = Time.ms 200 }

let vpn_port = 1194
let private_space = Prefix.of_string "10.0.0.0/8"

(* What the FIB tells the data plane to do with a destination. *)
type action =
  | Deliver                 (* terminate here (tap / ingress / egress) *)
  | Direct                  (* connected subnet: encapsulate to dst itself *)
  | Via of Addr.t           (* encapsulate to this next-hop virtual addr *)

let action_name = function
  | Deliver -> "deliver"
  | Direct -> "direct"
  | Via a -> "via " ^ Addr.to_string a

type tunnel = {
  nbr : int;
  local_vaddr : Addr.t;
  remote_vaddr : Addr.t;
  faulty : Faulty.t;
  to_wire : Element.t;              (* final ToTunnel element *)
  tail : Element.t ref;             (* faulty's downstream: shaper or wire *)
  mutable vshaper : Shaper.t option;
  iface : Io.iface;
}

type vstats = {
  forwarded : int;
  delivered : int;
  no_route : int;
  ttl_drops : int;
  napt_out : int;
  napt_in : int;
  vpn_in : int;
  vpn_out : int;
  tunnel_drops : int;
  corrupt_drops : int;
}

type vnode = {
  vid : int;
  vnode_name : string;
  slice_name : string;
  (* The hosting machine, Click process, and per-host state are mutable:
     a migration (crash-driven re-embedding) rebuilds all three on another
     machine while every closure that needs them dereferences the vnode at
     call time. *)
  mutable node : Pnode.t;
  mutable proc : Process.t;
  mutable ctrl_inject : Packet.t -> bool;
  mutable tap_inject : Packet.t -> bool;
  tap_stack : Ipstack.t;
  vtap_addr : Addr.t;
  fib : action Fib.t;
  vrib : Rib.t;
  mutable napt : Napt.t;
  tunnels : tunnel list;
  connected_actions : (Prefix.t, action) Hashtbl.t;
  vpn_clients : (Addr.t, Addr.t * int) Hashtbl.t;
  mutable ingress_pool : Prefix.t option;
  mutable extra_locals : (Prefix.t * bool) list; (* (prefix, advertised) *)
  mutable next_vpn_host : int;
  mutable egress : bool;
  mutable vospf : Ospf.t option;
  mutable vrip : Rip.t option;
  mutable control_hooks :
    (src:Addr.t -> ifindex:int -> Packet.control -> unit) list;
  bound_napt_ports : (int * int, unit) Hashtbl.t; (* (0=udp|1=tcp, port) *)
  mutable n_forwarded : int;
  mutable n_delivered : int;
  mutable n_no_route : int;
  mutable n_ttl : int;
  mutable n_napt_out : int;
  mutable n_napt_in : int;
  mutable n_vpn_in : int;
  mutable n_vpn_out : int;
  mutable n_corrupt : int;
  (* Batched-path FIB-memo effectiveness: lookups resolved by the
     same-destination memo in [route_batch] vs. total batched lookups. *)
  mutable n_fib_memo_hits : int;
  mutable n_fib_memo_lookups : int;
  (* During a live migration's [flip, drain-complete] window the FIB is
     shared by the old and new Click processes, so RIB-driven changes are
     deferred (newest first) and replayed when the drain ends. *)
  mutable fib_frozen : bool;
  mutable deferred_fib : Rib.change list;
}

(* An in-flight make-before-break migration: the replacement process
   pre-cloned (double-provisioned) on the target machine, awaiting the
   barrier flip. *)
type pending_mig = {
  pm_target : int;
  pm_proc : Process.t;
  pm_ctrl : Packet.t -> bool;
  pm_tap : Packet.t -> bool;
  pm_old_proc : Process.t;
  mutable pm_flipped : bool;
  mutable pm_base : int; (* vnode drop census at the flip instant *)
}

type t = {
  underlay : Underlay.t;
  engine : Engine.t;
  slice : Vini_phys.Slice.t;
  vtopo : Graph.t;
  routing : routing_choice;
  tunnel_port : int;
  tunnel_rcvbuf_bytes : int;
  click_burst : int;
  placement : int array;  (* vnode id -> current physical node id *)
  mutable vnodes : vnode array;
  rng : Vini_std.Rng.t;
  mutable started : bool;
  mutable supervisor : Supervisor.t option;
  pending_migs : (int, pending_mig) Hashtbl.t; (* vnode id -> in-flight *)
}

(* --- address plan ----------------------------------------------------- *)

let tap_addr_of vid = Addr.of_octets 10 0 (vid / 250) ((vid mod 250) + 1)

let link_subnet k =
  Prefix.make (Addr.of_octets 10 1 (k / 64) ((k mod 64) * 4)) 30

(* Translate one RIB change into the vnode's Click FIB — the FEA's apply
   step, also used to replay changes deferred across a migration drain. *)
let apply_fib_change vn (change : Rib.change) =
  match change with
  | Rib.Install (p, r) ->
      let action =
        if r.Rib.proto = Rib.Connected then
          Option.value
            (Hashtbl.find_opt vn.connected_actions p)
            ~default:Deliver
        else Via r.Rib.next_hop
      in
      Fib.add vn.fib p action
  | Rib.Withdraw p -> Fib.remove vn.fib p

(* --- data plane -------------------------------------------------------- *)

let is_local_vaddr vn dst =
  Addr.equal dst vn.vtap_addr
  || List.exists (fun tun -> Addr.equal dst tun.local_vaddr) vn.tunnels

let tunnel_towards vn vaddr =
  List.find_opt
    (fun tun ->
      Addr.equal tun.remote_vaddr vaddr || Addr.equal tun.local_vaddr vaddr)
    vn.tunnels

let dispatch_control vn (pkt : Packet.t) msg =
  (* Which interface did this arrive on?  Match the sender's address. *)
  let ifindex =
    match
      List.find_opt (fun tun -> Addr.equal pkt.Packet.src tun.remote_vaddr)
        vn.tunnels
    with
    | Some tun -> tun.iface.Io.ifindex
    | None -> -1
  in
  (match vn.vospf with Some o -> Ospf.receive o ~ifindex msg | None -> ());
  (match vn.vrip with Some r -> Rip.receive r ~ifindex msg | None -> ());
  List.iter (fun f -> f ~src:pkt.Packet.src ~ifindex msg) vn.control_hooks

let click_comp vn =
  Printf.sprintf "%s/click@%s" vn.slice_name (Pnode.name vn.node)

let drop_span vn (pkt : Packet.t) ~reason =
  if Span.on () then
    Span.drop ~pkt:pkt.Packet.id ~orig:pkt.Packet.orig
      ~component:(click_comp vn) ~reason ~bytes:(Packet.size pkt) ()

(* Every unroutable-packet site funnels here so the flight recorder sees
   one canonical "no-route" drop with the vnode's path-so-far. *)
let no_route vn (pkt : Packet.t) =
  vn.n_no_route <- vn.n_no_route + 1;
  drop_span vn pkt ~reason:"no-route"

let rec route vn (pkt : Packet.t) =
  if Span.on () then
    Span.instant ~pkt:pkt.Packet.id ~orig:pkt.Packet.orig
      ~component:(click_comp vn ^ "/fib") Span.Proto_processing;
  match Fib.lookup vn.fib pkt.Packet.dst with
  | None -> no_route vn pkt
  | Some Deliver -> deliver_local vn pkt
  | Some Direct -> forward vn pkt.Packet.dst pkt
  | Some (Via nh) -> forward vn nh pkt

and forward vn nh pkt =
  match Packet.decr_ttl pkt with
  | None ->
      vn.n_ttl <- vn.n_ttl + 1;
      drop_span vn pkt ~reason:"ttl-expired";
      (* The notice inherits the dying packet's provenance: the expiry
         and the resulting ICMP share one causal tree. *)
      let notice =
        Packet.icmp ~orig:pkt.Packet.orig ~src:vn.vtap_addr ~dst:pkt.Packet.src
          (Packet.Time_exceeded
             { orig_src = pkt.Packet.src; orig_dst = pkt.Packet.dst })
      in
      route vn notice
  | Some pkt -> emit vn nh pkt 4

(* Recursive next-hop resolution: a BGP next hop is a remote address that
   the IGP knows how to reach, not a directly connected neighbour — chase
   it through the FIB (bounded depth) until it lands on a tunnel. *)
and emit vn nh pkt depth =
  match tunnel_towards vn nh with
  | Some tun ->
      vn.n_forwarded <- vn.n_forwarded + 1;
      Element.push (Faulty.element tun.faulty) pkt
  | None when depth > 0 -> (
      match Fib.lookup vn.fib nh with
      | Some (Via nh2) when not (Addr.equal nh2 nh) -> emit vn nh2 pkt (depth - 1)
      | Some Direct | Some (Via _) | Some Deliver | None -> no_route vn pkt)
  | None -> no_route vn pkt

and deliver_local vn (pkt : Packet.t) =
  (* Routing-protocol traffic terminates in the control plane. *)
  let control_msg =
    match pkt.Packet.proto with
    | Packet.Udp { body = Packet.Control c; _ } -> Some c.msg
    | Packet.Udp _ | Packet.Tcp _ | Packet.Icmp _ -> None
  in
  match control_msg with
  | Some msg -> dispatch_control vn pkt msg
  | None ->
      if
        is_local_vaddr vn pkt.Packet.dst
        || List.exists
             (fun (p, _) -> Prefix.contains p pkt.Packet.dst)
             vn.extra_locals
      then begin
        vn.n_delivered <- vn.n_delivered + 1;
        Ipstack.deliver vn.tap_stack pkt
      end
      else begin
        let in_pool =
          match vn.ingress_pool with
          | Some pool -> Prefix.contains pool pkt.Packet.dst
          | None -> false
        in
        if in_pool then vpn_out vn pkt
        else if (not (Prefix.contains private_space pkt.Packet.dst)) && vn.egress
        then napt_out vn pkt
        else no_route vn pkt
      end

and vpn_out vn pkt =
  match Hashtbl.find_opt vn.vpn_clients pkt.Packet.dst with
  | None -> no_route vn pkt
  | Some (client_pub, client_port) ->
      vn.n_vpn_out <- vn.n_vpn_out + 1;
      (* OpenVPN encapsulation: the outer frame continues the inner
         packet's causal tree. *)
      let outer =
        Packet.udp ~orig:pkt.Packet.orig ~src:(Pnode.addr vn.node)
          ~dst:client_pub ~sport:vpn_port ~dport:client_port (Packet.Vpn pkt)
      in
      if Span.on () then
        Span.instant ~pkt:outer.Packet.id ~orig:outer.Packet.orig
          ~component:(click_comp vn ^ "/vpn-encap") Span.Proto_processing;
      Pnode.send_as vn.node ~cls:vn.slice_name outer

and napt_out vn pkt =
  match Napt.translate_out vn.napt pkt with
  | None -> no_route vn pkt
  | Some out ->
      vn.n_napt_out <- vn.n_napt_out + 1;
      if Span.on () then
        Span.instant ~pkt:out.Packet.id ~orig:out.Packet.orig
          ~component:(click_comp vn ^ "/napt") Span.Proto_processing;
      ensure_napt_binding vn out;
      Pnode.send_as vn.node ~cls:vn.slice_name out

and ensure_napt_binding vn (out : Packet.t) =
  (* Return traffic to the translated port must re-enter the Click
     process rather than the kernel's unmatched-packet bin. *)
  let bind_kind kind port binder =
    if not (Hashtbl.mem vn.bound_napt_ports (kind, port)) then begin
      Hashtbl.replace vn.bound_napt_ports (kind, port) ();
      binder ()
    end
  in
  let stack = Pnode.stack vn.node in
  let inject = napt_injector vn in
  match out.Packet.proto with
  | Packet.Udp u ->
      bind_kind 0 u.Packet.usport (fun () ->
          Ipstack.bind_udp stack ~port:u.Packet.usport inject)
  | Packet.Tcp seg ->
      bind_kind 1 seg.Packet.sport (fun () ->
          Ipstack.bind_tcp stack ~port:seg.Packet.sport inject)
  | Packet.Icmp _ -> ()

and napt_injector vn pkt =
  match Napt.translate_in vn.napt pkt with
  | Some inner ->
      vn.n_napt_in <- vn.n_napt_in + 1;
      if Span.on () then
        Span.instant ~pkt:inner.Packet.id ~orig:inner.Packet.orig
          ~component:(click_comp vn ^ "/napt") Span.Proto_processing;
      route vn inner
  | None -> ()

(* Packets reaching the Click process: outer packets addressed to the
   physical node (tunnels, VPN, NAT returns) vs. inner packets injected
   locally (tap, control plane).  [host] is the machine this particular
   process sits on, captured at wire time rather than read from the vnode:
   after a migration flip the vnode record points at the new machine, but
   packets still in flight to the old one must be recognised as outer
   frames there during the drain. *)
let click_handler t vn ~host (pkt : Packet.t) =
  if not (Addr.equal pkt.Packet.dst (Pnode.addr host)) then route vn pkt
  else
    match pkt.Packet.proto with
    | Packet.Udp { udport; body = Packet.Tunnel inner; _ }
      when udport = t.tunnel_port ->
        (* Decapsulation verifies the inner frame's checksum; frames a
           Corrupting fault damaged in flight die here, at the receiver. *)
        if Packet.intact inner then route vn inner
        else begin
          vn.n_corrupt <- vn.n_corrupt + 1;
          let module Trace = Vini_sim.Trace in
          if Trace.on Trace.Category.Packet_drop then
            Trace.emit ~severity:Trace.Warn
              ~component:(click_comp vn)
              (Trace.Packet_drop
                 { reason = "corrupt"; bytes = Packet.size inner });
          drop_span vn inner ~reason:"corrupt"
        end
    | Packet.Udp { udport; usport; body = Packet.Vpn inner; _ }
      when udport = vpn_port ->
        vn.n_vpn_in <- vn.n_vpn_in + 1;
        (* Learn/refresh the client's location for return traffic. *)
        Hashtbl.replace vn.vpn_clients inner.Packet.src
          (pkt.Packet.src, usport);
        route vn inner
    | Packet.Udp _ | Packet.Tcp _ | Packet.Icmp _ -> napt_injector vn pkt

(* Batched FIB resolution: one burst through [route]'s decision logic,
   with consecutive same-destination packets resolved once.  The memo sits
   in front of the FIB's own flow cache and is guarded by the generation
   counter — a control packet routed mid-batch may update the table, and
   the memo must never outlive the cache line it shadows.  Per-packet
   spans are emitted exactly as [route] emits them, so a batched run's
   flight-recorder stream per packet is the per-packet stream. *)
let route_batch vn b =
  let n = Batch.length b in
  let memo_gen = ref (-1) in
  let memo_dst = ref Addr.any in
  let memo_act = ref None in
  for i = 0 to n - 1 do
    let pkt = Batch.unsafe_get b i in
    if Span.on () then
      Span.instant ~pkt:pkt.Packet.id ~orig:pkt.Packet.orig
        ~component:(click_comp vn ^ "/fib") Span.Proto_processing;
    let dst = pkt.Packet.dst in
    vn.n_fib_memo_lookups <- vn.n_fib_memo_lookups + 1;
    let act =
      if !memo_gen = Fib.generation vn.fib && Addr.equal dst !memo_dst then begin
        vn.n_fib_memo_hits <- vn.n_fib_memo_hits + 1;
        !memo_act
      end
      else begin
        let a = Fib.lookup vn.fib dst in
        memo_dst := dst;
        memo_act := a;
        memo_gen := Fib.generation vn.fib;
        a
      end
    in
    match act with
    | None -> no_route vn pkt
    | Some Deliver -> deliver_local vn pkt
    | Some Direct -> forward vn dst pkt
    | Some (Via nh) -> forward vn nh pkt
  done

(* --- construction ------------------------------------------------------ *)

let build_vnode t ~vid ~pnode ~links_of_vid =
  let engine = t.engine in
  let vtap = tap_addr_of vid in
  let fib = Fib.create () in
       let connected_actions = Hashtbl.create 8 in
       (* The vnode record is read at call time: no FEA activity happens
          before the vnodes array is populated, and routing the change
          through the record lets a migration freeze the FIB while two
          processes forward from it. *)
       let fea (change : Rib.change) =
         let vn = t.vnodes.(vid) in
         if vn.fib_frozen then vn.deferred_fib <- change :: vn.deferred_fib
         else apply_fib_change vn change
       in
       let proc =
         Process.create ~node:pnode ~slice:t.slice
           ~name:(Printf.sprintf "%s/click@%s" t.slice.Vini_phys.Slice.name
                    (Pnode.name pnode))
           ~burst:t.click_burst
           ~handler:(fun _ -> ())
           ()
       in
       let ctrl_inject = Process.open_queue proc () in
       let tap_inject = Process.open_queue proc () in
       let tap_stack =
         (* The injector is read through the vnode record at send time, so
            a migrated vnode's tap feeds the replacement process. *)
         Ipstack.create ~engine ~local_addr:vtap
           ~tx:(fun pkt -> ignore (t.vnodes.(vid).tap_inject pkt))
           ()
       in
       (* Tunnels: one per incident virtual link. *)
       let tunnels =
         List.mapi
           (fun ifindex (nbr, link, link_idx) ->
             let subnet = link_subnet link_idx in
             let a_end = min vid nbr = vid in
             let local_vaddr = Prefix.host subnet (if a_end then 1 else 2) in
             let remote_vaddr = Prefix.host subnet (if a_end then 2 else 1) in
             let to_wire =
               Element.make
                 (Printf.sprintf "totunnel-%d-%d" vid nbr)
                 (fun inner ->
                   (* UDP-tunnel encapsulation: the outer frame inherits
                      the inner packet's provenance.  Source machine and
                      remote endpoint are resolved per packet so tunnels
                      follow migrations of either end. *)
                   let vn = t.vnodes.(vid) in
                   let outer =
                     Packet.udp ~orig:inner.Packet.orig
                       ~src:(Pnode.addr vn.node)
                       ~dst:(Underlay.addr t.underlay t.placement.(nbr))
                       ~sport:t.tunnel_port ~dport:t.tunnel_port
                       (Packet.Tunnel inner)
                   in
                   Pnode.send_as vn.node ~cls:t.slice.Vini_phys.Slice.name
                     outer)
             in
             (* Indirection so a shaper can be spliced in at runtime. *)
             let tail_ref = ref to_wire in
             let tail_entry =
               Element.make
                 (Printf.sprintf "tail-%d-%d" vid nbr)
                 (fun pkt -> Element.push !tail_ref pkt)
             in
             let faulty =
               Faulty.create
                 ~rng:(Vini_std.Rng.split t.rng)
                 ~out:tail_entry
                 (Printf.sprintf "droplink-%d-%d" vid nbr)
             in
             let iface =
               Io.make ~ifindex
                 ~ifname:(Printf.sprintf "eth%d" ifindex)
                 ~local:local_vaddr ~remote:remote_vaddr
                 ~cost:link.Graph.weight
                 ~send:(fun msg ~size ->
                   let inner =
                     Packet.udp ~ttl:2 ~src:local_vaddr ~dst:remote_vaddr
                       ~sport:520 ~dport:520
                       (Packet.Control { size; msg })
                   in
                   (* Routing-protocol emitter: a packet origin. *)
                   if Span.on () then
                     Span.origin ~pkt:inner.Packet.id ~orig:inner.Packet.orig
                       ~bytes:(Packet.size inner)
                       ~component:(Printf.sprintf "routing-%d-%d" vid nbr)
                       ();
                   ignore (t.vnodes.(vid).ctrl_inject inner))
             in
             {
               nbr;
               local_vaddr;
               remote_vaddr;
               faulty;
               to_wire;
               tail = tail_ref;
               vshaper = None;
               iface;
             })
           links_of_vid
       in
  let vrib = Rib.create ~fea () in
  {
    vid;
    vnode_name = Graph.name t.vtopo vid;
    slice_name = t.slice.Vini_phys.Slice.name;
    node = pnode;
    proc;
    ctrl_inject;
    tap_inject;
    tap_stack;
    vtap_addr = vtap;
    fib;
    vrib;
    napt = Napt.create ~public_addr:(Pnode.addr pnode) ();
    tunnels;
    connected_actions;
    vpn_clients = Hashtbl.create 8;
    ingress_pool = None;
    extra_locals = [];
    next_vpn_host = 2;
    egress = false;
    vospf = None;
    vrip = None;
    control_hooks = [];
    bound_napt_ports = Hashtbl.create 8;
    n_forwarded = 0;
    n_delivered = 0;
    n_no_route = 0;
    n_ttl = 0;
    n_napt_out = 0;
    n_napt_in = 0;
    n_vpn_in = 0;
    n_vpn_out = 0;
    n_corrupt = 0;
    n_fib_memo_hits = 0;
    n_fib_memo_lookups = 0;
    fib_frozen = false;
    deferred_fib = [];
  }

(* A crashing click process takes its whole router down: the routing
   instances go silent for good (neighbours detect the death by missed
   hellos) and the FIB — data-plane state — is lost.  Also run when a
   migration abandons a machine. *)
let teardown_router vn =
  (match vn.vospf with Some o -> Ospf.stop o | None -> ());
  (match vn.vrip with Some r -> Rip.stop r | None -> ());
  vn.vospf <- None;
  vn.vrip <- None;
  Fib.clear vn.fib

(* Wire one Click process (the vnode's current one, or a migration's
   pre-clone) to the shared data plane.  The crash hook is identity
   guarded: tearing down the shared router state is only correct while
   this process is still the vnode's current one — an old pre-migration
   process crashing after the flip must not clear the live FIB. *)
let wire_process t vn proc =
  let host = Process.node proc in
  Process.set_handler proc (fun pkt -> click_handler t vn ~host pkt);
  Process.on_crash proc (fun () -> if vn.proc == proc then teardown_router vn)

let create ~underlay ~slice ~vtopo ~embedding ?(routing = default_ospf)
    ?(tunnel_port = 33000)
    ?(tunnel_rcvbuf_bytes = Vini_phys.Calibration.udp_rcvbuf_bytes)
    ?(click_burst = 1) () =
  if click_burst < 1 then
    invalid_arg "Iias.create: click_burst must be positive";
  let n = Graph.node_count vtopo in
  let placement = Array.init n embedding in
  (* Injectivity check: one vnode per pnode per slice (fixed UDP port). *)
  let seen = Hashtbl.create n in
  Array.iter
    (fun p ->
      if Hashtbl.mem seen p then
        invalid_arg "Iias.create: embedding maps two virtual nodes to one node";
      Hashtbl.replace seen p ())
    placement;
  let engine = Underlay.engine underlay in
  let rng = Vini_std.Rng.split (Engine.rng engine) in
  (* Number links once, for /30 allocation. *)
  let link_index = Hashtbl.create 16 in
  List.iteri
    (fun i (l : Graph.link) ->
      Hashtbl.replace link_index (min l.a l.b, max l.a l.b) i)
    (Graph.links vtopo);
  let t =
    {
      underlay;
      engine;
      slice;
      vtopo;
      routing;
      tunnel_port;
      tunnel_rcvbuf_bytes;
      click_burst;
      placement;
      vnodes = [||];
      rng;
      started = false;
      supervisor = None;
      pending_migs = Hashtbl.create 4;
    }
  in
  t.vnodes <-
    Array.init n (fun vid ->
        let pnode = Underlay.node underlay placement.(vid) in
        let links_of_vid =
          List.map
            (fun (nbr, link) ->
              let idx = Hashtbl.find link_index (min vid nbr, max vid nbr) in
              (nbr, link, idx))
            (Graph.neighbors vtopo vid)
        in
        build_vnode t ~vid ~pnode ~links_of_vid);
  Array.iter (fun vn -> wire_process t vn vn.proc) t.vnodes;
  t

let vnode_count t = Array.length t.vnodes
let vnode t i = t.vnodes.(i)

let vnode_by_name t n =
  t.vnodes.(Graph.id_of_name t.vtopo n)

let assert_not_started t what =
  if t.started then invalid_arg ("Iias: " ^ what ^ " must precede start")

(* ICMP has no port to pre-bind, so returning echo replies reach the
   kernel's ICMP path: try the NAPT table there, keep kernel echo
   behaviour for everything else.  Installed on the current hosting
   machine's stack — re-applied when a migration changes the machine. *)
let install_egress_icmp vn =
  let stack = Pnode.stack vn.node in
  Ipstack.set_icmp_handler stack (fun pkt ->
      match pkt.Packet.proto with
      | Packet.Icmp (Packet.Echo_request e) ->
          Ipstack.send stack
            (Packet.icmp ~orig:pkt.Packet.orig ~src:(Pnode.addr vn.node)
               ~dst:pkt.Packet.src (Packet.Echo_reply e))
      | Packet.Icmp _ | Packet.Udp _ | Packet.Tcp _ -> napt_injector vn pkt)

let enable_egress t v =
  assert_not_started t "enable_egress";
  let vn = t.vnodes.(v) in
  vn.egress <- true;
  install_egress_icmp vn

let advertise_prefix ?(quiet = false) t v prefix =
  assert_not_started t "advertise_prefix";
  let vn = t.vnodes.(v) in
  vn.extra_locals <- vn.extra_locals @ [ (prefix, not quiet) ]

let enable_ingress t v ~pool =
  assert_not_started t "enable_ingress";
  let vn = t.vnodes.(v) in
  vn.ingress_pool <- Some pool;
  ignore (Process.open_socket vn.proc ~port:vpn_port ())

(* Prefixes a virtual node owns and advertises. *)
let local_prefixes vn =
  let advertised =
    List.filter_map (fun (p, adv) -> if adv then Some p else None)
      vn.extra_locals
  in
  let base = Prefix.make vn.vtap_addr 32 :: advertised in
  let base =
    match vn.ingress_pool with Some p -> p :: base | None -> base
  in
  if vn.egress then Prefix.default_route :: base else base

let install_connected t vn =
  ignore t;
  let add p action =
    Hashtbl.replace vn.connected_actions p action;
    Rib.update vn.vrib ~proto:Rib.Connected p
      (Some { Rib.next_hop = Addr.any; metric = 0; proto = Rib.Connected })
  in
  add (Prefix.make vn.vtap_addr 32) Deliver;
  List.iter
    (fun tun ->
      add (Prefix.make tun.local_vaddr 30) Direct;
      (* More specific than the /30: our own end terminates here. *)
      add (Prefix.make tun.local_vaddr 32) Deliver)
    vn.tunnels;
  (match vn.ingress_pool with Some p -> add p Deliver | None -> ());
  List.iter (fun (p, _) -> add p Deliver) vn.extra_locals;
  if vn.egress then add Prefix.default_route Deliver

(* Create and start a fresh routing instance for a vnode.  Used both at
   experiment start and when a supervised restart rebuilds the router. *)
let start_routing t vn =
  let ifaces = List.map (fun tun -> tun.iface) vn.tunnels in
  match t.routing with
  | Static_routes -> ()
  | Ospf_routing { hello; dead; spf_delay } ->
      let config =
        {
          (Ospf.default_config ~router_id:vn.vid
             ~local_prefixes:(local_prefixes vn))
          with
          Ospf.hello_interval = hello;
          dead_interval = dead;
          spf_delay;
        }
      in
      let o =
        Ospf.create ~engine:t.engine ~rng:(Vini_std.Rng.split t.rng)
          ~config ~ifaces ~rib:vn.vrib
      in
      vn.vospf <- Some o;
      Ospf.start o
  | Rip_routing { scale } ->
      let config =
        Rip.scaled_config ~scale ~local_prefixes:(local_prefixes vn)
      in
      let r =
        Rip.create ~engine:t.engine ~rng:(Vini_std.Rng.split t.rng)
          ~config ~ifaces ~rib:vn.vrib
      in
      vn.vrip <- Some r;
      Rip.start r

let start t =
  if not t.started then begin
    t.started <- true;
    Array.iter
      (fun vn ->
        ignore
          (Process.open_socket vn.proc ~port:t.tunnel_port
             ~rcvbuf_bytes:t.tunnel_rcvbuf_bytes ());
        install_connected t vn;
        start_routing t vn)
      t.vnodes
  end

(* --- crash recovery ----------------------------------------------------- *)

(* The on-restart hook: the process is back with a fresh, empty data plane.
   Replaying the RIB repopulates the Click FIB immediately — routes survive
   the data-plane restart — and a new routing instance then re-forms
   adjacencies and resyncs the LSDB to correct anything stale. *)
let revive_vnode t vn =
  Rib.reinstall vn.vrib;
  start_routing t vn

let enable_supervision ?policy t =
  match t.supervisor with
  | Some _ -> ()
  | None ->
      let sup =
        Supervisor.create ~engine:t.engine
          ~rng:(lazy (Vini_std.Rng.split t.rng))
          ?policy ()
      in
      t.supervisor <- Some sup;
      Array.iter
        (fun vn ->
          Supervisor.supervise sup ~name:(Process.name vn.proc)
            ~on_restart:(fun () -> revive_vnode t vn)
            vn.proc)
        t.vnodes

let supervisor t = t.supervisor
let kill_vnode t v = Process.crash t.vnodes.(v).proc
let vnode_alive vn = Process.alive vn.proc

(* --- migration ---------------------------------------------------------- *)

let current_pnode t v = t.placement.(v)
let current_embedding t = Array.copy t.placement

(* Rebuild virtual node [v] on physical node [pid]: a fresh Click process
   (the old machine may be a smoking crater), fresh per-host state (NAPT
   public address, port bindings, sockets), same virtual identity (tap
   address, /30 interfaces, RIB).  Tunnels re-aim themselves because every
   encapsulation reads [t.placement] at send time; the supervisor, if any,
   adopts the replacement so crash-recovery budgets carry over. *)
let migrate_vnode t v ~pnode:pid =
  if v < 0 || v >= Array.length t.vnodes then
    invalid_arg "Iias.migrate_vnode: virtual node out of range";
  let pn = Graph.node_count (Underlay.graph t.underlay) in
  if pid < 0 || pid >= pn then
    invalid_arg "Iias.migrate_vnode: physical node out of range";
  Array.iteri
    (fun v' p ->
      if v' <> v && p = pid then
        invalid_arg "Iias.migrate_vnode: target already hosts this slice")
    t.placement;
  if not (Underlay.node_is_up t.underlay pid) then
    invalid_arg "Iias.migrate_vnode: target node is down";
  if Hashtbl.mem t.pending_migs v then
    invalid_arg "Iias.migrate_vnode: live migration in progress";
  let vn = t.vnodes.(v) in
  let old_name = Process.name vn.proc in
  if Process.alive vn.proc then Process.crash vn.proc;
  let target = Underlay.node t.underlay pid in
  t.placement.(v) <- pid;
  vn.node <- target;
  let proc =
    Process.create ~node:target ~slice:t.slice
      ~name:
        (Printf.sprintf "%s/click@%s" t.slice.Vini_phys.Slice.name
           (Pnode.name target))
      ~burst:t.click_burst
      ~handler:(fun _ -> ())
      ()
  in
  vn.proc <- proc;
  wire_process t vn proc;
  vn.ctrl_inject <- Process.open_queue proc ();
  vn.tap_inject <- Process.open_queue proc ();
  vn.napt <- Napt.create ~public_addr:(Pnode.addr target) ();
  Hashtbl.reset vn.bound_napt_ports;
  if vn.ingress_pool <> None then
    ignore (Process.open_socket proc ~port:vpn_port ());
  if vn.egress then install_egress_icmp vn;
  if t.started then begin
    ignore
      (Process.open_socket proc ~port:t.tunnel_port
         ~rcvbuf_bytes:t.tunnel_rcvbuf_bytes ());
    revive_vnode t vn
  end;
  match t.supervisor with
  | Some sup -> Supervisor.adopt sup ~name:old_name proc
  | None -> ()

(* --- make-before-break live migration ---------------------------------- *)

let migration_pending t v = Hashtbl.mem t.pending_migs v

let migration_grace t v =
  match Hashtbl.find_opt t.pending_migs v with
  | Some pm -> pm.pm_flipped
  | None -> false

let migration_target t v =
  Option.map (fun pm -> pm.pm_target) (Hashtbl.find_opt t.pending_migs v)

(* Drops attributable to the vnode across a migration window: its own
   data-plane drop counters plus the receive-buffer drops of both the old
   and the replacement process. *)
let drop_census vn pm =
  vn.n_no_route + vn.n_ttl + vn.n_corrupt
  + Process.socket_drops pm.pm_old_proc
  + Process.socket_drops pm.pm_proc

(* Pre-clone virtual node [v]'s process on physical node [pid]: a fresh
   Click process wired to the shared data plane, with tunnel (and VPN)
   sockets open and input queues ready, double-provisioned next to the
   still-serving old process.  No traffic reaches it until the flip
   ({!commit_migration}) re-aims the placement. *)
let begin_migration t v ~pnode:pid =
  if not t.started then invalid_arg "Iias.begin_migration: not started";
  if v < 0 || v >= Array.length t.vnodes then
    invalid_arg "Iias.begin_migration: virtual node out of range";
  let pn = Graph.node_count (Underlay.graph t.underlay) in
  if pid < 0 || pid >= pn then
    invalid_arg "Iias.begin_migration: physical node out of range";
  if t.placement.(v) = pid then
    invalid_arg "Iias.begin_migration: virtual node already hosted there";
  Array.iteri
    (fun v' p ->
      if v' <> v && p = pid then
        invalid_arg "Iias.begin_migration: target already hosts this slice")
    t.placement;
  if not (Underlay.node_is_up t.underlay pid) then
    invalid_arg "Iias.begin_migration: target node is down";
  if Hashtbl.mem t.pending_migs v then
    invalid_arg "Iias.begin_migration: migration already in progress";
  let vn = t.vnodes.(v) in
  if not (Process.alive vn.proc) then
    invalid_arg "Iias.begin_migration: virtual node is down";
  let target = Underlay.node t.underlay pid in
  let proc =
    Process.create ~node:target ~slice:t.slice
      ~name:
        (Printf.sprintf "%s/click@%s" t.slice.Vini_phys.Slice.name
           (Pnode.name target))
      ~burst:t.click_burst
      ~handler:(fun _ -> ())
      ()
  in
  wire_process t vn proc;
  let pm_ctrl = Process.open_queue proc () in
  let pm_tap = Process.open_queue proc () in
  ignore
    (Process.open_socket proc ~port:t.tunnel_port
       ~rcvbuf_bytes:t.tunnel_rcvbuf_bytes ());
  if vn.ingress_pool <> None then
    ignore (Process.open_socket proc ~port:vpn_port ());
  Hashtbl.replace t.pending_migs v
    {
      pm_target = pid;
      pm_proc = proc;
      pm_ctrl;
      pm_tap;
      pm_old_proc = vn.proc;
      pm_flipped = false;
      pm_base = 0;
    }

(* The atomic flip, scheduled at a barrier-safe instant
   ({!Vini_sim.Engine.at_barrier}).  Returns [false] — with no side
   effects — if the clone, its machine, or the old process died since
   [begin_migration]; the caller then rolls back with
   {!abort_migration}.  On success: every tunnel encapsulation and tap
   injection switches to the target in one step (they dereference the
   placement and vnode record per packet), the FIB is rebuilt fresh from
   the RIB and frozen for the drain, and the supervisor adopts the
   replacement.  The routing instance is {e not} restarted: its control
   traffic already flows through the vnode record, so the converged
   control plane migrates with its state — a fresh instance's partial
   reconvergence, deferred during the freeze and replayed at the thaw,
   would punch a transient no-route hole at drain-complete.  The old
   process keeps serving already-buffered and in-flight packets from the
   same (frozen) FIB until {!finish_migration}. *)
let commit_migration t v =
  match Hashtbl.find_opt t.pending_migs v with
  | None -> invalid_arg "Iias.commit_migration: no migration in progress"
  | Some pm ->
      if pm.pm_flipped then invalid_arg "Iias.commit_migration: already flipped";
      let vn = t.vnodes.(v) in
      if
        (not (Process.alive pm.pm_proc))
        || (not (Underlay.node_is_up t.underlay pm.pm_target))
        || not (Process.alive vn.proc)
      then false
      else begin
        pm.pm_base <- drop_census vn pm;
        let target = Underlay.node t.underlay pm.pm_target in
        let old_name = Process.name vn.proc in
        (* The routing instance keeps running across the flip — its
           sends dereference the vnode record, so from here on they
           originate from the target.  Migrating the converged control
           plane with its state means the drain defers only genuine
           topology changes, never a restart's reconvergence churn. *)
        t.placement.(v) <- pm.pm_target;
        vn.node <- target;
        vn.proc <- pm.pm_proc;
        vn.ctrl_inject <- pm.pm_ctrl;
        vn.tap_inject <- pm.pm_tap;
        vn.napt <- Napt.create ~public_addr:(Pnode.addr target) ();
        Hashtbl.reset vn.bound_napt_ports;
        if vn.egress then install_egress_icmp vn;
        (* Fresh FIB from the RIB, then freeze it for the drain window:
           both processes forward from this table until the old one is
           retired, so RIB changes are deferred, not applied. *)
        Fib.clear vn.fib;
        Rib.reinstall vn.vrib;
        vn.fib_frozen <- true;
        (match t.supervisor with
        | Some sup -> Supervisor.adopt sup ~name:old_name pm.pm_proc
        | None -> ());
        pm.pm_flipped <- true;
        true
      end

(* Drain complete: retire the old process (planned — no crash hooks, no
   supervisor budget) and thaw the FIB, replaying the deferred routing
   changes.  Returns the migration's cutover loss: drops attributable to
   the vnode across the window plus whatever the retirement found still
   buffered — the honest count a zero-loss invariant must hold at 0. *)
let finish_migration t v =
  match Hashtbl.find_opt t.pending_migs v with
  | None -> invalid_arg "Iias.finish_migration: no migration in progress"
  | Some pm ->
      if not pm.pm_flipped then
        invalid_arg "Iias.finish_migration: not flipped";
      let vn = t.vnodes.(v) in
      let residual = Process.pending_packets pm.pm_old_proc in
      Process.retire pm.pm_old_proc;
      let loss = residual + (drop_census vn pm - pm.pm_base) in
      vn.fib_frozen <- false;
      List.iter (apply_fib_change vn) (List.rev vn.deferred_fib);
      vn.deferred_fib <- [];
      Hashtbl.remove t.pending_migs v;
      loss

(* Roll back a not-yet-flipped migration: retire the clone (idempotent if
   its machine already crashed) and forget it.  The old process never
   stopped serving, so the slice observes nothing.  After the flip a
   migration can only roll forward ({!finish_migration}). *)
let abort_migration t v =
  match Hashtbl.find_opt t.pending_migs v with
  | None -> invalid_arg "Iias.abort_migration: no migration in progress"
  | Some pm ->
      if pm.pm_flipped then
        invalid_arg "Iias.abort_migration: already flipped; roll forward";
      Process.retire pm.pm_proc;
      Hashtbl.remove t.pending_migs v

(* --- accessors and control -------------------------------------------- *)

let vname vn = vn.vnode_name
let tap vn = vn.tap_stack
let tap_addr vn = vn.vtap_addr
let process vn = vn.proc
let rib vn = vn.vrib
let ospf vn = vn.vospf
let rip vn = vn.vrip
let pnode vn = vn.node

let fib_entries vn =
  List.map (fun (p, a) -> (p, action_name a)) (Fib.entries vn.fib)

let tunnel_between t a b =
  let vn = t.vnodes.(a) in
  match List.find_opt (fun tun -> tun.nbr = b) vn.tunnels with
  | Some tun -> tun
  | None -> raise Not_found

let iface_addr t v ~neighbor = (tunnel_between t v neighbor).local_vaddr

let set_vlink_state t a b up =
  let mode = if up then Faulty.Pass else Faulty.Fail in
  Faulty.set_mode (tunnel_between t a b).faulty mode;
  Faulty.set_mode (tunnel_between t b a).faulty mode

let vlink_is_up t a b =
  match Faulty.mode (tunnel_between t a b).faulty with
  | Faulty.Pass | Faulty.Corrupting _ -> true
  | Faulty.Fail | Faulty.Lossy _ -> false

let set_vlink_corrupt t a b prob =
  if prob < 0.0 || prob > 1.0 then
    invalid_arg "Iias.set_vlink_corrupt: probability outside [0,1]";
  let mode = if prob = 0.0 then Faulty.Pass else Faulty.Corrupting prob in
  Faulty.set_mode (tunnel_between t a b).faulty mode;
  Faulty.set_mode (tunnel_between t b a).faulty mode

let set_vlink_loss t a b loss =
  if loss < 0.0 || loss > 1.0 then
    invalid_arg "Iias.set_vlink_loss: loss outside [0,1]";
  let mode = if loss = 0.0 then Faulty.Pass else Faulty.Lossy loss in
  Faulty.set_mode (tunnel_between t a b).faulty mode;
  Faulty.set_mode (tunnel_between t b a).faulty mode

let set_direction_bandwidth t tun rate =
  match (rate, tun.vshaper) with
  | None, None -> ()
  | None, Some _ ->
      tun.vshaper <- None;
      tun.tail := tun.to_wire
  | Some bps, Some sh -> Shaper.set_rate sh bps
  | Some bps, None ->
      let sh =
        Shaper.create ~engine:t.engine ~rate_bps:bps ~out:tun.to_wire
          (Printf.sprintf "shaper-%d" tun.nbr)
      in
      tun.vshaper <- Some sh;
      tun.tail := Shaper.element sh

let set_vlink_bandwidth t a b rate =
  (match rate with
  | Some bps when bps <= 0.0 ->
      invalid_arg "Iias.set_vlink_bandwidth: rate must be positive"
  | Some _ | None -> ());
  set_direction_bandwidth t (tunnel_between t a b) rate;
  set_direction_bandwidth t (tunnel_between t b a) rate

let set_vlink_cost t a b cost =
  if cost <= 0 then invalid_arg "Iias.set_vlink_cost: cost must be positive";
  let apply v nbr =
    let tun = tunnel_between t v nbr in
    tun.iface.Io.cost <- cost;
    let vn = t.vnodes.(v) in
    (match vn.vospf with Some o -> Ospf.reoriginate o | None -> ())
  in
  apply a b;
  apply b a

let vlink_cost t a b = (tunnel_between t a b).iface.Io.cost

let add_static t v prefix ~via =
  let vn = t.vnodes.(v) in
  let tun = tunnel_between t v via in
  Rib.update vn.vrib ~proto:Rib.Static prefix
    (Some { Rib.next_hop = tun.remote_vaddr; metric = 1; proto = Rib.Static })

let on_control vn f = vn.control_hooks <- vn.control_hooks @ [ f ]

let control_iface vn ~neighbor =
  match List.find_opt (fun tun -> tun.nbr = neighbor) vn.tunnels with
  | Some tun -> tun.iface
  | None -> raise Not_found

let alloc_vpn_addr t v =
  let vn = t.vnodes.(v) in
  match vn.ingress_pool with
  | None -> invalid_arg "Iias.alloc_vpn_addr: node is not an ingress"
  | Some pool ->
      let a = Prefix.host pool vn.next_vpn_host in
      vn.next_vpn_host <- vn.next_vpn_host + 1;
      a

let stats vn =
  {
    forwarded = vn.n_forwarded;
    delivered = vn.n_delivered;
    no_route = vn.n_no_route;
    ttl_drops = vn.n_ttl;
    napt_out = vn.n_napt_out;
    napt_in = vn.n_napt_in;
    vpn_in = vn.n_vpn_in;
    vpn_out = vn.n_vpn_out;
    tunnel_drops =
      List.fold_left (fun acc tun -> acc + Faulty.dropped tun.faulty) 0
        vn.tunnels;
    corrupt_drops = vn.n_corrupt;
  }

(* One data-plane forwarding decision, as the watchdog's TTL-probe sees it:
   where does [v]'s FIB send a packet for [dst]?  Next hops are resolved
   recursively onto a tunnel, exactly like {!emit}. *)
let fib_next t v dst =
  let vn = t.vnodes.(v) in
  let rec resolve nh depth =
    match tunnel_towards vn nh with
    | Some tun -> Some tun.nbr
    | None ->
        if depth = 0 then None
        else (
          match Fib.lookup vn.fib nh with
          | Some (Via nh2) when not (Addr.equal nh2 nh) ->
              resolve nh2 (depth - 1)
          | Some _ | None -> None)
  in
  match Fib.lookup vn.fib dst with
  | None -> `No_route
  | Some Deliver -> `Local
  | Some Direct -> (
      match resolve dst 0 with Some n -> `Hop n | None -> `No_route)
  | Some (Via nh) -> (
      match resolve nh 4 with Some n -> `Hop n | None -> `No_route)

let cpu_time vn = Process.cpu_time vn.proc
let socket_drops vn = Process.socket_drops vn.proc
let fib_cache_stats vn = (Fib.cache_hits vn.fib, Fib.cache_misses vn.fib)
let fib_memo_stats vn = (vn.n_fib_memo_hits, vn.n_fib_memo_lookups)
