(** Preallocated packet freelist for the batched data plane.

    The batched forwarding path ({!Vini_click.Element.push_batch}) keeps
    steady-state forwarding free of minor-heap allocation: sources draw
    packets from a pool instead of constructing fresh records, and sinks
    return them with {!recycle} when a packet is delivered or dropped.
    Between [take] and [recycle] the packet has exactly one owner — the
    element currently holding it — and that owner either pushes it
    downstream (transferring ownership) or recycles it.  Recycling a
    packet that some queue still references is the pool analogue of a
    use-after-free; the ownership rules are spelled out in DESIGN.md §15.

    {b Immutability makes recycling safe.}  {!Packet.t} is an immutable
    record, so "recycling" returns the {e reference} for reuse — there is
    no buffer to scribble over, and a recycled-too-early packet yields a
    stale-delivery bug, never memory corruption.  Transforming elements
    (TTL decrement, encapsulation, {!Packet.corrupted}) allocate a fresh
    record; when the transformed copy reaches the sink it is recycled
    {e in place of} the original, which becomes garbage — the pool's
    population stays at [capacity], and a chain with transforms allocates
    one record per transform, not per hop.

    {b Exhaustion is deterministic degradation, not failure.}  When the
    freelist is empty {!take_opt} returns [None] (and {!take} raises
    {!Exhausted}); the source skips that packet slot and the
    {!exhaustions} counter records it.  A pool drained mid-burst
    therefore shrinks the burst rather than crashing, and the count is a
    pure function of the schedule. *)

type t

exception Exhausted
(** Raised by {!take} on an empty freelist.  Preallocated — raising it
    allocates nothing. *)

val create : capacity:int -> mint:(int -> Packet.t) -> unit -> t
(** [create ~capacity ~mint ()] preallocates [capacity] packets by
    calling [mint 0 .. mint (capacity-1)] once, up front.  All later
    {!take}/{!recycle} traffic works in the preallocated freelist and
    allocates nothing.  @raise Invalid_argument when [capacity < 1]. *)

val take : t -> Packet.t
(** Pop a packet from the freelist.  Allocation-free.
    @raise Exhausted when the pool is empty. *)

val take_opt : t -> Packet.t option
(** [Some] variant of {!take} for callers off the hot path (the returned
    option is a fresh allocation). *)

val recycle : t -> Packet.t -> unit
(** Return a packet to the freelist.  The caller must own it — nothing
    downstream may still hold it.  Accepts any packet record, not just
    minted ones (see the transform discussion above); a recycle that
    would overfill the pool (more recycles than takes — a double-recycle
    bug) is counted in {!overfills} and ignored rather than trusted. *)

val available : t -> int
(** Packets currently in the freelist. *)

val low_watermark : t -> int
(** Fewest free packets ever observed — how close the pool has come to
    exhaustion (0 = it ran dry at least once).  Monotone non-increasing,
    starts at [capacity]; deterministic per seed. *)

val capacity : t -> int
val takes : t -> int
val recycles : t -> int

val exhaustions : t -> int
(** Failed {!take}/{!take_opt} calls: how often a burst found the pool
    dry.  Deterministic per seed. *)

val overfills : t -> int
(** Ignored {!recycle} calls that found the freelist already full. *)
