type control = ..

type tcp_flags = { syn : bool; ack : bool; fin : bool; rst : bool }
type echo = { ident : int; icmp_seq : int; sent_ns : int; data_len : int }

type icmp =
  | Echo_request of echo
  | Echo_reply of echo
  | Time_exceeded of { orig_src : Addr.t; orig_dst : Addr.t }
  | Dest_unreachable of { orig_src : Addr.t; orig_dst : Addr.t }

type probe = { flow : int; seq : int; sent_ns : int; pad : int }

type tcp = {
  sport : int;
  dport : int;
  seq : int;
  ack : int;
  flags : tcp_flags;
  window : int;
  payload_len : int;
  sent_ns : int;
}

type body =
  | Bytes_ of int
  | Tunnel of t
  | Vpn of t
  | Probe of probe
  | Control of { size : int; msg : control }

and udp = { usport : int; udport : int; body : body }
and proto = Udp of udp | Tcp of tcp | Icmp of icmp

and t = {
  id : int;
  orig : int;
  src : Addr.t;
  dst : Addr.t;
  ttl : int;
  proto : proto;
  corrupt : bool;
  len : int;
}

let default_ttl = 64
let next_id = ref 0

let fresh_id () =
  incr next_id;
  !next_id

(* Sizes are computed once, at construction, and cached in [t.len]:
   every element and link on the forwarding path charges bytes per hop,
   so [size] must be O(1) regardless of encapsulation depth.  Nested
   packets already carry their own cached length, so even construction
   is O(1) in the nesting. *)

let size t = t.len

let rec proto_size = function
  | Udp u -> Wire.udp_header + body_size u.body
  | Tcp seg -> Wire.tcp_header + seg.payload_len
  | Icmp i -> Wire.icmp_header + icmp_size i

and body_size = function
  | Bytes_ n -> n
  | Tunnel inner -> inner.len
  | Vpn inner ->
      (* Crypto framing beyond the outer IP+UDP already accounted for. *)
      inner.len + (Wire.openvpn_overhead - Wire.ipv4_header - Wire.udp_header)
  | Probe p -> max p.pad 12
  | Control c -> c.size

and icmp_size = function
  | Echo_request e | Echo_reply e -> e.data_len
  | Time_exceeded _ | Dest_unreachable _ ->
      (* Quoted IP header + 8 bytes of the offending datagram. *)
      Wire.ipv4_header + 8

(* A fresh packet is its own provenance root; encapsulation sites and ICMP
   error generators pass [?orig] so the flight recorder can stitch the
   outer frame's spans onto the inner packet's causal tree. *)
let provenance id = function Some o -> o | None -> id

let udp ?(ttl = default_ttl) ?orig ~src ~dst ~sport ~dport body =
  let id = fresh_id () in
  let proto = Udp { usport = sport; udport = dport; body } in
  { id; orig = provenance id orig; src; dst; ttl; corrupt = false; proto;
    len = Wire.ipv4_header + proto_size proto }

let tcp ?(ttl = default_ttl) ?orig ~src ~dst seg =
  let id = fresh_id () in
  { id; orig = provenance id orig; src; dst; ttl; corrupt = false;
    proto = Tcp seg; len = Wire.ipv4_header + proto_size (Tcp seg) }

let icmp ?(ttl = default_ttl) ?orig ~src ~dst msg =
  let id = fresh_id () in
  { id; orig = provenance id orig; src; dst; ttl; corrupt = false;
    proto = Icmp msg; len = Wire.ipv4_header + proto_size (Icmp msg) }

let corrupted t = { t with corrupt = true }

(* The on-the-wire IPv4 header image, with the header checksum folded into
   its slot (bytes 10-11).  A corrupted packet gets one byte damaged *after*
   checksumming, so [Wire.checksum_valid] fails on it at the receiver — the
   same way real corruption is caught. *)
let write_header b t =
  Bytes.fill b 0 Wire.ipv4_header '\000';
  let set16 off v =
    Bytes.set b off (Char.chr ((v lsr 8) land 0xFF));
    Bytes.set b (off + 1) (Char.chr (v land 0xFF))
  in
  Bytes.set b 0 '\x45' (* version 4, IHL 5 *);
  set16 2 (size t land 0xFFFF);
  set16 4 (t.id land 0xFFFF);
  Bytes.set b 8 (Char.chr (t.ttl land 0xFF));
  let a = Addr.to_int t.src in
  set16 12 ((a lsr 16) land 0xFFFF);
  set16 14 (a land 0xFFFF);
  let a = Addr.to_int t.dst in
  set16 16 ((a lsr 16) land 0xFFFF);
  set16 18 (a land 0xFFFF);
  set16 10 (Wire.checksum b);
  if t.corrupt then Bytes.set b 8 (Char.chr ((t.ttl lxor 0x40) land 0xFF))

(* Decapsulation verifies every tunnelled frame, so [intact] runs once per
   forwarded packet.  The wire-image check below materialises the header
   and validates its checksum; because [write_header] damages exactly one
   byte after checksumming when [t.corrupt] is set (and none otherwise),
   its verdict is always [not t.corrupt] — a single 16-bit word changed by
   a nonzero delta cannot keep a ones'-complement sum valid.  The hot path
   uses the flag directly; [intact_wire] keeps the checksum route alive so
   a test can assert the equivalence on arbitrary packets. *)
let intact_scratch = Bytes.make Wire.ipv4_header '\000'

let intact_wire t =
  write_header intact_scratch t;
  Wire.checksum_valid intact_scratch

let intact t = not t.corrupt

let decr_ttl t = if t.ttl <= 1 then None else Some { t with ttl = t.ttl - 1 }
let with_src t src = { t with src }
let with_dst t dst = { t with dst }

let with_udp_ports t ~sport ~dport =
  match t.proto with
  | Udp u -> { t with proto = Udp { u with usport = sport; udport = dport } }
  | Tcp _ | Icmp _ -> invalid_arg "Packet.with_udp_ports: not UDP"

let with_tcp_ports t ~sport ~dport =
  match t.proto with
  | Tcp seg -> { t with proto = Tcp { seg with sport; dport } }
  | Udp _ | Icmp _ -> invalid_arg "Packet.with_tcp_ports: not TCP"

let flags_to_string f =
  let b = Buffer.create 4 in
  if f.syn then Buffer.add_char b 'S';
  if f.fin then Buffer.add_char b 'F';
  if f.rst then Buffer.add_char b 'R';
  if f.ack then Buffer.add_char b '.';
  if Buffer.length b = 0 then "-" else Buffer.contents b

let rec pp ppf t =
  match t.proto with
  | Udp u -> (
      match u.body with
      | Tunnel inner ->
          Format.fprintf ppf "%a.%d > %a.%d: TUNNEL[%a]" Addr.pp t.src u.usport
            Addr.pp t.dst u.udport pp inner
      | Vpn inner ->
          Format.fprintf ppf "%a.%d > %a.%d: VPN[%a]" Addr.pp t.src u.usport
            Addr.pp t.dst u.udport pp inner
      | Control c ->
          Format.fprintf ppf "%a.%d > %a.%d: CTRL %d bytes" Addr.pp t.src
            u.usport Addr.pp t.dst u.udport c.size
      | Probe p ->
          Format.fprintf ppf "%a.%d > %a.%d: UDP probe flow %d seq %d" Addr.pp
            t.src u.usport Addr.pp t.dst u.udport p.flow p.seq
      | Bytes_ n ->
          Format.fprintf ppf "%a.%d > %a.%d: UDP %d bytes" Addr.pp t.src
            u.usport Addr.pp t.dst u.udport n)
  | Tcp seg ->
      Format.fprintf ppf "%a.%d > %a.%d: TCP %s seq %d ack %d win %d len %d"
        Addr.pp t.src seg.sport Addr.pp t.dst seg.dport
        (flags_to_string seg.flags) seg.seq seg.ack seg.window seg.payload_len
  | Icmp (Echo_request e) ->
      Format.fprintf ppf "%a > %a: ICMP echo request seq %d" Addr.pp t.src
        Addr.pp t.dst e.icmp_seq
  | Icmp (Echo_reply e) ->
      Format.fprintf ppf "%a > %a: ICMP echo reply seq %d" Addr.pp t.src
        Addr.pp t.dst e.icmp_seq
  | Icmp (Time_exceeded o) ->
      Format.fprintf ppf "%a > %a: ICMP time exceeded (orig %a > %a)" Addr.pp
        t.src Addr.pp t.dst Addr.pp o.orig_src Addr.pp o.orig_dst
  | Icmp (Dest_unreachable o) ->
      Format.fprintf ppf "%a > %a: ICMP unreachable (orig %a > %a)" Addr.pp
        t.src Addr.pp t.dst Addr.pp o.orig_src Addr.pp o.orig_dst

let describe t = Format.asprintf "%a" pp t
