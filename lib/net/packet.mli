(** The simulated IPv4 packet.

    A packet is structured metadata plus exact wire-size accounting; links
    charge serialisation time from {!size} and encapsulation (UDP tunnels,
    OpenVPN) nests whole packets, mirroring how IIAS carries Ethernet/IP
    frames inside UDP (§4.2.1).

    Routing-protocol messages travel inside ordinary packets via the
    extensible {!type-control} type: each protocol registers its own
    constructor, so control traffic crosses the same tunnels, queues, and
    failure-injection elements as data traffic — the property the paper's
    Figure 8 experiment depends on.

    Packets are immutable records: forwarding transforms ({!decr_ttl},
    {!with_dst}, NAPT rewrites) allocate one small record and share the
    body, so a packet held in a queue can never be mutated behind the
    queue's back — a determinism guarantee the chaos layer relies on.
    The only per-hop cost is that record copy: {!size} reads a length
    cached at construction and {!intact} reads the corruption flag, so
    neither allocates nor walks the encapsulation chain. *)

type control = ..
(** Extended by [vini_routing] (OSPF/RIP/BGP messages). *)

type tcp_flags = { syn : bool; ack : bool; fin : bool; rst : bool }

type echo = { ident : int; icmp_seq : int; sent_ns : int; data_len : int }

type icmp =
  | Echo_request of echo
  | Echo_reply of echo
  | Time_exceeded of { orig_src : Addr.t; orig_dst : Addr.t }
  | Dest_unreachable of { orig_src : Addr.t; orig_dst : Addr.t }

type probe = { flow : int; seq : int; sent_ns : int; pad : int }
(** A measurement datagram: flow id, sequence number, send timestamp and
    padding bytes (iperf UDP test packets). *)

type tcp = {
  sport : int;
  dport : int;
  seq : int;            (** first payload byte's stream offset *)
  ack : int;            (** cumulative ack (next expected byte) *)
  flags : tcp_flags;
  window : int;         (** advertised receive window, bytes *)
  payload_len : int;
  sent_ns : int;      (** sender timestamp (for tracing; RTT uses timers) *)
}

type body =
  | Bytes_ of int                              (** opaque payload of n bytes *)
  | Tunnel of t                                (** IIAS UDP-tunnel encapsulation *)
  | Vpn of t                                   (** OpenVPN encapsulation *)
  | Probe of probe
  | Control of { size : int; msg : control }   (** routing-protocol message *)

and udp = { usport : int; udport : int; body : body }

and proto = Udp of udp | Tcp of tcp | Icmp of icmp

and t = private {
  id : int;             (** unique per process run, for tracing *)
  orig : int;           (** provenance: the root packet's id.  Equal to
                            [id] for fresh packets; encapsulation
                            (UDP tunnel, OpenVPN) and ICMP error
                            generation pass the inner/offending packet's
                            [orig] through, so the flight recorder
                            ({!Vini_sim.Span}) joins outer frames onto
                            the original packet's causal tree. *)
  src : Addr.t;
  dst : Addr.t;
  ttl : int;
  proto : proto;
  corrupt : bool;       (** a fault element damaged the frame in flight *)
  len : int;            (** cached total datagram size; read via {!size} *)
}

val default_ttl : int

val udp :
  ?ttl:int -> ?orig:int -> src:Addr.t -> dst:Addr.t -> sport:int ->
  dport:int -> body -> t
val tcp : ?ttl:int -> ?orig:int -> src:Addr.t -> dst:Addr.t -> tcp -> t
val icmp : ?ttl:int -> ?orig:int -> src:Addr.t -> dst:Addr.t -> icmp -> t
(** [?orig] overrides the provenance id (default: the fresh packet's own
    id).  Pass [inner.orig] at encapsulation sites and the offending
    packet's [orig] when generating ICMP errors. *)

val size : t -> int
(** Total IP datagram size in bytes (header + nested contents).  O(1):
    the length is computed at construction and cached in {!field-len},
    because every element and link charges bytes per hop. *)

val body_size : body -> int

val decr_ttl : t -> t option
(** [None] when the TTL would reach zero (caller sends Time_exceeded). *)

val corrupted : t -> t
(** The same packet with a bit flipped in flight.  Receivers detect it via
    {!intact} and discard it, charging the loss to the corruption fault. *)

val intact : t -> bool
(** [false] exactly for {!corrupted} packets.  Runs once per decapsulated
    frame on the forwarding hot path, so it reads the corruption flag
    directly; this is provably equivalent to re-deriving the wire header
    and verifying its Internet checksum, because {!write_header} damages
    exactly one byte after checksumming — see {!intact_wire}. *)

val intact_wire : t -> bool
(** The checksum route: materialise the IPv4 header image ({!write_header}
    into a reused scratch buffer) and verify it with
    {!Wire.checksum_valid}.  Semantically identical to {!intact} — a test
    asserts the equivalence on arbitrary packets — but pays the header
    serialisation; kept as the oracle for that test and for callers that
    want the real wire check. *)

val with_src : t -> Addr.t -> t
val with_dst : t -> Addr.t -> t
val with_udp_ports : t -> sport:int -> dport:int -> t
(** @raise Invalid_argument on a non-UDP packet. Used by NAPT. *)

val with_tcp_ports : t -> sport:int -> dport:int -> t
(** @raise Invalid_argument on a non-TCP packet. Used by NAPT. *)

val pp : Format.formatter -> t -> unit
val describe : t -> string
(** One-line human-readable summary (tcpdump-ish). *)
