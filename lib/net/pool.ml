(* Freelist as a fixed array used as a stack: slots [0, free) hold
   available packets.  Take and recycle are a bounds check and one array
   access; nothing on either path allocates.  Popped slots keep their old
   reference — harmless, since the pool's whole population is preallocated
   and recycled references replace them within one drain cycle. *)

type t = {
  slots : Packet.t array;
  mutable free : int;
  mutable low_watermark : int; (* fewest free slots ever seen *)
  mutable takes : int;
  mutable recycles : int;
  mutable exhaustions : int;
  mutable overfills : int;
}

exception Exhausted

let create ~capacity ~mint () =
  if capacity < 1 then invalid_arg "Pool.create: capacity must be positive";
  {
    slots = Array.init capacity mint;
    free = capacity;
    low_watermark = capacity;
    takes = 0;
    recycles = 0;
    exhaustions = 0;
    overfills = 0;
  }

let take t =
  if t.free = 0 then begin
    t.exhaustions <- t.exhaustions + 1;
    raise Exhausted
  end
  else begin
    let i = t.free - 1 in
    t.free <- i;
    if i < t.low_watermark then t.low_watermark <- i;
    t.takes <- t.takes + 1;
    Array.unsafe_get t.slots i
  end

let take_opt t =
  if t.free = 0 then begin
    t.exhaustions <- t.exhaustions + 1;
    None
  end
  else begin
    let i = t.free - 1 in
    t.free <- i;
    if i < t.low_watermark then t.low_watermark <- i;
    t.takes <- t.takes + 1;
    Some (Array.unsafe_get t.slots i)
  end

let recycle t pkt =
  if t.free = Array.length t.slots then t.overfills <- t.overfills + 1
  else begin
    t.slots.(t.free) <- pkt;
    t.free <- t.free + 1;
    t.recycles <- t.recycles + 1
  end

let available t = t.free
let low_watermark t = t.low_watermark
let capacity t = Array.length t.slots
let takes t = t.takes
let recycles t = t.recycles
let exhaustions t = t.exhaustions
let overfills t = t.overfills
