type node_id = int

type link = {
  a : node_id;
  b : node_id;
  bandwidth_bps : float;
  delay : Vini_sim.Time.t;
  loss : float;
  weight : int;
}

type t = {
  label : string;
  names : string array;
  link_list : link list;
  adj : (node_id * link) list array;
  by_name : (string, node_id) Hashtbl.t;
}

exception Unknown_node of { topo : string; node : string }

let () =
  Printexc.register_printer (function
    | Unknown_node { topo; node } ->
        Some (Printf.sprintf "Graph.Unknown_node(topology %S has no node %S)" topo node)
    | _ -> None)

let other_end link n =
  if n = link.a then link.b
  else if n = link.b then link.a
  else invalid_arg "Graph.other_end: node not an endpoint"

let create ~names ~links =
  let n = Array.length names in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun l ->
      if l.a < 0 || l.a >= n || l.b < 0 || l.b >= n then
        invalid_arg "Graph.create: endpoint out of range";
      if l.a = l.b then invalid_arg "Graph.create: self-loop";
      let key = (min l.a l.b, max l.a l.b) in
      if Hashtbl.mem seen key then
        invalid_arg "Graph.create: duplicate link";
      Hashtbl.add seen key ())
    links;
  let adj = Array.make n [] in
  List.iter
    (fun l ->
      adj.(l.a) <- (l.b, l) :: adj.(l.a);
      adj.(l.b) <- (l.a, l) :: adj.(l.b))
    links;
  Array.iteri
    (fun i l -> adj.(i) <- List.sort (fun (x, _) (y, _) -> compare x y) l)
    adj;
  let by_name = Hashtbl.create n in
  Array.iteri (fun i name -> Hashtbl.replace by_name name i) names;
  { label = "topology"; names; link_list = links; adj; by_name }

let relabel label t = { t with label }
let node_count t = Array.length t.names
let link_count t = List.length t.link_list
let label t = t.label
let name t i = t.names.(i)
let id_of_name_opt t n = Hashtbl.find_opt t.by_name n

let id_of_name t n =
  match Hashtbl.find_opt t.by_name n with
  | Some i -> i
  | None -> raise (Unknown_node { topo = t.label; node = n })

let links t = t.link_list
let nodes t = List.init (node_count t) Fun.id
let neighbors t i = t.adj.(i)

let find_link t x y =
  List.find_map (fun (nbr, l) -> if nbr = y then Some l else None) t.adj.(x)

let is_connected t =
  let n = node_count t in
  if n = 0 then true
  else begin
    let visited = Array.make n false in
    let rec dfs i =
      if not visited.(i) then begin
        visited.(i) <- true;
        List.iter (fun (j, _) -> dfs j) t.adj.(i)
      end
    in
    dfs 0;
    Array.for_all Fun.id visited
  end

let dijkstra ?(weight_of = fun l -> l.weight) t src =
  let n = node_count t in
  let dist = Array.make n max_int in
  let prev = Array.make n None in
  let heap =
    Vini_std.Heap.create ~cmp:(fun (d1, n1) (d2, n2) ->
        let c = compare d1 d2 in
        if c <> 0 then c else compare n1 n2)
  in
  dist.(src) <- 0;
  Vini_std.Heap.push heap (0, src);
  let rec drain () =
    match Vini_std.Heap.pop heap with
    | None -> ()
    | Some (d, u) ->
        if d = dist.(u) then
          List.iter
            (fun (v, l) ->
              let w = weight_of l in
              if w < 0 then invalid_arg "Graph.dijkstra: negative weight";
              let better = d + w < dist.(v) in
              let tie_towards_lower_prev =
                d + w = dist.(v)
                && (match prev.(v) with Some p -> u < p | None -> false)
              in
              if better || tie_towards_lower_prev then begin
                dist.(v) <- d + w;
                prev.(v) <- Some u;
                Vini_std.Heap.push heap (dist.(v), v)
              end)
            t.adj.(u);
        drain ()
  in
  drain ();
  (dist, prev)

let shortest_path ?weight_of t src dst =
  let _, prev = dijkstra ?weight_of t src in
  if src = dst then Some [ src ]
  else
    match prev.(dst) with
    | None -> None
    | Some _ ->
        let rec build acc v =
          if v = src then v :: acc
          else
            match prev.(v) with
            | Some p -> build (v :: acc) p
            | None -> assert false
        in
        Some (build [ dst ] (Option.get prev.(dst)))

let bellman_ford ?(weight_of = fun l -> l.weight) t src =
  let n = node_count t in
  let dist = Array.make n max_int in
  dist.(src) <- 0;
  for _ = 1 to n - 1 do
    List.iter
      (fun l ->
        let w = weight_of l in
        let relax u v =
          if dist.(u) < max_int && dist.(u) + w < dist.(v) then
            dist.(v) <- dist.(u) + w
        in
        relax l.a l.b;
        relax l.b l.a)
      t.link_list
  done;
  dist

let fold_path t path ~init ~f =
  match path with
  | [] | [ _ ] -> init
  | first :: rest ->
      let acc, _ =
        List.fold_left
          (fun (acc, u) v ->
            match find_link t u v with
            | Some l -> (f acc l, v)
            | None -> invalid_arg "Graph: path nodes not adjacent")
          (init, first) rest
      in
      acc

let path_delay t path =
  fold_path t path ~init:Vini_sim.Time.zero ~f:(fun acc l ->
      Vini_sim.Time.add acc l.delay)

let path_weight t path = fold_path t path ~init:0 ~f:(fun acc l -> acc + l.weight)

let pp ppf t =
  Format.fprintf ppf "graph with %d nodes, %d links@." (node_count t)
    (link_count t);
  List.iter
    (fun l ->
      Format.fprintf ppf "  %s -- %s  %.0f Mb/s  %.2f ms  w=%d@."
        t.names.(l.a) t.names.(l.b)
        (l.bandwidth_bps /. 1e6)
        (Vini_sim.Time.to_ms_f l.delay)
        l.weight)
    t.link_list
