(** Undirected network topologies.

    Nodes are dense integer ids with human-readable names; links are
    point-to-point with a bandwidth, a one-way propagation delay, a random
    loss rate, and an IGP weight.  This one structure describes both
    physical substrates (Abilene, DETER) and the virtual topologies VINI
    embeds on them. *)

type node_id = int

type link = {
  a : node_id;
  b : node_id;
  bandwidth_bps : float;
  delay : Vini_sim.Time.t;  (** one-way propagation *)
  loss : float;             (** per-packet drop probability in [0,1] *)
  weight : int;             (** IGP cost, symmetric *)
}

type t

exception Unknown_node of { topo : string; node : string }
(** Raised by {!id_of_name} for unknown names; carries the topology's
    {!label} and the offending name so the error that surfaces from spec
    elaboration (or anywhere else) says exactly what was missing and
    where — never a bare [Not_found]. *)

val create : names:string array -> links:link list -> t
(** @raise Invalid_argument on out-of-range endpoints, self-loops, or
    duplicate (unordered) node pairs.  The new graph's {!label} is the
    generic ["topology"]; use {!relabel} to give it a real name. *)

val relabel : string -> t -> t
(** [relabel l t] is [t] with {!label} [l] — the built-in datasets stamp
    theirs (["abilene"], ["nlr"], …), spec elaboration uses the spec name,
    and the scenario generator stamps generated substrates with kind and
    seed, so {!Unknown_node} errors say which topology was searched. *)

val node_count : t -> int
val link_count : t -> int
val label : t -> string
val name : t -> node_id -> string

val id_of_name : t -> string -> node_id
(** @raise Unknown_node for unknown names. *)

val id_of_name_opt : t -> string -> node_id option

val links : t -> link list
val nodes : t -> node_id list

val neighbors : t -> node_id -> (node_id * link) list
(** Sorted by neighbor id (deterministic iteration order). *)

val find_link : t -> node_id -> node_id -> link option
(** Either endpoint order. *)

val other_end : link -> node_id -> node_id
(** @raise Invalid_argument when the node is not an endpoint. *)

val is_connected : t -> bool

(** {2 Shortest paths} *)

val dijkstra : ?weight_of:(link -> int) -> t -> node_id -> int array * node_id option array
(** [dijkstra t src] returns [(dist, prev)]; unreachable nodes have
    [dist = max_int] and [prev = None].  Ties broken towards the
    lower-numbered previous hop, deterministically. *)

val shortest_path : ?weight_of:(link -> int) -> t -> node_id -> node_id -> node_id list option
(** Node sequence from src to dst inclusive, or [None] if unreachable. *)

val bellman_ford : ?weight_of:(link -> int) -> t -> node_id -> int array
(** Reference implementation used by property tests. *)

val path_delay : t -> node_id list -> Vini_sim.Time.t
(** Sum of one-way link delays along a node path.
    @raise Invalid_argument if consecutive nodes are not adjacent. *)

val path_weight : t -> node_id list -> int

val pp : Format.formatter -> t -> unit
