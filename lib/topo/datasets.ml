let ms_f = Vini_sim.Time.of_ms_f

(* Link helper: weight defaults to 100 * one-way delay in ms, mirroring
   Abilene's distance-proportional IGP costs. *)
let link ?weight ?(loss = 0.0) ~bw a b delay_ms =
  let weight =
    match weight with
    | Some w -> w
    | None -> int_of_float (Float.round (delay_ms *. 100.0))
  in
  { Graph.a; b; bandwidth_bps = bw; delay = ms_f delay_ms; loss; weight }

module Abilene = struct
  let seattle = 0
  let sunnyvale = 1
  let los_angeles = 2
  let denver = 3
  let kansas_city = 4
  let houston = 5
  let atlanta = 6
  let indianapolis = 7
  let chicago = 8
  let new_york = 9
  let washington = 10

  let pop_names =
    [|
      "Seattle"; "Sunnyvale"; "Los Angeles"; "Denver"; "Kansas City";
      "Houston"; "Atlanta"; "Indianapolis"; "Chicago"; "New York";
      "Washington DC";
    |]

  (* OC-192 backbone: 10 Gb/s.  One-way delays (ms) are from PoP-pair fiber
     distance; they make D.C.->Seattle 38.0 ms one-way on the north path
     (RTT 76 ms) and 46.5 ms on the south path (RTT 93 ms), matching §5.2. *)
  let bw = 10e9

  let topology () =
    Graph.relabel "abilene"
    @@ Graph.create ~names:pop_names
      ~links:
        [
          link ~bw seattle sunnyvale 8.0;
          link ~bw seattle denver 14.5;
          link ~bw sunnyvale los_angeles 5.0;
          link ~bw sunnyvale denver 12.0;
          link ~bw los_angeles houston 15.5;
          link ~bw denver kansas_city 5.5;
          link ~bw kansas_city houston 9.0;
          link ~bw kansas_city indianapolis 5.0;
          link ~bw houston atlanta 10.0;
          link ~bw atlanta indianapolis 5.5;
          link ~bw atlanta washington 8.0;
          link ~bw indianapolis chicago 2.5;
          link ~bw chicago new_york 8.5;
          link ~bw new_york washington 2.0;
        ]
end

module Deter = struct
  let src = 0
  let fwdr = 1
  let sink = 2

  (* Gigabit Ethernet, back-to-back machines: propagation is microseconds. *)
  let topology () =
    Graph.relabel "deter"
    @@ Graph.create
      ~names:[| "Src"; "Fwdr"; "Sink" |]
      ~links:
        [
          link ~bw:1e9 ~weight:1 src fwdr 0.02;
          link ~bw:1e9 ~weight:1 fwdr sink 0.02;
        ]
end

module Planetlab3 = struct
  let chicago = 0
  let new_york = 1
  let washington = 2

  (* 100 Mb/s node access; delays give the 24.4 ms Chicago-D.C. floor the
     paper measured with ping (Table 5, "Network" row). *)
  let topology () =
    Graph.relabel "planetlab3"
    @@ Graph.create
      ~names:[| "planetlab1.chin"; "planetlab1.nycm"; "planetlab1.wash" |]
      ~links:
        [
          link ~bw:100e6 ~weight:1 chicago new_york 10.1;
          link ~bw:100e6 ~weight:1 new_york washington 2.0;
        ]
end

module Nlr = struct
  let seattle = 0
  let sunnyvale = 1
  let los_angeles = 2
  let denver = 3
  let chicago = 4
  let pittsburgh = 5
  let washington = 6
  let atlanta = 7
  let jacksonville = 8
  let houston = 9

  (* NLR PacketNet ran 10 GbE waves around the national footprint; delays
     from fiber distance like the Abilene dataset. *)
  let bw = 10e9

  let topology () =
    Graph.relabel "nlr"
    @@ Graph.create
      ~names:
        [|
          "Seattle"; "Sunnyvale"; "Los Angeles"; "Denver"; "Chicago";
          "Pittsburgh"; "Washington DC"; "Atlanta"; "Jacksonville"; "Houston";
        |]
      ~links:
        [
          link ~bw seattle sunnyvale 8.5;
          link ~bw seattle denver 13.0;
          link ~bw sunnyvale los_angeles 4.5;
          link ~bw los_angeles houston 15.5;
          link ~bw denver chicago 11.0;
          link ~bw chicago pittsburgh 5.0;
          link ~bw pittsburgh washington 2.5;
          link ~bw washington atlanta 7.5;
          link ~bw atlanta jacksonville 3.5;
          link ~bw jacksonville houston 9.5;
          link ~bw atlanta houston 10.0;
          link ~bw denver houston 10.5;
        ]
end

let ring ~n ?(bandwidth_bps = 1e9) ?(delay = Vini_sim.Time.ms 2) () =
  if n < 3 then invalid_arg "Datasets.ring: need at least 3 nodes";
  Graph.relabel (Printf.sprintf "ring-%d" n)
  @@ Graph.create
    ~names:(Array.init n (Printf.sprintf "r%d"))
    ~links:
      (List.init n (fun i ->
           {
             Graph.a = i;
             b = (i + 1) mod n;
             bandwidth_bps;
             delay;
             loss = 0.0;
             weight = 1;
           }))

let star ~leaves ?(bandwidth_bps = 1e9) ?(delay = Vini_sim.Time.ms 2) () =
  if leaves < 1 then invalid_arg "Datasets.star: need at least 1 leaf";
  Graph.relabel (Printf.sprintf "star-%d" leaves)
  @@ Graph.create
    ~names:(Array.init (leaves + 1) (fun i -> if i = 0 then "hub" else Printf.sprintf "leaf%d" i))
    ~links:
      (List.init leaves (fun i ->
           {
             Graph.a = 0;
             b = i + 1;
             bandwidth_bps;
             delay;
             loss = 0.0;
             weight = 1;
           }))

let grid ~rows ~cols ?(bandwidth_bps = 1e9) ?(delay = Vini_sim.Time.ms 2) () =
  if rows < 1 || cols < 1 then invalid_arg "Datasets.grid: bad dimensions";
  let id r c = (r * cols) + c in
  let links = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then
        links :=
          { Graph.a = id r c; b = id r (c + 1); bandwidth_bps; delay;
            loss = 0.0; weight = 1 }
          :: !links;
      if r + 1 < rows then
        links :=
          { Graph.a = id r c; b = id (r + 1) c; bandwidth_bps; delay;
            loss = 0.0; weight = 1 }
          :: !links
    done
  done;
  Graph.relabel (Printf.sprintf "grid-%dx%d" rows cols)
  @@ Graph.create
    ~names:(Array.init (rows * cols) (Printf.sprintf "g%d"))
    ~links:!links

let waxman ~rng ~n ?(alpha = 0.4) ?(beta = 0.6) ?(bandwidth_bps = 1e9) () =
  if n < 1 then invalid_arg "Datasets.waxman: n must be positive";
  let xs = Array.init n (fun _ -> Vini_std.Rng.float rng 1.0) in
  let ys = Array.init n (fun _ -> Vini_std.Rng.float rng 1.0) in
  let dist i j = Float.hypot (xs.(i) -. xs.(j)) (ys.(i) -. ys.(j)) in
  let km_per_unit = 4000.0 in
  let delay_ms i j =
    (* 5 us/km of fiber, floor of 100 us so zero-length links stay sane. *)
    Float.max 0.1 (dist i j *. km_per_unit *. 0.005)
  in
  let mk i j =
    link ~bw:bandwidth_bps (min i j) (max i j) (delay_ms i j)
  in
  let have = Hashtbl.create 16 in
  let links = ref [] in
  let add i j =
    let key = (min i j, max i j) in
    if i <> j && not (Hashtbl.mem have key) then begin
      Hashtbl.add have key ();
      links := mk i j :: !links
    end
  in
  (* Random spanning tree for connectivity. *)
  for i = 1 to n - 1 do
    add i (Vini_std.Rng.int rng i)
  done;
  (* Waxman edges: P(i,j) = alpha * exp(-d / (beta * L)). *)
  let l = Float.sqrt 2.0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let p = alpha *. exp (-.dist i j /. (beta *. l)) in
      if Vini_std.Rng.float rng 1.0 < p then add i j
    done
  done;
  Graph.relabel (Printf.sprintf "waxman-%d" n)
  @@ Graph.create
    ~names:(Array.init n (Printf.sprintf "n%d"))
    ~links:!links
