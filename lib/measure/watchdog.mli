(** Invariant watchdog for a running IIAS overlay.

    Periodically sweeps the data plane for conditions that should never
    persist in a converged network:

    - {b loop} — following FIBs hop-by-hop towards a destination revisits
      nodes past a TTL budget (a simulated TTL-limited probe);
    - {b blackhole} — a pair of live virtual nodes that the up-link/live-node
      virtual graph still connects stays unreachable longer than the grace
      period (transient unreachability during reconvergence is expected);
    - {b fib-consistency} — a RIB best route missing from the node's Click
      FIB (e.g. a restart that failed to reinstall routes).

    Violations are kept in-process, emitted as [Watchdog_check] trace
    events (category [Watchdog], severity [Warn]) when a sink listens, and
    serialize to JSON for experiment reports.  The watchdog draws no
    randomness and schedules with no jitter, so adding one to a run
    changes no packet-level result. *)

type t

type violation = {
  v_at : Vini_sim.Time.t;
  v_check : string;   (** ["loop"] | ["blackhole"] | ["fib-consistency"] *)
  v_detail : string;
}

val create :
  engine:Vini_sim.Engine.t ->
  overlay:Vini_overlay.Iias.t ->
  vtopo:Vini_topo.Graph.t ->
  ?period:Vini_sim.Time.t ->
  ?grace:Vini_sim.Time.t ->
  ?migration_aware:bool ->
  unit ->
  t
(** Default: sweep every 1 s, blackhole grace 15 s (past the paper's 10 s
    OSPF dead interval plus SPF hold-down).

    [migration_aware] (default [true]) suppresses alarms attributable to
    a vnode inside its planned-migration cutover window
    ({!Vini_overlay.Iias.migration_grace}): its FIB is deliberately
    frozen between the flip and drain-complete, so fib-consistency
    checks on it skip, probes crossing it are inconclusive rather than
    loops/blackholes, and its pending unreachability clocks are purged.
    Pass [false] to observe the pre-suppression behaviour (the watchdog
    then alarms on planned cutovers — regression-tested).
    @raise Invalid_argument on a non-positive period. *)

val start : t -> unit
(** Begin sweeping (first sweep one period from now).  Idempotent.
    @raise Invalid_argument after {!stop}. *)

val stop : t -> unit
(** Stop sweeping permanently. *)

val sweep : t -> unit
(** Run one sweep immediately (tests; also counted in {!sweeps}). *)

val violations : t -> violation list
(** Chronological. *)

val violation_count : t -> int
val sweeps : t -> int

val counts_by_check : t -> (string * int) list
(** Violation totals per check name, sorted by name. *)

val json : t -> Export.json
(** [{ sweeps; violation_count; by_check; violations }] — embedded in
    experiment reports and written by [vini run --report-out]. *)
