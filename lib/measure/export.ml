module Trace = Vini_sim.Trace
module Histogram = Vini_std.Histogram

let schema_version = "vini.metrics/1"

(* ---- the JSON tree lives in Vini_std.Json (shared with the scenario
   generator's vini.topo/1 documents); re-exported here so existing
   consumers keep their Export.json view of it. *)

type json = Vini_std.Json.t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

let to_string = Vini_std.Json.to_string
let of_string = Vini_std.Json.of_string
let member = Vini_std.Json.member
let to_list = Vini_std.Json.to_list
let to_float = Vini_std.Json.to_float
let to_str = Vini_std.Json.to_str
let num_to_string = Vini_std.Json.num_to_string

(* ---- the stable export schema ------------------------------------------ *)

let points_json pts = Arr (List.map (fun (t, v) -> Arr [ Num t; Num v ]) pts)

let series_json m =
  Arr
    (List.map
       (fun name ->
         Obj
           [
             ("name", Str name);
             ("kind", Str (Monitor.series_kind_name (Monitor.kind m ~name)));
             ("points", points_json (Monitor.series m ~name));
           ])
       (Monitor.names m))

let histogram_json ~name h =
  Obj
    [
      ("name", Str name);
      ("count", Num (float_of_int (Histogram.count h)));
      ("sum", Num (Histogram.sum h));
      ("mean", Num (Histogram.mean h));
      ("min", Num (Histogram.min h));
      ("max", Num (Histogram.max h));
      ("p50", Num (Histogram.percentile h 50.0));
      ("p95", Num (Histogram.percentile h 95.0));
      ("p99", Num (Histogram.percentile h 99.0));
      ( "buckets",
        Arr
          (List.map
             (fun (lo, hi, c) -> Arr [ Num lo; Num hi; Num (float_of_int c) ])
             (Histogram.buckets h)) );
    ]

let histograms_json m =
  Arr (List.map (fun (name, h) -> histogram_json ~name h) (Monitor.histograms m))

let event_json (ev : Trace.event) =
  let fields =
    match ev.Trace.kind with
    | Trace.Packet_tx { bytes } -> [ ("bytes", Num (float_of_int bytes)) ]
    | Trace.Packet_rx { bytes } -> [ ("bytes", Num (float_of_int bytes)) ]
    | Trace.Packet_drop { reason; bytes } ->
        [ ("reason", Str reason); ("bytes", Num (float_of_int bytes)) ]
    | Trace.Route_update { prefix; action } ->
        [ ("prefix", Str prefix); ("action", Str action) ]
    | Trace.Sched_latency { seconds } -> [ ("seconds", Num seconds) ]
    | Trace.Fault_injected { action } -> [ ("action", Str action) ]
    | Trace.Process_lifecycle { phase; detail } ->
        [ ("phase", Str phase); ("detail", Str detail) ]
    | Trace.Watchdog_check { check; detail } ->
        [ ("check", Str check); ("detail", Str detail) ]
    | Trace.Custom detail -> [ ("detail", Str detail) ]
  in
  Obj
    ([
       ("t", Num (Vini_sim.Time.to_sec_f ev.Trace.time));
       ("category", Str (Trace.Category.name (Trace.category_of_kind ev.Trace.kind)));
       ("severity", Str (Trace.severity_name ev.Trace.severity));
       ("component", Str ev.Trace.component);
     ]
    @ fields)

let trace_json tr =
  (* Sharded engines record window by window (shard-major), so ring order
     is only per-shard chronological; a stable sort by timestamp restores
     the global order.  On a single-queue engine the ring is already
     time-ordered and the stable sort is the identity. *)
  let events =
    List.stable_sort
      (fun a b -> Vini_sim.Time.compare a.Trace.time b.Trace.time)
      (Trace.events tr)
  in
  Obj
    [
      ("capacity", Num (float_of_int (Trace.capacity tr)));
      ("overwritten", Num (float_of_int (Trace.overwritten tr)));
      ("events", Arr (List.map event_json events));
    ]

let document ?trace ?(extra = []) monitors =
  let series =
    Arr (List.concat_map (fun m -> Option.value ~default:[] (to_list (series_json m))) monitors)
  in
  let hists =
    Arr
      (List.concat_map
         (fun m -> Option.value ~default:[] (to_list (histograms_json m)))
         monitors)
  in
  Obj
    ([ ("schema", Str schema_version); ("series", series); ("histograms", hists) ]
    @ (match trace with None -> [] | Some tr -> [ ("trace", trace_json tr) ])
    @ extra)

(* ---- the vini.spans/1 flight-recorder schema ----------------------------

   One document that is simultaneously:
   - the stable [vini.spans/1] schema (breakdown, drops-with-paths,
     worst-path exemplars), and
   - a Chrome trace-event JSON object (the [traceEvents] key), loadable
     directly in Perfetto / chrome://tracing: hops are "X" complete
     events on track [tid = provenance id], origins and drops are "i"
     instants.  Extra top-level keys are ignored by the viewers. *)

let spans_schema_version = "vini.spans/1"

let us t = Vini_sim.Time.to_sec_f t *. 1e6

let span_trace_events trees =
  List.concat_map
    (fun (tr : Span.tree) ->
      let tid = Num (float_of_int tr.Span.tree_orig) in
      let origins =
        List.map
          (fun (o : Span.origin) ->
            Obj
              [
                ("name", Str o.Span.o_component);
                ("cat", Str "origin");
                ("ph", Str "i");
                ("s", Str "t");
                ("ts", Num (us o.Span.o_t));
                ("pid", Num 1.0);
                ("tid", tid);
                ( "args",
                  Obj
                    [
                      ("pkt", Num (float_of_int o.Span.o_pkt));
                      ("bytes", Num (float_of_int o.Span.o_bytes));
                    ] );
              ])
          tr.Span.origins
      in
      let hops =
        List.map
          (fun (h : Span.hop) ->
            Obj
              [
                ("name", Str h.Span.h_component);
                ( "cat",
                  Str (Vini_sim.Span.attribution_name h.Span.h_attribution) );
                ("ph", Str "X");
                ("ts", Num (us h.Span.h_t0));
                ("dur", Num (us h.Span.h_t1 -. us h.Span.h_t0));
                ("pid", Num 1.0);
                ("tid", tid);
                ("args", Obj [ ("pkt", Num (float_of_int h.Span.h_pkt)) ]);
              ])
          tr.Span.hops
      in
      let drops =
        List.map
          (fun (d : Span.drop) ->
            Obj
              [
                ("name", Str (d.Span.d_component ^ "!" ^ d.Span.d_reason));
                ("cat", Str "drop");
                ("ph", Str "i");
                ("s", Str "t");
                ("ts", Num (us d.Span.d_t));
                ("pid", Num 1.0);
                ("tid", tid);
                ( "args",
                  Obj
                    [
                      ("pkt", Num (float_of_int d.Span.d_pkt));
                      ("reason", Str d.Span.d_reason);
                      ("bytes", Num (float_of_int d.Span.d_bytes));
                    ] );
              ])
          tr.Span.drops
      in
      origins @ hops @ drops)
    trees

let span_row_json (r : Span.row) =
  let pct p =
    if Histogram.count r.Span.hist = 0 then 0.0
    else Histogram.percentile r.Span.hist p
  in
  Obj
    [
      ( "attribution",
        Str (Vini_sim.Span.attribution_name r.Span.attribution) );
      ("hops", Num (float_of_int r.Span.hop_count));
      ("total_s", Num r.Span.total_s);
      ( "mean_s",
        Num
          (if r.Span.hop_count = 0 then 0.0
           else r.Span.total_s /. float_of_int r.Span.hop_count) );
      ("p95_s", Num (pct 95.0));
    ]

let span_path_step_json = function
  | Span.At_origin (o : Span.origin) ->
      Obj
        [
          ("kind", Str "origin");
          ("component", Str o.Span.o_component);
          ("pkt", Num (float_of_int o.Span.o_pkt));
          ("t_s", Num (Vini_sim.Time.to_sec_f o.Span.o_t));
        ]
  | Span.Through (h : Span.hop) ->
      Obj
        [
          ("kind", Str "hop");
          ("component", Str h.Span.h_component);
          ( "attribution",
            Str (Vini_sim.Span.attribution_name h.Span.h_attribution) );
          ("pkt", Num (float_of_int h.Span.h_pkt));
          ("t0_s", Num (Vini_sim.Time.to_sec_f h.Span.h_t0));
          ("t1_s", Num (Vini_sim.Time.to_sec_f h.Span.h_t1));
        ]

let span_forensic_json (f : Span.forensic) =
  Obj
    [
      ("orig", Num (float_of_int f.Span.f_orig));
      ("pkt", Num (float_of_int f.Span.f_pkt));
      ("site", Str f.Span.f_site);
      ("reason", Str f.Span.f_reason);
      ("bytes", Num (float_of_int f.Span.f_bytes));
      ("t_s", Num (Vini_sim.Time.to_sec_f f.Span.f_t));
      ("path", Arr (List.map span_path_step_json f.Span.f_path));
    ]

let span_tree_json (tr : Span.tree) =
  Obj
    [
      ("orig", Num (float_of_int tr.Span.tree_orig));
      ("origin", Str (Span.root_component tr));
      ("total_s", Num (Span.total_latency tr));
      ("dropped", Bool (tr.Span.drops <> []));
      ( "hops",
        Arr
          (List.map
             (fun (h : Span.hop) ->
               Obj
                 [
                   ("component", Str h.Span.h_component);
                   ( "attribution",
                     Str
                       (Vini_sim.Span.attribution_name h.Span.h_attribution)
                   );
                   ("t0_s", Num (Vini_sim.Time.to_sec_f h.Span.h_t0));
                   ("duration_s", Num (Span.hop_duration_s h));
                 ])
             tr.Span.hops) );
    ]

(* Perfetto counter tracks: each timeline series becomes a "C" event per
   sample, so pool occupancy, ring depth and engine backlog plot as
   graphs alongside the packet spans. *)
let counter_trace_events counters =
  List.concat_map
    (fun (name, points) ->
      List.map
        (fun (t_s, v) ->
          Obj
            [
              ("name", Str name);
              ("ph", Str "C");
              ("ts", Num (t_s *. 1e6));
              ("pid", Num 1.0);
              ("args", Obj [ ("value", Num v) ]);
            ])
        points)
    counters

(* The profiler's element attribution: a per-class summary plus the
   collapsed stacks — each a root-to-leaf element path with its
   attributed cost, one "path µs" line per entry, loadable directly by
   flamegraph.pl (integer microseconds as the sample count). *)
let profile_sections p =
  let module Profile = Vini_sim.Profile in
  [
    ( "element_profile",
      Arr
        (List.map
           (fun (r : Profile.element_row) ->
             Obj
               [
                 ("class", Str r.Profile.er_class);
                 ("packets", Num (float_of_int r.Profile.er_packets));
                 ("self_s", Num r.Profile.er_self_s);
                 ("total_s", Num r.Profile.er_total_s);
               ])
           (Profile.element_rows p)) );
    ( "collapsed",
      Arr
        (List.map
           (fun (path, cost_s, _count) ->
             Str (Printf.sprintf "%s %.0f" path (cost_s *. 1e6)))
           (Profile.collapsed p)) );
  ]

let spans_document ?(worst = 5) ?profile ?(counters = []) ?(extra = [])
    recorder =
  let trees = Span.trees recorder in
  Obj
    ([
       ("schema", Str spans_schema_version);
       ("displayTimeUnit", Str "ms");
       ( "recorder",
         Obj
           [
             ( "capacity",
               Num (float_of_int (Vini_sim.Span.capacity recorder)) );
             ("retained", Num (float_of_int (Vini_sim.Span.length recorder)));
             ( "overwritten",
               Num (float_of_int (Vini_sim.Span.overwritten recorder)) );
           ] );
       ( "traceEvents",
         Arr (span_trace_events trees @ counter_trace_events counters) );
       ("breakdown", Arr (List.map span_row_json (Span.breakdown trees)));
       ( "breakdown_by_origin",
         Arr
           (List.map
              (fun (key, rows) ->
                Obj
                  [
                    ("origin", Str key);
                    ("rows", Arr (List.map span_row_json rows));
                  ])
              (Span.breakdown_by_origin trees)) );
       ("drops", Arr (List.map span_forensic_json (Span.forensics trees)));
       ( "worst_paths",
         Arr (List.map span_tree_json (Span.worst ~n:worst trees)) );
     ]
    @ (match profile with None -> [] | Some p -> profile_sections p)
    @ extra)

let write ~path j =
  let oc = open_out path in
  output_string oc (to_string j);
  output_char oc '\n';
  close_out oc

(* ---- CSV ---------------------------------------------------------------- *)

let csv_cell s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let series_csv m =
  let b = Buffer.create 1024 in
  Buffer.add_string b "name,kind,time_s,value\n";
  List.iter
    (fun name ->
      let kind = Monitor.series_kind_name (Monitor.kind m ~name) in
      List.iter
        (fun (t, v) ->
          Buffer.add_string b
            (Printf.sprintf "%s,%s,%s,%s\n" (csv_cell name) kind
               (num_to_string t) (num_to_string v)))
        (Monitor.series m ~name))
    (Monitor.names m);
  Buffer.contents b

let trace_csv tr =
  let b = Buffer.create 1024 in
  Buffer.add_string b "time_s,category,severity,component,detail\n";
  List.iter
    (fun (ev : Trace.event) ->
      Buffer.add_string b
        (Printf.sprintf "%s,%s,%s,%s,%s\n"
           (num_to_string (Vini_sim.Time.to_sec_f ev.Trace.time))
           (Trace.Category.name (Trace.category_of_kind ev.Trace.kind))
           (Trace.severity_name ev.Trace.severity)
           (csv_cell ev.Trace.component)
           (csv_cell (Trace.kind_detail ev.Trace.kind))))
    (Trace.events tr);
  Buffer.contents b

(* ---- vini.embed/1 ------------------------------------------------------- *)

let embed_schema_version = "vini.embed/1"

module Substrate = Vini_embed.Substrate
module Embed = Vini_embed.Embed
module Request = Vini_embed.Request

type embed_slice = {
  es_name : string;
  es_vtopo : Vini_topo.Graph.t;
  es_request : Request.t;
  es_result : (Embed.mapping, Embed.rejection) result;
}

type embed_migration = {
  mg_vnode : int;
  mg_from : int;
  mg_to : int;
  mg_kind : string;
  mg_down_s : float;
  mg_restored_s : float;
  mg_cutover_loss : int option;
  mg_stretch_before : float;
  mg_stretch_after : float;
  mg_balance_before : float;
  mg_balance_after : float;
}

let embed_slice_json sub s =
  let module Graph = Vini_topo.Graph in
  let base =
    [
      ("name", Str s.es_name);
      ("algo", Str (Request.algo_to_string s.es_request.Request.algo));
      ("seed", Num (float_of_int s.es_request.Request.seed));
    ]
  in
  match s.es_result with
  | Error r ->
      Obj
        (base
        @ [
            ("status", Str "rejected");
            ( "rejection",
              Obj
                [
                  ("kind", Str (Embed.rejection_kind r));
                  ("detail", Str (Embed.rejection_to_string r));
                ] );
          ])
  | Ok m ->
      let sg = Substrate.graph sub in
      let nodes =
        Array.to_list
          (Array.mapi
             (fun v p ->
               Obj
                 [
                   ("vnode", Num (float_of_int v));
                   ("vname", Str (Graph.name s.es_vtopo v));
                   ("pnode", Num (float_of_int p));
                   ("pname", Str (Graph.name sg p));
                   ("cpu", Num (s.es_request.Request.cpu_demand v));
                 ])
             m.Embed.nodes)
      in
      let vlinks =
        List.map
          (fun ((va, vb), path) ->
            let bw =
              match Graph.find_link s.es_vtopo va vb with
              | Some l -> s.es_request.Request.bw_demand l
              | None -> 0.0
            in
            Obj
              [
                ("va", Num (float_of_int va));
                ("vb", Num (float_of_int vb));
                ("bw", Num bw);
                ("path", Arr (List.map (fun p -> Num (float_of_int p)) path));
                ("stretch", Num (Embed.path_stretch sub path));
              ])
          m.Embed.vpaths
      in
      Obj
        (base
        @ [
            ("status", Str "mapped");
            ("nodes", Arr nodes);
            ("vlinks", Arr vlinks);
            ("mean_stretch", Num (Embed.stretch sub m));
          ])

let embed_document ?(migrations = []) ?(extra = []) ~substrate ~slices () =
  let module Graph = Vini_topo.Graph in
  let sg = Substrate.graph substrate in
  let pn = Graph.node_count sg in
  let pnode_stress =
    List.init pn (fun p ->
        Obj
          [
            ("pnode", Num (float_of_int p));
            ("pname", Str (Graph.name sg p));
            ("capacity", Num (Substrate.node_capacity substrate p));
            ("used", Num (Substrate.node_used substrate p));
            ("residual", Num (Substrate.node_residual substrate p));
          ])
  in
  let plink_stress =
    List.map
      (fun (l : Graph.link) ->
        Obj
          [
            ("a", Num (float_of_int l.Graph.a));
            ("b", Num (float_of_int l.Graph.b));
            ("capacity", Num (Substrate.link_capacity substrate l.Graph.a l.Graph.b));
            ("used", Num (Substrate.link_used substrate l.Graph.a l.Graph.b));
            ("residual", Num (Substrate.link_residual substrate l.Graph.a l.Graph.b));
          ])
      (Graph.links sg)
  in
  let histogram =
    Array.to_list
      (Array.map
         (fun (lo, hi, count) ->
           Arr [ Num lo; Num hi; Num (float_of_int count) ])
         (Substrate.residual_histogram substrate))
  in
  let migrations_json =
    List.map
      (fun mg ->
        Obj
          [
            ("vnode", Num (float_of_int mg.mg_vnode));
            ("from", Num (float_of_int mg.mg_from));
            ("to", Num (float_of_int mg.mg_to));
            ("kind", Str mg.mg_kind);
            ("down_s", Num mg.mg_down_s);
            ("restored_s", Num mg.mg_restored_s);
            ("downtime_s", Num (mg.mg_restored_s -. mg.mg_down_s));
            ( "cutover_loss",
              match mg.mg_cutover_loss with
              | Some n -> Num (float_of_int n)
              | None -> Null );
            ("stretch_before", Num mg.mg_stretch_before);
            ("stretch_after", Num mg.mg_stretch_after);
            ("balance_before", Num mg.mg_balance_before);
            ("balance_after", Num mg.mg_balance_after);
          ])
      migrations
  in
  Obj
    ([
       ("schema", Str embed_schema_version);
       ( "substrate",
         Obj
           [
             ("nodes", Num (float_of_int pn));
             ("links", Num (float_of_int (Graph.link_count sg)));
           ] );
       ("slices", Arr (List.map (embed_slice_json substrate) slices));
       ("pnode_stress", Arr pnode_stress);
       ("plink_stress", Arr plink_stress);
       ("residual_histogram", Arr histogram);
       ( "acceptance",
         Obj
           [
             ("admitted", Num (float_of_int (Substrate.admitted substrate)));
             ("rejected", Num (float_of_int (Substrate.rejected substrate)));
             ("rate", Num (Substrate.acceptance_rate substrate));
           ] );
       ("migrations", Arr migrations_json);
     ]
    @ extra)

(* ---- the vini.scenario/1 document --------------------------------------- *)

let scenario_schema_version = "vini.scenario/1"

let scenario_document ?(name = "scenario") ?fluid ?under ~substrate ~workload
    () =
  let module Graph = Vini_topo.Graph in
  let module W = Vini_scenario.Workload in
  let delays =
    List.map (fun l -> Vini_sim.Time.to_ms_f l.Graph.delay)
      (Graph.links substrate)
  in
  let mean xs =
    match xs with
    | [] -> 0.0
    | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
  in
  let substrate_json =
    Obj
      [
        ("label", Str (Graph.label substrate));
        ("nodes", Num (float_of_int (Graph.node_count substrate)));
        ("links", Num (float_of_int (Graph.link_count substrate)));
        ("mean_delay_ms", Num (mean delays));
      ]
  in
  let workload_json =
    Obj
      [
        ("users", Num (float_of_int workload.W.users));
        ("seed", Num (float_of_int workload.W.seed));
        ("flow_rate_per_user", Num workload.W.flow_rate_per_user);
        ("mean_flow_bytes", Num workload.W.mean_flow_bytes);
        ("pareto_shape", Num workload.W.pareto_shape);
        ("popularity_skew", Num workload.W.popularity_skew);
        ("aggregate_flow_rate", Num (W.aggregate_rate workload));
        ("mean_offered_bps", Num (W.mean_offered_bps workload));
      ]
  in
  (* The packet side of the hybrid comparison: per-plink bytes actually
     serialised, which under hybrid fidelity already includes the fluid
     model's delay and loss pressure. *)
  let packet_json =
    match under with
    | None -> Null
    | Some u ->
        Arr
          (List.concat_map
             (fun (l : Graph.link) ->
               let plink = Vini_phys.Underlay.plink u l.Graph.a l.Graph.b in
               List.map
                 (fun dir ->
                   let s = Vini_phys.Plink.stats plink ~dir in
                   let from, to_ =
                     if dir = 0 then (l.Graph.a, l.Graph.b)
                     else (l.Graph.b, l.Graph.a)
                   in
                   Obj
                     [
                       ("from", Str (Graph.name substrate from));
                       ("to", Str (Graph.name substrate to_));
                       ("sent", Num (float_of_int s.Vini_phys.Plink.sent));
                       ( "delivered",
                         Num (float_of_int s.Vini_phys.Plink.delivered) );
                       ( "bytes_sent",
                         Num (float_of_int s.Vini_phys.Plink.bytes_sent) );
                       ( "bg_drops",
                         Num (float_of_int s.Vini_phys.Plink.bg_drops) );
                     ])
                 [ 0; 1 ])
             (Graph.links substrate))
  in
  Obj
    [
      ("schema", Str scenario_schema_version);
      ("name", Str name);
      ("substrate", substrate_json);
      ("workload", workload_json);
      ( "fluid",
        match fluid with
        | None -> Null
        | Some f -> Vini_scenario.Fluid.to_json f );
      ("packet_links", packet_json);
    ]
