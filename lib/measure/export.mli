(** Machine-readable export of traces, series and histograms.

    Produces the stable [vini.metrics/1] JSON schema consumed by CI (the
    per-PR [BENCH_METRICS.json] artifact) and by anything downstream that
    wants artifact-grade measurements:

    {v
    { "schema": "vini.metrics/1",
      "series":     [ {"name", "kind": "gauge"|"counter",
                       "points": [[t_s, value], ...]} ],
      "histograms": [ {"name", "count", "sum", "mean", "min", "max",
                       "p50", "p95", "p99",
                       "buckets": [[lower, upper, count], ...]} ],
      "trace":      { "capacity", "overwritten",
                      "events": [ {"t", "category", "severity",
                                   "component", ...payload}, ... ] } }
    v}

    The module carries its own small JSON tree, printer and parser (the
    repository has no JSON dependency), so exports round-trip in-process
    for tests. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val to_string : json -> string
(** Compact JSON.  Non-finite floats degrade: NaN to [null], infinities to
    [±1e999] (which parse back as infinities). *)

val of_string : string -> (json, string) result

val member : string -> json -> json option
val to_list : json -> json list option
val to_float : json -> float option
val to_str : json -> string option

val schema_version : string

val series_json : Monitor.t -> json
val histogram_json : name:string -> Vini_std.Histogram.t -> json
val histograms_json : Monitor.t -> json
val trace_json : Vini_sim.Trace.t -> json

val document :
  ?trace:Vini_sim.Trace.t -> ?extra:(string * json) list -> Monitor.t list -> json
(** The full schema above: every monitor's series and histograms
    concatenated, plus the trace when given and any [extra] top-level
    fields. *)

val spans_schema_version : string

val spans_document :
  ?worst:int ->
  ?profile:Vini_sim.Profile.t ->
  ?counters:(string * (float * float) list) list ->
  ?extra:(string * json) list ->
  Vini_sim.Span.t ->
  json
(** The [vini.spans/1] flight-recorder document — simultaneously a Chrome
    trace-event JSON object loadable in Perfetto / chrome://tracing.

    [profile] appends the runtime profiler's element attribution: an
    ["element_profile"] array (class, packets, self_s, total_s) and a
    ["collapsed"] array of flamegraph-loadable ["a;b;c µs"] stack lines.
    [counters] (typically {!Timeline.counter_series}) adds one Perfetto
    counter track per series as ["C"] trace events.  Both default to
    absent, leaving the document unchanged:

    {v
    { "schema": "vini.spans/1",
      "displayTimeUnit": "ms",
      "recorder":    {"capacity", "retained", "overwritten"},
      "traceEvents": [ hops as "X" complete events (ts/dur in µs,
                       tid = provenance id, cat = attribution),
                       origins and drops as "i" instants ],
      "breakdown":   [ {"attribution", "hops", "total_s", "mean_s",
                        "p95_s"} per category ],
      "breakdown_by_origin": [ {"origin", "rows": [...]} per flow ],
      "drops":       [ {"orig", "pkt", "site", "reason", "bytes", "t_s",
                        "path": [origin/hop steps so far]} ],
      "worst_paths": [ {"orig", "origin", "total_s", "dropped",
                        "hops": [...]} top-[worst] by latency ] }
    v} *)

val embed_schema_version : string

type embed_slice = {
  es_name : string;
  es_vtopo : Vini_topo.Graph.t;
  es_request : Vini_embed.Request.t;
  es_result :
    (Vini_embed.Embed.mapping, Vini_embed.Embed.rejection) result;
}

type embed_migration = {
  mg_vnode : int;
  mg_from : int;
  mg_to : int;
  mg_kind : string;      (** ["planned"] | ["crash"] *)
  mg_down_s : float;     (** machine-death (or flip) instant, seconds *)
  mg_restored_s : float; (** replacement-takeover instant, seconds *)
  mg_cutover_loss : int option;
      (** planned moves: packets lost across the cutover (zero in steady
          state); [None] (JSON [null]) for crash-driven moves *)
  mg_stretch_before : float;  (** path stretch before/after the move *)
  mg_stretch_after : float;
  mg_balance_before : float;
      (** max per-node substrate stress before/after the move *)
  mg_balance_after : float;
}

val embed_document :
  ?migrations:embed_migration list ->
  ?extra:(string * json) list ->
  substrate:Vini_embed.Substrate.t ->
  slices:embed_slice list ->
  unit ->
  json
(** The [vini.embed/1] document: per-slice mapping (or structured
    rejection), per-physical-node and per-physical-link stress,
    residual-capacity histogram, admission acceptance counters, and
    migration history with per-move downtime:

    {v
    { "schema": "vini.embed/1",
      "substrate":  {"nodes", "links"},
      "slices":     [ {"name", "algo", "seed", "status": "mapped",
                       "nodes":  [{"vnode","vname","pnode","pname","cpu"}],
                       "vlinks": [{"va","vb","bw","path","stretch"}],
                       "mean_stretch"}
                    | {..., "status": "rejected",
                       "rejection": {"kind", "detail"}} ],
      "pnode_stress": [{"pnode","pname","capacity","used","residual"}],
      "plink_stress": [{"a","b","capacity","used","residual"}],
      "residual_histogram": [[lo, hi, count], ...],
      "acceptance": {"admitted", "rejected", "rate"},
      "migrations": [{"vnode","from","to","down_s","restored_s",
                      "downtime_s"}] }
    v} *)

val write : path:string -> json -> unit

val series_csv : Monitor.t -> string
(** "name,kind,time_s,value" rows. *)

val trace_csv : Vini_sim.Trace.t -> string
(** "time_s,category,severity,component,detail" rows. *)

(** {2 The [vini.scenario/1] document} *)

val scenario_schema_version : string
(** ["vini.scenario/1"]. *)

val scenario_document :
  ?name:string ->
  ?fluid:Vini_scenario.Fluid.t ->
  ?under:Vini_phys.Underlay.t ->
  substrate:Vini_topo.Graph.t ->
  workload:Vini_scenario.Workload.params ->
  unit ->
  json
(** Snapshot of an Internet-scale scenario run: the substrate summary
    (label, size, mean delay), the workload parameters with their derived
    aggregate rates, the fluid model's conservation totals and per-link
    load table ({!Vini_scenario.Fluid.to_json}), and — with [?under] —
    the packet side's per-plink counters (bytes serialised, background
    drops) for fluid-vs-packet comparison.  Deterministic field and row
    order; the CI determinism gate [cmp]s this document across domain
    counts. *)
