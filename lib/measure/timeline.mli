(** Sim-clock-driven periodic snapshots — the [vini.timeline/1] time
    series behind [vini top].

    A timeline samples a set of named sources (any [unit -> float]) at a
    fixed simulated-time interval and serialises the result as one JSON
    document:

    {v
    { "schema": "vini.timeline/1",
      "interval_s": 0.2,
      "series":  ["engine.fired", "pool.available", ...],
      "samples": [ [t_s, v0, v1, ...], ... ] }
    v}

    Each sample row carries the snapshot's simulated time followed by one
    value per series, in [series] order; rows are chronological and
    strictly increasing in time.

    {b Determinism.}  Ticks ride the engine clock through
    {!Vini_sim.Engine.at_barrier} — never wall clock — at fixed multiples
    of the interval, so snapshot instants and values are a function of
    the seed and logical shard count alone.  A timeline document is
    byte-identical across [--domains 1/2/4] (CI-gated).  Sources must
    therefore read only deterministic quantities: host-clock data (the
    profiler's barrier waits, the engine's callback histogram) is
    excluded from the prewired watchers by design.

    {b Allocation.}  The sampler allocates only at snapshot boundaries
    (one row per snapshot); between ticks it costs nothing, and it never
    touches packet-path hot code ([Gc.minor_words]-asserted). *)

type t

val schema_version : string
(** ["vini.timeline/1"] *)

val create :
  engine:Vini_sim.Engine.t -> ?interval:Vini_sim.Time.t -> unit -> t
(** Sampling starts one interval (default 1 s of simulated time) from
    now and runs until {!stop}.
    @raise Invalid_argument when the interval is not positive. *)

val register : t -> name:string -> (unit -> float) -> unit
(** Add a series.  The source set freezes at the first snapshot.
    @raise Invalid_argument on duplicate names or after freezing. *)

val gauge : t -> name:string -> (unit -> float) -> unit
(** Alias of {!register} (the timeline does not distinguish gauges from
    counters; [vini top] derives rates from consecutive samples). *)

val sample_now : t -> unit
(** Take one snapshot immediately (freezes the source set).  Used by
    tests and by exporters that want a final row at shutdown. *)

val stop : t -> unit

val interval : t -> Vini_sim.Time.t

(** {2 Prewired sources}

    All deterministic; see the determinism note above. *)

val watch_engine : t -> ?prefix:string -> Vini_sim.Engine.t -> unit
(** [<prefix>.fired], [.inlined], [.cancelled], [.pending],
    [.max_pending] (prefix default ["engine"]). *)

val watch_profile : t -> ?prefix:string -> Vini_sim.Profile.t -> unit
(** [<prefix>.windows], [.cross_posts], [.queue_hwm], [.mailbox_hwm],
    [.events_per_window_p95], [.element_packets], [.element_cost_s]
    (prefix default ["profile"]).  Deliberately excludes the host-clock
    barrier-wait histogram. *)

val watch_pool : t -> prefix:string -> Vini_net.Pool.t -> unit
(** [<prefix>.available], [.low_watermark], [.takes], [.exhaustions]. *)

val watch_ring : t -> prefix:string -> Vini_click.Ring.t -> unit
(** [<prefix>.length], [.depth_hwm], [.pushes], [.rejected]. *)

val watch_process : t -> prefix:string -> Vini_phys.Process.t -> unit
(** [<prefix>.packets], [.breaths], [.breath_utilization], [.cpu_s]. *)

val watch_overlay : t -> ?prefix:string -> Vini_overlay.Iias.t -> unit
(** Whole-overlay aggregates (prefix default ["overlay"]):
    [<prefix>.forwarded], [.delivered], [.no_route], [.fib_memo_hits],
    [.fib_memo_lookups], [.breaths] summed over all vnodes. *)

(** {2 Read side} *)

val names : t -> string list
(** Series names in [series] order (freezes the source set). *)

val nsamples : t -> int

val samples : t -> (float * float array) list
(** Chronological [(t_s, row)] snapshots; rows are copies. *)

val counter_series : t -> (string * (float * float) list) list
(** Per-series [(t_s, value)] points — the shape
    {!Export.spans_document} turns into Perfetto counter tracks. *)

val document : ?extra:(string * Export.json) list -> t -> Export.json
(** The [vini.timeline/1] document above, with any [extra] top-level
    fields appended. *)
