module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Packet = Vini_net.Packet
module Tcp = Vini_transport.Tcp

type t = {
  engine : Engine.t;
  mutable cumulative : int;
  mutable cumulative_rev : (float * int) list;
  mutable positions_rev : (float * int) list;
  mutable packets_rev : (float * int * string) list;
  mutable count : int;
}

let create engine =
  {
    engine;
    cumulative = 0;
    cumulative_rev = [];
    positions_rev = [];
    packets_rev = [];
    count = 0;
  }

let now_s t = Time.to_sec_f (Engine.now t.engine)

let record_packet t pkt =
  t.count <- t.count + 1;
  t.packets_rev <- (now_s t, pkt.Packet.id, Packet.describe pkt) :: t.packets_rev;
  match pkt.Packet.proto with
  | Packet.Tcp seg when seg.Packet.payload_len > 0 ->
      t.positions_rev <- (now_s t, seg.Packet.seq) :: t.positions_rev
  | Packet.Tcp _ | Packet.Udp _ | Packet.Icmp _ -> ()

let attach t conn =
  Tcp.on_segment_arrival conn (fun pkt -> record_packet t pkt);
  Tcp.on_deliver conn (fun n ->
      t.cumulative <- t.cumulative + n;
      t.cumulative_rev <- (now_s t, t.cumulative) :: t.cumulative_rev)

let cumulative_bytes t = List.rev t.cumulative_rev
let segment_positions t = List.rev t.positions_rev
let packets t = List.rev t.packets_rev
let count t = t.count
