(** The metrics registry — periodic gauge/counter sampling plus registered
    latency histograms, the "collect traces of the experiment" facility
    §6.2 asks for (typed event traces live in {!Vini_sim.Trace}).

    Named gauges and counters (any [unit -> float]) are sampled on a fixed
    period into time series; counters are declared monotone so {!rate} and
    the exporter can treat decreases as counter resets.  Histograms are
    owned by the instrumented subsystem ({!Vini_sim.Engine.callback_hist},
    {!Vini_phys.Cpu.wake_latency_hist}, …) and registered here by name so
    {!Export} can serialize everything in one document. *)

type t

type series_kind = Gauge | Counter

val series_kind_name : series_kind -> string

val create :
  engine:Vini_sim.Engine.t -> ?interval:Vini_sim.Time.t -> unit -> t
(** Sampling starts immediately (default every second) and runs until
    {!stop}. *)

val gauge : t -> name:string -> (unit -> float) -> unit
(** @raise Invalid_argument on duplicate names (counters included). *)

val counter : t -> name:string -> (unit -> float) -> unit
(** Like {!gauge}, but declared monotonically non-decreasing. *)

val histogram : t -> name:string -> Vini_std.Histogram.t -> unit
(** Register an externally-owned histogram under [name].
    @raise Invalid_argument on duplicate names. *)

val names : t -> string list
val histograms : t -> (string * Vini_std.Histogram.t) list

val kind : t -> name:string -> series_kind

val series : t -> name:string -> (float * float) list
(** (sample time s, value) — raw samples, chronological. *)

val rate : t -> name:string -> (float * float) list
(** Per-second first difference of a cumulative series.  A decrease is
    treated as a counter reset (the increase since reset is the new value),
    so rates never go negative on restarts. *)

val stop : t -> unit

(** {2 Prewired instrumentation} *)

val watch_vnode : t -> Vini_overlay.Iias.vnode -> prefix:string -> unit
(** Registers [<prefix>.cpu_s], [<prefix>.forwarded], [<prefix>.delivered],
    [<prefix>.sock_drops], [<prefix>.fib_cache_hits/_misses],
    [<prefix>.fib_memo_hits/_lookups] and [<prefix>.breaths] for an IIAS
    virtual node (all counters). *)

val watch_fib : t -> prefix:string -> 'a Vini_click.Fib.t -> unit
(** [<prefix>.lpm_cache_hits] / [.lpm_cache_misses] counters of a FIB's
    per-destination flow cache. *)

val watch_engine : t -> ?prefix:string -> Vini_sim.Engine.t -> unit
(** [<prefix>.fired], [.cancelled], [.pending], [.max_pending] series and
    the [.horizon_s] / [.callback_s] histograms (prefix default
    ["engine"]; enable {!Vini_sim.Engine.set_profiling} to populate the
    histograms). *)

val watch_cpu : t -> prefix:string -> Vini_phys.Cpu.t -> unit
(** [<prefix>.wake_s]: the node scheduler's wake-latency histogram. *)

val watch_pool : t -> prefix:string -> Vini_net.Pool.t -> unit
(** [<prefix>.available] / [.low_watermark] gauges and [.takes],
    [.recycles], [.exhaustions], [.overfills] counters of a packet
    freelist. *)

val watch_ring : t -> prefix:string -> Vini_click.Ring.t -> unit
(** [<prefix>.length] / [.depth_hwm] gauges and [.pushes], [.pops],
    [.rejected] counters of an SPSC packet ring. *)

val watch_process : t -> prefix:string -> Vini_phys.Process.t -> unit
(** [<prefix>.packets], [.breaths], [.wakeups], [.cpu_s] counters plus
    the [.breath_utilization] gauge (packets per breath over [burst]). *)

val watch_profile : t -> ?prefix:string -> Vini_sim.Profile.t -> unit
(** The runtime profiler's own telemetry (prefix default ["profile"]):
    [.windows], [.cross_posts], [.element_packets], [.element_cost_s]
    counters; [.queue_hwm], [.mailbox_hwm], [.lookahead_floor_s] gauges;
    [.window_s], [.events_per_window] histograms, and the host-clock
    [.barrier_wait_s] histogram (export-only — never byte-compared). *)

val watch_tcp : t -> prefix:string -> Vini_transport.Tcp.t -> unit
(** [<prefix>.retransmits], [.bytes_acked] counters and the
    [.cwnd_bytes] histogram of a TCP connection. *)
