module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Histogram = Vini_std.Histogram

type series_kind = Gauge | Counter

let series_kind_name = function Gauge -> "gauge" | Counter -> "counter"

type gauge = {
  g_name : string;
  g_kind : series_kind;
  read : unit -> float;
  mutable samples_rev : (float * float) list;
}

type t = {
  engine : Engine.t;
  mutable gauges : gauge list;
  mutable hists : (string * Histogram.t) list;
  mutable running : bool;
}

let create ~engine ?(interval = Time.sec 1) () =
  let t = { engine; gauges = []; hists = []; running = true } in
  Engine.every t.engine interval (fun () ->
      if t.running then begin
        let now = Time.to_sec_f (Engine.now t.engine) in
        List.iter
          (fun g -> g.samples_rev <- (now, g.read ()) :: g.samples_rev)
          t.gauges
      end;
      t.running);
  t

let register t ~name ~kind read =
  if List.exists (fun g -> g.g_name = name) t.gauges then
    invalid_arg "Monitor.gauge: duplicate name";
  t.gauges <-
    t.gauges @ [ { g_name = name; g_kind = kind; read; samples_rev = [] } ]

let gauge t ~name read = register t ~name ~kind:Gauge read
let counter t ~name read = register t ~name ~kind:Counter read

let histogram t ~name h =
  if List.mem_assoc name t.hists then
    invalid_arg "Monitor.histogram: duplicate name";
  t.hists <- t.hists @ [ (name, h) ]

let histograms t = t.hists

let names t = List.map (fun g -> g.g_name) t.gauges

let find t name =
  match List.find_opt (fun g -> g.g_name = name) t.gauges with
  | Some g -> g
  | None -> invalid_arg ("Monitor: unknown gauge " ^ name)

let series t ~name = List.rev (find t name).samples_rev
let kind t ~name = (find t name).g_kind

let rate t ~name =
  (* Counter-reset tolerant (Prometheus-style): a decrease means the
     underlying counter restarted, so the increase since reset is the new
     value itself. *)
  let rec diff = function
    | (t1, v1) :: ((t2, v2) :: _ as rest) when t2 > t1 ->
        let increase = if v2 >= v1 then v2 -. v1 else v2 in
        (t2, increase /. (t2 -. t1)) :: diff rest
    | _ :: rest -> diff rest
    | [] -> []
  in
  diff (series t ~name)

let stop t = t.running <- false

let watch_vnode t vn ~prefix =
  let open Vini_overlay in
  counter t ~name:(prefix ^ ".cpu_s") (fun () ->
      Time.to_sec_f (Iias.cpu_time vn));
  counter t ~name:(prefix ^ ".forwarded") (fun () ->
      float_of_int (Iias.stats vn).Iias.forwarded);
  counter t ~name:(prefix ^ ".delivered") (fun () ->
      float_of_int (Iias.stats vn).Iias.delivered);
  counter t ~name:(prefix ^ ".sock_drops") (fun () ->
      float_of_int (Iias.socket_drops vn));
  counter t ~name:(prefix ^ ".fib_cache_hits") (fun () ->
      float_of_int (fst (Iias.fib_cache_stats vn)));
  counter t ~name:(prefix ^ ".fib_cache_misses") (fun () ->
      float_of_int (snd (Iias.fib_cache_stats vn)));
  counter t ~name:(prefix ^ ".fib_memo_hits") (fun () ->
      float_of_int (fst (Iias.fib_memo_stats vn)));
  counter t ~name:(prefix ^ ".fib_memo_lookups") (fun () ->
      float_of_int (snd (Iias.fib_memo_stats vn)));
  counter t ~name:(prefix ^ ".breaths") (fun () ->
      float_of_int (Vini_phys.Process.breaths (Iias.process vn)))

let watch_engine t ?(prefix = "engine") engine =
  counter t ~name:(prefix ^ ".fired") (fun () ->
      float_of_int (Engine.events_fired engine));
  counter t ~name:(prefix ^ ".cancelled") (fun () ->
      float_of_int (Engine.events_cancelled engine));
  gauge t ~name:(prefix ^ ".pending") (fun () ->
      float_of_int (Engine.pending engine));
  gauge t ~name:(prefix ^ ".max_pending") (fun () ->
      float_of_int (Engine.max_pending engine));
  histogram t ~name:(prefix ^ ".horizon_s") (Engine.horizon_hist engine);
  histogram t ~name:(prefix ^ ".callback_s") (Engine.callback_hist engine)

let watch_fib t ~prefix fib =
  counter t ~name:(prefix ^ ".lpm_cache_hits") (fun () ->
      float_of_int (Vini_click.Fib.cache_hits fib));
  counter t ~name:(prefix ^ ".lpm_cache_misses") (fun () ->
      float_of_int (Vini_click.Fib.cache_misses fib))

let watch_cpu t ~prefix cpu =
  histogram t ~name:(prefix ^ ".wake_s") (Vini_phys.Cpu.wake_latency_hist cpu)

let watch_pool t ~prefix pool =
  let open Vini_net in
  gauge t ~name:(prefix ^ ".available") (fun () ->
      float_of_int (Pool.available pool));
  gauge t ~name:(prefix ^ ".low_watermark") (fun () ->
      float_of_int (Pool.low_watermark pool));
  counter t ~name:(prefix ^ ".takes") (fun () ->
      float_of_int (Pool.takes pool));
  counter t ~name:(prefix ^ ".recycles") (fun () ->
      float_of_int (Pool.recycles pool));
  counter t ~name:(prefix ^ ".exhaustions") (fun () ->
      float_of_int (Pool.exhaustions pool));
  counter t ~name:(prefix ^ ".overfills") (fun () ->
      float_of_int (Pool.overfills pool))

let watch_ring t ~prefix ring =
  let open Vini_click in
  gauge t ~name:(prefix ^ ".length") (fun () ->
      float_of_int (Ring.length ring));
  gauge t ~name:(prefix ^ ".depth_hwm") (fun () ->
      float_of_int (Ring.depth_hwm ring));
  counter t ~name:(prefix ^ ".pushes") (fun () ->
      float_of_int (Ring.pushes ring));
  counter t ~name:(prefix ^ ".pops") (fun () -> float_of_int (Ring.pops ring));
  counter t ~name:(prefix ^ ".rejected") (fun () ->
      float_of_int (Ring.rejected ring))

let watch_process t ~prefix p =
  let open Vini_phys in
  counter t ~name:(prefix ^ ".packets") (fun () ->
      float_of_int (Process.packets_processed p));
  counter t ~name:(prefix ^ ".breaths") (fun () ->
      float_of_int (Process.breaths p));
  counter t ~name:(prefix ^ ".wakeups") (fun () ->
      float_of_int (Process.wakeups p));
  counter t ~name:(prefix ^ ".cpu_s") (fun () ->
      Time.to_sec_f (Process.cpu_time p));
  gauge t ~name:(prefix ^ ".breath_utilization") (fun () ->
      let b = Process.breaths p and burst = Process.burst p in
      if b = 0 then 0.0
      else
        float_of_int (Process.packets_processed p)
        /. float_of_int (b * burst))

let watch_profile t ?(prefix = "profile") p =
  let open Vini_sim in
  counter t ~name:(prefix ^ ".windows") (fun () ->
      float_of_int (Profile.windows p));
  counter t ~name:(prefix ^ ".cross_posts") (fun () ->
      float_of_int (Profile.cross_posts_total p));
  gauge t ~name:(prefix ^ ".queue_hwm") (fun () ->
      float_of_int (Profile.queue_hwm_max p));
  gauge t ~name:(prefix ^ ".mailbox_hwm") (fun () ->
      float_of_int (Profile.mailbox_hwm_max p));
  gauge t ~name:(prefix ^ ".lookahead_floor_s") (fun () ->
      Profile.lookahead_floor_s p);
  counter t ~name:(prefix ^ ".element_packets") (fun () ->
      float_of_int (Profile.element_packets_total p));
  counter t ~name:(prefix ^ ".element_cost_s") (fun () ->
      Profile.attributed_cost_s p);
  histogram t ~name:(prefix ^ ".window_s") (Profile.window_hist p);
  histogram t
    ~name:(prefix ^ ".events_per_window")
    (Profile.events_per_window p);
  (* Host wall-clock; export-only (see profile.mli). *)
  histogram t ~name:(prefix ^ ".barrier_wait_s") (Profile.barrier_wait_hist p)

let watch_tcp t ~prefix conn =
  counter t ~name:(prefix ^ ".retransmits") (fun () ->
      float_of_int (Vini_transport.Tcp.stats conn).Vini_transport.Tcp.retransmits);
  counter t ~name:(prefix ^ ".bytes_acked") (fun () ->
      float_of_int (Vini_transport.Tcp.stats conn).Vini_transport.Tcp.bytes_acked);
  histogram t ~name:(prefix ^ ".cwnd_bytes") (Vini_transport.Tcp.cwnd_hist conn)
