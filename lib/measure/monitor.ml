module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Histogram = Vini_std.Histogram

type series_kind = Gauge | Counter

let series_kind_name = function Gauge -> "gauge" | Counter -> "counter"

type gauge = {
  g_name : string;
  g_kind : series_kind;
  read : unit -> float;
  mutable samples_rev : (float * float) list;
}

type t = {
  engine : Engine.t;
  mutable gauges : gauge list;
  mutable hists : (string * Histogram.t) list;
  mutable running : bool;
}

let create ~engine ?(interval = Time.sec 1) () =
  let t = { engine; gauges = []; hists = []; running = true } in
  Engine.every t.engine interval (fun () ->
      if t.running then begin
        let now = Time.to_sec_f (Engine.now t.engine) in
        List.iter
          (fun g -> g.samples_rev <- (now, g.read ()) :: g.samples_rev)
          t.gauges
      end;
      t.running);
  t

let register t ~name ~kind read =
  if List.exists (fun g -> g.g_name = name) t.gauges then
    invalid_arg "Monitor.gauge: duplicate name";
  t.gauges <-
    t.gauges @ [ { g_name = name; g_kind = kind; read; samples_rev = [] } ]

let gauge t ~name read = register t ~name ~kind:Gauge read
let counter t ~name read = register t ~name ~kind:Counter read

let histogram t ~name h =
  if List.mem_assoc name t.hists then
    invalid_arg "Monitor.histogram: duplicate name";
  t.hists <- t.hists @ [ (name, h) ]

let histograms t = t.hists

let names t = List.map (fun g -> g.g_name) t.gauges

let find t name =
  match List.find_opt (fun g -> g.g_name = name) t.gauges with
  | Some g -> g
  | None -> invalid_arg ("Monitor: unknown gauge " ^ name)

let series t ~name = List.rev (find t name).samples_rev
let kind t ~name = (find t name).g_kind

let rate t ~name =
  (* Counter-reset tolerant (Prometheus-style): a decrease means the
     underlying counter restarted, so the increase since reset is the new
     value itself. *)
  let rec diff = function
    | (t1, v1) :: ((t2, v2) :: _ as rest) when t2 > t1 ->
        let increase = if v2 >= v1 then v2 -. v1 else v2 in
        (t2, increase /. (t2 -. t1)) :: diff rest
    | _ :: rest -> diff rest
    | [] -> []
  in
  diff (series t ~name)

let stop t = t.running <- false

let watch_vnode t vn ~prefix =
  let open Vini_overlay in
  counter t ~name:(prefix ^ ".cpu_s") (fun () ->
      Time.to_sec_f (Iias.cpu_time vn));
  counter t ~name:(prefix ^ ".forwarded") (fun () ->
      float_of_int (Iias.stats vn).Iias.forwarded);
  counter t ~name:(prefix ^ ".delivered") (fun () ->
      float_of_int (Iias.stats vn).Iias.delivered);
  counter t ~name:(prefix ^ ".sock_drops") (fun () ->
      float_of_int (Iias.socket_drops vn));
  counter t ~name:(prefix ^ ".fib_cache_hits") (fun () ->
      float_of_int (fst (Iias.fib_cache_stats vn)));
  counter t ~name:(prefix ^ ".fib_cache_misses") (fun () ->
      float_of_int (snd (Iias.fib_cache_stats vn)))

let watch_engine t ?(prefix = "engine") engine =
  counter t ~name:(prefix ^ ".fired") (fun () ->
      float_of_int (Engine.events_fired engine));
  counter t ~name:(prefix ^ ".cancelled") (fun () ->
      float_of_int (Engine.events_cancelled engine));
  gauge t ~name:(prefix ^ ".pending") (fun () ->
      float_of_int (Engine.pending engine));
  gauge t ~name:(prefix ^ ".max_pending") (fun () ->
      float_of_int (Engine.max_pending engine));
  histogram t ~name:(prefix ^ ".horizon_s") (Engine.horizon_hist engine);
  histogram t ~name:(prefix ^ ".callback_s") (Engine.callback_hist engine)

let watch_fib t ~prefix fib =
  counter t ~name:(prefix ^ ".lpm_cache_hits") (fun () ->
      float_of_int (Vini_click.Fib.cache_hits fib));
  counter t ~name:(prefix ^ ".lpm_cache_misses") (fun () ->
      float_of_int (Vini_click.Fib.cache_misses fib))

let watch_cpu t ~prefix cpu =
  histogram t ~name:(prefix ^ ".wake_s") (Vini_phys.Cpu.wake_latency_hist cpu)

let watch_tcp t ~prefix conn =
  counter t ~name:(prefix ^ ".retransmits") (fun () ->
      float_of_int (Vini_transport.Tcp.stats conn).Vini_transport.Tcp.retransmits);
  counter t ~name:(prefix ^ ".bytes_acked") (fun () ->
      float_of_int (Vini_transport.Tcp.stats conn).Vini_transport.Tcp.bytes_acked);
  histogram t ~name:(prefix ^ ".cwnd_bytes") (Vini_transport.Tcp.cwnd_hist conn)
