module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Profile = Vini_sim.Profile

let schema_version = "vini.timeline/1"

type source = { s_name : string; s_read : unit -> float }

type t = {
  engine : Engine.t;
  interval : Time.t;
  mutable sources_rev : source list; (* registration order, reversed *)
  mutable frozen : source array; (* fixed at the first snapshot *)
  mutable is_frozen : bool;
  mutable rows_rev : (float * float array) list;
  mutable nsamples : int;
  mutable running : bool;
}

let freeze t =
  if not t.is_frozen then begin
    t.frozen <- Array.of_list (List.rev t.sources_rev);
    t.is_frozen <- true
  end

(* One snapshot: read every source into a fresh row.  This is the only
   place the sampler allocates (one float array plus a list cell per
   snapshot) — between boundaries the timeline touches nothing, which
   the Gc.minor_words test asserts. *)
let sample_now t =
  freeze t;
  let n = Array.length t.frozen in
  let row = Array.make n 0.0 in
  for i = 0 to n - 1 do
    row.(i) <- (Array.unsafe_get t.frozen i).s_read ()
  done;
  t.rows_rev <- (Time.to_sec_f (Engine.now t.engine), row) :: t.rows_rev;
  t.nsamples <- t.nsamples + 1

(* The sampling clock is the engine clock: ticks are scheduled through
   [at_barrier] (shard 0) at fixed multiples of the interval, so the
   snapshot instants — and therefore the whole document — are a function
   of the seed and the logical shard count, never of wall time or domain
   count. *)
let rec tick t at_time =
  ignore
    (Engine.at_barrier t.engine at_time (fun () ->
         if t.running then begin
           sample_now t;
           tick t (Time.add at_time t.interval)
         end))

let create ~engine ?(interval = Time.sec 1) () =
  if Time.compare interval Time.zero <= 0 then
    invalid_arg "Timeline.create: interval must be positive";
  let t =
    {
      engine;
      interval;
      sources_rev = [];
      frozen = [||];
      is_frozen = false;
      rows_rev = [];
      nsamples = 0;
      running = true;
    }
  in
  tick t (Time.add (Engine.now engine) interval);
  t

let stop t = t.running <- false
let interval t = t.interval

let register t ~name read =
  if t.is_frozen then
    invalid_arg "Timeline.register: sampling already started";
  if List.exists (fun s -> s.s_name = name) t.sources_rev then
    invalid_arg ("Timeline.register: duplicate series " ^ name);
  t.sources_rev <- { s_name = name; s_read = read } :: t.sources_rev

let gauge = register

(* ---- prewired sources (deterministic quantities only; host-clock data
   like barrier waits or callback times must stay out — see DESIGN.md
   §16) ---------------------------------------------------------------- *)

let watch_engine t ?(prefix = "engine") engine =
  register t ~name:(prefix ^ ".fired") (fun () ->
      float_of_int (Engine.events_fired engine));
  register t ~name:(prefix ^ ".inlined") (fun () ->
      float_of_int (Engine.events_inlined engine));
  register t ~name:(prefix ^ ".cancelled") (fun () ->
      float_of_int (Engine.events_cancelled engine));
  register t ~name:(prefix ^ ".pending") (fun () ->
      float_of_int (Engine.pending engine));
  register t ~name:(prefix ^ ".max_pending") (fun () ->
      float_of_int (Engine.max_pending engine))

let watch_profile t ?(prefix = "profile") p =
  register t ~name:(prefix ^ ".windows") (fun () ->
      float_of_int (Profile.windows p));
  register t ~name:(prefix ^ ".cross_posts") (fun () ->
      float_of_int (Profile.cross_posts_total p));
  register t ~name:(prefix ^ ".queue_hwm") (fun () ->
      float_of_int (Profile.queue_hwm_max p));
  register t ~name:(prefix ^ ".mailbox_hwm") (fun () ->
      float_of_int (Profile.mailbox_hwm_max p));
  register t ~name:(prefix ^ ".events_per_window_p95") (fun () ->
      let h = Profile.events_per_window p in
      if Vini_std.Histogram.is_empty h then 0.0
      else Vini_std.Histogram.percentile h 95.0);
  register t ~name:(prefix ^ ".element_packets") (fun () ->
      float_of_int (Profile.element_packets_total p));
  register t ~name:(prefix ^ ".element_cost_s") (fun () ->
      Profile.attributed_cost_s p)

let watch_pool t ~prefix pool =
  let open Vini_net in
  register t ~name:(prefix ^ ".available") (fun () ->
      float_of_int (Pool.available pool));
  register t ~name:(prefix ^ ".low_watermark") (fun () ->
      float_of_int (Pool.low_watermark pool));
  register t ~name:(prefix ^ ".takes") (fun () ->
      float_of_int (Pool.takes pool));
  register t ~name:(prefix ^ ".exhaustions") (fun () ->
      float_of_int (Pool.exhaustions pool))

let watch_ring t ~prefix ring =
  let open Vini_click in
  register t ~name:(prefix ^ ".length") (fun () ->
      float_of_int (Ring.length ring));
  register t ~name:(prefix ^ ".depth_hwm") (fun () ->
      float_of_int (Ring.depth_hwm ring));
  register t ~name:(prefix ^ ".pushes") (fun () ->
      float_of_int (Ring.pushes ring));
  register t ~name:(prefix ^ ".rejected") (fun () ->
      float_of_int (Ring.rejected ring))

let watch_process t ~prefix p =
  let open Vini_phys in
  register t ~name:(prefix ^ ".packets") (fun () ->
      float_of_int (Process.packets_processed p));
  register t ~name:(prefix ^ ".breaths") (fun () ->
      float_of_int (Process.breaths p));
  register t ~name:(prefix ^ ".breath_utilization") (fun () ->
      let b = Process.breaths p and burst = Process.burst p in
      if b = 0 then 0.0
      else
        float_of_int (Process.packets_processed p) /. float_of_int (b * burst));
  register t ~name:(prefix ^ ".cpu_s") (fun () ->
      Time.to_sec_f (Process.cpu_time p))

let watch_overlay t ?(prefix = "overlay") iias =
  let open Vini_overlay in
  let sum f =
    let acc = ref 0 in
    for v = 0 to Iias.vnode_count iias - 1 do
      acc := !acc + f (Iias.vnode iias v)
    done;
    float_of_int !acc
  in
  register t ~name:(prefix ^ ".forwarded") (fun () ->
      sum (fun vn -> (Iias.stats vn).Iias.forwarded));
  register t ~name:(prefix ^ ".delivered") (fun () ->
      sum (fun vn -> (Iias.stats vn).Iias.delivered));
  register t ~name:(prefix ^ ".no_route") (fun () ->
      sum (fun vn -> (Iias.stats vn).Iias.no_route));
  register t ~name:(prefix ^ ".fib_memo_hits") (fun () ->
      sum (fun vn -> fst (Iias.fib_memo_stats vn)));
  register t ~name:(prefix ^ ".fib_memo_lookups") (fun () ->
      sum (fun vn -> snd (Iias.fib_memo_stats vn)));
  register t ~name:(prefix ^ ".breaths") (fun () ->
      sum (fun vn -> Vini_phys.Process.breaths (Iias.process vn)))

(* ---- read side --------------------------------------------------------- *)

let names t =
  freeze t;
  Array.to_list (Array.map (fun s -> s.s_name) t.frozen)

let nsamples t = t.nsamples

let samples t =
  freeze t;
  List.rev_map (fun (ts, row) -> (ts, Array.copy row)) t.rows_rev

let counter_series t =
  freeze t;
  Array.to_list
    (Array.mapi
       (fun i s ->
         (s.s_name, List.rev_map (fun (ts, row) -> (ts, row.(i))) t.rows_rev))
       t.frozen)

let document ?(extra = []) t =
  freeze t;
  let series =
    Array.to_list (Array.map (fun s -> Export.Str s.s_name) t.frozen)
  in
  let rows =
    List.rev_map
      (fun (ts, row) ->
        Export.Arr
          (Export.Num ts
          :: Array.to_list (Array.map (fun v -> Export.Num v) row)))
      t.rows_rev
  in
  Export.Obj
    ([
       ("schema", Export.Str schema_version);
       ("interval_s", Export.Num (Time.to_sec_f t.interval));
       ("series", Export.Arr series);
       ("samples", Export.Arr rows);
     ]
    @ extra)
