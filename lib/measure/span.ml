(* The per-packet flight recorder: the cold half.

   [Vini_sim.Span] collects flat origin/hop/drop records on the packet
   hot path; this module reassembles them offline into causal trees keyed
   by provenance id, attributes per-hop latency (the §5.1.2
   decomposition), and renders one-call drop forensics. *)

module Sim = Vini_sim.Span
module Time = Vini_sim.Time
module Histogram = Vini_std.Histogram

type origin = {
  o_pkt : int;
  o_component : string;
  o_bytes : int;
  o_t : Time.t;
}

type hop = {
  h_pkt : int;
  h_component : string;
  h_attribution : Sim.attribution;
  h_t0 : Time.t;
  h_t1 : Time.t;
}

type drop = {
  d_pkt : int;
  d_component : string;
  d_reason : string;
  d_bytes : int;
  d_t : Time.t;
}

type tree = {
  tree_orig : int;
  origins : origin list; (* chronological; head is the root origin *)
  hops : hop list;       (* chronological *)
  drops : drop list;     (* chronological; non-empty = the tree died *)
}

let hop_duration_s h = Time.to_sec_f (Time.sub h.h_t1 h.h_t0)

let total_latency tree =
  List.fold_left (fun acc h -> acc +. hop_duration_s h) 0.0 tree.hops

let root_component tree =
  match tree.origins with o :: _ -> o.o_component | [] -> "?"

(* -- reassembly -----------------------------------------------------------

   On a single-queue engine ring records are chronological (oldest
   retained first); a sharded engine records window by window, so order
   is only per-shard chronological.  A single pass partitions records by
   provenance id, then each tree's lists — and the trees themselves — are
   stable-sorted by time, which is the identity on already-ordered
   input and restores the global merge order otherwise. *)

let trees recorder =
  let tbl : (int, tree ref) Hashtbl.t = Hashtbl.create 1024 in
  let order = ref [] in
  let get orig =
    match Hashtbl.find_opt tbl orig with
    | Some r -> r
    | None ->
        let r =
          ref { tree_orig = orig; origins = []; hops = []; drops = [] }
        in
        Hashtbl.add tbl orig r;
        order := r :: !order;
        r
  in
  List.iter
    (fun record ->
      let r = get (Sim.record_orig record) in
      match record with
      | Sim.Origin { pkt; bytes; component; t; _ } ->
          r :=
            { !r with
              origins =
                !r.origins
                @ [ { o_pkt = pkt; o_component = component; o_bytes = bytes;
                      o_t = t } ] }
      | Sim.Hop { pkt; component; attribution; t0; t1; _ } ->
          r :=
            { !r with
              hops =
                !r.hops
                @ [ { h_pkt = pkt; h_component = component;
                      h_attribution = attribution; h_t0 = t0; h_t1 = t1 } ] }
      | Sim.Drop { pkt; component; reason; bytes; t; _ } ->
          r :=
            { !r with
              drops =
                !r.drops
                @ [ { d_pkt = pkt; d_component = component; d_reason = reason;
                      d_bytes = bytes; d_t = t } ] })
    (Sim.records recorder);
  let sort_tree t =
    {
      t with
      origins = List.stable_sort (fun a b -> Time.compare a.o_t b.o_t) t.origins;
      hops =
        List.stable_sort
          (fun a b ->
            let c = Time.compare a.h_t0 b.h_t0 in
            if c <> 0 then c else Time.compare a.h_t1 b.h_t1)
          t.hops;
      drops = List.stable_sort (fun a b -> Time.compare a.d_t b.d_t) t.drops;
    }
  in
  let first_t t =
    let fold f acc l = List.fold_left f acc l in
    let m = Time.max_value in
    let m = fold (fun acc o -> Time.min acc o.o_t) m t.origins in
    let m = fold (fun acc h -> Time.min acc h.h_t0) m t.hops in
    fold (fun acc d -> Time.min acc d.d_t) m t.drops
  in
  List.rev_map (fun r -> sort_tree !r) !order
  |> List.stable_sort (fun a b -> Time.compare (first_t a) (first_t b))

(* -- latency attribution -------------------------------------------------- *)

type row = {
  attribution : Sim.attribution;
  total_s : float;
  hop_count : int;
  hist : Histogram.t; (* per-hop durations, seconds *)
}

let empty_rows () =
  List.map
    (fun a ->
      (a, ref { attribution = a; total_s = 0.0; hop_count = 0;
                hist = Histogram.create () }))
    Sim.attributions

let breakdown ts =
  let rows = empty_rows () in
  List.iter
    (fun tree ->
      List.iter
        (fun h ->
          let r = List.assoc h.h_attribution rows in
          let d = hop_duration_s h in
          Histogram.add !r.hist d;
          r := { !r with total_s = !r.total_s +. d;
                 hop_count = !r.hop_count + 1 })
        tree.hops)
    ts;
  List.map (fun (_, r) -> !r) rows

(* Per-flow/slice attribution: trees grouped by the component that
   originated them (a TCP source, a VPN ingress, a routing emitter). *)
let breakdown_by_origin ts =
  let groups : (string, tree list ref) Hashtbl.t = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun tree ->
      let key = root_component tree in
      match Hashtbl.find_opt groups key with
      | Some l -> l := tree :: !l
      | None ->
          Hashtbl.add groups key (ref [ tree ]);
          order := key :: !order)
    ts;
  List.rev_map
    (fun key -> (key, breakdown (List.rev !(Hashtbl.find groups key))))
    !order

(* -- drop forensics ------------------------------------------------------- *)

type path_step =
  | At_origin of origin
  | Through of hop

type forensic = {
  f_orig : int;
  f_pkt : int;
  f_site : string;
  f_reason : string;
  f_bytes : int;
  f_t : Time.t;
  f_path : path_step list; (* path-so-far, chronological *)
}

(* One forensic record per drop: the reason, the site, and every recorded
   waypoint of the packet's causal tree up to the moment of death. *)
let forensics ts =
  List.concat_map
    (fun tree ->
      List.map
        (fun d ->
          let upto t = Time.compare t d.d_t <= 0 in
          let path =
            List.filter (fun o -> upto o.o_t) tree.origins
            |> List.map (fun o -> At_origin o)
          in
          let path =
            path
            @ (List.filter (fun h -> upto h.h_t1) tree.hops
              |> List.map (fun h -> Through h))
          in
          {
            f_orig = tree.tree_orig;
            f_pkt = d.d_pkt;
            f_site = d.d_component;
            f_reason = d.d_reason;
            f_bytes = d.d_bytes;
            f_t = d.d_t;
            f_path = path;
          })
        tree.drops)
    ts

(* -- worst-path exemplars ------------------------------------------------- *)

let worst ?(n = 5) ts =
  let ranked =
    List.sort
      (fun a b -> Float.compare (total_latency b) (total_latency a))
      ts
  in
  List.filteri (fun i _ -> i < n) ranked

(* -- feeding the metrics registry ----------------------------------------- *)

let watch m ~prefix recorder =
  Monitor.counter m ~name:(prefix ^ ".records") (fun () ->
      float_of_int (Sim.length recorder + Sim.overwritten recorder));
  Monitor.counter m ~name:(prefix ^ ".overwritten") (fun () ->
      float_of_int (Sim.overwritten recorder))

let register_breakdown m ~prefix ts =
  List.iter
    (fun r ->
      Monitor.histogram m
        ~name:(prefix ^ "." ^ Sim.attribution_name r.attribution ^ "_s")
        r.hist)
    (breakdown ts)
