(** tcpdump-style capture for flow plots.

    Figure 9 plots (a) cumulative megabytes delivered over time and (b)
    the stream position of each arriving segment during slow-start
    restart.  This module hooks a TCP endpoint and records exactly those
    two series. *)

type t

val create : Vini_sim.Engine.t -> t

val attach : t -> Vini_transport.Tcp.t -> unit
(** Capture segments arriving at (and bytes delivered by) this endpoint. *)

val record_packet : t -> Vini_net.Packet.t -> unit
(** Manual capture point for non-TCP packets. *)

val cumulative_bytes : t -> (float * int) list
(** (seconds, total in-order bytes delivered so far), per delivery event. *)

val segment_positions : t -> (float * int) list
(** (arrival time s, segment's stream offset) for data segments —
    Figure 9(b)'s scatter. *)

val packets : t -> (float * int * string) list
(** All captured packets as (time, packet id, one-line description).  The
    id keys into the flight recorder: grep a capture row's id in a
    [vini.spans/1] export to pull up the packet's causal tree. *)

val count : t -> int
