module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Trace = Vini_sim.Trace
module Graph = Vini_topo.Graph
module Iias = Vini_overlay.Iias
module Prefix = Vini_net.Prefix

type violation = { v_at : Time.t; v_check : string; v_detail : string }

type t = {
  engine : Engine.t;
  overlay : Iias.t;
  vtopo : Graph.t;
  period : Time.t;
  grace : Time.t;
  migration_aware : bool;
  mutable running : bool;
  mutable stopped : bool;
  mutable sweeps : int;
  mutable violations : violation list; (* newest first *)
  (* (src, dst) pairs currently unreachable, with the time the condition
     was first observed and whether it was already reported. *)
  unreachable_since : (int * int, Time.t * bool) Hashtbl.t;
}

let max_probe_ttl = 32

let create ~engine ~overlay ~vtopo ?(period = Time.sec 1)
    ?(grace = Time.sec 15) ?(migration_aware = true) () =
  if Time.compare period Time.zero <= 0 then
    invalid_arg "Watchdog.create: period must be positive";
  {
    engine;
    overlay;
    vtopo;
    period;
    grace;
    migration_aware;
    running = false;
    stopped = false;
    sweeps = 0;
    violations = [];
    unreachable_since = Hashtbl.create 32;
  }

let report t ~check ~detail =
  t.violations <-
    { v_at = Engine.now t.engine; v_check = check; v_detail = detail }
    :: t.violations;
  if Trace.on Trace.Category.Watchdog then
    Trace.emit ~severity:Trace.Warn ~component:"watchdog"
      (Trace.Watchdog_check { check; detail })

(* A vnode inside its migration cutover window [flip, drain-complete]
   holds a deliberately frozen FIB (deferred routing changes replay at
   thaw), so any check reading its forwarding state would alarm on
   planned, self-healing conditions. *)
let in_grace t v = t.migration_aware && Iias.migration_grace t.overlay v

(* Follow FIBs from [src] towards [dst]'s tap address, hop budget
   {!max_probe_ttl} — the simulated analogue of a TTL-limited probe.
   [Inconclusive]: the probe crossed a vnode inside its migration grace
   window, whose frozen FIB proves nothing. *)
type probe = Delivered | Dropped | Looped of int list | Inconclusive

let probe_path t src dst =
  let dst_addr = Iias.tap_addr (Iias.vnode t.overlay dst) in
  let rec walk v ttl trail =
    if ttl = 0 then Looped (List.rev trail)
    else if in_grace t v then Inconclusive
    else if not (Iias.vnode_alive (Iias.vnode t.overlay v)) then Dropped
    else
      match Iias.fib_next t.overlay v dst_addr with
      | `Local -> Delivered
      | `No_route -> Dropped
      | `Hop next -> walk next (ttl - 1) (next :: trail)
  in
  walk src max_probe_ttl [ src ]

(* Can [src] reach [dst] over currently-up virtual links between live
   nodes?  When not, unreachability is expected partition, not a fault. *)
let connected t src dst =
  let n = Graph.node_count t.vtopo in
  let seen = Array.make n false in
  let alive v = Iias.vnode_alive (Iias.vnode t.overlay v) in
  let q = Queue.create () in
  if alive src then begin
    seen.(src) <- true;
    Queue.add src q
  end;
  let rec bfs () =
    match Queue.take_opt q with
    | None -> false
    | Some v ->
        if v = dst then true
        else begin
          List.iter
            (fun (nbr, _) ->
              if
                (not seen.(nbr))
                && alive nbr
                && Iias.vlink_is_up t.overlay v nbr
              then begin
                seen.(nbr) <- true;
                Queue.add nbr q
              end)
            (Graph.neighbors t.vtopo v);
          bfs ()
        end
  in
  bfs ()

let vname t v = Iias.vname (Iias.vnode t.overlay v)

let check_pair t now src dst =
  let key = (src, dst) in
  match probe_path t src dst with
  | Looped trail ->
      Hashtbl.remove t.unreachable_since key;
      report t ~check:"loop"
        ~detail:
          (Printf.sprintf "%s -> %s: %s" (vname t src) (vname t dst)
             (String.concat " " (List.map (vname t) trail)))
  | Delivered -> Hashtbl.remove t.unreachable_since key
  | Inconclusive ->
      (* Planned cutover in progress somewhere on the path: neither alarm
         nor let a stale unreachability clock keep ticking across it. *)
      Hashtbl.remove t.unreachable_since key
  | Dropped ->
      if connected t src dst then begin
        match Hashtbl.find_opt t.unreachable_since key with
        | None -> Hashtbl.replace t.unreachable_since key (now, false)
        | Some (_, true) -> ()
        | Some (since, false) ->
            if Time.compare (Time.sub now since) t.grace >= 0 then begin
              Hashtbl.replace t.unreachable_since key (since, true);
              report t ~check:"blackhole"
                ~detail:
                  (Printf.sprintf "%s -> %s unreachable for %.1fs"
                     (vname t src) (vname t dst)
                     (Time.to_sec_f (Time.sub now since)))
            end
      end
      else Hashtbl.remove t.unreachable_since key

let check_fib_consistency t v =
  let vn = Iias.vnode t.overlay v in
  if Iias.vnode_alive vn && not (in_grace t v) then begin
    let fib = List.map fst (Iias.fib_entries vn) in
    List.iter
      (fun (p, _) ->
        if not (List.exists (Prefix.equal p) fib) then
          report t ~check:"fib-consistency"
            ~detail:
              (Printf.sprintf "%s: RIB best route %s missing from FIB"
                 (vname t v) (Prefix.to_string p)))
      (Vini_routing.Rib.routes (Iias.rib vn))
  end

let sweep t =
  t.sweeps <- t.sweeps + 1;
  let now = Engine.now t.engine in
  let n = Iias.vnode_count t.overlay in
  for src = 0 to n - 1 do
    if Iias.vnode_alive (Iias.vnode t.overlay src) then
      for dst = 0 to n - 1 do
        if dst <> src && Iias.vnode_alive (Iias.vnode t.overlay dst) then
          check_pair t now src dst
      done
  done;
  for v = 0 to n - 1 do
    check_fib_consistency t v
  done

(* Deliberately no [~jitter] here: the watchdog must not touch any RNG so
   that adding it to a run changes no packet-level result. *)
let start t =
  if t.stopped then invalid_arg "Watchdog.start: already stopped";
  if not t.running then begin
    t.running <- true;
    Engine.every t.engine t.period (fun () ->
        if t.running then sweep t;
        t.running)
  end

let stop t =
  t.running <- false;
  t.stopped <- true

let violations t = List.rev t.violations
let sweeps t = t.sweeps
let violation_count t = List.length t.violations

let counts_by_check t =
  let tbl = Hashtbl.create 4 in
  List.iter
    (fun v ->
      Hashtbl.replace tbl v.v_check
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl v.v_check)))
    t.violations;
  List.sort compare (Hashtbl.fold (fun k c acc -> (k, c) :: acc) tbl [])

let json t =
  Export.Obj
    [
      ("sweeps", Export.Num (float_of_int t.sweeps));
      ("violation_count", Export.Num (float_of_int (violation_count t)));
      ( "by_check",
        Export.Obj
          (List.map
             (fun (k, c) -> (k, Export.Num (float_of_int c)))
             (counts_by_check t)) );
      ( "violations",
        Export.Arr
          (List.map
             (fun v ->
               Export.Obj
                 [
                   ("t_s", Export.Num (Time.to_sec_f v.v_at));
                   ("check", Export.Str v.v_check);
                   ("detail", Export.Str v.v_detail);
                 ])
             (violations t)) );
    ]
