(** Offline analysis of per-packet flight-recorder records.

    {!Vini_sim.Span} is the hot half: a gated, ring-bounded recorder that
    packet-path code feeds with flat origin/hop/drop records.  This module
    is the cold half.  It reassembles those records into one causal tree
    per provenance id ({!Vini_net.Packet.orig}), so a packet's life —
    across encapsulation, ICMP error generation, and NAPT rewriting —
    reads as a single timeline of attributed hops, optionally terminated
    by a drop.

    From the trees it derives the paper's §5.1.2-style decomposition
    (where did the latency go: queueing, CPU service, propagation,
    serialization, protocol processing), worst-path exemplars, and drop
    forensics (reason + site + the path the packet had taken so far). *)

(** {1 Tree model} *)

type origin = {
  o_pkt : int;  (** packet id recorded at this origin *)
  o_component : string;
  o_bytes : int;
  o_t : Vini_sim.Time.t;
}
(** A point where a packet entered the system.  A tree can hold several:
    re-encapsulation and ICMP-error generation re-originate the same
    provenance id. *)

type hop = {
  h_pkt : int;
  h_component : string;
  h_attribution : Vini_sim.Span.attribution;
  h_t0 : Vini_sim.Time.t;
  h_t1 : Vini_sim.Time.t;
}
(** One attributed interval of the packet's life. *)

type drop = {
  d_pkt : int;
  d_component : string;
  d_reason : string;
  d_bytes : int;
  d_t : Vini_sim.Time.t;
}

type tree = {
  tree_orig : int;      (** provenance id shared by every record below *)
  origins : origin list;  (** chronological; head is the root origin *)
  hops : hop list;        (** chronological *)
  drops : drop list;      (** non-empty iff the tree died somewhere *)
}

val trees : Vini_sim.Span.t -> tree list
(** Reassemble the recorder's retained records into causal trees, in
    order of first appearance.  Records evicted by ring wraparound are
    simply absent; a tree whose early records were evicted still carries
    its surviving suffix. *)

val hop_duration_s : hop -> float
val total_latency : tree -> float
(** Sum of all hop durations, seconds: the recorded (attributed) portion
    of the packet's end-to-end latency. *)

val root_component : tree -> string
(** Component of the first origin, or ["?"] if the origin was evicted. *)

(** {1 Latency attribution} *)

type row = {
  attribution : Vini_sim.Span.attribution;
  total_s : float;     (** summed duration across all matching hops *)
  hop_count : int;
  hist : Vini_std.Histogram.t;  (** per-hop durations, seconds *)
}

val breakdown : tree list -> row list
(** One row per attribution category (in {!Vini_sim.Span.attributions}
    order), aggregated over every hop of every tree given. *)

val breakdown_by_origin : tree list -> (string * row list) list
(** Per-flow/slice attribution: trees grouped by {!root_component}
    (a TCP source, a VPN ingress, a routing-protocol emitter), each group
    reduced with {!breakdown}.  Order of first appearance. *)

(** {1 Drop forensics} *)

type path_step =
  | At_origin of origin
  | Through of hop

type forensic = {
  f_orig : int;
  f_pkt : int;          (** the packet that actually died *)
  f_site : string;      (** component that dropped it *)
  f_reason : string;
  f_bytes : int;
  f_t : Vini_sim.Time.t;
  f_path : path_step list;
      (** path-so-far: every origin and hop recorded at or before the
          drop, chronological *)
}

val forensics : tree list -> forensic list
(** One record per drop across all trees.  Every drop site in the
    simulator records its drop on an already-open tree, so [f_path] is
    non-empty except when ring wraparound evicted the whole prefix. *)

(** {1 Worst-path exemplars} *)

val worst : ?n:int -> tree list -> tree list
(** The [n] (default 5) trees with the highest {!total_latency}. *)

(** {1 Metrics registry} *)

val watch : Monitor.t -> prefix:string -> Vini_sim.Span.t -> unit
(** Register recorder health counters ([<prefix>.records],
    [<prefix>.overwritten]) with a monitor. *)

val register_breakdown : Monitor.t -> prefix:string -> tree list -> unit
(** Register one duration histogram per attribution category
    ([<prefix>.<attribution>_s]) with a monitor. *)
