module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Graph = Vini_topo.Graph
module Underlay = Vini_phys.Underlay
module Slice = Vini_phys.Slice
module Supervisor = Vini_phys.Supervisor
module Iias = Vini_overlay.Iias
module Vini = Vini_core.Vini
module Experiment = Vini_core.Experiment
module Ping = Vini_measure.Ping
module Watchdog = Vini_measure.Watchdog

let topology () = Vini_rcc.Rcc.abilene ()
let warmup_s = 40.0

type fault = Node_crash of Supervisor.policy | Link_cut

let fault_label = function
  | Node_crash p -> Printf.sprintf "node-crash backoff=%.1fs" p.Supervisor.base_backoff
  | Link_cut -> "link-cut (control)"

type row = {
  label : string;
  detect_s : float;        (** failure -> traffic on the backup path *)
  lost_pings : int;
  recover_s : float;       (** repair -> traffic back on the primary path *)
  restarts : int;
  watchdog_violations : (string * int) list;
}

let run_one ?(seed = 9301) ?(fail_at = 10.0) ?(restore_at = 25.0)
    ?(total_s = 50.0) ?(ping_interval_ms = 250) ~fault () =
  let g = topology () in
  let denver = Graph.id_of_name g "Denver" in
  let kansas_city = Graph.id_of_name g "Kansas-City" in
  let dc = Graph.id_of_name g "Washington-DC" in
  let seattle = Graph.id_of_name g "Seattle" in
  let events =
    match fault with
    | Node_crash _ ->
        [
          Experiment.at (warmup_s +. fail_at) (Experiment.Crash_pnode denver);
          Experiment.at (warmup_s +. restore_at)
            (Experiment.Restore_pnode denver);
        ]
    | Link_cut ->
        [
          Experiment.at (warmup_s +. fail_at)
            (Experiment.Fail_vlink (denver, kansas_city));
          Experiment.at (warmup_s +. restore_at)
            (Experiment.Restore_vlink (denver, kansas_city));
        ]
  in
  let engine = Engine.create ~seed () in
  let profile _ = Underlay.planetlab_profile ~speed_ghz:2.0 in
  let vini = Vini.create ~engine ~graph:g ~profile () in
  let routing =
    Iias.Ospf_routing
      { hello = Time.sec 5; dead = Time.sec 10; spf_delay = Time.ms 200 }
  in
  let spec =
    Experiment.make ~name:"abilene-mttr" ~slice:(Slice.pl_vini "mttr")
      ~vtopo:g ~routing ~events ()
  in
  let inst = Vini.deploy vini spec in
  (match fault with
  | Node_crash policy -> Iias.enable_supervision ~policy (Vini.iias inst)
  | Link_cut -> ());
  Vini.start inst;
  let iias = Vini.iias inst in
  (* Start the watchdog after warmup so initial convergence is not
     (correctly but uninterestingly) flagged as blackholes. *)
  let wd = Watchdog.create ~engine ~overlay:iias ~vtopo:g () in
  Engine.run ~until:(Time.of_sec_f warmup_s) engine;
  Watchdog.start wd;
  let v_dc = Iias.vnode iias dc and v_sea = Iias.vnode iias seattle in
  let count = int_of_float (total_s *. 1000.0 /. float_of_int ping_interval_ms) in
  let ping =
    Ping.start ~stack:(Iias.tap v_dc) ~dst:(Iias.tap_addr v_sea) ~count
      ~mode:(Ping.Interval (Time.ms ping_interval_ms))
      ~reply_timeout:(Time.ms 900) ()
  in
  Engine.run ~until:(Time.of_sec_f (warmup_s +. total_s +. 5.0)) engine;
  let series =
    List.map (fun (t, rtt) -> (t -. warmup_s, rtt)) (Ping.series ping)
  in
  let before =
    let pts = List.filter (fun (t, _) -> t < fail_at) series in
    if pts = [] then 0.0
    else
      List.fold_left (fun acc (_, r) -> acc +. r) 0.0 pts
      /. float_of_int (List.length pts)
  in
  (* The backup DC->Seattle path is ~17 ms longer than the primary. *)
  let detect_s =
    match
      List.find_opt (fun (t, r) -> t > fail_at && r > before +. 8.0) series
    with
    | Some (t, _) -> t -. fail_at
    | None -> Float.nan
  in
  let recover_s =
    match
      List.find_opt (fun (t, r) -> t > restore_at && r < before +. 4.0) series
    with
    | Some (t, _) -> t -. restore_at
    | None -> Float.nan
  in
  let restarts =
    match Iias.supervisor iias with
    | None -> 0
    | Some sup ->
        List.fold_left
          (fun acc name -> acc + Supervisor.restarts sup ~name)
          0 (Supervisor.children sup)
  in
  ( {
      label = fault_label fault;
      detect_s;
      lost_pings = Ping.sent ping - Ping.received ping;
      recover_s;
      restarts;
      watchdog_violations = Watchdog.counts_by_check wd;
    },
    wd,
    iias )

let run ?seed ?fail_at ?restore_at ?total_s ?ping_interval_ms ~fault () =
  let row, _, _ =
    run_one ?seed ?fail_at ?restore_at ?total_s ?ping_interval_ms ~fault ()
  in
  row

let sweep ?seed ?(backoffs = [ 0.5; 2.0; 8.0 ]) () =
  let node_rows =
    List.map
      (fun base_backoff ->
        run ?seed
          ~fault:
            (Node_crash
               { Supervisor.default_policy with Supervisor.base_backoff })
          ())
      backoffs
  in
  node_rows @ [ run ?seed ~fault:Link_cut () ]

let row_strings rows =
  Printf.sprintf "%-28s %9s %6s %10s %8s %s" "scenario" "detect_s" "lost"
    "recover_s" "restarts" "violations"
  :: List.map
       (fun r ->
         Printf.sprintf "%-28s %9.2f %6d %10.2f %8d %s" r.label r.detect_s
           r.lost_pings r.recover_s r.restarts
           (if r.watchdog_violations = [] then "-"
            else
              String.concat ","
                (List.map
                   (fun (k, c) -> Printf.sprintf "%s=%d" k c)
                   r.watchdog_violations)))
       rows
