module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Graph = Vini_topo.Graph
module Underlay = Vini_phys.Underlay
module Slice = Vini_phys.Slice
module Iias = Vini_overlay.Iias
module Vini = Vini_core.Vini
module Experiment = Vini_core.Experiment
module Request = Vini_embed.Request
module Ping = Vini_measure.Ping
module Export = Vini_measure.Export

type result = {
  placement_before : int array;
  placement_after : int array;
  migrations : Vini.migration list;
  reembed_failures : (int * Vini_embed.Embed.rejection) list;
  pings_sent : int;
  pings_received : int;
  ping_series : (float * float) list;
  export : Export.json;
}

let virtual_ring n =
  let names = Array.init n (Printf.sprintf "v%d") in
  let mk a b =
    { Graph.a; b; bandwidth_bps = 1e9; delay = Time.ms 2; loss = 0.0;
      weight = 10 }
  in
  (* Below three nodes a "ring" would duplicate its one link; degrade to a
     chain so any n >= 1 is a valid topology. *)
  let links =
    if n < 3 then List.init (max 0 (n - 1)) (fun i -> mk i (i + 1))
    else List.init n (fun i -> mk i ((i + 1) mod n))
  in
  Graph.create ~names ~links

let warmup_s = 30.0

let run ?(seed = 4242) ?(vnodes = 6) ?(crash_at = 10.0) ?(duration = 40.0)
    ?(algo = Request.Greedy) () =
  let g = Vini_rcc.Rcc.abilene () in
  let vtopo = virtual_ring vnodes in
  let engine = Engine.create ~seed () in
  let profile _ = Underlay.planetlab_profile ~speed_ghz:2.0 in
  let vini = Vini.create ~engine ~graph:g ~profile () in
  let req =
    Request.make ~name:"migrate-demo" ~cpu:(fun _ -> 0.25) ~algo ~seed ()
  in
  let spec =
    Experiment.make ~name:"migrate-demo" ~slice:(Slice.pl_vini "migrate")
      ~vtopo
      ~placement:(Experiment.Auto req)
      ~events:
        [ Experiment.at (warmup_s +. crash_at) (Experiment.Crash_pnode 0) ]
      ()
  in
  let inst = Vini.deploy vini spec in
  let placement_before = Iias.current_embedding (Vini.iias inst) in
  Vini.start inst;
  let iias = Vini.iias inst in
  Engine.run ~until:(Time.of_sec_f warmup_s) engine;
  let half = vnodes / 2 in
  let interval_ms = 250 in
  let count = int_of_float (duration *. 1000.0 /. float_of_int interval_ms) in
  let ping =
    Ping.start
      ~stack:(Iias.tap (Iias.vnode iias half))
      ~dst:(Iias.tap_addr (Iias.vnode iias 0))
      ~count
      ~mode:(Ping.Interval (Time.ms interval_ms))
      ~reply_timeout:(Time.ms 900) ()
  in
  Engine.run ~until:(Time.of_sec_f (warmup_s +. duration +. 5.0)) engine;
  let slices =
    [
      {
        Export.es_name = spec.Experiment.exp_name;
        es_vtopo = vtopo;
        es_request = req;
        es_result =
          (match Vini.mapping inst with
          | Some m -> Ok m
          | None -> assert false);
      };
    ]
  in
  let migrations = Vini.migrations inst in
  let export =
    Export.embed_document
      ~migrations:
        (List.map
           (fun (m : Vini.migration) ->
             {
               Export.mg_vnode = m.Vini.m_vnode;
               mg_from = m.Vini.m_from;
               mg_to = m.Vini.m_to;
               mg_down_s = Time.to_sec_f m.Vini.m_down_at;
               mg_restored_s = Time.to_sec_f m.Vini.m_restored_at;
             })
           migrations)
      ~substrate:(Vini.substrate vini) ~slices ()
  in
  {
    placement_before;
    placement_after = Iias.current_embedding iias;
    migrations;
    reembed_failures = Vini.reembed_failures inst;
    pings_sent = Ping.sent ping;
    pings_received = Ping.received ping;
    ping_series = Ping.series ping;
    export;
  }
