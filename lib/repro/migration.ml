module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Graph = Vini_topo.Graph
module Underlay = Vini_phys.Underlay
module Slice = Vini_phys.Slice
module Iias = Vini_overlay.Iias
module Vini = Vini_core.Vini
module Experiment = Vini_core.Experiment
module Request = Vini_embed.Request
module Ping = Vini_measure.Ping
module Export = Vini_measure.Export

type result = {
  placement_before : int array;
  placement_after : int array;
  migrations : Vini.migration list;
  reembed_failures : (int * Vini_embed.Embed.rejection) list;
  migration_failures : (int * string) list;
  pings_sent : int;
  pings_received : int;
  ping_series : (float * float) list;
  export : Export.json;
}

let virtual_ring n =
  let names = Array.init n (Printf.sprintf "v%d") in
  let mk a b =
    { Graph.a; b; bandwidth_bps = 1e9; delay = Time.ms 2; loss = 0.0;
      weight = 10 }
  in
  (* Below three nodes a "ring" would duplicate its one link; degrade to a
     chain so any n >= 1 is a valid topology. *)
  let links =
    if n < 3 then List.init (max 0 (n - 1)) (fun i -> mk i (i + 1))
    else List.init n (fun i -> mk i ((i + 1) mod n))
  in
  Graph.create ~names ~links

let warmup_s = 30.0

let export_of_migration (m : Vini.migration) =
  {
    Export.mg_vnode = m.Vini.m_vnode;
    mg_from = m.Vini.m_from;
    mg_to = m.Vini.m_to;
    mg_kind =
      (match m.Vini.m_kind with
      | Vini.Planned -> "planned"
      | Vini.Crash_driven -> "crash");
    mg_down_s = Time.to_sec_f m.Vini.m_down_at;
    mg_restored_s = Time.to_sec_f m.Vini.m_restored_at;
    mg_cutover_loss = m.Vini.m_cutover_loss;
    mg_stretch_before = m.Vini.m_stretch_before;
    mg_stretch_after = m.Vini.m_stretch_after;
    mg_balance_before = m.Vini.m_balance_before;
    mg_balance_after = m.Vini.m_balance_after;
  }

(* Shared scaffolding of both scenarios: the virtual ring auto-placed on
   Abilene, 30 s of routing warmup, then pings across the ring while the
   disruption (a crash or a planned move) plays out.  [domains]: any
   requested parallelism selects the sharded engine with the fixed
   logical shard count, so the export is byte-identical for every
   value. *)
let scenario ?domains ~seed ~vnodes ~algo ~events ~disrupt ~duration () =
  (match domains with
  | Some d when d < 1 -> invalid_arg "Migration: domains < 1"
  | Some _ | None -> ());
  let shards = Option.map (fun _ -> Engine.default_logical_shards) domains in
  let g = Vini_rcc.Rcc.abilene () in
  let vtopo = virtual_ring vnodes in
  let engine = Engine.create ~seed ?shards () in
  let profile _ = Underlay.planetlab_profile ~speed_ghz:2.0 in
  let vini = Vini.create ~engine ~graph:g ~profile () in
  let req =
    Request.make ~name:"migrate-demo" ~cpu:(fun _ -> 0.25) ~algo ~seed ()
  in
  let spec =
    Experiment.make ~name:"migrate-demo" ~slice:(Slice.pl_vini "migrate")
      ~vtopo
      ~placement:(Experiment.Auto req)
      ~events ()
  in
  let inst = Vini.deploy vini spec in
  let placement_before = Iias.current_embedding (Vini.iias inst) in
  Vini.start inst;
  let iias = Vini.iias inst in
  disrupt ~engine ~vini ~inst;
  Engine.run ~until:(Time.of_sec_f warmup_s) engine;
  let half = vnodes / 2 in
  let interval_ms = 250 in
  let count = int_of_float (duration *. 1000.0 /. float_of_int interval_ms) in
  let ping =
    Ping.start
      ~stack:(Iias.tap (Iias.vnode iias half))
      ~dst:(Iias.tap_addr (Iias.vnode iias 0))
      ~count
      ~mode:(Ping.Interval (Time.ms interval_ms))
      ~reply_timeout:(Time.ms 900) ()
  in
  Engine.run ~until:(Time.of_sec_f (warmup_s +. duration +. 5.0)) engine;
  let slices =
    [
      {
        Export.es_name = spec.Experiment.exp_name;
        es_vtopo = vtopo;
        es_request = req;
        es_result =
          (match Vini.mapping inst with
          | Some m -> Ok m
          | None -> assert false);
      };
    ]
  in
  let migrations = Vini.migrations inst in
  let export =
    Export.embed_document
      ~migrations:(List.map export_of_migration migrations)
      ~substrate:(Vini.substrate vini) ~slices ()
  in
  {
    placement_before;
    placement_after = Iias.current_embedding iias;
    migrations;
    reembed_failures = Vini.reembed_failures inst;
    migration_failures = Vini.migration_failures inst;
    pings_sent = Ping.sent ping;
    pings_received = Ping.received ping;
    ping_series = Ping.series ping;
    export;
  }

let run ?(seed = 4242) ?(vnodes = 6) ?(crash_at = 10.0) ?(duration = 40.0)
    ?(algo = Request.Greedy) ?domains () =
  scenario ?domains ~seed ~vnodes ~algo
    ~events:[ Experiment.at (warmup_s +. crash_at) (Experiment.Crash_pnode 0) ]
    ~disrupt:(fun ~engine:_ ~vini:_ ~inst:_ -> ())
    ~duration ()

let run_planned ?(seed = 4242) ?(vnodes = 6) ?(migrate_at = 10.0)
    ?(duration = 40.0) ?(algo = Request.Greedy) ?domains ?target () =
  let disrupt ~engine ~vini ~inst =
    ignore
      (Engine.at engine
         (Time.of_sec_f (warmup_s +. migrate_at))
         (fun () ->
           (* Default target: the first up spare machine — the solver
              would keep a lightly-loaded slice where it is, and this
              scenario is about exercising the cutover. *)
           let target =
             match target with
             | Some p -> p
             | None ->
                 let emb = Iias.current_embedding (Vini.iias inst) in
                 let n =
                   Graph.node_count
                     (Vini_embed.Substrate.graph (Vini.substrate vini))
                 in
                 let used p = Array.exists (( = ) p) emb in
                 let rec find p =
                   if p >= n then
                     invalid_arg "Migration.run_planned: no spare machine"
                   else if used p then find (p + 1)
                   else p
                 in
                 find 0
           in
           ignore (Vini.migrate ~target inst ~vnode:0)))
  in
  scenario ?domains ~seed ~vnodes ~algo ~events:[] ~disrupt ~duration ()

(* --- planned vs. crash-driven ------------------------------------------- *)

type comparison = {
  planned : result;
  crash : result;
  planned_downtime_s : float;
  crash_downtime_s : float;
  planned_cutover_loss : int;
  planned_ping_loss : int;
  crash_ping_loss : int;
}

let total_downtime r =
  List.fold_left
    (fun acc (m : Vini.migration) ->
      acc +. Time.to_sec_f (Time.sub m.Vini.m_restored_at m.Vini.m_down_at))
    0.0 r.migrations

let total_cutover_loss r =
  List.fold_left
    (fun acc (m : Vini.migration) ->
      acc + Option.value ~default:0 m.Vini.m_cutover_loss)
    0 r.migrations

let compare_modes ?(seed = 4242) ?(vnodes = 6) ?(at = 10.0)
    ?(duration = 40.0) ?domains () =
  let planned =
    run_planned ~seed ~vnodes ~migrate_at:at ~duration ?domains ()
  in
  let crash = run ~seed ~vnodes ~crash_at:at ~duration ?domains () in
  {
    planned;
    crash;
    planned_downtime_s = total_downtime planned;
    crash_downtime_s = total_downtime crash;
    planned_cutover_loss = total_cutover_loss planned;
    planned_ping_loss = planned.pings_sent - planned.pings_received;
    crash_ping_loss = crash.pings_sent - crash.pings_received;
  }
