module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Datasets = Vini_topo.Datasets
module Underlay = Vini_phys.Underlay
module Pnode = Vini_phys.Pnode
module Slice = Vini_phys.Slice
module Iias = Vini_overlay.Iias
module Iperf = Vini_measure.Iperf
module Ping = Vini_measure.Ping

type tcp_result = {
  mbps_mean : float;
  mbps_stddev : float;
  fwdr_cpu_pct : float;
}

type ping_result = {
  p_min : float;
  p_avg : float;
  p_max : float;
  p_mdev : float;
  p_loss_pct : float;
}

(* [domains]: any requested parallelism (1 included) selects the sharded
   engine with its fixed logical shard count, so the CI determinism gate
   compares sharded runs against sharded runs; omitted = classic engine. *)
let make_underlay ?domains ~seed () =
  (match domains with
  | Some d when d < 1 -> invalid_arg "Deter: domains < 1"
  | Some _ | None -> ());
  let shards =
    Option.map (fun _ -> Engine.default_logical_shards) domains
  in
  let engine = Engine.create ~seed ?shards () in
  let graph = Datasets.Deter.topology () in
  let underlay =
    Underlay.create ~engine
      ~rng:(Vini_std.Rng.split (Engine.rng engine))
      ~graph ()
  in
  (engine, underlay)

let make_overlay ?domains ~seed () =
  let engine, underlay = make_underlay ?domains ~seed () in
  let slice = Slice.pl_vini "iias" in
  let iias =
    Iias.create ~underlay ~slice
      ~vtopo:(Datasets.Deter.topology ())
      ~embedding:Fun.id ()
  in
  Iias.start iias;
  (engine, underlay, iias)

(* One measured TCP run; [stacks] picks the endpoints and the middle
   node's CPU meter. *)
let tcp_run ~duration_s ~seed ~setup =
  let engine, client, server, fwdr_cpu = setup ~seed in
  let start = Time.sec 25 in
  let warmup = Time.sec 2 in
  let duration = Time.sec duration_s in
  let run = Iperf.tcp ~client ~server ~warmup ~start ~duration () in
  let window_open = Time.add start warmup in
  let cpu_before = ref Time.zero in
  ignore (Engine.at engine window_open (fun () -> cpu_before := fwdr_cpu ()));
  Engine.run ~until:(Time.add window_open duration) engine;
  let cpu_used = Time.sub (fwdr_cpu ()) !cpu_before in
  let cpu_pct = 100.0 *. Time.to_sec_f cpu_used /. Time.to_sec_f duration in
  (Iperf.tcp_mbps run, cpu_pct)

let aggregate runs =
  let mbps = Vini_std.Stats.create () and cpu = Vini_std.Stats.create () in
  List.iter
    (fun (m, c) ->
      Vini_std.Stats.add mbps m;
      Vini_std.Stats.add cpu c)
    runs;
  {
    mbps_mean = Vini_std.Stats.mean mbps;
    mbps_stddev = Vini_std.Stats.stddev mbps;
    fwdr_cpu_pct = Vini_std.Stats.mean cpu;
  }

let network_setup ~seed =
  let engine, underlay = make_underlay ~seed () in
  let src = Underlay.node underlay Datasets.Deter.src in
  let sink = Underlay.node underlay Datasets.Deter.sink in
  let fwdr = Underlay.node underlay Datasets.Deter.fwdr in
  ( engine,
    Pnode.stack src,
    Pnode.stack sink,
    fun () -> Pnode.kernel_cpu_time fwdr )

let iias_setup ~seed =
  let engine, _underlay, iias = make_overlay ~seed () in
  let v_src = Iias.vnode iias Datasets.Deter.src in
  let v_sink = Iias.vnode iias Datasets.Deter.sink in
  let v_fwdr = Iias.vnode iias Datasets.Deter.fwdr in
  ( engine,
    Iias.tap v_src,
    Iias.tap v_sink,
    fun () -> Iias.cpu_time v_fwdr )

let many ~runs ~seed f =
  List.init runs (fun i -> f ~seed:(seed + (37 * i)))

let network_tcp ?(runs = 5) ?(duration_s = 5) ?(seed = 1001) () =
  aggregate
    (many ~runs ~seed (fun ~seed -> tcp_run ~duration_s ~seed ~setup:network_setup))

let iias_tcp ?(runs = 5) ?(duration_s = 5) ?(seed = 2001) () =
  aggregate
    (many ~runs ~seed (fun ~seed -> tcp_run ~duration_s ~seed ~setup:iias_setup))

let ping_result_of p =
  let rtts = Ping.rtt_ms p in
  {
    p_min = Vini_std.Stats.min rtts;
    p_avg = Vini_std.Stats.mean rtts;
    p_max = Vini_std.Stats.max rtts;
    p_mdev = Vini_std.Stats.mdev rtts;
    p_loss_pct = Ping.loss_pct p;
  }

let network_ping ?(count = 10_000) ?(seed = 3001) () =
  let engine, underlay = make_underlay ~seed () in
  let src = Underlay.node underlay Datasets.Deter.src in
  let sink = Underlay.node underlay Datasets.Deter.sink in
  let p =
    Ping.start ~stack:(Pnode.stack src) ~dst:(Pnode.addr sink) ~count ()
  in
  Engine.run ~until:(Time.sec 300) engine;
  ping_result_of p

let iias_ping ?(count = 10_000) ?(seed = 4001) () =
  let engine, _underlay, iias = make_overlay ~seed () in
  let v_src = Iias.vnode iias Datasets.Deter.src in
  let v_sink = Iias.vnode iias Datasets.Deter.sink in
  Engine.run ~until:(Time.sec 25) engine;
  let p =
    Ping.start ~stack:(Iias.tap v_src) ~dst:(Iias.tap_addr v_sink) ~count ()
  in
  Engine.run ~until:(Time.sec 400) engine;
  ping_result_of p

(* ---- The instrumented observability run (CI's BENCH_METRICS.json) ----- *)

module Trace = Vini_sim.Trace
module Monitor = Vini_measure.Monitor
module Export = Vini_measure.Export
module Tcp = Vini_transport.Tcp

let observability_run ?(duration_s = 2) ?(seed = 7001)
    ?(trace_capacity = 8192) ?(trace_categories = Trace.Category.all) () =
  let engine, underlay, iias = make_overlay ~seed () in
  Engine.set_profiling engine true;
  let trace = Trace.create ~capacity:trace_capacity ~categories:trace_categories () in
  Trace.install trace;
  let monitor = Vini_measure.Monitor.create ~engine ~interval:(Time.ms 200) () in
  Monitor.watch_engine monitor engine;
  let v_src = Iias.vnode iias Datasets.Deter.src in
  let v_sink = Iias.vnode iias Datasets.Deter.sink in
  let v_fwdr = Iias.vnode iias Datasets.Deter.fwdr in
  Monitor.watch_vnode monitor v_fwdr ~prefix:"click.fwdr";
  Monitor.watch_vnode monitor v_sink ~prefix:"click.sink";
  let fwdr_node = Underlay.node underlay Datasets.Deter.fwdr in
  Monitor.watch_cpu monitor ~prefix:"phys.fwdr" (Pnode.cpu fwdr_node);
  Monitor.counter monitor ~name:"phys.fwdr.kernel_cpu_s" (fun () ->
      Time.to_sec_f (Pnode.kernel_cpu_time fwdr_node));
  (* Converge, then drive one bulk TCP transfer across the overlay so the
     engine, Click elements, CPU schedulers and TCP all see load. *)
  Engine.run ~until:(Time.sec 25) engine;
  Tcp.listen ~stack:(Iias.tap v_sink) ~port:5001 ~on_accept:(fun _ -> ()) ();
  let conn =
    Tcp.connect ~stack:(Iias.tap v_src) ~dst:(Iias.tap_addr v_sink)
      ~dst_port:5001 ()
  in
  Monitor.watch_tcp monitor ~prefix:"tcp.src" conn;
  Tcp.send_forever conn;
  Engine.run ~until:(Time.sec (25 + duration_s)) engine;
  Monitor.stop monitor;
  Trace.uninstall ();
  let stats = Tcp.stats conn in
  let mbps =
    float_of_int stats.Tcp.bytes_acked *. 8.0
    /. (float_of_int duration_s *. 1e6)
  in
  let doc =
    Export.document ~trace
      ~extra:
        [
          ("scenario", Export.Str "deter-iias-tcp");
          ("duration_s", Export.Num (float_of_int duration_s));
          ("seed", Export.Num (float_of_int seed));
          ("tcp_mbps", Export.Num mbps);
        ]
      [ monitor ]
  in
  (doc, mbps)

(* ---- The flight-recorder run (CI's spans artifact) --------------------- *)

module Packet = Vini_net.Packet
module Ipstack = Vini_phys.Ipstack
module Sspan = Vini_sim.Span
module Mspan = Vini_measure.Span

(* A quarter of the recorder's default ring: plenty for the traffic
   window's trees while keeping the JSON artifact CI-friendly. *)
let spans_run ?(duration_s = 2) ?(seed = 7001) ?(span_capacity = 65_536)
    ?domains () =
  let engine, _underlay, iias = make_overlay ?domains ~seed () in
  (* A sink enabling the [span] category plus an installed recorder opens
     the double gate; installing both before convergence means even
     routing-protocol chatter gets causal trees. *)
  let trace =
    Trace.create ~capacity:256 ~categories:[ Trace.Category.Span ] ()
  in
  Trace.install trace;
  let recorder = Sspan.create ~capacity:span_capacity () in
  Sspan.install recorder;
  let monitor = Monitor.create ~engine ~interval:(Time.ms 200) () in
  Mspan.watch monitor ~prefix:"spans" recorder;
  let v_src = Iias.vnode iias Datasets.Deter.src in
  let v_sink = Iias.vnode iias Datasets.Deter.sink in
  Engine.run ~until:(Time.sec 25) engine;
  Tcp.listen ~stack:(Iias.tap v_sink) ~port:5001 ~on_accept:(fun _ -> ()) ();
  let conn =
    Tcp.connect ~stack:(Iias.tap v_src) ~dst:(Iias.tap_addr v_sink)
      ~dst_port:5001 ()
  in
  Tcp.send_forever conn;
  (* TTL-limited probes guarantee the artifact exercises drop forensics:
     each dies mid-path with a recorded path-so-far.  They go in near the
     end of the window so bulk-TCP records can't wrap the ring past them
     before the export. *)
  ignore
    (Engine.at engine
       (Time.sub (Time.sec (25 + duration_s)) (Time.ms 100))
       (fun () ->
         for i = 0 to 3 do
           Ipstack.send (Iias.tap v_src)
             (Packet.udp ~ttl:1 ~src:(Iias.tap_addr v_src)
                ~dst:(Iias.tap_addr v_sink) ~sport:40000 ~dport:40001
                (Packet.Probe
                   { Packet.flow = 9; seq = i; sent_ns = 0; pad = 32 }))
         done));
  Engine.run ~until:(Time.sec (25 + duration_s)) engine;
  Monitor.stop monitor;
  let trees = Mspan.trees recorder in
  Mspan.register_breakdown monitor ~prefix:"spans" trees;
  Sspan.uninstall ();
  Trace.uninstall ();
  let stats = Tcp.stats conn in
  let mbps =
    float_of_int stats.Tcp.bytes_acked *. 8.0
    /. (float_of_int duration_s *. 1e6)
  in
  let doc =
    Export.spans_document
      ~extra:
        [
          ("scenario", Export.Str "deter-iias-tcp-spans");
          ("duration_s", Export.Num (float_of_int duration_s));
          ("seed", Export.Num (float_of_int seed));
          ("tcp_mbps", Export.Num mbps);
          ("metrics", Export.document [ monitor ]);
        ]
      recorder
  in
  (doc, mbps)

(* ---- The timeline run (CI's vini.timeline/1 artifact) ------------------ *)

module Profile = Vini_sim.Profile
module Timeline = Vini_measure.Timeline
module Pool = Vini_net.Pool
module Ring = Vini_click.Ring
module Batch = Vini_click.Batch
module Element = Vini_click.Element
module Addr = Vini_net.Addr

(* A small batched data-plane loop riding the same engine as the overlay
   replay: a preallocated pool feeds an SPSC ring, and a recurring engine
   event drains it in breaths through a two-element chain whose sink
   recycles.  Pool occupancy, ring depth and element attribution series
   in the timeline artifact therefore carry real (and deterministic)
   data, not constants.  The pool is sized below what the refill wants so
   the low watermark actually moves. *)
let dp_loop engine ~until =
  let pool =
    Pool.create ~capacity:48
      ~mint:(fun i ->
        Vini_net.Packet.udp
          ~src:(Addr.of_string "10.99.0.1")
          ~dst:(Addr.of_string (Printf.sprintf "10.99.1.%d" (1 + (i mod 4))))
          ~sport:1000 ~dport:2000 (Vini_net.Packet.Bytes_ 512))
      ()
  in
  let ring = Ring.create ~capacity:32 in
  let sink =
    Element.make_batch "tl.sink"
      ~single:(fun pkt -> Pool.recycle pool pkt)
      ~batch:(fun b ->
        for i = 0 to Batch.length b - 1 do
          Pool.recycle pool (Batch.unsafe_get b i)
        done)
  in
  let count =
    Element.make_batch "tl.count"
      ~single:(fun pkt -> Element.push sink pkt)
      ~batch:(fun b -> Element.push_batch sink b)
  in
  let burst = Batch.create ~capacity:16 in
  let rec breath () =
    if Time.compare (Engine.now engine) until < 0 then begin
      (* Produce more than one breath consumes so the ring backlog (and
         its high-watermark) grows before settling at capacity. *)
      let go = ref true in
      let pushed = ref 0 in
      while !go && !pushed < 24 do
        match Pool.take_opt pool with
        | None -> go := false
        | Some p ->
            if Ring.push ring p then incr pushed
            else begin
              Pool.recycle pool p;
              go := false
            end
      done;
      Batch.clear burst;
      let n = Ring.pop_into ring burst ~max:16 in
      if n > 0 then Element.push_batch count burst;
      ignore (Engine.after engine (Time.ms 50) breath)
    end
  in
  ignore (Engine.after engine (Time.ms 50) breath);
  (pool, ring)

let timeline_run ?(duration_s = 2) ?(seed = 7001) ?(interval_ms = 200)
    ?domains () =
  let engine, _underlay, iias = make_overlay ?domains ~seed () in
  let profile = Profile.create () in
  Profile.install profile;
  let timeline =
    Timeline.create ~engine ~interval:(Time.ms interval_ms) ()
  in
  Timeline.watch_engine timeline engine;
  Timeline.watch_profile timeline profile;
  Timeline.watch_overlay timeline iias;
  let v_src = Iias.vnode iias Datasets.Deter.src in
  let v_sink = Iias.vnode iias Datasets.Deter.sink in
  let v_fwdr = Iias.vnode iias Datasets.Deter.fwdr in
  Timeline.watch_process timeline ~prefix:"click.fwdr"
    (Iias.process v_fwdr);
  let stop_at = Time.sec (25 + duration_s) in
  let pool, ring = dp_loop engine ~until:stop_at in
  Timeline.watch_pool timeline ~prefix:"dp.pool" pool;
  Timeline.watch_ring timeline ~prefix:"dp.ring" ring;
  Engine.run ~until:(Time.sec 25) engine;
  Tcp.listen ~stack:(Iias.tap v_sink) ~port:5001 ~on_accept:(fun _ -> ()) ();
  let conn =
    Tcp.connect ~stack:(Iias.tap v_src) ~dst:(Iias.tap_addr v_sink)
      ~dst_port:5001 ()
  in
  Tcp.send_forever conn;
  Engine.run ~until:stop_at engine;
  Timeline.stop timeline;
  Profile.uninstall ();
  let stats = Tcp.stats conn in
  let mbps =
    float_of_int stats.Tcp.bytes_acked *. 8.0
    /. (float_of_int duration_s *. 1e6)
  in
  let doc =
    Timeline.document
      ~extra:
        [
          ("scenario", Export.Str "deter-iias-tcp-timeline");
          ("duration_s", Export.Num (float_of_int duration_s));
          ("seed", Export.Num (float_of_int seed));
          ("tcp_mbps", Export.Num mbps);
        ]
      timeline
  in
  (doc, mbps)
