(** §5.1.1 — microbenchmark #1, overlay efficiency on dedicated hardware.

    Reproduces Table 2 (TCP throughput, network vs IIAS, with forwarder
    CPU) and Table 3 (flood-ping latency) on the 3-machine DETER chain.
    "Network" runs iperf/ping between the kernel stacks with in-kernel
    forwarding at the middle node; "IIAS" runs them across the overlay's
    tap interfaces with user-space Click forwarding. *)

type tcp_result = {
  mbps_mean : float;
  mbps_stddev : float;
  fwdr_cpu_pct : float;   (** middle node: kernel or Click process *)
}

type ping_result = {
  p_min : float;
  p_avg : float;
  p_max : float;
  p_mdev : float;
  p_loss_pct : float;
}

val network_tcp : ?runs:int -> ?duration_s:int -> ?seed:int -> unit -> tcp_result
val iias_tcp : ?runs:int -> ?duration_s:int -> ?seed:int -> unit -> tcp_result
val network_ping : ?count:int -> ?seed:int -> unit -> ping_result
val iias_ping : ?count:int -> ?seed:int -> unit -> ping_result

val observability_run :
  ?duration_s:int ->
  ?seed:int ->
  ?trace_capacity:int ->
  ?trace_categories:Vini_sim.Trace.Category.t list ->
  unit ->
  Vini_measure.Export.json * float
(** One fully-instrumented IIAS TCP run on the DETER chain: engine
    profiling on, a trace sink installed (default: all categories), and a
    metrics registry watching the engine, the forwarder's Click counters,
    the physical CPU scheduler and the TCP sender.  Returns the
    [vini.metrics/1] export document (this is what the bench writes to
    [BENCH_METRICS.json]) and the measured throughput in Mb/s. *)

val spans_run :
  ?duration_s:int ->
  ?seed:int ->
  ?span_capacity:int ->
  ?domains:int ->
  unit ->
  Vini_measure.Export.json * float
(** The flight-recorder run: same IIAS TCP scenario with a span recorder
    installed from t=0 (so routing chatter, the transfer, and four
    deliberately TTL-doomed probes all leave causal trees).  Returns the
    [vini.spans/1] document (with embedded Chrome [traceEvents] and a
    nested [metrics] document) and the measured throughput in Mb/s.

    [domains] (>= 1): run on the sharded engine with the fixed logical
    shard count.  The document is byte-identical for every [domains]
    value (the determinism-gate CI job hashes it at 1, 2 and 4); omitting
    the argument uses the classic single-queue engine. *)

val timeline_run :
  ?duration_s:int ->
  ?seed:int ->
  ?interval_ms:int ->
  ?domains:int ->
  unit ->
  Vini_measure.Export.json * float
(** The self-observability run: the IIAS TCP scenario with the runtime
    {!Vini_sim.Profile} installed and a {!Vini_measure.Timeline} sampling
    every [interval_ms] (default 200) milliseconds of simulated time.
    The timeline watches the engine, the profiler, the whole overlay and
    the forwarder's Click process, plus a small batched pool-to-ring
    breath loop riding the same engine so pool occupancy, ring depth and
    breath utilization series carry real data.  Returns the
    [vini.timeline/1] document and the measured throughput in Mb/s.

    [domains] behaves exactly as in {!spans_run}; the document is
    byte-identical across [domains] values (CI's [timeline-smoke] job
    [cmp]s it at 1, 2 and 4). *)
