(** MTTR and packet loss during OSPF reconvergence under node vs link
    failure — the chaos layer's headline experiment.

    The §5.2 Abilene-mirror scenario, but instead of only cutting the
    Denver–Kansas-City virtual link we also crash the Denver {e machine}:
    every process on it dies, neighbours detect the silence via the OSPF
    dead interval and reroute, and after the machine reboots the
    supervisor restarts the Click process under its backoff policy, the
    RIB is replayed into the fresh FIB, and a new OSPF instance re-forms
    adjacencies.  Pings DC -> Seattle measure detection time, packets
    lost, and time for traffic to return to the primary path after repair;
    an invariant {!Vini_measure.Watchdog} runs throughout.  The sweep
    varies the supervisor's base backoff and includes a plain link-cut
    control row. *)

val topology : unit -> Vini_topo.Graph.t
(** The Abilene mirror (same dataset as {!Abilene.topology}). *)

type fault = Node_crash of Vini_phys.Supervisor.policy | Link_cut

val fault_label : fault -> string

type row = {
  label : string;
  detect_s : float;        (** failure -> traffic on the backup path *)
  lost_pings : int;
  recover_s : float;       (** repair -> traffic back on the primary path *)
  restarts : int;          (** supervised restarts performed *)
  watchdog_violations : (string * int) list;
}

val run :
  ?seed:int ->
  ?fail_at:float ->
  ?restore_at:float ->
  ?total_s:float ->
  ?ping_interval_ms:int ->
  fault:fault ->
  unit ->
  row
(** One run.  Defaults: seed 9301, fail 10 s and repair 25 s into a 50 s
    measurement window (after 40 s of routing warmup), 250 ms pings. *)

val run_one :
  ?seed:int ->
  ?fail_at:float ->
  ?restore_at:float ->
  ?total_s:float ->
  ?ping_interval_ms:int ->
  fault:fault ->
  unit ->
  row * Vini_measure.Watchdog.t * Vini_overlay.Iias.t
(** Like {!run} but also hands back the watchdog and overlay for
    fine-grained assertions (tests). *)

val sweep : ?seed:int -> ?backoffs:float list -> unit -> row list
(** Node-crash rows for each backoff (default 0.5/2/8 s) plus the
    link-cut control row. *)

val row_strings : row list -> string list
(** A fixed-width table (header first) for [vini mttr] and reports. *)
