(** Migration, end to end — crash-driven and planned.

    Two scenarios over the same scaffolding (a six-node virtual ring
    auto-placed on the Abilene substrate, pings across the ring
    throughout):

    - {!run} — {b crash-driven}: mid-run a hosting machine is crashed
      and {e stays down} past the re-embed grace period, so the
      embedding layer re-solves with the survivors pinned and rebuilds
      the displaced virtual node on a feasible spare machine
      ({!Vini_overlay.Iias.migrate_vnode}), recording the move with its
      downtime.
    - {!run_planned} — {b make-before-break}: the same displacement as a
      planned live migration ({!Vini_core.Vini.migrate}): pre-cloned
      process, double-provisioned resources, atomic barrier flip, drain,
      retire.  Downtime is zero and the recorded cutover loss is zero in
      steady state.

    Each returns the run's [vini.embed/1] export (mapping, substrate
    stress, acceptance, migration records) verbatim — two runs with the
    same seed produce byte-identical documents whatever [domains] is,
    which is exactly what the determinism tests and the [migration-smoke]
    CI job assert.  {!compare_modes} runs both on the same seed for the
    planned-vs-crash table ([vini migrate --compare]). *)

type result = {
  placement_before : int array;  (** vnode -> pnode at deploy *)
  placement_after : int array;   (** vnode -> pnode at the end *)
  migrations : Vini_core.Vini.migration list;
  reembed_failures : (int * Vini_embed.Embed.rejection) list;
  migration_failures : (int * string) list;
      (** planned moves rejected or rolled back, with reasons *)
  pings_sent : int;
  pings_received : int;
  ping_series : (float * float) list;
      (** reply (time s, rtt ms) pairs, engine-absolute times *)
  export : Vini_measure.Export.json;  (** the [vini.embed/1] document *)
}

val virtual_ring : int -> Vini_topo.Graph.t
(** An n-node ring with uniform 1 Gb/s / 2 ms / weight-10 links (a chain
    below three nodes, where a ring would duplicate its only link). *)

val export_of_migration :
  Vini_core.Vini.migration -> Vini_measure.Export.embed_migration
(** The canonical mapping of a core migration record into the
    [vini.embed/1] migration entry (kind, downtime, cutover loss,
    stretch and balance deltas). *)

val run :
  ?seed:int ->
  ?vnodes:int ->
  ?crash_at:float ->
  ?duration:float ->
  ?algo:Vini_embed.Request.algo ->
  ?domains:int ->
  unit ->
  result
(** Crash-driven scenario.  Defaults: seed 4242, 6 virtual nodes, crash
    10 s into a 40 s measurement window (after 30 s of routing warmup),
    greedy solver.  The crashed machine is whichever one hosts virtual
    node 0.  [domains] (>= 1): run on the sharded engine with the fixed
    logical shard count; the export is byte-identical for every value. *)

val run_planned :
  ?seed:int ->
  ?vnodes:int ->
  ?migrate_at:float ->
  ?duration:float ->
  ?algo:Vini_embed.Request.algo ->
  ?domains:int ->
  ?target:int ->
  unit ->
  result
(** Planned scenario: at [migrate_at] (same default instant as the
    crash), live-migrate virtual node 0 — the ping destination — to
    [target] (default: the first spare machine).  Timing knobs as
    {!run}. *)

type comparison = {
  planned : result;
  crash : result;
  planned_downtime_s : float;  (** summed over recorded moves; zero *)
  crash_downtime_s : float;
  planned_cutover_loss : int;  (** summed cutover loss; zero in steady state *)
  planned_ping_loss : int;     (** pings sent - received *)
  crash_ping_loss : int;
}

val compare_modes :
  ?seed:int ->
  ?vnodes:int ->
  ?at:float ->
  ?duration:float ->
  ?domains:int ->
  unit ->
  comparison
(** Run both scenarios with identical seed/topology/timing and derive
    the planned-vs-crash quality summary. *)
