(** Crash-driven re-embedding, end to end: the embedding engine's
    headline scenario.

    A six-node virtual ring is auto-placed on the Abilene substrate by
    the capacity-aware solver.  Mid-run a hosting machine is crashed and
    {e stays down} past the re-embed grace period, so instead of waiting
    for a reboot the embedding layer re-solves with the survivors pinned,
    migrates the displaced virtual node onto a feasible spare machine
    ({!Vini_overlay.Iias.migrate_vnode}), and records the move with its
    downtime.  Pings run across the ring throughout; the run's
    [vini.embed/1] export (mapping, substrate stress, acceptance,
    migration downtime) is returned verbatim — two runs with the same
    seed produce byte-identical documents, which is exactly what the
    determinism test asserts. *)

type result = {
  placement_before : int array;  (** vnode -> pnode at deploy *)
  placement_after : int array;   (** vnode -> pnode at the end *)
  migrations : Vini_core.Vini.migration list;
  reembed_failures : (int * Vini_embed.Embed.rejection) list;
  pings_sent : int;
  pings_received : int;
  ping_series : (float * float) list;
      (** reply (time s, rtt ms) pairs, engine-absolute times *)
  export : Vini_measure.Export.json;  (** the [vini.embed/1] document *)
}

val virtual_ring : int -> Vini_topo.Graph.t
(** An n-node ring with uniform 1 Gb/s / 2 ms / weight-10 links (a chain
    below three nodes, where a ring would duplicate its only link). *)

val run :
  ?seed:int ->
  ?vnodes:int ->
  ?crash_at:float ->
  ?duration:float ->
  ?algo:Vini_embed.Request.algo ->
  unit ->
  result
(** Defaults: seed 4242, 6 virtual nodes, crash 10 s into a 40 s
    measurement window (after 30 s of routing warmup), greedy solver.
    The crashed machine is whichever one hosts virtual node 0. *)
