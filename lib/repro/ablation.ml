module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Datasets = Vini_topo.Datasets
module Underlay = Vini_phys.Underlay
module Slice = Vini_phys.Slice
module Iias = Vini_overlay.Iias
module Iperf = Vini_measure.Iperf
module Ping = Vini_measure.Ping

type knob_result = {
  label : string;
  mbps : float;
  ping_avg_ms : float;
  ping_mdev_ms : float;
}

let planetlab_overlay ~seed ~slice ?tunnel_rcvbuf_bytes () =
  let engine = Engine.create ~seed () in
  let graph = Datasets.Planetlab3.topology () in
  let profile _ = Underlay.planetlab_profile ~speed_ghz:2.0 in
  let underlay =
    Underlay.create ~engine
      ~rng:(Vini_std.Rng.split (Engine.rng engine))
      ~graph ~profile ()
  in
  let iias =
    Iias.create ~underlay ~slice ~vtopo:(Datasets.Planetlab3.topology ())
      ~embedding:Fun.id ?tunnel_rcvbuf_bytes ()
  in
  Iias.start iias;
  (engine, iias)

let endpoints iias =
  ( Iias.tap (Iias.vnode iias Datasets.Planetlab3.chicago),
    Iias.tap (Iias.vnode iias Datasets.Planetlab3.washington) )

let scheduler_knobs ?(duration_s = 5) ?(seed = 11001) () =
  let cases =
    [
      ("fair share", Slice.create "a");
      ("reservation only", Slice.create ~reservation:0.25 "b");
      ("rt only", Slice.create ~realtime:true "c");
      ("reservation + rt (PL-VINI)", Slice.pl_vini "d");
    ]
  in
  List.mapi
    (fun i (label, slice) ->
      (* Throughput run. *)
      let engine, iias = planetlab_overlay ~seed:(seed + (7 * i)) ~slice () in
      let client, server = endpoints iias in
      let run =
        Iperf.tcp ~client ~server ~start:(Time.sec 25) ~warmup:(Time.sec 2)
          ~duration:(Time.sec duration_s) ()
      in
      Engine.run ~until:(Time.sec (27 + duration_s)) engine;
      let mbps = Iperf.tcp_mbps run in
      (* Latency run, separately (as the paper does). *)
      let engine, iias =
        planetlab_overlay ~seed:(seed + 1000 + (7 * i)) ~slice ()
      in
      let client, server = endpoints iias in
      Engine.run ~until:(Time.sec 25) engine;
      let ping =
        Ping.start ~stack:client
          ~dst:(Vini_phys.Ipstack.local_addr server)
          ~count:3000 ()
      in
      Engine.run ~until:(Time.sec 400) engine;
      {
        label;
        mbps;
        ping_avg_ms = Vini_std.Stats.mean (Ping.rtt_ms ping);
        ping_mdev_ms = Vini_std.Stats.mdev (Ping.rtt_ms ping);
      })
    cases

let buffer_sweep ?(rate_mbps = 35.0) ?(buffers_kb = [ 16; 32; 64; 128; 256 ])
    ?(duration_s = 10) ?(seed = 12001) () =
  List.mapi
    (fun i kb ->
      let engine, iias =
        planetlab_overlay ~seed:(seed + (13 * i))
          ~slice:(Slice.default_share "sweep")
          ~tunnel_rcvbuf_bytes:(kb * 1024) ()
      in
      let client, server = endpoints iias in
      let run =
        Iperf.udp ~client ~server ~rate_bps:(rate_mbps *. 1e6)
          ~start:(Time.sec 25)
          ~duration:(Time.sec duration_s) ()
      in
      Engine.run ~until:(Time.sec (27 + duration_s)) engine;
      (kb, Iperf.udp_loss_pct run))
    buffers_kb

let timer_sweep ?(timers = [ (1, 4); (2, 6); (5, 10); (10, 25) ])
    ?(seed = 13001) () =
  List.mapi
    (fun i (hello, dead) ->
      (* Detection delay depends on hello phase; average a few seeds. *)
      let samples =
        List.filter_map
          (fun j ->
            let r =
              Abilene.fig8_run ~seed:(seed + (17 * i) + j)
                ~ping_interval_ms:100 ~hello ~dead ()
            in
            let d = r.Abilene.detect_delay in
            if Float.is_nan d then None else Some d)
          [ 0; 1; 2 ]
      in
      let mean =
        match samples with
        | [] -> Float.nan
        | _ ->
            List.fold_left ( +. ) 0.0 samples
            /. float_of_int (List.length samples)
      in
      (hello, dead, mean))
    timers

(* --- isolation matrix ---------------------------------------------------- *)

let isolation_matrix ?(duration_s = 8) ?(seed = 14001) () =
  let module Pnode = Vini_phys.Pnode in
  let run ~idx ~cpu_isolated ~htb =
    let engine = Engine.create ~seed:(seed + (11 * idx)) () in
    let graph = Datasets.Planetlab3.topology () in
    let profile _ = Underlay.planetlab_profile ~speed_ghz:2.0 in
    let underlay =
      Underlay.create ~engine
        ~rng:(Vini_std.Rng.split (Engine.rng engine))
        ~graph ~profile ()
    in
    if htb then
      List.iter
        (fun pnode ->
          Pnode.enable_egress_htb pnode ~rate_bps:100e6;
          Pnode.set_egress_class pnode ~name:"careful" ~assured_bps:40e6 ();
          Pnode.set_egress_class pnode ~name:"noisy" ())
        (Underlay.nodes underlay);
    let careful_slice =
      if cpu_isolated then Slice.pl_vini "careful"
      else Slice.default_share "careful"
    in
    let mk slice port =
      let iias =
        Iias.create ~underlay ~slice ~vtopo:(Datasets.Planetlab3.topology ())
          ~embedding:Fun.id ~tunnel_port:port ()
      in
      Iias.start iias;
      iias
    in
    let careful = mk careful_slice 33000 in
    let noisy = mk (Slice.default_share "noisy") 33100 in
    Engine.run ~until:(Time.sec 25) engine;
    let tap iias v = Iias.tap (Iias.vnode iias v) in
    (* The noisy experiment floods its own overlay for the whole window. *)
    ignore
      (Iperf.udp
         ~client:(tap noisy Datasets.Planetlab3.chicago)
         ~server:(tap noisy Datasets.Planetlab3.washington)
         ~rate_bps:60e6 ~start:(Time.sec 26)
         ~duration:(Time.sec (duration_s + 6))
         ());
    let tcp =
      Iperf.tcp
        ~client:(tap careful Datasets.Planetlab3.chicago)
        ~server:(tap careful Datasets.Planetlab3.washington)
        ~streams:10 ~start:(Time.sec 26) ~warmup:(Time.sec 2)
        ~duration:(Time.sec duration_s) ()
    in
    let ping =
      Ping.start
        ~stack:(tap careful Datasets.Planetlab3.chicago)
        ~dst:
          (Vini_phys.Ipstack.local_addr (tap careful Datasets.Planetlab3.washington))
        ~count:800 ()
    in
    Engine.run ~until:(Time.sec (40 + duration_s)) engine;
    ( Iperf.tcp_mbps tcp,
      Vini_std.Stats.mean (Ping.rtt_ms ping),
      Vini_std.Stats.mdev (Ping.rtt_ms ping) )
  in
  List.mapi
    (fun idx (label, cpu_isolated, htb) ->
      let mbps, avg, mdev = run ~idx ~cpu_isolated ~htb in
      { label; mbps; ping_avg_ms = avg; ping_mdev_ms = mdev })
    [
      ("no isolation", false, false);
      ("CPU isolation only (PL-VINI)", true, false);
      ("bandwidth isolation only (HTB)", false, true);
      ("CPU + bandwidth isolation", true, true);
    ]
