module Prefix = Vini_net.Prefix

type proto = Connected | Static | Ebgp | Ospf | Rip | Ibgp

let admin_distance = function
  | Connected -> 0
  | Static -> 1
  | Ebgp -> 20
  | Ospf -> 110
  | Rip -> 120
  | Ibgp -> 200

let proto_name = function
  | Connected -> "connected"
  | Static -> "static"
  | Ebgp -> "ebgp"
  | Ospf -> "ospf"
  | Rip -> "rip"
  | Ibgp -> "ibgp"

type route = { next_hop : Vini_net.Addr.t; metric : int; proto : proto }

type change = Install of Prefix.t * route | Withdraw of Prefix.t

module Pmap = Map.Make (Prefix)

type t = {
  fea : change -> unit;
  (* candidates per prefix, keyed by protocol *)
  mutable candidates : route list Pmap.t;
  mutable best : route Pmap.t;
}

let create ~fea () = { fea; candidates = Pmap.empty; best = Pmap.empty }

let pick = function
  | [] -> None
  | routes ->
      let better a b =
        let c = compare (admin_distance a.proto) (admin_distance b.proto) in
        if c <> 0 then c
        else
          let c = compare a.metric b.metric in
          if c <> 0 then c
          else Vini_net.Addr.compare a.next_hop b.next_hop
      in
      Some (List.hd (List.sort better routes))

let refresh t prefix =
  let cands = Option.value ~default:[] (Pmap.find_opt prefix t.candidates) in
  let old_best = Pmap.find_opt prefix t.best in
  let new_best = pick cands in
  let module Trace = Vini_sim.Trace in
  let trace action =
    if Trace.on Trace.Category.Route_update then
      Trace.emit ~component:"rib"
        (Trace.Route_update
           { prefix = Vini_net.Prefix.to_string prefix; action })
  in
  match (old_best, new_best) with
  | None, None -> ()
  | Some o, Some n when o = n -> ()
  | _, Some n ->
      t.best <- Pmap.add prefix n t.best;
      trace ("install via " ^ proto_name n.proto);
      t.fea (Install (prefix, n))
  | Some _, None ->
      t.best <- Pmap.remove prefix t.best;
      trace "withdraw";
      t.fea (Withdraw prefix)

let update t ~proto prefix route =
  (match route with
  | Some r when r.proto <> proto -> invalid_arg "Rib.update: proto mismatch"
  | Some _ | None -> ());
  let cands = Option.value ~default:[] (Pmap.find_opt prefix t.candidates) in
  let cands = List.filter (fun r -> r.proto <> proto) cands in
  let cands = match route with Some r -> r :: cands | None -> cands in
  t.candidates <-
    (if cands = [] then Pmap.remove prefix t.candidates
     else Pmap.add prefix cands t.candidates);
  refresh t prefix

let replace_all t ~proto routes =
  List.iter
    (fun (_, (r : route)) ->
      if r.proto <> proto then invalid_arg "Rib.replace_all: proto mismatch")
    routes;
  (* Collect prefixes that currently carry a candidate from this proto. *)
  let stale =
    Pmap.fold
      (fun p cands acc ->
        if List.exists (fun r -> r.proto = proto) cands then p :: acc else acc)
      t.candidates []
  in
  let fresh = List.map fst routes in
  List.iter (fun p -> update t ~proto p None)
    (List.filter (fun p -> not (List.mem p fresh)) stale);
  List.iter (fun (p, r) -> update t ~proto p (Some r)) routes

let best t prefix = Pmap.find_opt prefix t.best
let routes t = Pmap.bindings t.best

(* Re-announce every current best route through the FEA: after a data-plane
   crash the fresh (empty) FIB is repopulated from here, so routes survive
   the restart even before the protocols reconverge. *)
let reinstall t = Pmap.iter (fun p r -> t.fea (Install (p, r))) t.best

let pp ppf t =
  List.iter
    (fun (p, r) ->
      Format.fprintf ppf "%a via %a metric %d [%s]@." Prefix.pp p
        Vini_net.Addr.pp r.next_hop r.metric (proto_name r.proto))
    (routes t)
