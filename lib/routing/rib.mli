(** The routing information base.

    Each virtual node's protocols (connected, static, OSPF, RIP, BGP)
    deposit candidate routes here; the RIB picks a winner per prefix by
    administrative distance (then metric) and emits FIB changes through
    the forwarding-engine abstraction — the role XORP's FEA plays between
    the routing processes and Click (§4.2.2). *)

type proto = Connected | Static | Ebgp | Ospf | Rip | Ibgp

val admin_distance : proto -> int
(** Conventional values: connected 0, static 1, eBGP 20, OSPF 110,
    RIP 120, iBGP 200. *)

val proto_name : proto -> string

type route = {
  next_hop : Vini_net.Addr.t;
  metric : int;
  proto : proto;
}

type change =
  | Install of Vini_net.Prefix.t * route
  (** New best route for the prefix (also on replacement). *)
  | Withdraw of Vini_net.Prefix.t
  (** No route remains for the prefix. *)

type t

val create : fea:(change -> unit) -> unit -> t

val update : t -> proto:proto -> Vini_net.Prefix.t -> route option -> unit
(** [update t ~proto p (Some r)] sets protocol [proto]'s candidate for
    prefix [p]; [None] withdraws it.  The route's [proto] field must match.
    Emits a FIB change iff the best route changed. *)

val replace_all : t -> proto:proto -> (Vini_net.Prefix.t * route) list -> unit
(** Atomically replace every candidate a protocol contributes (how OSPF
    applies a fresh SPF result). *)

val best : t -> Vini_net.Prefix.t -> route option
val routes : t -> (Vini_net.Prefix.t * route) list
(** Current best routes, sorted. *)

val reinstall : t -> unit
(** Re-emit [Install] for every current best route — repopulates a freshly
    cleared FIB after a data-plane restart, before protocols reconverge. *)

val pp : Format.formatter -> t -> unit
