module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Packet = Vini_net.Packet
module Prefix = Vini_net.Prefix

type hello = { h_rid : int; h_seen : int list }

type lsa = {
  origin : int;
  seq : int;
  links : (int * int) list;
  prefixes : Prefix.t list;
}

type msg = Hello of hello | Flood of lsa list | Ack of (int * int) list
type Packet.control += Msg of msg

let lsa_size l = 20 + (12 * List.length l.links) + (8 * List.length l.prefixes)

let msg_size = function
  | Hello h -> 44 + (4 * List.length h.h_seen)
  | Flood lsas -> 24 + List.fold_left (fun acc l -> acc + lsa_size l) 0 lsas
  | Ack acks -> 20 + (8 * List.length acks)

type config = {
  router_id : int;
  hello_interval : Time.t;
  dead_interval : Time.t;
  spf_delay : Time.t;
  lsa_refresh : Time.t;
  rxmt_interval : Time.t;   (* unacked-LSA retransmission period *)
  local_prefixes : Prefix.t list;
}

let default_config ~router_id ~local_prefixes =
  {
    router_id;
    hello_interval = Time.sec 5;
    dead_interval = Time.sec 10;
    spf_delay = Time.ms 200;
    lsa_refresh = Time.sec 1800;
    rxmt_interval = Time.sec 2;
    local_prefixes;
  }

type nbr = {
  iface : Io.iface;
  mutable rid : int option;
  mutable full : bool;
  mutable dead_timer : Engine.handle option;
  (* Reliable flooding: LSAs sent to this neighbour and not yet
     acknowledged, keyed by origin (only the newest per origin matters). *)
  retx : (int, lsa) Hashtbl.t;
}

type t = {
  engine : Engine.t;
  rng : Vini_std.Rng.t;
  config : config;
  nbrs : nbr list;              (* one per interface, point-to-point *)
  rib : Rib.t;
  lsdb : (int, lsa) Hashtbl.t;  (* origin -> newest LSA *)
  mutable own_seq : int;
  mutable spf_pending : bool;
  mutable spf_runs : int;
  mutable messages_sent : int;
  mutable routes_installed : int;
  mutable spf_hooks : (unit -> unit) list;
  mutable stopped : bool;
}

let create ~engine ~rng ~config ~ifaces ~rib =
  {
    engine;
    rng;
    config;
    nbrs =
      List.map
        (fun iface ->
          { iface; rid = None; full = false; dead_timer = None;
            retx = Hashtbl.create 8 })
        ifaces;
    rib;
    lsdb = Hashtbl.create 16;
    own_seq = 0;
    spf_pending = false;
    spf_runs = 0;
    messages_sent = 0;
    routes_installed = 0;
    spf_hooks = [];
    stopped = false;
  }

let router_id t = t.config.router_id

let send t (iface : Io.iface) msg =
  if not t.stopped then begin
    t.messages_sent <- t.messages_sent + 1;
    iface.Io.send (Msg msg) ~size:(msg_size msg)
  end

(* --- SPF ------------------------------------------------------------- *)

let rec schedule_spf t =
  if not t.spf_pending then begin
    t.spf_pending <- true;
    ignore
      (Engine.after t.engine t.config.spf_delay (fun () ->
           t.spf_pending <- false;
           if not t.stopped then run_spf t))
  end

and run_spf t =
  t.spf_runs <- t.spf_runs + 1;
  let self = t.config.router_id in
  (* Edge rid1->rid2 exists iff both directions are advertised. *)
  let cost_of a b =
    match (Hashtbl.find_opt t.lsdb a, Hashtbl.find_opt t.lsdb b) with
    | Some la, Some lb ->
        if List.mem_assoc b la.links && List.mem_assoc a lb.links then
          Some (List.assoc b la.links)
        else None
    | _ -> None
  in
  let dist = Hashtbl.create 16 in
  let first_hop = Hashtbl.create 16 in
  let heap =
    Vini_std.Heap.create ~cmp:(fun (d1, r1, _) (d2, r2, _) ->
        let c = compare d1 d2 in
        if c <> 0 then c else compare r1 r2)
  in
  Hashtbl.replace dist self 0;
  Vini_std.Heap.push heap (0, self, None);
  let rec drain () =
    match Vini_std.Heap.pop heap with
    | None -> ()
    | Some (d, rid, hop) ->
        let current = Hashtbl.find_opt dist rid in
        if current = Some d && not (Hashtbl.mem first_hop rid && rid <> self)
        then begin
          if rid <> self then
            Hashtbl.replace first_hop rid (Option.get hop);
          (match Hashtbl.find_opt t.lsdb rid with
          | None -> ()
          | Some lsa ->
              List.iter
                (fun (nbr_rid, _) ->
                  match cost_of rid nbr_rid with
                  | None -> ()
                  | Some c ->
                      let nd = d + c in
                      let improves =
                        match Hashtbl.find_opt dist nbr_rid with
                        | None -> true
                        | Some old -> nd < old
                      in
                      if improves then begin
                        Hashtbl.replace dist nbr_rid nd;
                        let hop' =
                          if rid = self then Some nbr_rid else hop
                        in
                        Vini_std.Heap.push heap (nd, nbr_rid, hop')
                      end)
                lsa.links);
          drain ()
        end
        else drain ()
  in
  drain ();
  (* Map first-hop router ids to interfaces. *)
  let iface_of_rid rid =
    List.find_map
      (fun n -> if n.full && n.rid = Some rid then Some n.iface else None)
      t.nbrs
  in
  let routes = Hashtbl.create 32 in
  Hashtbl.iter
    (fun rid d ->
      if rid <> self then
        match Hashtbl.find_opt first_hop rid with
        | None -> ()
        | Some hop_rid -> (
            match (iface_of_rid hop_rid, Hashtbl.find_opt t.lsdb rid) with
            | Some iface, Some lsa ->
                List.iter
                  (fun p ->
                    let candidate =
                      {
                        Rib.next_hop = iface.Io.remote;
                        metric = d;
                        proto = Rib.Ospf;
                      }
                    in
                    match Hashtbl.find_opt routes p with
                    | Some (existing : Rib.route) when existing.metric <= d ->
                        ()
                    | Some _ | None -> Hashtbl.replace routes p candidate)
                  lsa.prefixes
            | _ -> ()))
    dist;
  let route_list =
    List.sort
      (fun (p1, _) (p2, _) -> Prefix.compare p1 p2)
      (Hashtbl.fold (fun p r acc -> (p, r) :: acc) routes [])
  in
  t.routes_installed <- List.length route_list;
  Rib.replace_all t.rib ~proto:Rib.Ospf route_list;
  List.iter (fun f -> f ()) t.spf_hooks

(* --- LSA origination and flooding ------------------------------------ *)

and originate_lsa t =
  t.own_seq <- t.own_seq + 1;
  let links =
    List.filter_map
      (fun n ->
        match (n.full, n.rid) with
        | true, Some rid -> Some (rid, n.iface.Io.cost)
        | _ -> None)
      t.nbrs
  in
  let lsa =
    {
      origin = t.config.router_id;
      seq = t.own_seq;
      links;
      prefixes = t.config.local_prefixes;
    }
  in
  Hashtbl.replace t.lsdb t.config.router_id lsa;
  flood t ~except:None [ lsa ];
  schedule_spf t

and send_lsas t n lsas =
  (* Register for retransmission until the neighbour acknowledges. *)
  List.iter (fun lsa -> Hashtbl.replace n.retx lsa.origin lsa) lsas;
  send t n.iface (Flood lsas)

and flood t ~except lsas =
  if lsas <> [] then
    List.iter
      (fun n ->
        let skip =
          match except with
          | Some ifindex -> n.iface.Io.ifindex = ifindex
          | None -> false
        in
        if n.full && not skip then send_lsas t n lsas)
      t.nbrs

(* --- Hello protocol --------------------------------------------------- *)

let neighbor_down t n =
  if n.full || n.rid <> None then begin
    n.full <- false;
    n.rid <- None;
    Hashtbl.reset n.retx;
    (match n.dead_timer with Some h -> Engine.cancel h | None -> ());
    n.dead_timer <- None;
    originate_lsa t
  end

let reset_dead_timer t n =
  (match n.dead_timer with Some h -> Engine.cancel h | None -> ());
  n.dead_timer <-
    Some (Engine.after t.engine t.config.dead_interval (fun () ->
              n.dead_timer <- None;
              neighbor_down t n))

let hello_for t n =
  Hello { h_rid = t.config.router_id; h_seen = Option.to_list n.rid }

let adjacency_up t n rid =
  n.rid <- Some rid;
  if not n.full then begin
    n.full <- true;
    (* Simplified database exchange: push our whole LSDB to the new
       neighbour so both sides converge on the same view. *)
    let all = Hashtbl.fold (fun _ l acc -> l :: acc) t.lsdb [] in
    if all <> [] then send_lsas t n all;
    originate_lsa t
  end

let handle_hello t ~ifindex h =
  match List.find_opt (fun n -> n.iface.Io.ifindex = ifindex) t.nbrs with
  | None -> ()
  | Some n ->
      let two_way = List.mem t.config.router_id h.h_seen in
      reset_dead_timer t n;
      (* A hello that no longer lists us, from a neighbour we were fully
         adjacent with, means the neighbour restarted and lost its state:
         fall back from Full (RFC 2328 §10.5's 1-Way transition) so the
         database exchange re-runs when two-way comes back, and answer
         promptly to speed that up. *)
      if (not two_way) && n.full then begin
        n.full <- false;
        send t n.iface (hello_for t n)
      end
      else if n.rid <> Some h.h_rid then begin
        (* New or changed neighbour: answer promptly so the two-way check
           completes within one hello interval. *)
        n.rid <- Some h.h_rid;
        send t n.iface (hello_for t n)
      end;
      if two_way && not n.full then adjacency_up t n h.h_rid

let newer a b = a.seq > b.seq

let handle_flood t ~ifindex lsas =
  (* Acknowledge everything received, duplicates included (OSPF-style
     implicit/explicit acks), so the sender stops retransmitting. *)
  (match List.find_opt (fun n -> n.iface.Io.ifindex = ifindex) t.nbrs with
  | Some n -> send t n.iface (Ack (List.map (fun l -> (l.origin, l.seq)) lsas))
  | None -> ());
  let fresh =
    List.filter
      (fun lsa ->
        match Hashtbl.find_opt t.lsdb lsa.origin with
        | Some have when not (newer lsa have) ->
            (* A fully adjacent neighbour flooding a strictly older copy
               has an out-of-date database — it restarted and lost state
               faster than the dead interval could notice.  Refuting one
               LSA is not enough: resync it with a full push.  (Equal-seq
               duplicates take the [false] branch without a push.) *)
            if newer have lsa then begin
              match
                List.find_opt (fun n -> n.iface.Io.ifindex = ifindex) t.nbrs
              with
              | Some n when n.full ->
                  let all = Hashtbl.fold (fun _ l acc -> l :: acc) t.lsdb [] in
                  send_lsas t n all
              | Some _ | None -> ()
            end;
            false
        | Some _ | None ->
            (* Never accept someone else's claim about our own LSA with a
               higher sequence: re-originate above it instead. *)
            if lsa.origin = t.config.router_id then begin
              if lsa.seq >= t.own_seq then begin
                t.own_seq <- lsa.seq;
                originate_lsa t
              end;
              false
            end
            else begin
              Hashtbl.replace t.lsdb lsa.origin lsa;
              true
            end)
      lsas
  in
  if fresh <> [] then begin
    flood t ~except:(Some ifindex) fresh;
    schedule_spf t
  end

let handle_ack t ~ifindex acks =
  match List.find_opt (fun n -> n.iface.Io.ifindex = ifindex) t.nbrs with
  | None -> ()
  | Some n ->
      List.iter
        (fun (origin, seq) ->
          match Hashtbl.find_opt n.retx origin with
          | Some pending when pending.seq <= seq -> Hashtbl.remove n.retx origin
          | Some _ | None -> ())
        acks

let receive t ~ifindex msg =
  if not t.stopped then
    match msg with
    | Msg (Hello h) -> handle_hello t ~ifindex h
    | Msg (Flood lsas) -> handle_flood t ~ifindex lsas
    | Msg (Ack acks) -> handle_ack t ~ifindex acks
    | _ -> ()

let start t =
  (* De-phase interfaces so hellos are not synchronised across the net. *)
  List.iter
    (fun n ->
      let jitter =
        Time.of_sec_f
          (Vini_std.Rng.float t.rng
             (Time.to_sec_f t.config.hello_interval /. 2.0))
      in
      ignore
        (Engine.after t.engine jitter (fun () ->
             if not t.stopped then begin
               send t n.iface (hello_for t n);
               Engine.every t.engine ~jitter:(Time.ms 100)
                 t.config.hello_interval (fun () ->
                   send t n.iface (hello_for t n);
                   not t.stopped)
             end)))
    t.nbrs;
  (* Periodic LSA refresh. *)
  Engine.every t.engine t.config.lsa_refresh (fun () ->
      if not t.stopped then originate_lsa t;
      not t.stopped);
  (* Reliable flooding: retransmit unacknowledged LSAs. *)
  Engine.every t.engine ~jitter:(Time.ms 200) t.config.rxmt_interval
    (fun () ->
      List.iter
        (fun n ->
          if n.full && Hashtbl.length n.retx > 0 then
            send t n.iface
              (Flood (Hashtbl.fold (fun _ l acc -> l :: acc) n.retx [])))
        t.nbrs;
      not t.stopped);
  (* Advertise our stub prefixes even before any adjacency forms. *)
  originate_lsa t

(* A stopped instance goes permanently silent: timers unwind, messages are
   neither sent nor accepted, and the RIB is no longer touched.  Used when
   the hosting process crashes; recovery builds a fresh instance. *)
let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    List.iter
      (fun n ->
        (match n.dead_timer with Some h -> Engine.cancel h | None -> ());
        n.dead_timer <- None;
        Hashtbl.reset n.retx)
      t.nbrs
  end

let stopped t = t.stopped

let reoriginate t = originate_lsa t

let full_neighbors t =
  List.filter_map
    (fun n ->
      match (n.full, n.rid) with
      | true, Some rid -> Some (n.iface.Io.ifindex, rid)
      | _ -> None)
    t.nbrs

let lsdb t =
  List.sort
    (fun a b -> compare a.origin b.origin)
    (Hashtbl.fold (fun _ l acc -> l :: acc) t.lsdb [])

let spf_runs t = t.spf_runs
let messages_sent t = t.messages_sent
let routes_installed t = t.routes_installed
let on_spf t f = t.spf_hooks <- t.spf_hooks @ [ f ]
