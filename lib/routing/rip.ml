module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Packet = Vini_net.Packet
module Prefix = Vini_net.Prefix

type config = {
  update_interval : Time.t;
  timeout : Time.t;
  gc : Time.t;
  triggered_holddown : Time.t;
  local_prefixes : Prefix.t list;
}

let default_config ~local_prefixes =
  {
    update_interval = Time.sec 30;
    timeout = Time.sec 180;
    gc = Time.sec 120;
    triggered_holddown = Time.sec 1;
    local_prefixes;
  }

let scaled_config ~scale ~local_prefixes =
  let s t = Time.of_sec_f (Time.to_sec_f t *. scale) in
  let c = default_config ~local_prefixes in
  {
    update_interval = s c.update_interval;
    timeout = s c.timeout;
    gc = s c.gc;
    triggered_holddown = s c.triggered_holddown;
    local_prefixes;
  }

let infinity_metric = 16

type entry = { prefix : Prefix.t; metric : int }
type msg = Response of entry list
type Packet.control += Msg of msg

let msg_size (Response entries) = 24 + (20 * List.length entries)

module Pmap = Map.Make (Prefix)

type route = {
  metric : int;                      (* infinity_metric = unreachable *)
  via : Vini_net.Addr.t option;      (* None for local prefixes *)
  learned_if : int option;
  mutable expiry : Engine.handle option;
  mutable gc_timer : Engine.handle option;
}

type t = {
  engine : Engine.t;
  rng : Vini_std.Rng.t;
  config : config;
  ifaces : Io.iface list;
  rib : Rib.t;
  mutable routes : route Pmap.t;
  mutable triggered_pending : bool;
  mutable messages_sent : int;
  mutable stopped : bool;
}

let create ~engine ~rng ~config ~ifaces ~rib =
  let t =
    {
      engine;
      rng;
      config;
      ifaces;
      rib;
      routes = Pmap.empty;
      triggered_pending = false;
      messages_sent = 0;
      stopped = false;
    }
  in
  List.iter
    (fun p ->
      t.routes <-
        Pmap.add p
          { metric = 1; via = None; learned_if = None; expiry = None; gc_timer = None }
          t.routes)
    config.local_prefixes;
  t

let cancel_timers r =
  (match r.expiry with Some h -> Engine.cancel h | None -> ());
  (match r.gc_timer with Some h -> Engine.cancel h | None -> ());
  r.expiry <- None;
  r.gc_timer <- None

let sync_rib t prefix =
  match Pmap.find_opt prefix t.routes with
  | Some r when r.metric < infinity_metric -> (
      match r.via with
      | Some nh ->
          Rib.update t.rib ~proto:Rib.Rip prefix
            (Some { Rib.next_hop = nh; metric = r.metric; proto = Rib.Rip })
      | None -> ())
  | Some _ | None -> Rib.update t.rib ~proto:Rib.Rip prefix None

let send_update t (iface : Io.iface) =
  (* Split horizon with poisoned reverse. *)
  let entries =
    Pmap.fold
      (fun prefix r acc ->
        let metric =
          if r.learned_if = Some iface.Io.ifindex then infinity_metric
          else r.metric
        in
        { prefix; metric } :: acc)
      t.routes []
  in
  if entries <> [] && not t.stopped then begin
    t.messages_sent <- t.messages_sent + 1;
    let m = Response (List.rev entries) in
    iface.Io.send (Msg m) ~size:(msg_size m)
  end

let send_all t = List.iter (send_update t) t.ifaces

let rec schedule_triggered t =
  if not t.triggered_pending then begin
    t.triggered_pending <- true;
    ignore
      (Engine.after t.engine t.config.triggered_holddown (fun () ->
           t.triggered_pending <- false;
           if not t.stopped then send_all t))
  end

and expire t prefix =
  match Pmap.find_opt prefix t.routes with
  | None -> ()
  | Some r ->
      cancel_timers r;
      let dead = { r with metric = infinity_metric } in
      t.routes <- Pmap.add prefix dead t.routes;
      dead.gc_timer <-
        Some
          (Engine.after t.engine t.config.gc (fun () ->
               t.routes <- Pmap.remove prefix t.routes));
      sync_rib t prefix;
      schedule_triggered t

and refresh_timers t prefix r =
  cancel_timers r;
  r.expiry <- Some (Engine.after t.engine t.config.timeout (fun () -> expire t prefix))

let accept t ~(iface : Io.iface) (e : entry) =
  let advertised = min infinity_metric (e.metric + 1) in
  let current = Pmap.find_opt e.prefix t.routes in
  match current with
  | Some r when r.via = None -> () (* our own prefix *)
  | Some r when r.learned_if = Some iface.Io.ifindex ->
      (* Update from the current next hop: always believe it. *)
      if advertised >= infinity_metric then begin
        if r.metric < infinity_metric then expire t e.prefix
        else refresh_timers t e.prefix r
      end
      else begin
        let changed = advertised <> r.metric in
        let nr =
          { r with metric = advertised; via = Some iface.Io.remote }
        in
        t.routes <- Pmap.add e.prefix nr t.routes;
        refresh_timers t e.prefix nr;
        sync_rib t e.prefix;
        if changed then schedule_triggered t
      end
  | Some r when advertised < r.metric ->
      let nr =
        {
          metric = advertised;
          via = Some iface.Io.remote;
          learned_if = Some iface.Io.ifindex;
          expiry = None;
          gc_timer = None;
        }
      in
      cancel_timers r;
      t.routes <- Pmap.add e.prefix nr t.routes;
      refresh_timers t e.prefix nr;
      sync_rib t e.prefix;
      schedule_triggered t
  | Some _ -> ()
  | None ->
      if advertised < infinity_metric then begin
        let nr =
          {
            metric = advertised;
            via = Some iface.Io.remote;
            learned_if = Some iface.Io.ifindex;
            expiry = None;
            gc_timer = None;
          }
        in
        t.routes <- Pmap.add e.prefix nr t.routes;
        refresh_timers t e.prefix nr;
        sync_rib t e.prefix;
        schedule_triggered t
      end

let receive t ~ifindex msg =
  if t.stopped then ()
  else
  match msg with
  | Msg (Response entries) -> (
      match List.find_opt (fun i -> i.Io.ifindex = ifindex) t.ifaces with
      | Some iface -> List.iter (accept t ~iface) entries
      | None -> ())
  | _ -> ()

let start t =
  List.iter (fun p -> sync_rib t p) t.config.local_prefixes;
  let jitter =
    Time.of_sec_f (Time.to_sec_f t.config.update_interval /. 6.0)
  in
  ignore
    (Engine.after t.engine
       (Time.of_sec_f
          (Vini_std.Rng.float t.rng
             (Time.to_sec_f t.config.update_interval /. 10.0)))
       (fun () ->
         if not t.stopped then begin
           send_all t;
           Engine.every t.engine ~jitter t.config.update_interval (fun () ->
               send_all t;
               not t.stopped)
         end))

(* Permanently silence this instance: cancel route timers, stop updates,
   ignore arrivals, leave the RIB alone.  A restarted router gets a fresh
   instance. *)
let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Pmap.iter (fun _ r -> cancel_timers r) t.routes
  end

let stopped t = t.stopped

let table t =
  Pmap.fold
    (fun p r acc -> if r.metric < infinity_metric then (p, r.metric) :: acc else acc)
    t.routes []
  |> List.rev

let messages_sent t = t.messages_sent
