(** A RIPv2-style distance-vector protocol.

    One of the protocols the XORP suite offers an IIAS experimenter
    (§4.2.2); included so a VINI experiment can swap its control plane —
    the "tweak the routing algorithms" flexibility the paper's design
    question asks for.  Implements periodic full updates with split
    horizon and poisoned reverse, triggered updates, route timeout and
    garbage collection, and the 16-hop infinity. *)

type config = {
  update_interval : Vini_sim.Time.t;   (** classic 30 s *)
  timeout : Vini_sim.Time.t;           (** route expiry, classic 180 s *)
  gc : Vini_sim.Time.t;                (** hold as unreachable before deletion *)
  triggered_holddown : Vini_sim.Time.t;
  local_prefixes : Vini_net.Prefix.t list;
}

val default_config : local_prefixes:Vini_net.Prefix.t list -> config

val scaled_config :
  scale:float -> local_prefixes:Vini_net.Prefix.t list -> config
(** Classic timers multiplied by [scale] (tests run at 1/10th speed). *)

val infinity_metric : int
(** 16 *)

type entry = { prefix : Vini_net.Prefix.t; metric : int }
type msg = Response of entry list
type Vini_net.Packet.control += Msg of msg

val msg_size : msg -> int

type t

val create :
  engine:Vini_sim.Engine.t ->
  rng:Vini_std.Rng.t ->
  config:config ->
  ifaces:Io.iface list ->
  rib:Rib.t ->
  t

val start : t -> unit
val receive : t -> ifindex:int -> Vini_net.Packet.control -> unit

val stop : t -> unit
(** Permanently silence the instance (process crash); restart uses a fresh
    instance. *)

val stopped : t -> bool

val table : t -> (Vini_net.Prefix.t * int) list
(** (prefix, metric), reachable routes only. *)

val messages_sent : t -> int
