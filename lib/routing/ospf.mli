(** A link-state interior gateway protocol in the OSPFv2 mould.

    Implements the machinery the paper's §5.2 experiment exercises:
    periodic hellos per point-to-point interface, a dead interval that
    tears an adjacency down when hellos stop arriving (how the Click-level
    "link failure" becomes visible to routing), router-LSA origination
    with sequence numbers, reliable-ish flooding with stale-copy
    refutation, hold-down-scheduled SPF (Dijkstra over the LSDB with a
    bidirectional-link check), and route installation into the {!Rib}.

    The §5.2 configuration is hello 5 s / dead 10 s (footnote 3), which is
    what {!default_config} provides. *)

type hello = { h_rid : int; h_seen : int list }

type lsa = {
  origin : int;
  seq : int;
  links : (int * int) list;            (** (neighbour router id, cost) *)
  prefixes : Vini_net.Prefix.t list;   (** stub prefixes this router owns *)
}

type msg =
  | Hello of hello
  | Flood of lsa list
  | Ack of (int * int) list
      (** acknowledgements as (origin, seq) — flooding is reliable *)

type Vini_net.Packet.control += Msg of msg

val msg_size : msg -> int

type config = {
  router_id : int;
  hello_interval : Vini_sim.Time.t;
  dead_interval : Vini_sim.Time.t;
  spf_delay : Vini_sim.Time.t;   (** hold-down between LSDB change and SPF *)
  lsa_refresh : Vini_sim.Time.t;
  rxmt_interval : Vini_sim.Time.t;
  (** how often unacknowledged LSAs are retransmitted to a neighbour *)
  local_prefixes : Vini_net.Prefix.t list;
}

val default_config : router_id:int -> local_prefixes:Vini_net.Prefix.t list -> config

type t

val create :
  engine:Vini_sim.Engine.t ->
  rng:Vini_std.Rng.t ->
  config:config ->
  ifaces:Io.iface list ->
  rib:Rib.t ->
  t

val start : t -> unit
(** Begin sending hellos (each interface de-phased by random jitter). *)

val stop : t -> unit
(** Permanently silence the instance: timers unwind, arrivals are ignored,
    the RIB is no longer written.  Called when the hosting process
    crashes; a supervised restart creates a fresh instance which re-forms
    adjacencies and resyncs the LSDB. *)

val stopped : t -> bool

val receive : t -> ifindex:int -> Vini_net.Packet.control -> unit
(** Feed an OSPF control message that arrived on an interface; non-OSPF
    messages are ignored. *)

val router_id : t -> int
val full_neighbors : t -> (int * int) list
(** (ifindex, neighbour router id) of adjacencies in Full state. *)

val lsdb : t -> lsa list
val spf_runs : t -> int
val messages_sent : t -> int
val routes_installed : t -> int
(** Size of the last SPF's route set. *)

val reoriginate : t -> unit
(** Re-advertise this router's LSA immediately (after an interface-cost
    reconfiguration). *)

val on_spf : t -> (unit -> unit) -> unit
(** Hook invoked after each SPF completes (used by experiments to log
    convergence instants). *)
