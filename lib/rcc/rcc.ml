module Graph = Vini_topo.Graph

let audit (cfgs : Config.router_cfg list) =
  let faults = ref [] in
  let fault fmt = Printf.ksprintf (fun s -> faults := s :: !faults) fmt in
  let by_name = Hashtbl.create 16 in
  List.iter
    (fun (c : Config.router_cfg) ->
      if Hashtbl.mem by_name c.Config.hostname then
        fault "duplicate hostname %s" c.Config.hostname
      else Hashtbl.replace by_name c.Config.hostname c)
    cfgs;
  let iface_towards (c : Config.router_cfg) peer =
    List.find_opt (fun (i : Config.iface_cfg) -> i.Config.peer = peer) c.Config.ifaces
  in
  List.iter
    (fun (c : Config.router_cfg) ->
      if not c.Config.ospf then fault "%s does not run ospf" c.Config.hostname;
      List.iter
        (fun (i : Config.iface_cfg) ->
          match Hashtbl.find_opt by_name i.Config.peer with
          | None ->
              fault "%s interface %s points at unknown router %s"
                c.Config.hostname i.Config.ifname i.Config.peer
          | Some peer_cfg -> (
              match iface_towards peer_cfg c.Config.hostname with
              | None ->
                  fault "link %s->%s has no reverse interface"
                    c.Config.hostname i.Config.peer
              | Some back ->
                  if back.Config.ospf_cost <> i.Config.ospf_cost then
                    fault "asymmetric ospf cost on %s--%s (%d vs %d)"
                      c.Config.hostname i.Config.peer i.Config.ospf_cost
                      back.Config.ospf_cost;
                  if back.Config.delay_us <> i.Config.delay_us then
                    fault "asymmetric delay on %s--%s" c.Config.hostname
                      i.Config.peer))
        c.Config.ifaces)
    cfgs;
  (* Timer agreement across the OSPF domain. *)
  (match cfgs with
  | first :: rest ->
      List.iter
        (fun (c : Config.router_cfg) ->
          if
            c.Config.hello_interval_s <> first.Config.hello_interval_s
            || c.Config.dead_interval_s <> first.Config.dead_interval_s
          then
            fault "%s disagrees with %s on ospf timers" c.Config.hostname
              first.Config.hostname)
        rest
  | [] -> ());
  List.rev !faults

let build_topology (cfgs : Config.router_cfg list) =
  let names = Array.of_list (List.map (fun c -> c.Config.hostname) cfgs) in
  let id_of = Hashtbl.create 16 in
  Array.iteri (fun i n -> Hashtbl.replace id_of n i) names;
  let seen = Hashtbl.create 16 in
  let links = ref [] in
  let error = ref None in
  List.iteri
    (fun a (c : Config.router_cfg) ->
      List.iter
        (fun (i : Config.iface_cfg) ->
          match Hashtbl.find_opt id_of i.Config.peer with
          | None ->
              if !error = None then
                error :=
                  Some
                    (Printf.sprintf "unknown peer %s in %s" i.Config.peer
                       c.Config.hostname)
          | Some b ->
              let key = (min a b, max a b) in
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.replace seen key ();
                links :=
                  {
                    Graph.a = min a b;
                    b = max a b;
                    bandwidth_bps = float_of_int i.Config.bandwidth_kbps *. 1e3;
                    delay =
                      Vini_sim.Time.us i.Config.delay_us;
                    loss = 0.0;
                    weight = i.Config.ospf_cost;
                  }
                  :: !links
              end)
        c.Config.ifaces)
    cfgs;
  match !error with
  | Some e -> Error e
  | None -> (
      try Ok (Graph.create ~names ~links:(List.rev !links))
      with Invalid_argument e -> Error e)

let sanitise name =
  String.map (fun c -> if c = ' ' then '-' else c) name

let emit_configs g =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun v ->
      add "hostname %s\n" (sanitise (Graph.name g v));
      add "router ospf 1\n  hello-interval 5\n  dead-interval 10\n";
      List.iteri
        (fun ifindex (nbr, (l : Graph.link)) ->
          add "interface ge-%d/0/0\n" ifindex;
          add "  description to %s\n" (sanitise (Graph.name g nbr));
          add "  bandwidth %d\n" (int_of_float (l.Graph.bandwidth_bps /. 1e3));
          add "  delay %d\n" ((l.Graph.delay : Vini_sim.Time.t) / 1000);
          add "  ip ospf cost %d\n!\n" l.Graph.weight)
        (Graph.neighbors g v);
      add "\n")
    (Graph.nodes g);
  Buffer.contents buf

let abilene_text () = Abilene_config.text

let abilene () =
  match Config.parse_many (abilene_text ()) with
  | Error e -> failwith ("rcc: embedded Abilene configs failed to parse: " ^ e)
  | Ok cfgs -> (
      match audit cfgs with
      | [] -> (
          match build_topology cfgs with
          | Ok g -> g
          | Error e -> failwith ("rcc: embedded Abilene configs invalid: " ^ e))
      | faults ->
          failwith
            ("rcc: embedded Abilene configs have faults: "
            ^ String.concat "; " faults))

let xorp_config g v =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "/* XORP configuration for %s (generated) */\n" (Graph.name g v);
  add "protocols {\n  ospf4 {\n    router-id: %d.%d.%d.%d\n" 10 0 0 (v + 1);
  List.iteri
    (fun ifindex (nbr, (l : Graph.link)) ->
      add "    interface eth%d {\n" ifindex;
      add "      /* to %s */\n" (Graph.name g nbr);
      add "      hello-interval: 5\n      router-dead-interval: 10\n";
      add "      interface-cost: %d\n    }\n" l.Graph.weight)
    (Graph.neighbors g v);
  add "  }\n}\nfea {\n  click { enabled: true }\n}\n";
  Buffer.contents buf

let click_config g v =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "// Click configuration for %s (generated)\n" (Graph.name g v);
  add "tap :: KernelTap(10.0.0.%d/32);\n" (v + 1);
  add "fib :: LinearIPLookup;\n";
  List.iteri
    (fun ifindex (nbr, _) ->
      add "tun%d :: Socket(UDP, %s, 33000); // to %s\n" ifindex
        (Printf.sprintf "198.32.154.%d" (10 + nbr))
        (Graph.name g nbr))
    (Graph.neighbors g v);
  add "tap -> fib;\n";
  List.iteri
    (fun ifindex (nbr, _) ->
      add "fib[%d] -> drop%d :: DropLink -> tun%d; // next hop %s\n" ifindex
        ifindex ifindex (Graph.name g nbr);
      add "tun%d -> fib;\n" ifindex)
    (Graph.neighbors g v);
  Buffer.contents buf
