(** An embedding request: what a slice asks of the substrate.

    A request quantifies the virtual topology's demands — a CPU share per
    virtual node (in reference cores, i.e. fractions of a
    {!Vini_phys.Calibration.reference_ghz} machine) and a bandwidth per
    virtual link — plus the placement constraints: [pins] fix chosen
    virtual nodes onto named physical nodes ({!Vini_core.Spec_lang}
    [embed] lines become pins), everything else is placed by the solver.

    Requests are deliberately independent of any one virtual topology
    instance: the demands are functions evaluated against the [vtopo]
    handed to {!Embed.solve}, so the same request template can price
    different slices. *)

type algo =
  | Greedy  (** capacity-aware best-fit, vlinks on capacity-feasible
                shortest paths (IGP weights) *)
  | Online  (** deterministic online placement in the style of Even et
                al.: exponential congestion costs, seeded stable
                tie-breaks *)

val algo_to_string : algo -> string
val algo_of_string : string -> algo option

type t = {
  req_name : string;
  cpu_demand : int -> float;
      (** per-vnode CPU demand in reference cores (>= 0) *)
  bw_demand : Vini_topo.Graph.link -> float;
      (** per-vlink bandwidth demand in bits/s (>= 0; 0 = no
          reservation, the link is still mapped onto a physical path) *)
  pins : (int * int) list;  (** (vnode, pnode) placement constraints *)
  algo : algo;
  seed : int;  (** tie-break seed for the online solver *)
}

val make :
  ?name:string ->
  ?cpu:(int -> float) ->
  ?bw:(Vini_topo.Graph.link -> float) ->
  ?pins:(int * int) list ->
  ?algo:algo ->
  ?seed:int ->
  unit ->
  t
(** Defaults: name ["slice"], CPU demand
    {!Vini_phys.Calibration.default_reservation} (the 25% PL-VINI
    reservation) per vnode, zero bandwidth demand, no pins, [Greedy],
    seed 0. *)
