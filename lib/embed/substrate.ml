module Graph = Vini_topo.Graph
module Underlay = Vini_phys.Underlay
module Pnode = Vini_phys.Pnode
module Cpu = Vini_phys.Cpu
module Plink = Vini_phys.Plink
module Calibration = Vini_phys.Calibration

type lstate = { l_cap : float; mutable l_used : float }

type t = {
  sgraph : Graph.t;
  caps : float array;
  used : float array;
  links : (int * int, lstate) Hashtbl.t;
  up_node : int -> bool;
  up_link : int -> int -> bool;
  mutable n_admitted : int;
  mutable n_rejected : int;
}

let key a b = (min a b, max a b)

let build graph ~node_capacity ~link_capacity ~up_node ~up_link =
  let n = Graph.node_count graph in
  let links = Hashtbl.create (Graph.link_count graph) in
  List.iter
    (fun (l : Graph.link) ->
      Hashtbl.replace links (key l.Graph.a l.Graph.b)
        { l_cap = link_capacity l; l_used = 0.0 })
    (Graph.links graph);
  {
    sgraph = graph;
    caps = Array.init n node_capacity;
    used = Array.make n 0.0;
    links;
    up_node;
    up_link;
    n_admitted = 0;
    n_rejected = 0;
  }

let of_graph ?(node_capacity = fun _ -> 1.0) graph =
  build graph ~node_capacity
    ~link_capacity:(fun l -> l.Graph.bandwidth_bps)
    ~up_node:(fun _ -> true)
    ~up_link:(fun _ _ -> true)

let of_underlay u =
  let graph = Underlay.graph u in
  build graph
    ~node_capacity:(fun i ->
      Cpu.speed_ghz (Pnode.cpu (Underlay.node u i)) /. Calibration.reference_ghz)
    ~link_capacity:(fun l ->
      Plink.bandwidth_bps (Underlay.plink u l.Graph.a l.Graph.b))
    ~up_node:(fun i -> Underlay.node_is_up u i)
    ~up_link:(fun a b -> Underlay.link_is_up u a b)

let graph t = t.sgraph
let node_capacity t i = t.caps.(i)
let node_used t i = t.used.(i)
let node_residual t i = t.caps.(i) -. t.used.(i)

let lstate t a b =
  match Hashtbl.find_opt t.links (key a b) with
  | Some l -> l
  | None -> raise Not_found

let link_capacity t a b = (lstate t a b).l_cap
let link_used t a b = (lstate t a b).l_used
let link_residual t a b =
  let l = lstate t a b in
  l.l_cap -. l.l_used

let node_up t i = t.up_node i
let link_up t a b = t.up_link a b

let reserve_node t i amount = t.used.(i) <- t.used.(i) +. amount
let release_node t i amount = t.used.(i) <- Float.max 0.0 (t.used.(i) -. amount)

let iter_path_links path f =
  let rec go = function
    | a :: (b :: _ as rest) ->
        f a b;
        go rest
    | [ _ ] | [] -> ()
  in
  go path

let reserve_path t path bw =
  if bw > 0.0 then
    iter_path_links path (fun a b ->
        let l = lstate t a b in
        l.l_used <- l.l_used +. bw)

let release_path t path bw =
  if bw > 0.0 then
    iter_path_links path (fun a b ->
        let l = lstate t a b in
        l.l_used <- Float.max 0.0 (l.l_used -. bw))

let note_admitted t = t.n_admitted <- t.n_admitted + 1
let note_rejected t = t.n_rejected <- t.n_rejected + 1
let admitted t = t.n_admitted
let rejected t = t.n_rejected

let acceptance_rate t =
  let total = t.n_admitted + t.n_rejected in
  if total = 0 then 1.0 else float_of_int t.n_admitted /. float_of_int total

let max_node_stress t =
  let m = ref 0.0 in
  Array.iteri
    (fun i cap -> if cap > 0.0 then m := Float.max !m (t.used.(i) /. cap))
    t.caps;
  !m

let residual_histogram ?(buckets = 10) t =
  let counts = Array.make buckets 0 in
  Array.iteri
    (fun i cap ->
      let frac = if cap <= 0.0 then 0.0 else (cap -. t.used.(i)) /. cap in
      let b =
        min (buckets - 1) (max 0 (int_of_float (frac *. float_of_int buckets)))
      in
      counts.(b) <- counts.(b) + 1)
    t.caps;
  Array.init buckets (fun b ->
      let w = 1.0 /. float_of_int buckets in
      (float_of_int b *. w, float_of_int (b + 1) *. w, counts.(b)))
