(** Capacity-aware slice embedding: solvers, admission control,
    re-embedding.

    Given a {!Substrate} (residual capacities + liveness) and a
    {!Request} (demands + pins), [solve] maps every virtual node onto a
    distinct live physical node and every virtual link onto a
    capacity-feasible physical path, or explains why it cannot with a
    structured {!rejection}.  Two solvers are provided:

    - {!Request.Greedy} — best-fit: virtual nodes in descending CPU
      demand land on the physical node with the largest residual CPU;
      virtual links take capacity-feasible IGP-shortest paths.
    - {!Request.Online} — deterministic online placement in the style of
      Even et al.: candidates are priced by exponential congestion costs
      ([alpha]{^ utilisation}), virtual nodes arrive in id order, and
      exact-cost ties are broken by a seeded, stable rule — byte-identical
      runs for equal seeds.

    [solve] is pure: it prices against a snapshot of the substrate and
    reserves nothing.  Admission control composes it with {!commit} /
    {!withdraw} (see {!admit}), so multiple slices share one substrate
    and infeasible requests bounce with a reason instead of
    oversubscribing anything. *)

type mapping = {
  nodes : int array;  (** virtual node id -> physical node id, injective *)
  vpaths : ((int * int) * int list) list;
      (** per virtual link (endpoints normalised [va < vb], sorted) the
          physical node path joining the endpoints' hosts; a single-node
          path means both endpoints share a host *)
}

type rejection =
  | Too_large of { vnodes : int; pnodes : int }
      (** more virtual nodes than live physical nodes *)
  | Pin_invalid of { vnode : int; pnode : int; reason : string }
      (** a pin names a bad target: out of range, down, doubly used, or
          short on CPU *)
  | Node_exhausted of { vnode : int; demand : float; best_residual : float }
      (** no live, unused physical node has [demand] reference cores
          free; [best_residual] is the best on offer *)
  | Link_exhausted of { va : int; vb : int; demand : float }
      (** virtual link [va]-[vb]: live physical paths exist but none has
          [demand] bits/s residual on every hop *)
  | Unreachable of { va : int; vb : int }
      (** virtual link [va]-[vb]: the hosts are in different live
          partitions of the substrate *)

val rejection_kind : rejection -> string
(** Stable machine-readable tag: ["too_large"], ["pin_invalid"],
    ["node_exhausted"], ["link_exhausted"], ["unreachable"]. *)

val rejection_to_string : rejection -> string

val solve :
  Substrate.t -> vtopo:Vini_topo.Graph.t -> Request.t ->
  (mapping, rejection) result
(** Pure: reads residuals, reserves nothing.  Deterministic for equal
    substrate state, topology, and request (including seed). *)

val commit :
  ?except:int list ->
  Substrate.t -> vtopo:Vini_topo.Graph.t -> Request.t -> mapping -> unit
(** Reserve the mapping's CPU and bandwidth on the substrate.  [except]
    lists virtual nodes whose share (CPU and incident-path bandwidth) is
    left out — used to re-commit only the survivors of a rejected
    re-embed, parking the dead vnode's share off the books. *)

val withdraw :
  ?except:int list ->
  Substrate.t -> vtopo:Vini_topo.Graph.t -> Request.t -> mapping -> unit
(** Release what {!commit} reserved, with the same [except] semantics. *)

val commit_delta :
  ?except:int list ->
  Substrate.t -> vtopo:Vini_topo.Graph.t -> Request.t -> mapping ->
  vnode:int -> unit
(** Reserve exactly one virtual node's share of a mapping: its CPU plus
    the bandwidth of its incident virtual links' paths.  With [except],
    a path whose {e other} endpoint is listed is skipped — when several
    vnodes' shares are simultaneously off the books, the path between two
    of them belongs to exactly one delta.  Paired with {!withdraw_delta}
    this is the double-provisioning primitive of a make-before-break
    migration: [commit_delta] on the {e new} mapping while the old share
    is still held, then after the flip [withdraw_delta] on the old one
    (or, on rollback, [withdraw_delta] on the new one). *)

val withdraw_delta :
  ?except:int list ->
  Substrate.t -> vtopo:Vini_topo.Graph.t -> Request.t -> mapping ->
  vnode:int -> unit
(** Release one virtual node's share; inverse of {!commit_delta}. *)

val admit :
  Substrate.t -> vtopo:Vini_topo.Graph.t -> Request.t ->
  (mapping, rejection) result
(** [solve] + [commit] + admission counters: [Ok] mappings are reserved
    and counted admitted; rejections are counted rejected. *)

val reembed :
  Substrate.t -> vtopo:Vini_topo.Graph.t -> Request.t -> mapping ->
  vnode:int -> (mapping, rejection) result
(** Re-place one displaced virtual node: solves with every other virtual
    node pinned to its current host, so survivors never move.  Pure like
    [solve] — the caller withdraws the old mapping first and commits the
    result (or re-commits the old mapping on rejection). *)

val plan_move :
  Substrate.t -> vtopo:Vini_topo.Graph.t -> Request.t -> mapping ->
  vnode:int -> ?target:int -> unit -> (mapping, rejection) result
(** Plan a make-before-break move of [vnode]: every survivor keeps its
    host {e and} its exact committed paths; only [vnode]'s host and the
    paths of its incident virtual links change.  Candidate hosts are
    priced with {!Request.Online}'s exponential congestion model (node
    increment + congestion-priced constrained paths to each neighbour's
    host), against a snapshot that credits the mover's current share back
    — the plan describes the steady state after the old share is
    withdrawn.  [target] forces a specific host (validated like a pin);
    otherwise the cheapest candidate wins, exact-cost ties broken by the
    request seed.  The current host is itself a candidate, so a plan that
    returns the same host means "no profitable move".  Pure: reserves
    nothing; drive the actual move with {!commit_delta} /
    {!withdraw_delta}. *)

val check :
  Substrate.t -> vtopo:Vini_topo.Graph.t -> Request.t -> mapping ->
  (unit, string) result
(** Validate a mapping against the {e current} substrate: injectivity,
    ranges, liveness, path adjacency and endpoints, and that the
    aggregate demand fits the current residuals (i.e. the mapping could
    be committed now).  First violation wins. *)

val path_stretch : Substrate.t -> int list -> float
(** IGP weight of a physical path over the unconstrained shortest path
    between its ends; 1.0 for trivial paths. *)

val stretch : Substrate.t -> mapping -> float
(** Mean {!path_stretch} over the mapping's multi-hop paths; 1.0 when
    there are none. *)
