(** Residual-capacity model of the physical substrate.

    Tracks, per physical node, a CPU capacity in {e reference cores}
    (node speed divided by {!Vini_phys.Calibration.reference_ghz}) and,
    per physical link, a bandwidth capacity in bits/s, together with the
    amounts currently reserved by admitted slices.  The admission-control
    half of {!Embed}: solvers read residuals here, {!Embed.commit} /
    {!Embed.withdraw} move them as experiments deploy and tear down.

    A substrate can be a bare {!Vini_topo.Graph.t} ([of_graph]: every
    node up, capacity from an optional profile) or a live
    {!Vini_phys.Underlay.t} ([of_underlay]: capacities from the actual
    {!Vini_phys.Cpu} clocks and {!Vini_phys.Plink.bandwidth_bps}, and
    node/link liveness consulted at solve time — a crashed machine is
    never a placement candidate). *)

type t

val of_graph : ?node_capacity:(int -> float) -> Vini_topo.Graph.t -> t
(** Standalone substrate (CLI, benches, tests).  Default node capacity:
    1.0 reference core each; link capacities from the graph's
    [bandwidth_bps].  Every node and link reports up. *)

val of_underlay : Vini_phys.Underlay.t -> t
(** Live substrate: node capacity = node clock /
    {!Vini_phys.Calibration.reference_ghz}, link capacity =
    {!Vini_phys.Plink.bandwidth_bps}, liveness delegated to the underlay
    ({!Vini_phys.Underlay.node_is_up} / [link_is_up]). *)

val graph : t -> Vini_topo.Graph.t

(** {2 Capacity accounting}

    Reservations clamp at zero on release; releasing more than was
    reserved is a programming error but only loses accounting, never
    raises. *)

val node_capacity : t -> int -> float
val node_used : t -> int -> float
val node_residual : t -> int -> float
val link_capacity : t -> int -> int -> float
val link_used : t -> int -> int -> float
val link_residual : t -> int -> int -> float
(** Link accessors accept either endpoint order.
    @raise Not_found for non-adjacent pairs. *)

val node_up : t -> int -> bool
val link_up : t -> int -> int -> bool

val reserve_node : t -> int -> float -> unit
val release_node : t -> int -> float -> unit

val reserve_path : t -> int list -> float -> unit
(** Reserve [bw] on every link along a physical node path. *)

val release_path : t -> int list -> float -> unit

(** {2 Admission bookkeeping} *)

val note_admitted : t -> unit
val note_rejected : t -> unit
val admitted : t -> int
val rejected : t -> int

val acceptance_rate : t -> float
(** admitted / (admitted + rejected); 1.0 before any decision. *)

val max_node_stress : t -> float
(** Largest per-node utilisation fraction (used/capacity) across the
    substrate — the balance figure the background defragmenter watches
    and migration-quality records report. *)

val residual_histogram : ?buckets:int -> t -> (float * float * int) array
(** Histogram of per-node residual CPU {e fractions} (residual/capacity)
    over [buckets] equal-width bins of [0,1] (default 10): the
    residual-capacity distribution exported in [vini.embed/1]. *)
