module Graph = Vini_topo.Graph

type mapping = { nodes : int array; vpaths : ((int * int) * int list) list }

type rejection =
  | Too_large of { vnodes : int; pnodes : int }
  | Pin_invalid of { vnode : int; pnode : int; reason : string }
  | Node_exhausted of { vnode : int; demand : float; best_residual : float }
  | Link_exhausted of { va : int; vb : int; demand : float }
  | Unreachable of { va : int; vb : int }

let rejection_kind = function
  | Too_large _ -> "too_large"
  | Pin_invalid _ -> "pin_invalid"
  | Node_exhausted _ -> "node_exhausted"
  | Link_exhausted _ -> "link_exhausted"
  | Unreachable _ -> "unreachable"

let rejection_to_string = function
  | Too_large { vnodes; pnodes } ->
      Printf.sprintf
        "too-large: %d virtual nodes exceed %d live physical nodes" vnodes
        pnodes
  | Pin_invalid { vnode; pnode; reason } ->
      Printf.sprintf "pin-invalid: vnode %d on pnode %d: %s" vnode pnode reason
  | Node_exhausted { vnode; demand; best_residual } ->
      Printf.sprintf
        "node-exhausted: vnode %d demands %.3f cores; best residual %.3f"
        vnode demand best_residual
  | Link_exhausted { va; vb; demand } ->
      Printf.sprintf
        "link-exhausted: vlink %d-%d demands %.0f bps; no capacity-feasible \
         path"
        va vb demand
  | Unreachable { va; vb } ->
      Printf.sprintf "unreachable: no live physical path for vlink %d-%d" va vb

exception Reject of rejection

let eps = 1e-9
let alpha = 8.0
let key a b = (min a b, max a b)

(* Solver-local scratch: residuals snapshotted from the substrate so
   [solve] can price incrementally without touching shared state. *)
type st = {
  sub : Substrate.t;
  sg : Graph.t;
  nres : float array;
  lres : (int * int, float) Hashtbl.t;
}

let snapshot sub =
  let sg = Substrate.graph sub in
  let lres = Hashtbl.create (Graph.link_count sg) in
  List.iter
    (fun (l : Graph.link) ->
      Hashtbl.replace lres (key l.Graph.a l.Graph.b)
        (Substrate.link_residual sub l.Graph.a l.Graph.b))
    (Graph.links sg);
  {
    sub;
    sg;
    nres = Array.init (Graph.node_count sg) (Substrate.node_residual sub);
    lres;
  }

let local_link_residual st a b =
  match Hashtbl.find_opt st.lres (key a b) with Some r -> r | None -> 0.0

let reserve_local_path st path bw =
  if bw > 0.0 then
    let rec go = function
      | a :: (b :: _ as rest) ->
          let k = key a b in
          Hashtbl.replace st.lres k (local_link_residual st a b -. bw);
          go rest
      | [ _ ] | [] -> ()
    in
    go path

(* Capacity-constrained shortest path on the substrate with float
   weights: only live links with [need] bits/s residual and live
   intermediate nodes are traversable.  Heap-based Dijkstra keyed on
   (dist, id): extraction order — and therefore every [prev] assignment
   and tie-break — matches the old O(n^2) unvisited-minimum scan exactly,
   so embeddings stay byte-identical while large substrates (the 200-PoP
   generated backbones) drop from quadratic to O(m log n) per path. *)
let constrained_path st ~weight ~need src dst =
  if src = dst then Some ([ src ], 0.0)
  else begin
    let n = Graph.node_count st.sg in
    let dist = Array.make n infinity in
    let prev = Array.make n (-1) in
    let visited = Array.make n false in
    dist.(src) <- 0.0;
    let heap =
      Vini_std.Heap.create ~cmp:(fun (d1, n1) (d2, n2) ->
          let c = Float.compare d1 d2 in
          if c <> 0 then c else compare n1 n2)
    in
    Vini_std.Heap.push heap (0.0, src);
    let finished = ref false in
    while not !finished do
      match Vini_std.Heap.pop heap with
      | None -> finished := true
      | Some (_, u) when u = dst || visited.(u) ->
          if u = dst then finished := true
      | Some (d, u) when d > dist.(u) -> () (* stale heap entry *)
      | Some (_, u) ->
          visited.(u) <- true;
          List.iter
            (fun (v, l) ->
              if
                (not visited.(v))
                && Substrate.node_up st.sub v
                && Substrate.link_up st.sub u v
                && local_link_residual st u v +. eps >= need
              then begin
                let d = dist.(u) +. weight l in
                if d < dist.(v) then begin
                  dist.(v) <- d;
                  prev.(v) <- u;
                  Vini_std.Heap.push heap (d, v)
                end
              end)
            (Graph.neighbors st.sg u)
    done;
    if dist.(dst) = infinity then None
    else begin
      let rec build acc v =
        if v = src then src :: acc else build (v :: acc) prev.(v)
      in
      Some (build [] dst, dist.(dst))
    end
  end

let congestion_weight st ~bw (l : Graph.link) =
  let a = l.Graph.a and b = l.Graph.b in
  let cap = Substrate.link_capacity st.sub a b in
  if cap <= 0.0 then 1.0
  else
    let used = cap -. local_link_residual st a b in
    1.0 +. (alpha ** ((used +. bw) /. cap)) -. (alpha ** (used /. cap))

let igp_weight (l : Graph.link) = float_of_int l.Graph.weight
let hop_weight (_ : Graph.link) = 1.0

let apply_pins st ~vtopo (req : Request.t) nodes used =
  let vn = Graph.node_count vtopo and pn = Graph.node_count st.sg in
  List.iter
    (fun (v, p) ->
      let fail reason = raise (Reject (Pin_invalid { vnode = v; pnode = p; reason })) in
      if v < 0 || v >= vn then fail "virtual node out of range";
      if p < 0 || p >= pn then fail "physical node out of range";
      if nodes.(v) >= 0 then fail "virtual node pinned twice";
      if used.(p) then fail "physical node already taken";
      if not (Substrate.node_up st.sub p) then fail "physical node is down";
      let dem = req.Request.cpu_demand v in
      if st.nres.(p) +. eps < dem then
        fail
          (Printf.sprintf "insufficient CPU (demand %.3f, residual %.3f)" dem
             st.nres.(p));
      nodes.(v) <- p;
      used.(p) <- true;
      st.nres.(p) <- st.nres.(p) -. dem)
    req.Request.pins

(* Best-fit: unpinned vnodes in descending CPU demand (ties: lower id)
   each take the live unused pnode with the most residual CPU (ties:
   lower id). *)
let place_greedy st ~vtopo (req : Request.t) nodes used =
  let vn = Graph.node_count vtopo and pn = Graph.node_count st.sg in
  let unpinned = List.filter (fun v -> nodes.(v) = -1) (List.init vn Fun.id) in
  let ordered =
    List.sort
      (fun v1 v2 ->
        match compare (req.Request.cpu_demand v2) (req.Request.cpu_demand v1) with
        | 0 -> compare v1 v2
        | c -> c)
      unpinned
  in
  List.iter
    (fun v ->
      let dem = req.Request.cpu_demand v in
      let best = ref (-1) and best_res = ref neg_infinity in
      for p = 0 to pn - 1 do
        if Substrate.node_up st.sub p && (not used.(p)) && st.nres.(p) > !best_res
        then begin
          best := p;
          best_res := st.nres.(p)
        end
      done;
      if !best = -1 || !best_res +. eps < dem then
        raise
          (Reject
             (Node_exhausted
                {
                  vnode = v;
                  demand = dem;
                  best_residual = (if !best = -1 then 0.0 else !best_res);
                }));
      nodes.(v) <- !best;
      used.(!best) <- true;
      st.nres.(!best) <- st.nres.(!best) -. dem)
    ordered

(* Even et al.-style online placement: vnodes arrive in id order; each
   candidate pnode is priced by the exponential congestion increment of
   hosting the vnode plus congestion-priced constrained paths to every
   already-placed virtual neighbor.  Exact-minimum ties are broken by
   (seed + vnode) mod k over the id-sorted tie set — stable and
   byte-identical across runs with equal seeds. *)
let place_online st ~vtopo (req : Request.t) nodes used =
  let vn = Graph.node_count vtopo and pn = Graph.node_count st.sg in
  for v = 0 to vn - 1 do
    if nodes.(v) = -1 then begin
      let dem = req.Request.cpu_demand v in
      let placed_nbrs =
        List.filter (fun (u, _) -> nodes.(u) >= 0) (Graph.neighbors vtopo v)
      in
      let cands = ref [] in
      let best_res = ref 0.0 in
      let any_cap = ref false in
      let cap_blocked = ref None and live_blocked = ref None in
      for p = 0 to pn - 1 do
        if Substrate.node_up st.sub p && not used.(p) then begin
          if st.nres.(p) > !best_res then best_res := st.nres.(p);
          if st.nres.(p) +. eps >= dem then begin
            any_cap := true;
            let cap = Substrate.node_capacity st.sub p in
            let ncost =
              if cap <= 0.0 then infinity
              else
                let u0 = cap -. st.nres.(p) in
                (alpha ** ((u0 +. dem) /. cap)) -. (alpha ** (u0 /. cap))
            in
            let feasible = ref true and pcost = ref 0.0 in
            List.iter
              (fun (u, vl) ->
                if !feasible then begin
                  let bw = req.Request.bw_demand vl in
                  match
                    constrained_path st ~weight:(congestion_weight st ~bw)
                      ~need:bw p nodes.(u)
                  with
                  | Some (_, d) -> pcost := !pcost +. d
                  | None ->
                      feasible := false;
                      (match
                         constrained_path st ~weight:hop_weight ~need:0.0 p
                           nodes.(u)
                       with
                      | Some _ ->
                          if !cap_blocked = None then
                            cap_blocked := Some (v, u, bw)
                      | None ->
                          if !live_blocked = None then live_blocked := Some (v, u))
                end)
              placed_nbrs;
            if !feasible then cands := (ncost +. !pcost, p) :: !cands
          end
        end
      done;
      match List.rev !cands with
      | [] ->
          if not !any_cap then
            raise
              (Reject
                 (Node_exhausted
                    { vnode = v; demand = dem; best_residual = !best_res }))
          else begin
            match (!cap_blocked, !live_blocked) with
            | Some (va, vb, bw), _ ->
                raise (Reject (Link_exhausted { va; vb; demand = bw }))
            | None, Some (va, vb) -> raise (Reject (Unreachable { va; vb }))
            | None, None -> assert false
          end
      | cands ->
          let minc =
            List.fold_left (fun acc (c, _) -> Float.min acc c) infinity cands
          in
          let ties =
            List.filter
              (fun (c, _) -> c -. minc <= 1e-9 *. (1.0 +. Float.abs minc))
              cands
          in
          let k = List.length ties in
          let idx = (((req.Request.seed + v) mod k) + k) mod k in
          let _, p = List.nth ties idx in
          nodes.(v) <- p;
          used.(p) <- true;
          st.nres.(p) <- st.nres.(p) -. dem
    end
  done

(* Map every virtual link onto a capacity-feasible physical path,
   reserving bandwidth incrementally (vlinks in normalised sorted order
   so the reservation sequence is deterministic). *)
let map_paths st ~vtopo (req : Request.t) nodes =
  let vlinks =
    List.sort
      (fun (l1 : Graph.link) (l2 : Graph.link) ->
        compare (key l1.Graph.a l1.Graph.b) (key l2.Graph.a l2.Graph.b))
      (Graph.links vtopo)
  in
  List.map
    (fun (l : Graph.link) ->
      let va, vb = key l.Graph.a l.Graph.b in
      let pa = nodes.(va) and pb = nodes.(vb) in
      let bw = req.Request.bw_demand l in
      if pa = pb then ((va, vb), [ pa ])
      else
        let weight =
          match req.Request.algo with
          | Request.Greedy -> igp_weight
          | Request.Online -> congestion_weight st ~bw
        in
        match constrained_path st ~weight ~need:bw pa pb with
        | Some (path, _) ->
            reserve_local_path st path bw;
            ((va, vb), path)
        | None -> (
            match constrained_path st ~weight:hop_weight ~need:0.0 pa pb with
            | Some _ -> raise (Reject (Link_exhausted { va; vb; demand = bw }))
            | None -> raise (Reject (Unreachable { va; vb }))))
    vlinks

let solve sub ~vtopo (req : Request.t) =
  let st = snapshot sub in
  let vn = Graph.node_count vtopo and pn = Graph.node_count st.sg in
  let up_count = ref 0 in
  for p = 0 to pn - 1 do
    if Substrate.node_up sub p then incr up_count
  done;
  try
    if vn > !up_count then
      raise (Reject (Too_large { vnodes = vn; pnodes = !up_count }));
    let nodes = Array.make vn (-1) in
    let used = Array.make pn false in
    apply_pins st ~vtopo req nodes used;
    (match req.Request.algo with
    | Request.Greedy -> place_greedy st ~vtopo req nodes used
    | Request.Online -> place_online st ~vtopo req nodes used);
    let vpaths = map_paths st ~vtopo req nodes in
    Ok { nodes; vpaths }
  with Reject r -> Error r

let iter_mapping ?(except = []) ~vtopo (req : Request.t) m ~node ~path =
  Array.iteri
    (fun v p ->
      if not (List.mem v except) then node p (req.Request.cpu_demand v))
    m.nodes;
  List.iter
    (fun ((va, vb), p) ->
      if (not (List.mem va except)) && not (List.mem vb except) then
        match Graph.find_link vtopo va vb with
        | Some l -> path p (req.Request.bw_demand l)
        | None -> ())
    m.vpaths

let commit ?except sub ~vtopo req m =
  iter_mapping ?except ~vtopo req m
    ~node:(Substrate.reserve_node sub)
    ~path:(Substrate.reserve_path sub)

let withdraw ?except sub ~vtopo req m =
  iter_mapping ?except ~vtopo req m
    ~node:(Substrate.release_node sub)
    ~path:(Substrate.release_path sub)

(* One virtual node's own share of a mapping: its CPU plus the bandwidth
   of its incident virtual links' paths.  A path whose other endpoint is
   in [except] is skipped — when several vnodes' shares are out of the
   substrate at once (parked after rejected re-embeds, or mid-migration),
   a path between two of them must be moved by exactly one of the two
   delta operations, not both. *)
let iter_delta ?(except = []) ~vtopo (req : Request.t) m ~vnode ~node ~path =
  node m.nodes.(vnode) (req.Request.cpu_demand vnode);
  List.iter
    (fun ((va, vb), p) ->
      if
        (va = vnode || vb = vnode)
        && (not (List.mem va except))
        && not (List.mem vb except)
      then
        match Graph.find_link vtopo va vb with
        | Some l -> path p (req.Request.bw_demand l)
        | None -> ())
    m.vpaths

let commit_delta ?except sub ~vtopo req m ~vnode =
  iter_delta ?except ~vtopo req m ~vnode
    ~node:(Substrate.reserve_node sub)
    ~path:(Substrate.reserve_path sub)

let withdraw_delta ?except sub ~vtopo req m ~vnode =
  iter_delta ?except ~vtopo req m ~vnode
    ~node:(Substrate.release_node sub)
    ~path:(Substrate.release_path sub)

let admit sub ~vtopo req =
  match solve sub ~vtopo req with
  | Ok m ->
      commit sub ~vtopo req m;
      Substrate.note_admitted sub;
      Ok m
  | Error r ->
      Substrate.note_rejected sub;
      Error r

let reembed sub ~vtopo (req : Request.t) m ~vnode =
  let pins = ref [] in
  Array.iteri (fun v p -> if v <> vnode then pins := (v, p) :: !pins) m.nodes;
  solve sub ~vtopo { req with Request.pins = List.rev !pins }

(* Price and route a make-before-break move of one virtual node.  Every
   survivor keeps its host {e and} its exact committed paths; only the
   moving vnode's host and incident paths change.  Pure, like [solve],
   but against a snapshot in which the mover's own share (CPU +
   incident-path bandwidth) has been credited back: the plan prices the
   steady state after the old share is withdrawn, even though the
   migration double-provisions in between ([commit_delta] on the new
   mapping while the old share is still held, [withdraw_delta] on the
   old one only after the flip commits). *)
let plan_move sub ~vtopo (req : Request.t) m ~vnode ?target () =
  let vn = Graph.node_count vtopo in
  if vnode < 0 || vnode >= vn then
    invalid_arg "Embed.plan_move: virtual node out of range";
  let st = snapshot sub in
  let pn = Graph.node_count st.sg in
  let dem = req.Request.cpu_demand vnode in
  st.nres.(m.nodes.(vnode)) <- st.nres.(m.nodes.(vnode)) +. dem;
  List.iter
    (fun ((va, vb), p) ->
      if va = vnode || vb = vnode then
        match Graph.find_link vtopo va vb with
        | Some l ->
            let bw = req.Request.bw_demand l in
            if bw > 0.0 then
              let rec credit = function
                | a :: (b :: _ as rest) ->
                    Hashtbl.replace st.lres (key a b)
                      (local_link_residual st a b +. bw);
                    credit rest
                | [ _ ] | [] -> ()
              in
              credit p
        | None -> ())
    m.vpaths;
  let used = Array.make pn false in
  Array.iteri (fun v p -> if v <> vnode then used.(p) <- true) m.nodes;
  let nbrs =
    List.sort (fun (u1, _) (u2, _) -> compare u1 u2) (Graph.neighbors vtopo vnode)
  in
  let cap_blocked = ref None and live_blocked = ref None in
  (* Candidate pricing, same cost model as [place_online]: exponential
     node-congestion increment plus congestion-priced constrained paths
     to every neighbour's (unmoved) host. *)
  let price p =
    let cap = Substrate.node_capacity st.sub p in
    let ncost =
      if cap <= 0.0 then infinity
      else
        let u0 = cap -. st.nres.(p) in
        (alpha ** ((u0 +. dem) /. cap)) -. (alpha ** (u0 /. cap))
    in
    let feasible = ref true and pcost = ref 0.0 in
    List.iter
      (fun (u, vl) ->
        if !feasible then begin
          let bw = req.Request.bw_demand vl in
          match
            constrained_path st ~weight:(congestion_weight st ~bw) ~need:bw p
              m.nodes.(u)
          with
          | Some (_, d) -> pcost := !pcost +. d
          | None -> (
              feasible := false;
              match
                constrained_path st ~weight:hop_weight ~need:0.0 p m.nodes.(u)
              with
              | Some _ ->
                  if !cap_blocked = None then
                    cap_blocked := Some (key vnode u, bw)
              | None ->
                  if !live_blocked = None then live_blocked := Some (key vnode u))
        end)
      nbrs;
    if !feasible then Some (ncost +. !pcost) else None
  in
  (* Final incident paths for the chosen host, reserved incrementally in
     the mapping's normalised vlink order so the mover's own paths cannot
     overcommit a link among themselves. *)
  let route p =
    List.filter_map
      (fun ((va, vb), _) ->
        if va = vnode || vb = vnode then begin
          let u = if va = vnode then vb else va in
          match Graph.find_link vtopo va vb with
          | None -> None
          | Some l -> (
              let bw = req.Request.bw_demand l in
              match
                constrained_path st ~weight:(congestion_weight st ~bw) ~need:bw
                  p m.nodes.(u)
              with
              | Some (path, _) ->
                  reserve_local_path st path bw;
                  let path = if va = vnode then path else List.rev path in
                  Some ((va, vb), path)
              | None -> (
                  match
                    constrained_path st ~weight:hop_weight ~need:0.0 p
                      m.nodes.(u)
                  with
                  | Some _ ->
                      raise (Reject (Link_exhausted { va; vb; demand = bw }))
                  | None -> raise (Reject (Unreachable { va; vb }))))
        end
        else None)
      m.vpaths
  in
  let build p =
    let paths = route p in
    let nodes = Array.copy m.nodes in
    nodes.(vnode) <- p;
    let vpaths =
      List.map
        (fun ((va, vb), old) ->
          match List.assoc_opt (va, vb) paths with
          | Some np -> ((va, vb), np)
          | None -> ((va, vb), old))
        m.vpaths
    in
    { nodes; vpaths }
  in
  try
    match target with
    | Some p ->
        let fail reason =
          raise (Reject (Pin_invalid { vnode; pnode = p; reason }))
        in
        if p < 0 || p >= pn then fail "physical node out of range";
        if not (Substrate.node_up st.sub p) then fail "physical node is down";
        if used.(p) then fail "physical node already hosts this slice";
        if st.nres.(p) +. eps < dem then
          fail
            (Printf.sprintf "insufficient CPU (demand %.3f, residual %.3f)" dem
               st.nres.(p));
        Ok (build p)
    | None ->
        let cands = ref [] in
        let best_res = ref 0.0 and any_cap = ref false in
        for p = 0 to pn - 1 do
          if Substrate.node_up st.sub p && not used.(p) then begin
            if st.nres.(p) > !best_res then best_res := st.nres.(p);
            if st.nres.(p) +. eps >= dem then begin
              any_cap := true;
              match price p with
              | Some c -> cands := (c, p) :: !cands
              | None -> ()
            end
          end
        done;
        (match List.rev !cands with
        | [] ->
            if not !any_cap then
              raise
                (Reject
                   (Node_exhausted
                      { vnode; demand = dem; best_residual = !best_res }))
            else begin
              match (!cap_blocked, !live_blocked) with
              | Some ((va, vb), bw), _ ->
                  raise (Reject (Link_exhausted { va; vb; demand = bw }))
              | None, Some (va, vb) -> raise (Reject (Unreachable { va; vb }))
              | None, None -> assert false
            end
        | cands ->
            let minc =
              List.fold_left (fun acc (c, _) -> Float.min acc c) infinity cands
            in
            let ties =
              List.filter
                (fun (c, _) -> c -. minc <= 1e-9 *. (1.0 +. Float.abs minc))
                cands
            in
            let k = List.length ties in
            let idx = (((req.Request.seed + vnode) mod k) + k) mod k in
            let _, p = List.nth ties idx in
            Ok (build p))
  with Reject r -> Error r

exception Check_failed of string

let check sub ~vtopo (req : Request.t) m =
  let sg = Substrate.graph sub in
  let vn = Graph.node_count vtopo and pn = Graph.node_count sg in
  let err fmt = Printf.ksprintf (fun s -> raise (Check_failed s)) fmt in
  try
    if Array.length m.nodes <> vn then
      err "mapping covers %d of %d virtual nodes" (Array.length m.nodes) vn;
    let seen = Array.make pn false in
    Array.iteri
      (fun v p ->
        if p < 0 || p >= pn then
          err "vnode %d mapped to out-of-range pnode %d" v p;
        if seen.(p) then err "pnode %d hosts two virtual nodes" p;
        seen.(p) <- true;
        if not (Substrate.node_up sub p) then
          err "vnode %d mapped to down pnode %d" v p;
        let dem = req.Request.cpu_demand v in
        if Substrate.node_residual sub p +. eps < dem then
          err "pnode %d lacks CPU for vnode %d (demand %.3f, residual %.3f)" p
            v dem
            (Substrate.node_residual sub p))
      m.nodes;
    List.iter
      (fun (l : Graph.link) ->
        let k = key l.Graph.a l.Graph.b in
        if not (List.mem_assoc k m.vpaths) then
          err "vlink %d-%d has no mapped path" (fst k) (snd k))
      (Graph.links vtopo);
    let lload = Hashtbl.create 16 in
    List.iter
      (fun ((va, vb), path) ->
        match Graph.find_link vtopo va vb with
        | None -> err "mapped path for nonexistent vlink %d-%d" va vb
        | Some l ->
            let bw = req.Request.bw_demand l in
            (match path with
            | [] -> err "empty path for vlink %d-%d" va vb
            | first :: _ ->
                let last = List.nth path (List.length path - 1) in
                if first <> m.nodes.(va) || last <> m.nodes.(vb) then
                  err "path for vlink %d-%d does not join its endpoints" va vb);
            let rec go = function
              | a :: (b :: _ as rest) ->
                  (match Graph.find_link sg a b with
                  | None ->
                      err "path for vlink %d-%d uses non-adjacent pnodes %d-%d"
                        va vb a b
                  | Some _ ->
                      if not (Substrate.link_up sub a b) then
                        err "path for vlink %d-%d crosses down plink %d-%d" va
                          vb a b);
                  if bw > 0.0 then begin
                    let k = key a b in
                    let cur =
                      Option.value ~default:0.0 (Hashtbl.find_opt lload k)
                    in
                    Hashtbl.replace lload k (cur +. bw)
                  end;
                  go rest
              | [ _ ] | [] -> ()
            in
            go path)
      m.vpaths;
    Hashtbl.iter
      (fun (a, b) bw ->
        if Substrate.link_residual sub a b +. eps < bw then
          err "plink %d-%d lacks bandwidth (demand %.0f, residual %.0f)" a b bw
            (Substrate.link_residual sub a b))
      lload;
    Ok ()
  with Check_failed s -> Error s

let path_stretch sub path =
  match path with
  | [] | [ _ ] -> 1.0
  | first :: _ -> (
      let sg = Substrate.graph sub in
      let last = List.nth path (List.length path - 1) in
      let actual = Graph.path_weight sg path in
      match Graph.shortest_path sg first last with
      | Some sp ->
          let best = Graph.path_weight sg sp in
          if best = 0 then 1.0 else float_of_int actual /. float_of_int best
      | None -> 1.0)

let stretch sub m =
  let ps =
    List.filter_map
      (fun (_, path) ->
        match path with
        | _ :: _ :: _ -> Some (path_stretch sub path)
        | _ -> None)
      m.vpaths
  in
  match ps with
  | [] -> 1.0
  | _ -> List.fold_left ( +. ) 0.0 ps /. float_of_int (List.length ps)
