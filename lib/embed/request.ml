type algo = Greedy | Online

let algo_to_string = function Greedy -> "greedy" | Online -> "online"

let algo_of_string = function
  | "greedy" -> Some Greedy
  | "online" -> Some Online
  | _ -> None

type t = {
  req_name : string;
  cpu_demand : int -> float;
  bw_demand : Vini_topo.Graph.link -> float;
  pins : (int * int) list;
  algo : algo;
  seed : int;
}

let make ?(name = "slice")
    ?(cpu = fun _ -> Vini_phys.Calibration.default_reservation)
    ?(bw = fun _ -> 0.0) ?(pins = []) ?(algo = Greedy) ?(seed = 0) () =
  { req_name = name; cpu_demand = cpu; bw_demand = bw; pins; algo; seed }
