(* The Section 5.2 experiment, end to end: mirror the Abilene backbone
   from its router configurations, fail the Denver-Kansas City link inside
   Click, and watch OSPF reconverge through ping and TCP.

     dune exec examples/abilene_failover.exe *)


let () =
  (* The rcc pipeline: parse the embedded Abilene router configs, audit
     them, and derive the experiment topology (§6.2). *)
  let cfgs =
    match Vini_rcc.Config.parse_many (Vini_rcc.Rcc.abilene_text ()) with
    | Ok cfgs -> cfgs
    | Error e -> failwith e
  in
  Printf.printf "parsed %d router configurations; audit: %s\n"
    (List.length cfgs)
    (match Vini_rcc.Rcc.audit cfgs with
    | [] -> "clean"
    | faults -> String.concat "; " faults);
  let g = Vini_rcc.Rcc.abilene () in
  Printf.printf "\ngenerated XORP config for %s:\n%s\n"
    (Vini_topo.Graph.name g 0)
    (Vini_rcc.Rcc.xorp_config g 0);

  let primary, backup = Vini_repro.Abilene.expected_paths () in
  Printf.printf "expected primary : %s\n" (String.concat " > " primary);
  Printf.printf "expected backup  : %s\n\n" (String.concat " > " backup);

  (* Figure 8: ping D.C. -> Seattle while the link fails at t=10 s and
     recovers at t=34 s. *)
  let f8 = Vini_repro.Abilene.fig8_run ~ping_interval_ms:500 () in
  Printf.printf "ping RTT during the event (every 0.5 s):\n";
  List.iter
    (fun (t, rtt) ->
      if Float.rem t 2.0 < 0.5 then
        Printf.printf "  t=%5.1fs  rtt=%6.1f ms %s\n" t rtt
          (String.make (int_of_float ((rtt -. 70.0) /. 1.5)) '#'))
    f8.Vini_repro.Abilene.rtt_series;
  Printf.printf
    "\nsummary: %.1f ms before, %.1f ms on the backup path, detected %.1f s \
     after the failure, %.1f ms after restore\n"
    f8.Vini_repro.Abilene.rtt_before f8.rtt_after f8.detect_delay
    f8.restore_rtt;

  (* Figure 9: the same event seen by a 16 KB-window TCP transfer. *)
  let f9 = Vini_repro.Abilene.fig9_run () in
  Printf.printf
    "\nTCP transfer: %.2f MB in 50 s; stalled from %.1f s until %.1f s \
     (slow-start restart on the new path)\n"
    f9.Vini_repro.Abilene.total_mb f9.stall_start f9.stall_end
