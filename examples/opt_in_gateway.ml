(* The life of a packet (Figure 2): a client opts in to IIAS through an
   OpenVPN ingress, its web traffic rides the overlay, leaves through the
   NAPT egress, reaches a server that knows nothing about the overlay,
   and the responses find their way back.

     dune exec examples/opt_in_gateway.exe *)

module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Graph = Vini_topo.Graph
module Underlay = Vini_phys.Underlay
module Pnode = Vini_phys.Pnode
module Slice = Vini_phys.Slice
module Iias = Vini_overlay.Iias
module Openvpn = Vini_overlay.Openvpn
module Tcp = Vini_transport.Tcp

let () =
  let engine = Engine.create ~seed:87 () in
  let link a b ms =
    {
      Graph.a;
      b;
      bandwidth_bps = 1e9;
      delay = Time.of_ms_f ms;
      loss = 0.0;
      weight = 1;
    }
  in
  (* Physical world: a 3-PoP backbone, the client's home machine attached
     near PoP 0, and a web server ("cnn") attached near PoP 2. *)
  let phys =
    Graph.create
      ~names:[| "pop0"; "pop1"; "pop2"; "laptop"; "cnn" |]
      ~links:[ link 0 1 10.0; link 1 2 8.0; link 0 3 2.0; link 2 4 3.0 ]
  in
  let underlay =
    Underlay.create ~engine
      ~rng:(Vini_std.Rng.split (Engine.rng engine))
      ~graph:phys ()
  in
  (* The overlay spans only the backbone PoPs. *)
  let vtopo =
    Graph.create ~names:[| "v0"; "v1"; "v2" |]
      ~links:[ link 0 1 10.0; link 1 2 8.0 ]
  in
  let iias =
    Iias.create ~underlay ~slice:(Slice.pl_vini "gateway") ~vtopo
      ~embedding:Fun.id ()
  in
  Iias.enable_ingress iias 0 ~pool:(Vini_net.Prefix.of_string "10.8.0.0/24");
  Iias.enable_egress iias 2;
  Iias.start iias;
  Engine.run ~until:(Time.sec 20) engine;

  (* The web server is an ordinary host: a TCP listener on port 80 that
     answers each connection with a 200 KB "page". *)
  let cnn = Underlay.node underlay 4 in
  Tcp.listen ~stack:(Pnode.stack cnn) ~port:80
    ~on_accept:(fun conn ->
      Tcp.on_established conn (fun () ->
          Tcp.send conn 200_000;
          Tcp.close conn))
    ();

  (* The client opts in: an OpenVPN tunnel to the ingress gives the laptop
     an overlay address from the ingress pool. *)
  let laptop = Underlay.node underlay 3 in
  let vaddr = Iias.alloc_vpn_addr iias 0 in
  let vpn = Openvpn.connect ~host:laptop ~server:(Underlay.addr underlay 0) ~vaddr () in
  Printf.printf "laptop opted in: overlay address %s via ingress %s\n"
    (Vini_net.Addr.to_string vaddr)
    (Vini_net.Addr.to_string (Underlay.addr underlay 0));
  Engine.run ~until:(Time.sec 21) engine;

  (* "Firefox" fetches the page: TCP from the VPN tun device to a server
     that has never heard of VINI. *)
  let received = ref 0 in
  let conn =
    Tcp.connect ~stack:(Openvpn.stack vpn) ~dst:(Pnode.addr cnn) ~dst_port:80 ()
  in
  Tcp.on_deliver conn (fun n -> received := !received + n);
  Engine.run ~until:(Time.sec 60) engine;
  Printf.printf "page fetched: %d bytes over vpn + overlay + nat\n" !received;

  (* Show each leg of the journey from the data-plane counters. *)
  let s0 = Iias.stats (Iias.vnode iias 0) in
  let s1 = Iias.stats (Iias.vnode iias 1) in
  let s2 = Iias.stats (Iias.vnode iias 2) in
  Printf.printf "\nthe journey, by counters:\n";
  Printf.printf "  ingress v0 : %4d packets in from the VPN client, %4d back out\n"
    s0.Iias.vpn_in s0.Iias.vpn_out;
  Printf.printf "  middle  v1 : %4d packets forwarded over UDP tunnels\n"
    s1.Iias.forwarded;
  Printf.printf "  egress  v2 : %4d packets NATed out, %4d replies NATed back in\n"
    s2.Iias.napt_out s2.Iias.napt_in;
  assert (!received = 200_000)
