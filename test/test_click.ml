(* Tests for the Click data-plane elements: FIB trie, elements, shaper,
   failure injection, NAPT. *)

module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Addr = Vini_net.Addr
module Prefix = Vini_net.Prefix
module Packet = Vini_net.Packet
module Fib = Vini_click.Fib
module Fib_reference = Vini_click.Fib_reference
module Element = Vini_click.Element
module Shaper = Vini_click.Shaper
module Faulty = Vini_click.Faulty
module Napt = Vini_click.Napt

let check = Alcotest.check
let a1 = Addr.of_string "10.0.0.1"
let a2 = Addr.of_string "10.0.0.2"

let udp ?(size = 100) ?(src = a1) ?(dst = a2) ?(sport = 1000) ?(dport = 2000) () =
  Packet.udp ~src ~dst ~sport ~dport (Packet.Bytes_ size)

(* --- FIB ---------------------------------------------------------------- *)

let test_fib_longest_match () =
  let t = Fib.create () in
  Fib.add t (Prefix.of_string "10.0.0.0/8") "eight";
  Fib.add t (Prefix.of_string "10.1.0.0/16") "sixteen";
  Fib.add t (Prefix.of_string "10.1.2.0/24") "twentyfour";
  let look s = Fib.lookup t (Addr.of_string s) in
  check Alcotest.(option string) "most specific" (Some "twentyfour") (look "10.1.2.9");
  check Alcotest.(option string) "middle" (Some "sixteen") (look "10.1.9.9");
  check Alcotest.(option string) "least" (Some "eight") (look "10.9.9.9");
  check Alcotest.(option string) "miss" None (look "11.0.0.1")

let test_fib_default_route () =
  let t = Fib.create () in
  Fib.add t Prefix.default_route "default";
  check Alcotest.(option string) "matches anything" (Some "default")
    (Fib.lookup t (Addr.of_string "203.0.113.7"))

let test_fib_replace_and_remove () =
  let t = Fib.create () in
  let p = Prefix.of_string "10.0.0.0/8" in
  Fib.add t p 1;
  Fib.add t p 2;
  check Alcotest.int "replaced, not duplicated" 1 (Fib.length t);
  check Alcotest.(option int) "new value" (Some 2) (Fib.lookup t a1);
  Fib.remove t p;
  check Alcotest.(option int) "removed" None (Fib.lookup t a1);
  Fib.remove t p;
  check Alcotest.int "idempotent remove" 0 (Fib.length t)

let test_fib_lookup_prefix_reports_match () =
  let t = Fib.create () in
  Fib.add t (Prefix.of_string "10.1.0.0/16") ();
  match Fib.lookup_prefix t (Addr.of_string "10.1.2.3") with
  | Some (p, ()) ->
      check Alcotest.string "matched prefix" "10.1.0.0/16" (Prefix.to_string p)
  | None -> Alcotest.fail "expected a match"

let test_fib_entries_sorted () =
  let t = Fib.create () in
  Fib.add t (Prefix.of_string "192.168.0.0/16") 3;
  Fib.add t (Prefix.of_string "10.0.0.0/8") 1;
  Fib.add t (Prefix.of_string "10.1.0.0/16") 2;
  check
    Alcotest.(list (pair string int))
    "sorted entries"
    [ ("10.0.0.0/8", 1); ("10.1.0.0/16", 2); ("192.168.0.0/16", 3) ]
    (List.map (fun (p, v) -> (Prefix.to_string p, v)) (Fib.entries t))

let test_fib_host_routes () =
  let t = Fib.create () in
  Fib.add t (Prefix.make a1 32) "host";
  check Alcotest.(option string) "exact host" (Some "host") (Fib.lookup t a1);
  check Alcotest.(option string) "neighbour misses" None (Fib.lookup t a2)

(* Property: trie lookup equals linear longest-prefix scan. *)
let prop_fib_vs_linear =
  let gen =
    QCheck.make
      QCheck.Gen.(
        pair
          (list_size (int_range 1 40)
             (pair (int_bound 0xFFFFFF) (int_range 0 32)))
          (list_size (int_range 1 40) (int_bound 0xFFFFFF)))
  in
  QCheck.Test.make ~name:"fib trie = linear reference" ~count:200 gen
    (fun (entries, probes) ->
      let t = Fib.create () in
      let table =
        List.map
          (fun (i, len) ->
            let p = Prefix.make (Addr.of_int (i * 251)) len in
            Fib.add t p (Prefix.to_string p);
            p)
          entries
      in
      let linear addr =
        List.fold_left
          (fun best p ->
            if Prefix.contains p addr then
              match best with
              | Some b when Prefix.length b >= Prefix.length p -> best
              | _ -> Some p
            else best)
          None table
        |> Option.map Prefix.to_string
      in
      List.for_all
        (fun i ->
          let addr = Addr.of_int (i * 163) in
          Fib.lookup t addr = linear addr)
        probes)

(* Property: the path-compressed trie answers exactly like the retained
   one-bit-per-node reference trie, through randomized add/remove
   interleavings (removals exercise the path-compression split/merge
   cases the linear model above can't reach). *)
let prop_fib_vs_reference =
  let gen =
    QCheck.make
      QCheck.Gen.(
        pair
          (list_size (int_range 1 60)
             (triple (int_bound 0xFFFFFF) (int_range 0 32) bool))
          (list_size (int_range 1 60) (int_bound 0xFFFFFF)))
  in
  QCheck.Test.make ~name:"fib compressed trie = reference trie" ~count:200 gen
    (fun (ops, probes) ->
      let t = Fib.create () and r = Fib_reference.create () in
      List.iter
        (fun (i, len, rm) ->
          let p = Prefix.make (Addr.of_int (i * 251)) len in
          if rm then begin
            Fib.remove t p;
            Fib_reference.remove r p
          end
          else begin
            let v = Prefix.to_string p in
            Fib.add t p v;
            Fib_reference.add r p v
          end)
        ops;
      Fib.length t = Fib_reference.length r
      && Fib.entries t = Fib_reference.entries r
      && List.for_all
           (fun i ->
             let addr = Addr.of_int (i * 163) in
             Fib.lookup t addr = Fib_reference.lookup r addr
             && Fib.lookup_prefix t addr = Fib_reference.lookup_prefix r addr)
           probes)

let test_fib_cache_counts_hits () =
  let t = Fib.create () in
  Fib.add t (Prefix.of_string "10.0.0.0/8") "A";
  let addr = Addr.of_string "10.1.2.3" in
  let h0 = Fib.cache_hits t and m0 = Fib.cache_misses t in
  check Alcotest.(option string) "first lookup" (Some "A") (Fib.lookup t addr);
  check Alcotest.int "first is a miss" (m0 + 1) (Fib.cache_misses t);
  check Alcotest.(option string) "second lookup" (Some "A") (Fib.lookup t addr);
  check Alcotest.int "second is a hit" (h0 + 1) (Fib.cache_hits t);
  check Alcotest.int "no extra miss" (m0 + 1) (Fib.cache_misses t)

let test_fib_cache_invalidated_on_update () =
  let t = Fib.create () in
  Fib.add t (Prefix.of_string "10.0.0.0/8") "A";
  let addr = Addr.of_string "10.1.2.3" in
  check Alcotest.(option string) "warm" (Some "A") (Fib.lookup t addr);
  check Alcotest.(option string) "cached" (Some "A") (Fib.lookup t addr);
  (* A more specific route must take effect immediately: add invalidates
     the whole cache, so the stale "A" can never be served. *)
  Fib.add t (Prefix.of_string "10.1.0.0/16") "B";
  check Alcotest.(option string) "no stale entry after add" (Some "B")
    (Fib.lookup t addr);
  Fib.remove t (Prefix.of_string "10.1.0.0/16");
  check Alcotest.(option string) "no stale entry after remove" (Some "A")
    (Fib.lookup t addr);
  Fib.clear t;
  check Alcotest.(option string) "no stale entry after clear" None
    (Fib.lookup t addr)

let test_fib_cache_negative_results () =
  let t = Fib.create () in
  let addr = Addr.of_string "192.0.2.1" in
  check Alcotest.(option string) "no route" None (Fib.lookup t addr);
  let h0 = Fib.cache_hits t in
  check Alcotest.(option string) "still none" None (Fib.lookup t addr);
  check Alcotest.int "negative result cached" (h0 + 1) (Fib.cache_hits t);
  Fib.add t (Prefix.of_string "192.0.2.0/24") "R";
  check Alcotest.(option string) "route appears despite cached miss"
    (Some "R") (Fib.lookup t addr)

(* --- elements ------------------------------------------------------------ *)

let test_element_counters () =
  let sink = Element.discard "sink" in
  Element.push sink (udp ~size:100 ());
  Element.push sink (udp ~size:50 ());
  check Alcotest.int "packets" 2 (Element.packets sink);
  check Alcotest.int "bytes" (128 + 78) (Element.bytes sink)

let test_element_tee () =
  let s1 = Element.discard "s1" and s2 = Element.discard "s2" in
  let t = Element.tee "t" [ s1; s2 ] in
  Element.push t (udp ());
  check Alcotest.int "copy 1" 1 (Element.packets s1);
  check Alcotest.int "copy 2" 1 (Element.packets s2)

let test_element_classifier () =
  let small = Element.discard "small" and big = Element.discard "big" in
  let c =
    Element.classifier "c"
      ~rules:[ ((fun p -> Packet.size p < 100), small) ]
      ~default:big
  in
  Element.push c (udp ~size:10 ());
  Element.push c (udp ~size:500 ());
  check Alcotest.int "small rule" 1 (Element.packets small);
  check Alcotest.int "default" 1 (Element.packets big)

let test_element_queue_bound () =
  let sink = Element.discard "sink" in
  let q = Element.queue "q" ~capacity_bytes:50 ~out:sink () in
  Element.push q (udp ~size:100 ());
  check Alcotest.int "oversize dropped" 0 (Element.packets sink);
  check Alcotest.int "drop counted" 1 (Element.queue_drops q)

(* --- shaper --------------------------------------------------------------- *)

let test_shaper_limits_rate () =
  let engine = Engine.create () in
  let sink = Element.discard "sink" in
  (* 1 Mb/s, minimal burst: 100 packets of 1028 bytes need ~0.82 s. *)
  let sh =
    Shaper.create ~engine ~rate_bps:1e6 ~burst_bytes:2000 ~queue_bytes:200_000
      ~out:sink "sh"
  in
  for _ = 1 to 100 do
    Element.push (Shaper.element sh) (udp ~size:1000 ())
  done;
  Engine.run ~until:(Time.ms 400) engine;
  let halfway = Element.bytes sink in
  check Alcotest.bool
    (Printf.sprintf "rate limited (%d bytes at 0.4s)" halfway)
    true
    (halfway > 30_000 && halfway < 70_000);
  Engine.run engine;
  check Alcotest.int "all delivered eventually" 100 (Element.packets sink)

let test_shaper_drops_when_full () =
  let engine = Engine.create () in
  let sink = Element.discard "sink" in
  let sh =
    Shaper.create ~engine ~rate_bps:1e4 ~burst_bytes:1000 ~queue_bytes:3000
      ~out:sink "sh"
  in
  for _ = 1 to 50 do
    Element.push (Shaper.element sh) (udp ~size:1000 ())
  done;
  check Alcotest.bool "tail dropped" true (Shaper.drops sh > 0)

let test_shaper_set_rate () =
  let engine = Engine.create () in
  let sink = Element.discard "sink" in
  let sh =
    Shaper.create ~engine ~rate_bps:1e3 ~burst_bytes:100 ~queue_bytes:1_000_000
      ~out:sink "sh"
  in
  for _ = 1 to 20 do
    Element.push (Shaper.element sh) (udp ~size:1000 ())
  done;
  Shaper.set_rate sh 1e9;
  Engine.run ~until:(Time.sec 1) engine;
  check Alcotest.int "fast after set_rate" 20 (Element.packets sink)

(* --- failure injection ----------------------------------------------------- *)

let test_faulty_modes () =
  let rng = Vini_std.Rng.create 3 in
  let sink = Element.discard "sink" in
  let f = Faulty.create ~rng ~out:sink "drop" in
  Element.push (Faulty.element f) (udp ());
  check Alcotest.int "pass mode" 1 (Element.packets sink);
  Faulty.set_mode f Faulty.Fail;
  for _ = 1 to 10 do
    Element.push (Faulty.element f) (udp ())
  done;
  check Alcotest.int "fail mode drops all" 1 (Element.packets sink);
  check Alcotest.int "drops counted" 10 (Faulty.dropped f);
  Faulty.set_mode f (Faulty.Lossy 0.5);
  for _ = 1 to 1000 do
    Element.push (Faulty.element f) (udp ())
  done;
  let passed = Element.packets sink - 1 in
  check Alcotest.bool
    (Printf.sprintf "lossy ~50%% (%d/1000)" passed)
    true
    (passed > 400 && passed < 600);
  Alcotest.check_raises "bad loss rate"
    (Invalid_argument "Faulty.set_mode: loss rate") (fun () ->
      Faulty.set_mode f (Faulty.Lossy 1.5))

(* --- NAPT -------------------------------------------------------------------- *)

let ext = Addr.of_string "198.32.154.226"
let web = Addr.of_string "64.236.16.20"

let test_napt_udp_roundtrip () =
  let n = Napt.create ~public_addr:ext () in
  let out = udp ~src:a1 ~dst:web ~sport:5555 ~dport:80 () in
  match Napt.translate_out n out with
  | None -> Alcotest.fail "udp must translate"
  | Some t -> (
      check Alcotest.bool "src is public" true (Addr.equal t.Packet.src ext);
      let nat_port =
        match t.Packet.proto with
        | Packet.Udp u -> u.Packet.usport
        | _ -> Alcotest.fail "not udp"
      in
      check Alcotest.bool "fresh port" true (nat_port >= 61000);
      (* Reply from the web server back to the NAT port. *)
      let reply =
        Packet.udp ~src:web ~dst:ext ~sport:80 ~dport:nat_port (Packet.Bytes_ 1)
      in
      match Napt.translate_in n reply with
      | None -> Alcotest.fail "reply must match"
      | Some r ->
          check Alcotest.bool "back to inner host" true
            (Addr.equal r.Packet.dst a1);
          (match r.Packet.proto with
          | Packet.Udp u -> check Alcotest.int "inner port" 5555 u.Packet.udport
          | _ -> Alcotest.fail "not udp"))

let test_napt_stable_mapping () =
  let n = Napt.create ~public_addr:ext () in
  let p1 = Option.get (Napt.translate_out n (udp ~src:a1 ~dst:web ~sport:1 ~dport:80 ())) in
  let p2 = Option.get (Napt.translate_out n (udp ~src:a1 ~dst:web ~sport:1 ~dport:80 ())) in
  let port p =
    match p.Packet.proto with Packet.Udp u -> u.Packet.usport | _ -> -1
  in
  check Alcotest.int "same flow, same port" (port p1) (port p2);
  check Alcotest.int "one mapping" 1 (Napt.mappings n);
  let p3 = Option.get (Napt.translate_out n (udp ~src:a2 ~dst:web ~sport:1 ~dport:80 ())) in
  check Alcotest.bool "different flow, different port" true (port p3 <> port p1)

let test_napt_rejects_strangers () =
  let n = Napt.create ~public_addr:ext () in
  let stray = Packet.udp ~src:web ~dst:ext ~sport:80 ~dport:61007 (Packet.Bytes_ 1) in
  check Alcotest.bool "no mapping, no entry" true (Napt.translate_in n stray = None);
  let not_ours = udp ~src:web ~dst:a1 ~sport:80 ~dport:61000 () in
  check Alcotest.bool "wrong destination" true (Napt.translate_in n not_ours = None)

let test_napt_icmp () =
  let n = Napt.create ~public_addr:ext () in
  let echo =
    Packet.icmp ~src:a1 ~dst:web
      (Packet.Echo_request { ident = 77; icmp_seq = 1; sent_ns = 0; data_len = 56 })
  in
  match Napt.translate_out n echo with
  | None -> Alcotest.fail "icmp echo must translate"
  | Some t -> (
      let nat_id =
        match t.Packet.proto with
        | Packet.Icmp (Packet.Echo_request e) -> e.Packet.ident
        | _ -> Alcotest.fail "not an echo"
      in
      let reply =
        Packet.icmp ~src:web ~dst:ext
          (Packet.Echo_reply { ident = nat_id; icmp_seq = 1; sent_ns = 0; data_len = 56 })
      in
      match Napt.translate_in n reply with
      | None -> Alcotest.fail "echo reply must match"
      | Some r -> (
          check Alcotest.bool "to inner host" true (Addr.equal r.Packet.dst a1);
          match r.Packet.proto with
          | Packet.Icmp (Packet.Echo_reply e) ->
              check Alcotest.int "ident restored" 77 e.Packet.ident
          | _ -> Alcotest.fail "not an echo reply"))

let test_napt_untranslatable () =
  let n = Napt.create ~public_addr:ext () in
  let err =
    Packet.icmp ~src:a1 ~dst:web
      (Packet.Time_exceeded { orig_src = a1; orig_dst = web })
  in
  check Alcotest.bool "icmp errors not translated" true
    (Napt.translate_out n err = None)

(* Property: out-then-in returns the original source endpoint. *)
let prop_napt_roundtrip =
  QCheck.Test.make ~name:"napt out/in is identity on the flow" ~count:200
    QCheck.(triple (int_bound 0xFFFF) (int_range 1 60_000) (int_range 1 60_000))
    (fun (host, sport, dport) ->
      let n = Napt.create ~public_addr:ext () in
      let inner_src = Addr.of_int (Addr.to_int a1 + (host mod 250)) in
      let out = udp ~src:inner_src ~dst:web ~sport ~dport () in
      match Napt.translate_out n out with
      | None -> false
      | Some t -> (
          let nat_port =
            match t.Packet.proto with
            | Packet.Udp u -> u.Packet.usport
            | _ -> -1
          in
          let reply =
            Packet.udp ~src:web ~dst:ext ~sport:dport ~dport:nat_port
              (Packet.Bytes_ 1)
          in
          match Napt.translate_in n reply with
          | Some r -> (
              Addr.equal r.Packet.dst inner_src
              &&
              match r.Packet.proto with
              | Packet.Udp u -> u.Packet.udport = sport
              | _ -> false)
          | None -> false))

(* --- batched data plane ------------------------------------------------- *)

module Batch = Vini_click.Batch
module Ring = Vini_click.Ring
module Pool = Vini_net.Pool

let test_ring_pump_order () =
  let seen = ref [] in
  let sink = Element.make "sink" (fun pkt -> seen := pkt.Packet.id :: !seen) in
  let ring = Ring.create ~capacity:16 in
  let batch = Batch.create ~capacity:8 in
  let pkts = List.init 10 (fun _ -> udp ()) in
  List.iter (fun p -> check Alcotest.bool "push" true (Ring.push ring p)) pkts;
  let n1 = Element.pump ring ~into:batch ~out:sink ~max:8 in
  let n2 = Element.pump ring ~into:batch ~out:sink ~max:8 in
  check Alcotest.int "first burst" 8 n1;
  check Alcotest.int "second burst" 2 n2;
  check Alcotest.int "ring drained" 0 (Ring.length ring);
  check
    Alcotest.(list int)
    "FIFO order across bursts"
    (List.map (fun (p : Packet.t) -> p.Packet.id) pkts)
    (List.rev !seen);
  check Alcotest.int "sink counted all" 10 (Element.packets sink)

let test_ring_backpressure () =
  let ring = Ring.create ~capacity:2 in
  check Alcotest.bool "1st" true (Ring.push ring (udp ()));
  check Alcotest.bool "2nd" true (Ring.push ring (udp ()));
  check Alcotest.bool "full ring refuses" false (Ring.push ring (udp ()));
  check Alcotest.int "length unchanged" 2 (Ring.length ring)

(* A pool drained mid-burst degrades deterministically: takes fail with
   exact, schedule-independent counts, and recycling restores service. *)
let test_pool_exhaustion_degrades () =
  let pool = Pool.create ~capacity:8 ~mint:(fun _ -> udp ()) () in
  let got = ref [] in
  for _ = 1 to 12 do
    match Pool.take_opt pool with
    | Some p -> got := p :: !got
    | None -> ()
  done;
  check Alcotest.int "took what existed" 8 (List.length !got);
  check Alcotest.int "exhaustions counted" 4 (Pool.exhaustions pool);
  check Alcotest.int "empty" 0 (Pool.available pool);
  (match !got with
  | a :: b :: c :: _ ->
      Pool.recycle pool a;
      Pool.recycle pool b;
      Pool.recycle pool c
  | _ -> Alcotest.fail "unreachable");
  check Alcotest.int "recycles restore service" 3 (Pool.available pool);
  (match Pool.take_opt pool with
  | Some _ -> ()
  | None -> Alcotest.fail "take after recycle must succeed");
  (* Overfill protection: more recycles than takes is counted, not
     trusted. *)
  let tiny = Pool.create ~capacity:1 ~mint:(fun _ -> udp ()) () in
  Pool.recycle tiny (udp ());
  check Alcotest.int "overfill ignored" 1 (Pool.overfills tiny)

(* The batched path delivers the same packets in the same order as a
   batch-size-1 run, through a chain whose faulty element draws one RNG
   decision per packet (same seed, same draws, same survivors). *)
let prop_batched_equals_single =
  let gen =
    QCheck.make
      QCheck.Gen.(
        pair (int_range 1 7)
          (list_size (int_range 1 60) (pair (int_range 0 3) (int_range 20 1400))))
      ~print:(fun (b, l) -> Printf.sprintf "burst=%d n=%d" b (List.length l))
  in
  QCheck.Test.make ~name:"batched chain = per-packet chain (order)" ~count:100
    gen (fun (burst, specs) ->
      let dsts =
        [| a2; Addr.of_string "10.0.0.3"; Addr.of_string "10.0.0.4"; a1 |]
      in
      let pkts =
        List.map (fun (d, size) -> udp ~dst:dsts.(d) ~size ()) specs
      in
      let run ~batched =
        let seen = ref [] in
        let sink =
          Element.make "sink" (fun pkt -> seen := pkt.Packet.id :: !seen)
        in
        let faulty =
          Faulty.create ~rng:(Vini_std.Rng.create 77) ~out:sink "lossy"
        in
        Faulty.set_mode faulty (Faulty.Lossy 0.3);
        let el = Faulty.element faulty in
        if not batched then List.iter (fun p -> Element.push el p) pkts
        else begin
          let b = Batch.create ~capacity:burst in
          List.iter
            (fun p ->
              if not (Batch.add b p) then begin
                Element.push_batch el b;
                Batch.clear b;
                ignore (Batch.add b p)
              end)
            pkts;
          if not (Batch.is_empty b) then Element.push_batch el b
        end;
        List.rev !seen
      in
      run ~batched:false = run ~batched:true)

(* The tentpole invariant: steady-state batched forwarding allocates
   nothing on the minor heap.  Pool-sourced packets cycle ring -> burst ->
   faulty -> sink -> pool; after warmup, [Gc.minor_words] across a long
   window must not move at all. *)
let test_batched_zero_alloc () =
  let pool =
    Pool.create ~capacity:64 ~mint:(fun i -> udp ~size:(64 + i) ()) ()
  in
  let sink =
    Element.make_batch "sink"
      ~single:(fun pkt -> Pool.recycle pool pkt)
      ~batch:(fun b ->
        for i = 0 to Batch.length b - 1 do
          Pool.recycle pool (Batch.unsafe_get b i)
        done)
  in
  let faulty = Faulty.create ~rng:(Vini_std.Rng.create 7) ~out:sink "pass" in
  let el = Faulty.element faulty in
  let ring = Ring.create ~capacity:64 in
  let batch = Batch.create ~capacity:32 in
  let breath () =
    for _ = 1 to 32 do
      if Pool.available pool > 0 then ignore (Ring.push ring (Pool.take pool))
    done;
    ignore (Element.pump ring ~into:batch ~out:el ~max:32)
  in
  (* Warmup forces the lazy filler, fills stats fields, and settles the
     pool/ring population. *)
  for _ = 1 to 10 do breath () done;
  let w0 = (Gc.quick_stat ()).Gc.minor_words in
  for _ = 1 to 1_000 do breath () done;
  let w1 = (Gc.quick_stat ()).Gc.minor_words in
  check Alcotest.int "zero minor words across steady-state window" 0
    (int_of_float (w1 -. w0));
  check Alcotest.int "no packet lost by the cycle" 64
    (Pool.available pool + Ring.length ring)

(* Corrupting a pooled packet swaps a fresh damaged record into the batch;
   the copy is what arrives (and fails the receiver's checksum), while the
   pool population stays at capacity because the sink recycles whatever
   record reaches it. *)
let test_batched_corruption_replaces_in_place () =
  let pool = Pool.create ~capacity:16 ~mint:(fun _ -> udp ()) () in
  let delivered = ref 0 and corrupt = ref 0 in
  let sink =
    Element.make "sink" (fun pkt ->
        if Packet.intact pkt then incr delivered else incr corrupt;
        Pool.recycle pool pkt)
  in
  let faulty = Faulty.create ~rng:(Vini_std.Rng.create 3) ~out:sink "corr" in
  Faulty.set_mode faulty (Faulty.Corrupting 0.5);
  let el = Faulty.element faulty in
  let b = Batch.create ~capacity:16 in
  for _ = 1 to 16 do ignore (Batch.add b (Pool.take pool)) done;
  Element.push_batch el b;
  check Alcotest.int "all packets arrived" 16 (!delivered + !corrupt);
  check Alcotest.int "corruption happened" (Faulty.corrupted faulty) !corrupt;
  check Alcotest.bool "some corrupted" true (!corrupt > 0);
  check Alcotest.int "pool back at capacity" 16 (Pool.available pool)

let suite =
  [
    Alcotest.test_case "fib longest match" `Quick test_fib_longest_match;
    Alcotest.test_case "fib default route" `Quick test_fib_default_route;
    Alcotest.test_case "fib replace/remove" `Quick test_fib_replace_and_remove;
    Alcotest.test_case "fib reports matched prefix" `Quick
      test_fib_lookup_prefix_reports_match;
    Alcotest.test_case "fib entries sorted" `Quick test_fib_entries_sorted;
    Alcotest.test_case "fib host routes" `Quick test_fib_host_routes;
    QCheck_alcotest.to_alcotest prop_fib_vs_linear;
    QCheck_alcotest.to_alcotest prop_fib_vs_reference;
    Alcotest.test_case "fib cache counts hits" `Quick test_fib_cache_counts_hits;
    Alcotest.test_case "fib cache invalidated on update" `Quick
      test_fib_cache_invalidated_on_update;
    Alcotest.test_case "fib cache negative results" `Quick
      test_fib_cache_negative_results;
    Alcotest.test_case "element counters" `Quick test_element_counters;
    Alcotest.test_case "element tee" `Quick test_element_tee;
    Alcotest.test_case "element classifier" `Quick test_element_classifier;
    Alcotest.test_case "element queue bound" `Quick test_element_queue_bound;
    Alcotest.test_case "shaper limits rate" `Quick test_shaper_limits_rate;
    Alcotest.test_case "shaper drops when full" `Quick test_shaper_drops_when_full;
    Alcotest.test_case "shaper set_rate" `Quick test_shaper_set_rate;
    Alcotest.test_case "failure injection modes" `Quick test_faulty_modes;
    Alcotest.test_case "napt udp roundtrip" `Quick test_napt_udp_roundtrip;
    Alcotest.test_case "napt stable mapping" `Quick test_napt_stable_mapping;
    Alcotest.test_case "napt rejects strangers" `Quick test_napt_rejects_strangers;
    Alcotest.test_case "napt icmp echo" `Quick test_napt_icmp;
    Alcotest.test_case "napt untranslatable" `Quick test_napt_untranslatable;
    QCheck_alcotest.to_alcotest prop_napt_roundtrip;
    Alcotest.test_case "ring pump preserves order" `Quick test_ring_pump_order;
    Alcotest.test_case "ring backpressure" `Quick test_ring_backpressure;
    Alcotest.test_case "pool exhaustion degrades deterministically" `Quick
      test_pool_exhaustion_degrades;
    Alcotest.test_case "batched steady state allocates nothing" `Quick
      test_batched_zero_alloc;
    Alcotest.test_case "batched corruption swaps fresh records" `Quick
      test_batched_corruption_replaces_in_place;
    QCheck_alcotest.to_alcotest prop_batched_equals_single;
  ]
