(* Tests for the rcc pipeline: config parsing, fault auditing, topology
   construction, and the embedded Abilene dataset. *)

module Config = Vini_rcc.Config
module Rcc = Vini_rcc.Rcc
module Graph = Vini_topo.Graph

let check = Alcotest.check

let sample =
  {|
hostname R1
router ospf 1
  hello-interval 5
  dead-interval 10
interface ge-0/0/0
  description to R2
  bandwidth 10000000
  delay 8000
  ip ospf cost 800
!
|}

let counterpart =
  {|
hostname R2
router ospf 1
  hello-interval 5
  dead-interval 10
interface ge-0/0/0
  description to R1
  bandwidth 10000000
  delay 8000
  ip ospf cost 800
!
|}

let parse_ok text =
  match Config.parse text with
  | Ok cfg -> cfg
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_parse_basic () =
  let cfg = parse_ok sample in
  check Alcotest.string "hostname" "R1" cfg.Config.hostname;
  check Alcotest.bool "ospf on" true cfg.Config.ospf;
  check Alcotest.(option int) "hello" (Some 5) cfg.Config.hello_interval_s;
  check Alcotest.(option int) "dead" (Some 10) cfg.Config.dead_interval_s;
  match cfg.Config.ifaces with
  | [ i ] ->
      check Alcotest.string "peer" "R2" i.Config.peer;
      check Alcotest.int "cost" 800 i.Config.ospf_cost;
      check Alcotest.int "delay" 8000 i.Config.delay_us;
      check Alcotest.int "bandwidth" 10_000_000 i.Config.bandwidth_kbps
  | _ -> Alcotest.fail "expected one interface"

let test_parse_default_cost_from_bandwidth () =
  let text =
    "hostname R\ninterface ge-0\n  description to S\n  bandwidth 100000\n!"
  in
  let cfg = parse_ok text in
  match cfg.Config.ifaces with
  | [ i ] ->
      (* 100 Mb/s reference / 100 Mb/s -> cost 1 *)
      check Alcotest.int "cisco default" 1 i.Config.ospf_cost
  | _ -> Alcotest.fail "expected one interface"

let test_parse_errors () =
  let expect_err text =
    match Config.parse text with
    | Ok _ -> Alcotest.failf "should not parse: %s" text
    | Error _ -> ()
  in
  expect_err "interface e0\n  description to X\n!";
  (* no hostname *)
  expect_err "hostname A\nhostname B";
  (* duplicate *)
  expect_err "hostname A\ninterface e0\n!";
  (* iface without peer *)
  expect_err "hostname A\nfrobnicate 7";
  (* unknown directive *)
  expect_err "hostname A\ninterface e0\n  description to B\n  delay x\n!"

let test_parse_many_splits () =
  match Config.parse_many (sample ^ "\n" ^ counterpart) with
  | Ok [ r1; r2 ] ->
      check Alcotest.string "first" "R1" r1.Config.hostname;
      check Alcotest.string "second" "R2" r2.Config.hostname
  | Ok _ -> Alcotest.fail "expected two routers"
  | Error e -> Alcotest.failf "parse_many failed: %s" e

let test_audit_clean_pair () =
  match Config.parse_many (sample ^ counterpart) with
  | Ok cfgs -> check Alcotest.(list string) "no faults" [] (Rcc.audit cfgs)
  | Error e -> Alcotest.failf "parse: %s" e

let test_audit_detects_faults () =
  let broken_reverse =
    sample
    ^ {|
hostname R2
router ospf 1
  hello-interval 5
  dead-interval 10
interface ge-0/0/0
  description to R1
  bandwidth 10000000
  delay 8000
  ip ospf cost 999
!
|}
  in
  (match Config.parse_many broken_reverse with
  | Ok cfgs ->
      let faults = Rcc.audit cfgs in
      check Alcotest.bool "asymmetric cost flagged" true
        (List.exists
           (fun f ->
             let has sub =
               let n = String.length sub in
               let rec go i =
                 i + n <= String.length f && (String.sub f i n = sub || go (i + 1))
               in
               go 0
             in
             has "asymmetric ospf cost")
           faults)
  | Error e -> Alcotest.failf "parse: %s" e);
  (* Dangling peer. *)
  match Config.parse_many sample with
  | Ok cfgs ->
      check Alcotest.bool "unknown router flagged" true (Rcc.audit cfgs <> [])
  | Error e -> Alcotest.failf "parse: %s" e

let test_build_topology () =
  match Config.parse_many (sample ^ counterpart) with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok cfgs -> (
      match Rcc.build_topology cfgs with
      | Error e -> Alcotest.failf "build: %s" e
      | Ok g ->
          check Alcotest.int "two nodes" 2 (Graph.node_count g);
          check Alcotest.int "one link" 1 (Graph.link_count g);
          let l = List.hd (Graph.links g) in
          check Alcotest.int "weight from cost" 800 l.Graph.weight;
          check (Alcotest.float 0.001) "delay from config" 8.0
            (Vini_sim.Time.to_ms_f l.Graph.delay))

let test_abilene_pipeline () =
  let g = Rcc.abilene () in
  check Alcotest.int "11 routers" 11 (Graph.node_count g);
  check Alcotest.int "14 links" 14 (Graph.link_count g);
  (* The rcc-derived topology must agree with the hand-built dataset up to
     naming: same degree sequence and same total weight. *)
  let hand = Vini_topo.Datasets.Abilene.topology () in
  let weight_sum g =
    List.fold_left (fun acc (l : Graph.link) -> acc + l.Graph.weight) 0 (Graph.links g)
  in
  check Alcotest.int "same total weight" (weight_sum hand) (weight_sum g);
  let degrees g =
    List.sort compare
      (List.map (fun v -> List.length (Graph.neighbors g v)) (Graph.nodes g))
  in
  check Alcotest.(list int) "same degree sequence" (degrees hand) (degrees g)

(* Property: emit_configs o build_topology is the identity (up to node
   naming sanitisation) on random Waxman graphs. *)
let prop_emit_parse_roundtrip =
  QCheck.Test.make ~name:"emit_configs round-trips through the parser"
    ~count:60
    QCheck.(pair (int_range 2 15) (int_bound 10_000))
    (fun (n, seed) ->
      let g = Vini_topo.Datasets.waxman ~rng:(Vini_std.Rng.create seed) ~n () in
      let text = Rcc.emit_configs g in
      match Config.parse_many text with
      | Error _ -> false
      | Ok cfgs -> (
          Rcc.audit cfgs = []
          &&
          match Rcc.build_topology cfgs with
          | Error _ -> false
          | Ok g2 ->
              Graph.node_count g = Graph.node_count g2
              && Graph.link_count g = Graph.link_count g2
              && List.for_all2
                   (fun (l1 : Graph.link) (l2 : Graph.link) ->
                     (* The dialect carries microseconds; compare at that
                        granularity. *)
                     let us t = (t : Vini_sim.Time.t) / 1000 in
                     l1.Graph.a = l2.Graph.a && l1.Graph.b = l2.Graph.b
                     && l1.Graph.weight = l2.Graph.weight
                     && us l1.Graph.delay = us l2.Graph.delay)
                   (List.sort compare (Graph.links g))
                   (List.sort compare (Graph.links g2))))

let test_emit_abilene_is_clean () =
  (* Emitting the Abilene mirror back out reproduces an auditable file. *)
  let g = Rcc.abilene () in
  let text = Rcc.emit_configs g in
  match Config.parse_many text with
  | Error e -> Alcotest.failf "emit failed to parse: %s" e
  | Ok cfgs ->
      check Alcotest.(list string) "clean audit" [] (Rcc.audit cfgs);
      check Alcotest.int "11 routers" 11 (List.length cfgs)

let test_config_generators () =
  let g = Rcc.abilene () in
  let xorp = Rcc.xorp_config g 0 in
  let click = Rcc.click_config g 0 in
  let has hay sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length hay && (String.sub hay i n = sub || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "xorp mentions ospf4" true (has xorp "ospf4");
  check Alcotest.bool "xorp sets dead interval" true (has xorp "router-dead-interval: 10");
  check Alcotest.bool "click has tunnels" true (has click "Socket(UDP");
  check Alcotest.bool "click has droplink" true (has click "DropLink")

let suite =
  [
    Alcotest.test_case "parse basic config" `Quick test_parse_basic;
    Alcotest.test_case "parse default cost" `Quick test_parse_default_cost_from_bandwidth;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "parse_many splits" `Quick test_parse_many_splits;
    Alcotest.test_case "audit clean pair" `Quick test_audit_clean_pair;
    Alcotest.test_case "audit detects faults" `Quick test_audit_detects_faults;
    Alcotest.test_case "build topology" `Quick test_build_topology;
    Alcotest.test_case "abilene dataset pipeline" `Quick test_abilene_pipeline;
    Alcotest.test_case "xorp/click generators" `Quick test_config_generators;
    QCheck_alcotest.to_alcotest prop_emit_parse_roundtrip;
    Alcotest.test_case "emit abilene is clean" `Quick test_emit_abilene_is_clean;
  ]
