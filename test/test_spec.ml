(* Tests for the textual experiment-specification language (§6.2). *)

module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Graph = Vini_topo.Graph
module Spec_lang = Vini_core.Spec_lang
module Experiment = Vini_core.Experiment
module Vini = Vini_core.Vini
module Iias = Vini_overlay.Iias

let check = Alcotest.check

let link a b =
  { Graph.a; b; bandwidth_bps = 1e9; delay = Time.ms 1; loss = 0.0; weight = 1 }

let phys () =
  Graph.relabel "five-ring"
  @@ Graph.create
       ~names:[| "pop0"; "pop1"; "pop2"; "pop3"; "pop4" |]
       ~links:[ link 0 1; link 1 2; link 2 3; link 3 4; link 4 0 ]

let parse_ok text =
  match Spec_lang.parse text with
  | Ok p -> p
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_example_parses_and_elaborates () =
  let p = parse_ok Spec_lang.example in
  check Alcotest.string "name" "ring-demo" (Spec_lang.name p);
  let g = Spec_lang.vtopo p in
  check Alcotest.int "nodes" 4 (Graph.node_count g);
  check Alcotest.int "links" 4 (Graph.link_count g);
  match Spec_lang.to_spec p ~phys:(phys ()) with
  | Ok spec ->
      check Alcotest.int "events elaborated" 5
        (List.length spec.Experiment.events);
      check Alcotest.bool "validates" true (Experiment.validate spec = Ok ())
  | Error e -> Alcotest.failf "to_spec failed: %s" e

let test_units () =
  let p =
    parse_ok
      {|experiment units
node a
node b
link a b bw 2.5m delay 250us weight 7 loss 0.25
|}
  in
  let g = Spec_lang.vtopo p in
  let l = List.hd (Graph.links g) in
  check (Alcotest.float 1.0) "bw" 2.5e6 l.Graph.bandwidth_bps;
  check (Alcotest.float 0.001) "delay" 0.25 (Time.to_ms_f l.Graph.delay);
  check Alcotest.int "weight" 7 l.Graph.weight;
  check (Alcotest.float 1e-9) "loss" 0.25 l.Graph.loss

let test_slice_forms () =
  let slice_of text =
    (Spec_lang.slice (parse_ok ("experiment s\nnode a\n" ^ text)))
  in
  let s = slice_of "slice fair" in
  check (Alcotest.float 0.0) "fair: no reservation" 0.0 s.Vini_phys.Slice.reservation;
  check Alcotest.bool "fair: no rt" false s.Vini_phys.Slice.realtime;
  let s = slice_of "slice reserved 0.4 rt" in
  check (Alcotest.float 1e-9) "reserved" 0.4 s.Vini_phys.Slice.reservation;
  check Alcotest.bool "rt" true s.Vini_phys.Slice.realtime;
  let s = slice_of "slice plvini" in
  check (Alcotest.float 1e-9) "plvini reservation" 0.25 s.Vini_phys.Slice.reservation

let expect_parse_error text frag =
  match Spec_lang.parse text with
  | Ok _ -> Alcotest.failf "expected failure (%s)" frag
  | Error e ->
      let has =
        let n = String.length frag in
        let rec go i =
          i + n <= String.length e && (String.sub e i n = frag || go (i + 1))
        in
        go 0
      in
      check Alcotest.bool (Printf.sprintf "error mentions %S (got %S)" frag e)
        true has

let test_parse_errors () =
  expect_parse_error "node a\n" "missing experiment";
  expect_parse_error "experiment x\n" "no nodes";
  expect_parse_error "experiment x\nnode a\nnode a\n" "duplicate node";
  expect_parse_error "experiment x\nnode a\nlink a b\n" "unknown node";
  expect_parse_error "experiment x\nnode a\nnode b\nlink a b\nlink b a\n"
    "duplicate link";
  expect_parse_error "experiment x\nnode a\nnode b\nlink a b bw -3\n"
    "bad bandwidth";
  expect_parse_error "experiment x\nnode a\nat 5 explode a\n" "unknown event";
  expect_parse_error "experiment x\nnode a\nnode b\nat -1 fail-link a b\n"
    "before t=0";
  expect_parse_error
    "experiment x\nnode a\nnode b\nrouting ospf hello 10 dead 5\n"
    "hello < dead";
  expect_parse_error "experiment x\nnode a\nfrobnicate\n" "unknown directive"

let test_embedding_resolution () =
  (* Explicit embed + same-name + free-index fallback. *)
  let text =
    {|experiment embed-test
node pop2
node x
node y
link pop2 x
link x y
embed y on pop4
|}
  in
  let p = parse_ok text in
  match Spec_lang.to_spec p ~phys:(phys ()) with
  | Error e -> Alcotest.failf "to_spec: %s" e
  | Ok spec -> (
      (* Embed lines are pins on an Auto placement now; solving it against
         the bare substrate shows the resolution: pop2 matches by name -> 2,
         y pinned to pop4 -> 4, x is placed by the solver (all residuals
         equal, ties break to the lowest id) -> 0. *)
      let req =
        match spec.Experiment.placement with
        | Experiment.Auto r -> r
        | Experiment.Pinned _ -> Alcotest.fail "expected an Auto placement"
      in
      let sub = Vini_embed.Substrate.of_graph (phys ()) in
      match Vini_embed.Embed.solve sub ~vtopo:spec.Experiment.vtopo req with
      | Error r ->
          Alcotest.failf "solve: %s" (Vini_embed.Embed.rejection_to_string r)
      | Ok m ->
          check Alcotest.int "same-name" 2 m.Vini_embed.Embed.nodes.(0);
          check Alcotest.int "free index" 0 m.Vini_embed.Embed.nodes.(1);
          check Alcotest.int "explicit" 4 m.Vini_embed.Embed.nodes.(2))

let test_duplicate_embed_rejected () =
  (* Satellite regression: a second embed line for the same virtual node
     (or the same physical target) is a parse error, not a silent
     last-one-wins. *)
  expect_parse_error
    "experiment x\nnode a\nnode b\nlink a b\nembed a on pop0\nembed a on \
     pop1\n"
    "duplicate embed for \"a\"";
  expect_parse_error
    "experiment x\nnode a\nnode b\nlink a b\nembed a on pop0\nembed b on \
     pop0\n"
    "duplicate embed target \"pop0\""

let test_embedding_errors () =
  let p =
    parse_ok
      "experiment e\nnode a\nnode b\nlink a b\nembed a on nowhere\n"
  in
  (match Spec_lang.to_spec p ~phys:(phys ()) with
  | Error e ->
      (* Satellite regression: the error must name the missing node AND
         which substrate was searched — never a bare Not_found. *)
      let mentions frag =
        let n = String.length frag in
        let rec go i =
          i + n <= String.length e && (String.sub e i n = frag || go (i + 1))
        in
        go 0
      in
      check Alcotest.bool
        (Printf.sprintf "error names the node (got %S)" e)
        true (mentions "nowhere");
      check Alcotest.bool
        (Printf.sprintf "error names the substrate (got %S)" e)
        true (mentions "five-ring")
  | Ok _ -> Alcotest.fail "expected unknown physical node error");
  (* More virtual nodes than physical nodes. *)
  let big =
    "experiment big\n"
    ^ String.concat "\n" (List.init 6 (Printf.sprintf "node n%d"))
    ^ "\n"
    ^ String.concat "\n"
        (List.init 5 (fun i -> Printf.sprintf "link n%d n%d" i (i + 1)))
    ^ "\n"
  in
  match Spec_lang.to_spec (parse_ok big) ~phys:(phys ()) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected substrate-too-small error"

let test_spec_runs_end_to_end () =
  (* Load the example spec, deploy it, and check the timeline acts. *)
  let engine = Engine.create ~seed:99 () in
  let vini = Vini.create ~engine ~graph:(phys ()) () in
  let spec =
    match Spec_lang.load Spec_lang.example ~phys:(phys ()) with
    | Ok s -> s
    | Error e -> Alcotest.failf "load: %s" e
  in
  let inst = Vini.deploy vini spec in
  Vini.start inst;
  let iias = Vini.iias inst in
  Engine.run ~until:(Time.sec 5) engine;
  check Alcotest.bool "link up early" true (Iias.vlink_is_up iias 0 1);
  Engine.run ~until:(Time.sec 15) engine;
  check Alcotest.bool "failed at 10" false (Iias.vlink_is_up iias 0 1);
  Engine.run ~until:(Time.sec 25) engine;
  check Alcotest.int "cost changed at 20" 4000 (Iias.vlink_cost iias 2 3);
  Engine.run ~until:(Time.sec 36) engine;
  check Alcotest.bool "restored at 34" true (Iias.vlink_is_up iias 0 1)

(* The five chaos verbs: parse -> elaborate round-trip onto the typed
   actions, plus the bad-value rejections. *)
let test_chaos_verbs_roundtrip () =
  let text =
    {|experiment chaos-verbs
node a
node b
node c
link a b
link b c
at 5 crash-node b
at 12 restore-node b
at 20 kill-process c
at 25 flap-link a b 3.5
at 30 corrupt-link b c 0.02
at 40 corrupt-link b c 0
|}
  in
  match Spec_lang.to_spec (parse_ok text) ~phys:(phys ()) with
  | Error e -> Alcotest.failf "to_spec: %s" e
  | Ok spec ->
      check Alcotest.bool "chaos timeline validates" true
        (Experiment.validate spec = Ok ());
      let rendered =
        List.map
          (fun ev ->
            Printf.sprintf "%g %s"
              (Time.to_sec_f ev.Experiment.at)
              (Experiment.action_to_string ev.Experiment.action))
          spec.Experiment.events
      in
      check
        (Alcotest.list Alcotest.string)
        "elaborated actions"
        [
          "5 crash-node 1";
          "12 restore-node 1";
          "20 kill-process 2";
          "25 flap-link 0 1 3.5";
          "30 corrupt-link 1 2 0.02";
          "40 corrupt-link 1 2 0";
        ]
        rendered

let test_chaos_verb_errors () =
  let expect_elab_error text frag =
    let full = "experiment bad\nnode a\nnode b\nlink a b\n" ^ text ^ "\n" in
    match Spec_lang.to_spec (parse_ok full) ~phys:(phys ()) with
    | Ok _ -> Alcotest.failf "expected elaboration failure (%s)" frag
    | Error e ->
        let has =
          let n = String.length frag in
          let rec go i =
            i + n <= String.length e && (String.sub e i n = frag || go (i + 1))
          in
          go 0
        in
        check Alcotest.bool
          (Printf.sprintf "error mentions %S (got %S)" frag e)
          true has
  in
  expect_elab_error "at 5 flap-link a b 0" "bad flap downtime";
  expect_elab_error "at 5 flap-link a b -2" "bad flap downtime";
  expect_elab_error "at 5 corrupt-link a b 1.5" "bad corruption probability";
  expect_elab_error "at 5 corrupt-link a b x" "bad corruption probability";
  expect_elab_error "at 5 crash-node z" "unknown node";
  (* Arity is already a parse error, like any other verb. *)
  expect_parse_error "experiment x\nnode a\nnode b\nat 5 flap-link a b\n"
    "expects 3"

(* Property: rendering a random topology as spec text and parsing it back
   reproduces the graph (nodes, links, weights, delays). *)
let prop_spec_topology_roundtrip =
  QCheck.Test.make ~name:"spec text round-trips random topologies" ~count:60
    QCheck.(pair (int_range 2 12) (int_bound 10_000))
    (fun (n, seed) ->
      let g = Vini_topo.Datasets.waxman ~rng:(Vini_std.Rng.create seed) ~n () in
      let buf = Buffer.create 512 in
      Buffer.add_string buf "experiment roundtrip\n";
      List.iter
        (fun v -> Buffer.add_string buf (Printf.sprintf "node %s\n" (Graph.name g v)))
        (Graph.nodes g);
      List.iter
        (fun (l : Graph.link) ->
          Buffer.add_string buf
            (Printf.sprintf "link %s %s bw %.0f delay %dus weight %d\n"
               (Graph.name g l.Graph.a) (Graph.name g l.Graph.b)
               l.Graph.bandwidth_bps
               (l.Graph.delay / 1000)
               l.Graph.weight))
        (Graph.links g);
      match Spec_lang.parse (Buffer.contents buf) with
      | Error _ -> false
      | Ok parsed ->
          let g2 = Spec_lang.vtopo parsed in
          Graph.node_count g = Graph.node_count g2
          && Graph.link_count g = Graph.link_count g2
          && List.for_all2
               (fun (l1 : Graph.link) (l2 : Graph.link) ->
                 let us t = (t : Vini_sim.Time.t) / 1000 in
                 l1.Graph.a = l2.Graph.a && l1.Graph.b = l2.Graph.b
                 && l1.Graph.weight = l2.Graph.weight
                 && us l1.Graph.delay = us l2.Graph.delay)
               (List.sort compare (Graph.links g))
               (List.sort compare (Graph.links g2)))

(* The migrate verb names a virtual node and a *physical* target, so it
   elaborates in [to_spec] where the substrate graph is in scope. *)
let test_migrate_verb () =
  let text =
    {|experiment mig
node a
node b
link a b
at 7 migrate b pop3
|}
  in
  (match Spec_lang.to_spec (parse_ok text) ~phys:(phys ()) with
  | Error e -> Alcotest.failf "to_spec: %s" e
  | Ok spec -> (
      check Alcotest.bool "validates" true (Experiment.validate spec = Ok ());
      match spec.Experiment.events with
      | [ ev ] ->
          check Alcotest.string "elaborated" "migrate 1 3"
            (Experiment.action_to_string ev.Experiment.action)
      | evs -> Alcotest.failf "expected one event, got %d" (List.length evs)));
  let expect_elab_error text frag =
    let full = "experiment bad\nnode a\nnode b\nlink a b\n" ^ text ^ "\n" in
    match Spec_lang.to_spec (parse_ok full) ~phys:(phys ()) with
    | Ok _ -> Alcotest.failf "expected elaboration failure (%s)" frag
    | Error e ->
        let has =
          let n = String.length frag in
          let rec go i =
            i + n <= String.length e && (String.sub e i n = frag || go (i + 1))
          in
          go 0
        in
        check Alcotest.bool
          (Printf.sprintf "error mentions %S (got %S)" frag e)
          true has
  in
  expect_elab_error "at 5 migrate z pop3" "unknown node";
  expect_elab_error "at 5 migrate b pop9" "unknown physical node";
  expect_parse_error "experiment x\nnode a\nat 5 migrate a\n" "expects 2"

let test_domains_verb () =
  (* Default: a spec without the verb runs single-domain. *)
  let p = parse_ok "experiment d\nnode a\n" in
  (match Spec_lang.to_spec p ~phys:(phys ()) with
  | Ok spec -> check Alcotest.int "default domains" 1 spec.Experiment.domains
  | Error e -> Alcotest.failf "to_spec: %s" e);
  (* Explicit count flows through to the validated spec. *)
  let p = parse_ok "experiment d\nnode a\ndomains 4\n" in
  (match Spec_lang.to_spec p ~phys:(phys ()) with
  | Ok spec ->
      check Alcotest.int "domains 4" 4 spec.Experiment.domains;
      check Alcotest.bool "validates" true (Experiment.validate spec = Ok ())
  | Error e -> Alcotest.failf "to_spec: %s" e);
  (* Bad counts and duplicates are parse errors. *)
  let fails text =
    match Spec_lang.parse text with Ok _ -> false | Error _ -> true
  in
  check Alcotest.bool "domains 0 rejected" true
    (fails "experiment d\nnode a\ndomains 0\n");
  check Alcotest.bool "domains -2 rejected" true
    (fails "experiment d\nnode a\ndomains -2\n");
  check Alcotest.bool "non-numeric rejected" true
    (fails "experiment d\nnode a\ndomains many\n");
  check Alcotest.bool "duplicate rejected" true
    (fails "experiment d\nnode a\ndomains 2\ndomains 4\n");
  (* Validation rejects a hand-built spec with a bad count. *)
  match Spec_lang.to_spec (parse_ok "experiment d\nnode a\n") ~phys:(phys ()) with
  | Error e -> Alcotest.failf "to_spec: %s" e
  | Ok spec ->
      check Alcotest.bool "validate rejects domains 0" true
        (Experiment.validate { spec with Experiment.domains = 0 } <> Ok ())

let suite =
  [
    Alcotest.test_case "example parses+elaborates" `Quick
      test_example_parses_and_elaborates;
    Alcotest.test_case "bandwidth/delay units" `Quick test_units;
    Alcotest.test_case "slice forms" `Quick test_slice_forms;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "embedding resolution" `Quick test_embedding_resolution;
    Alcotest.test_case "duplicate embed rejected" `Quick
      test_duplicate_embed_rejected;
    Alcotest.test_case "embedding errors" `Quick test_embedding_errors;
    Alcotest.test_case "spec runs end to end" `Quick test_spec_runs_end_to_end;
    Alcotest.test_case "chaos verbs round-trip" `Quick
      test_chaos_verbs_roundtrip;
    Alcotest.test_case "chaos verb errors" `Quick test_chaos_verb_errors;
    Alcotest.test_case "migrate verb" `Quick test_migrate_verb;
    Alcotest.test_case "domains verb" `Quick test_domains_verb;
    QCheck_alcotest.to_alcotest prop_spec_topology_roundtrip;
  ]
