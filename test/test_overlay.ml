(* Integration tests: the IIAS overlay end to end. *)

module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Graph = Vini_topo.Graph
module Datasets = Vini_topo.Datasets
module Underlay = Vini_phys.Underlay
module Slice = Vini_phys.Slice
module Iias = Vini_overlay.Iias
module Ipstack = Vini_phys.Ipstack
module Ping = Vini_measure.Ping

let check = Alcotest.check

(* A 3-node dedicated-hardware chain with IIAS mirrored onto it. *)
let make_chain ?(routing = Iias.default_ospf) () =
  let engine = Engine.create ~seed:7 () in
  let graph = Datasets.Deter.topology () in
  let underlay =
    Underlay.create ~engine
      ~rng:(Vini_std.Rng.split (Engine.rng engine))
      ~graph ()
  in
  let slice = Slice.pl_vini "test" in
  let iias =
    Iias.create ~underlay ~slice ~vtopo:graph ~embedding:Fun.id ~routing ()
  in
  Iias.start iias;
  (engine, iias)

let converge engine = Engine.run ~until:(Time.sec 20) engine

let test_ospf_converges () =
  let engine, iias = make_chain () in
  converge engine;
  let v0 = Iias.vnode iias 0 in
  let v2 = Iias.vnode iias 2 in
  (* Node 0 must know node 2's tap address via OSPF. *)
  let entries = Iias.fib_entries v0 in
  let tap2 = Iias.tap_addr v2 in
  let found =
    List.exists
      (fun (p, _) -> Vini_net.Prefix.contains p tap2)
      entries
  in
  check Alcotest.bool "route to remote tap present" true found;
  match Iias.ospf v0 with
  | None -> Alcotest.fail "no ospf instance"
  | Some o ->
      check Alcotest.bool "spf ran" true (Vini_routing.Ospf.spf_runs o > 0);
      check Alcotest.int "one full adjacency on end node" 1
        (List.length (Vini_routing.Ospf.full_neighbors o))

let test_ping_across_overlay () =
  let engine, iias = make_chain () in
  converge engine;
  let v0 = Iias.vnode iias 0 and v2 = Iias.vnode iias 2 in
  let ping =
    Ping.start ~stack:(Iias.tap v0) ~dst:(Iias.tap_addr v2) ~count:200 ()
  in
  Engine.run ~until:(Time.sec 40) engine;
  check Alcotest.int "all pings answered" 200 (Ping.received ping);
  let rtts = Ping.rtt_ms ping in
  let avg = Vini_std.Stats.mean rtts in
  check Alcotest.bool
    (Printf.sprintf "rtt sane (%.3f ms)" avg)
    true
    (avg > 0.1 && avg < 5.0)

let test_flight_recorder_across_overlay () =
  (* End to end: record a ping crossing the full overlay and check the
     causal tree has every attribution category, inherited provenance
     across UDP-tunnel encapsulation, and a forensic path for a
     TTL-doomed packet. *)
  let module Sspan = Vini_sim.Span in
  let module Mspan = Vini_measure.Span in
  let module Trace = Vini_sim.Trace in
  let module Packet = Vini_net.Packet in
  let engine, iias = make_chain () in
  converge engine;
  let tr = Trace.create ~categories:[ Trace.Category.Span ] () in
  Trace.install tr;
  let r = Sspan.create ~capacity:65_536 () in
  Sspan.install r;
  let v0 = Iias.vnode iias 0 and v2 = Iias.vnode iias 2 in
  let ping =
    Ping.start ~stack:(Iias.tap v0) ~dst:(Iias.tap_addr v2) ~count:20 ()
  in
  ignore
    (Engine.at engine (Time.sec 21) (fun () ->
         Ipstack.send (Iias.tap v0)
           (Packet.udp ~ttl:1 ~src:(Iias.tap_addr v0) ~dst:(Iias.tap_addr v2)
              ~sport:40000 ~dport:40001
              (Packet.Probe { Packet.flow = 1; seq = 0; sent_ns = 0; pad = 8 }))));
  Engine.run ~until:(Time.sec 30) engine;
  Sspan.uninstall ();
  Trace.uninstall ();
  check Alcotest.int "pings still delivered while recording" 20
    (Ping.received ping);
  let trees = Mspan.trees r in
  check Alcotest.bool "trees recorded" true (trees <> []);
  (* Every attribution category shows up somewhere on a loaded overlay. *)
  let rows = Mspan.breakdown trees in
  List.iter
    (fun row ->
      check Alcotest.bool
        (Sspan.attribution_name row.Mspan.attribution ^ " hops present")
        true (row.Mspan.hop_count > 0))
    rows;
  (* Encapsulation inherits provenance: some tree carries a hop or origin
     whose packet id differs from the tree's root id (the outer tunnel
     frame continuing the inner packet's tree). *)
  check Alcotest.bool "encap continues the inner packet's tree" true
    (List.exists
       (fun t ->
         List.exists (fun (h : Mspan.hop) -> h.Mspan.h_pkt <> t.Mspan.tree_orig) t.Mspan.hops
         || List.exists
              (fun (o : Mspan.origin) -> o.Mspan.o_pkt <> t.Mspan.tree_orig)
              t.Mspan.origins)
       trees);
  (* The TTL-doomed probe died with a non-empty path-so-far. *)
  let forensics = Mspan.forensics trees in
  let ttl =
    List.filter (fun f -> f.Mspan.f_reason = "ttl-expired") forensics
  in
  check Alcotest.bool "ttl probe produced a forensic record" true (ttl <> []);
  List.iter
    (fun f ->
      check Alcotest.bool "forensic path non-empty" true (f.Mspan.f_path <> []))
    forensics

let test_vlink_failure_and_reconvergence () =
  (* Square topology: 0-1-2 and 0-3-2 as alternate path. *)
  let engine = Engine.create ~seed:11 () in
  let mk a b w =
    {
      Graph.a;
      b;
      bandwidth_bps = 1e9;
      delay = Time.ms 1;
      loss = 0.0;
      weight = w;
    }
  in
  let graph =
    Graph.create
      ~names:[| "n0"; "n1"; "n2"; "n3" |]
      ~links:[ mk 0 1 10; mk 1 2 10; mk 0 3 100; mk 2 3 100 ]
  in
  let underlay =
    Underlay.create ~engine
      ~rng:(Vini_std.Rng.split (Engine.rng engine))
      ~graph ()
  in
  let slice = Slice.pl_vini "sq" in
  let iias =
    Iias.create ~underlay ~slice ~vtopo:graph ~embedding:Fun.id ()
  in
  Iias.start iias;
  Engine.run ~until:(Time.sec 20) engine;
  let v0 = Iias.vnode iias 0 and v2 = Iias.vnode iias 2 in
  (* Steady state: pinging works over the cheap path. *)
  let p1 =
    Ping.start ~stack:(Iias.tap v0) ~dst:(Iias.tap_addr v2) ~count:20 ()
  in
  Engine.run ~until:(Time.sec 25) engine;
  check Alcotest.int "pre-failure pings" 20 (Ping.received p1);
  (* Fail the virtual link 0-1 inside Click; OSPF must re-route via 3. *)
  Iias.set_vlink_state iias 0 1 false;
  Engine.run ~until:(Time.sec 45) engine;
  let p2 =
    Ping.start ~stack:(Iias.tap v0) ~dst:(Iias.tap_addr v2) ~count:20 ()
  in
  Engine.run ~until:(Time.sec 55) engine;
  check Alcotest.int "post-failure pings via alternate path" 20
    (Ping.received p2);
  (* The alternate path is two 100-weight links: metric 200 at node 0. *)
  let rib = Iias.rib v0 in
  let tap2_prefix = Vini_net.Prefix.make (Iias.tap_addr v2) 32 in
  (match Vini_routing.Rib.best rib tap2_prefix with
  | Some r -> check Alcotest.int "rerouted metric" 200 r.Vini_routing.Rib.metric
  | None -> Alcotest.fail "no route after reconvergence");
  (* Restore: back to metric 20. *)
  Iias.set_vlink_state iias 0 1 true;
  Engine.run ~until:(Time.sec 80) engine;
  match Vini_routing.Rib.best rib tap2_prefix with
  | Some r -> check Alcotest.int "restored metric" 20 r.Vini_routing.Rib.metric
  | None -> Alcotest.fail "no route after restore"

let test_tcp_over_overlay () =
  let engine, iias = make_chain () in
  converge engine;
  let v0 = Iias.vnode iias 0 and v2 = Iias.vnode iias 2 in
  let server = Iias.tap v2 and client = Iias.tap v0 in
  let delivered = ref 0 in
  Vini_transport.Tcp.listen ~stack:server ~port:5001
    ~on_accept:(fun conn ->
      Vini_transport.Tcp.on_deliver conn (fun n -> delivered := !delivered + n))
    ();
  let conn =
    Vini_transport.Tcp.connect ~stack:client ~dst:(Iias.tap_addr v2)
      ~dst_port:5001 ()
  in
  Vini_transport.Tcp.send conn 300_000;
  Vini_transport.Tcp.close conn;
  Engine.run ~until:(Time.sec 60) engine;
  check Alcotest.int "all bytes delivered in order" 300_000 !delivered

let test_opt_in_and_nat_egress () =
  (* Chain of 3 IIAS nodes; an external client opts in via OpenVPN at node
     0; an external web server hangs off node 2's site.  Node 2 is the
     egress.  The client's pings to the web server must flow through the
     overlay, NAT out at node 2, and return. *)
  let engine = Engine.create ~seed:21 () in
  let mk a b =
    {
      Graph.a;
      b;
      bandwidth_bps = 1e9;
      delay = Time.ms 2;
      loss = 0.0;
      weight = 1;
    }
  in
  (* Physical: 0,1,2 backbone; 3 = client host near 0; 4 = web server near 2. *)
  let graph =
    Graph.create
      ~names:[| "p0"; "p1"; "p2"; "client"; "webserver" |]
      ~links:[ mk 0 1; mk 1 2; mk 0 3; mk 2 4 ]
  in
  let underlay =
    Underlay.create ~engine
      ~rng:(Vini_std.Rng.split (Engine.rng engine))
      ~graph ()
  in
  let slice = Slice.pl_vini "optin" in
  let vtopo =
    Graph.create ~names:[| "v0"; "v1"; "v2" |] ~links:[ mk 0 1; mk 1 2 ]
  in
  let iias = Iias.create ~underlay ~slice ~vtopo ~embedding:Fun.id () in
  let pool = Vini_net.Prefix.of_string "10.8.0.0/24" in
  Iias.enable_ingress iias 0 ~pool;
  Iias.enable_egress iias 2;
  Iias.start iias;
  Engine.run ~until:(Time.sec 20) engine;
  (* Client opts in. *)
  let client_host = Underlay.node underlay 3 in
  let vaddr = Iias.alloc_vpn_addr iias 0 in
  let vpn =
    Vini_overlay.Openvpn.connect ~host:client_host
      ~server:(Underlay.addr underlay 0) ~vaddr ()
  in
  Engine.run ~until:(Time.sec 21) engine;
  (* Ping the external web server through the overlay. *)
  let web_addr = Underlay.addr underlay 4 in
  let ping =
    Ping.start ~stack:(Vini_overlay.Openvpn.stack vpn) ~dst:web_addr ~count:50
      ()
  in
  Engine.run ~until:(Time.sec 30) engine;
  check Alcotest.int "pings through vpn+overlay+nat" 50 (Ping.received ping);
  let s2 = Iias.stats (Iias.vnode iias 2) in
  check Alcotest.bool "egress translated outbound" true (s2.Iias.napt_out >= 50);
  check Alcotest.bool "egress translated inbound" true (s2.Iias.napt_in >= 50);
  let s0 = Iias.stats (Iias.vnode iias 0) in
  check Alcotest.bool "ingress decapsulated" true (s0.Iias.vpn_in >= 50);
  check Alcotest.bool "ingress encapsulated returns" true (s0.Iias.vpn_out >= 50)

let square_iias ?(seed = 11) () =
  let engine = Engine.create ~seed () in
  let mk a b w =
    {
      Graph.a;
      b;
      bandwidth_bps = 1e9;
      delay = Time.ms 1;
      loss = 0.0;
      weight = w;
    }
  in
  let graph =
    Graph.create
      ~names:[| "n0"; "n1"; "n2"; "n3" |]
      ~links:[ mk 0 1 10; mk 1 2 10; mk 0 3 100; mk 2 3 100 ]
  in
  let underlay =
    Underlay.create ~engine
      ~rng:(Vini_std.Rng.split (Engine.rng engine))
      ~graph ()
  in
  let iias =
    Iias.create ~underlay ~slice:(Slice.pl_vini "sq") ~vtopo:graph
      ~embedding:Fun.id ()
  in
  Iias.start iias;
  Engine.run ~until:(Time.sec 20) engine;
  (engine, iias)

let test_traceroute_shows_path () =
  let engine, iias = square_iias () in
  let v0 = Iias.vnode iias 0 and v2 = Iias.vnode iias 2 in
  let tr =
    Vini_measure.Traceroute.start ~stack:(Iias.tap v0)
      ~dst:(Iias.tap_addr v2) ()
  in
  Engine.run ~until:(Time.sec 25) engine;
  check Alcotest.bool "destination reached" true
    (Vini_measure.Traceroute.reached tr);
  let hops = Vini_measure.Traceroute.hops tr in
  (* Cheap path 0-1-2: hop 1 = local Click (v0), hop 2 = v1, hop 3 = v2. *)
  let responders =
    List.map
      (fun (h : Vini_measure.Traceroute.hop) ->
        Option.map Vini_net.Addr.to_string h.Vini_measure.Traceroute.responder)
      hops
  in
  check
    Alcotest.(list (option string))
    "hop-by-hop path"
    [ Some "10.0.0.1"; Some "10.0.0.2"; Some "10.0.0.3" ]
    responders

let test_traceroute_follows_reroute () =
  let engine, iias = square_iias () in
  Iias.set_vlink_state iias 0 1 false;
  Engine.run ~until:(Time.sec 45) engine;
  let v0 = Iias.vnode iias 0 and v2 = Iias.vnode iias 2 in
  let tr =
    Vini_measure.Traceroute.start ~stack:(Iias.tap v0)
      ~dst:(Iias.tap_addr v2) ()
  in
  Engine.run ~until:(Time.sec 55) engine;
  let responders =
    List.filter_map
      (fun (h : Vini_measure.Traceroute.hop) -> h.Vini_measure.Traceroute.responder)
      (Vini_measure.Traceroute.hops tr)
  in
  (* Now via n3: v0, v3, v2. *)
  check
    Alcotest.(list string)
    "rerouted path"
    [ "10.0.0.1"; "10.0.0.4"; "10.0.0.3" ]
    (List.map Vini_net.Addr.to_string responders)

let test_vlink_loss_injection () =
  (* A chain (no alternate path), so routing cannot dodge the lossy link
     — on the square it would, which is itself correct behaviour. *)
  let engine, iias = make_chain () in
  converge engine;
  let v0 = Iias.vnode iias 0 and v2 = Iias.vnode iias 2 in
  Iias.set_vlink_loss iias 0 1 0.3;
  let p =
    Ping.start ~stack:(Iias.tap v0) ~dst:(Iias.tap_addr v2) ~count:150 ()
  in
  Engine.run ~until:(Time.sec 200) engine;
  (* Each echo crosses the lossy link twice: ~51% loss, more when hello
     loss flaps the adjacency. *)
  let pct = Ping.loss_pct p in
  check Alcotest.bool (Printf.sprintf "heavy loss (%.0f%%)" pct) true
    (pct > 30.0 && pct < 98.0);
  Iias.set_vlink_loss iias 0 1 0.0;
  Engine.run ~until:(Time.sec 230) engine;
  (* Clean again once the adjacency has had time to stabilise. *)
  let p2 =
    Ping.start ~stack:(Iias.tap v0) ~dst:(Iias.tap_addr v2) ~count:50 ()
  in
  Engine.run ~until:(Time.sec 260) engine;
  check Alcotest.int "clean after reset" 50 (Ping.received p2)

let test_vlink_bandwidth_cap () =
  let engine, iias = square_iias () in
  let v0 = Iias.vnode iias 0 and v2 = Iias.vnode iias 2 in
  (* Cap the 0-1 link at 2 Mb/s and push 10 Mb/s of UDP through it. *)
  Iias.set_vlink_bandwidth iias 0 1 (Some 2e6);
  let recv =
    Vini_transport.Udp_flow.receiver ~stack:(Iias.tap v2) ~port:7100 ()
  in
  ignore
    (Vini_transport.Udp_flow.sender ~stack:(Iias.tap v0)
       ~dst:(Iias.tap_addr v2) ~dst_port:7100 ~rate_bps:10e6
       ~duration:(Time.sec 5) ());
  Engine.run ~until:(Time.sec 40) engine;
  let st = Vini_transport.Udp_flow.receiver_stats recv in
  let mbps = float_of_int (st.Vini_transport.Udp_flow.bytes * 8) /. 5.0 /. 1e6 in
  check Alcotest.bool (Printf.sprintf "shaped to ~2 Mb/s (%.2f)" mbps) true
    (mbps > 1.2 && mbps < 2.6);
  (* Remove the cap: full rate flows again. *)
  Iias.set_vlink_bandwidth iias 0 1 None;
  let recv2 =
    Vini_transport.Udp_flow.receiver ~stack:(Iias.tap v2) ~port:7101 ()
  in
  ignore
    (Vini_transport.Udp_flow.sender ~stack:(Iias.tap v0)
       ~dst:(Iias.tap_addr v2) ~dst_port:7101 ~rate_bps:10e6
       ~duration:(Time.sec 5) ());
  Engine.run ~until:(Time.sec 60) engine;
  let st2 = Vini_transport.Udp_flow.receiver_stats recv2 in
  check Alcotest.int "no loss uncapped" 0 st2.Vini_transport.Udp_flow.lost

let test_vlink_cost_maintenance () =
  (* Raise the cheap path's cost (planned maintenance): traffic drains to
     the alternate path with no loss at all. *)
  let engine, iias = square_iias () in
  let v0 = Iias.vnode iias 0 and v2 = Iias.vnode iias 2 in
  check Alcotest.int "initial cost" 10 (Iias.vlink_cost iias 0 1);
  (* Continuous ping through the reconfiguration. *)
  let p =
    Ping.start ~stack:(Iias.tap v0) ~dst:(Iias.tap_addr v2) ~count:100
      ~mode:(Ping.Interval (Time.ms 200)) ()
  in
  ignore
    (Engine.at engine (Time.sec 25) (fun () ->
         Iias.set_vlink_cost iias 0 1 5000));
  Engine.run ~until:(Time.sec 60) engine;
  check Alcotest.int "no loss during maintenance" 100 (Ping.received p);
  check Alcotest.int "cost updated" 5000 (Iias.vlink_cost iias 0 1);
  (* Traffic now takes the 0-3-2 path: metric 200 at v0. *)
  let rib = Iias.rib v0 in
  match
    Vini_routing.Rib.best rib (Vini_net.Prefix.make (Iias.tap_addr v2) 32)
  with
  | Some r -> check Alcotest.int "drained to alternate" 200 r.Vini_routing.Rib.metric
  | None -> Alcotest.fail "route lost during maintenance"

let test_vpn_client_to_client () =
  (* Two end hosts opt in at the same ingress; their overlay addresses can
     talk to each other — the ingress hairpins traffic between clients. *)
  let engine = Engine.create ~seed:23 () in
  let mk a b =
    { Graph.a; b; bandwidth_bps = 1e9; delay = Time.ms 2; loss = 0.0; weight = 1 }
  in
  let graph =
    Graph.create
      ~names:[| "p0"; "p1"; "homeA"; "homeB" |]
      ~links:[ mk 0 1; mk 0 2; mk 0 3 ]
  in
  let underlay =
    Underlay.create ~engine
      ~rng:(Vini_std.Rng.split (Engine.rng engine))
      ~graph ()
  in
  let vtopo = Graph.create ~names:[| "v0"; "v1" |] ~links:[ mk 0 1 ] in
  let iias =
    Iias.create ~underlay ~slice:(Slice.pl_vini "c2c") ~vtopo ~embedding:Fun.id ()
  in
  Iias.enable_ingress iias 0 ~pool:(Vini_net.Prefix.of_string "10.8.0.0/24");
  Iias.start iias;
  Engine.run ~until:(Time.sec 15) engine;
  let connect host =
    let vaddr = Iias.alloc_vpn_addr iias 0 in
    Vini_overlay.Openvpn.connect ~host:(Underlay.node underlay host)
      ~server:(Underlay.addr underlay 0) ~vaddr ()
  in
  let va = connect 2 and vb = connect 3 in
  Engine.run ~until:(Time.sec 16) engine;
  let ping =
    Ping.start
      ~stack:(Vini_overlay.Openvpn.stack va)
      ~dst:(Vini_overlay.Openvpn.vaddr vb)
      ~count:30 ()
  in
  Engine.run ~until:(Time.sec 25) engine;
  check Alcotest.int "client-to-client pings" 30 (Ping.received ping);
  check Alcotest.bool "distinct overlay addresses" true
    (not
       (Vini_net.Addr.equal
          (Vini_overlay.Openvpn.vaddr va)
          (Vini_overlay.Openvpn.vaddr vb)))

let test_bgp_rides_the_overlay () =
  (* Two protocols in one virtual network (the §7 usage): OSPF computes
     intra-overlay routes; an iBGP full mesh rides the same tunnels to
     distribute an "external" prefix that OSPF never hears about, and the
     data plane resolves the BGP next hop recursively through the IGP. *)
  let module Bgp = Vini_routing.Bgp in
  let module Rib = Vini_routing.Rib in
  let engine = Engine.create ~seed:7 () in
  let graph = Datasets.Deter.topology () in
  let underlay =
    Underlay.create ~engine
      ~rng:(Vini_std.Rng.split (Engine.rng engine))
      ~graph ()
  in
  let iias =
    Iias.create ~underlay ~slice:(Slice.pl_vini "bgp") ~vtopo:graph
      ~embedding:Fun.id ()
  in
  let external_block = Vini_net.Prefix.of_string "172.16.0.0/16" in
  (* v0 owns the block but keeps the IGP out of it. *)
  Iias.advertise_prefix ~quiet:true iias 0 external_block;
  Iias.start iias;
  let vnode = Iias.vnode iias in
  (* iBGP full mesh over tap addresses. *)
  let speaker v originate =
    let vn = vnode v in
    let cfg =
      {
        (Bgp.default_config ~asn:65000 ~rid:(v + 1)
           ~next_hop_self:(Iias.tap_addr vn) ~originate)
        with
        Bgp.hold_time = Time.sec 12;
        mrai = Time.ms 100;
        reconnect = Time.sec 3;
      }
    in
    Bgp.create ~engine ~config:cfg ~rib:(Iias.rib vn) ()
  in
  let s0 = speaker 0 [ external_block ] in
  let s1 = speaker 1 [] in
  let s2 = speaker 2 [] in
  let speakers = [| s0; s1; s2 |] in
  (* Wire each ordered pair: messages are Control packets tap-to-tap. *)
  let peer_of = Hashtbl.create 8 in
  let pairs = [ (0, 1); (0, 2); (1, 2) ] in
  List.iter
    (fun (a, b) ->
      let mk_send src dst msg ~size =
        Ipstack.send
          (Iias.tap (vnode src))
          (Vini_net.Packet.udp
             ~src:(Iias.tap_addr (vnode src))
             ~dst:(Iias.tap_addr (vnode dst))
             ~sport:179 ~dport:179
             (Vini_net.Packet.Control { size; msg }))
      in
      let pa =
        Bgp.add_peer speakers.(a)
          ~name:(Printf.sprintf "v%d" b)
          ~kind:`Ibgp ~send:(mk_send a b) ()
      in
      let pb =
        Bgp.add_peer speakers.(b)
          ~name:(Printf.sprintf "v%d" a)
          ~kind:`Ibgp ~send:(mk_send b a) ()
      in
      Hashtbl.replace peer_of (a, b) pa;
      Hashtbl.replace peer_of (b, a) pb)
    pairs;
  (* Dispatch incoming control traffic to the right session by the
     sender's tap address. *)
  for v = 0 to 2 do
    Iias.on_control (vnode v) (fun ~src ~ifindex:_ msg ->
        for other = 0 to 2 do
          if other <> v && Vini_net.Addr.equal src (Iias.tap_addr (vnode other))
          then
            match Hashtbl.find_opt peer_of (v, other) with
            | Some peer -> Bgp.receive speakers.(v) ~peer msg
            | None -> ()
        done)
  done;
  (* Give OSPF time first, then the mesh (BGP needs the IGP paths). *)
  Engine.run ~until:(Time.sec 15) engine;
  Array.iter Bgp.start speakers;
  Engine.run ~until:(Time.sec 40) engine;
  List.iter
    (fun (a, b) ->
      check Alcotest.bool
        (Printf.sprintf "session %d-%d up" a b)
        true
        (Bgp.established speakers.(a) (Hashtbl.find peer_of (a, b))))
    pairs;
  (* v2 learned the block via iBGP, not OSPF. *)
  (match Rib.best (Iias.rib (vnode 2)) external_block with
  | Some r ->
      check Alcotest.bool "learned via ibgp" true (r.Rib.proto = Rib.Ibgp);
      check Alcotest.bool "next hop is v0's tap" true
        (Vini_net.Addr.equal r.Rib.next_hop (Iias.tap_addr (vnode 0)))
  | None -> Alcotest.fail "v2 must learn the external block");
  (* Data follows: ping an address inside the block from v2; the reply
     comes from v0's host stack.  Requires recursive next-hop resolution
     at v2 AND at the transit node v1. *)
  let target = Vini_net.Prefix.host external_block 99 in
  let ping =
    Ping.start ~stack:(Iias.tap (vnode 2)) ~dst:target ~count:20 ()
  in
  Engine.run ~until:(Time.sec 60) engine;
  check Alcotest.int "data to the bgp-learned prefix flows" 20
    (Ping.received ping)

let test_overlay_at_scale () =
  (* A 16-node random overlay: OSPF must converge and a sample of node
     pairs must be mutually reachable. *)
  let engine = Engine.create ~seed:1616 () in
  let g = Datasets.waxman ~rng:(Vini_std.Rng.create 1616) ~n:16 () in
  let underlay =
    Underlay.create ~engine
      ~rng:(Vini_std.Rng.split (Engine.rng engine))
      ~graph:g ()
  in
  let iias =
    Iias.create ~underlay ~slice:(Slice.pl_vini "scale") ~vtopo:g
      ~embedding:Fun.id ()
  in
  Iias.start iias;
  Engine.run ~until:(Time.sec 30) engine;
  let pings =
    List.map
      (fun (a, b) ->
        Ping.start
          ~stack:(Iias.tap (Iias.vnode iias a))
          ~dst:(Iias.tap_addr (Iias.vnode iias b))
          ~count:10 ())
      [ (0, 15); (3, 12); (7, 1); (14, 2); (5, 9); (11, 6) ]
  in
  Engine.run ~until:(Time.sec 60) engine;
  List.iteri
    (fun i p ->
      check Alcotest.int (Printf.sprintf "pair %d reachable" i) 10
        (Ping.received p))
    pings

let suite =
  [
    Alcotest.test_case "ospf converges over tunnels" `Quick test_ospf_converges;
    Alcotest.test_case "ping across overlay" `Quick test_ping_across_overlay;
    Alcotest.test_case "flight recorder across overlay" `Quick
      test_flight_recorder_across_overlay;
    Alcotest.test_case "virtual link failure reroutes" `Quick
      test_vlink_failure_and_reconvergence;
    Alcotest.test_case "tcp transfer over overlay" `Quick test_tcp_over_overlay;
    Alcotest.test_case "opt-in client through NAT egress" `Quick
      test_opt_in_and_nat_egress;
    Alcotest.test_case "traceroute shows path" `Quick test_traceroute_shows_path;
    Alcotest.test_case "traceroute follows reroute" `Quick
      test_traceroute_follows_reroute;
    Alcotest.test_case "vlink loss injection" `Quick test_vlink_loss_injection;
    Alcotest.test_case "vlink bandwidth cap" `Quick test_vlink_bandwidth_cap;
    Alcotest.test_case "vlink cost maintenance" `Quick test_vlink_cost_maintenance;
    Alcotest.test_case "vpn client-to-client" `Quick test_vpn_client_to_client;
    Alcotest.test_case "bgp rides the overlay" `Quick test_bgp_rides_the_overlay;
    Alcotest.test_case "overlay at scale (16 nodes)" `Quick test_overlay_at_scale;
  ]
