(* The chaos layer end to end: crash/restart lifecycle, supervision,
   seeded campaigns, invariant watchdogs, and the guard that a fault-free
   run is bit-identical with the whole layer armed. *)

module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Trace = Vini_sim.Trace
module Graph = Vini_topo.Graph
module Datasets = Vini_topo.Datasets
module Underlay = Vini_phys.Underlay
module Slice = Vini_phys.Slice
module Process = Vini_phys.Process
module Pnode = Vini_phys.Pnode
module Supervisor = Vini_phys.Supervisor
module Iias = Vini_overlay.Iias
module Rib = Vini_routing.Rib
module Ospf = Vini_routing.Ospf
module Experiment = Vini_core.Experiment
module Chaos = Vini_core.Chaos
module Vini = Vini_core.Vini
module Ping = Vini_measure.Ping
module Watchdog = Vini_measure.Watchdog
module Prefix = Vini_net.Prefix

let check = Alcotest.check

(* A 3-node dedicated-hardware chain (0 -- 1 -- 2) with IIAS on top,
   handing back the underlay for machine-level faults. *)
let make_chain ?(seed = 7) ?(routing = Iias.default_ospf) () =
  let engine = Engine.create ~seed () in
  let graph = Datasets.Deter.topology () in
  let underlay =
    Underlay.create ~engine
      ~rng:(Vini_std.Rng.split (Engine.rng engine))
      ~graph ()
  in
  let slice = Slice.pl_vini "chaos-test" in
  let iias =
    Iias.create ~underlay ~slice ~vtopo:graph ~embedding:Fun.id ~routing ()
  in
  Iias.start iias;
  (engine, underlay, iias)

let converge engine = Engine.run ~until:(Time.sec 20) engine

let run_more engine s =
  Engine.run ~until:(Time.add (Engine.now engine) (Time.of_sec_f s)) engine

(* --- process and node lifecycle ----------------------------------------- *)

let test_process_crash () =
  let engine, _under, iias = make_chain () in
  converge engine;
  let v1 = Iias.vnode iias 1 in
  let p = Iias.process v1 in
  check Alcotest.bool "alive after start" true (Process.alive p);
  Process.crash p;
  check Alcotest.bool "dead after crash" false (Process.alive p);
  check Alcotest.bool "vnode reports dead" false (Iias.vnode_alive v1);
  (* The crash hook stopped routing and cleared the FIB. *)
  check Alcotest.int "fib cleared" 0 (List.length (Iias.fib_entries v1));
  (match Iias.ospf v1 with
  | Some _ -> Alcotest.fail "ospf instance should be dropped on crash"
  | None -> ());
  (* Crashing twice is a no-op, not an error. *)
  Process.crash p;
  check Alcotest.int "one crash counted" 1 (Process.crashes p);
  (* The middle hop is gone: ends lose connectivity until repair. *)
  run_more engine 30.0;
  let ping =
    Ping.start
      ~stack:(Iias.tap (Iias.vnode iias 0))
      ~dst:(Iias.tap_addr (Iias.vnode iias 2))
      ~count:5 ~mode:(Ping.Interval (Time.ms 200)) ()
  in
  run_more engine 5.0;
  check Alcotest.int "no replies through dead forwarder" 0 (Ping.received ping)

let test_pnode_crash_kills_processes () =
  let engine, under, iias = make_chain () in
  converge engine;
  let v1 = Iias.vnode iias 1 in
  Underlay.set_node_state under 1 false;
  check Alcotest.bool "node down" false (Underlay.node_is_up under 1);
  check Alcotest.bool "process killed with the machine" false
    (Iias.vnode_alive v1);
  (* Rebooting the machine does not resurrect processes by itself. *)
  Underlay.set_node_state under 1 true;
  run_more engine 5.0;
  check Alcotest.bool "node back up" true (Underlay.node_is_up under 1);
  check Alcotest.bool "process stays dead without supervision" false
    (Iias.vnode_alive v1)

let test_lifecycle_trace_ring () =
  (* With the category enabled, crash and restart phases land in the
     ring; with it masked, the same actions record nothing. *)
  let tr = Trace.create ~categories:[ Trace.Category.Process_lifecycle ] () in
  Trace.install tr;
  let engine, _under, iias = make_chain () in
  converge engine;
  Iias.enable_supervision iias;
  Process.crash (Iias.process (Iias.vnode iias 1));
  run_more engine 5.0;
  Trace.uninstall ();
  let phases =
    List.filter_map
      (fun (e : Trace.event) ->
        match e.Trace.kind with
        | Trace.Process_lifecycle { phase; _ } -> Some phase
        | _ -> None)
      (Trace.events tr)
  in
  check Alcotest.bool "crash traced" true (List.mem "crash" phases);
  check Alcotest.bool "restart traced" true (List.mem "restart" phases);
  let masked = Trace.create ~categories:[ Trace.Category.Packet_drop ] () in
  Trace.install masked;
  let engine2, _under2, iias2 = make_chain () in
  converge engine2;
  Process.crash (Iias.process (Iias.vnode iias2 1));
  run_more engine2 2.0;
  Trace.uninstall ();
  check Alcotest.int "masked category records nothing" 0
    (List.length (Trace.find_cat masked Trace.Category.Process_lifecycle))

(* --- supervision --------------------------------------------------------- *)

let test_supervised_restart_rebuilds_router () =
  let engine, _under, iias = make_chain () in
  converge engine;
  Iias.enable_supervision iias;
  Iias.enable_supervision iias (* idempotent *);
  let v1 = Iias.vnode iias 1 in
  let routes_before =
    List.sort compare
      (List.map (fun (p, _) -> Prefix.to_string p) (Iias.fib_entries v1))
  in
  Process.crash (Iias.process v1);
  run_more engine 30.0;
  check Alcotest.bool "restarted" true (Iias.vnode_alive v1);
  check Alcotest.int "one restart" 1 (Process.restarts (Iias.process v1));
  (match Iias.ospf v1 with
  | None -> Alcotest.fail "fresh ospf instance expected after restart"
  | Some o ->
      check Alcotest.int "adjacencies re-formed" 2
        (List.length (Ospf.full_neighbors o)));
  let routes_after =
    List.sort compare
      (List.map (fun (p, _) -> Prefix.to_string p) (Iias.fib_entries v1))
  in
  check
    (Alcotest.list Alcotest.string)
    "routes survive the data-plane restart" routes_before routes_after;
  (* Traffic flows through the restarted forwarder again. *)
  let ping =
    Ping.start
      ~stack:(Iias.tap (Iias.vnode iias 0))
      ~dst:(Iias.tap_addr (Iias.vnode iias 2))
      ~count:10 ~mode:(Ping.Interval (Time.ms 200)) ()
  in
  run_more engine 5.0;
  check Alcotest.int "pings pass through restarted node" 10
    (Ping.received ping)

let test_supervisor_gives_up () =
  let engine, _under, iias = make_chain () in
  converge engine;
  let p = Iias.process (Iias.vnode iias 1) in
  let sup =
    Supervisor.create ~engine
      ~rng:(lazy (Vini_std.Rng.create 42))
      ~policy:
        {
          Supervisor.base_backoff = 0.1;
          max_backoff = 1.0;
          jitter_frac = 0.0;
          max_restarts = 2;
          intensity_window = 60.0;
        }
      ()
  in
  (* A crash-looping child: dies again the moment it is restarted. *)
  Supervisor.supervise sup ~name:"looper"
    ~on_restart:(fun () -> Process.crash p)
    p;
  Process.crash p;
  run_more engine 10.0;
  check
    (Alcotest.option
       (Alcotest.testable
          (fun ppf s ->
            Format.pp_print_string ppf
              (match s with
              | `Running -> "running"
              | `Waiting -> "waiting"
              | `Given_up -> "given-up"))
          ( = )))
    "given up after exceeding restart intensity" (Some `Given_up)
    (Supervisor.state sup ~name:"looper");
  check
    (Alcotest.list Alcotest.string)
    "given_up lists the child" [ "looper" ] (Supervisor.given_up sup);
  check Alcotest.bool "child left dead" false (Process.alive p)

let test_supervisor_waits_for_reboot () =
  let engine, under, iias = make_chain () in
  converge engine;
  Iias.enable_supervision iias;
  let v1 = Iias.vnode iias 1 in
  let name = Process.name (Iias.process v1) in
  let sup = Option.get (Iias.supervisor iias) in
  Underlay.set_node_state under 1 false;
  (* Long outage: many backoff periods elapse with the machine down. *)
  run_more engine 20.0;
  check Alcotest.bool "still dead while node down" false (Iias.vnode_alive v1);
  check Alcotest.bool "waiting, not given up" true
    (Supervisor.state sup ~name = Some `Waiting);
  Underlay.set_node_state under 1 true;
  run_more engine 5.0;
  check Alcotest.bool "restarted after reboot" true (Iias.vnode_alive v1);
  check Alcotest.int "re-polling burnt no restart budget" 1
    (Supervisor.restarts sup ~name)

(* --- corruption ---------------------------------------------------------- *)

let test_corruption_dropped_at_receiver () =
  let engine, _under, iias = make_chain () in
  converge engine;
  Iias.set_vlink_corrupt iias 0 1 1.0;
  let ping1 =
    (* Pings are lock-step (next probe on reply or timeout), so a short
       reply timeout keeps all ten probes inside the corruption window. *)
    Ping.start
      ~stack:(Iias.tap (Iias.vnode iias 0))
      ~dst:(Iias.tap_addr (Iias.vnode iias 1))
      ~count:10 ~mode:(Ping.Interval (Time.ms 100))
      ~reply_timeout:(Time.ms 200) ()
  in
  run_more engine 5.0;
  check Alcotest.int "every frame corrupted, none delivered" 0
    (Ping.received ping1);
  let s1 = Iias.stats (Iias.vnode iias 1) in
  check Alcotest.bool "receiver counted checksum drops" true
    (s1.Iias.corrupt_drops >= 10);
  (* 0.0 restores a clean link. *)
  Iias.set_vlink_corrupt iias 0 1 0.0;
  let ping2 =
    Ping.start
      ~stack:(Iias.tap (Iias.vnode iias 0))
      ~dst:(Iias.tap_addr (Iias.vnode iias 1))
      ~count:10 ~mode:(Ping.Interval (Time.ms 100)) ()
  in
  run_more engine 5.0;
  check Alcotest.int "clean again" 10 (Ping.received ping2);
  Alcotest.check_raises "probability must be in [0,1]"
    (Invalid_argument "Iias.set_vlink_corrupt: probability outside [0,1]")
    (fun () -> Iias.set_vlink_corrupt iias 0 1 1.5)

(* --- experiment validation ----------------------------------------------- *)

let test_validate_chaos_actions () =
  let graph = Datasets.Deter.topology () in
  let mk events =
    Experiment.make ~name:"v" ~slice:(Slice.pl_vini "v") ~vtopo:graph ~events
      ()
  in
  let ok events = Result.is_ok (Experiment.validate (mk events)) in
  check Alcotest.bool "well-formed chaos timeline" true
    (ok
       [
         Experiment.at 1.0 (Experiment.Crash_pnode 1);
         Experiment.at 5.0 (Experiment.Restore_pnode 1);
         Experiment.at 6.0 (Experiment.Kill_process 0);
         Experiment.at 7.0 (Experiment.Flap_vlink (0, 1, 2.0));
         Experiment.at 8.0 (Experiment.Corrupt_vlink (1, 2, 0.05));
       ]);
  check Alcotest.bool "negative timestamp rejected" false
    (ok [ Experiment.at (-1.0) (Experiment.Kill_process 0) ]);
  check Alcotest.bool "crash node out of range" false
    (ok [ Experiment.at 1.0 (Experiment.Crash_pnode 9) ]);
  check Alcotest.bool "restore node out of range" false
    (ok [ Experiment.at 1.0 (Experiment.Restore_pnode (-1)) ]);
  check Alcotest.bool "kill out of range" false
    (ok [ Experiment.at 1.0 (Experiment.Kill_process 3) ]);
  check Alcotest.bool "flap needs positive downtime" false
    (ok [ Experiment.at 1.0 (Experiment.Flap_vlink (0, 1, 0.0)) ]);
  check Alcotest.bool "flap needs adjacency" false
    (ok [ Experiment.at 1.0 (Experiment.Flap_vlink (0, 2, 1.0)) ]);
  check Alcotest.bool "corruption probability over 1 rejected" false
    (ok [ Experiment.at 1.0 (Experiment.Corrupt_vlink (0, 1, 1.5)) ]);
  check Alcotest.bool "loss outside [0,1] rejected up front" false
    (ok [ Experiment.at 1.0 (Experiment.Set_vlink_loss (0, 1, 1.5)) ]);
  check Alcotest.bool "is_chaos_action splits fault verbs" true
    (Experiment.is_chaos_action (Experiment.Crash_pnode 0)
    && Experiment.is_chaos_action (Experiment.Flap_vlink (0, 1, 1.0))
    && (not (Experiment.is_chaos_action (Experiment.Fail_vlink (0, 1))))
    && not
         (Experiment.is_chaos_action
            (Experiment.Set_vlink_loss (0, 1, 0.5))))

(* --- seeded campaigns ----------------------------------------------------- *)

let ring4 () =
  let link a b =
    {
      Graph.a;
      b;
      bandwidth_bps = 1e9;
      delay = Time.ms 5;
      loss = 0.0;
      weight = 10;
    }
  in
  Graph.create
    ~names:[| "a"; "b"; "c"; "d" |]
    ~links:[ link 0 1; link 1 2; link 2 3; link 3 0 ]

let test_chaos_plan_deterministic () =
  let vtopo = ring4 () in
  let profile = { Chaos.default_profile with Chaos.duration = 60.0 } in
  let p1 = Chaos.plan ~seed:11 ~vtopo profile in
  let p2 = Chaos.plan ~seed:11 ~vtopo profile in
  check
    (Alcotest.list Alcotest.string)
    "same seed, same campaign" (Chaos.describe p1) (Chaos.describe p2);
  let p3 = Chaos.plan ~seed:12 ~vtopo profile in
  check Alcotest.bool "different seed, different campaign" true
    (Chaos.describe p1 <> Chaos.describe p3);
  check Alcotest.bool "campaign non-empty" true (p1 <> []);
  (* Every crash has a matching restore, in order. *)
  let depth = ref 0 in
  List.iter
    (fun (ev : Experiment.event) ->
      match ev.Experiment.action with
      | Experiment.Crash_pnode _ -> incr depth
      | Experiment.Restore_pnode _ ->
          check Alcotest.bool "restore follows a crash" true (!depth > 0);
          decr depth
      | _ -> ())
    p1;
  (* Events are sorted. *)
  let rec sorted = function
    | (a : Experiment.event) :: (b :: _ as rest) ->
        Time.compare a.Experiment.at b.Experiment.at <= 0 && sorted rest
    | _ -> true
  in
  check Alcotest.bool "timeline sorted" true (sorted p1);
  check Alcotest.bool "profile validation" true
    (Result.is_error
       (Chaos.validate_profile
          { profile with Chaos.mean_interfault = 0.0 }))

(* One full chaotic run on the ring: deploy through Vini (supervision
   auto-enabled by the chaos events), ping throughout, return everything
   observable. *)
let campaign_run ~seed () =
  let vtopo = ring4 () in
  let events =
    Chaos.plan ~seed:4242 ~vtopo
      {
        Chaos.default_profile with
        Chaos.duration = 30.0;
        mean_interfault = 6.0;
      }
  in
  (* Shift the campaign past warmup. *)
  let events =
    List.map
      (fun (ev : Experiment.event) ->
        { ev with Experiment.at = Time.add ev.Experiment.at (Time.sec 20) })
      events
  in
  let engine = Engine.create ~seed () in
  let vini = Vini.create ~engine ~graph:vtopo () in
  let spec =
    Experiment.make ~name:"campaign" ~slice:(Slice.pl_vini "campaign")
      ~vtopo ~events ()
  in
  let inst = Vini.deploy vini spec in
  Vini.start inst;
  let iias = Vini.iias inst in
  Engine.run ~until:(Time.sec 20) engine;
  let ping =
    Ping.start
      ~stack:(Iias.tap (Iias.vnode iias 0))
      ~dst:(Iias.tap_addr (Iias.vnode iias 2))
      ~count:160 ~mode:(Ping.Interval (Time.ms 250)) ()
  in
  Engine.run ~until:(Time.sec 70) engine;
  (iias, Ping.series ping, Ping.sent ping, Ping.received ping)

let test_campaign_reproducible () =
  let iias1, series1, sent1, recv1 = campaign_run ~seed:31 () in
  let _iias2, series2, sent2, recv2 = campaign_run ~seed:31 () in
  check Alcotest.bool "supervision auto-enabled for chaos spec" true
    (Iias.supervisor iias1 <> None);
  check Alcotest.int "same sent" sent1 sent2;
  check Alcotest.int "same received" recv1 recv2;
  check
    (Alcotest.list (Alcotest.pair (Alcotest.float 0.0) (Alcotest.float 0.0)))
    "bit-for-bit identical ping series" series1 series2

(* --- the chaos-disabled guard -------------------------------------------- *)

(* A fault-free run must be unaffected by arming the whole chaos layer:
   supervision draws nothing until a crash, the watchdog never jitters. *)
let plain_run ~armed () =
  let engine, _under, iias = make_chain ~seed:23 () in
  let wd =
    if armed then begin
      Iias.enable_supervision iias;
      let wd =
        Watchdog.create ~engine ~overlay:iias
          ~vtopo:(Datasets.Deter.topology ()) ()
      in
      Watchdog.start wd;
      Some wd
    end
    else None
  in
  converge engine;
  let ping =
    Ping.start
      ~stack:(Iias.tap (Iias.vnode iias 0))
      ~dst:(Iias.tap_addr (Iias.vnode iias 2))
      ~count:100 ~mode:(Ping.Interval (Time.ms 100)) ()
  in
  run_more engine 15.0;
  (Ping.series ping, wd)

let test_armed_run_identical () =
  let base, _ = plain_run ~armed:false () in
  let armed, wd = plain_run ~armed:true () in
  check
    (Alcotest.list (Alcotest.pair (Alcotest.float 0.0) (Alcotest.float 0.0)))
    "supervision + watchdog change nothing on a fault-free run" base armed;
  let wd = Option.get wd in
  check Alcotest.bool "watchdog swept" true (Watchdog.sweeps wd > 0);
  check Alcotest.int "no violations on a healthy network" 0
    (Watchdog.violation_count wd)

(* --- watchdog invariants -------------------------------------------------- *)

let test_watchdog_loop_detection () =
  let engine, _under, iias = make_chain ~routing:Iias.Static_routes () in
  converge engine;
  (* Nodes 0 and 1 point at each other for node 2's address. *)
  let p2 = Prefix.make (Iias.tap_addr (Iias.vnode iias 2)) 32 in
  Iias.add_static iias 0 p2 ~via:1;
  Iias.add_static iias 1 p2 ~via:0;
  let wd =
    Watchdog.create ~engine ~overlay:iias ~vtopo:(Datasets.Deter.topology ())
      ()
  in
  Watchdog.sweep wd;
  let loops =
    List.filter (fun v -> v.Watchdog.v_check = "loop") (Watchdog.violations wd)
  in
  check Alcotest.bool "forwarding loop detected" true (loops <> [])

let test_watchdog_blackhole_detection () =
  let engine, _under, iias = make_chain ~routing:Iias.Static_routes () in
  converge engine;
  (* No routes at all: every pair is a blackhole, but only after the
     grace period — transient unreachability is not a violation. *)
  let wd =
    Watchdog.create ~engine ~overlay:iias ~vtopo:(Datasets.Deter.topology ())
      ~grace:(Time.sec 3) ()
  in
  Watchdog.sweep wd;
  check Alcotest.int "within grace: no violation" 0 (Watchdog.violation_count wd);
  run_more engine 5.0;
  Watchdog.sweep wd;
  let counts = Watchdog.counts_by_check wd in
  check Alcotest.bool "blackholes reported past grace" true
    (List.mem_assoc "blackhole" counts);
  (* Dead destinations are expected to be unreachable: no reports. *)
  let dead_name = Iias.vname (Iias.vnode iias 2) in
  Process.crash (Iias.process (Iias.vnode iias 2));
  let before = Watchdog.violation_count wd in
  run_more engine 5.0;
  Watchdog.sweep wd;
  let fresh = List.filteri (fun i _ -> i >= before) (Watchdog.violations wd) in
  let mentions s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  check Alcotest.bool "no reports for pairs involving a dead node" true
    (List.for_all (fun v -> not (mentions v.Watchdog.v_detail dead_name)) fresh)

(* --- OSPF resync after reboot -------------------------------------------- *)

let all_routes iias n =
  List.init n (fun v ->
      List.sort compare (Iias.fib_entries (Iias.vnode iias v)))

let test_reboot_resync_matches_fresh_run () =
  (* Run A: crash node 1's machine mid-run, reboot, supervised recovery.
     Run B: never faulted.  Their final converged route tables match. *)
  let engine_a, under_a, iias_a = make_chain ~seed:51 () in
  converge engine_a;
  Iias.enable_supervision iias_a;
  Underlay.set_node_state under_a 1 false;
  run_more engine_a 15.0;
  Underlay.set_node_state under_a 1 true;
  run_more engine_a 40.0;
  let engine_b, _under_b, iias_b = make_chain ~seed:51 () in
  converge engine_b;
  run_more engine_b 55.0;
  check Alcotest.bool "node recovered" true
    (Iias.vnode_alive (Iias.vnode iias_a 1));
  let ra = all_routes iias_a 3 and rb = all_routes iias_b 3 in
  List.iteri
    (fun v (a, b) ->
      check
        (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.string))
        (Printf.sprintf "node %d routes equal fresh run" v)
        (List.map (fun (p, nh) -> (Prefix.to_string p, nh)) b)
        (List.map (fun (p, nh) -> (Prefix.to_string p, nh)) a))
    (List.combine ra rb)

(* --- the acceptance scenario --------------------------------------------- *)

let test_abilene_node_crash_acceptance () =
  let row, wd, iias =
    Vini_repro.Mttr.run_one
      ~fault:(Vini_repro.Mttr.Node_crash Supervisor.default_policy) ()
  in
  (* Detected within the OSPF dead interval (10 s; first ping on the
     backup path can lag one probe interval behind detection). *)
  check Alcotest.bool
    (Printf.sprintf "detected within dead interval (%.2fs)" row.Vini_repro.Mttr.detect_s)
    true
    (row.Vini_repro.Mttr.detect_s > 0.0 && row.Vini_repro.Mttr.detect_s <= 11.0);
  (* Traffic rerouted: pings flow during the outage, so losses stay well
     below the outage duration's worth of probes. *)
  check Alcotest.bool "traffic rerouted during outage" true
    (row.Vini_repro.Mttr.lost_pings < 60);
  (* The machine rejoined: supervised restart happened, adjacencies are
     back, and the FIB was repopulated from the RIB. *)
  check Alcotest.bool "supervised restart happened" true
    (row.Vini_repro.Mttr.restarts >= 1);
  let g = Vini_repro.Mttr.topology () in
  let denver = Graph.id_of_name g "Denver" in
  let vden = Iias.vnode iias denver in
  check Alcotest.bool "Denver back up" true (Iias.vnode_alive vden);
  (match Iias.ospf vden with
  | None -> Alcotest.fail "no ospf instance after recovery"
  | Some o ->
      check Alcotest.int "all adjacencies re-formed"
        (List.length (Graph.neighbors g denver))
        (List.length (Ospf.full_neighbors o)));
  check Alcotest.bool "FIB repopulated from RIB" true
    (List.length (Iias.fib_entries vden)
    >= List.length (Rib.routes (Iias.rib vden)));
  check Alcotest.bool "traffic returned to primary path" true
    (Float.is_finite row.Vini_repro.Mttr.recover_s);
  (* Zero loop/blackhole violations once the dust settles. *)
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "watchdog clean" []
    (Watchdog.counts_by_check wd)

let suite =
  [
    Alcotest.test_case "process crash goes dark" `Quick test_process_crash;
    Alcotest.test_case "machine crash kills processes" `Quick
      test_pnode_crash_kills_processes;
    Alcotest.test_case "lifecycle events ring-buffered and masked" `Quick
      test_lifecycle_trace_ring;
    Alcotest.test_case "supervised restart rebuilds the router" `Quick
      test_supervised_restart_rebuilds_router;
    Alcotest.test_case "supervisor gives up on crash loops" `Quick
      test_supervisor_gives_up;
    Alcotest.test_case "supervisor waits for machine reboot" `Quick
      test_supervisor_waits_for_reboot;
    Alcotest.test_case "corruption dropped by receiver checksum" `Quick
      test_corruption_dropped_at_receiver;
    Alcotest.test_case "validate rejects malformed chaos events" `Quick
      test_validate_chaos_actions;
    Alcotest.test_case "campaign planning is seeded and paired" `Quick
      test_chaos_plan_deterministic;
    Alcotest.test_case "chaotic run reproducible bit-for-bit" `Quick
      test_campaign_reproducible;
    Alcotest.test_case "armed-but-idle chaos layer changes nothing" `Quick
      test_armed_run_identical;
    Alcotest.test_case "watchdog flags forwarding loops" `Quick
      test_watchdog_loop_detection;
    Alcotest.test_case "watchdog flags blackholes past grace" `Quick
      test_watchdog_blackhole_detection;
    Alcotest.test_case "reboot resyncs LSDB to the fresh-run routes" `Quick
      test_reboot_resync_matches_fresh_run;
    Alcotest.test_case "abilene node crash: detect, reroute, rejoin" `Slow
      test_abilene_node_crash_acceptance;
  ]
