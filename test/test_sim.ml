(* Tests for the discrete-event engine and time arithmetic. *)

module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Trace = Vini_sim.Trace

let check = Alcotest.check
let time = Alcotest.testable Time.pp (fun a b -> Time.compare a b = 0)

let test_time_units () =
  check time "1 s = 1000 ms" (Time.sec 1) (Time.ms 1000);
  check time "1 ms = 1000 us" (Time.ms 1) (Time.us 1000);
  check time "1 us = 1000 ns" (Time.us 1) (Time.ns 1000);
  check time "float roundtrip" (Time.ms 1500) (Time.of_sec_f 1.5);
  check (Alcotest.float 1e-12) "to_sec" 0.25 (Time.to_sec_f (Time.ms 250))

let test_time_arith () =
  check time "add" (Time.sec 3) (Time.add (Time.sec 1) (Time.sec 2));
  check time "sub" (Time.sec 1) (Time.sub (Time.sec 3) (Time.sec 2));
  check time "mul" (Time.sec 6) (Time.mul (Time.sec 2) 3);
  check time "min" (Time.sec 1) (Time.min (Time.sec 1) (Time.sec 2));
  check time "max" (Time.sec 2) (Time.max (Time.sec 1) (Time.sec 2))

let test_engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Engine.at e (Time.ms 30) (note "c"));
  ignore (Engine.at e (Time.ms 10) (note "a"));
  ignore (Engine.at e (Time.ms 20) (note "b"));
  Engine.run e;
  check Alcotest.(list string) "timestamp order" [ "a"; "b"; "c" ]
    (List.rev !log)

let test_engine_same_time_fifo () =
  (* Events at the same instant fire in scheduling order. *)
  let e = Engine.create () in
  let log = ref [] in
  for i = 0 to 9 do
    ignore (Engine.at e (Time.ms 5) (fun () -> log := i :: !log))
  done;
  Engine.run e;
  check Alcotest.(list int) "fifo at equal time" (List.init 10 Fun.id)
    (List.rev !log)

let test_engine_clock_advances () =
  let e = Engine.create () in
  let seen = ref Time.zero in
  ignore (Engine.at e (Time.ms 42) (fun () -> seen := Engine.now e));
  Engine.run e;
  check time "clock at callback" (Time.ms 42) !seen;
  check time "clock after run" (Time.ms 42) (Engine.now e)

let test_engine_until_advances_clock () =
  let e = Engine.create () in
  ignore (Engine.at e (Time.sec 100) (fun () -> ()));
  Engine.run ~until:(Time.sec 10) e;
  check time "stopped at until" (Time.sec 10) (Engine.now e);
  check Alcotest.int "event still pending" 1 (Engine.pending e)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.at e (Time.ms 5) (fun () -> fired := true) in
  Engine.cancel h;
  Engine.run e;
  check Alcotest.bool "cancelled did not fire" false !fired;
  check Alcotest.bool "is_cancelled" true (Engine.is_cancelled h)

let test_engine_after_relative () =
  let e = Engine.create () in
  let at = ref Time.zero in
  ignore
    (Engine.at e (Time.ms 10) (fun () ->
         ignore (Engine.after e (Time.ms 7) (fun () -> at := Engine.now e))));
  Engine.run e;
  check time "after is relative" (Time.ms 17) !at

let test_engine_past_schedules_now () =
  let e = Engine.create () in
  let order = ref [] in
  ignore
    (Engine.at e (Time.ms 10) (fun () ->
         (* Scheduling into the past clamps to now. *)
         ignore (Engine.at e (Time.ms 1) (fun () -> order := "late" :: !order));
         order := "first" :: !order));
  Engine.run e;
  check Alcotest.(list string) "clamped" [ "first"; "late" ] (List.rev !order);
  check time "clock never went back" (Time.ms 10) (Engine.now e)

let test_engine_every_stops () =
  let e = Engine.create () in
  let n = ref 0 in
  Engine.every e (Time.ms 10) (fun () ->
      incr n;
      !n < 5);
  Engine.run e;
  check Alcotest.int "ran 5 times then stopped" 5 !n

let test_engine_every_jitter_bounded () =
  let e = Engine.create () in
  let stamps = ref [] in
  Engine.every e ~jitter:(Time.ms 5) (Time.ms 100) (fun () ->
      stamps := Engine.now e :: !stamps;
      List.length !stamps < 20);
  Engine.run e;
  let stamps = List.rev !stamps in
  List.iteri
    (fun i t ->
      let base = Time.ms (100 * (i + 1)) in
      let delta = Time.to_ms_f (Time.sub t base) in
      check Alcotest.bool
        (Printf.sprintf "firing %d within jitter (%.2f)" i delta)
        true
        (delta >= -0.001 && delta <= 5.001 *. float_of_int (i + 1)))
    stamps

let test_engine_step () =
  let e = Engine.create () in
  ignore (Engine.at e (Time.ms 1) (fun () -> ()));
  check Alcotest.bool "one step" true (Engine.step e);
  check Alcotest.bool "exhausted" false (Engine.step e)

let test_engine_deterministic_replay () =
  let run () =
    let e = Engine.create ~seed:5 () in
    let acc = ref [] in
    let rng = Engine.rng e in
    for _ = 1 to 50 do
      let d = Vini_std.Rng.int rng 1000 in
      ignore (Engine.after e (Time.us d) (fun () -> acc := d :: !acc))
    done;
    Engine.run e;
    !acc
  in
  check Alcotest.(list int) "identical runs" (run ()) (run ())

let test_trace_order_and_find () =
  let e = Engine.create () in
  let tr = Trace.create () in
  ignore (Engine.at e (Time.ms 1) (fun () ->
      Trace.record tr ~component:"a" (Trace.Custom "x")));
  ignore (Engine.at e (Time.ms 2) (fun () ->
      Trace.record tr ~component:"b" (Trace.Packet_tx { bytes = 100 })));
  ignore (Engine.at e (Time.ms 3) (fun () ->
      Trace.record tr ~component:"a" (Trace.Custom "z")));
  Engine.run e;
  check Alcotest.int "three events" 3 (List.length (Trace.events tr));
  check Alcotest.int "two at component a" 2
    (List.length (Trace.find tr ~component:"a"));
  (* Events are stamped with the engine clock (set_clock wired by create). *)
  (match Trace.events tr with
  | first :: _ -> check time "stamped at 1ms" (Time.ms 1) first.Trace.time
  | [] -> Alcotest.fail "no events");
  check Alcotest.int "one packet_tx" 1
    (List.length (Trace.find_cat tr Trace.Category.Packet_tx));
  Trace.clear tr;
  check Alcotest.int "cleared" 0 (List.length (Trace.events tr))

let test_trace_ring_wraparound () =
  let tr = Trace.create ~capacity:4 () in
  for i = 1 to 10 do
    Trace.record tr ~component:"c" (Trace.Custom (string_of_int i))
  done;
  check Alcotest.int "len capped at capacity" 4 (Trace.length tr);
  check Alcotest.int "capacity" 4 (Trace.capacity tr);
  check Alcotest.int "overwritten counts the loss" 6 (Trace.overwritten tr);
  let details =
    List.map
      (fun (ev : Trace.event) ->
        match ev.Trace.kind with Trace.Custom d -> d | _ -> "?")
      (Trace.events tr)
  in
  check Alcotest.(list string) "oldest evicted, order kept"
    [ "7"; "8"; "9"; "10" ] details;
  Trace.clear tr;
  check Alcotest.int "clear resets overwritten" 0 (Trace.overwritten tr)

let test_trace_category_filtering () =
  let tr = Trace.create ~categories:[ Trace.Category.Packet_drop ] () in
  Trace.record tr ~component:"el" (Trace.Packet_tx { bytes = 10 });
  Trace.record tr ~component:"el"
    (Trace.Packet_drop { reason = "queue-overflow"; bytes = 10 });
  check Alcotest.int "disabled category records nothing" 1 (Trace.length tr);
  check Alcotest.bool "drop enabled" true
    (Trace.enabled tr Trace.Category.Packet_drop);
  check Alcotest.bool "tx disabled" false
    (Trace.enabled tr Trace.Category.Packet_tx);
  Trace.enable tr Trace.Category.Packet_tx;
  Trace.record tr ~component:"el" (Trace.Packet_tx { bytes = 10 });
  check Alcotest.int "enabled after enable" 2 (Trace.length tr);
  Trace.disable tr Trace.Category.Packet_drop;
  Trace.record tr ~component:"el"
    (Trace.Packet_drop { reason = "x"; bytes = 1 });
  check Alcotest.int "disabled after disable" 2 (Trace.length tr)

let test_trace_global_sink () =
  check Alcotest.bool "no sink: off" false (Trace.on Trace.Category.Packet_tx);
  Trace.emit ~component:"nowhere" (Trace.Custom "dropped on the floor");
  let tr = Trace.create ~categories:[ Trace.Category.Custom ] () in
  Trace.install tr;
  check Alcotest.bool "installed: custom on" true
    (Trace.on Trace.Category.Custom);
  check Alcotest.bool "installed: tx still off" false
    (Trace.on Trace.Category.Packet_tx);
  Trace.emit ~component:"somewhere" (Trace.Custom "landed");
  Trace.emit ~component:"somewhere" (Trace.Packet_tx { bytes = 1 });
  check Alcotest.int "only enabled category recorded" 1 (Trace.length tr);
  Trace.enable tr Trace.Category.Packet_tx;
  check Alcotest.bool "enable refreshes global mask" true
    (Trace.on Trace.Category.Packet_tx);
  Trace.emit ~component:"somewhere" (Trace.Packet_tx { bytes = 1 });
  Trace.uninstall ();
  check Alcotest.bool "uninstalled: off again" false
    (Trace.on Trace.Category.Custom);
  Trace.emit ~component:"somewhere" (Trace.Custom "after uninstall");
  check Alcotest.int "sink untouched after uninstall" 2 (Trace.length tr)

let test_engine_pending_counts_live () =
  (* pending is the live-event count (O(1)): cancellation is reflected
     immediately, and the lazy-delete sweep must not disturb it. *)
  let e = Engine.create () in
  let handles =
    List.init 200 (fun i -> Engine.at e (Time.us (i + 1)) (fun () -> ()))
  in
  check Alcotest.int "all live" 200 (Engine.pending e);
  List.iteri (fun i h -> if i mod 2 = 0 then Engine.cancel h) handles;
  check Alcotest.int "cancelled excluded" 100 (Engine.pending e);
  (match handles with
  | h :: _ ->
      Engine.cancel h;
      check Alcotest.int "double cancel counted once" 100 (Engine.pending e)
  | [] -> ());
  (* More scheduling triggers the dead-entry sweep; the count must hold. *)
  let fired = ref 0 in
  for i = 1 to 500 do
    ignore (Engine.at e (Time.ms i) (fun () -> incr fired))
  done;
  check Alcotest.int "after sweep and growth" 600 (Engine.pending e);
  Engine.run e;
  check Alcotest.int "exactly the live ones fired" 600 (100 + !fired);
  check Alcotest.int "drained" 0 (Engine.pending e)

let test_engine_instrumentation () =
  let e = Engine.create () in
  Engine.set_profiling e true;
  for i = 1 to 100 do
    ignore (Engine.at e (Time.us i) (fun () -> ()))
  done;
  check Alcotest.int "max_pending high-water" 100 (Engine.max_pending e);
  let h = Engine.at e (Time.ms 5) (fun () -> ()) in
  Engine.cancel h;
  Engine.run e;
  check Alcotest.int "fired" 100 (Engine.events_fired e);
  check Alcotest.int "cancelled popped" 1 (Engine.events_cancelled e);
  check Alcotest.int "horizon histogram populated" 101
    (Vini_std.Histogram.count (Engine.horizon_hist e));
  check Alcotest.int "callback histogram populated" 100
    (Vini_std.Histogram.count (Engine.callback_hist e))

(* ---- the per-packet flight recorder (hot half) ------------------------- *)

module Span = Vini_sim.Span

let span_cleanup () =
  Span.uninstall ();
  Trace.uninstall ()

let test_span_double_gate () =
  span_cleanup ();
  check Alcotest.bool "nothing installed: off" false (Span.on ());
  let r = Span.create ~capacity:8 () in
  Span.install r;
  check Alcotest.bool "recorder alone: still off" false (Span.on ());
  let tr = Trace.create ~categories:[ Trace.Category.Custom ] () in
  Trace.install tr;
  check Alcotest.bool "sink without span category: off" false (Span.on ());
  Trace.enable tr Trace.Category.Span;
  check Alcotest.bool "both halves open: on" true (Span.on ());
  Span.instant ~pkt:1 ~orig:1 ~component:"x" Span.Proto_processing;
  check Alcotest.int "recorded" 1 (Span.length r);
  Trace.disable tr Trace.Category.Span;
  check Alcotest.bool "category disabled: off" false (Span.on ());
  Trace.enable tr Trace.Category.Span;
  Span.uninstall ();
  check Alcotest.bool "recorder removed: off" false (Span.on ());
  Trace.uninstall ();
  check Alcotest.bool "all removed: off" false (Span.on ())

let test_span_ring_bounded () =
  span_cleanup ();
  let r = Span.create ~capacity:4 () in
  Span.install r;
  let tr = Trace.create ~categories:[ Trace.Category.Span ] () in
  Trace.install tr;
  for i = 1 to 10 do
    Span.instant ~pkt:i ~orig:i ~component:"ring" Span.Proto_processing
  done;
  check Alcotest.int "length capped" 4 (Span.length r);
  check Alcotest.int "capacity" 4 (Span.capacity r);
  check Alcotest.int "overwritten counted" 6 (Span.overwritten r);
  check
    (Alcotest.list Alcotest.int)
    "oldest evicted, order kept" [ 7; 8; 9; 10 ]
    (List.map Span.record_pkt (Span.records r));
  Span.clear r;
  check Alcotest.int "clear empties" 0 (Span.length r);
  check Alcotest.int "clear resets overwritten" 0 (Span.overwritten r);
  span_cleanup ()

let test_span_queue_helpers () =
  span_cleanup ();
  let e = Engine.create () in
  let r = Span.create ~capacity:16 () in
  Span.install r;
  let tr = Trace.create ~categories:[ Trace.Category.Span ] () in
  Trace.install tr;
  ignore (Engine.at e (Time.ms 1) (fun () -> Span.note_enqueue ~pkt:7));
  ignore
    (Engine.at e (Time.ms 3) (fun () ->
         Span.dequeue_hop ~pkt:7 ~orig:7 ~component:"q" ();
         (* Unknown id and zero wait both record nothing. *)
         Span.dequeue_hop ~pkt:99 ~orig:99 ~component:"q" ();
         Span.note_enqueue ~pkt:8;
         Span.dequeue_hop ~pkt:8 ~orig:8 ~component:"q" ()));
  Engine.run e;
  (match Span.records r with
  | [ Span.Hop { pkt = 7; attribution = Span.Queueing; t0; t1; _ } ] ->
      check time "wait opens at enqueue" (Time.ms 1) t0;
      check time "wait closes at dequeue" (Time.ms 3) t1
  | records ->
      Alcotest.failf "expected exactly the pkt-7 queueing hop, got %d records"
        (List.length records));
  span_cleanup ()

let test_span_disabled_records_nothing () =
  span_cleanup ();
  let r = Span.create ~capacity:8 () in
  (* Not installed: emitters must be inert even when called directly. *)
  Span.origin ~pkt:1 ~orig:1 ~bytes:64 ~component:"x" ();
  Span.drop ~pkt:1 ~orig:1 ~component:"x" ~reason:"r" ~bytes:64 ();
  Span.note_enqueue ~pkt:1;
  Span.dequeue_hop ~pkt:1 ~orig:1 ~component:"x" ();
  check Alcotest.int "nothing recorded" 0 (Span.length r)

let test_span_attribution_names () =
  List.iter
    (fun a ->
      check Alcotest.bool "name round-trips" true
        (Span.attribution_of_name (Span.attribution_name a) = Some a))
    Span.attributions;
  check Alcotest.bool "unknown name rejected" true
    (Span.attribution_of_name "warp_drive" = None)

(* ---- the sharded runtime: Shard + Coordinator -------------------------- *)

module Coordinator = Vini_sim.Coordinator
module Shard = Vini_sim.Shard
module Rng = Vini_std.Rng

(* A fully connected lookahead with one latency everywhere. *)
let uniform_lookahead l _src _dst = Some l

let test_coordinator_orders_across_shards () =
  (* Two shards exchanging posts; each shard keeps its own log (the
     confinement contract) and the merged log must follow global time. *)
  let c =
    Coordinator.create ~shards:2 ~domains:1
      ~lookahead:(uniform_lookahead (Time.ms 1))
      ()
  in
  let logs = Array.make 2 [] in
  let note s tag = logs.(s) <- (Shard.now (Coordinator.shard c s), tag) :: logs.(s) in
  let s0 = Coordinator.shard c 0 and s1 = Coordinator.shard c 1 in
  ignore
    (Shard.at s0 (Time.ms 1) (fun () ->
         note 0 "a";
         ignore
           (Shard.post s0 ~dst:1 (Time.ms 5) (fun () ->
                note 1 "b";
                ignore (Shard.post s1 ~dst:0 (Time.ms 9) (fun () -> note 0 "c"))))));
  ignore (Shard.at s1 (Time.ms 7) (fun () -> note 1 "d"));
  Coordinator.run c;
  let merged =
    List.sort compare (List.rev_append logs.(0) logs.(1))
    |> List.map (fun (t, tag) -> (Time.to_ms_f t, tag))
  in
  check
    Alcotest.(list (pair (float 0.001) string))
    "global time order"
    [ (1.0, "a"); (5.0, "b"); (7.0, "d"); (9.0, "c") ]
    merged;
  check Alcotest.int "fired" 4 (Coordinator.events_fired c);
  check Alcotest.int "posts" 2 (Coordinator.posts_sent c);
  check Alcotest.int "delivered" 2 (Coordinator.messages_delivered c);
  check Alcotest.int "drained" 0 (Coordinator.pending c)

let test_coordinator_conservative_violation_raises () =
  let c =
    Coordinator.create ~shards:2 ~domains:1
      ~lookahead:(uniform_lookahead (Time.ms 2))
      ()
  in
  let s0 = Coordinator.shard c 0 in
  let raised = ref false in
  ignore
    (Shard.at s0 (Time.ms 10) (fun () ->
         (* now + 1ms < now + lookahead: would land in the peer's past. *)
         try ignore (Shard.post s0 ~dst:1 (Time.ms 11) (fun () -> ()))
         with Invalid_argument _ -> raised := true));
  Coordinator.run c;
  check Alcotest.bool "violation rejected" true !raised

let test_coordinator_cross_shard_cancel () =
  let c =
    Coordinator.create ~shards:2 ~domains:1
      ~lookahead:(uniform_lookahead (Time.ms 1))
      ()
  in
  let s0 = Coordinator.shard c 0 and s1 = Coordinator.shard c 1 in
  let fired = ref [] in
  (* (1) Cancelled before the barrier ever delivers it. *)
  let r1 = Shard.post s0 ~dst:1 (Time.ms 5) (fun () -> fired := 1 :: !fired) in
  Shard.cancel_post s0 r1;
  check Alcotest.bool "cancelled flag" true (Shard.post_is_cancelled r1);
  (* (2) Delivered, then cancelled from the posting shard mid-run: the
     cancellation crosses back at a later barrier, before its fire time. *)
  let r2 = Shard.post s0 ~dst:1 (Time.ms 50) (fun () -> fired := 2 :: !fired) in
  ignore
    (Shard.at s0 (Time.ms 10) (fun () ->
         (* Several barriers after delivery, 40 ms before it fires. *)
         Shard.cancel_post s0 r2));
  (* (3) A survivor, to prove the machinery doesn't over-cancel. *)
  ignore (Shard.post s0 ~dst:1 (Time.ms 6) (fun () -> fired := 3 :: !fired));
  (* Something must keep shard 1's horizon moving regardless. *)
  ignore (Shard.at s1 (Time.ms 60) (fun () -> ()));
  Coordinator.run c;
  check Alcotest.(list int) "only the survivor fired" [ 3 ] (List.rev !fired);
  check Alcotest.bool "late cancel recorded" true (Shard.post_is_cancelled r2);
  check Alcotest.int "no pending leftovers" 0 (Coordinator.pending c);
  (* (4) Cancelling a fired post is a no-op. *)
  let r3 = Shard.post s0 ~dst:1 (Time.add (Coordinator.now c) (Time.ms 5)) (fun () -> ()) in
  ignore (Shard.at s1 (Time.add (Coordinator.now c) (Time.ms 10)) (fun () -> ()));
  Coordinator.run c;
  Shard.cancel_post s0 r3;
  Coordinator.run c;
  check Alcotest.int "post-fire cancel is a no-op" 0 (Coordinator.pending c)

(* The seeded churn workload used by the invariance tests: every shard
   holds a population of events; each firing logs (time, id), does a
   little RNG-driven thinking, and either reschedules locally or migrates
   to a random peer one lookahead-plus-jitter later.  All state lives in
   per-shard array slots — the confinement contract. *)
let churn_workload c ~nshards ~horizon ~logs =
  let rec ev s id () =
    let sh = Coordinator.shard c s in
    let t = Shard.now sh in
    logs.(s) <- (t, id) :: logs.(s);
    let rng = Shard.rng sh in
    if Time.( < ) t horizon then
      if Rng.int rng 8 = 0 then begin
        let dst = (s + 1 + Rng.int rng (nshards - 1)) mod nshards in
        let dt = Time.add (Time.ms 2) (Time.us (Rng.int rng 500)) in
        ignore (Shard.post_after sh ~dst dt (ev dst id))
      end
      else
        ignore (Shard.after sh (Time.us (200 + Rng.int rng 800)) (ev s id))
  in
  for s = 0 to nshards - 1 do
    let sh = Coordinator.shard c s in
    for k = 0 to 3 do
      ignore
        (Shard.at sh
           (Time.us (100 + Rng.int (Shard.rng sh) 900))
           (ev s ((s * 16) + k)))
    done
  done

let sharded_churn_logs ~nshards ~domains ~seed =
  let c =
    Coordinator.create ~seed ~shards:nshards ~domains
      ~lookahead:(uniform_lookahead (Time.ms 2))
      ()
  in
  let logs = Array.make nshards [] in
  churn_workload c ~nshards ~horizon:(Time.ms 40) ~logs;
  Coordinator.run c;
  Array.map List.rev logs

let test_coordinator_domain_invariance () =
  (* The tentpole acceptance property, in-process: the same seeded
     workload must produce byte-identical per-shard event logs at 1, 2
     and 4 domains. *)
  let oracle = sharded_churn_logs ~nshards:5 ~domains:1 ~seed:11 in
  List.iter
    (fun domains ->
      let got = sharded_churn_logs ~nshards:5 ~domains ~seed:11 in
      Array.iteri
        (fun s oracle_log ->
          check
            Alcotest.(list (pair int int))
            (Printf.sprintf "shard %d log at %d domains" s domains)
            oracle_log got.(s))
        oracle)
    [ 2; 4 ]

let prop_sharded_matches_single_domain_oracle =
  (* Random connected lookahead graphs and random seeded timelines: the
     sharded run at 2 and 4 domains must equal the 1-domain oracle. *)
  QCheck.Test.make ~name:"sharded run = single-domain oracle" ~count:30
    QCheck.(pair (int_range 2 6) (int_bound 100_000))
    (fun (nshards, seed) ->
      let topo_rng = Rng.create (seed lxor 0x5eed) in
      (* A ring keeps it connected; extra chords randomize the shape.
         Continuous per-pair delays make cross-shard ties improbable. *)
      let delay = Array.make_matrix nshards nshards None in
      let set a b d =
        delay.(a).(b) <- Some d;
        delay.(b).(a) <- Some d
      in
      for s = 0 to nshards - 1 do
        set s ((s + 1) mod nshards) (Time.us (300 + Rng.int topo_rng 3000))
      done;
      for _ = 1 to nshards do
        let a = Rng.int topo_rng nshards and b = Rng.int topo_rng nshards in
        if a <> b && delay.(a).(b) = None then
          set a b (Time.us (300 + Rng.int topo_rng 3000))
      done;
      let lookahead s d = delay.(s).(d) in
      let run domains =
        let c =
          Coordinator.create ~seed ~shards:nshards ~domains ~lookahead ()
        in
        let logs = Array.make nshards [] in
        let rec ev s id () =
          let sh = Coordinator.shard c s in
          let t = Shard.now sh in
          logs.(s) <- (t, id) :: logs.(s);
          let rng = Shard.rng sh in
          if Time.( < ) t (Time.ms 25) then
            if Rng.int rng 6 = 0 then begin
              (* Migrate along an existing channel only. *)
              let nbrs = ref [] in
              for d = nshards - 1 downto 0 do
                if delay.(s).(d) <> None then nbrs := d :: !nbrs
              done;
              let nbrs = Array.of_list !nbrs in
              let dst = nbrs.(Rng.int rng (Array.length nbrs)) in
              let l = Option.get delay.(s).(dst) in
              let dt = Time.add l (Time.us (Rng.int rng 700)) in
              ignore (Shard.post_after sh ~dst dt (ev dst id))
            end
            else
              ignore (Shard.after sh (Time.us (150 + Rng.int rng 600)) (ev s id))
        in
        for s = 0 to nshards - 1 do
          let sh = Coordinator.shard c s in
          for k = 0 to 2 do
            ignore
              (Shard.at sh
                 (Time.us (50 + Rng.int (Shard.rng sh) 500))
                 (ev s ((s * 8) + k)))
          done
        done;
        Coordinator.run c;
        Array.map List.rev logs
      in
      let oracle = run 1 in
      List.for_all (fun domains -> run domains = oracle) [ 2; 4 ])

(* ---- the sharded Engine (windowed, domain-count-invariant) ------------- *)

let test_engine_sharded_matches_legacy () =
  (* Distinct timestamps: within a window the sharded engine drains shard
     by shard, so only cross-shard ties may reorder against legacy. *)
  let workload e =
    let log = ref [] in
    let note tag t = ignore (Engine.at e t (fun () -> log := (tag, Engine.now e) :: !log)) in
    note "a" (Time.ms 3);
    note "b" (Time.ms 1);
    ignore
      (Engine.at e (Time.ms 2) (fun () ->
           ignore (Engine.after e (Time.ms 4) (fun () -> log := ("nested", Engine.now e) :: !log));
           log := ("c", Engine.now e) :: !log));
    Engine.run e;
    List.rev !log
  in
  let legacy = workload (Engine.create ~seed:3 ()) in
  let sharded = workload (Engine.create ~seed:3 ~shards:4 ()) in
  check Alcotest.(list (pair string int)) "same schedule" legacy sharded

let test_engine_sharded_pending_cancel_compaction () =
  (* Satellite: the live counter and the lazy-delete sweep under
     per-shard queues, including cross-shard cancellation. *)
  let e = Engine.create ~shards:8 () in
  check Alcotest.int "eight shards" 8 (Engine.shards e);
  check Alcotest.bool "sharded" true (Engine.is_sharded e);
  let handles =
    List.init 200 (fun i ->
        Engine.at_shard e ~shard:(i mod 8) (Time.us (i + 1)) (fun () -> ()))
  in
  check Alcotest.int "all live" 200 (Engine.pending e);
  List.iteri (fun i h -> if i mod 2 = 0 then Engine.cancel h) handles;
  check Alcotest.int "cancelled excluded" 100 (Engine.pending e);
  (match handles with
  | h :: _ ->
      Engine.cancel h;
      check Alcotest.int "double cancel counted once" 100 (Engine.pending e)
  | [] -> ());
  (* Growth past the dead-entry sweep threshold, spread over shards. *)
  let fired = ref 0 in
  for i = 1 to 500 do
    ignore (Engine.at_shard e ~shard:(i mod 8) (Time.ms i) (fun () -> incr fired))
  done;
  check Alcotest.int "after sweep and growth" 600 (Engine.pending e);
  Engine.run e;
  check Alcotest.int "exactly the live ones fired" 600 (100 + !fired);
  check Alcotest.int "drained" 0 (Engine.pending e);
  check Alcotest.int "cancelled accounted" 100 (Engine.events_cancelled e)

let test_engine_sharded_cross_shard_cancel () =
  let e = Engine.create ~shards:4 () in
  let fired = ref false in
  let h = ref None in
  (* A shard-0 callback schedules onto shard 3, then cancels it later. *)
  ignore
    (Engine.at_shard e ~shard:0 (Time.ms 1) (fun () ->
         h := Some (Engine.at_shard e ~shard:3 (Time.ms 30) (fun () -> fired := true))));
  ignore
    (Engine.at_shard e ~shard:1 (Time.ms 10) (fun () ->
         Engine.cancel (Option.get !h)));
  Engine.run e;
  check Alcotest.bool "cross-shard handle cancelled in time" false !fired;
  check Alcotest.int "drained" 0 (Engine.pending e)

let test_engine_sharded_determinism () =
  let run () =
    let e = Engine.create ~seed:9 ~shards:Engine.default_logical_shards () in
    let acc = ref [] in
    let rng = Engine.rng e in
    for i = 1 to 60 do
      let d = Vini_std.Rng.int rng 5000 in
      let shard = Engine.shard_of e i in
      ignore
        (Engine.at_shard e ~shard (Time.us d) (fun () ->
             acc := (Engine.now e, shard, d) :: !acc))
    done;
    Engine.run e;
    List.rev !acc
  in
  check
    Alcotest.(list (triple int int int))
    "identical sharded runs" (run ()) (run ())

let test_engine_sharded_until_and_lookahead () =
  let e = Engine.create ~shards:4 () in
  Engine.set_lookahead e (Time.us 250);
  check time "lookahead readable" (Time.us 250) (Engine.lookahead e);
  ignore (Engine.at_shard e ~shard:2 (Time.sec 100) (fun () -> ()));
  Engine.run ~until:(Time.sec 10) e;
  check time "stopped at until" (Time.sec 10) (Engine.now e);
  check Alcotest.int "event still pending" 1 (Engine.pending e)

let suite =
  [
    Alcotest.test_case "time units" `Quick test_time_units;
    Alcotest.test_case "time arithmetic" `Quick test_time_arith;
    Alcotest.test_case "events fire in order" `Quick test_engine_ordering;
    Alcotest.test_case "equal times are fifo" `Quick test_engine_same_time_fifo;
    Alcotest.test_case "clock advances" `Quick test_engine_clock_advances;
    Alcotest.test_case "run ~until" `Quick test_engine_until_advances_clock;
    Alcotest.test_case "cancellation" `Quick test_engine_cancel;
    Alcotest.test_case "after is relative" `Quick test_engine_after_relative;
    Alcotest.test_case "past schedule clamps" `Quick test_engine_past_schedules_now;
    Alcotest.test_case "every stops on false" `Quick test_engine_every_stops;
    Alcotest.test_case "every jitter bounded" `Quick test_engine_every_jitter_bounded;
    Alcotest.test_case "single step" `Quick test_engine_step;
    Alcotest.test_case "deterministic replay" `Quick test_engine_deterministic_replay;
    Alcotest.test_case "trace records and finds" `Quick test_trace_order_and_find;
    Alcotest.test_case "trace ring wraparound" `Quick test_trace_ring_wraparound;
    Alcotest.test_case "trace category filtering" `Quick
      test_trace_category_filtering;
    Alcotest.test_case "trace global sink" `Quick test_trace_global_sink;
    Alcotest.test_case "pending counts live events" `Quick
      test_engine_pending_counts_live;
    Alcotest.test_case "engine instrumentation" `Quick
      test_engine_instrumentation;
    Alcotest.test_case "span double gate" `Quick test_span_double_gate;
    Alcotest.test_case "span ring bounded" `Quick test_span_ring_bounded;
    Alcotest.test_case "span queue helpers" `Quick test_span_queue_helpers;
    Alcotest.test_case "span disabled is inert" `Quick
      test_span_disabled_records_nothing;
    Alcotest.test_case "span attribution names" `Quick
      test_span_attribution_names;
    Alcotest.test_case "coordinator orders across shards" `Quick
      test_coordinator_orders_across_shards;
    Alcotest.test_case "coordinator rejects lookahead violations" `Quick
      test_coordinator_conservative_violation_raises;
    Alcotest.test_case "coordinator cross-shard cancel" `Quick
      test_coordinator_cross_shard_cancel;
    Alcotest.test_case "coordinator domain invariance" `Quick
      test_coordinator_domain_invariance;
    QCheck_alcotest.to_alcotest prop_sharded_matches_single_domain_oracle;
    Alcotest.test_case "sharded engine matches legacy" `Quick
      test_engine_sharded_matches_legacy;
    Alcotest.test_case "sharded engine pending and compaction" `Quick
      test_engine_sharded_pending_cancel_compaction;
    Alcotest.test_case "sharded engine cross-shard cancel" `Quick
      test_engine_sharded_cross_shard_cancel;
    Alcotest.test_case "sharded engine determinism" `Quick
      test_engine_sharded_determinism;
    Alcotest.test_case "sharded engine until and lookahead" `Quick
      test_engine_sharded_until_and_lookahead;
  ]
