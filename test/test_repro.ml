(* Regression guards over the reproduction harness: quick, reduced-size
   versions of the headline experiments with assertions on the *shape*
   EXPERIMENTS.md promises.  If a refactor drifts the calibrated model,
   these fail before the full bench does. *)

module Deter = Vini_repro.Deter
module Planetlab = Vini_repro.Planetlab
module Abilene = Vini_repro.Abilene

let check = Alcotest.check

let test_deter_ping_shape () =
  let net = Deter.network_ping ~count:1000 () in
  let iias = Deter.iias_ping ~count:1000 () in
  (* Table 3's shape: LAN RTT ~0.4 ms; the overlay adds 0.05-0.3 ms. *)
  check Alcotest.bool
    (Printf.sprintf "network avg ~0.41 (%.3f)" net.Deter.p_avg)
    true
    (net.Deter.p_avg > 0.35 && net.Deter.p_avg < 0.48);
  let delta = iias.Deter.p_avg -. net.Deter.p_avg in
  check Alcotest.bool
    (Printf.sprintf "overlay penalty ~0.13 ms (%.3f)" delta)
    true
    (delta > 0.05 && delta < 0.3);
  check (Alcotest.float 0.001) "no loss either way" 0.0
    (net.Deter.p_loss_pct +. iias.Deter.p_loss_pct)

let test_deter_tcp_shape () =
  let net = Deter.network_tcp ~runs:1 ~duration_s:2 () in
  let iias = Deter.iias_tcp ~runs:1 ~duration_s:2 () in
  (* Table 2's shape: kernel near line rate, Click CPU-bound near 1/5. *)
  check Alcotest.bool
    (Printf.sprintf "network near line rate (%.0f)" net.Deter.mbps_mean)
    true
    (net.Deter.mbps_mean > 850.0 && net.Deter.mbps_mean < 1000.0);
  check Alcotest.bool
    (Printf.sprintf "iias CPU-bound (%.0f)" iias.Deter.mbps_mean)
    true
    (iias.Deter.mbps_mean > 150.0 && iias.Deter.mbps_mean < 260.0);
  let ratio = net.Deter.mbps_mean /. iias.Deter.mbps_mean in
  check Alcotest.bool
    (Printf.sprintf "~5x gap (%.1f)" ratio)
    true (ratio > 3.5 && ratio < 6.5);
  check Alcotest.bool "click busy" true (iias.Deter.fwdr_cpu_pct > 70.0)

let test_planetlab_ordering () =
  (* Table 4's ordering must always hold: default < plvini <= network. *)
  let t c = (Planetlab.tcp c ~runs:1 ~duration_s:3 ()).Planetlab.mbps_mean in
  let net = t Planetlab.Network in
  let dflt = t Planetlab.Iias_default in
  let plv = t Planetlab.Iias_plvini in
  check Alcotest.bool
    (Printf.sprintf "default (%.1f) << plvini (%.1f)" dflt plv)
    true
    (dflt < plv /. 1.8);
  check Alcotest.bool
    (Printf.sprintf "plvini (%.1f) near network (%.1f)" plv net)
    true
    (plv > net *. 0.75 && plv <= net *. 1.02)

let test_planetlab_ping_ordering () =
  let p c = Planetlab.ping c ~count:2000 () in
  let net = p Planetlab.Network in
  let dflt = p Planetlab.Iias_default in
  let plv = p Planetlab.Iias_plvini in
  (* Table 5's shape: default share inflates avg ~3 ms, PL-VINI < 1 ms. *)
  check Alcotest.bool "default inflated" true (dflt.Planetlab.p_avg > net.Planetlab.p_avg +. 1.0);
  check Alcotest.bool "plvini tight" true (plv.Planetlab.p_avg < net.Planetlab.p_avg +. 1.0);
  check Alcotest.bool "plvini mdev tiny" true
    (plv.Planetlab.p_mdev < dflt.Planetlab.p_mdev /. 4.0)

let test_fig6_knee () =
  (* Loss must be ~0 at low rate and substantial at 40 Mb/s on the default
     share, and ~0 everywhere under PL-VINI. *)
  let d =
    Planetlab.loss_sweep Planetlab.Iias_default ~rates_mbps:[ 2.0; 40.0 ]
      ~duration_s:5 ()
  in
  let p =
    Planetlab.loss_sweep Planetlab.Iias_plvini ~rates_mbps:[ 2.0; 40.0 ]
      ~duration_s:5 ()
  in
  (match d with
  | [ (_, low); (_, high) ] ->
      check Alcotest.bool (Printf.sprintf "low rate clean (%.2f%%)" low) true
        (low < 2.0);
      check Alcotest.bool (Printf.sprintf "high rate lossy (%.2f%%)" high) true
        (high > 5.0)
  | _ -> Alcotest.fail "two points expected");
  List.iter
    (fun (rate, loss) ->
      check Alcotest.bool
        (Printf.sprintf "plvini clean at %.0f (%.2f%%)" rate loss)
        true (loss < 1.0))
    p

let test_fig8_shape () =
  let r = Abilene.fig8_run ~ping_interval_ms:500 () in
  check Alcotest.bool
    (Printf.sprintf "before ~78 (%.1f)" r.Abilene.rtt_before)
    true
    (r.Abilene.rtt_before > 75.0 && r.Abilene.rtt_before < 82.0);
  check Alcotest.bool
    (Printf.sprintf "backup ~95 (%.1f)" r.rtt_after)
    true
    (r.rtt_after > 91.0 && r.rtt_after < 99.0);
  check Alcotest.bool
    (Printf.sprintf "detected in (5,11] s (%.1f)" r.detect_delay)
    true
    (r.detect_delay > 5.0 && r.detect_delay <= 11.0);
  check Alcotest.bool "restored to primary" true
    (Float.abs (r.restore_rtt -. r.rtt_before) < 1.5)

let test_fig9_shape () =
  let r = Abilene.fig9_run () in
  check Alcotest.bool
    (Printf.sprintf "total ~12 MB (%.1f)" r.Abilene.total_mb)
    true
    (r.Abilene.total_mb > 8.0 && r.Abilene.total_mb < 18.0);
  check Alcotest.bool "stalls at the failure" true
    (r.stall_start > 9.0 && r.stall_start < 11.5);
  check Alcotest.bool
    (Printf.sprintf "resumes after reroute (%.1f)" r.stall_end)
    true
    (r.stall_end > 15.0 && r.stall_end < 30.0)

let test_upcalls () =
  let u1, u2 = Abilene.upcall_demo () in
  check Alcotest.int "exp1 both transitions" 2 u1;
  check Alcotest.int "exp2 both transitions" 2 u2

let test_expected_paths () =
  let primary, backup = Abilene.expected_paths () in
  check Alcotest.int "primary hops" 7 (List.length primary);
  check Alcotest.int "backup hops" 6 (List.length backup);
  check Alcotest.string "primary via Denver" "Denver"
    (List.nth primary 5);
  check Alcotest.bool "backup avoids Denver" true
    (not (List.mem "Denver" backup))

let test_trace_overhead () =
  (* The ISSUE acceptance bar: running Table 2's IIAS experiment with every
     trace category enabled must change throughput by < 10%.  Tracing draws
     no randomness and schedules no events, so the simulated result should
     in fact be bit-identical. *)
  let module Trace = Vini_sim.Trace in
  let baseline = Deter.iias_tcp ~runs:1 ~duration_s:1 () in
  let tr = Trace.create ~capacity:4096 ~categories:Trace.Category.all () in
  Trace.install tr;
  let traced =
    Fun.protect ~finally:Trace.uninstall (fun () ->
        Deter.iias_tcp ~runs:1 ~duration_s:1 ())
  in
  check Alcotest.bool "trace recorded events" true (Trace.length tr > 0);
  let rel =
    Float.abs (traced.Deter.mbps_mean -. baseline.Deter.mbps_mean)
    /. baseline.Deter.mbps_mean
  in
  check Alcotest.bool
    (Printf.sprintf "throughput within 10%% (%.0f vs %.0f, rel %.4f)"
       traced.Deter.mbps_mean baseline.Deter.mbps_mean rel)
    true (rel < 0.10);
  (* And a disabled-category sink records nothing. *)
  let quiet = Trace.create ~categories:[] () in
  Trace.install quiet;
  let _ =
    Fun.protect ~finally:Trace.uninstall (fun () ->
        Deter.iias_tcp ~runs:1 ~duration_s:1 ())
  in
  check Alcotest.int "disabled categories record nothing" 0 (Trace.length quiet)

let suite =
  [
    Alcotest.test_case "deter ping shape (Table 3)" `Slow test_deter_ping_shape;
    Alcotest.test_case "deter tcp shape (Table 2)" `Slow test_deter_tcp_shape;
    Alcotest.test_case "planetlab tcp ordering (Table 4)" `Slow test_planetlab_ordering;
    Alcotest.test_case "planetlab ping ordering (Table 5)" `Slow test_planetlab_ping_ordering;
    Alcotest.test_case "figure 6 knee" `Slow test_fig6_knee;
    Alcotest.test_case "figure 8 shape" `Slow test_fig8_shape;
    Alcotest.test_case "figure 9 shape" `Slow test_fig9_shape;
    Alcotest.test_case "upcalls (§6.1)" `Quick test_upcalls;
    Alcotest.test_case "figure 7 paths" `Quick test_expected_paths;
    Alcotest.test_case "trace overhead < 10% (§ISSUE)" `Slow test_trace_overhead;
  ]
