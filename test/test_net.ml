(* Unit and property tests for Vini_net: addresses, prefixes, wire sizes,
   checksums, and the packet model. *)

module Addr = Vini_net.Addr
module Prefix = Vini_net.Prefix
module Wire = Vini_net.Wire
module Packet = Vini_net.Packet

let check = Alcotest.check

let contains_sub haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let addr = Alcotest.testable (Fmt.of_to_string Addr.to_string) Addr.equal
let prefix = Alcotest.testable (Fmt.of_to_string Prefix.to_string) Prefix.equal

(* --- addresses ---------------------------------------------------------- *)

let test_addr_roundtrip () =
  List.iter
    (fun s -> check Alcotest.string "roundtrip" s (Addr.to_string (Addr.of_string s)))
    [ "0.0.0.0"; "10.1.2.3"; "198.32.154.250"; "255.255.255.255" ]

let test_addr_bad_strings () =
  List.iter
    (fun s ->
      check Alcotest.bool ("rejects " ^ s) true (Addr.of_string_opt s = None))
    [ ""; "1.2.3"; "1.2.3.4.5"; "256.1.1.1"; "-1.2.3.4"; "a.b.c.d"; "1..2.3" ]

let test_addr_octets () =
  check addr "octets" (Addr.of_string "192.168.1.42") (Addr.of_octets 192 168 1 42)

let test_addr_succ_wraps () =
  check addr "succ" (Addr.of_string "10.0.0.1") (Addr.succ (Addr.of_string "10.0.0.0"));
  check addr "wrap" Addr.any (Addr.succ Addr.broadcast)

let test_addr_of_int_range () =
  Alcotest.check_raises "negative" (Invalid_argument "Addr.of_int: out of range")
    (fun () -> ignore (Addr.of_int (-1)));
  Alcotest.check_raises "too big" (Invalid_argument "Addr.of_int: out of range")
    (fun () -> ignore (Addr.of_int 0x100000000))

let prop_addr_roundtrip_int =
  QCheck.Test.make ~name:"addr int roundtrip" ~count:500
    QCheck.(int_bound 0xFFFFFFF)
    (fun i -> Addr.to_int (Addr.of_int i) = i)

(* --- prefixes ----------------------------------------------------------- *)

let test_prefix_parse () =
  let p = Prefix.of_string "10.1.2.3/8" in
  check addr "masked network" (Addr.of_string "10.0.0.0") (Prefix.network p);
  check Alcotest.int "length" 8 (Prefix.length p);
  check Alcotest.string "print" "10.0.0.0/8" (Prefix.to_string p)

let test_prefix_bare_addr_is_host () =
  let p = Prefix.of_string "1.2.3.4" in
  check Alcotest.int "host route" 32 (Prefix.length p)

let test_prefix_contains () =
  let p = Prefix.of_string "10.0.0.0/8" in
  check Alcotest.bool "inside" true (Prefix.contains p (Addr.of_string "10.255.1.2"));
  check Alcotest.bool "outside" false (Prefix.contains p (Addr.of_string "11.0.0.1"));
  check Alcotest.bool "default contains all" true
    (Prefix.contains Prefix.default_route (Addr.of_string "8.8.8.8"))

let test_prefix_subsumes () =
  let outer = Prefix.of_string "10.0.0.0/8" in
  let inner = Prefix.of_string "10.1.0.0/16" in
  check Alcotest.bool "outer subsumes inner" true (Prefix.subsumes outer inner);
  check Alcotest.bool "inner not subsumes outer" false (Prefix.subsumes inner outer);
  check Alcotest.bool "self subsumes" true (Prefix.subsumes outer outer)

let test_prefix_host_and_broadcast () =
  let p = Prefix.of_string "10.1.0.4/30" in
  check addr "host 1" (Addr.of_string "10.1.0.5") (Prefix.host p 1);
  check addr "host 2" (Addr.of_string "10.1.0.6") (Prefix.host p 2);
  check addr "broadcast" (Addr.of_string "10.1.0.7") (Prefix.broadcast_addr p);
  check Alcotest.int "size" 4 (Prefix.size p)

let test_prefix_bad () =
  check Alcotest.bool "bad length" true (Prefix.of_string_opt "10.0.0.0/33" = None);
  check Alcotest.bool "bad addr" true (Prefix.of_string_opt "10.0.0/8" = None)

let prop_prefix_contains_own_network =
  QCheck.Test.make ~name:"prefix contains its own network and hosts" ~count:500
    QCheck.(pair (int_bound 0xFFFFFF) (int_bound 32))
    (fun (i, len) ->
      let p = Prefix.make (Addr.of_int (i * 17)) len in
      Prefix.contains p (Prefix.network p)
      && Prefix.contains p (Prefix.broadcast_addr p))

let prop_prefix_string_roundtrip =
  QCheck.Test.make ~name:"prefix string roundtrip" ~count:500
    QCheck.(pair (int_bound 0xFFFFFFF) (int_bound 32))
    (fun (i, len) ->
      let p = Prefix.make (Addr.of_int (i * 13)) len in
      Prefix.equal p (Prefix.of_string (Prefix.to_string p)))

(* --- wire / checksum ---------------------------------------------------- *)

let test_checksum_zero_buffer () =
  check Alcotest.int "all zero" 0xFFFF (Wire.checksum (Bytes.make 8 '\000'))

let test_checksum_known_vector () =
  (* Classic RFC 1071 example: 00 01 f2 03 f4 f5 f6 f7 -> sum ddf2,
     checksum = ~ddf2 = 220d. *)
  let buf = Bytes.of_string "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7" in
  check Alcotest.int "rfc1071 example" 0x220D (Wire.checksum buf)

let test_checksum_validates () =
  let buf = Bytes.of_string "\x45\x00\x00\x1cabcdef\x00\x00" in
  let c = Wire.checksum buf in
  (* Fold the checksum into the last two bytes. *)
  let n = Bytes.length buf in
  Bytes.set buf (n - 2) (Char.chr (c lsr 8));
  Bytes.set buf (n - 1) (Char.chr (c land 0xFF));
  check Alcotest.bool "verifies" true (Wire.checksum_valid buf)

let prop_checksum_detects_single_flip =
  QCheck.Test.make ~name:"checksum detects any single byte flip" ~count:200
    QCheck.(pair (string_of_size (Gen.int_range 4 64)) (int_bound 1000))
    (fun (s, k) ->
      QCheck.assume (String.length s >= 4);
      let buf = Bytes.of_string s in
      let c = Wire.checksum buf in
      let i = k mod Bytes.length buf in
      let orig = Bytes.get buf i in
      let flipped = Char.chr (Char.code orig lxor 0x5A) in
      QCheck.assume (flipped <> orig);
      Bytes.set buf i flipped;
      Wire.checksum buf <> c)

(* --- packets ------------------------------------------------------------ *)

let a = Addr.of_string "10.0.0.1"
let b = Addr.of_string "10.0.0.2"

let test_packet_udp_size () =
  let p = Packet.udp ~src:a ~dst:b ~sport:1000 ~dport:2000 (Packet.Bytes_ 100) in
  check Alcotest.int "udp size" (20 + 8 + 100) (Packet.size p)

let test_packet_tunnel_size () =
  let inner = Packet.udp ~src:a ~dst:b ~sport:1 ~dport:2 (Packet.Bytes_ 100) in
  let outer = Packet.udp ~src:a ~dst:b ~sport:3 ~dport:4 (Packet.Tunnel inner) in
  check Alcotest.int "tunnel adds outer ip+udp" (20 + 8 + (20 + 8 + 100))
    (Packet.size outer)

let test_packet_vpn_overhead () =
  let inner = Packet.udp ~src:a ~dst:b ~sport:1 ~dport:2 (Packet.Bytes_ 100) in
  let outer = Packet.udp ~src:a ~dst:b ~sport:3 ~dport:4 (Packet.Vpn inner) in
  check Alcotest.int "vpn total overhead matches Wire.openvpn_overhead"
    (Packet.size inner + Wire.openvpn_overhead)
    (Packet.size outer)

let test_packet_ttl () =
  let p = Packet.udp ~ttl:2 ~src:a ~dst:b ~sport:1 ~dport:2 (Packet.Bytes_ 1) in
  (match Packet.decr_ttl p with
  | Some p1 -> (
      check Alcotest.int "ttl decremented" 1 p1.Packet.ttl;
      match Packet.decr_ttl p1 with
      | Some _ -> Alcotest.fail "should expire"
      | None -> ())
  | None -> Alcotest.fail "should not expire yet")

let test_packet_nat_rewrites () =
  let p = Packet.udp ~src:a ~dst:b ~sport:1000 ~dport:2000 (Packet.Bytes_ 10) in
  let p = Packet.with_src p (Addr.of_string "4.4.4.4") in
  let p = Packet.with_udp_ports p ~sport:61001 ~dport:2000 in
  check addr "src rewritten" (Addr.of_string "4.4.4.4") p.Packet.src;
  (match p.Packet.proto with
  | Packet.Udp u -> check Alcotest.int "sport rewritten" 61001 u.Packet.usport
  | _ -> Alcotest.fail "not udp");
  Alcotest.check_raises "tcp rewrite on udp packet"
    (Invalid_argument "Packet.with_tcp_ports: not TCP") (fun () ->
      ignore (Packet.with_tcp_ports p ~sport:1 ~dport:2))

let test_packet_describe () =
  let p =
    Packet.icmp ~src:a ~dst:b
      (Packet.Echo_request { ident = 1; icmp_seq = 7; sent_ns = 0; data_len = 56 })
  in
  check Alcotest.bool "mentions echo" true
    (contains_sub (Packet.describe p) "echo request")

(* Property: the O(1) corruption flag agrees with the wire-level checksum
   oracle through arbitrary transform chains, so the fast path in the
   batched forwarding loop never diverges from actually checksumming the
   header. *)
let prop_intact_flag_equals_wire =
  let gen =
    QCheck.make
      QCheck.Gen.(
        pair (int_range 20 1400) (list_size (int_range 0 8) (int_range 0 3)))
      ~print:(fun (size, ops) ->
        Printf.sprintf "size=%d ops=%d" size (List.length ops))
  in
  QCheck.Test.make ~name:"intact flag = wire checksum oracle" ~count:300 gen
    (fun (size, ops) ->
      let pkt =
        List.fold_left
          (fun p op ->
            match op with
            | 0 -> ( match Packet.decr_ttl p with Some p' -> p' | None -> p)
            | 1 -> Packet.corrupted p
            | 2 -> Packet.with_src p (Addr.of_string "192.168.0.1")
            | _ -> Packet.with_udp_ports p ~sport:4242 ~dport:2000)
          (Packet.udp
             ~src:(Addr.of_string "10.0.0.1")
             ~dst:(Addr.of_string "10.0.0.2")
             ~sport:1000 ~dport:2000 (Packet.Bytes_ size))
          ops
      in
      Packet.intact pkt = Packet.intact_wire pkt)

let suite =
  [
    Alcotest.test_case "addr string roundtrip" `Quick test_addr_roundtrip;
    Alcotest.test_case "addr rejects bad strings" `Quick test_addr_bad_strings;
    Alcotest.test_case "addr octets" `Quick test_addr_octets;
    Alcotest.test_case "addr succ wraps" `Quick test_addr_succ_wraps;
    Alcotest.test_case "addr of_int range" `Quick test_addr_of_int_range;
    QCheck_alcotest.to_alcotest prop_addr_roundtrip_int;
    Alcotest.test_case "prefix parse+mask" `Quick test_prefix_parse;
    Alcotest.test_case "bare addr is /32" `Quick test_prefix_bare_addr_is_host;
    Alcotest.test_case "prefix contains" `Quick test_prefix_contains;
    Alcotest.test_case "prefix subsumes" `Quick test_prefix_subsumes;
    Alcotest.test_case "prefix host/broadcast" `Quick test_prefix_host_and_broadcast;
    Alcotest.test_case "prefix rejects bad" `Quick test_prefix_bad;
    QCheck_alcotest.to_alcotest prop_prefix_contains_own_network;
    QCheck_alcotest.to_alcotest prop_prefix_string_roundtrip;
    Alcotest.test_case "checksum zero buffer" `Quick test_checksum_zero_buffer;
    Alcotest.test_case "checksum known vector" `Quick test_checksum_known_vector;
    Alcotest.test_case "checksum verifies" `Quick test_checksum_validates;
    QCheck_alcotest.to_alcotest prop_checksum_detects_single_flip;
    Alcotest.test_case "udp packet size" `Quick test_packet_udp_size;
    Alcotest.test_case "tunnel encap size" `Quick test_packet_tunnel_size;
    Alcotest.test_case "vpn encap overhead" `Quick test_packet_vpn_overhead;
    Alcotest.test_case "ttl decrement/expiry" `Quick test_packet_ttl;
    Alcotest.test_case "nat field rewrites" `Quick test_packet_nat_rewrites;
    Alcotest.test_case "packet describe" `Quick test_packet_describe;
    QCheck_alcotest.to_alcotest prop_intact_flag_equals_wire;
  ]
