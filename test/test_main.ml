let () =
  Alcotest.run "vini"
    [
      ("std", Test_std.suite);
      ("net", Test_net.suite);
      ("sim", Test_sim.suite);
      ("topo", Test_topo.suite);
      ("click", Test_click.suite);
      ("phys", Test_phys.suite);
      ("routing", Test_routing.suite);
      ("transport", Test_transport.suite);
      ("measure", Test_measure.suite);
      ("profile", Test_profile.suite);
      ("overlay", Test_overlay.suite);
      ("keyspace", Test_keyspace.suite);
      ("core", Test_core.suite);
      ("chaos", Test_chaos.suite);
      ("spec", Test_spec.suite);
      ("rcc", Test_rcc.suite);
      ("repro", Test_repro.suite);
      ("embed", Test_embed.suite);
      ("migrate", Test_migrate.suite);
      ("scenario", Test_scenario.suite);
    ]
