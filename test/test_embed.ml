(* Tests for the capacity-aware slice embedding engine: both solvers,
   admission control and its structured rejections, the never-oversubscribe
   property, and crash-driven re-embedding end to end. *)

module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Graph = Vini_topo.Graph
module Underlay = Vini_phys.Underlay
module Slice = Vini_phys.Slice
module Iias = Vini_overlay.Iias
module Experiment = Vini_core.Experiment
module Vini = Vini_core.Vini
module Substrate = Vini_embed.Substrate
module Embed = Vini_embed.Embed
module Request = Vini_embed.Request
module Migration = Vini_repro.Migration
module Ping = Vini_measure.Ping
module Export = Vini_measure.Export

let check = Alcotest.check

let link ?(bw = 1e9) ?(w = 1) a b =
  { Graph.a; b; bandwidth_bps = bw; delay = Time.ms 1; loss = 0.0; weight = w }

let abilene () = Vini_rcc.Rcc.abilene ()

let solve_ok sub ~vtopo req =
  match Embed.solve sub ~vtopo req with
  | Ok m -> m
  | Error r -> Alcotest.failf "solve rejected: %s" (Embed.rejection_to_string r)

let admit_ok sub ~vtopo req =
  match Embed.admit sub ~vtopo req with
  | Ok m -> m
  | Error r -> Alcotest.failf "admit rejected: %s" (Embed.rejection_to_string r)

(* --- solvers ------------------------------------------------------------ *)

let test_greedy_places_ring () =
  let sub = Substrate.of_graph (abilene ()) in
  let vtopo = Migration.virtual_ring 6 in
  let req = Request.make ~cpu:(fun _ -> 0.25) ~bw:(fun _ -> 1e8) () in
  let m = solve_ok sub ~vtopo req in
  let distinct = List.sort_uniq compare (Array.to_list m.Embed.nodes) in
  check Alcotest.int "injective" 6 (List.length distinct);
  check Alcotest.int "one path per vlink" (Graph.link_count vtopo)
    (List.length m.Embed.vpaths);
  check Alcotest.bool "mapping validates" true
    (Embed.check sub ~vtopo req m = Ok ());
  (* [solve] is pure: nothing was reserved yet. *)
  check (Alcotest.float 0.0) "solve reserves nothing" 0.0
    (Substrate.node_used sub m.Embed.nodes.(0));
  Embed.commit sub ~vtopo req m;
  Array.iter
    (fun p ->
      check (Alcotest.float 1e-9) "cpu reserved" 0.25
        (Substrate.node_used sub p))
    m.Embed.nodes;
  Embed.withdraw sub ~vtopo req m;
  Array.iter
    (fun p ->
      check (Alcotest.float 1e-9) "cpu released" 0.0
        (Substrate.node_used sub p))
    m.Embed.nodes;
  List.iter
    (fun (l : Graph.link) ->
      check (Alcotest.float 1e-9) "bw released" 0.0
        (Substrate.link_used sub l.Graph.a l.Graph.b))
    (Graph.links (Substrate.graph sub))

let test_online_deterministic () =
  let vtopo = Migration.virtual_ring 5 in
  let solve seed =
    let sub = Substrate.of_graph (abilene ()) in
    (* Asymmetric pre-load, so congestion pricing has something to see. *)
    Substrate.reserve_node sub 0 0.5;
    Substrate.reserve_node sub 1 0.25;
    solve_ok sub ~vtopo
      (Request.make ~algo:Request.Online
         ~cpu:(fun _ -> 0.3)
         ~bw:(fun _ -> 1e8)
         ~seed ())
  in
  let m1 = solve 7 and m2 = solve 7 in
  check
    Alcotest.(list int)
    "same seed, same placement"
    (Array.to_list m1.Embed.nodes)
    (Array.to_list m2.Embed.nodes);
  check Alcotest.bool "same seed, same paths" true
    (m1.Embed.vpaths = m2.Embed.vpaths)

(* --- structured rejections ---------------------------------------------- *)

let test_structured_rejections () =
  let small =
    Graph.create
      ~names:[| "a"; "b"; "c"; "d" |]
      ~links:[ link 0 1; link 1 2; link 2 3; link 3 0 ]
  in
  let sub = Substrate.of_graph small in
  (match Embed.solve sub ~vtopo:(Migration.virtual_ring 6) (Request.make ()) with
  | Error (Embed.Too_large { vnodes = 6; pnodes = 4 }) -> ()
  | _ -> Alcotest.fail "expected Too_large");
  (match
     Embed.solve sub ~vtopo:(Migration.virtual_ring 3)
       (Request.make ~cpu:(fun _ -> 2.0) ())
   with
  | Error (Embed.Node_exhausted { demand; best_residual; _ }) ->
      check (Alcotest.float 1e-9) "demand" 2.0 demand;
      check (Alcotest.float 1e-9) "best residual on offer" 1.0 best_residual
  | _ -> Alcotest.fail "expected Node_exhausted");
  (match
     Embed.solve sub ~vtopo:(Migration.virtual_ring 3)
       (Request.make ~pins:[ (0, 99) ] ())
   with
  | Error (Embed.Pin_invalid { vnode = 0; pnode = 99; _ }) -> ()
  | _ -> Alcotest.fail "expected Pin_invalid");
  let pair = Graph.create ~names:[| "v0"; "v1" |] ~links:[ link 0 1 ] in
  let thin =
    Substrate.of_graph
      (Graph.create ~names:[| "a"; "b" |] ~links:[ link ~bw:1e6 0 1 ])
  in
  (match
     Embed.solve thin ~vtopo:pair
       (Request.make ~bw:(fun _ -> 1e7) ~pins:[ (0, 0); (1, 1) ] ())
   with
  | Error (Embed.Link_exhausted { demand; _ }) ->
      check (Alcotest.float 1.0) "bw demand" 1e7 demand
  | _ -> Alcotest.fail "expected Link_exhausted");
  let split =
    Substrate.of_graph
      (Graph.create ~names:[| "a"; "b"; "c"; "d" |] ~links:[ link 0 1; link 2 3 ])
  in
  (match
     Embed.solve split ~vtopo:pair
       (Request.make ~pins:[ (0, 0); (1, 2) ] ())
   with
  | Error (Embed.Unreachable { va = 0; vb = 1 }) -> ()
  | _ -> Alcotest.fail "expected Unreachable");
  check Alcotest.string "stable kind tag" "node_exhausted"
    (Embed.rejection_kind
       (Embed.Node_exhausted { vnode = 0; demand = 1.0; best_residual = 0.0 }))

(* --- admission control --------------------------------------------------- *)

let test_admission_sequence () =
  (* 11 Abilene sites at 1.0 core each, 6 vnodes at 0.6: exactly one slice
     fits, the rest bounce — and the books balance. *)
  let sub = Substrate.of_graph (abilene ()) in
  let vtopo = Migration.virtual_ring 6 in
  for i = 0 to 9 do
    ignore
      (Embed.admit sub ~vtopo
         (Request.make
            ~name:(Printf.sprintf "s%d" i)
            ~cpu:(fun _ -> 0.6)
            ()))
  done;
  check Alcotest.int "one admitted" 1 (Substrate.admitted sub);
  check Alcotest.int "nine rejected" 9 (Substrate.rejected sub);
  check (Alcotest.float 1e-9) "acceptance rate" 0.1
    (Substrate.acceptance_rate sub);
  List.iter
    (fun p ->
      check Alcotest.bool "never oversubscribed" true
        (Substrate.node_used sub p <= Substrate.node_capacity sub p +. 1e-9))
    (Graph.nodes (Substrate.graph sub))

let test_reembed_pins_survivors () =
  let sub = Substrate.of_graph (abilene ()) in
  let vtopo = Migration.virtual_ring 4 in
  let req = Request.make ~cpu:(fun _ -> 0.25) ~bw:(fun _ -> 1e8) () in
  let m = admit_ok sub ~vtopo req in
  let old_host = m.Embed.nodes.(2) in
  (* Displace vnode 2: withdraw the slice and squeeze its old host so it no
     longer fits there. *)
  Embed.withdraw sub ~vtopo req m;
  Substrate.reserve_node sub old_host 0.9;
  (match Embed.reembed sub ~vtopo req m ~vnode:2 with
  | Error r -> Alcotest.failf "reembed: %s" (Embed.rejection_to_string r)
  | Ok m' ->
      Array.iteri
        (fun v p ->
          if v <> 2 then
            check Alcotest.int "survivor never moves" p m'.Embed.nodes.(v))
        m.Embed.nodes;
      check Alcotest.bool "displaced vnode moved" true
        (m'.Embed.nodes.(2) <> old_host))

(* --- the never-oversubscribe property ------------------------------------ *)

let prop_solvers_respect_capacity =
  QCheck.Test.make ~name:"solvers never oversubscribe the substrate"
    ~count:80
    QCheck.(
      quad (int_range 4 10) (int_range 2 6) (int_bound 1000) bool)
    (fun (np, nv, seed, online) ->
      (* qcheck's int_range shrinker can leave the range; clamp instead of
         raising so shrink artifacts don't mask the real counterexample. *)
      let np = max 4 (min 10 np) and nv = max 2 (min 6 nv) in
      let seed = abs seed in
      let g =
        Vini_topo.Datasets.waxman ~rng:(Vini_std.Rng.create (seed + 17)) ~n:np ()
      in
      let sub = Substrate.of_graph g in
      let vtopo = Migration.virtual_ring nv in
      let rng = Vini_std.Rng.create seed in
      let algo = if online then Request.Online else Request.Greedy in
      (* An arrival sequence that collectively oversubscribes: some slices
         must bounce, none may push usage past capacity. *)
      for i = 0 to 7 do
        let cpu = 0.1 +. (0.05 *. float_of_int (Vini_std.Rng.int rng 10)) in
        let bw = 1e7 *. float_of_int (Vini_std.Rng.int rng 30) in
        ignore
          (Embed.admit sub ~vtopo
             (Request.make
                ~name:(Printf.sprintf "s%d" i)
                ~cpu:(fun _ -> cpu)
                ~bw:(fun _ -> bw)
                ~algo ~seed:i ()))
      done;
      let eps = 1e-6 in
      List.for_all
        (fun p ->
          Substrate.node_used sub p <= Substrate.node_capacity sub p +. eps)
        (Graph.nodes g)
      && List.for_all
           (fun (l : Graph.link) ->
             Substrate.link_used sub l.Graph.a l.Graph.b
             <= Substrate.link_capacity sub l.Graph.a l.Graph.b +. eps)
           (Graph.links g))

(* --- crash-driven re-embedding, end to end -------------------------------- *)

let test_crash_migration_end_to_end () =
  let r = Migration.run ~seed:4242 ~duration:20.0 () in
  check Alcotest.bool "a migration happened" true (r.Migration.migrations <> []);
  check Alcotest.int "no reembed failures" 0
    (List.length r.Migration.reembed_failures);
  let m = List.hd r.Migration.migrations in
  check Alcotest.int "vnode 0 was displaced" 0 m.Vini.m_vnode;
  check Alcotest.int "from its original host" r.Migration.placement_before.(0)
    m.Vini.m_from;
  check Alcotest.int "to its recorded target" r.Migration.placement_after.(0)
    m.Vini.m_to;
  check Alcotest.bool "actually moved" true (m.Vini.m_from <> m.Vini.m_to);
  let down = Time.to_sec_f m.Vini.m_down_at in
  let up = Time.to_sec_f m.Vini.m_restored_at in
  check Alcotest.bool "positive downtime" true (up > down);
  check Alcotest.bool "prompt recovery" true (up -. down < 5.0);
  Array.iteri
    (fun v p ->
      if v <> 0 then
        check Alcotest.int "survivors stayed put" p
          r.Migration.placement_after.(v))
    r.Migration.placement_before;
  (* Traffic to the revived vnode resumed after the move. *)
  let tail =
    List.filter (fun (t, _) -> t > up +. 2.0) r.Migration.ping_series
  in
  check Alcotest.bool "traffic resumed" true (tail <> [])

let test_migration_export_deterministic () =
  (* The acceptance bar for the whole pipeline: a seeded run with
     auto-embedding and a mid-run Crash_pnode produces a byte-identical
     vini.embed/1 document when repeated. *)
  let a = Migration.run ~seed:99 ~duration:20.0 () in
  let b = Migration.run ~seed:99 ~duration:20.0 () in
  check Alcotest.string "byte-identical export"
    (Export.to_string a.Migration.export)
    (Export.to_string b.Migration.export);
  (match Export.member "schema" a.Migration.export with
  | Some (Export.Str s) ->
      check Alcotest.string "schema" Export.embed_schema_version s
  | _ -> Alcotest.fail "schema tag missing");
  (match Export.member "migrations" a.Migration.export with
  | Some (Export.Arr (_ :: _)) -> ()
  | _ -> Alcotest.fail "migration (with downtime) missing from export")

let test_planned_restore_is_not_migrated () =
  (* A Crash_pnode paired with a later Restore_pnode is planned downtime:
     the supervisor restarts in place and the embedder stays out of it. *)
  let engine = Engine.create ~seed:5 () in
  let profile _ = Underlay.planetlab_profile ~speed_ghz:2.0 in
  let vini = Vini.create ~engine ~graph:(abilene ()) ~profile () in
  let vtopo = Migration.virtual_ring 4 in
  let req = Request.make ~name:"planned" ~cpu:(fun _ -> 0.25) () in
  let spec =
    Experiment.make ~name:"planned" ~slice:(Slice.pl_vini "planned") ~vtopo
      ~placement:(Experiment.Auto req)
      ~events:
        [
          Experiment.at 5.0 (Experiment.Crash_pnode 1);
          Experiment.at 12.0 (Experiment.Restore_pnode 1);
        ]
      ()
  in
  let inst = Vini.deploy vini spec in
  let before = Iias.current_embedding (Vini.iias inst) in
  Vini.start inst;
  Engine.run ~until:(Time.sec 20) engine;
  check Alcotest.int "no migrations" 0 (List.length (Vini.migrations inst));
  check
    Alcotest.(list int)
    "placement unchanged" (Array.to_list before)
    (Array.to_list (Iias.current_embedding (Vini.iias inst)))

let test_reembed_converges_to_fresh_deploy () =
  (* After the crash-driven re-embed, the slice should carry traffic like a
     fresh deploy of the surviving mapping onto the degraded substrate. *)
  let r = Migration.run ~seed:2026 ~duration:20.0 () in
  let m = List.hd r.Migration.migrations in
  let restored = Time.to_sec_f m.Vini.m_restored_at in
  let t0 = restored +. 1.0 in
  let t_end = 50.0 (* last ping leaves at warmup (30 s) + duration (20 s) *) in
  let window = t_end -. t0 in
  let tail_replies =
    List.length (List.filter (fun (t, _) -> t >= t0) r.Migration.ping_series)
  in
  (* The reply count is binned by receipt time, so replies to probes sent
     just before [t0] can nudge the estimate past 1; cap it — above 1 it
     means the same thing as 1: everything sent in the tail came back. *)
  let tail_rate =
    Float.min 1.0 (float_of_int tail_replies /. (window /. 0.25))
  in
  (* The same surviving mapping, deployed fresh with the dead machine down
     from the start, observed over an equally long window. *)
  let engine = Engine.create ~seed:2026 () in
  let profile _ = Underlay.planetlab_profile ~speed_ghz:2.0 in
  let vini = Vini.create ~engine ~graph:(abilene ()) ~profile () in
  Underlay.set_node_state (Vini.underlay vini) m.Vini.m_from false;
  let vtopo = Migration.virtual_ring 6 in
  let spec =
    Experiment.make ~name:"fresh" ~slice:(Slice.pl_vini "fresh") ~vtopo
      ~embedding:(fun v -> r.Migration.placement_after.(v))
      ()
  in
  let inst = Vini.deploy vini spec in
  Vini.start inst;
  let iias = Vini.iias inst in
  Engine.run ~until:(Time.of_sec_f 30.0) engine;
  let ping =
    Ping.start
      ~stack:(Iias.tap (Iias.vnode iias 3))
      ~dst:(Iias.tap_addr (Iias.vnode iias 0))
      ~count:(int_of_float (window /. 0.25))
      ~mode:(Ping.Interval (Time.ms 250))
      ~reply_timeout:(Time.ms 900) ()
  in
  Engine.run ~until:(Time.of_sec_f (30.0 +. window +. 5.0)) engine;
  let fresh_rate =
    float_of_int (Ping.received ping)
    /. float_of_int (max 1 (Ping.sent ping))
  in
  check Alcotest.bool
    (Printf.sprintf "acceptance converged (re-embedded %.2f vs fresh %.2f)"
       tail_rate fresh_rate)
    true
    (Float.abs (fresh_rate -. tail_rate) <= 0.1)

let suite =
  [
    Alcotest.test_case "greedy places a ring" `Quick test_greedy_places_ring;
    Alcotest.test_case "online solver deterministic" `Quick
      test_online_deterministic;
    Alcotest.test_case "structured rejections" `Quick
      test_structured_rejections;
    Alcotest.test_case "admission sequence" `Quick test_admission_sequence;
    Alcotest.test_case "reembed pins survivors" `Quick
      test_reembed_pins_survivors;
    QCheck_alcotest.to_alcotest prop_solvers_respect_capacity;
    Alcotest.test_case "crash migration end to end" `Quick
      test_crash_migration_end_to_end;
    Alcotest.test_case "vini.embed/1 export deterministic" `Quick
      test_migration_export_deterministic;
    Alcotest.test_case "planned restore is not migrated" `Quick
      test_planned_restore_is_not_migrated;
    Alcotest.test_case "re-embed converges to fresh deploy" `Quick
      test_reembed_converges_to_fresh_deploy;
  ]
