(* Tests for the Internet-scale scenario generator (DESIGN.md §17):
   seeded topology generation and its vini.topo/1 interchange format,
   the lazy heavy-tailed workload stream, the fluid background-load
   model's conservation law, and the spec-language / Vini.start
   integration of hybrid fidelity. *)

module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Graph = Vini_topo.Graph
module Underlay = Vini_phys.Underlay
module Generate = Vini_scenario.Generate
module Workload = Vini_scenario.Workload
module Fluid = Vini_scenario.Fluid
module Spec_lang = Vini_core.Spec_lang
module Vini = Vini_core.Vini
module Json = Vini_std.Json

let check = Alcotest.check

let mentions ~frag s =
  let n = String.length frag in
  let rec go i = (i + n <= String.length s) && (String.sub s i n = frag || go (i + 1)) in
  go 0

(* An arbitrary generator spec from two small integers: covers all three
   kinds with in-range parameters. *)
let spec_of ~pick ~n ~seed =
  let kind =
    match pick mod 3 with
    | 0 -> Generate.waxman (2 + (n mod 40))
    | 1 -> Generate.fat_tree (2 * (1 + (n mod 4)))
    | _ -> Generate.backbone (2 + (n mod 64))
  in
  { Generate.kind; seed }

(* --- generation properties ----------------------------------------------- *)

let prop_document_deterministic =
  QCheck.Test.make ~name:"same (kind, params, seed) => byte-identical document"
    ~count:60
    QCheck.(triple (int_bound 2) (int_bound 1_000) (int_bound 10_000))
    (fun (pick, n, seed) ->
      let spec = spec_of ~pick ~n ~seed in
      String.equal (Generate.document spec) (Generate.document spec))

let prop_generated_connected =
  QCheck.Test.make ~name:"generated substrates are connected" ~count:60
    QCheck.(triple (int_bound 2) (int_bound 1_000) (int_bound 10_000))
    (fun (pick, n, seed) ->
      Graph.is_connected (Generate.generate (spec_of ~pick ~n ~seed)))

let prop_delay_weight_monotone =
  QCheck.Test.make ~name:"link delay and IGP weight are monotone in distance"
    ~count:200
    QCheck.(pair (float_range 0.0 6_000.0) (float_range 0.0 6_000.0))
    (fun (km1, km2) ->
      let lo, hi = if km1 <= km2 then (km1, km2) else (km2, km1) in
      let d_lo = Generate.delay_of_km lo and d_hi = Generate.delay_of_km hi in
      Time.compare d_lo d_hi <= 0
      && Generate.weight_of_delay d_lo <= Generate.weight_of_delay d_hi)

(* --- the vini.topo/1 format ---------------------------------------------- *)

let test_topo_roundtrip () =
  let spec = { Generate.kind = Generate.backbone 24; seed = 5 } in
  let g = Generate.generate spec in
  let g' =
    match Json.of_string (Generate.document spec) with
    | Error e -> Alcotest.failf "reparse: %s" e
    | Ok j -> (
        match Generate.of_json j with
        | Error e -> Alcotest.failf "of_json: %s" e
        | Ok g' -> g')
  in
  check Alcotest.string "label survives" (Graph.label g) (Graph.label g');
  check Alcotest.int "nodes survive" (Graph.node_count g) (Graph.node_count g');
  check Alcotest.int "links survive" (Graph.link_count g) (Graph.link_count g');
  List.iter2
    (fun (a : Graph.link) (b : Graph.link) ->
      check Alcotest.int "endpoint a" a.Graph.a b.Graph.a;
      check Alcotest.int "endpoint b" a.Graph.b b.Graph.b;
      check Alcotest.int "delay" 0 (Time.compare a.Graph.delay b.Graph.delay);
      check Alcotest.int "weight" a.Graph.weight b.Graph.weight)
    (Graph.links g) (Graph.links g')

let test_topo_rejects_wrong_schema () =
  match Generate.of_json (Json.Obj [ ("schema", Json.Str "vini.metrics/1") ]) with
  | Ok _ -> Alcotest.fail "accepted a metrics document as a topology"
  | Error e ->
      check Alcotest.bool "error names the schema" true
        (mentions ~frag:"vini.topo/1" e)

(* --- workload properties -------------------------------------------------- *)

let pull n stream = List.init n (fun _ -> Workload.next stream)

let prop_workload_deterministic =
  QCheck.Test.make ~name:"workload stream is a pure function of (params, seed)"
    ~count:40
    QCheck.(pair (int_bound 10_000) (int_range 2 50))
    (fun (seed, nodes) ->
      let p = Workload.default ~users:1_000 ~seed in
      let a = pull 200 (Workload.create p ~nodes) in
      let b = pull 200 (Workload.create p ~nodes) in
      a = b)

let prop_workload_well_formed =
  QCheck.Test.make ~name:"flows are ordered, sized, and never self-addressed"
    ~count:40
    QCheck.(pair (int_bound 10_000) (int_range 2 50))
    (fun (seed, nodes) ->
      let p = Workload.default ~users:1_000 ~seed in
      let flows = pull 300 (Workload.create p ~nodes) in
      let ordered =
        List.for_all2
          (fun a b -> Time.compare a.Workload.at b.Workload.at < 0)
          (List.filteri (fun i _ -> i < 299) flows)
          (List.tl flows)
      in
      ordered
      && List.for_all
           (fun f ->
             f.Workload.src_node <> f.Workload.dst_node
             && f.Workload.src_node >= 0
             && f.Workload.src_node < nodes
             && f.Workload.dst_node >= 0
             && f.Workload.dst_node < nodes
             && f.Workload.bytes >= 1
             && f.Workload.wire_bytes > f.Workload.bytes)
           flows)

(* Pareto(scale s, shape a) has E[ln (X/s)] = 1/a, so the MLE tail index
   from a seeded sample must sit near the configured shape. *)
let test_workload_heavy_tail () =
  let shape = 1.5 in
  let p =
    { (Workload.default ~users:100_000 ~seed:11) with
      Workload.pareto_shape = shape }
  in
  let scale = p.Workload.mean_flow_bytes *. (shape -. 1.0) /. shape in
  let stream = Workload.create p ~nodes:20 in
  let n = 20_000 in
  let sum_log = ref 0.0 in
  for _ = 1 to n do
    let f = Workload.next stream in
    sum_log := !sum_log +. log (float_of_int f.Workload.bytes /. scale)
  done;
  let mle = 1.0 /. (!sum_log /. float_of_int n) in
  if Float.abs (mle -. shape) > 0.1 then
    Alcotest.failf "tail index estimate %.3f too far from shape %.1f" mle shape

let test_workload_homes_skewed () =
  let nodes = 20 in
  let p = Workload.default ~users:10_000 ~seed:3 in
  let counts = Array.make nodes 0 in
  for u = 0 to p.Workload.users - 1 do
    let h = Workload.home_node p ~nodes u in
    check Alcotest.bool "home in range" true (h >= 0 && h < nodes);
    check Alcotest.int "home is pure" h (Workload.home_node p ~nodes u);
    counts.(h) <- counts.(h) + 1
  done;
  let sorted = Array.copy counts in
  Array.sort (fun a b -> compare b a) sorted;
  let top = float_of_int (sorted.(0) + sorted.(1) + sorted.(2)) in
  let uniform_top = 3.0 /. float_of_int nodes *. float_of_int p.Workload.users in
  if top < 1.5 *. uniform_top then
    Alcotest.failf
      "skew 1.0 should concentrate users: top-3 nodes hold %.0f, uniform \
       would be %.0f"
      top uniform_top

(* --- fluid model ---------------------------------------------------------- *)

let make_fluid ?(fidelity = Fluid.Flow) ?(users = 200_000) ~seed () =
  let engine = Engine.create ~seed () in
  let graph = Generate.generate { Generate.kind = Generate.backbone 16; seed } in
  let under =
    Underlay.create ~engine ~rng:(Vini_std.Rng.split (Engine.rng engine)) ~graph
      ()
  in
  let workload = Workload.default ~users ~seed:(seed + 1) in
  let fl =
    Fluid.install ~under { Fluid.fidelity; tick = Fluid.default_tick; workload }
  in
  (engine, fl)

let conserved (tot : Fluid.totals) =
  let rhs = tot.Fluid.drained_bytes +. tot.Fluid.dropped_bytes
            +. tot.Fluid.backlog_bytes
  in
  Float.abs (tot.Fluid.offered_bytes -. rhs)
  <= 1e-9 *. Float.max 1.0 tot.Fluid.offered_bytes

let prop_fluid_conserves =
  QCheck.Test.make ~name:"fluid model conserves offered load" ~count:15
    QCheck.(int_bound 10_000)
    (fun seed ->
      let engine, fl = make_fluid ~seed () in
      Engine.run ~until:(Time.sec 5) engine;
      let tot = Fluid.totals fl in
      Fluid.ticks fl > 0 && tot.Fluid.flows > 0 && conserved tot)

let test_fluid_loss_under_overload () =
  (* 40M users at the default per-user rate offer ~16 Gb/s of background
     load; a 16-PoP backbone's 10G links must saturate, queue, and shed. *)
  let engine, fl = make_fluid ~users:40_000_000 ~seed:5 () in
  Engine.run ~until:(Time.sec 5) engine;
  let tot = Fluid.totals fl in
  check Alcotest.bool "conservation holds under overload" true (conserved tot);
  if tot.Fluid.dropped_bytes +. tot.Fluid.backlog_bytes <= 0.0 then
    Alcotest.fail "expected queueing or loss under a 40M-user offered load"

(* --- spec language and Vini.start integration ---------------------------- *)

let scenario_spec =
  {|experiment scenario-it
slice reserved 0.25 rt
topology generate backbone 24 seed 9
workload users 500000 seed 3 rate 0.002 bytes 40000 shape 1.5 skew 1
fidelity hybrid tick 100ms
node a
node b
node c
link a b bw 1g delay 5ms weight 500
link b c bw 1g delay 5ms weight 500
routing ospf hello 5 dead 10
|}

let test_spec_verbs_parse () =
  let p =
    match Spec_lang.parse scenario_spec with
    | Ok p -> p
    | Error e -> Alcotest.failf "parse: %s" e
  in
  let g =
    match Spec_lang.substrate_graph p with
    | Ok (Some g) -> g
    | Ok None -> Alcotest.fail "spec declares a substrate"
    | Error e -> Alcotest.failf "substrate: %s" e
  in
  check Alcotest.string "substrate label" "backbone-24-s9" (Graph.label g);
  check Alcotest.int "substrate size" 24 (Graph.node_count g);
  (match Spec_lang.workload p with
  | None -> Alcotest.fail "spec declares a workload"
  | Some w ->
      check Alcotest.int "users" 500_000 w.Workload.users;
      check Alcotest.int "workload seed" 3 w.Workload.seed);
  match Spec_lang.fidelity p with
  | Some (Fluid.Hybrid, tick) ->
      check Alcotest.int "tick ms" 100 (int_of_float (Time.to_ms_f tick))
  | _ -> Alcotest.fail "expected hybrid fidelity, tick 100ms"

let test_spec_fidelity_requires_workload () =
  let text =
    {|experiment bad
slice fair
fidelity hybrid
node a
node b
link a b bw 1g delay 1ms weight 1
routing static
|}
  in
  let p =
    match Spec_lang.parse text with
    | Ok p -> p
    | Error e -> Alcotest.failf "parse: %s" e
  in
  match Spec_lang.to_spec p ~phys:(Vini_rcc.Rcc.abilene ()) with
  | Ok _ -> Alcotest.fail "fidelity without workload must not elaborate"
  | Error e ->
      check Alcotest.bool "error mentions the workload" true
        (mentions ~frag:"workload" e)

let test_hybrid_installs_on_start () =
  let p =
    match Spec_lang.parse scenario_spec with
    | Ok p -> p
    | Error e -> Alcotest.failf "parse: %s" e
  in
  let phys =
    match Spec_lang.substrate_graph p with
    | Ok (Some g) -> g
    | _ -> Alcotest.fail "substrate expected"
  in
  let spec =
    match Spec_lang.to_spec p ~phys with
    | Ok s -> s
    | Error e -> Alcotest.failf "to_spec: %s" e
  in
  let engine = Engine.create ~seed:2 () in
  let vini = Vini.create ~engine ~graph:phys () in
  let inst = Vini.deploy vini spec in
  check Alcotest.bool "no fluid before start" true (Vini.fluid inst = None);
  Vini.start inst;
  let fl =
    match Vini.fluid inst with
    | Some fl -> fl
    | None -> Alcotest.fail "hybrid fidelity must install the fluid model"
  in
  Vini.run ~until:(Time.sec 3) vini;
  check Alcotest.bool "ticks advanced" true (Fluid.ticks fl > 0);
  check Alcotest.bool "conserved" true (conserved (Fluid.totals fl));
  (* The scenario document for this run serialises deterministically. *)
  let doc () =
    Vini_measure.Export.to_string
      (Vini_measure.Export.scenario_document ~fluid:fl
         ~under:(Vini.underlay vini) ~substrate:phys
         ~workload:(Option.get (Spec_lang.workload p))
         ())
  in
  check Alcotest.string "export is stable" (doc ()) (doc ())

let test_openvpn_wire_bytes () =
  let module O = Vini_overlay.Openvpn in
  check Alcotest.int "empty payload" 0 (O.wire_bytes ~payload:0);
  let one = O.wire_bytes ~payload:100 in
  check Alcotest.bool "one packet adds one encapsulation" true (one > 100);
  let mss = 1500 - 41 - 20 in
  check Alcotest.bool "crossing the MTU adds a second header" true
    (O.wire_bytes ~payload:(mss + 1) - O.wire_bytes ~payload:mss > 1)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_document_deterministic;
    QCheck_alcotest.to_alcotest prop_generated_connected;
    QCheck_alcotest.to_alcotest prop_delay_weight_monotone;
    Alcotest.test_case "vini.topo/1 round-trips" `Quick test_topo_roundtrip;
    Alcotest.test_case "vini.topo/1 rejects wrong schemas" `Quick
      test_topo_rejects_wrong_schema;
    QCheck_alcotest.to_alcotest prop_workload_deterministic;
    QCheck_alcotest.to_alcotest prop_workload_well_formed;
    Alcotest.test_case "flow sizes are Pareto with the configured tail" `Quick
      test_workload_heavy_tail;
    Alcotest.test_case "popularity skew concentrates users" `Quick
      test_workload_homes_skewed;
    QCheck_alcotest.to_alcotest prop_fluid_conserves;
    Alcotest.test_case "overload queues and sheds, conserving bytes" `Quick
      test_fluid_loss_under_overload;
    Alcotest.test_case "spec verbs parse and resolve" `Quick
      test_spec_verbs_parse;
    Alcotest.test_case "fidelity without workload is rejected" `Quick
      test_spec_fidelity_requires_workload;
    Alcotest.test_case "Vini.start installs hybrid fluid model" `Quick
      test_hybrid_installs_on_start;
    Alcotest.test_case "openvpn wire cost models encapsulation" `Quick
      test_openvpn_wire_bytes;
  ]
