(* Unit and property tests for Vini_std: rng, heap, calendar, stats,
   fifo. *)

module Rng = Vini_std.Rng
module Heap = Vini_std.Heap
module Calendar = Vini_std.Calendar
module Stats = Vini_std.Stats
module Fifo = Vini_std.Fifo
module Histogram = Vini_std.Histogram

let check = Alcotest.check

(* --- rng --------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 17 in
    check Alcotest.bool "in [0,17)" true (v >= 0 && v < 17)
  done

let test_rng_float_bounds () =
  let rng = Rng.create 9 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 3.5 in
    check Alcotest.bool "in [0,3.5)" true (v >= 0.0 && v < 3.5)
  done

let test_rng_split_independent () =
  let a = Rng.create 1 in
  let b = Rng.split a in
  let xs = List.init 50 (fun _ -> Rng.bits64 a) in
  let ys = List.init 50 (fun _ -> Rng.bits64 b) in
  check Alcotest.bool "streams differ" true (xs <> ys)

let test_rng_copy_same_future () =
  let a = Rng.create 5 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  check Alcotest.int64 "copies agree" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_uniform_range () =
  let rng = Rng.create 11 in
  for _ = 1 to 1000 do
    let v = Rng.uniform rng 2.0 9.0 in
    check Alcotest.bool "in [2,9)" true (v >= 2.0 && v < 9.0)
  done

let test_rng_exponential_mean () =
  let rng = Rng.create 13 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng 4.0
  done;
  let mean = !sum /. float_of_int n in
  check Alcotest.bool
    (Printf.sprintf "exp mean ~4 (got %.3f)" mean)
    true
    (Float.abs (mean -. 4.0) < 0.15)

let test_rng_normal_moments () =
  let rng = Rng.create 17 in
  let n = 50_000 in
  let s = Stats.create () in
  for _ = 1 to n do
    Stats.add s (Rng.normal rng ~mean:10.0 ~stddev:2.0)
  done;
  check Alcotest.bool "normal mean" true (Float.abs (Stats.mean s -. 10.0) < 0.1);
  check Alcotest.bool "normal std" true (Float.abs (Stats.stddev s -. 2.0) < 0.1)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 19 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "same elements" (Array.init 50 Fun.id) sorted

(* --- heap -------------------------------------------------------------- *)

let test_heap_sorted_drain () =
  let h = Heap.create ~cmp:Int.compare in
  List.iter (Heap.push h) [ 5; 3; 8; 1; 9; 2; 7 ];
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  check Alcotest.(list int) "sorted" [ 1; 2; 3; 5; 7; 8; 9 ] (drain [])

let test_heap_stability () =
  (* Equal keys must drain in insertion order. *)
  let h = Heap.create ~cmp:(fun (a, _) (b, _) -> Int.compare a b) in
  List.iter (Heap.push h) [ (1, "a"); (1, "b"); (0, "z"); (1, "c") ];
  let order =
    List.filter_map
      (fun _ -> Option.map snd (Heap.pop h))
      [ (); (); (); () ]
  in
  check Alcotest.(list string) "stable" [ "z"; "a"; "b"; "c" ] order

let test_heap_peek_length () =
  let h = Heap.create ~cmp:Int.compare in
  check Alcotest.(option int) "empty peek" None (Heap.peek h);
  Heap.push h 4;
  Heap.push h 2;
  check Alcotest.(option int) "peek min" (Some 2) (Heap.peek h);
  check Alcotest.int "length" 2 (Heap.length h);
  Heap.clear h;
  check Alcotest.bool "cleared" true (Heap.is_empty h)

let test_heap_pop_exn () =
  let h = Heap.create ~cmp:Int.compare in
  Alcotest.check_raises "empty pop_exn"
    (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
      ignore (Heap.pop_exn h))

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains any list sorted" ~count:300
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:Int.compare in
      List.iter (Heap.push h) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
      in
      drain [] = List.sort compare xs)

(* --- calendar ----------------------------------------------------------- *)

let drain_calendar c =
  let rec go acc =
    match Calendar.pop c with None -> List.rev acc | Some x -> go (x :: acc)
  in
  go []

let test_calendar_sorted_drain () =
  let c = Calendar.create () in
  List.iter
    (fun k -> Calendar.push c ~key:k k)
    [ 5; 3; 8; 1; 9; 2; 7 ];
  check Alcotest.(list int) "sorted" [ 1; 2; 3; 5; 7; 8; 9 ] (drain_calendar c)

let test_calendar_fifo_ties () =
  let c = Calendar.create () in
  List.iter
    (fun (k, v) -> Calendar.push c ~key:k v)
    [ (1, "a"); (1, "b"); (0, "z"); (1, "c") ];
  check Alcotest.(list string) "stable" [ "z"; "a"; "b"; "c" ]
    (drain_calendar c)

let test_calendar_negative_clamp () =
  let c = Calendar.create () in
  Calendar.push c ~key:(-5) "neg";
  Calendar.push c ~key:0 "zero";
  (* Clamped to 0, so FIFO between the two decides. *)
  check Alcotest.(list string) "clamped to 0, fifo" [ "neg"; "zero" ]
    (drain_calendar c)

let test_calendar_cursor_rewind () =
  (* A key below everything already popped must still come out first. *)
  let c = Calendar.create () in
  Calendar.push c ~key:1_000_000_000 1;
  check Alcotest.(option int) "first pop" (Some 1) (Calendar.pop c);
  Calendar.push c ~key:5 2;
  Calendar.push c ~key:2_000_000_000 3;
  check Alcotest.(list int) "rewound past pop" [ 2; 3 ] (drain_calendar c)

let test_calendar_resize_adapts () =
  let c = Calendar.create () in
  let initial = Calendar.nbuckets c in
  for i = 1 to 10_000 do
    Calendar.push c ~key:(i * 1_000) i
  done;
  check Alcotest.bool "buckets grew" true (Calendar.nbuckets c > initial);
  check Alcotest.int "length" 10_000 (Calendar.length c);
  check Alcotest.(list int) "still sorted" (List.init 10_000 (fun i -> i + 1))
    (drain_calendar c);
  check Alcotest.bool "buckets shrank back" true
    (Calendar.nbuckets c <= initial);
  check Alcotest.bool "empty" true (Calendar.is_empty c)

let test_calendar_peek_pop_agree () =
  let c = Calendar.create () in
  List.iter (fun k -> Calendar.push c ~key:k k) [ 9; 4; 6 ];
  check Alcotest.(option int) "peek min" (Some 4) (Calendar.peek c);
  check Alcotest.(option int) "pop same" (Some 4) (Calendar.pop c);
  check Alcotest.(option int) "next peek" (Some 6) (Calendar.peek c)

let test_calendar_compact () =
  let c = Calendar.create () in
  for i = 1 to 100 do
    Calendar.push c ~key:i i
  done;
  let removed = Calendar.compact c ~dead:(fun v -> v mod 3 = 0) in
  check Alcotest.int "removed count" 33 removed;
  check Alcotest.int "length updated" 67 (Calendar.length c);
  check Alcotest.bool "survivors intact" true
    (List.for_all (fun v -> v mod 3 <> 0) (drain_calendar c))

let test_calendar_clear () =
  let c = Calendar.create () in
  Calendar.push c ~key:7 ();
  Calendar.clear c;
  check Alcotest.bool "cleared" true (Calendar.is_empty c);
  check Alcotest.(option unit) "pop empty" None (Calendar.pop c)

(* The determinism contract the engine swap rests on: on any interleaving
   of schedule/cancel/pop — tie-heavy keys included — the calendar agrees
   with the stable heap op for op.  Cancellation is modelled the way the
   engine does it: mark dead, sweep the calendar with [compact], have the
   heap skip dead entries on pop. *)
let prop_calendar_matches_heap =
  let open QCheck in
  let gen_ops =
    Gen.(
      list_size (int_range 200 500)
        (pair (int_range 0 9) (pair (int_range 0 60) bool)))
  in
  Test.make ~name:"calendar pop order = stable heap" ~count:25
    (make gen_ops) (fun ops ->
      let cal = Calendar.create () in
      let heap =
        Heap.create ~cmp:(fun (k1, s1, _) (k2, s2, _) ->
            match Int.compare k1 k2 with
            | 0 -> Int.compare s1 s2
            | c -> c)
      in
      let dead = Hashtbl.create 64 in
      let next_id = ref 0 in
      let seq = ref 0 in
      let ok = ref true in
      let rec heap_pop_live () =
        match Heap.pop heap with
        | None -> None
        | Some (_, _, id) when Hashtbl.mem dead id -> heap_pop_live ()
        | Some (_, _, id) -> Some id
      in
      List.iter
        (fun (tag, (k, spread)) ->
          if tag <= 4 then begin
            (* Schedule: tie-dense small keys, or spread out over ms. *)
            let key = if spread then k * 1_000_037 else k in
            let id = !next_id in
            incr next_id;
            incr seq;
            Calendar.push cal ~key id;
            Heap.push heap (key, !seq, id)
          end
          else if tag <= 6 && !next_id > 0 then begin
            (* Cancel a random id; sweep the calendar immediately. *)
            Hashtbl.replace dead (k * 7 mod !next_id) ();
            ignore (Calendar.compact cal ~dead:(Hashtbl.mem dead))
          end
          else begin
            match heap_pop_live () with
            | None -> ok := !ok && Calendar.pop cal = None
            | Some id ->
                (* The calendar may still hold dead entries the heap model
                   skipped; it was just compacted on cancel, so it holds
                   exactly the live set. *)
                ok := !ok && Calendar.pop cal = Some id
          end)
        ops;
      (* Drain the rest. *)
      let rec drain () =
        match heap_pop_live () with
        | None -> ok := !ok && Calendar.pop cal = None
        | Some id ->
            ok := !ok && Calendar.pop cal = Some id;
            drain ()
      in
      drain ();
      !ok)

(* --- stats ------------------------------------------------------------- *)

let feq msg a b = check (Alcotest.float 1e-9) msg a b

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  feq "mean" 2.5 (Stats.mean s);
  feq "min" 1.0 (Stats.min s);
  feq "max" 4.0 (Stats.max s);
  feq "sum" 10.0 (Stats.sum s);
  check Alcotest.int "count" 4 (Stats.count s);
  feq "mdev" 1.0 (Stats.mdev s);
  check (Alcotest.float 1e-6) "stddev" 1.2909944487 (Stats.stddev s)

let test_stats_empty () =
  let s = Stats.create () in
  feq "empty mean" 0.0 (Stats.mean s);
  feq "empty stddev" 0.0 (Stats.stddev s);
  check Alcotest.bool "is_empty" true (Stats.is_empty s)

let test_stats_percentile () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.add s (float_of_int i)
  done;
  feq "p50" 50.0 (Stats.percentile s 50.0);
  feq "p99" 99.0 (Stats.percentile s 99.0);
  feq "p100" 100.0 (Stats.percentile s 100.0)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () in
  List.iter (Stats.add a) [ 1.0; 2.0 ];
  List.iter (Stats.add b) [ 3.0; 4.0 ];
  let m = Stats.merge a b in
  feq "merged mean" 2.5 (Stats.mean m);
  check Alcotest.int "merged count" 4 (Stats.count m)

let test_jitter_constant_stream () =
  (* Perfectly periodic packets -> zero jitter. *)
  let j = Stats.Jitter.create () in
  for i = 0 to 50 do
    let t = float_of_int i *. 0.01 in
    Stats.Jitter.observe j ~sent:t ~received:(t +. 0.005)
  done;
  feq "no jitter" 0.0 (Stats.Jitter.value j)

let test_jitter_variable_stream () =
  let j = Stats.Jitter.create () in
  let rng = Rng.create 3 in
  for i = 0 to 500 do
    let t = float_of_int i *. 0.01 in
    Stats.Jitter.observe j ~sent:t ~received:(t +. 0.005 +. Rng.float rng 0.002)
  done;
  check Alcotest.bool "positive jitter" true (Stats.Jitter.value j > 1e-5)

let prop_stats_mean_bounds =
  QCheck.Test.make ~name:"mean lies within [min,max]" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      Stats.mean s >= Stats.min s -. 1e-9 && Stats.mean s <= Stats.max s +. 1e-9)

(* --- fifo -------------------------------------------------------------- *)

let test_fifo_order () =
  let f = Fifo.create ~size_of:(fun _ -> 1) () in
  List.iter (fun x -> ignore (Fifo.push f x)) [ 1; 2; 3 ];
  check Alcotest.(option int) "fifo order" (Some 1) (Fifo.pop f);
  check Alcotest.(option int) "fifo order" (Some 2) (Fifo.pop f);
  check Alcotest.(option int) "fifo order" (Some 3) (Fifo.pop f);
  check Alcotest.(option int) "empty" None (Fifo.pop f)

let test_fifo_packet_bound () =
  let f = Fifo.create ~max_packets:2 ~size_of:(fun _ -> 1) () in
  check Alcotest.bool "1st" true (Fifo.push f 1);
  check Alcotest.bool "2nd" true (Fifo.push f 2);
  check Alcotest.bool "3rd rejected" false (Fifo.push f 3);
  check Alcotest.int "drop counted" 1 (Fifo.drops f)

let test_fifo_byte_bound () =
  let f = Fifo.create ~max_bytes:100 ~size_of:Fun.id () in
  check Alcotest.bool "60 fits" true (Fifo.push f 60);
  check Alcotest.bool "50 rejected" false (Fifo.push f 50);
  check Alcotest.bool "40 fits" true (Fifo.push f 40);
  check Alcotest.int "bytes" 100 (Fifo.bytes f);
  ignore (Fifo.pop f);
  check Alcotest.int "bytes drain" 40 (Fifo.bytes f)

let test_fifo_clear () =
  let f = Fifo.create ~size_of:(fun _ -> 7) () in
  ignore (Fifo.push f 1);
  Fifo.clear f;
  check Alcotest.bool "empty after clear" true (Fifo.is_empty f);
  check Alcotest.int "bytes zero" 0 (Fifo.bytes f)

(* --- histogram ---------------------------------------------------------- *)

(* The log-bucketed histogram must agree with the exact (sample-keeping)
   Stats accumulator to within its documented quantile error.  Buckets are
   20 per decade (width ratio 10^(1/20) ~ 1.122), so the geometric-midpoint
   estimate is within ~6% of the true value, plus nearest-rank wobble. *)
let test_histogram_vs_stats () =
  let rng = Rng.create 90210 in
  let h = Histogram.create () and s = Stats.create () in
  for _ = 1 to 20_000 do
    (* Latency-shaped: exponential with a 1 ms mean. *)
    let v = Rng.exponential rng 0.001 in
    Histogram.add h v;
    Stats.add s v
  done;
  check Alcotest.int "count" (Stats.count s) (Histogram.count h);
  let feq what a b =
    let rel = Float.abs (a -. b) /. Float.abs b in
    if rel > 0.08 then
      Alcotest.failf "%s: histogram %g vs exact %g (rel err %.3f)" what a b rel
  in
  feq "mean" (Histogram.mean h) (Stats.mean s);
  feq "sum" (Histogram.sum h) (Stats.sum s);
  check (Alcotest.float 1e-12) "min exact" (Stats.min s) (Histogram.min h);
  check (Alcotest.float 1e-12) "max exact" (Stats.max s) (Histogram.max h);
  List.iter
    (fun p ->
      feq
        (Printf.sprintf "p%g" p)
        (Histogram.percentile h p) (Stats.percentile s p))
    [ 10.0; 50.0; 90.0; 95.0; 99.0 ]

let test_histogram_nonpositive () =
  let h = Histogram.create () in
  Histogram.add h 0.0;
  Histogram.add h (-3.5);
  Histogram.add h 1.0;
  check Alcotest.int "count" 3 (Histogram.count h);
  match Histogram.buckets h with
  | (lo, hi, n) :: _ ->
      check Alcotest.bool "leading bucket is the non-positive one"
        true (lo = neg_infinity && hi = 0.0);
      check Alcotest.int "two non-positive samples" 2 n
  | [] -> Alcotest.fail "no buckets"

let test_histogram_merge_clear () =
  let a = Histogram.create () and b = Histogram.create () in
  for i = 1 to 100 do Histogram.add a (float_of_int i) done;
  for i = 101 to 200 do Histogram.add b (float_of_int i) done;
  let m = Histogram.merge a b in
  check Alcotest.int "merged count" 200 (Histogram.count m);
  check (Alcotest.float 1e-9) "merged min" 1.0 (Histogram.min m);
  check (Alcotest.float 1e-9) "merged max" 200.0 (Histogram.max m);
  let p50 = Histogram.percentile m 50.0 in
  if p50 < 85.0 || p50 > 115.0 then
    Alcotest.failf "merged p50 %g out of range" p50;
  Histogram.clear a;
  check Alcotest.int "cleared" 0 (Histogram.count a);
  check Alcotest.bool "empty" true (Histogram.is_empty a)

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng int bounds" `Quick test_rng_int_bounds;
    Alcotest.test_case "rng float bounds" `Quick test_rng_float_bounds;
    Alcotest.test_case "rng split independence" `Quick test_rng_split_independent;
    Alcotest.test_case "rng copy future" `Quick test_rng_copy_same_future;
    Alcotest.test_case "rng uniform range" `Quick test_rng_uniform_range;
    Alcotest.test_case "rng exponential mean" `Quick test_rng_exponential_mean;
    Alcotest.test_case "rng normal moments" `Quick test_rng_normal_moments;
    Alcotest.test_case "rng shuffle permutes" `Quick test_rng_shuffle_permutation;
    Alcotest.test_case "heap sorted drain" `Quick test_heap_sorted_drain;
    Alcotest.test_case "heap stability" `Quick test_heap_stability;
    Alcotest.test_case "heap peek/length/clear" `Quick test_heap_peek_length;
    Alcotest.test_case "heap pop_exn raises" `Quick test_heap_pop_exn;
    QCheck_alcotest.to_alcotest prop_heap_sorts;
    Alcotest.test_case "calendar sorted drain" `Quick test_calendar_sorted_drain;
    Alcotest.test_case "calendar fifo ties" `Quick test_calendar_fifo_ties;
    Alcotest.test_case "calendar clamps negative keys" `Quick
      test_calendar_negative_clamp;
    Alcotest.test_case "calendar cursor rewind" `Quick test_calendar_cursor_rewind;
    Alcotest.test_case "calendar resize adapts" `Quick test_calendar_resize_adapts;
    Alcotest.test_case "calendar peek/pop agree" `Quick test_calendar_peek_pop_agree;
    Alcotest.test_case "calendar compact" `Quick test_calendar_compact;
    Alcotest.test_case "calendar clear" `Quick test_calendar_clear;
    QCheck_alcotest.to_alcotest prop_calendar_matches_heap;
    Alcotest.test_case "stats basic moments" `Quick test_stats_basic;
    Alcotest.test_case "stats empty" `Quick test_stats_empty;
    Alcotest.test_case "stats percentile" `Quick test_stats_percentile;
    Alcotest.test_case "stats merge" `Quick test_stats_merge;
    Alcotest.test_case "jitter constant stream" `Quick test_jitter_constant_stream;
    Alcotest.test_case "jitter variable stream" `Quick test_jitter_variable_stream;
    QCheck_alcotest.to_alcotest prop_stats_mean_bounds;
    Alcotest.test_case "fifo order" `Quick test_fifo_order;
    Alcotest.test_case "fifo packet bound" `Quick test_fifo_packet_bound;
    Alcotest.test_case "fifo byte bound" `Quick test_fifo_byte_bound;
    Alcotest.test_case "fifo clear" `Quick test_fifo_clear;
    Alcotest.test_case "histogram vs exact stats" `Quick test_histogram_vs_stats;
    Alcotest.test_case "histogram non-positive bucket" `Quick
      test_histogram_nonpositive;
    Alcotest.test_case "histogram merge/clear" `Quick test_histogram_merge_clear;
  ]
