(* Tests for topologies and shortest paths. *)

module Time = Vini_sim.Time
module Graph = Vini_topo.Graph
module Datasets = Vini_topo.Datasets

let check = Alcotest.check

let link ?(bw = 1e9) ?(delay = Time.ms 1) ?(w = 1) a b =
  { Graph.a; b; bandwidth_bps = bw; delay; loss = 0.0; weight = w }

let square () =
  Graph.create
    ~names:[| "a"; "b"; "c"; "d" |]
    ~links:[ link ~w:1 0 1; link ~w:1 1 2; link ~w:5 0 3; link ~w:5 3 2 ]

let test_create_validation () =
  let bad ~msg links =
    Alcotest.check_raises msg (Invalid_argument msg) (fun () ->
        ignore (Graph.create ~names:[| "a"; "b" |] ~links))
  in
  bad ~msg:"Graph.create: endpoint out of range" [ link 0 5 ];
  bad ~msg:"Graph.create: self-loop" [ link 1 1 ];
  bad ~msg:"Graph.create: duplicate link" [ link 0 1; link 1 0 ]

let test_accessors () =
  let g = square () in
  check Alcotest.int "nodes" 4 (Graph.node_count g);
  check Alcotest.int "links" 4 (Graph.link_count g);
  check Alcotest.string "name" "c" (Graph.name g 2);
  check Alcotest.int "id_of_name" 2 (Graph.id_of_name g "c");
  Alcotest.check_raises "unknown name"
    (Graph.Unknown_node { topo = "topology"; node = "zz" }) (fun () ->
      ignore (Graph.id_of_name g "zz"));
  check Alcotest.(option int) "id_of_name_opt hit" (Some 2)
    (Graph.id_of_name_opt g "c");
  check Alcotest.(option int) "id_of_name_opt miss" None
    (Graph.id_of_name_opt g "zz");
  check Alcotest.string "relabel" "sq"
    (Graph.label (Graph.relabel "sq" g));
  check Alcotest.int "degree of a" 2 (List.length (Graph.neighbors g 0));
  check Alcotest.bool "adjacent" true (Graph.find_link g 0 1 <> None);
  check Alcotest.bool "either order" true (Graph.find_link g 1 0 <> None);
  check Alcotest.bool "not adjacent" true (Graph.find_link g 0 2 = None)

let test_other_end () =
  let l = link 3 7 in
  check Alcotest.int "b side" 7 (Graph.other_end l 3);
  check Alcotest.int "a side" 3 (Graph.other_end l 7);
  Alcotest.check_raises "non-member" (Invalid_argument "Graph.other_end: node not an endpoint")
    (fun () -> ignore (Graph.other_end l 1))

let test_connectivity () =
  check Alcotest.bool "square connected" true (Graph.is_connected (square ()));
  let disconnected =
    Graph.create ~names:[| "a"; "b"; "c" |] ~links:[ link 0 1 ]
  in
  check Alcotest.bool "detects disconnect" false (Graph.is_connected disconnected)

let test_shortest_path_picks_cheap () =
  let g = square () in
  check
    Alcotest.(option (list int))
    "cheap path" (Some [ 0; 1; 2 ])
    (Graph.shortest_path g 0 2);
  (* With the cheap edge made expensive, reroute via d. *)
  let weight_of (l : Graph.link) =
    if (l.a, l.b) = (0, 1) || (l.a, l.b) = (1, 0) then 100 else l.Graph.weight
  in
  check
    Alcotest.(option (list int))
    "detour" (Some [ 0; 3; 2 ])
    (Graph.shortest_path ~weight_of g 0 2)

let test_path_metrics () =
  let g = square () in
  check Alcotest.int "weight" 2 (Graph.path_weight g [ 0; 1; 2 ]);
  check Alcotest.bool "delay" true
    (Time.compare (Graph.path_delay g [ 0; 1; 2 ]) (Time.ms 2) = 0);
  Alcotest.check_raises "bad path" (Invalid_argument "Graph: path nodes not adjacent")
    (fun () -> ignore (Graph.path_weight g [ 0; 2 ]))

let test_unreachable () =
  let g = Graph.create ~names:[| "a"; "b"; "c" |] ~links:[ link 0 1 ] in
  check Alcotest.(option (list int)) "no path" None (Graph.shortest_path g 0 2);
  let dist, _ = Graph.dijkstra g 0 in
  check Alcotest.int "infinite distance" max_int dist.(2)

(* Property: Dijkstra distances equal Bellman-Ford distances on random
   connected Waxman graphs. *)
let prop_dijkstra_vs_bellman_ford =
  QCheck.Test.make ~name:"dijkstra = bellman-ford on random graphs" ~count:60
    QCheck.(pair (int_range 2 25) (int_bound 10_000))
    (fun (n, seed) ->
      let rng = Vini_std.Rng.create seed in
      let g = Datasets.waxman ~rng ~n () in
      let src = seed mod n in
      let d1, _ = Graph.dijkstra g src in
      let d2 = Graph.bellman_ford g src in
      d1 = d2)

let prop_waxman_connected =
  QCheck.Test.make ~name:"waxman graphs are connected" ~count:60
    QCheck.(pair (int_range 1 40) (int_bound 10_000))
    (fun (n, seed) ->
      let rng = Vini_std.Rng.create seed in
      Graph.is_connected (Datasets.waxman ~rng ~n ()))

(* The Abilene dataset must encode the paper's routes. *)
let test_abilene_paths () =
  let g = Datasets.Abilene.topology () in
  check Alcotest.int "11 PoPs" 11 (Graph.node_count g);
  check Alcotest.int "14 links" 14 (Graph.link_count g);
  let dc = Datasets.Abilene.washington and sea = Datasets.Abilene.seattle in
  let path = Option.get (Graph.shortest_path g dc sea) in
  let names = List.map (Graph.name g) path in
  check
    Alcotest.(list string)
    "primary route (Fig 7)"
    [ "Washington DC"; "New York"; "Chicago"; "Indianapolis"; "Kansas City";
      "Denver"; "Seattle" ]
    names;
  (* One-way propagation along the primary path: 38 ms -> RTT 76 ms. *)
  check (Alcotest.float 0.01) "one-way delay 38 ms" 38.0
    (Time.to_ms_f (Graph.path_delay g path));
  (* Without Denver-KC, the south route of Figure 7. *)
  let weight_of (l : Graph.link) =
    let d = Datasets.Abilene.denver and k = Datasets.Abilene.kansas_city in
    if (l.a = d && l.b = k) || (l.a = k && l.b = d) then 1_000_000
    else l.Graph.weight
  in
  let backup = Option.get (Graph.shortest_path ~weight_of g dc sea) in
  check
    Alcotest.(list string)
    "backup route (Fig 7)"
    [ "Washington DC"; "Atlanta"; "Houston"; "Los Angeles"; "Sunnyvale";
      "Seattle" ]
    (List.map (Graph.name g) backup);
  check (Alcotest.float 0.01) "backup one-way 46.5 ms" 46.5
    (Time.to_ms_f (Graph.path_delay g backup))

let test_deter_dataset () =
  let g = Datasets.Deter.topology () in
  check Alcotest.int "3 machines" 3 (Graph.node_count g);
  List.iter
    (fun (l : Graph.link) ->
      check (Alcotest.float 1.0) "gigabit" 1e9 l.Graph.bandwidth_bps)
    (Graph.links g)

let test_planetlab_dataset () =
  let g = Datasets.Planetlab3.topology () in
  check Alcotest.int "3 nodes" 3 (Graph.node_count g);
  (* Chicago->DC one-way must give the 24.2-24.4 ms ping floor. *)
  let d =
    Graph.path_delay g
      [ Datasets.Planetlab3.chicago; Datasets.Planetlab3.new_york;
        Datasets.Planetlab3.washington ]
  in
  check Alcotest.bool "one-way ~12.1ms" true
    (Time.to_ms_f d > 11.9 && Time.to_ms_f d < 12.3)

let test_nlr_dataset () =
  let g = Datasets.Nlr.topology () in
  check Alcotest.int "10 PoPs" 10 (Graph.node_count g);
  check Alcotest.bool "connected" true (Graph.is_connected g);
  (* A national ring: Seattle reaches Jacksonville both ways. *)
  check Alcotest.bool "cross-country path exists" true
    (Graph.shortest_path g Datasets.Nlr.seattle Datasets.Nlr.jacksonville
    <> None)

let test_generators () =
  let r = Datasets.ring ~n:6 () in
  check Alcotest.int "ring links" 6 (Graph.link_count r);
  check Alcotest.int "ring degree" 2 (List.length (Graph.neighbors r 0));
  check Alcotest.bool "ring connected" true (Graph.is_connected r);
  let s = Datasets.star ~leaves:5 () in
  check Alcotest.int "star links" 5 (Graph.link_count s);
  check Alcotest.int "hub degree" 5 (List.length (Graph.neighbors s 0));
  check Alcotest.int "leaf degree" 1 (List.length (Graph.neighbors s 3));
  let g = Datasets.grid ~rows:3 ~cols:4 () in
  check Alcotest.int "grid nodes" 12 (Graph.node_count g);
  check Alcotest.int "grid links" ((2 * 4) + (3 * 3)) (Graph.link_count g);
  check Alcotest.bool "grid connected" true (Graph.is_connected g);
  (* Corner-to-corner manhattan distance: (3-1)+(4-1) hops. *)
  check Alcotest.(option int) "grid path length" (Some 5)
    (Option.map
       (fun p -> List.length p - 1)
       (Graph.shortest_path g 0 11));
  Alcotest.check_raises "tiny ring" (Invalid_argument "Datasets.ring: need at least 3 nodes")
    (fun () -> ignore (Datasets.ring ~n:2 ()))

let suite =
  [
    Alcotest.test_case "create validation" `Quick test_create_validation;
    Alcotest.test_case "accessors" `Quick test_accessors;
    Alcotest.test_case "other_end" `Quick test_other_end;
    Alcotest.test_case "connectivity" `Quick test_connectivity;
    Alcotest.test_case "shortest path weighting" `Quick test_shortest_path_picks_cheap;
    Alcotest.test_case "path metrics" `Quick test_path_metrics;
    Alcotest.test_case "unreachable nodes" `Quick test_unreachable;
    QCheck_alcotest.to_alcotest prop_dijkstra_vs_bellman_ford;
    QCheck_alcotest.to_alcotest prop_waxman_connected;
    Alcotest.test_case "abilene mirrors Figure 7" `Quick test_abilene_paths;
    Alcotest.test_case "deter dataset" `Quick test_deter_dataset;
    Alcotest.test_case "planetlab dataset" `Quick test_planetlab_dataset;
    Alcotest.test_case "nlr dataset" `Quick test_nlr_dataset;
    Alcotest.test_case "ring/star/grid generators" `Quick test_generators;
  ]
