(* Tests for make-before-break live migration: zero-loss cutover proven
   by span drop forensics, clean rollback without substrate leaks, exact
   residual accounting when a rejected re-embed parks a vnode, the
   background defragmenter, and the migration-aware watchdog. *)

module Time = Vini_sim.Time
module Engine = Vini_sim.Engine
module Graph = Vini_topo.Graph
module Underlay = Vini_phys.Underlay
module Slice = Vini_phys.Slice
module Iias = Vini_overlay.Iias
module Experiment = Vini_core.Experiment
module Vini = Vini_core.Vini
module Defrag = Vini_core.Defrag
module Substrate = Vini_embed.Substrate
module Embed = Vini_embed.Embed
module Request = Vini_embed.Request
module Migration = Vini_repro.Migration
module Ping = Vini_measure.Ping
module Watchdog = Vini_measure.Watchdog
module Trace = Vini_sim.Trace
module Sspan = Vini_sim.Span
module Mspan = Vini_measure.Span
module Tcp = Vini_transport.Tcp

let check = Alcotest.check

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* A started 6-vnode ring auto-placed on Abilene, warmed up past OSPF
   convergence.  Returns the first spare (unused, up) physical node as
   the canonical migration target. *)
let ring_on_abilene ?(seed = 4242) ?(vnodes = 6) ?(cpu = 0.25) () =
  let g = Vini_rcc.Rcc.abilene () in
  let engine = Engine.create ~seed () in
  let profile _ = Underlay.planetlab_profile ~speed_ghz:2.0 in
  let vini = Vini.create ~engine ~graph:g ~profile () in
  let vtopo = Migration.virtual_ring vnodes in
  let req = Request.make ~name:"mig" ~cpu:(fun _ -> cpu) ~seed () in
  let spec =
    Experiment.make ~name:"mig" ~slice:(Slice.pl_vini "mig") ~vtopo
      ~placement:(Experiment.Auto req) ()
  in
  let inst = Vini.deploy vini spec in
  Vini.start inst;
  Engine.run ~until:(Time.sec 30) engine;
  let iias = Vini.iias inst in
  let emb = Iias.current_embedding iias in
  let spare =
    let used p = Array.exists (( = ) p) emb in
    let rec find p =
      if p >= Graph.node_count g then Alcotest.fail "no spare pnode"
      else if used p then find (p + 1)
      else p
    in
    find 0
  in
  (engine, g, vini, inst, iias, spare)

(* --- the tentpole: zero-loss cutover, proven by drop forensics ---------- *)

let test_zero_loss_cutover_forensics () =
  let engine, g, _vini, inst, iias, spare = ring_on_abilene () in
  let from_host = Iias.current_pnode iias 0 in
  (* Load the slice: pings to the vnode being moved, plus a steady
     (non-saturating) TCP stream terminating on it. *)
  let ping =
    Ping.start
      ~stack:(Iias.tap (Iias.vnode iias 3))
      ~dst:(Iias.tap_addr (Iias.vnode iias 0))
      ~count:40
      ~mode:(Ping.Interval (Time.ms 250))
      ~reply_timeout:(Time.ms 900) ()
  in
  Tcp.listen ~stack:(Iias.tap (Iias.vnode iias 0)) ~port:5001
    ~on_accept:(fun _ -> ())
    ();
  let conn =
    Tcp.connect
      ~stack:(Iias.tap (Iias.vnode iias 3))
      ~dst:(Iias.tap_addr (Iias.vnode iias 0))
      ~dst_port:5001 ()
  in
  Engine.every engine (Time.ms 500) (fun () ->
      Tcp.send conn 20_000;
      true);
  Engine.run ~until:(Time.sec 32) engine;
  (* Record spans only across the cutover window, so every Drop in the
     ring is attributable to it. *)
  let trace = Trace.create ~categories:[ Trace.Category.Span ] () in
  Trace.install trace;
  let recorder = Sspan.create ~capacity:65_536 () in
  Sspan.install recorder;
  (match Vini.migrate ~target:spare inst ~vnode:0 with
  | Ok true -> ()
  | Ok false -> Alcotest.fail "solver declined an explicit target"
  | Error r -> Alcotest.failf "migrate: %s" (Embed.rejection_to_string r));
  check Alcotest.int "one move in flight" 1 (Vini.pending_migrations inst);
  Engine.run ~until:(Time.sec 36) engine;
  Sspan.uninstall ();
  Trace.uninstall ();
  check Alcotest.int "move settled" 0 (Vini.pending_migrations inst);
  check Alcotest.int "moved to the target" spare (Iias.current_pnode iias 0);
  (match Vini.migrations inst with
  | [ m ] ->
      check Alcotest.bool "planned kind" true (m.Vini.m_kind = Vini.Planned);
      check Alcotest.int "zero cutover loss" 0
        (Option.get m.Vini.m_cutover_loss);
      check (Alcotest.float 1e-9) "zero downtime" 0.0
        (Time.to_sec_f (Time.sub m.Vini.m_restored_at m.Vini.m_down_at))
  | ms -> Alcotest.failf "expected one migration record, got %d"
            (List.length ms));
  (* Drop forensics: no packet died at the migrated vnode's process on
     either machine during the window. *)
  let site_old = Printf.sprintf "mig/click@%s" (Graph.name g from_host) in
  let site_new = Printf.sprintf "mig/click@%s" (Graph.name g spare) in
  let guilty =
    List.filter
      (fun f ->
        contains f.Mspan.f_site site_old || contains f.Mspan.f_site site_new)
      (Mspan.forensics (Mspan.trees recorder))
  in
  check Alcotest.int "no drops at the migrated vnode" 0 (List.length guilty);
  Engine.run ~until:(Time.sec 50) engine;
  check Alcotest.int "every ping answered" (Ping.sent ping)
    (Ping.received ping);
  check Alcotest.bool "tcp kept flowing" true
    ((Tcp.stats conn).Tcp.bytes_acked > 0)

(* --- rollback: a move whose target dies pre-flip leaks nothing ---------- *)

let test_rollback_restores_accounts () =
  let engine, _g, vini, inst, iias, spare = ring_on_abilene () in
  let sub = Vini.substrate vini in
  let n = Graph.node_count (Substrate.graph sub) in
  let snapshot () = Array.init n (Substrate.node_used sub) in
  let before = snapshot () in
  let from_host = Iias.current_pnode iias 0 in
  (match Vini.migrate ~target:spare inst ~vnode:0 with
  | Ok true -> ()
  | _ -> Alcotest.fail "migrate should start");
  (* Double provisioning is live while the move is pending. *)
  check Alcotest.bool "target double-provisioned" true
    (Substrate.node_used sub spare > before.(spare) +. 1e-9);
  (* Kill the target machine before the 10 ms flip. *)
  Underlay.set_node_state (Vini.underlay vini) spare false;
  Engine.run ~until:(Time.sec 31) engine;
  check Alcotest.int "no move left in flight" 0
    (Vini.pending_migrations inst);
  check Alcotest.int "vnode stayed home" from_host
    (Iias.current_pnode iias 0);
  check Alcotest.int "no migration recorded" 0
    (List.length (Vini.migrations inst));
  (match Vini.migration_failures inst with
  | [ (0, reason) ] ->
      check Alcotest.bool "reason mentions the death" true
        (contains reason "died")
  | _ -> Alcotest.fail "expected one recorded rollback");
  let after = snapshot () in
  Array.iteri
    (fun p u ->
      check (Alcotest.float 1e-9)
        (Printf.sprintf "pnode %d accounts restored" p)
        before.(p) u)
    after;
  (* The slice is unharmed: a later move to another spare still works. *)
  Engine.run ~until:(Time.sec 40) engine;
  check Alcotest.int "no spurious reembeds" 0
    (List.length (Vini.reembed_failures inst))

let test_plan_rejection_is_structured () =
  let _engine, _g, _vini, inst, iias, _spare = ring_on_abilene () in
  (* An explicit target already hosting the slice is a structured
     rejection, not an exception — and changes nothing. *)
  let occupied = Iias.current_pnode iias 1 in
  (match Vini.migrate ~target:occupied inst ~vnode:0 with
  | Error (Embed.Pin_invalid _) -> ()
  | Ok _ -> Alcotest.fail "expected rejection"
  | Error r -> Alcotest.failf "wrong rejection: %s"
                 (Embed.rejection_to_string r));
  check Alcotest.int "nothing in flight" 0 (Vini.pending_migrations inst)

(* --- satellite 2: rejected re-embed parks the vnode, accounts exact ----- *)

let prop_rejected_reembed_restores_residuals =
  QCheck.Test.make
    ~name:"rejected re-embed parks the vnode and restores residuals exactly"
    ~count:6
    QCheck.(int_bound 1000)
    (fun salt ->
      let seed = 6000 + salt in
      let g = Vini_rcc.Rcc.abilene () in
      let engine = Engine.create ~seed () in
      let profile _ = Underlay.planetlab_profile ~speed_ghz:2.0 in
      let vini = Vini.create ~engine ~graph:g ~profile () in
      let vtopo = Migration.virtual_ring 4 in
      let req =
        Request.make ~name:"park" ~cpu:(fun _ -> 0.25) ~bw:(fun _ -> 1e8)
          ~seed ()
      in
      let spec =
        Experiment.make ~name:"park" ~slice:(Slice.pl_vini "park") ~vtopo
          ~placement:(Experiment.Auto req) ()
      in
      let inst = Vini.deploy vini spec in
      Vini.start inst;
      Engine.run ~until:(Time.sec 5) engine;
      let sub = Vini.substrate vini in
      let iias = Vini.iias inst in
      let emb = Iias.current_embedding iias in
      let n = Graph.node_count g in
      (* Squeeze every machine not hosting the slice so no re-embed target
         fits, then kill vnode 0's host for good. *)
      for p = 0 to n - 1 do
        if not (Array.exists (( = ) p) emb) then
          Substrate.reserve_node sub p (Substrate.node_residual sub p -. 0.1)
      done;
      let victim = emb.(0) in
      let survivors_used =
        Array.init n (fun p -> Substrate.node_used sub p)
      in
      Underlay.set_node_state (Vini.underlay vini) victim false;
      Engine.run ~until:(Time.sec 10) engine;
      let parked_ok = Vini.parked inst = [ 0 ] in
      let rejected_ok = List.length (Vini.reembed_failures inst) = 1 in
      (* Exactness: the books now hold the survivors' commitments plus the
         external squeeze — vnode 0's CPU share and its incident vlinks'
         bandwidth are gone, nothing else moved. *)
      let victim_ok =
        Float.abs
          (Substrate.node_used sub victim -. (survivors_used.(victim) -. 0.25))
        < 1e-9
      in
      let others_ok = ref true in
      for p = 0 to n - 1 do
        if p <> victim then
          others_ok :=
            !others_ok
            && Float.abs (Substrate.node_used sub p -. survivors_used.(p))
               < 1e-9
      done;
      (* Tear down: only the survivors' shares are withdrawn; all slice
         accounting must cancel to exactly the external squeeze. *)
      let external_ = Array.init n (fun p ->
          if Array.exists (( = ) p) emb then 0.0
          else Substrate.node_used sub p)
      in
      Vini.undeploy vini inst;
      let clean = ref true in
      for p = 0 to n - 1 do
        clean :=
          !clean
          && Float.abs (Substrate.node_used sub p -. external_.(p)) < 1e-9
      done;
      let links_clean =
        List.for_all
          (fun (l : Graph.link) ->
            Substrate.link_used sub l.Graph.a l.Graph.b < 1e-9)
          (Graph.links g)
      in
      parked_ok && rejected_ok && victim_ok && !others_ok && !clean
      && links_clean)

let test_parked_vnode_restored_on_reboot () =
  let g = Vini_rcc.Rcc.abilene () in
  let engine = Engine.create ~seed:77 () in
  let profile _ = Underlay.planetlab_profile ~speed_ghz:2.0 in
  let vini = Vini.create ~engine ~graph:g ~profile () in
  let vtopo = Migration.virtual_ring 4 in
  let req =
    Request.make ~name:"park2" ~cpu:(fun _ -> 0.25) ~bw:(fun _ -> 1e8)
      ~seed:77 ()
  in
  let spec =
    Experiment.make ~name:"park2" ~slice:(Slice.pl_vini "park2") ~vtopo
      ~placement:(Experiment.Auto req) ()
  in
  let inst = Vini.deploy vini spec in
  Vini.start inst;
  Engine.run ~until:(Time.sec 5) engine;
  let sub = Vini.substrate vini in
  let emb = Iias.current_embedding (Vini.iias inst) in
  Array.iteri
    (fun p _ ->
      if not (Array.exists (( = ) p) emb) then
        Substrate.reserve_node sub p (Substrate.node_residual sub p -. 0.1))
    (Array.make (Graph.node_count g) ());
  let victim = emb.(0) in
  Underlay.set_node_state (Vini.underlay vini) victim false;
  Engine.run ~until:(Time.sec 10) engine;
  check Alcotest.(list int) "parked" [ 0 ] (Vini.parked inst);
  let used_parked = Substrate.node_used sub victim in
  Underlay.set_node_state (Vini.underlay vini) victim true;
  Engine.run ~until:(Time.sec 20) engine;
  check Alcotest.(list int) "unparked after reboot" [] (Vini.parked inst);
  check (Alcotest.float 1e-9) "share recommitted" (used_parked +. 0.25)
    (Substrate.node_used sub victim)

(* --- the background defragmenter ---------------------------------------- *)

let defrag_scenario seed =
  let engine, _g, vini, inst, iias, _spare = ring_on_abilene ~seed () in
  let sub = Vini.substrate vini in
  (* External load turns vnode 0's host into the hottest machine. *)
  let hot = Iias.current_pnode iias 0 in
  Substrate.reserve_node sub hot 1.2;
  let before = Substrate.max_node_stress sub in
  let d = Defrag.attach ~period:(Time.sec 1) ~threshold:0.6 vini in
  Engine.run ~until:(Time.sec 45) engine;
  (engine, vini, inst, iias, d, hot, before)

let test_defrag_reduces_max_stress () =
  let _engine, vini, inst, iias, d, hot, before = defrag_scenario 4242 in
  let sub = Vini.substrate vini in
  check Alcotest.bool "a move was started" true (Defrag.moves_started d >= 1);
  check Alcotest.bool "stress reduced" true
    (Substrate.max_node_stress sub < before -. 1e-9);
  check Alcotest.bool "vnode lifted off the hot machine" true
    (Iias.current_pnode iias 0 <> hot);
  (match Vini.migrations inst with
  | m :: _ ->
      check Alcotest.bool "defrag move is planned" true
        (m.Vini.m_kind = Vini.Planned);
      check Alcotest.bool "balance improved in the record" true
        (m.Vini.m_balance_after < m.Vini.m_balance_before -. 1e-9)
  | [] -> Alcotest.fail "no migration recorded");
  (* The residual stress is the external reservation, which no move can
     relieve: having lifted everything movable, the defragmenter must
     retire rather than churn forever. *)
  check Alcotest.bool "retires once only external stress remains" true
    (Defrag.gave_up d)

let test_defrag_deterministic () =
  let final (_e, _vini, inst, iias, d, _hot, _before) =
    ( Array.to_list (Iias.current_embedding iias),
      List.map
        (fun (m : Vini.migration) -> (m.Vini.m_vnode, m.m_from, m.m_to))
        (Vini.migrations inst),
      Defrag.moves_started d )
  in
  let a = final (defrag_scenario 1234) and b = final (defrag_scenario 1234) in
  check Alcotest.bool "defrag runs are identical per seed" true (a = b)

let test_defrag_gives_up () =
  (* Stress that no move can relieve (external load only, nothing of the
     slice on the hot machine... and every alternative just as bad):
     squeeze every machine, so plan_move is rejected everywhere. *)
  let engine, g, vini, _inst, _iias, _spare = ring_on_abilene ~seed:99 () in
  let sub = Vini.substrate vini in
  for p = 0 to Graph.node_count g - 1 do
    Substrate.reserve_node sub p (Substrate.node_residual sub p -. 0.05)
  done;
  let d =
    Defrag.attach ~period:(Time.sec 1) ~threshold:0.5 ~budget:2 vini
  in
  Engine.run ~until:(Time.sec 60) engine;
  check Alcotest.bool "gave up" true (Defrag.gave_up d);
  check Alcotest.int "no moves" 0 (Defrag.moves_started d);
  check Alcotest.bool "stopped sweeping" true (not (Defrag.active d));
  let swept = Defrag.sweeps d in
  Engine.run ~until:(Time.sec 90) engine;
  check Alcotest.int "stays stopped" swept (Defrag.sweeps d)

(* --- satellite 1: the watchdog and the cutover window -------------------- *)

let watchdog_cutover_scenario ~migration_aware =
  let engine, _g, _vini, inst, iias, spare = ring_on_abilene ~seed:31 () in
  let vtopo = Migration.virtual_ring 6 in
  let wd =
    Watchdog.create ~engine ~overlay:iias ~vtopo ~migration_aware ()
  in
  (* A long drain keeps the FIB frozen while the IGP reconverges around a
     cost change — exactly the window that used to false-positive. *)
  (match Vini.migrate ~target:spare ~drain:(Time.sec 5) inst ~vnode:0 with
  | Ok true -> ()
  | _ -> Alcotest.fail "migrate should start");
  Engine.run ~until:(Time.of_sec_f 30.5) engine;
  check Alcotest.bool "inside the grace window" true
    (Iias.migration_grace iias 0);
  (* Reroute the ring mid-drain: vnode 0's RIB changes, its FIB is
     deliberately frozen. *)
  Iias.set_vlink_cost iias 2 3 4000;
  Engine.run ~until:(Time.sec 33) engine;
  Watchdog.sweep wd;
  let during = Watchdog.violation_count wd in
  (* Past drain-complete the FIB thawed and deferred changes replayed: a
     converged network again, for both flavours. *)
  Engine.run ~until:(Time.sec 50) engine;
  Watchdog.sweep wd;
  let after = Watchdog.violation_count wd - during in
  (during, after, Watchdog.counts_by_check wd)

let test_watchdog_false_positives_without_awareness () =
  (* The regression half: pre-fix behaviour (awareness off) alarms on the
     planned cutover. *)
  let during, _after, by_check =
    watchdog_cutover_scenario ~migration_aware:false
  in
  check Alcotest.bool "unaware watchdog alarms mid-cutover" true (during > 0);
  (* The deliberately frozen FIB plus a reconverged neighbour reads as a
     textbook micro-loop to a probe that doesn't know a cutover is on. *)
  check Alcotest.bool "as forwarding loops through the frozen FIB" true
    (List.mem_assoc "loop" by_check)

let test_watchdog_suppresses_during_migration () =
  let during, after, _ = watchdog_cutover_scenario ~migration_aware:true in
  check Alcotest.int "aware watchdog stays silent mid-cutover" 0 during;
  check Alcotest.int "and has nothing to report once drained" 0 after

(* --- determinism across domains ------------------------------------------ *)

let test_planned_export_identical_across_domains () =
  let doc d =
    Vini_measure.Export.to_string
      (Migration.run_planned ~seed:4242 ~duration:15.0 ~domains:d ()).Migration.export
  in
  check Alcotest.string "domains 1 = domains 2" (doc 1) (doc 2)

(* --- planned vs crash, property-style ------------------------------------ *)

let prop_planned_lossless_crash_has_downtime =
  QCheck.Test.make
    ~name:"planned moves are lossless; crash-driven ones cost downtime"
    ~count:4
    QCheck.(int_bound 1000)
    (fun salt ->
      let seed = 8000 + salt in
      let p = Migration.run_planned ~seed ~duration:12.0 () in
      let c = Migration.run ~seed ~duration:12.0 () in
      p.Migration.migrations <> []
      && List.for_all
           (fun (m : Vini.migration) ->
             m.Vini.m_kind = Vini.Planned
             && m.Vini.m_cutover_loss = Some 0
             && Time.compare m.Vini.m_down_at m.Vini.m_restored_at = 0)
           p.Migration.migrations
      && p.Migration.migration_failures = []
      && p.Migration.pings_sent = p.Migration.pings_received
      && c.Migration.migrations <> []
      && List.for_all
           (fun (m : Vini.migration) ->
             m.Vini.m_kind = Vini.Crash_driven
             && m.Vini.m_cutover_loss = None
             && Time.compare m.Vini.m_restored_at m.Vini.m_down_at > 0)
           c.Migration.migrations)

let suite =
  [
    Alcotest.test_case "zero-loss cutover (span forensics)" `Quick
      test_zero_loss_cutover_forensics;
    Alcotest.test_case "rollback restores substrate accounts" `Quick
      test_rollback_restores_accounts;
    Alcotest.test_case "plan rejection is structured" `Quick
      test_plan_rejection_is_structured;
    QCheck_alcotest.to_alcotest prop_rejected_reembed_restores_residuals;
    Alcotest.test_case "parked vnode restored on reboot" `Quick
      test_parked_vnode_restored_on_reboot;
    Alcotest.test_case "defrag reduces max stress" `Quick
      test_defrag_reduces_max_stress;
    Alcotest.test_case "defrag deterministic per seed" `Quick
      test_defrag_deterministic;
    Alcotest.test_case "defrag gives up cleanly" `Quick test_defrag_gives_up;
    Alcotest.test_case "watchdog false-positives without awareness" `Quick
      test_watchdog_false_positives_without_awareness;
    Alcotest.test_case "watchdog suppresses during migration" `Quick
      test_watchdog_suppresses_during_migration;
    Alcotest.test_case "planned export identical across domains" `Quick
      test_planned_export_identical_across_domains;
    QCheck_alcotest.to_alcotest prop_planned_lossless_crash_has_downtime;
  ]
